open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_planner
open Ninja_workloads
open Ninja_controlplane
open Exp_common

type row = {
  pattern : Traffic.pattern;
  strategy : Solver.t;
  vms : int;
  cost_start : float;
  cost_end : float;
  proposed : int;
  applied : int;
  noop : int;
  sim_end : float;
}

(* A generated leaf-spine datacenter: one IB pod, one Ethernet pod, 4:1
   oversubscribed uplinks — so demand crossing the spine is priced well
   above demand staying inside a rack, which is the gradient the swap
   strategy descends. *)
let leaf_spine ~hosts_per_rack =
  match
    Topology.v ~tier:Topology.Leaf_spine ~pods:2 ~racks_per_pod:2 ~hosts_per_rack
      ~ib_pods:1 ~oversub:4.0 ~mem_gb:32.0 ~seed:11L ()
  with
  | Ok t -> t
  | Error e -> failwith ("Exp_placement.leaf_spine: " ^ e)

let pattern_label p = List.hd (String.split_on_char ':' (Traffic.to_string p))

let measure rc ~pattern ~strategy ~vms_per_tenant ~hosts_per_rack () =
  let topo = leaf_spine ~hosts_per_rack in
  let rc = Run_ctx.with_topology (Some (Topology.to_string topo)) rc in
  let env = fresh rc in
  let sim = env.sim and cluster = env.cluster in
  (* Round-robin boot interleaves the tenants across both pods: the
     communication-oblivious starting point every strategy shares. *)
  let tenants =
    Service.boot_tenants ~traffic:pattern cluster
      ~tenants:[ ("t0", 3.0); ("t1", 2.0); ("t2", 1.0) ]
      ~vms_per_tenant ~mem_bytes:(Units.gb 2.0)
  in
  let traffic =
    List.concat_map (fun (ts : Service.tenant_spec) -> ts.Service.traffic) tenants
  in
  let cost_env = Cost_model.env cluster ~traffic () in
  (* The online rebalance policy is the swap strategy's continuous form;
     the baselines run without it, so the comparison is adaptive
     placement vs none under identical churn. *)
  let auto_swap = strategy = Solver.swap in
  let config = { Service.default_config with Service.strategy; auto_swap } in
  let svc = Service.create cluster ~config ~tenants () in
  let cost_start = Cost_model.current_cost cost_env in
  (* Churn: every tenant falls back to Ethernet, then returns to IB. The
     batch solver shapes each plan (the swap strategy re-aims
     destinations inside it); between batches the online policy keeps
     exchanging until no swap pays for itself. *)
  List.iteri
    (fun i (ts : Service.tenant_spec) ->
      let tenant = ts.Service.name in
      Service.inject svc
        ~after:(Time.of_sec_f (10.0 +. (3.0 *. float_of_int i)))
        (fun svc -> Service.make svc ~tenant ~kind:Request.Fallback ());
      Service.inject svc
        ~after:(Time.of_sec_f (45.0 +. (3.0 *. float_of_int i)))
        (fun svc -> Service.make svc ~tenant ~kind:Request.Return ()))
    tenants;
  run_to_completion env;
  (match Service.accounting svc with
  | Ok () -> ()
  | Error msg -> failwith ("Exp_placement: stranded requests: " ^ msg));
  let c name = int_of_float (Service.count svc name) in
  {
    pattern;
    strategy;
    vms = List.length (Service.vms svc);
    cost_start;
    cost_end = Cost_model.current_cost cost_env;
    proposed = c "ctl.swap.proposed";
    applied = c "ctl.swap.applied";
    noop = c "ctl.swap.noop";
    sim_end = sec (Sim.now sim);
  }

let run rc =
  let vms_per_tenant, hosts_per_rack =
    match rc.Run_ctx.mode with Quick -> (3, 4) | Full -> (6, 8)
  in
  let patterns =
    match rc.Run_ctx.traffic with
    | Some text -> (
      match Traffic.of_string text with
      | Ok p -> [ p ]
      | Error e -> failwith (Printf.sprintf "Exp_placement: bad traffic %S: %s" text e))
    | None ->
      [
        Traffic.Uniform { rate = Traffic.default_rate };
        Traffic.Ring { rate = Traffic.default_rate };
        Traffic.Skewed { elephants = 2; rate = Traffic.default_rate; factor = 16.0 };
      ]
  in
  let grid =
    List.concat_map (fun p -> List.map (fun s -> (p, s)) (Solver.all ())) patterns
  in
  let table =
    Table.create
      ~title:
        "Adaptive placement: tenant communication cost by traffic pattern and \
         strategy (leaf-spine churn, online destination swaps)"
      ~columns:
        [
          "traffic"; "strategy"; "VMs"; "cost start"; "cost end"; "improvement [%]";
          "proposed"; "applied"; "noop"; "sim end [s]";
        ]
  in
  sweep rc
    ~f:(fun rc (pattern, strategy) ->
      measure rc ~pattern ~strategy ~vms_per_tenant ~hosts_per_rack ())
    grid
  |> List.iter (fun r ->
         let improvement =
           if r.cost_start = 0.0 then 0.0
           else (r.cost_start -. r.cost_end) /. r.cost_start *. 100.0
         in
         Table.add_row table
           [
             pattern_label r.pattern;
             Solver.name r.strategy;
             string_of_int r.vms;
             Printf.sprintf "%.4f" r.cost_start;
             Printf.sprintf "%.4f" r.cost_end;
             Printf.sprintf "%.1f" improvement;
             string_of_int r.proposed;
             string_of_int r.applied;
             string_of_int r.noop;
             Printf.sprintf "%.1f" r.sim_end;
           ]);
  [ table ]
