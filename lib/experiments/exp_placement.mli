(** Adaptive placement: communication-cost convergence by strategy.

    Three tenants boot round-robin over a generated leaf-spine
    datacenter — a communication-oblivious interleaving — each carrying a
    seeded traffic matrix ({!Ninja_workloads.Traffic}). The control plane
    then churns them (fallback to Ethernet, return to IB) under every
    registered planner strategy; under [swap] the online destination-swap
    policy also runs between batches. The table reports the tenant
    communication cost ({!Ninja_planner.Cost_model}) of the starting and
    final placements plus the [ctl.swap.*] counters — on skewed matrices
    the swap strategy converges to a strictly lower cost than the
    migration-time baselines, which leave the packer's placement alone.

    A traffic pattern in the run context ({!Ninja_engine.Run_ctx} /
    [--traffic]) replaces the built-in uniform/ring/skewed pattern axis
    with that single pattern. *)

type row = {
  pattern : Ninja_workloads.Traffic.pattern;
  strategy : Ninja_planner.Solver.t;
  vms : int;
  cost_start : float;  (** communication cost of the boot placement *)
  cost_end : float;  (** communication cost once the service quiesces *)
  proposed : int;  (** [ctl.swap.proposed] *)
  applied : int;  (** [ctl.swap.applied] *)
  noop : int;  (** [ctl.swap.noop] *)
  sim_end : float;  (** simulated seconds to quiescence *)
}

val measure :
  Ninja_engine.Run_ctx.t ->
  pattern:Ninja_workloads.Traffic.pattern ->
  strategy:Ninja_planner.Solver.t ->
  vms_per_tenant:int ->
  hosts_per_rack:int ->
  unit ->
  row

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Pattern x strategy matrix over the strategy registry, domain-parallel
    when the context carries a pool (simulated quantities only, so output
    is byte-identical at any [-j]). *)
