open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_workloads
open Exp_common

type row = {
  size_gb : float;
  migration : float;
  hotplug : float;
  linkup : float;
  retry : float;
  total : float;
}

let measure rc ~size_gb =
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:8 in
  let dsts = hosts cluster ~prefix:"ib" ~first:8 ~count:8 in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb size_gb) ~until:200.0 ()));
  let result = ref None in
  Sim.spawn sim (fun () ->
      (* Let every rank complete at least one full pass first. *)
      Sim.sleep (Time.sec 30);
      let b = Ninja.fallback ninja ~dsts ~mode:(migration_mode rc) () in
      result := Some b;
      Ninja.wait_job ninja);
  run_to_completion env;
  let b = Option.get !result in
  {
    size_gb;
    migration = sec b.Breakdown.migration;
    hotplug = sec (Breakdown.hotplug b);
    linkup = sec b.Breakdown.linkup;
    retry = sec b.Breakdown.retry;
    total = sec (Breakdown.overhead_sum b);
  }

let run rc =
  let sizes =
    match rc.Run_ctx.mode with Quick -> [ 2.0; 16.0 ] | Full -> Paper_data.fig6_sizes_gb
  in
  let rows = sweep rc ~f:(fun rc size_gb -> measure rc ~size_gb) sizes in
  (* The retry column appears only when some run actually lost time to
     recovery, so fault-free output stays byte-identical. *)
  let with_retry = List.exists (fun r -> r.retry > 0.0) rows in
  let table =
    Table.create
      ~title:"Fig. 6: Ninja migration overhead on memtest [seconds] (paper values in parens)"
      ~columns:
        ([ "Array"; "migration"; "hotplug"; "link-up" ]
        @ (if with_retry then [ "retry" ] else [])
        @ [ "total overhead" ])
  in
  List.iter
    (fun r ->
      let paper_at l =
        match
          List.find_opt (fun (s, _) -> s = r.size_gb) (List.combine Paper_data.fig6_sizes_gb l)
        with
        | Some (_, v) -> Printf.sprintf "%.1f" v
        | None -> "-"
      in
      Table.add_row table
        ([
           Printf.sprintf "%.0fGB" r.size_gb;
           Printf.sprintf "%.1f (%s)" r.migration (paper_at Paper_data.fig6_migration);
           Printf.sprintf "%.1f (%s)" r.hotplug (paper_at Paper_data.fig6_hotplug);
           Printf.sprintf "%.1f (%s)" r.linkup (paper_at Paper_data.fig6_linkup);
         ]
        @ (if with_retry then [ Printf.sprintf "%.1f" r.retry ] else [])
        @ [ Printf.sprintf "%.1f" r.total ]))
    rows;
  [ table ]
