open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_scheduler
open Ninja_workloads
open Exp_common

type step_row = { step : int; phase : string; elapsed : float; overhead : float }

let phase_of_step s =
  if s <= 10 then "4 hosts (IB)"
  else if s <= 20 then "2 hosts (TCP)"
  else if s <= 30 then "4 hosts (IB)"
  else "4 hosts (TCP)"

let data_per_node = function Quick -> 1.0e9 | Full -> 8.0e9

let steps = 40

let measure rc ~procs_per_vm =
  let mode = rc.Run_ctx.mode in
  let env = fresh ~spec:Spec.agc rc in
  let sim = env.sim and cluster = env.cluster in
  let ib = hosts cluster ~prefix:"ib" ~first:0 ~count:4 in
  let eth = hosts cluster ~prefix:"eth" ~first:0 ~count:4 in
  let ninja = Ninja.setup cluster ~hosts:ib () in
  let samples = ref [] in
  let sched = ref None in
  let trigger_for s =
    if s = 10 then
      (* Server consolidation onto two Ethernet hosts. *)
      Some
        (Cloud_scheduler.Consolidate
           { vms_per_host = 2; targets = [ List.nth eth 0; List.nth eth 1 ] })
    else if s = 20 then Some (Cloud_scheduler.Rebalance { targets = ib })
    else if s = 30 then Some (Cloud_scheduler.Rebalance { targets = eth })
    else None
  in
  let on_step (s : Bcast_reduce.sample) =
    samples := s :: !samples;
    match trigger_for s.Bcast_reduce.step with
    | Some trigger ->
      Sim.spawn sim ~name:"fig8-trigger" (fun () ->
          ignore (Cloud_scheduler.execute (Option.get !sched) trigger))
    | None -> ()
  in
  ignore
    (Ninja.launch ninja ~procs_per_vm (fun ctx ->
         Bcast_reduce.run ctx ~data_per_node:(data_per_node mode) ~procs_per_vm ~steps
           ~on_step ()));
  sched := Some (Cloud_scheduler.create ninja);
  Sim.spawn sim (fun () -> Ninja.wait_job ninja);
  run_to_completion env;
  let overheads =
    List.map
      (fun r -> sec (Breakdown.overhead_sum r.Cloud_scheduler.breakdown))
      (Cloud_scheduler.history (Option.get !sched))
  in
  let overhead_at step =
    match step with
    | 11 -> (match overheads with o :: _ -> o | [] -> 0.0)
    | 21 -> (match overheads with _ :: o :: _ -> o | _ -> 0.0)
    | 31 -> (match overheads with _ :: _ :: o :: _ -> o | _ -> 0.0)
    | _ -> 0.0
  in
  !samples |> List.rev
  |> List.map (fun (s : Bcast_reduce.sample) ->
         {
           step = s.Bcast_reduce.step;
           phase = phase_of_step s.Bcast_reduce.step;
           elapsed = s.Bcast_reduce.elapsed;
           overhead = overhead_at s.Bcast_reduce.step;
         })

let summarize rows =
  (* Mean steady-state iteration time per phase (excluding the migration
     steps 11/21/31). *)
  let phases = [ "4 hosts (IB)"; "2 hosts (TCP)"; "4 hosts (TCP)" ] in
  List.map
    (fun phase ->
      let xs =
        rows
        |> List.filter (fun r -> r.phase = phase && not (List.mem r.step [ 11; 21; 31 ]))
        |> List.map (fun r -> r.elapsed)
      in
      (phase, Stats.mean xs))
    phases

let run rc =
  let make_table (rows, procs_per_vm, label) =
    let table =
      Table.create
        ~title:
          (Printf.sprintf
             "Fig. 8%s: fallback and recovery migration (%s/VM, %d total procs) [seconds/step]"
             label
             (if procs_per_vm = 1 then "1 process" else Printf.sprintf "%d processes" procs_per_vm)
             (4 * procs_per_vm))
        ~columns:[ "Step"; "Phase"; "Elapsed"; "of which overhead" ]
    in
    List.iter
      (fun r ->
        Table.add_row table
          [
            string_of_int r.step;
            r.phase;
            Printf.sprintf "%.1f" r.elapsed;
            (if r.overhead > 0.0 then Printf.sprintf "%.1f" r.overhead else "-");
          ])
      rows;
    let summary =
      Table.create
        ~title:(Printf.sprintf "Fig. 8%s steady-state summary" label)
        ~columns:[ "Phase"; "mean step time [s]" ]
    in
    List.iter
      (fun (phase, mean) -> Table.add_row summary [ phase; Printf.sprintf "%.1f" mean ])
      (summarize rows);
    [ table; summary ]
  in
  sweep rc
    ~f:(fun rc (procs_per_vm, label) -> (measure rc ~procs_per_vm, procs_per_vm, label))
    [ (1, "a"); (8, "b") ]
  |> List.concat_map make_table
