open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_vmm
open Exp_common

(* Precopy vs postcopy of a live, dirtying guest across the widest
   boundary of each topology. The dirtying rate is chosen so precopy
   cannot converge on an oversubscribed fabric — it burns its round
   budget and eats the residual dirty set as stop-and-copy downtime —
   while postcopy's downtime stays a constant hot-set push and the
   footprint drains as prioritized pulls whose tail the last columns
   report. *)

type entry = { label : string; topology : string option }

let entries rc =
  let oversubscribed =
    {
      label = "leaf-spine 4:1";
      topology = Some "leaf-spine:pods=2,racks=2,hosts=4,ib-pods=1,oversub=4";
    }
  in
  match rc.Run_ctx.mode with
  | Quick -> [ { label = "AGC testbed"; topology = None }; oversubscribed ]
  | Full ->
    [
      { label = "AGC testbed"; topology = None };
      oversubscribed;
      {
        label = "leaf-spine 8:1";
        topology = Some "leaf-spine:pods=2,racks=2,hosts=4,ib-pods=1,oversub=8";
      };
      {
        label = "fat-tree";
        topology = Some "fat-tree:pods=2,racks=2,hosts=4,ib-pods=1,oversub=4";
      };
    ]

type row = {
  mode : Migration.mode;
  stats : Migration.stats;
}

let by_node_id (a : Node.t) (b : Node.t) = compare a.Node.id b.Node.id

let measure rc entry ~mode =
  let env =
    match entry.topology with
    | None -> fresh ~spec:Spec.agc rc
    | Some text -> fresh (Run_ctx.with_topology (Some text) rc)
  in
  let sim = env.sim and cluster = env.cluster in
  let nodes = List.sort by_node_id (Cluster.alive_nodes cluster) in
  (* First to last host: in the generated topologies that crosses the
     pod uplink, the narrowest (most oversubscribed) link there is. *)
  let src = List.hd nodes in
  let dst = List.nth nodes (List.length nodes - 1) in
  let vm =
    Vm.create cluster ~name:"vm0" ~host:src ~vcpus:8 ~mem_bytes:(Units.gb 8.0) ()
  in
  let stats = ref None in
  let array = Units.gb 2.0 in
  Sim.spawn sim (fun () ->
      let region = Memory.alloc (Vm.memory vm) ~bytes:array in
      Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9;
      (* A guest that re-dirties its array faster than any fabric can
         drain it, for the whole migration: precopy cannot converge and
         burns its round budget. The RDMA sender outruns the generated
         topologies' pod uplinks, so the fabric — not the sender — sets
         each topology's round and stop-and-copy times. *)
      Sim.spawn sim (fun () ->
          for _ = 1 to 700 do
            Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9
          done);
      Sim.sleep (Time.ms 100);
      stats := Some (Migration.migrate vm ~dst ~transport:Migration.Rdma ~mode ()));
  run_until env (Time.minutes 120);
  { mode; stats = Option.get !stats }

let pull_tail_ms pulls =
  match List.sort Time.compare pulls with
  | [] -> 0.0
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = Stdlib.min (n - 1) (int_of_float (ceil (0.99 *. float_of_int n)) - 1) in
    Time.to_sec_f a.(Stdlib.max 0 rank) *. 1e3

let run rc =
  let entries = entries rc in
  let points =
    List.concat_map
      (fun e -> [ (e, Migration.Precopy); (e, Migration.Postcopy) ])
      entries
  in
  let rows = sweep rc ~f:(fun rc (e, mode) -> (e, measure rc e ~mode)) points in
  let table =
    Table.create
      ~title:
        "Postcopy: precopy vs postcopy of a live 2 GB writer across topologies \
         [downtime/total in s, pull p99 in ms]"
      ~columns:
        [ "Topology"; "downtime pre"; "downtime post"; "total pre"; "total post";
          "pull p99"; "pulls"; "wire GB pre"; "wire GB post" ]
  in
  List.iter
    (fun e ->
      let find mode =
        match
          List.find_opt
            (fun (e', r) -> e'.label = e.label && r.mode = mode)
            rows
        with
        | Some (_, r) -> r.stats
        | None -> assert false
      in
      let pre = find Migration.Precopy and post = find Migration.Postcopy in
      Table.add_row table
        [
          e.label;
          Printf.sprintf "%.2f" (sec pre.Migration.downtime);
          Printf.sprintf "%.2f" (sec post.Migration.downtime);
          Printf.sprintf "%.1f" (sec pre.Migration.duration);
          Printf.sprintf "%.1f" (sec post.Migration.duration);
          Printf.sprintf "%.0f" (pull_tail_ms post.Migration.pulls);
          string_of_int (List.length post.Migration.pulls);
          Printf.sprintf "%.1f" (pre.Migration.transferred_bytes /. 1e9);
          Printf.sprintf "%.1f" (post.Migration.transferred_bytes /. 1e9);
        ])
    entries;
  [ table ]
