(** Table II: hotplug and link-up elapsed times of the four
    interconnect-combination self-migrations (IB/Eth x IB/Eth). *)

val measure :
  Ninja_engine.Run_ctx.t ->
  Paper_data.combo ->
  hotplug:float ref ->
  linkup:float ref ->
  unit
(** One self-migration of 8 VMs under the given combination; fills in
    the measured hotplug and link-up seconds. *)

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Combination sweep, domain-parallel when the context carries a
    pool. *)
