open Ninja_engine
open Ninja_metrics
open Ninja_planner
open Ninja_controlplane
open Exp_common

type row = {
  rate : float;
  strategy : Solver.t;
  submitted : int;
  completed : int;
  rejected : int;
  dropped : int;
  failed : int;
  p50 : float;
  p95 : float;
  p99 : float;
  downtime : float;
  violations : int;
}

let measure rc ~rate ~strategy ~duration () =
  let env = fresh rc in
  let tenants =
    Service.boot_tenants env.cluster
      ~tenants:[ ("t0", 3.0); ("t1", 2.0); ("t2", 1.0) ]
      ~vms_per_tenant:2
      ~mem_bytes:(Ninja_hardware.Units.gb 8.0)
  in
  let config = { Service.default_config with strategy } in
  let svc = Service.create env.cluster ~config ~tenants () in
  let checker = Ninja_check.Checker.install env.cluster ~vms:(Service.vms svc) in
  Service.open_loop svc
    ~process:(Ninja_workloads.Arrivals.Poisson { rate })
    ~horizon:duration;
  run_to_completion env;
  Ninja_check.Checker.check_finish checker;
  Ninja_check.Checker.detach checker;
  (match Service.accounting svc with
  | Ok () -> ()
  | Error msg -> failwith ("exp_controlplane: stranded requests: " ^ msg));
  let c name = int_of_float (Service.count svc name) in
  let p50, p95, p99 =
    Option.value (Service.latency_percentiles svc) ~default:(0.0, 0.0, 0.0)
  in
  {
    rate;
    strategy;
    submitted = Service.submitted svc;
    completed = c "ctl.requests.completed";
    rejected = c "ctl.requests.rejected";
    dropped = c "ctl.requests.dropped";
    failed = c "ctl.requests.failed";
    p50;
    p95;
    p99;
    downtime =
      List.fold_left ( +. ) 0.0
        (Ninja_telemetry.Metrics.samples (Service.metrics svc) "ctl.vm.downtime.seconds");
    violations = List.length (Ninja_check.Checker.violations checker);
  }

let run rc =
  let duration, rates =
    match rc.Run_ctx.mode with
    | Quick -> (600.0, [ 0.05; 0.2 ])
    | Full -> (3600.0, [ 0.1; 0.5; 1.0 ])
  in
  (* Pinned: the swap solver is exercised by exp_placement; adding it here
     would grow the bench-gated grid. *)
  let strategies = [ Solver.sequential; Solver.grouped ] in
  let points =
    List.concat_map (fun rate -> List.map (fun s -> (rate, s)) strategies) rates
  in
  let rows =
    sweep rc points ~f:(fun rc (rate, strategy) ->
        measure rc ~rate ~strategy ~duration ())
  in
  let table =
    Table.create ~title:"control plane: request SLO by arrival rate and strategy"
      ~columns:
        [ "rate/s"; "strategy"; "submitted"; "completed"; "rejected"; "dropped";
          "failed"; "p50 s"; "p95 s"; "p99 s"; "downtime s"; "violations" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ Printf.sprintf "%.2f" r.rate;
          Solver.name r.strategy;
          string_of_int r.submitted;
          string_of_int r.completed;
          string_of_int r.rejected;
          string_of_int r.dropped;
          string_of_int r.failed;
          Printf.sprintf "%.1f" r.p50;
          Printf.sprintf "%.1f" r.p95;
          Printf.sprintf "%.1f" r.p99;
          Printf.sprintf "%.1f" r.downtime;
          string_of_int r.violations ])
    rows;
  [ table ]
