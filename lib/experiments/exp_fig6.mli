(** Fig. 6: Ninja-migration overhead on the memtest benchmark, broken into
    migration / hotplug / link-up, for 2/4/8/16 GB memory arrays.

    §IV-B2: 8 VMs (20 GB each) on the InfiniBand cluster migrate to 8
    other InfiniBand nodes while memtest runs; migration time follows the
    footprint (but not proportionally — zero-page compression), hotplug is
    ~3x the self-migration cost ("migration noise") and link-up is the
    constant ~30 s IB port training. *)

type row = {
  size_gb : float;
  migration : float;
  hotplug : float;
  linkup : float;
  retry : float;  (** time lost to recovery; nonzero only under [--fault] *)
  total : float;
}

val measure : Ninja_engine.Run_ctx.t -> size_gb:float -> row

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Sizes sweep domain-parallel when the context carries a pool. *)
