type entry = {
  name : string;
  description : string;
  run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list;
}

let all =
  [
    {
      name = "table1";
      description = "Table I: AGC cluster specification and simulator calibration";
      run = (fun _ -> Exp_table1.run ());
    };
    {
      name = "table2";
      description = "Table II: hotplug and link-up times of self-migration (4 combos)";
      run = Exp_table2.run;
    };
    {
      name = "fig6";
      description = "Fig. 6: migration overhead breakdown on memtest (2-16 GB)";
      run = Exp_fig6.run;
    };
    {
      name = "fig7";
      description = "Fig. 7: migration overhead on NPB BT/CG/FT/LU (baseline vs proposed)";
      run = Exp_fig7.run;
    };
    {
      name = "fig8";
      description = "Fig. 8: fallback and recovery migration series (1 and 8 procs/VM)";
      run = Exp_fig8.run;
    };
    {
      name = "ablation-bypass";
      description = "Ablation: VMM-bypass vs virtio vs emulated I/O";
      run = Exp_ablation.bypass;
    };
    {
      name = "ablation-rdma";
      description = "Ablation: TCP vs RDMA migration sender (paper section V)";
      run = Exp_ablation.rdma_migration;
    };
    {
      name = "ablation-quiesce";
      description = "Ablation: frozen (SymVirt-fenced) vs live migration";
      run = Exp_ablation.quiesce;
    };
    {
      name = "ablation-postcopy";
      description = "Ablation: precopy vs postcopy migration of a live guest";
      run = Exp_ablation.postcopy;
    };
    {
      name = "postcopy";
      description =
        "Postcopy vs precopy across topologies: downtime, total time and the \
         prioritized-pull latency tail of a live dirtying guest";
      run = Exp_postcopy.run;
    };
    {
      name = "evacuation";
      description =
        "Batch evacuation planner: sequential vs grouped strategy makespan (VM count sweep)";
      run = Exp_evacuation.run;
    };
    {
      name = "scalability";
      description =
        "Section V open issue: N simultaneous migrations under uplink congestion, plus a \
         1000-VM datacenter evacuation over a leaf-spine topology";
      run = Exp_scalability.run;
    };
    {
      name = "controlplane";
      description =
        "Continuous control plane: open-loop request stream through the migration \
         service (rate x strategy SLO table)";
      run = Exp_controlplane.run;
    };
    {
      name = "placement";
      description =
        "Adaptive placement: communication-cost convergence of every registered \
         strategy (traffic pattern x strategy, destination-swap policy)";
      run = Exp_placement.run;
    };
    {
      name = "power";
      description = "Section VII future work: power-aware consolidation (energy vs run time)";
      run = Exp_power.run;
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let names = List.map (fun e -> e.name) all

let run_entry ctx e =
  (* Telemetry tracks from different entries must not collide in one
     export file, so each entry's simulations carry its name. *)
  let ctx = Ninja_engine.Run_ctx.with_label e.name ctx in
  let tables = e.run ctx in
  List.iteri
    (fun i table ->
      Ninja_engine.Run_ctx.emit_metrics ctx
        (Printf.sprintf "# %s table %d\n%s" e.name i (Ninja_metrics.Table.to_csv table)))
    tables;
  tables
