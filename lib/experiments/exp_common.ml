open Ninja_engine
open Ninja_hardware

type mode = Run_ctx.mode = Quick | Full

type env = { ctx : Run_ctx.t; sim : Sim.t; cluster : Cluster.t }

let fresh ?(spec = Spec.agc) ctx =
  let sim = Sim.create ~seed:ctx.Run_ctx.seed () in
  let cluster = Cluster.create sim ~spec () in
  List.iter
    (fun text ->
      match Ninja_faults.Injector.parse_spec text with
      | Ok spec -> Ninja_faults.Injector.arm_spec (Cluster.injector cluster) spec
      | Error msg -> failwith (Printf.sprintf "Exp_common.fresh: bad fault spec %S: %s" text msg))
    ctx.Run_ctx.faults;
  { ctx; sim; cluster }

let hosts cluster ~prefix ~first ~count =
  List.init count (fun i ->
      Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix (first + i)))

let flush_trace env =
  match env.ctx.Run_ctx.trace with
  | None -> ()
  | Some _ ->
    let timeline =
      Format.asprintf "%a" Trace.pp_timeline (Cluster.trace env.cluster)
    in
    if String.trim timeline <> "" then
      Run_ctx.trace_line env.ctx
        (Printf.sprintf "-- trace (seed %Ld) --\n%s" env.ctx.Run_ctx.seed timeline)

let run_to_completion env =
  Sim.run env.sim;
  flush_trace env

let run_until env limit =
  Sim.run_until env.sim limit;
  flush_trace env

let sweep ctx ~f xs = Run_ctx.map ctx ~f xs

let sec = Time.to_sec_f
