open Ninja_engine
open Ninja_hardware
open Ninja_telemetry

type mode = Run_ctx.mode = Quick | Full

type env = {
  ctx : Run_ctx.t;
  sim : Sim.t;
  cluster : Cluster.t;
  recorder : Recorder.t option;
}

let fresh ?spec ctx =
  let sim = Sim.create ~seed:ctx.Run_ctx.seed () in
  (* An explicit spec wins (experiments that hardcode their population);
     otherwise a topology in the context shapes the cluster, and the AGC
     testbed remains the default. *)
  let cluster =
    match (spec, ctx.Run_ctx.topology) with
    | Some spec, _ -> Cluster.create sim ~spec ()
    | None, Some text -> (
      match Topology.of_string text with
      | Ok topo -> Cluster.create sim ~topology:topo ()
      | Error msg ->
        failwith (Printf.sprintf "Exp_common.fresh: bad topology %S: %s" text msg))
    | None, None -> Cluster.create sim ~spec:Spec.agc ()
  in
  List.iter
    (fun text ->
      match Ninja_faults.Injector.parse_spec text with
      | Ok spec -> Ninja_faults.Injector.arm_spec (Cluster.injector cluster) spec
      | Error msg -> failwith (Printf.sprintf "Exp_common.fresh: bad fault spec %S: %s" text msg))
    ctx.Run_ctx.faults;
  (* A spans sink in the context arms the telemetry recorder: every probe
     event this cluster emits is collected and flushed as one trace-event
     fragment when the simulation completes. Without the sink the bus
     stays unobserved and costs nothing. *)
  let recorder =
    match ctx.Run_ctx.spans with
    | None -> None
    | Some _ ->
      let r = Recorder.create () in
      ignore (Recorder.attach r (Cluster.probes cluster));
      Some r
  in
  { ctx; sim; cluster; recorder }

(* The context carries the copy mode as text (the engine cannot depend on
   the VMM); it was validated at the entry point, so a bad name here is a
   programming error. *)
let migration_mode ctx =
  match ctx.Run_ctx.migration with
  | None -> Ninja_vmm.Migration.Precopy
  | Some text -> (
    match Ninja_vmm.Migration.mode_of_string text with
    | Ok mode -> mode
    | Error msg ->
      failwith (Printf.sprintf "Exp_common.migration_mode: bad mode %S: %s" text msg))

let hosts cluster ~prefix ~first ~count =
  List.init count (fun i ->
      Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix (first + i)))

let track_prefix ctx =
  match ctx.Run_ctx.label with "" -> "" | label -> label ^ "/"

let flush_trace env =
  match env.ctx.Run_ctx.trace with
  | None -> ()
  | Some _ ->
    let timeline =
      Format.asprintf "%a" Trace.pp_timeline (Cluster.trace env.cluster)
    in
    if String.trim timeline <> "" then
      Run_ctx.trace_line env.ctx
        (Printf.sprintf "-- trace (seed %Ld) --\n%s" env.ctx.Run_ctx.seed timeline)

let flush_telemetry env =
  match env.recorder with
  | None -> ()
  | Some r ->
    let fragment = Export.recorder_fragment ~track_prefix:(track_prefix env.ctx) r in
    if fragment <> "" then Run_ctx.emit_spans env.ctx fragment;
    (* Telemetry metrics ride the metrics sink only when the recorder is
       armed, so a plain [--metrics] run's output is unchanged. *)
    if not (Metrics.is_empty (Recorder.metrics r)) then
      Run_ctx.emit_metrics env.ctx
        (Printf.sprintf "# telemetry (%s, seed %Ld)\n%s"
           (match env.ctx.Run_ctx.label with "" -> "run" | l -> l)
           env.ctx.Run_ctx.seed
           (Metrics.to_csv (Recorder.metrics r)))

let finish env =
  Run_ctx.observe env.ctx "sim_s" (Time.to_sec_f (Sim.now env.sim));
  flush_trace env;
  flush_telemetry env

let run_to_completion env =
  Sim.run env.sim;
  finish env

let run_until env limit =
  Sim.run_until env.sim limit;
  finish env

(* One buffered redirection of a context's sinks: chunks are kept, in
   order, until [drain] replays them into the parent. The mutex only
   guards against a future in-point fan-out; each buffer is written by
   the one domain running its point. *)
type buffer = {
  mutex : Mutex.t;
  mutable rev_chunks : ([ `Trace | `Metrics | `Spans ] * string) list;
}

let redirect parent buf =
  let push kind chunk =
    Mutex.protect buf.mutex (fun () -> buf.rev_chunks <- (kind, chunk) :: buf.rev_chunks)
  in
  let sub kind = function None -> None | Some _ -> Some (push kind) in
  Run_ctx.with_sinks
    ?trace:(sub `Trace parent.Run_ctx.trace)
    ?metrics:(sub `Metrics parent.Run_ctx.metrics)
    ?spans:(sub `Spans parent.Run_ctx.spans)
    parent

let drain parent buf =
  List.iter
    (fun (kind, chunk) ->
      match kind with
      | `Trace -> Run_ctx.trace_line parent chunk
      | `Metrics -> Run_ctx.emit_metrics parent chunk
      | `Spans -> Run_ctx.emit_spans parent chunk)
    (List.rev buf.rev_chunks)

let point_label ctx i =
  match ctx.Run_ctx.label with
  | "" -> "#" ^ string_of_int i
  | label -> label ^ "#" ^ string_of_int i

let sweep ctx ~f xs =
  match ctx.Run_ctx.pool with
  | None ->
    List.mapi (fun i x -> f (Run_ctx.with_label (point_label ctx i) ctx) x) xs
  | Some _ ->
    (* Pooled points write into per-point buffers, drained in input order
       afterwards: the parent sinks see the exact chunk sequence of the
       serial sweep, so output is byte-identical at any -j. Points run
       their own simulations serially (no nested pool). *)
    let tagged =
      List.mapi
        (fun i x ->
          let buf = { mutex = Mutex.create (); rev_chunks = [] } in
          let pctx =
            ctx
            |> Run_ctx.with_label (point_label ctx i)
            |> Run_ctx.with_pool None
            |> fun c -> redirect c buf
          in
          (pctx, x, buf))
        xs
    in
    let results = Run_ctx.map ctx ~f:(fun (pctx, x, _) -> f pctx x) tagged in
    List.iter (fun (_, _, buf) -> drain ctx buf) tagged;
    results

let sec = Time.to_sec_f
