open Ninja_engine
open Ninja_hardware

type mode = Quick | Full

let default_seed = ref 42L

let set_default_seed s = default_seed := s

let default_faults : Ninja_faults.Injector.spec list ref = ref []

let set_default_faults specs = default_faults := specs

let fresh ?seed ?(spec = Spec.agc) () =
  let sim = Sim.create ~seed:(Option.value seed ~default:!default_seed) () in
  let cluster = Cluster.create sim ~spec () in
  List.iter
    (fun s -> Ninja_faults.Injector.arm_spec (Cluster.injector cluster) s)
    !default_faults;
  (sim, cluster)

let hosts cluster ~prefix ~first ~count =
  List.init count (fun i ->
      Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix (first + i)))

let run_to_completion sim = Sim.run sim

let sec = Time.to_sec_f
