(** Control-plane experiment: the long-running migration service under an
    open-loop Poisson request stream, swept over arrival rate × planner
    strategy. Reports the request SLO table (throughput by outcome,
    latency percentiles, aggregate fenced VM downtime) with the protocol
    invariant checker attached; any violation shows up in the last
    column, and a stranded request fails the experiment outright. *)

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
