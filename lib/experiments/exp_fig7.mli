(** Fig. 7: Ninja-migration overhead on the NAS Parallel Benchmarks
    (BT/CG/FT/LU, class D, 64 processes; class C at reduced scale in
    [Quick] mode).

    §IV-B3: baseline = plain run; proposed = one Ninja migration (both
    clusters InfiniBand) three minutes in. Claims reproduced: zero
    normal-operation overhead, and migration time tracking the per-VM
    memory footprint while hotplug/link-up stay constant. *)

type row = {
  kernel : string;
  baseline : float;
  proposed : float;
  migration : float;
  hotplug : float;
  linkup : float;
}

val measure : Ninja_engine.Run_ctx.t -> Ninja_workloads.Npb.kernel -> row

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Kernel sweep, domain-parallel when the context carries a pool. *)
