(** Shared experiment plumbing. *)

open Ninja_engine
open Ninja_hardware

type mode = Quick | Full
(** [Quick] shrinks sizes/iterations so the whole suite stays test-speed;
    [Full] reproduces the paper's parameters. *)

val set_default_seed : int64 -> unit
(** Seed used by {!fresh} when none is passed (initially 42). The CLI's
    [--seed] flag threads through here so whole experiment runs are
    reproducibly variable. *)

val set_default_faults : Ninja_faults.Injector.spec list -> unit
(** Fault specs armed on every cluster {!fresh} creates (initially none).
    The CLI's repeatable [--fault] flag threads through here, so an
    experiment run can be re-executed under injected failures without the
    experiment knowing. *)

val fresh : ?seed:int64 -> ?spec:Spec.t -> unit -> Sim.t * Cluster.t
(** A deterministic simulation (fixed seed) plus its cluster, with any
    default fault specs armed on the cluster's injector. *)

val hosts : Cluster.t -> prefix:string -> first:int -> count:int -> Node.t list
(** e.g. [hosts c ~prefix:"ib" ~first:8 ~count:8] = ib08..ib15. *)

val run_to_completion : Sim.t -> unit

val sec : Time.span -> float
