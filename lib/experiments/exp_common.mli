(** Shared experiment plumbing.

    All per-run configuration arrives in an explicit {!Run_ctx.t} —
    there are no module-level defaults to mutate. An experiment receives
    the context, calls {!fresh} once per simulated point and {!sweep}
    for its point grid, and returns tables; the same context therefore
    makes a run reproducible and lets independent points execute on
    separate domains. *)

open Ninja_engine
open Ninja_hardware

type mode = Run_ctx.mode = Quick | Full
(** Re-exported so experiments can match on [ctx.mode] unqualified. *)

type env = {
  ctx : Run_ctx.t;
  sim : Sim.t;
  cluster : Cluster.t;
  recorder : Ninja_telemetry.Recorder.t option;
}
(** One simulated point: a deterministic simulation (seeded from the
    context) plus its cluster, with the context's fault specs armed on
    the cluster's injector. When the context carries a spans sink, a
    telemetry recorder is attached to the cluster's probe bus. *)

val fresh : ?spec:Spec.t -> Run_ctx.t -> env
(** Cluster population: an explicit [spec] wins; otherwise the context's
    topology (parsed with {!Topology.of_string}) if set; otherwise
    {!Spec.agc}. Raises [Failure] on a malformed fault or topology spec
    in the context (the CLI validates them upstream, so this indicates a
    programming error). *)

val migration_mode : Run_ctx.t -> Ninja_vmm.Migration.mode
(** The context's migration copy mode ([Precopy] when unset). Raises
    [Failure] on a malformed mode name (the CLI validates upstream). *)

val hosts : Cluster.t -> prefix:string -> first:int -> count:int -> Node.t list
(** e.g. [hosts c ~prefix:"ib" ~first:8 ~count:8] = ib08..ib15. *)

val run_to_completion : env -> unit
(** [Sim.run], then flush: the cluster's trace timeline to the trace
    sink, the recorder's span fragment to the spans sink and its metrics
    CSV to the metrics sink (each only when armed), and the simulated
    end time to the observation hook as ["sim_s"]. *)

val run_until : env -> Time.t -> unit
(** [Sim.run_until] plus the same flush. *)

val sweep : Run_ctx.t -> f:(Run_ctx.t -> 'a -> 'b) -> 'a list -> 'b list
(** An experiment's point grid. [f] receives a derived context labelled
    ["<parent>#<index>"] (so each point's telemetry tracks are distinct)
    and runs on its own domain when the parent carries a pool. Pooled
    points buffer their sink output and replay it in input order, so
    trace/metrics/spans chunks arrive byte-identically to a serial
    sweep. *)

val sec : Time.span -> float
