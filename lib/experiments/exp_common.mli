(** Shared experiment plumbing.

    All per-run configuration arrives in an explicit {!Run_ctx.t} —
    there are no module-level defaults to mutate. An experiment receives
    the context, calls {!fresh} once per simulated point and {!sweep}
    for its point grid, and returns tables; the same context therefore
    makes a run reproducible and lets independent points execute on
    separate domains. *)

open Ninja_engine
open Ninja_hardware

type mode = Run_ctx.mode = Quick | Full
(** Re-exported so experiments can match on [ctx.mode] unqualified. *)

type env = { ctx : Run_ctx.t; sim : Sim.t; cluster : Cluster.t }
(** One simulated point: a deterministic simulation (seeded from the
    context) plus its cluster, with the context's fault specs armed on
    the cluster's injector. *)

val fresh : ?spec:Spec.t -> Run_ctx.t -> env
(** Raises [Failure] on a malformed fault spec in the context (the CLI
    validates them upstream, so this indicates a programming error). *)

val hosts : Cluster.t -> prefix:string -> first:int -> count:int -> Node.t list
(** e.g. [hosts c ~prefix:"ib" ~first:8 ~count:8] = ib08..ib15. *)

val run_to_completion : env -> unit
(** [Sim.run], then flush the cluster's trace to the context's trace
    sink (one chunk per simulation, nothing when the sink is absent). *)

val run_until : env -> Time.t -> unit
(** [Sim.run_until] plus the same trace flush. *)

val sweep : Run_ctx.t -> f:('a -> 'b) -> 'a list -> 'b list
(** {!Run_ctx.map}: an experiment's point grid, one simulation per
    domain when the context carries a pool, in deterministic order. *)

val sec : Time.span -> float
