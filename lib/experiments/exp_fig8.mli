(** Fig. 8: fallback and recovery migration under the bcast+reduce
    workload (8 GB per node), with migrations after steps 10, 20 and 30:

    4 hosts (IB) → 2 hosts (TCP, consolidated) → 4 hosts (IB) →
    4 hosts (TCP)

    Reproduced for (a) 1 process/VM (4 ranks) and (b) 8 processes/VM
    (32 ranks). The per-step series shows the interconnect's bandwidth in
    the iteration time, the over-commit penalty in the consolidated
    phase, and the migration overhead spikes at steps 11/21/31 — all with
    no process restarts. *)

type step_row = { step : int; phase : string; elapsed : float; overhead : float }

val measure : Ninja_engine.Run_ctx.t -> procs_per_vm:int -> step_row list

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Both series (1 and 8 procs/VM), domain-parallel when the context
    carries a pool. *)
