(** Scalability of simultaneous migration (§V open issue).

    The paper: "Our evaluation lacks scalability tests ... The migration
    time may significantly increase as the number of hosts increases due
    to network congestion." This experiment performs the study: N VMs
    migrate simultaneously from the InfiniBand rack to the Ethernet rack
    over a shared inter-rack uplink, sweeping N. Below the uplink's
    capacity each VM migrates at its sender's rate; beyond it, max–min
    sharing stretches every migration — while hotplug and coordination
    stay constant, confirming the paper's claim that the growth is a
    network property, not a mechanism property. *)

type row = {
  n_vms : int;
  migration : float;  (** wall time of the parallel migration phase [s] *)
  per_vm_rate : float;  (** effective GB/s per VM *)
  hotplug : float;
  coordination : float;
}

val measure : Ninja_engine.Run_ctx.t -> n_vms:int -> uplink_gbps:float -> row

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** VM-count sweep, domain-parallel when the context carries a pool. *)
