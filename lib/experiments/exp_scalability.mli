(** Scalability of simultaneous migration (§V open issue).

    The paper: "Our evaluation lacks scalability tests ... The migration
    time may significantly increase as the number of hosts increases due
    to network congestion." This experiment performs the study: N VMs
    migrate simultaneously from the InfiniBand rack to the Ethernet rack
    over a shared inter-rack uplink, sweeping N. Below the uplink's
    capacity each VM migrates at its sender's rate; beyond it, max–min
    sharing stretches every migration — while hotplug and coordination
    stay constant, confirming the paper's claim that the growth is a
    network property, not a mechanism property. *)

type row = {
  n_vms : int;
  migration : float;  (** wall time of the parallel migration phase [s] *)
  per_vm_rate : float;  (** effective GB/s per VM *)
  hotplug : float;
  coordination : float;
}

val measure : Ninja_engine.Run_ctx.t -> n_vms:int -> uplink_gbps:float -> row

(** {1 Datacenter evacuation at scale}

    A leaf-spine datacenter's IB pods are drained completely into its
    Ethernet pods under a bounded migration window, with least-loaded
    packing against the cluster's occupancy index. All reported
    quantities are simulated (deterministic at any [-j]); the host-side
    cost of the run is what the bench harness and the scale regression
    test measure. *)

type evac = {
  e_vms : int;
  e_hosts : int;  (** total hosts in the topology *)
  e_window : int;  (** concurrent-migration bound *)
  e_moved_gb : float;  (** wire bytes actually transferred *)
  e_makespan : float;  (** simulated seconds until the fleet is drained *)
  e_mean_migration : float;  (** mean per-VM migration seconds *)
}

val default_window : int

val dc_topology :
  pods:int -> racks:int -> hosts:int -> mem_gb:float -> Ninja_hardware.Topology.t
(** Leaf-spine, half the pods IB ([max 1 (pods/2)]), 4:1
    oversubscription, placement seed 9. *)

val evacuate :
  Ninja_engine.Run_ctx.t ->
  topo:Ninja_hardware.Topology.t ->
  vms:int ->
  vm_gb:float ->
  window:int ->
  evac
(** Place [vms] VMs across the IB pods ({!Ninja_hardware.Topology.place})
    and migrate every one to an Ethernet host. *)

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** VM-count sweep plus the datacenter evacuation study (1000 VMs in
    quick mode too), domain-parallel when the context carries a pool. *)
