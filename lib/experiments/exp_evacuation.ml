open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_scheduler
open Ninja_planner
open Ninja_workloads
open Exp_common

type row = {
  n_vms : int;
  strategy : Solver.t;
  steps : int;
  makespan : float;
  mean_step : float;
  downtime : float;
  total : float;
}

let measure rc ~n_vms ~strategy ?(uplink_gbps = 10.0) () =
  let env = fresh ~spec:Spec.agc rc in
  let sim = env.sim and cluster = env.cluster in
  (* The racks share one constrained uplink — the contended bottleneck
     every evacuation step must cross. *)
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps uplink_gbps)
    ~latency:(Time.us 50);
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:n_vms in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb 2.0) ~until:600.0 ()));
  let sched = Cloud_scheduler.create ~strategy ninja in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      ignore (Cloud_scheduler.execute sched (Cloud_scheduler.Disaster { rack = 0 }));
      Ninja.wait_job ninja);
  run_to_completion env;
  match Cloud_scheduler.history sched with
  | [ r ] ->
    let report = Option.get r.Cloud_scheduler.report in
    let steps = List.length report.Executor.step_results in
    let mean_step =
      if steps = 0 then 0.0
      else
        List.fold_left
          (fun acc (sr : Executor.step_result) ->
            acc +. sec (Time.diff sr.Executor.finished sr.Executor.started))
          0.0 report.Executor.step_results
        /. float_of_int steps
    in
    {
      n_vms;
      strategy;
      steps;
      makespan = sec report.Executor.makespan;
      mean_step;
      downtime = sec report.Executor.total_downtime;
      total = sec r.Cloud_scheduler.breakdown.Breakdown.total;
    }
  | l -> failwith (Printf.sprintf "exp_evacuation: expected 1 record, got %d" (List.length l))

let run rc =
  let counts = match rc.Run_ctx.mode with Quick -> [ 2; 4 ] | Full -> [ 2; 4; 8 ] in
  let uplink_gbps = 10.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Batch evacuation makespan: sequential vs grouped planner over a %.0f Gb/s \
            inter-rack uplink"
           uplink_gbps)
      ~columns:
        [
          "VMs"; "strategy"; "steps"; "makespan [s]"; "mean step [s]"; "downtime [s]";
          "total [s]";
        ]
  in
  (* Pinned to the two makespan-oriented strategies: this grid feeds the
     bench trajectory, and the swap solver belongs to the communication
     -cost experiment (exp_placement), not the evacuation one. *)
  let strategies = [ Solver.sequential; Solver.grouped ] in
  let grid =
    List.concat_map (fun n_vms -> List.map (fun s -> (n_vms, s)) strategies) counts
  in
  sweep rc
    ~f:(fun rc (n_vms, strategy) -> measure rc ~n_vms ~strategy ~uplink_gbps ())
    grid
  |> List.iter (fun r ->
         Table.add_row table
           [
             string_of_int r.n_vms;
             Solver.name r.strategy;
             string_of_int r.steps;
             Printf.sprintf "%.1f" r.makespan;
             Printf.sprintf "%.1f" r.mean_step;
             Printf.sprintf "%.2f" r.downtime;
             Printf.sprintf "%.1f" r.total;
           ]);
  [ table ]
