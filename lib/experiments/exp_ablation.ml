open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_vmm
open Ninja_guestos
open Ninja_mpi
open Ninja_workloads
open Exp_common

(* ------------------------------------------------------------------ *)
(* VMM-bypass vs virtio vs emulated NIC *)

type nic_setup = Bypass_ib | Virtio | Emulated

let nic_name = function
  | Bypass_ib -> "VMM-bypass IB HCA"
  | Virtio -> "virtio-net (para-virtual)"
  | Emulated -> "emulated NIC"

let make_pair cluster setup =
  List.init 2 (fun i ->
      let host = Cluster.find_node cluster (Printf.sprintf "ib%02d" i) in
      let vm =
        Vm.create cluster ~name:(Printf.sprintf "vm%d" i) ~host ~vcpus:8
          ~mem_bytes:(Units.gb 20.0) ()
      in
      (match setup with
      | Bypass_ib -> Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca)
      | Virtio -> ()
      | Emulated ->
        ignore (Vm.detach_device vm ~tag:"virtio0");
        Vm.attach_device vm (Device.make ~tag:"e1000" ~pci_addr:"00:03.0" Device.Emulated_nic));
      (vm, Guest.boot vm))

let p2p_throughput rc setup =
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let members = make_pair cluster setup in
  let bytes = 2.0e9 in
  let elapsed = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then Mpi.send ctx ~dst:1 ~bytes
        else begin
          let t0 = Mpi.wtime ctx in
          ignore (Mpi.recv ctx ());
          elapsed := Mpi.wtime ctx -. t0
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  run_to_completion env;
  bytes /. !elapsed /. 1e9

let p2p_latency rc setup =
  (* Mean one-way latency of 100 pingpongs of an 8-byte payload. *)
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let members = make_pair cluster setup in
  let n = 100 in
  let elapsed = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        let t0 = Mpi.wtime ctx in
        for _ = 1 to n do
          if Mpi.rank ctx = 0 then begin
            Mpi.send ctx ~dst:1 ~bytes:8.0;
            ignore (Mpi.recv ctx ())
          end
          else begin
            ignore (Mpi.recv ctx ());
            Mpi.send ctx ~dst:0 ~bytes:8.0
          end
        done;
        if Mpi.rank ctx = 0 then elapsed := Mpi.wtime ctx -. t0)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  run_to_completion env;
  !elapsed /. float_of_int (2 * n) *. 1e6

let ft_runtime rc setup =
  (* FT class C (all-to-all heavy) on 2 VMs x 2 ranks: communication-bound
     enough that the guest NIC class shows in the total. *)
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let members = make_pair cluster setup in
  let finished = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        Npb.run ctx Npb.FT Npb.C ();
        if Mpi.rank ctx = 0 then finished := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  run_until env (Time.minutes 120);
  !finished

let bypass rc =
  let table =
    Table.create
      ~title:"Ablation: VMM-bypass vs para-virtual vs emulated I/O (2 VMs, ib00/ib01)"
      ~columns:
        [ "Guest NIC"; "p2p throughput [GB/s]"; "p2p latency [us]"; "FT.C time [s]" ]
  in
  sweep rc
    ~f:(fun rc setup ->
      (setup, p2p_throughput rc setup, p2p_latency rc setup, ft_runtime rc setup))
    [ Bypass_ib; Virtio; Emulated ]
  |> List.iter (fun (setup, tp, lat, ft) ->
         Table.add_row table
           [
             nic_name setup;
             Printf.sprintf "%.2f" tp;
             Printf.sprintf "%.1f" lat;
             Printf.sprintf "%.1f" ft;
           ]);
  [ table ]

(* ------------------------------------------------------------------ *)
(* TCP vs RDMA migration sender (§V) *)

let migrate_once rc ~transport ~size_gb =
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let src = Cluster.find_node cluster "ib00" in
  let dst = Cluster.find_node cluster "ib01" in
  let vm = Vm.create cluster ~name:"vm0" ~host:src ~vcpus:8 ~mem_bytes:(Units.gb 20.0) () in
  let stats = ref None in
  Sim.spawn sim (fun () ->
      let region = Memory.alloc (Vm.memory vm) ~bytes:(Units.gb size_gb) in
      Vm.guest_write vm region ~offset:0.0 ~bytes:(Units.gb size_gb) ~bandwidth:3.0e9;
      Vm.pause vm;
      stats := Some (Migration.migrate vm ~dst ~transport ()));
  run_to_completion env;
  Option.get !stats

let rdma_migration rc =
  let sizes = match rc.Run_ctx.mode with Quick -> [ 16.0 ] | Full -> [ 2.0; 8.0; 16.0 ] in
  let table =
    Table.create ~title:"Ablation: migration sender transport (frozen 20 GB VM)"
      ~columns:[ "Footprint"; "TCP sender [s]"; "RDMA sender [s]"; "speedup" ]
  in
  sweep rc
    ~f:(fun rc size_gb ->
      let tcp = sec (migrate_once rc ~transport:Migration.Tcp ~size_gb).Migration.duration in
      let rdma = sec (migrate_once rc ~transport:Migration.Rdma ~size_gb).Migration.duration in
      (size_gb, tcp, rdma))
    sizes
  |> List.iter (fun (size_gb, tcp, rdma) ->
         Table.add_float_row table (Printf.sprintf "%.0fGB" size_gb) [ tcp; rdma; tcp /. rdma ]);
  [ table ]

(* ------------------------------------------------------------------ *)
(* Precopy vs postcopy of a live, dirtying guest *)

let copy_mode_run rc ~mode =
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let src = Cluster.find_node cluster "ib00" in
  let dst = Cluster.find_node cluster "ib01" in
  let vm = Vm.create cluster ~name:"vm0" ~host:src ~vcpus:8 ~mem_bytes:(Units.gb 20.0) () in
  let stats = ref None in
  let work_done_at = ref 0.0 in
  let array = Units.gb 4.0 in
  Sim.spawn sim (fun () ->
      let region = Memory.alloc (Vm.memory vm) ~bytes:array in
      Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9;
      (* A guest that keeps writing (dirtying) and computing. *)
      Sim.spawn sim (fun () ->
          for _ = 1 to 30 do
            Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9;
            Vm.compute vm ~core_seconds:1.0
          done;
          work_done_at := Time.to_sec_f (Sim.now sim));
      Sim.sleep (Time.ms 100);
      stats := Some (Migration.migrate vm ~dst ~mode ()));
  run_until env (Time.minutes 60);
  (Option.get !stats, !work_done_at)

let postcopy rc =
  let (pre, pre_work), (post, post_work) =
    match
      sweep rc
        ~f:(fun rc mode -> copy_mode_run rc ~mode)
        [ Migration.Precopy; Migration.Postcopy ]
    with
    | [ pre; post ] -> (pre, post)
    | _ -> assert false
  in
  let table =
    Table.create
      ~title:"Ablation: precopy vs postcopy migration of a live, dirtying guest (4 GB writer)"
      ~columns:
        [ "Mode"; "migration [s]"; "downtime [s]"; "bytes sent [GB]"; "guest work done at [s]" ]
  in
  let row name (s : Migration.stats) work =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.1f" (sec s.Migration.duration);
        Printf.sprintf "%.2f" (sec s.Migration.downtime);
        Printf.sprintf "%.1f" (s.Migration.transferred_bytes /. 1e9);
        Printf.sprintf "%.1f" work;
      ]
  in
  row "precopy" pre pre_work;
  row "postcopy" post post_work;
  [ table ]

(* ------------------------------------------------------------------ *)
(* Quiesced vs live migration *)

let quiesce_run rc ~frozen =
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let src = Cluster.find_node cluster "ib00" in
  let dst = Cluster.find_node cluster "ib01" in
  let vm = Vm.create cluster ~name:"vm0" ~host:src ~vcpus:8 ~mem_bytes:(Units.gb 20.0) () in
  let stats = ref None in
  let array = Units.gb 4.0 in
  Sim.spawn sim (fun () ->
      let region = Memory.alloc (Vm.memory vm) ~bytes:array in
      Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9;
      (* A writer that keeps re-dirtying the array, as memtest does. *)
      Sim.spawn sim (fun () ->
          for _ = 1 to 50 do
            Vm.guest_write vm region ~offset:0.0 ~bytes:array ~bandwidth:3.0e9
          done);
      Sim.sleep (Time.ms 100);
      if frozen then Vm.pause vm;
      stats := Some (Migration.migrate vm ~dst ());
      Vm.resume vm);
  run_until env (Time.minutes 60);
  Option.get !stats

let quiesce rc =
  let frozen, live =
    match sweep rc ~f:(fun rc frozen -> quiesce_run rc ~frozen) [ true; false ] with
    | [ frozen; live ] -> (frozen, live)
    | _ -> assert false
  in
  let table =
    Table.create
      ~title:"Ablation: SymVirt-fenced (frozen) vs live migration of a dirtying guest (4 GB writer)"
      ~columns:[ "Mode"; "duration [s]"; "precopy passes"; "bytes sent [GB]"; "downtime [s]" ]
  in
  let row name (s : Migration.stats) =
    Table.add_row table
      [
        name;
        Printf.sprintf "%.1f" (sec s.Migration.duration);
        string_of_int s.Migration.rounds;
        Printf.sprintf "%.1f" (s.Migration.transferred_bytes /. 1e9);
        Printf.sprintf "%.2f" (sec s.Migration.downtime);
      ]
  in
  row "frozen at SymVirt fence" frozen;
  row "live (uncoordinated)" live;
  [ table ]
