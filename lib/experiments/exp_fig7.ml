open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_workloads
open Exp_common

type row = {
  kernel : string;
  baseline : float;
  proposed : float;
  migration : float;
  hotplug : float;
  linkup : float;
}

let klass_of = function Quick -> Npb.C | Full -> Npb.D

let vm_count = function Quick -> 2 | Full -> 8

let procs_per_vm = function Quick -> 2 | Full -> 8

(* Trigger the migration the paper's three minutes into the run (scaled
   down in quick mode). *)
let trigger_at = function Quick -> Time.sec 30 | Full -> Time.minutes 3

let one_run rc kernel ~migrate_once =
  let mode = rc.Run_ctx.mode in
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let n = vm_count mode in
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:n in
  let dsts = hosts cluster ~prefix:"ib" ~first:n ~count:n in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  let finished_at = ref 0.0 in
  ignore
    (Ninja.launch ninja ~procs_per_vm:(procs_per_vm mode) (fun ctx ->
         Npb.run ctx kernel (klass_of mode) ();
         if Ninja_mpi.Mpi.rank ctx = 0 then finished_at := Ninja_mpi.Mpi.wtime ctx));
  let breakdown = ref Breakdown.zero in
  if migrate_once then
    Sim.spawn sim (fun () ->
        Sim.sleep (trigger_at mode);
        breakdown := Ninja.fallback ninja ~dsts ());
  Sim.spawn sim (fun () -> Ninja.wait_job ninja);
  run_to_completion env;
  (!finished_at, !breakdown)

let measure rc kernel =
  let baseline, _ = one_run rc kernel ~migrate_once:false in
  let proposed, b = one_run rc kernel ~migrate_once:true in
  {
    kernel = Npb.kernel_name kernel;
    baseline;
    proposed;
    migration = sec b.Breakdown.migration;
    hotplug = sec (Breakdown.hotplug b);
    linkup = sec b.Breakdown.linkup;
  }

let run rc =
  let table =
    Table.create
      ~title:
        (match rc.Run_ctx.mode with
        | Full ->
          "Fig. 7: Ninja migration overhead on NPB class D, 64 procs [seconds] (paper approx in parens)"
        | Quick -> "Fig. 7 (quick: class C, 4 procs): Ninja migration overhead on NPB [seconds]")
      ~columns:[ "Kernel"; "baseline"; "proposed"; "migration"; "hotplug"; "link-up" ]
  in
  let rows = sweep rc ~f:(fun rc kernel -> measure rc kernel) Npb.all in
  List.iter
    (fun r ->
      let paper_base, paper_over =
        match rc.Run_ctx.mode with
        | Full ->
          ( Printf.sprintf " (%.0f)" (Paper_data.fig7_baseline r.kernel),
            Printf.sprintf " (+%.0f)" (Paper_data.fig7_overhead r.kernel) )
        | Quick -> ("", "")
      in
      Table.add_row table
        [
          r.kernel;
          Printf.sprintf "%.1f%s" r.baseline paper_base;
          Printf.sprintf "%.1f%s" r.proposed paper_over;
          Printf.sprintf "%.1f" r.migration;
          Printf.sprintf "%.1f" r.hotplug;
          Printf.sprintf "%.1f" r.linkup;
        ])
    rows;
  [ table ]
