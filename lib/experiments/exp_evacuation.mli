(** Batch evacuation under a shared bottleneck: VM count × planner
    strategy.

    The §II-A disaster-recovery scenario at batch scale: N VMs on the IB
    rack evacuate to the Ethernet rack over one constrained inter-rack
    uplink. The sweep compares the planner's [Sequential] baseline (one
    migration at a time) against [Grouped] (bandwidth-aware parallel
    waves) on evacuation makespan, per-step latency and aggregate
    downtime. *)

type row = {
  n_vms : int;
  strategy : Ninja_planner.Solver.t;
  steps : int;
  makespan : float;  (** migration-phase plan makespan [s] *)
  mean_step : float;  (** mean per-step latency [s] *)
  downtime : float;  (** aggregate stop-and-copy downtime [s] *)
  total : float;  (** full trigger-to-resume breakdown total [s] *)
}

val measure :
  Ninja_engine.Run_ctx.t ->
  n_vms:int ->
  strategy:Ninja_planner.Solver.t ->
  ?uplink_gbps:float ->
  unit ->
  row

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** VM-count x strategy matrix, domain-parallel when the context carries
    a pool. *)
