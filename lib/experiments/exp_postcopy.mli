(** Postcopy experiment: precopy vs postcopy migration of a live,
    dirtying guest across datacenter topologies — downtime, total time
    and the prioritized-pull latency tail, per topology. On the
    oversubscribed leaf-spine entries precopy burns its round budget and
    pays the residual dirty set as stop-and-copy downtime; postcopy's
    downtime stays a constant hot-set push. *)

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
