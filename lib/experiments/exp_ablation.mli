(** Ablation benches for the design claims the paper argues qualitatively.

    - [bypass]: §IV-B's "no performance overhead during normal operations"
      — point-to-point throughput and an NPB CG run over the VMM-bypass
      HCA vs. para-virtualised virtio vs. a fully emulated NIC.
    - [rdma_migration]: §V — the CPU-bound single-threaded TCP migration
      sender vs. an RDMA-based sender.
    - [quiesce]: what the SymVirt fence buys the migration itself — a
      frozen guest converges in one precopy pass; migrating a live,
      dirtying guest costs extra rounds, bytes and downtime (and with a
      bypass device attached it is impossible outright). *)

val bypass : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list

val rdma_migration : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list

val postcopy : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Precopy vs postcopy of a live, dirtying guest: postcopy bounds both
    the bytes on the wire (each page moves once) and the downtime, at the
    price of remote-fault slowdown while the pull runs — the trade-off the
    authors' later work (Yabusame) explores. *)

val quiesce : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
