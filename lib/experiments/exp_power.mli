(** Power-aware consolidation study (§VII future work: "intelligent VM
    placement in a data center ... for power saving", backed by §II-A's
    utilisation argument — the LHC grid numbers where 70% of jobs use less
    than 14% of the CPU).

    Two workloads (a CPU-bound HPC kernel and an LHC-style under-utilised
    job) each run spread (4 VMs on 4 hosts) and consolidated (4 VMs on 2
    hosts, migrated by Ninja at t=5 s), with per-node energy integrated
    over the run (idle hosts sleep). Consolidation should roughly halve
    the energy of the under-utilised job at negligible slowdown, and buy
    nothing for the CPU-bound one — placement policy must look at
    utilisation, which is the paper's §II point. *)

type row = { label : string; duration : float; energy_kj : float }

val measure : Ninja_engine.Run_ctx.t -> consolidated:bool -> busy:bool -> row
(** Iteration counts scale with the context's mode. *)

val run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list
(** Workload x placement matrix, domain-parallel when the context
    carries a pool. *)
