open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_workloads
open Exp_common

type row = {
  n_vms : int;
  migration : float;
  per_vm_rate : float;
  hotplug : float;
  coordination : float;
}

let measure rc ~n_vms ~uplink_gbps =
  let env = fresh ~spec:Spec.agc rc in
  let sim = env.sim and cluster = env.cluster in
  (* The two racks share one constrained uplink — the congestion source. *)
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps uplink_gbps)
    ~latency:(Time.us 50);
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:n_vms in
  let dsts = hosts cluster ~prefix:"eth" ~first:0 ~count:n_vms in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb 2.0) ~until:600.0 ()));
  let result = ref None in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      result := Some (Ninja.fallback ninja ~dsts);
      Ninja.wait_job ninja);
  run_to_completion env;
  let b = Option.get !result in
  let image_per_vm =
    (* Every VM ships the same image: OS resident + the 2 GiB array. *)
    2.3e9 +. Units.gb 2.0
  in
  {
    n_vms;
    migration = sec b.Breakdown.migration;
    per_vm_rate = image_per_vm /. sec b.Breakdown.migration /. 1e9;
    hotplug = sec (Breakdown.hotplug b);
    coordination = sec b.Breakdown.coordination;
  }

let run rc =
  let counts = match rc.Run_ctx.mode with Quick -> [ 1; 8 ] | Full -> [ 1; 2; 4; 8 ] in
  let uplink_gbps = 10.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Scalability (paper section V open issue): N simultaneous migrations over a %.0f Gb/s \
            inter-rack uplink"
           uplink_gbps)
      ~columns:
        [ "VMs"; "migration [s]"; "per-VM rate [GB/s]"; "hotplug [s]"; "coordination [s]" ]
  in
  sweep rc ~f:(fun rc n_vms -> measure rc ~n_vms ~uplink_gbps) counts
  |> List.iter (fun r ->
      Table.add_row table
        [
          string_of_int r.n_vms;
          Printf.sprintf "%.1f" r.migration;
          Printf.sprintf "%.3f" r.per_vm_rate;
          Printf.sprintf "%.1f" r.hotplug;
          Printf.sprintf "%.2f" r.coordination;
        ]);
  [ table ]
