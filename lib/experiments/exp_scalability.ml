open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_vmm
open Ninja_core
open Ninja_workloads
open Exp_common

type row = {
  n_vms : int;
  migration : float;
  per_vm_rate : float;
  hotplug : float;
  coordination : float;
}

let measure rc ~n_vms ~uplink_gbps =
  let env = fresh ~spec:Spec.agc rc in
  let sim = env.sim and cluster = env.cluster in
  (* The two racks share one constrained uplink — the congestion source. *)
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps uplink_gbps)
    ~latency:(Time.us 50);
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:n_vms in
  let dsts = hosts cluster ~prefix:"eth" ~first:0 ~count:n_vms in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb 2.0) ~until:600.0 ()));
  let result = ref None in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      result := Some (Ninja.fallback ninja ~dsts ());
      Ninja.wait_job ninja);
  run_to_completion env;
  let b = Option.get !result in
  let image_per_vm =
    (* Every VM ships the same image: OS resident + the 2 GiB array. *)
    2.3e9 +. Units.gb 2.0
  in
  {
    n_vms;
    migration = sec b.Breakdown.migration;
    per_vm_rate = image_per_vm /. sec b.Breakdown.migration /. 1e9;
    hotplug = sec (Breakdown.hotplug b);
    coordination = sec b.Breakdown.coordination;
  }

(* ------------------------------------------------------------------ *)
(* Datacenter evacuation at scale.

   The two-rack sweep above isolates the congestion effect; this study
   takes it to datacenter scale. A leaf-spine datacenter's IB pods are
   drained entirely — every VM moves to an Ethernet pod under a bounded
   migration window, as a fleet orchestrator would run it. Migration
   traffic climbs the three-tier hierarchy and contends on the
   oversubscribed leaf and pod uplinks, so the makespan is a fabric
   property; the run itself stays cheap because each flow join/leave
   re-rates only its bottleneck component (the incremental Flownet
   solver), not the whole fabric. The table reports simulated quantities
   only — host wall time is tracked by the bench harness — so output is
   byte-identical at any [-j]. *)

type evac = {
  e_vms : int;
  e_hosts : int;
  e_window : int;
  e_moved_gb : float;
  e_makespan : float;
  e_mean_migration : float;
}

let default_window = 64

let dc_topology ~pods ~racks ~hosts ~mem_gb =
  match
    Topology.v ~tier:Topology.Leaf_spine ~pods ~racks_per_pod:racks
      ~hosts_per_rack:hosts ~ib_pods:(max 1 (pods / 2)) ~oversub:4.0 ~mem_gb ~seed:9L ()
  with
  | Ok t -> t
  | Error e -> failwith ("Exp_scalability.dc_topology: " ^ e)

let evacuate rc ~topo ~vms ~vm_gb ~window =
  let rc = Run_ctx.with_topology (Some (Topology.to_string topo)) rc in
  let env = fresh rc in
  let sim = env.sim and cluster = env.cluster in
  let vm_bytes = Units.gb vm_gb in
  let ib_pods = List.init topo.Topology.ib_pods Fun.id in
  let placement = Topology.place topo ~pods:ib_pods ~vms ~vm_bytes () in
  let fleet =
    List.mapi
      (fun i host ->
        Vm.create cluster
          ~name:(Printf.sprintf "vm%04d" i)
          ~host:(Cluster.find_node cluster host) ~vcpus:1 ~mem_bytes:vm_bytes
          ~os_resident_bytes:(vm_bytes /. 2.) ())
      placement
  in
  let eth = Array.of_list (Cluster.eth_only_nodes cluster) in
  (* Least-loaded packing decided at migration start. The registry only
     counts a VM at its destination once the move completes, so the
     window's in-flight arrivals are tracked as reservations — without
     them every migration in a window would pick the same host. *)
  let inflight = Hashtbl.create window in
  let reserved (n : Node.t) =
    Option.value (Hashtbl.find_opt inflight n.Node.id) ~default:0.0
  in
  let reserve (n : Node.t) b = Hashtbl.replace inflight n.Node.id (reserved n +. b) in
  let pick () =
    let free n = Cluster.node_free_bytes cluster n -. reserved n in
    let best = ref eth.(0) in
    Array.iter (fun n -> if free n > free !best then best := n) eth;
    if free !best < vm_bytes then
      failwith "Exp_scalability.evacuate: Ethernet pods cannot absorb the fleet";
    !best
  in
  let sem = Semaphore.create window in
  let moved = ref 0.0 and busy = ref 0.0 in
  List.iter
    (fun vm ->
      Sim.spawn sim ~name:(Vm.name vm) (fun () ->
          Semaphore.with_permit sem (fun () ->
              let dst = pick () in
              reserve dst vm_bytes;
              let stats = Migration.migrate vm ~dst ~transport:Migration.Tcp () in
              reserve dst (-.vm_bytes);
              moved := !moved +. stats.Migration.transferred_bytes;
              busy := !busy +. sec stats.Migration.duration)))
    fleet;
  run_to_completion env;
  {
    e_vms = vms;
    e_hosts = Topology.host_count topo;
    e_window = window;
    e_moved_gb = !moved /. Units.gb 1.0;
    e_makespan = sec (Sim.now sim);
    e_mean_migration = !busy /. float_of_int vms;
  }

let run rc =
  let counts = match rc.Run_ctx.mode with Quick -> [ 1; 8 ] | Full -> [ 1; 2; 4; 8 ] in
  let uplink_gbps = 10.0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Scalability (paper section V open issue): N simultaneous migrations over a %.0f Gb/s \
            inter-rack uplink"
           uplink_gbps)
      ~columns:
        [ "VMs"; "migration [s]"; "per-VM rate [GB/s]"; "hotplug [s]"; "coordination [s]" ]
  in
  sweep rc ~f:(fun rc n_vms -> measure rc ~n_vms ~uplink_gbps) counts
  |> List.iter (fun r ->
      Table.add_row table
        [
          string_of_int r.n_vms;
          Printf.sprintf "%.1f" r.migration;
          Printf.sprintf "%.3f" r.per_vm_rate;
          Printf.sprintf "%.1f" r.hotplug;
          Printf.sprintf "%.2f" r.coordination;
        ]);
  let dc =
    Table.create
      ~title:
        (Printf.sprintf
           "Datacenter evacuation: IB pods drained into Ethernet pods (leaf-spine, 4:1 \
            oversubscription, migration window %d)"
           default_window)
      ~columns:
        [ "VMs"; "hosts"; "moved [GB]"; "makespan [sim s]"; "mean migration [s]" ]
  in
  (* (vms, pods, racks/pod, hosts/rack); 0.5 GB VMs keep the 1000-VM
     point inside the quick-mode budget. *)
  let points =
    match rc.Run_ctx.mode with
    | Quick -> [ (200, 2, 2, 8); (1000, 4, 4, 16) ]
    | Full -> [ (200, 2, 2, 8); (500, 4, 2, 16); (1000, 4, 4, 16) ]
  in
  sweep rc
    ~f:(fun rc (vms, pods, racks, hosts) ->
      let topo = dc_topology ~pods ~racks ~hosts ~mem_gb:48.0 in
      evacuate rc ~topo ~vms ~vm_gb:0.5 ~window:default_window)
    points
  |> List.iter (fun e ->
      Table.add_row dc
        [
          string_of_int e.e_vms;
          string_of_int e.e_hosts;
          Printf.sprintf "%.1f" e.e_moved_gb;
          Printf.sprintf "%.1f" e.e_makespan;
          Printf.sprintf "%.2f" e.e_mean_migration;
        ]);
  [ table; dc ]
