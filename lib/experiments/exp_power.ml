open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_mpi
open Exp_common

type row = { label : string; duration : float; energy_kj : float }

(* Long enough that consolidation's migration cost amortises for the
   under-utilised job; quick mode shrinks everything. *)
let scale = function Quick -> 0.3 | Full -> 1.0

let iterations ~mode ~busy =
  int_of_float (float_of_int (if busy then 40 else 200) *. scale mode)

(* [busy]: a CPU-saturating kernel. Otherwise an LHC-style job that uses
   ~15% of a core (paper §II-A quotes 70% of grid jobs below 14%). *)
let step ~busy ctx _i =
  if busy then Mpi.compute ctx ~seconds:2.0
  else begin
    Mpi.compute ctx ~seconds:0.3;
    Sim.sleep (Time.of_sec_f 1.7)
  end;
  Mpi.allreduce ctx ~bytes:1.0e6;
  Mpi.checkpoint_point ctx

(* One deterministic run; with [meter_until = Some t] a power meter
   integrates every node's draw up to t. *)
let one_run rc ~consolidated ~busy ~meter_until =
  let env = fresh ~spec:Spec.agc rc in
  let sim = env.sim and cluster = env.cluster in
  let ib = hosts cluster ~prefix:"ib" ~first:0 ~count:4 in
  let eth = hosts cluster ~prefix:"eth" ~first:0 ~count:2 in
  let ninja = Ninja.setup cluster ~hosts:ib () in
  let finished_at = ref 0.0 in
  ignore
    (Ninja.launch ninja ~procs_per_vm:8 (fun ctx ->
         for i = 1 to iterations ~mode:rc.Run_ctx.mode ~busy do
           step ~busy ctx i
         done;
         if Mpi.rank ctx = 0 then finished_at := Mpi.wtime ctx));
  if consolidated then
    Sim.spawn sim (fun () ->
        Sim.sleep (Time.sec 5);
        let plan vm =
          match Ninja.vms ninja |> List.mapi (fun i v -> (v, List.nth eth (i / 2))) with
          | l -> List.assq vm l
        in
        ignore (Ninja.migrate ninja ~plan ()));
  (* A host can only be powered off when no VM lives on it. *)
  let awake node =
    List.exists (fun vm -> (Ninja_vmm.Vm.host vm).Node.id = node.Node.id) (Ninja.vms ninja)
  in
  let meter =
    Option.map
      (fun until -> Power.measure sim ~awake ~until (Cluster.nodes cluster))
      meter_until
  in
  Sim.spawn sim (fun () -> Ninja.wait_job ninja);
  run_to_completion env;
  (!finished_at, Option.map Power.energy_joules meter)

let measure rc ~consolidated ~busy =
  (* Pass 1 finds the run length; pass 2 replays it with the meter so the
     integration stops exactly at job completion. *)
  let duration, _ = one_run rc ~consolidated ~busy ~meter_until:None in
  let _, energy = one_run rc ~consolidated ~busy ~meter_until:(Some (Time.of_sec_f duration)) in
  {
    label =
      Printf.sprintf "%s, %s"
        (if busy then "CPU-bound" else "under-utilised (~15%)")
        (if consolidated then "consolidated 2 hosts" else "spread 4 hosts");
    duration;
    energy_kj = Option.get energy /. 1e3;
  }

let run rc =
  let table =
    Table.create
      ~title:
        "Power-aware consolidation (section VII future work): 4 VMs, 32 ranks; idle hosts sleep"
      ~columns:[ "Case"; "job time [s]"; "energy [kJ]" ]
  in
  sweep rc
    ~f:(fun rc (busy, consolidated) -> measure rc ~consolidated ~busy)
    [ (false, false); (false, true); (true, false); (true, true) ]
  |> List.iter (fun r ->
         Table.add_row table
           [ r.label; Printf.sprintf "%.1f" r.duration; Printf.sprintf "%.1f" r.energy_kj ]);
  [ table ]
