(** Experiment registry: names every reproducible table/figure and maps it
    to its runner, for the CLI and the bench harness. *)

type entry = {
  name : string;  (** e.g. ["table2"] *)
  description : string;
  run : Ninja_engine.Run_ctx.t -> Ninja_metrics.Table.t list;
      (** All per-run configuration (seed, mode, faults, sinks, pool)
          comes from the context — runners keep no state between calls. *)
}

val all : entry list

val find : string -> entry option

val names : string list

val run_entry : Ninja_engine.Run_ctx.t -> entry -> Ninja_metrics.Table.t list
(** Run an entry and, when the context has a metrics sink, emit each
    produced table to it as one CSV chunk (prefixed with a
    [# <name> table <i>] comment line), in table order. *)
