open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_vmm
open Ninja_core
open Ninja_workloads
open Exp_common

let virtio_tag = "virtio0"

let hca_of _vm = [ Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca ]

(* The destination-side NIC for Ethernet rows: a freshly hot-added virtio
   device (the source one is the device under test and was unplugged). *)
let virtio_of _vm = [ Device.make ~tag:"vnic1" ~pci_addr:"00:04.0" Device.Virtio_net ]

let measure rc combo ~hotplug ~linkup =
  let src_ib, dst_ib =
    match combo with
    | Paper_data.Ib_to_ib -> (true, true)
    | Paper_data.Ib_to_eth -> (true, false)
    | Paper_data.Eth_to_ib -> (false, true)
    | Paper_data.Eth_to_eth -> (false, false)
  in
  let env = fresh ~spec:Spec.agc_ib16 rc in
  let sim = env.sim and cluster = env.cluster in
  let hs = hosts cluster ~prefix:"ib" ~first:0 ~count:8 in
  let ninja = Ninja.setup cluster ~hosts:hs ~attach_hca:src_ib () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb 2.0) ~until:150.0 ()));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      (* The device under test is the side's interconnect device: the
         bypass HCA on InfiniBand sides, the virtio NIC on Ethernet
         sides. *)
      let detach vm =
        if src_ib then [ "vf0" ]
        else if Vm.find_device vm ~tag:virtio_tag <> None then [ virtio_tag ]
        else []
      in
      let attach vm = if dst_ib then hca_of vm else virtio_of vm in
      let b =
        Ninja.migrate ninja ~plan:(fun vm -> Vm.host vm) ~detach ~attach ()
      in
      hotplug := sec (Breakdown.hotplug b);
      linkup := sec b.Breakdown.linkup;
      Ninja.wait_job ninja);
  run_to_completion env

let run rc =
  let repeats = match rc.Run_ctx.mode with Quick -> 1 | Full -> 3 in
  let table =
    Table.create ~title:"Table II: elapsed time of hotplug and link-up [seconds]"
      ~columns:
        [ "Combination"; "hotplug (paper)"; "hotplug (ours)"; "link-up (paper)"; "link-up (ours)" ]
  in
  let rows =
    sweep rc
      ~f:(fun rc combo ->
        let one () =
          let hotplug = ref 0.0 and linkup = ref 0.0 in
          measure rc combo ~hotplug ~linkup;
          (!hotplug, !linkup)
        in
        (* Deterministic simulation: repeats exist to mirror the paper's
           best-of-three protocol, not to tame noise. *)
        let samples = List.init repeats (fun _ -> one ()) in
        (combo, Stats.minimum (List.map fst samples), Stats.minimum (List.map snd samples)))
      Paper_data.combos
  in
  List.iter
    (fun (combo, hotplug, linkup) ->
      Table.add_row table
        [
          Paper_data.combo_name combo;
          Printf.sprintf "%.2f" (Paper_data.table2_hotplug combo);
          Printf.sprintf "%.2f" hotplug;
          Printf.sprintf "%.2f" (Paper_data.table2_linkup combo);
          Printf.sprintf "%.2f" linkup;
        ])
    rows;
  [ table ]
