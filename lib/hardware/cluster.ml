open Ninja_engine
open Ninja_flownet

type net = Ib | Eth

type inter_rack = { link_ab : Fabric.link; link_ba : Fabric.link; latency : Time.span }

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  spec : Spec.t;
  nodes : Node.t array;
  trace : Trace.t;
  probes : Probe.t;
  inter_racks : (int * int, inter_rack) Hashtbl.t;
  injector : Ninja_faults.Injector.t;
  dead_nodes : (int, unit) Hashtbl.t;
}

exception Unreachable of string

exception Node_dead of string

let sim t = t.sim

let fabric t = t.fabric

let spec t = t.spec

let trace t = t.trace

let create sim ?(spec = Spec.agc) () =
  let fabric = Fabric.create sim in
  let nodes =
    List.concat_map
      (fun (g : Spec.group) ->
        List.init g.count (fun i ->
            ( g,
              Printf.sprintf "%s%02d" g.name_prefix i )))
      spec.groups
    |> List.mapi (fun id ((g : Spec.group), name) ->
           Node.create sim fabric ~id ~name ~rack:g.rack ~cores:g.cores ~mem_bytes:g.mem_bytes
             ~with_ib:g.with_ib)
    |> Array.of_list
  in
  let trace = Trace.create sim in
  let probes = Probe.create sim in
  let injector = Ninja_faults.Injector.create sim in
  Ninja_faults.Injector.set_trace injector trace;
  Ninja_faults.Injector.set_probes injector probes;
  {
    sim;
    fabric;
    spec;
    nodes;
    trace;
    probes;
    inter_racks = Hashtbl.create 4;
    injector;
    dead_nodes = Hashtbl.create 4;
  }

let injector t = t.injector

let probes t = t.probes

let kill_node t (n : Node.t) =
  if not (Hashtbl.mem t.dead_nodes n.Node.id) then begin
    Hashtbl.replace t.dead_nodes n.Node.id ();
    Trace.recordf t.trace ~category:"faults" "node %s died" n.Node.name;
    Probe.emit t.probes ~topic:"node" ~action:"death" ~subject:n.Node.name ()
  end

let node_alive t (n : Node.t) = not (Hashtbl.mem t.dead_nodes n.Node.id)

let alive_nodes t = List.filter (node_alive t) (Array.to_list t.nodes)

let node t i = t.nodes.(i)

let nodes t = Array.to_list t.nodes

let ib_nodes t = List.filter Node.has_ib (nodes t)

let eth_only_nodes t = List.filter (fun n -> not (Node.has_ib n)) (nodes t)

let find_node t name =
  match Array.find_opt (fun (n : Node.t) -> String.equal n.name name) t.nodes with
  | Some n -> n
  | None -> raise Not_found

let set_inter_rack t ~rack_a ~rack_b ~capacity ~latency =
  let mk a b =
    Fabric.add_link t.fabric ~name:(Printf.sprintf "wan.r%d-r%d" a b) ~capacity
  in
  let ir = { link_ab = mk rack_a rack_b; link_ba = mk rack_b rack_a; latency } in
  Hashtbl.replace t.inter_racks (rack_a, rack_b) ir

let inter_rack_hop t (src : Node.t) (dst : Node.t) =
  if src.rack = dst.rack then None
  else
    match Hashtbl.find_opt t.inter_racks (src.rack, dst.rack) with
    | Some ir -> Some ([ ir.link_ab ], ir.latency)
    | None -> (
      match Hashtbl.find_opt t.inter_racks (dst.rack, src.rack) with
      | Some ir -> Some ([ ir.link_ba ], ir.latency)
      | None -> Some ([], Time.zero))

let route_opt t ~net ~src ~dst =
  if src.Node.id = dst.Node.id then Some [ src.Node.loopback ]
  else
    match net with
    | Ib -> (
      match (src.Node.ib_port, dst.Node.ib_port) with
      | Some sp, Some dp when src.Node.rack = dst.Node.rack -> Some [ sp.tx; dp.rx ]
      | Some _, Some _ | Some _, None | None, Some _ | None, None -> None)
    | Eth ->
      let hop =
        match inter_rack_hop t src dst with Some (links, _) -> links | None -> []
      in
      Some (((src.Node.eth_port.tx :: hop) @ [ dst.Node.eth_port.rx ]))

let route t ~net ~src ~dst =
  match route_opt t ~net ~src ~dst with
  | Some r -> r
  | None ->
    raise
      (Unreachable
         (Printf.sprintf "no %s path from %s to %s"
            (match net with Ib -> "ib" | Eth -> "eth")
            src.Node.name dst.Node.name))

let path_latency t ~net ~src ~dst =
  let base =
    match net with
    | Ib -> Calibration.ib_latency
    | Eth -> Calibration.eth10g_latency
  in
  if src.Node.id = dst.Node.id then base
  else
    match inter_rack_hop t src dst with
    | Some (_, extra) -> Time.add base extra
    | None -> base
