open Ninja_engine
open Ninja_flownet

type net = Ib | Eth

type inter_rack = { link_ab : Fabric.link; link_ba : Fabric.link; latency : Time.span }

(* Aggregation layers of a generated topology: per-rack leaf (top of
   rack) uplink/downlink pairs, per-pod core uplink/downlink pairs, and
   — within IB pods only — per-rack IB aggregation pairs. *)
type topo_links = {
  topo : Topology.t;
  leaf_up : Fabric.link array; (* indexed by global rack id *)
  leaf_down : Fabric.link array;
  pod_up : Fabric.link array; (* indexed by pod *)
  pod_down : Fabric.link array;
  ib_up : Fabric.link option array; (* None outside IB pods *)
  ib_down : Fabric.link option array;
}

(* A registered VM: current node id and memory footprint. The registry
   lives here (below the VMM layer, which depends on this one) so it is
   keyed by name; {!Ninja_vmm.Vm} keeps it in sync from create/set_host. *)
type vm_entry = { mutable vm_node : int; vm_bytes : float }

type t = {
  sim : Sim.t;
  fabric : Fabric.t;
  spec : Spec.t;
  topo : topo_links option;
  nodes : Node.t array;
  by_name : (string, Node.t) Hashtbl.t;
  ib_list : Node.t list;
  eth_only_list : Node.t list;
  vms : (string, vm_entry) Hashtbl.t;
  residents : (string, unit) Hashtbl.t array; (* per node id *)
  used_bytes : float array; (* per node id, registered VM memory *)
  trace : Trace.t;
  probes : Probe.t;
  inter_racks : (int * int, inter_rack) Hashtbl.t;
  injector : Ninja_faults.Injector.t;
  dead_nodes : (int, unit) Hashtbl.t;
}

exception Unreachable of string

exception Node_dead of string

let sim t = t.sim

let fabric t = t.fabric

let spec t = t.spec

let trace t = t.trace

(* Aggregation links are created rack-major then pod-major, so link ids
   (and therefore solver tie-breaks) depend only on the topology. *)
let build_topo_links fabric topo =
  let racks = Topology.rack_count topo in
  let pods = topo.Topology.pods in
  let leaf = Topology.leaf_capacity topo in
  let pod_cap = Topology.pod_capacity topo in
  let ib_cap = Topology.ib_capacity topo in
  let mk fmt_dir r capacity = Fabric.add_link fabric ~name:(fmt_dir r) ~capacity in
  let leaf_up =
    Array.init racks (fun r -> mk (Printf.sprintf "leaf.up.r%d") r leaf)
  in
  let leaf_down =
    Array.init racks (fun r -> mk (Printf.sprintf "leaf.down.r%d") r leaf)
  in
  let pod_up =
    Array.init pods (fun p -> mk (Printf.sprintf "pod.up.p%d") p pod_cap)
  in
  let pod_down =
    Array.init pods (fun p -> mk (Printf.sprintf "pod.down.p%d") p pod_cap)
  in
  let ib_rack dir r =
    if Topology.is_ib_pod topo (Topology.pod_of_rack topo r) then
      Some (mk (Printf.sprintf "ibagg.%s.r%d" dir) r ib_cap)
    else None
  in
  let ib_up = Array.init racks (ib_rack "up") in
  let ib_down = Array.init racks (ib_rack "down") in
  { topo; leaf_up; leaf_down; pod_up; pod_down; ib_up; ib_down }

let create sim ?spec ?topology ?solver () =
  let spec =
    match (topology, spec) with
    | Some topo, _ -> Topology.to_spec topo
    | None, Some s -> s
    | None, None -> Spec.agc
  in
  let fabric = Fabric.create ?solver sim in
  let topo = Option.map (build_topo_links fabric) topology in
  let nodes =
    List.concat_map
      (fun (g : Spec.group) ->
        List.init g.count (fun i ->
            ( g,
              Printf.sprintf "%s%02d" g.name_prefix i )))
      spec.groups
    |> List.mapi (fun id ((g : Spec.group), name) ->
           Node.create sim fabric ~id ~name ~rack:g.rack ~cores:g.cores ~mem_bytes:g.mem_bytes
             ~with_ib:g.with_ib)
    |> Array.of_list
  in
  let by_name = Hashtbl.create (Array.length nodes) in
  Array.iter (fun (n : Node.t) -> Hashtbl.replace by_name n.name n) nodes;
  let node_list = Array.to_list nodes in
  let ib_list = List.filter Node.has_ib node_list in
  let eth_only_list = List.filter (fun n -> not (Node.has_ib n)) node_list in
  let trace = Trace.create sim in
  let probes = Probe.create sim in
  let injector = Ninja_faults.Injector.create sim in
  Ninja_faults.Injector.set_trace injector trace;
  Ninja_faults.Injector.set_probes injector probes;
  {
    sim;
    fabric;
    spec;
    topo;
    nodes;
    by_name;
    ib_list;
    eth_only_list;
    vms = Hashtbl.create 64;
    residents = Array.init (Array.length nodes) (fun _ -> Hashtbl.create 4);
    used_bytes = Array.make (Array.length nodes) 0.0;
    trace;
    probes;
    inter_racks = Hashtbl.create 4;
    injector;
    dead_nodes = Hashtbl.create 4;
  }

let topology t = Option.map (fun (tl : topo_links) -> tl.topo) t.topo

let injector t = t.injector

let probes t = t.probes

let kill_node t (n : Node.t) =
  if not (Hashtbl.mem t.dead_nodes n.Node.id) then begin
    Hashtbl.replace t.dead_nodes n.Node.id ();
    Trace.recordf t.trace ~category:"faults" "node %s died" n.Node.name;
    Probe.emit t.probes ~topic:"node" ~action:"death" ~subject:n.Node.name ()
  end

let node_alive t (n : Node.t) = not (Hashtbl.mem t.dead_nodes n.Node.id)

let alive_nodes t = List.filter (node_alive t) (Array.to_list t.nodes)

let node t i = t.nodes.(i)

let nodes t = Array.to_list t.nodes

let ib_nodes t = t.ib_list

let eth_only_nodes t = t.eth_only_list

let find_node t name = Hashtbl.find t.by_name name

(* ------------------------------------------------------------------ *)
(* VM registry *)

let remove_entry t name (e : vm_entry) =
  Hashtbl.remove t.residents.(e.vm_node) name;
  t.used_bytes.(e.vm_node) <- Float.max 0.0 (t.used_bytes.(e.vm_node) -. e.vm_bytes)

let register_vm t ~name ~node ~bytes =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Cluster.register_vm: node id out of range";
  if not (bytes >= 0.0 && Float.is_finite bytes) then
    invalid_arg "Cluster.register_vm: bytes must be non-negative";
  (* Latest registration wins: restoring a snapshot re-creates a VM under
     its original name while the stale instance may still linger. *)
  (match Hashtbl.find_opt t.vms name with
  | Some stale -> remove_entry t name stale
  | None -> ());
  Hashtbl.replace t.vms name { vm_node = node; vm_bytes = bytes };
  Hashtbl.replace t.residents.(node) name ();
  t.used_bytes.(node) <- t.used_bytes.(node) +. bytes

let move_vm t ~name ~node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Cluster.move_vm: node id out of range";
  match Hashtbl.find_opt t.vms name with
  | None -> raise Not_found
  | Some e ->
    if e.vm_node <> node then begin
      remove_entry t name e;
      e.vm_node <- node;
      Hashtbl.replace t.residents.(node) name ();
      t.used_bytes.(node) <- t.used_bytes.(node) +. e.vm_bytes
    end

let unregister_vm t ~name =
  match Hashtbl.find_opt t.vms name with
  | None -> ()
  | Some e ->
    remove_entry t name e;
    Hashtbl.remove t.vms name

let vm_count t = Hashtbl.length t.vms

let vm_node t ~name =
  Option.map (fun e -> t.nodes.(e.vm_node)) (Hashtbl.find_opt t.vms name)

let vms_on t (n : Node.t) =
  Hashtbl.fold (fun name () acc -> name :: acc) t.residents.(n.Node.id) []
  |> List.sort String.compare

let node_used_bytes t (n : Node.t) = t.used_bytes.(n.Node.id)

let node_free_bytes t (n : Node.t) = n.Node.mem_bytes -. t.used_bytes.(n.Node.id)

let nodes_with_free t ~bytes =
  Array.to_list t.nodes
  |> List.filter (fun (n : Node.t) -> node_free_bytes t n >= bytes)

let set_inter_rack t ~rack_a ~rack_b ~capacity ~latency =
  let mk a b =
    Fabric.add_link t.fabric ~name:(Printf.sprintf "wan.r%d-r%d" a b) ~capacity
  in
  let ir = { link_ab = mk rack_a rack_b; link_ba = mk rack_b rack_a; latency } in
  Hashtbl.replace t.inter_racks (rack_a, rack_b) ir

let inter_rack_hop t (src : Node.t) (dst : Node.t) =
  if src.rack = dst.rack then None
  else
    match Hashtbl.find_opt t.inter_racks (src.rack, dst.rack) with
    | Some ir -> Some ([ ir.link_ab ], ir.latency)
    | None -> (
      match Hashtbl.find_opt t.inter_racks (dst.rack, src.rack) with
      | Some ir -> Some ([ ir.link_ba ], ir.latency)
      | None -> Some ([], Time.zero))

(* Three-tier routing over a generated topology. Ethernet climbs the
   hierarchy only as far as needed (rack < pod < core); IB is confined to
   its pod, crossing the non-blocking per-rack aggregation layer between
   racks. Same-rack traffic is switched locally (non-blocking leaf), so
   only the endpoints' ports constrain it. *)
let topo_route (tl : topo_links) ~net (src : Node.t) (dst : Node.t) =
  let topo = tl.topo in
  let spod = Topology.pod_of_rack topo src.rack in
  let dpod = Topology.pod_of_rack topo dst.rack in
  match net with
  | Ib -> (
    match (src.ib_port, dst.ib_port) with
    | Some sp, Some dp when src.rack = dst.rack -> Some [ sp.tx; dp.rx ]
    | Some sp, Some dp when spod = dpod -> (
      match (tl.ib_up.(src.rack), tl.ib_down.(dst.rack)) with
      | Some up, Some down -> Some [ sp.tx; up; down; dp.rx ]
      | _ -> None)
    | _ -> None)
  | Eth ->
    if src.rack = dst.rack then Some [ src.eth_port.tx; dst.eth_port.rx ]
    else if spod = dpod then
      Some [ src.eth_port.tx; tl.leaf_up.(src.rack); tl.leaf_down.(dst.rack); dst.eth_port.rx ]
    else
      Some
        [
          src.eth_port.tx;
          tl.leaf_up.(src.rack);
          tl.pod_up.(spod);
          tl.pod_down.(dpod);
          tl.leaf_down.(dst.rack);
          dst.eth_port.rx;
        ]

let route_opt t ~net ~src ~dst =
  if src.Node.id = dst.Node.id then Some [ src.Node.loopback ]
  else
    match t.topo with
    | Some tl -> topo_route tl ~net src dst
    | None -> (
      match net with
      | Ib -> (
        match (src.Node.ib_port, dst.Node.ib_port) with
        | Some sp, Some dp when src.Node.rack = dst.Node.rack -> Some [ sp.tx; dp.rx ]
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> None)
      | Eth ->
        let hop =
          match inter_rack_hop t src dst with Some (links, _) -> links | None -> []
        in
        Some (((src.Node.eth_port.tx :: hop) @ [ dst.Node.eth_port.rx ])))

let route t ~net ~src ~dst =
  match route_opt t ~net ~src ~dst with
  | Some r -> r
  | None ->
    raise
      (Unreachable
         (Printf.sprintf "no %s path from %s to %s"
            (match net with Ib -> "ib" | Eth -> "eth")
            src.Node.name dst.Node.name))

let path_latency t ~net ~src ~dst =
  let base =
    match net with
    | Ib -> Calibration.ib_latency
    | Eth -> Calibration.eth10g_latency
  in
  if src.Node.id = dst.Node.id then base
  else
    match t.topo with
    | Some tl ->
      if src.Node.rack = dst.Node.rack then base
      else
        let leaf2 = Time.add Topology.leaf_hop_latency Topology.leaf_hop_latency in
        let spod = Topology.pod_of_rack tl.topo src.Node.rack in
        let dpod = Topology.pod_of_rack tl.topo dst.Node.rack in
        if spod = dpod then Time.add base leaf2
        else
          Time.add base
            (Time.add leaf2 (Time.add Topology.spine_hop_latency Topology.spine_hop_latency))
    | None -> (
      match inter_rack_hop t src dst with
      | Some (_, extra) -> Time.add base extra
      | None -> base)
