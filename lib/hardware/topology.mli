(** Parameterised datacenter topologies.

    A topology describes a multi-pod fabric: [pods] pods of
    [racks_per_pod] racks of [hosts_per_rack] hosts each. The first
    [ib_pods] pods are InfiniBand islands (every host carries a
    VMM-bypass HCA, and a non-blocking per-rack IB aggregation layer
    spans the pod); the rest are Ethernet-only. Ethernet connects
    everything through a three-tier hierarchy — host → leaf (top of
    rack) → pod uplink → core — with [oversub]:1 oversubscription at
    the leaf (and, for [Leaf_spine], again at the spine).

    This is the "heterogeneous data center" of the paper scaled past the
    testbed: migration traffic crossing pods contends on shared uplinks,
    which is exactly the regime where the incremental Flownet solver
    pays off. [to_spec] lowers a topology to a {!Spec.t} (one group per
    rack) so {!Cluster.create} builds the hosts through the existing
    path; the aggregation links and multi-tier routing are layered on by
    [Cluster] when given the topology. *)

type tier =
  | Leaf_spine  (** Oversubscription applies at both leaf and spine. *)
  | Fat_tree  (** Full bisection above the leaves. *)

type t = private {
  tier : tier;
  pods : int;
  racks_per_pod : int;
  hosts_per_rack : int;
  ib_pods : int;  (** Pods [0 .. ib_pods-1] are IB islands. *)
  oversub : float;  (** Leaf oversubscription ratio, >= 1. *)
  cores : float;  (** Per-host core count. *)
  mem_gb : float;  (** Per-host memory, binary GB. *)
  seed : int64;  (** Drives {!place}; part of the textual form. *)
}

val v :
  ?tier:tier ->
  ?pods:int ->
  ?racks_per_pod:int ->
  ?hosts_per_rack:int ->
  ?ib_pods:int ->
  ?oversub:float ->
  ?cores:float ->
  ?mem_gb:float ->
  ?seed:int64 ->
  unit ->
  (t, string) result
(** Defaults: leaf-spine, 2 pods x 2 racks x 8 hosts, 1 IB pod, 4:1
    oversubscription, 8 cores, 48 GB, seed 1. *)

val validate : t -> (unit, string) result

(** {1 Shape} *)

val rack_count : t -> int

val host_count : t -> int

val ib_host_count : t -> int

val eth_host_count : t -> int

val is_ib_pod : t -> int -> bool

val pod_of_rack : t -> int -> int
(** Global rack id (as found in {!Spec.group.rack}) to pod. *)

val mem_bytes : t -> float

val host_name : pod:int -> rack:int -> host:int -> string
(** ["p0r1h03"]: pod 0, rack 1 within the pod, host 3 within the rack. *)

val pod_hosts : t -> int -> string list

val hosts : t -> string list
(** All host names, pod-major — the node-id order of {!to_spec}. *)

val to_spec : t -> Spec.t
(** One {!Spec.group} per (pod, rack), so node names and rack ids follow
    {!host_name} / global rack numbering. *)

(** {1 Fabric capacities} *)

val leaf_capacity : t -> float
(** Top-of-rack uplink, bytes/s: rack host bandwidth over [oversub]. *)

val pod_capacity : t -> float
(** Pod-to-core uplink, bytes/s. [Fat_tree] carries the full leaf
    aggregate; [Leaf_spine] divides it by [oversub] again. *)

val ib_capacity : t -> float
(** Per-rack IB aggregation within an IB pod — non-blocking. *)

val leaf_hop_latency : Ninja_engine.Time.span

val spine_hop_latency : Ninja_engine.Time.span

(** {1 Textual form} *)

val to_string : t -> string
(** [leaf-spine:pods=4,racks=2,hosts=8,ib-pods=2,oversub=4,cores=8,mem-gb=48,seed=7].
    Floats print as [%.17g], so {!of_string} round-trips exactly. *)

val of_string : string -> (t, string) result
(** Accepts [<tier>] alone or [<tier>:k=v,...]; unspecified keys take the
    {!v} defaults. *)

val pp : Format.formatter -> t -> unit

(** {1 Seeded placement} *)

val place : t -> ?pods:int list -> vms:int -> vm_bytes:float -> unit -> string list
(** [place t ~vms ~vm_bytes ()] assigns [vms] VMs to hosts uniformly at
    random (seeded by [t.seed]), never exceeding
    [floor (mem_bytes t / vm_bytes)] VMs per host. [?pods] restricts the
    candidate hosts. Deterministic: equal topologies produce equal
    placements. Raises [Invalid_argument] when demand exceeds capacity. *)

(** {1 Fuzzing} *)

val gen : Ninja_engine.Prng.t -> t
(** A small scenario-sized topology (2–4 pods, at least one IB and one
    Ethernet pod) for [ninja_sim check]. *)

val shrink : t -> t list
(** Strictly smaller candidate topologies, all valid, preserving at
    least one IB and one Ethernet pod. *)
