(** A simulated data center: nodes plus the shared network fabric.

    Routing is intentionally simple — blade-enclosure switches are
    non-blocking, so a path is [src.tx → dst.rx] on the chosen network
    (plus an explicit inter-rack link when one has been configured, which
    is how the disaster-recovery example models a WAN hop). Same-node
    paths go through the node's loopback. *)

open Ninja_engine
open Ninja_flownet

type net = Ib | Eth

type t

val create : Sim.t -> ?spec:Spec.t -> unit -> t
(** Default spec is {!Spec.agc}. *)

val sim : t -> Sim.t

val fabric : t -> Fabric.t

val spec : t -> Spec.t

val trace : t -> Trace.t

val probes : t -> Probe.t
(** The cluster's probe bus: every protocol layer (hotplug, migration,
    SymVirt fence, planner, faults) announces its transitions here, and
    {!Ninja_check.Checker}-style observers subscribe to it. Idle unless
    subscribed. *)

val node : t -> int -> Node.t

val nodes : t -> Node.t list

val ib_nodes : t -> Node.t list

val eth_only_nodes : t -> Node.t list

val find_node : t -> string -> Node.t
(** By name; raises [Not_found]. *)

(** {1 Faults}

    Every cluster owns a fault injector (disabled — nothing armed — by
    default, at zero cost) and a record of dead nodes. Node death is
    permanent: a migration targeting a dead node fails with
    {!Node_dead}. *)

val injector : t -> Ninja_faults.Injector.t

val kill_node : t -> Node.t -> unit

val node_alive : t -> Node.t -> bool

val alive_nodes : t -> Node.t list

exception Node_dead of string

exception Unreachable of string

val route : t -> net:net -> src:Node.t -> dst:Node.t -> Fabric.link list
(** Raises {!Unreachable} when e.g. an IB path is requested to a node
    without an IB port. *)

val route_opt : t -> net:net -> src:Node.t -> dst:Node.t -> Fabric.link list option

val path_latency : t -> net:net -> src:Node.t -> dst:Node.t -> Time.span
(** One-way propagation+protocol latency for the device class on [net]
    (plus the inter-rack latency when the path crosses racks). *)

val set_inter_rack : t -> rack_a:int -> rack_b:int -> capacity:float -> latency:Time.span -> unit
(** Install a constrained Ethernet link pair between two racks (e.g. a WAN
    for cross-data-center evacuation). Without one, cross-rack Ethernet
    traffic is only limited by the endpoints' ports. *)
