(** A simulated data center: nodes plus the shared network fabric.

    Two construction modes. From a {!Spec.t}, routing is intentionally
    simple — blade-enclosure switches are non-blocking, so a path is
    [src.tx → dst.rx] on the chosen network (plus an explicit inter-rack
    link when one has been configured, which is how the
    disaster-recovery example models a WAN hop). From a {!Topology.t},
    the cluster additionally builds the aggregation layers (per-rack
    leaf uplinks, per-pod core uplinks, per-rack IB aggregation inside
    IB pods) and Ethernet paths climb the three-tier hierarchy, so
    cross-rack migration traffic contends on shared oversubscribed
    links. Same-node paths go through the node's loopback either way. *)

open Ninja_engine
open Ninja_flownet

type net = Ib | Eth

type t

val create :
  Sim.t -> ?spec:Spec.t -> ?topology:Topology.t -> ?solver:Fabric.solver -> unit -> t
(** Default spec is {!Spec.agc}. When [topology] is given it takes
    precedence: the node population comes from {!Topology.to_spec} and
    multi-tier routing is enabled. [solver] is passed to
    {!Fabric.create} (differential tests pit [Incremental] against
    [Global] on the same topology). *)

val topology : t -> Topology.t option

val sim : t -> Sim.t

val fabric : t -> Fabric.t

val spec : t -> Spec.t

val trace : t -> Trace.t

val probes : t -> Probe.t
(** The cluster's probe bus: every protocol layer (hotplug, migration,
    SymVirt fence, planner, faults) announces its transitions here, and
    {!Ninja_check.Checker}-style observers subscribe to it. Idle unless
    subscribed. *)

val node : t -> int -> Node.t

val nodes : t -> Node.t list

val ib_nodes : t -> Node.t list

val eth_only_nodes : t -> Node.t list

val find_node : t -> string -> Node.t
(** By name (hash lookup); raises [Not_found]. *)

(** {1 VM registry}

    An indexed store of VM placements, kept in sync by
    [Ninja_vmm.Vm.create]/[set_host]: name → node plus per-node resident
    sets and memory aggregates, so occupancy queries cost O(1) per node
    instead of a scan over every VM. Keyed by name because this layer
    sits below the VMM. *)

val register_vm : t -> name:string -> node:int -> bytes:float -> unit
(** Latest registration under a name wins (snapshot restore re-creates a
    VM under its original name). *)

val move_vm : t -> name:string -> node:int -> unit
(** Raises [Not_found] for an unregistered name. *)

val unregister_vm : t -> name:string -> unit
(** No-op for an unregistered name. *)

val vm_count : t -> int

val vm_node : t -> name:string -> Node.t option

val vms_on : t -> Node.t -> string list
(** Registered VMs resident on the node, sorted by name. *)

val node_used_bytes : t -> Node.t -> float

val node_free_bytes : t -> Node.t -> float

val nodes_with_free : t -> bytes:float -> Node.t list
(** Nodes with at least [bytes] of unregistered memory, in id order. *)

(** {1 Faults}

    Every cluster owns a fault injector (disabled — nothing armed — by
    default, at zero cost) and a record of dead nodes. Node death is
    permanent: a migration targeting a dead node fails with
    {!Node_dead}. *)

val injector : t -> Ninja_faults.Injector.t

val kill_node : t -> Node.t -> unit

val node_alive : t -> Node.t -> bool

val alive_nodes : t -> Node.t list

exception Node_dead of string

exception Unreachable of string

val route : t -> net:net -> src:Node.t -> dst:Node.t -> Fabric.link list
(** Raises {!Unreachable} when e.g. an IB path is requested to a node
    without an IB port. *)

val route_opt : t -> net:net -> src:Node.t -> dst:Node.t -> Fabric.link list option

val path_latency : t -> net:net -> src:Node.t -> dst:Node.t -> Time.span
(** One-way propagation+protocol latency for the device class on [net]
    (plus the inter-rack latency when the path crosses racks). *)

val set_inter_rack : t -> rack_a:int -> rack_b:int -> capacity:float -> latency:Time.span -> unit
(** Install a constrained Ethernet link pair between two racks (e.g. a WAN
    for cross-data-center evacuation). Without one, cross-rack Ethernet
    traffic is only limited by the endpoints' ports. *)
