open Ninja_engine

type tier = Leaf_spine | Fat_tree

type t = {
  tier : tier;
  pods : int;
  racks_per_pod : int;
  hosts_per_rack : int;
  ib_pods : int;
  oversub : float;
  cores : float;
  mem_gb : float;
  seed : int64;
}

let validate t =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () = check (t.pods >= 1) "pods must be >= 1" in
  let* () = check (t.racks_per_pod >= 1) "racks must be >= 1" in
  let* () = check (t.hosts_per_rack >= 1) "hosts must be >= 1" in
  let* () = check (t.ib_pods >= 0 && t.ib_pods <= t.pods) "ib-pods must be in [0, pods]" in
  let* () =
    check (t.oversub >= 1.0 && Float.is_finite t.oversub) "oversub must be >= 1"
  in
  let* () = check (t.cores > 0.0 && Float.is_finite t.cores) "cores must be positive" in
  check (t.mem_gb > 0.0 && Float.is_finite t.mem_gb) "mem-gb must be positive"

let v ?(tier = Leaf_spine) ?(pods = 2) ?(racks_per_pod = 2) ?(hosts_per_rack = 8)
    ?(ib_pods = 1) ?(oversub = 4.0) ?(cores = 8.0) ?(mem_gb = 48.0) ?(seed = 1L) () =
  let t =
    { tier; pods; racks_per_pod; hosts_per_rack; ib_pods; oversub; cores; mem_gb; seed }
  in
  Result.map (fun () -> t) (validate t)

(* ------------------------------------------------------------------ *)
(* Shape accessors *)

let rack_count t = t.pods * t.racks_per_pod

let host_count t = rack_count t * t.hosts_per_rack

let is_ib_pod t pod = pod >= 0 && pod < t.ib_pods

let pod_of_rack t rack = rack / t.racks_per_pod

let ib_host_count t = t.ib_pods * t.racks_per_pod * t.hosts_per_rack

let eth_host_count t = (t.pods - t.ib_pods) * t.racks_per_pod * t.hosts_per_rack

let mem_bytes t = Units.gb t.mem_gb

(* Host naming: p<pod>r<rack-in-pod>h<host-in-rack>, e.g. p0r1h03. *)
let host_name ~pod ~rack ~host = Printf.sprintf "p%dr%dh%02d" pod rack host

let pod_hosts t pod =
  List.concat
    (List.init t.racks_per_pod (fun rack ->
         List.init t.hosts_per_rack (fun host -> host_name ~pod ~rack ~host)))

let hosts t = List.concat (List.init t.pods (pod_hosts t))

(* One Spec group per (pod, rack): node names come out as p0r0h00, ... and
   node ids in pod-major order, so the same node-construction path serves
   both hand-written specs and generated topologies. *)
let to_spec t =
  let groups =
    List.concat
      (List.init t.pods (fun pod ->
           List.init t.racks_per_pod (fun rack ->
               {
                 Spec.count = t.hosts_per_rack;
                 name_prefix = Printf.sprintf "p%dr%dh" pod rack;
                 rack = (pod * t.racks_per_pod) + rack;
                 cores = t.cores;
                 mem_bytes = mem_bytes t;
                 with_ib = is_ib_pod t pod;
               })))
  in
  { Spec.name = "topology"; groups }

(* ------------------------------------------------------------------ *)
(* Aggregation-link capacities and latencies *)

(* A leaf (top-of-rack) uplink carries the rack's hosts at the configured
   oversubscription ratio. *)
let leaf_capacity t =
  float_of_int t.hosts_per_rack *. Calibration.eth10g_bandwidth /. t.oversub

(* The pod uplink into the core: a fat-tree provides full bisection above
   the leaves (oversubscription only at the edge), a leaf-spine fabric
   re-applies the ratio at the spine layer. *)
let pod_capacity t =
  let aggregate = float_of_int t.racks_per_pod *. leaf_capacity t in
  match t.tier with Fat_tree -> aggregate | Leaf_spine -> aggregate /. t.oversub

(* IB islands are per-pod and non-blocking: the paper's clusters keep the
   fast interconnect inside an enclosure-sized domain. *)
let ib_capacity t = float_of_int t.hosts_per_rack *. Calibration.ib_bandwidth

let leaf_hop_latency = Time.us 2

let spine_hop_latency = Time.us 10

(* ------------------------------------------------------------------ *)
(* Textual form: <tier>:pods=P,racks=R,hosts=H,ib-pods=I,oversub=X,
   cores=C,mem-gb=G,seed=S *)

let tier_to_string = function Leaf_spine -> "leaf-spine" | Fat_tree -> "fat-tree"

(* %.17g round-trips any finite double exactly. *)
let fstr = Printf.sprintf "%.17g"

let to_string t =
  Printf.sprintf "%s:pods=%d,racks=%d,hosts=%d,ib-pods=%d,oversub=%s,cores=%s,mem-gb=%s,seed=%Ld"
    (tier_to_string t.tier) t.pods t.racks_per_pod t.hosts_per_rack t.ib_pods
    (fstr t.oversub) (fstr t.cores) (fstr t.mem_gb) t.seed

let of_string s =
  let ( let* ) = Result.bind in
  let* tier, params =
    match String.index_opt s ':' with
    | None -> (
      match s with
      | "leaf-spine" -> Ok (Leaf_spine, "")
      | "fat-tree" -> Ok (Fat_tree, "")
      | _ -> Error (Printf.sprintf "topology %S: expected <tier>[:k=v,...]" s))
    | Some i -> (
      let params = String.sub s (i + 1) (String.length s - i - 1) in
      match String.sub s 0 i with
      | "leaf-spine" -> Ok (Leaf_spine, params)
      | "fat-tree" -> Ok (Fat_tree, params)
      | other -> Error (Printf.sprintf "unknown topology tier %S" other))
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad integer %S for %s" v k)
  in
  let parse_float k v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "bad number %S for %s" v k)
  in
  let default =
    { tier; pods = 2; racks_per_pod = 2; hosts_per_rack = 8; ib_pods = 1; oversub = 4.0;
      cores = 8.0; mem_gb = 48.0; seed = 1L }
  in
  let apply acc kv =
    let* t = acc in
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "malformed topology parameter %S (expected k=v)" kv)
    | Some i ->
      let k = String.trim (String.sub kv 0 i) in
      let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
      (match k with
      | "pods" -> Result.map (fun n -> { t with pods = n }) (parse_int k v)
      | "racks" -> Result.map (fun n -> { t with racks_per_pod = n }) (parse_int k v)
      | "hosts" -> Result.map (fun n -> { t with hosts_per_rack = n }) (parse_int k v)
      | "ib-pods" -> Result.map (fun n -> { t with ib_pods = n }) (parse_int k v)
      | "oversub" -> Result.map (fun f -> { t with oversub = f }) (parse_float k v)
      | "cores" -> Result.map (fun f -> { t with cores = f }) (parse_float k v)
      | "mem-gb" -> Result.map (fun f -> { t with mem_gb = f }) (parse_float k v)
      | "seed" -> (
        match Int64.of_string_opt v with
        | Some s -> Ok { t with seed = s }
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | _ -> Error (Printf.sprintf "unknown topology parameter %S" k))
  in
  let params =
    if params = "" then []
    else String.split_on_char ',' params |> List.map String.trim
  in
  let* t = List.fold_left apply (Ok default) params in
  let* () = validate t in
  Ok t

(* ------------------------------------------------------------------ *)
(* Seeded VM placement *)

let place t ?pods ~vms ~vm_bytes () =
  if vms < 0 then invalid_arg "Topology.place: vms must be non-negative";
  if not (vm_bytes > 0.0 && Float.is_finite vm_bytes) then
    invalid_arg "Topology.place: vm_bytes must be positive";
  let allowed = match pods with None -> List.init t.pods Fun.id | Some ps -> ps in
  List.iter
    (fun p ->
      if p < 0 || p >= t.pods then
        invalid_arg (Printf.sprintf "Topology.place: pod %d out of range" p))
    allowed;
  let names = Array.of_list (List.concat_map (pod_hosts t) allowed) in
  let slots_per_host = int_of_float (Float.floor (mem_bytes t /. vm_bytes)) in
  if Array.length names * slots_per_host < vms then
    invalid_arg
      (Printf.sprintf "Topology.place: %d VMs exceed capacity (%d hosts x %d slots)" vms
         (Array.length names) slots_per_host);
  let slots = Array.make (Array.length names) slots_per_host in
  (* Candidate indices live in the prefix [0, active); a host whose slots
     run out is swapped behind the boundary. Draw order is fixed by the
     topology seed, so the same spec always produces the same placement. *)
  let index = Array.init (Array.length names) Fun.id in
  let active = ref (Array.length names) in
  let prng = Prng.create ~seed:t.seed in
  let rec draw i acc =
    if i = vms then List.rev acc
    else begin
      let pick = Prng.int prng !active in
      let host = index.(pick) in
      slots.(host) <- slots.(host) - 1;
      if slots.(host) = 0 then begin
        decr active;
        index.(pick) <- index.(!active);
        index.(!active) <- host
      end;
      draw (i + 1) (names.(host) :: acc)
    end
  in
  draw 0 []

(* ------------------------------------------------------------------ *)
(* Random topologies for the fuzzer (small, scenario-sized) *)

let gen prng =
  let tier = if Prng.bool prng then Leaf_spine else Fat_tree in
  let ib_pods = 1 + Prng.int prng 2 in
  let eth_pods = 1 + Prng.int prng 2 in
  {
    tier;
    pods = ib_pods + eth_pods;
    racks_per_pod = 1 + Prng.int prng 2;
    hosts_per_rack = 2 + Prng.int prng 3;
    ib_pods;
    oversub = [| 1.0; 2.0; 4.0 |].(Prng.int prng 3);
    cores = 8.0;
    mem_gb = 48.0;
    seed = Prng.next_int64 prng;
  }

let shrink t =
  let candidates = ref [] in
  let add c = if validate c = Ok () then candidates := c :: !candidates in
  if t.tier <> Leaf_spine then add { t with tier = Leaf_spine };
  if t.oversub > 1.0 then add { t with oversub = 1.0 };
  (* Keep at least one IB and one Ethernet pod: scenario workloads start
     on IB hosts and every trigger needs Ethernet refuges. *)
  if t.ib_pods > 1 then add { t with pods = t.pods - 1; ib_pods = t.ib_pods - 1 };
  if t.pods - t.ib_pods > 1 then add { t with pods = t.pods - 1 };
  if t.racks_per_pod > 1 then add { t with racks_per_pod = t.racks_per_pod - 1 };
  if t.hosts_per_rack > 2 then add { t with hosts_per_rack = t.hosts_per_rack - 1 };
  List.rev !candidates

let pp fmt t = Format.pp_print_string fmt (to_string t)
