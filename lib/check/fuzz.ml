open Ninja_engine

type failure = {
  index : int;
  result : Runner.result;
  shrunk : Runner.result option;
}

type summary = {
  total : int;
  passed : int;
  crashed : int;
  events : int;
  failures : failure list;
}

let generate ~seed ~n =
  let prng = Prng.create ~seed in
  (* Explicit recursion: the draw order must be deterministic, and
     [List.init]'s evaluation order is unspecified. *)
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (Scenario.gen prng :: acc) in
  go 0 []

let default_shrink_budget = 60

let shrink_result ?(budget = default_shrink_budget) (r : Runner.result) =
  if not (Runner.failed r) then None
  else begin
    let budget = ref budget in
    let best = ref None in
    let rec descend (current : Runner.result) =
      let rec try_candidates = function
        | [] -> ()
        | candidate :: rest ->
          if !budget <= 0 then ()
          else begin
            decr budget;
            let cr = Runner.run candidate in
            if Runner.failed cr then begin
              best := Some cr;
              descend cr
            end
            else try_candidates rest
          end
      in
      try_candidates (Scenario.shrink current.Runner.scenario)
    in
    descend r;
    !best
  end

(* Force a fixed topology onto a generated scenario, re-clamping the
   dimensions the generator would have constrained had it drawn this
   topology itself. *)
let impose_topology topo (sc : Scenario.t) =
  let open Ninja_hardware in
  {
    sc with
    Scenario.topo = Some topo;
    vms =
      min sc.Scenario.vms
        (min topo.Topology.hosts_per_rack (Topology.eth_host_count topo));
    mem_gb = Float.min sc.Scenario.mem_gb topo.Topology.mem_gb;
    uplink_gbps = None;
  }

let campaign ctx ~n ?plant ?topology ?strategy ?mode ?(shrink = true) () =
  let scenarios =
    generate ~seed:ctx.Run_ctx.seed ~n
    |> List.map (fun sc ->
           let sc = { sc with Scenario.plant } in
           let sc =
             match topology with None -> sc | Some topo -> impose_topology topo sc
           in
           let sc =
             match strategy with
             | None -> sc
             | Some strategy -> { sc with Scenario.strategy }
           in
           match mode with None -> sc | Some mode -> { sc with Scenario.mode })
  in
  let results = Run_ctx.map ctx ~f:Runner.run scenarios in
  let failures =
    List.mapi (fun i r -> (i, r)) results
    |> List.filter_map (fun (i, r) ->
           if Runner.failed r then
             Some { index = i; result = r; shrunk = (if shrink then shrink_result r else None) }
           else None)
  in
  {
    total = n;
    passed = List.length (List.filter (fun r -> not (Runner.failed r)) results);
    crashed =
      List.length
        (List.filter
           (fun (r : Runner.result) ->
             match r.Runner.outcome with Runner.Crashed _ -> true | _ -> false)
           results);
    events = List.fold_left (fun acc (r : Runner.result) -> acc + r.Runner.events) 0 results;
    failures;
  }

let repro_of failure =
  let r = Option.value failure.shrunk ~default:failure.result in
  let b = Buffer.create 512 in
  Buffer.add_string b (Scenario.to_string r.Runner.scenario);
  Buffer.add_string b (Printf.sprintf "# scenario %d of the campaign\n" failure.index);
  (match r.Runner.outcome with
  | Runner.Passed -> ()
  | Runner.Crashed msg -> Buffer.add_string b (Printf.sprintf "# crashed: %s\n" msg)
  | Runner.Violated vs ->
    List.iter
      (fun v ->
        Buffer.add_string b (Format.asprintf "# violation: %a\n" Checker.pp_violation v))
      vs);
  Buffer.contents b

let pp_summary fmt s =
  Format.fprintf fmt "@[<v>%d scenario(s): %d passed, %d failed (%d crashed), %d probe events"
    s.total s.passed
    (s.total - s.passed)
    s.crashed s.events;
  List.iter
    (fun f ->
      Format.fprintf fmt "@,#%d %a" f.index Runner.pp_result
        (Option.value f.shrunk ~default:f.result))
    s.failures;
  Format.fprintf fmt "@]"
