(** Execute one {!Scenario} under a {!Checker}.

    Builds the cluster the scenario describes, arms its faults, boots
    the VM fleet with an MPI job, fires the scheduler trigger, runs the
    simulation to completion and reports every invariant violation the
    checker (plus the end-of-run placement checks) found. [run] never
    raises: simulation crashes become a [Crashed] outcome so a fuzzing
    campaign always completes.

    {b Planted bugs} (for harness self-tests; never generated): a
    scenario whose [plant] field names one of

    - ["skip-rollback"] — force a persistent precopy abort so the
      migration rolls back, then re-apply the aborted move directly,
      bypassing both the rollback contract and the SymVirt fence (the
      bug class: a scheduler that "knows better" than the transaction);
    - ["skip-fence"] — migrate a VM through the VMM layer without
      fencing the MPI job first;

    must be caught by the checker — that is the harness's own
    regression test. *)

type outcome =
  | Passed
  | Violated of Checker.violation list
  | Crashed of string  (** an exception escaped the simulation *)

type result = {
  scenario : Scenario.t;
  outcome : outcome;
  events : int;  (** probe events the checker observed *)
  sim_end : float;  (** final simulation clock, seconds *)
}

val plants : string list
(** The recognised plant names. *)

val run : ?attach:(Ninja_hardware.Cluster.t -> unit) -> Scenario.t -> result
(** [attach], when given, is called with the scenario's cluster after it
    is fully configured and before the fleet boots — a hook for extra
    probe-bus observers (e.g. a telemetry recorder under test). *)

val failed : result -> bool
(** True for [Violated] and [Crashed]. *)

val pp_result : Format.formatter -> result -> unit
