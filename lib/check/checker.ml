open Ninja_engine
open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type violation = { invariant : string; at : Time.t; detail : string }

type t = {
  cluster : Cluster.t;
  vms : (string, Vm.t) Hashtbl.t;
  mutable rev_violations : violation list;
  mutable last_at : Time.t;
  fenced : (string, string) Hashtbl.t;  (* vm -> id of the fence holding it *)
  active_fences : (string, string list) Hashtbl.t;  (* fence id -> vms *)
  attached : (string, string list ref) Hashtbl.t;  (* vm -> attached tags *)
  gave_up : (string, unit) Hashtbl.t;
  lost : (string, unit) Hashtbl.t;
      (* VMs reported lost by a ["migration"/"lost"] probe: a committed
         postcopy switchover whose source died. Never cleared — loss is
         terminal, so later batches must not move or restore these VMs. *)
  pull_remaining : (string, float) Hashtbl.t;
      (* vm -> the last ["migration"/"pull"] probe's remaining bytes;
         cleared by ["migration"/"done"] (drain finished) or "lost". An
         entry surviving to the end of the run is an abandoned drain. *)
  origins : (string, (string * string) list) Hashtbl.t;
      (* batch -> (vm, host at migrate start); key "" for unbatched flows *)
  mutable events : int;
  mutable sub : Probe.subscription option;
}

let watched t name = Hashtbl.mem t.vms name

let record_at t ~at ~invariant ~detail =
  t.rev_violations <- { invariant; at; detail } :: t.rev_violations

let record t ~invariant ~detail =
  record_at t ~at:(Sim.now (Cluster.sim t.cluster)) ~invariant ~detail

let excused t name = Hashtbl.mem t.gave_up name

let violations t = List.rev t.rev_violations

let events_seen t = t.events

let pp_violation fmt v =
  Format.fprintf fmt "[%a] %s: %s" Time.pp v.at v.invariant v.detail

(* Allow float round-off plus a byte of slack per link: progressive
   filling distributes exact shares, so anything beyond that is a real
   oversubscription. *)
let conserved ~capacity ~utilization =
  utilization <= (capacity *. (1.0 +. 1e-6)) +. 1.0

let check_flow_conservation t at =
  let fabric = Cluster.fabric t.cluster in
  List.iter
    (fun link ->
      let cap = Fabric.link_capacity link in
      let util = Fabric.link_utilization fabric link in
      if not (conserved ~capacity:cap ~utilization:util) then
        record_at t ~at ~invariant:"flow-conservation"
          ~detail:
            (Printf.sprintf "link %s carries %.3g B/s over capacity %.3g B/s"
               (Fabric.link_name link) util cap))
    (Fabric.links fabric)

let tags_of t name =
  match Hashtbl.find_opt t.attached name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.attached name r;
    r

let split_csv s = if s = "" then [] else String.split_on_char ',' s

let on_event t (e : Probe.event) =
  t.events <- t.events + 1;
  if Time.( < ) e.Probe.at t.last_at then
    record_at t ~at:e.Probe.at ~invariant:"clock-monotone"
      ~detail:
        (Format.asprintf "%s/%s at %a precedes an earlier event at %a" e.Probe.topic
           e.Probe.action Time.pp e.Probe.at Time.pp t.last_at);
  t.last_at <- Time.max t.last_at e.Probe.at;
  check_flow_conservation t e.Probe.at;
  let info key = Option.value (Probe.info_of e key) ~default:"" in
  match (e.Probe.topic, e.Probe.action) with
  | "fence", "enter" ->
    (* Concurrent fences are fine as long as ids are fresh and their VM
       sets are disjoint: one batch may never fence a VM another batch
       already holds quiesced. *)
    let id = info "id" in
    let vms = split_csv (info "vms") in
    if Hashtbl.mem t.active_fences id || List.exists (Hashtbl.mem t.fenced) vms then
      record_at t ~at:e.Probe.at ~invariant:"fence-pairing"
        ~detail:
          (Printf.sprintf "fence %S entered while one of its VMs was already fenced"
             id);
    let prev = Option.value (Hashtbl.find_opt t.active_fences id) ~default:[] in
    Hashtbl.replace t.active_fences id (prev @ vms);
    List.iter (fun vm -> Hashtbl.replace t.fenced vm id) vms
  | "fence", "release" -> (
    let id = info "id" in
    match Hashtbl.find_opt t.active_fences id with
    | None ->
      record_at t ~at:e.Probe.at ~invariant:"fence-pairing"
        ~detail:"fence released without a matching enter"
    | Some vms ->
      List.iter
        (fun vm ->
          match Hashtbl.find_opt t.fenced vm with
          | Some owner when owner = id -> Hashtbl.remove t.fenced vm
          | _ -> ())
        vms;
      Hashtbl.remove t.active_fences id)
  | "vm", "migrated" when watched t e.Probe.subject ->
    if not (Hashtbl.mem t.fenced e.Probe.subject) then
      record_at t ~at:e.Probe.at ~invariant:"fence-before-migrate"
        ~detail:
          (Printf.sprintf "%s moved %s -> %s outside a SymVirt fence" e.Probe.subject
             (info "src") (info "dst"));
    if info "bypass" = "true" then
      record_at t ~at:e.Probe.at ~invariant:"bypass-migrate"
        ~detail:
          (Printf.sprintf "%s migrated to %s with a VMM-bypass device attached"
             e.Probe.subject (info "dst"))
  | "vm", "device-add" when watched t e.Probe.subject ->
    let tags = tags_of t e.Probe.subject in
    let tag = info "tag" in
    if List.mem tag !tags then
      record_at t ~at:e.Probe.at ~invariant:"attach-balance"
        ~detail:(Printf.sprintf "%s: duplicate attach of %s" e.Probe.subject tag)
    else tags := tag :: !tags
  | "vm", "device-del" when watched t e.Probe.subject ->
    let tags = tags_of t e.Probe.subject in
    let tag = info "tag" in
    if not (List.mem tag !tags) then
      record_at t ~at:e.Probe.at ~invariant:"attach-balance"
        ~detail:(Printf.sprintf "%s: detach of absent device %s" e.Probe.subject tag)
    else tags := List.filter (fun x -> x <> tag) !tags
  | "plan", "built" ->
    if info "acyclic" <> "true" then
      record_at t ~at:e.Probe.at ~invariant:"plan-acyclic"
        ~detail:(Printf.sprintf "plan of %s steps has a dependency cycle" (info "steps"))
  | "executor", "report" ->
    if info "permits-leaked" <> "0" then
      record_at t ~at:e.Probe.at ~invariant:"permit-leak"
        ~detail:(Printf.sprintf "executor leaked %s per-host permit(s)" (info "permits-leaked"))
  | "migrate", "start" ->
    (* A fresh transaction for this batch: record its origins; prior
       giveups for the VMs it moves no longer apply. *)
    let batch = info "batch" in
    let origins = List.filter (fun (vm, _) -> watched t vm) e.Probe.info in
    List.iter (fun (vm, _) -> Hashtbl.remove t.gave_up vm) origins;
    Hashtbl.replace t.origins batch origins
  | "migrate", "giveup" -> Hashtbl.replace t.gave_up e.Probe.subject ()
  | "migration", "pull" when watched t e.Probe.subject ->
    let name = e.Probe.subject in
    if info "dup_pages" <> "0" then
      record_at t ~at:e.Probe.at ~invariant:"no-double-resident"
        ~detail:
          (Printf.sprintf "%s: a pull re-claimed %s already-resident page(s)" name
             (info "dup_pages"));
    (match float_of_string_opt (info "remaining") with
    | None ->
      record_at t ~at:e.Probe.at ~invariant:"pull-monotone"
        ~detail:(Printf.sprintf "%s: pull probe carries no remaining count" name)
    | Some remaining ->
      (match Hashtbl.find_opt t.pull_remaining name with
      | Some prev when remaining >= prev ->
        record_at t ~at:e.Probe.at ~invariant:"pull-monotone"
          ~detail:
            (Printf.sprintf
               "%s: pull left %.0f bytes remaining, not below the previous %.0f — the \
                drain is not making progress"
               name remaining prev)
      | _ -> ());
      Hashtbl.replace t.pull_remaining name remaining)
  | "migration", "lost" when watched t e.Probe.subject ->
    Hashtbl.replace t.lost e.Probe.subject ();
    Hashtbl.remove t.pull_remaining e.Probe.subject
  | "migration", "done" -> Hashtbl.remove t.pull_remaining e.Probe.subject
  | "migrate", "rollback" ->
    List.iter
      (fun (name, origin) ->
        (* A lost VM is exempt from restore-to-source — there is nothing
           left to restore; {!check_finish} asserts it ends paused. *)
        if (not (excused t name)) && not (Hashtbl.mem t.lost name) then
          let vm = Hashtbl.find t.vms name in
          let here = (Vm.host vm).Node.name in
          if here <> origin then
            record_at t ~at:e.Probe.at ~invariant:"rollback-restore"
              ~detail:
                (Printf.sprintf "%s rolled back to %s but its origin is %s" name here
                   origin))
      (Option.value (Hashtbl.find_opt t.origins (info "batch")) ~default:[])
  | _ -> ()

let install cluster ~vms =
  let t =
    {
      cluster;
      vms = Hashtbl.create 8;
      rev_violations = [];
      last_at = Sim.now (Cluster.sim cluster);
      fenced = Hashtbl.create 8;
      active_fences = Hashtbl.create 8;
      attached = Hashtbl.create 8;
      gave_up = Hashtbl.create 8;
      lost = Hashtbl.create 8;
      pull_remaining = Hashtbl.create 8;
      origins = Hashtbl.create 8;
      events = 0;
      sub = None;
    }
  in
  List.iter
    (fun vm ->
      Hashtbl.replace t.vms (Vm.name vm) vm;
      Hashtbl.replace t.attached (Vm.name vm)
        (ref (List.map (fun (d : Device.t) -> d.Device.tag) (Vm.devices vm))))
    vms;
  t.sub <- Some (Probe.attach (Cluster.probes cluster) (on_event t));
  t

let detach t =
  match t.sub with
  | None -> ()
  | Some sub ->
    Probe.detach (Cluster.probes t.cluster) sub;
    t.sub <- None

let with_checker cluster ~vms f =
  let t = install cluster ~vms in
  Fun.protect ~finally:(fun () -> detach t) (fun () -> f t)

let check_finish t =
  if Hashtbl.length t.active_fences > 0 then
    record t ~invariant:"fence-pairing"
      ~detail:"a SymVirt fence is still held at the end of the run";
  Hashtbl.iter
    (fun name vm ->
      let host = Vm.host vm in
      (* Mode-aware terminal states. A lost VM (committed postcopy
         switchover whose source died) must be frozen: running it would
         execute over missing pages. A VM that is NOT lost must have
         finished any postcopy drain it started — silently running with
         pages still at the source is the failure postcopy's [Lost]
         accounting exists to make loud. *)
      if Vm.is_lost vm || Hashtbl.mem t.lost name then begin
        if Vm.state vm = Vm.Running then
          record t ~invariant:"postcopy-lost"
            ~detail:
              (Printf.sprintf "%s was lost mid-postcopy but is still running on %s" name
                 host.Node.name);
        if Vm.is_lost vm && not (Hashtbl.mem t.lost name) then
          record t ~invariant:"postcopy-lost"
            ~detail:
              (Printf.sprintf "%s is marked lost but no migration/lost event reported it"
                 name)
      end
      else begin
        let mem = Vm.memory vm in
        if Memory.postcopy_active mem && Memory.remote_bytes mem > 0.0 then
          record t ~invariant:"postcopy-complete"
            ~detail:
              (Printf.sprintf
                 "%s ends the run with %.0f bytes still at its postcopy source" name
                 (Memory.remote_bytes mem))
        else (
          match Hashtbl.find_opt t.pull_remaining name with
          | Some r when r > 0.0 ->
            record t ~invariant:"postcopy-complete"
              ~detail:
                (Printf.sprintf
                   "%s's pull stream last reported %.0f bytes remaining and never \
                    finished"
                   name r)
          | _ -> ());
        if Vm.state vm <> Vm.Running then
          record t ~invariant:"vm-running"
            ~detail:(Printf.sprintf "%s is still paused at the end of the run" name);
        if not (Cluster.node_alive t.cluster host) then begin
          if not (excused t name) then
            record t ~invariant:"vm-on-live-host"
              ~detail:(Printf.sprintf "%s ends on dead node %s" name host.Node.name)
        end
        else if not (excused t name) then begin
          if Node.has_ib host && Vm.find_device vm ~tag:"vf0" = None then
            record t ~invariant:"device-consistency"
              ~detail:
                (Printf.sprintf "%s on IB node %s without its HCA" name host.Node.name);
          if (not (Node.has_ib host)) && Vm.has_bypass_device vm then
            record t ~invariant:"device-consistency"
              ~detail:
                (Printf.sprintf "%s on Ethernet node %s with a bypass device attached"
                   name host.Node.name)
        end
      end)
    t.vms;
  (* Destination overcommit: the watched VMs resident on any one node must
     fit in its memory — the planner's swap-cycle staging exists precisely
     to never leave a host oversubscribed. *)
  let resident = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ vm ->
      let host = Vm.host vm in
      let prev = Option.value (Hashtbl.find_opt resident host.Node.name) ~default:0.0 in
      Hashtbl.replace resident host.Node.name
        (prev +. Memory.total_bytes (Vm.memory vm)))
    t.vms;
  Hashtbl.iter
    (fun node_name bytes ->
      let node = Cluster.find_node t.cluster node_name in
      if bytes > node.Node.mem_bytes *. (1.0 +. 1e-9) then
        record t ~invariant:"host-overcommit"
          ~detail:
            (Printf.sprintf "%s holds %.1f GB of VMs but has %.1f GB" node_name
               (bytes /. 1e9) (node.Node.mem_bytes /. 1e9)))
    resident
