open Ninja_engine
open Ninja_hardware
open Ninja_planner

type trigger = Drain | Disaster | Consolidate of int | Rebalance

type t = {
  seed : int64;
  ib : int;
  eth : int;
  topo : Topology.t option;
  vms : int;
  procs : int;
  mem_gb : float;
  compute : float;
  msg_bytes : float;
  until : float;
  uplink_gbps : float option;
  strategy : Solver.t;
  mode : Ninja_vmm.Migration.mode;
  traffic : string option;
  trigger : trigger;
  trigger_at : float;
  faults : string list;
  plant : string option;
}

(* ------------------------------------------------------------------ *)
(* Generation *)

let frange prng lo hi = lo +. Prng.float prng (hi -. lo)

(* One random fault spec, constrained so an un-planted scenario is
   expected to pass: sources never die (node-death only targets Ethernet
   destinations), probabilities stay moderate, budgets stay finite. *)
let gen_fault prng ~vms ~eth_names =
  let vm_site = Printf.sprintf "vm%d" (Prng.int prng vms) in
  match Prng.int prng 6 with
  | 0 -> Printf.sprintf "precopy-stall@%s:count=%d" vm_site (1 + Prng.int prng 2)
  | 1 ->
    Printf.sprintf "precopy-abort@%s:p=%.2f,count=%d" vm_site
      (frange prng 0.3 0.8)
      (1 + Prng.int prng 2)
  | 2 ->
    Printf.sprintf "qmp-timeout:p=%.2f,count=%d" (frange prng 0.05 0.3)
      (1 + Prng.int prng 3)
  | 3 -> Printf.sprintf "attach-fail@%s:n=%d" vm_site (1 + Prng.int prng 2)
  | 4 -> Printf.sprintf "agent-crash@%s" vm_site
  | _ ->
    Printf.sprintf "node-death@%s:n=1"
      eth_names.(Prng.int prng (Array.length eth_names))

let gen prng =
  let seed = Prng.next_int64 prng in
  (* One in four scenarios runs on a generated datacenter topology
     instead of the two-rack spec, exercising multi-tier routes and the
     incremental solver's component tracking under the checker. *)
  let topo = if Prng.int prng 4 = 0 then Some (Topology.gen prng) else None in
  let vms =
    let v = 1 + Prng.int prng 4 in
    match topo with
    | None -> v
    | Some topo ->
      (* All origins stay in the first (IB) rack, and the Ethernet side
         must absorb the whole fleet for every trigger. *)
      min v (min topo.Topology.hosts_per_rack (Topology.eth_host_count topo))
  in
  let procs = 1 + Prng.int prng 2 in
  let ib = vms + Prng.int prng 3 in
  (* Every trigger needs room on the Ethernet side: [eth >= vms] makes
     rebalance/disaster/consolidate(1) feasible. *)
  let eth = vms + Prng.int prng 4 in
  let mem_gb = frange prng 4.0 16.0 in
  let compute = frange prng 0.1 0.4 in
  let msg_bytes = frange prng 1e6 2e8 in
  let until = frange prng 40.0 90.0 in
  let uplink_gbps =
    if Prng.int prng 4 = 0 && topo = None then Some (frange prng 5.0 25.0) else None
  in
  let strategy =
    let all = Solver.all () in
    List.nth all (Prng.int prng (List.length all))
  in
  (* One in three scenarios migrates postcopy, so the committed-switchover
     failure semantics and pull bookkeeping run under the checker as often
     as the precopy rollback paths do. *)
  let mode =
    if Prng.int prng 3 = 0 then Ninja_vmm.Migration.Postcopy else Ninja_vmm.Migration.Precopy
  in
  (* One in three scenarios carries a tenant traffic matrix, so every
     registered strategy (the swap solver in particular) sees priced
     communication demand under the checker. *)
  let traffic =
    if Prng.int prng 3 = 0 then
      Some (Ninja_workloads.Traffic.to_string (Ninja_workloads.Traffic.gen prng))
    else None
  in
  let trigger =
    match Prng.int prng 4 with
    | 0 -> Drain
    | 1 -> Disaster
    | 2 -> Consolidate (1 + Prng.int prng 2)
    | _ -> Rebalance
  in
  let trigger_at = frange prng 3.0 10.0 in
  let eth_names =
    match topo with
    | None -> Array.init eth (Printf.sprintf "eth%02d")
    | Some topo ->
      List.init (topo.Topology.pods - topo.Topology.ib_pods) (fun i ->
          Topology.pod_hosts topo (topo.Topology.ib_pods + i))
      |> List.concat |> Array.of_list
  in
  let faults = List.init (Prng.int prng 3) (fun _ -> gen_fault prng ~vms ~eth_names) in
  {
    seed;
    ib;
    eth;
    topo;
    vms;
    procs;
    mem_gb;
    compute;
    msg_bytes;
    until;
    uplink_gbps;
    strategy;
    mode;
    traffic;
    trigger;
    trigger_at;
    faults;
    plant = None;
  }

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate t =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () =
    match t.topo with
    | None ->
      let* () = check (t.ib >= 1 && t.eth >= 1) "need at least one node per rack" in
      check (t.vms >= 1 && t.vms <= t.ib) "vms must be in [1, ib]"
    | Some topo ->
      let* () = Topology.validate topo in
      let* () = check (topo.Topology.ib_pods >= 1) "topology needs at least one IB pod" in
      let* () =
        check (Topology.eth_host_count topo >= 1) "topology needs Ethernet hosts"
      in
      (* Origins fill the first IB rack, so a Disaster trigger (evacuate
         the origin rack) covers the whole fleet. *)
      let* () =
        check
          (t.vms >= 1 && t.vms <= topo.Topology.hosts_per_rack)
          "vms must fit the first topology rack"
      in
      let* () =
        check (t.mem_gb <= topo.Topology.mem_gb) "mem_gb exceeds topology host memory"
      in
      check (t.uplink_gbps = None) "uplink_gbps is not supported with a topology"
  in
  let eth_capacity =
    match t.topo with None -> t.eth | Some topo -> Topology.eth_host_count topo
  in
  let* () = check (t.procs >= 1) "procs must be >= 1" in
  let* () = check (t.mem_gb > 0.0 && Float.is_finite t.mem_gb) "mem_gb must be positive" in
  let* () = check (t.compute > 0.0) "compute must be positive" in
  let* () = check (t.msg_bytes >= 0.0) "msg_bytes must be non-negative" in
  let* () = check (t.until > t.trigger_at) "until must be after trigger_at" in
  let* () = check (t.trigger_at > 0.0) "trigger_at must be positive" in
  let* () =
    check
      (match t.uplink_gbps with None -> true | Some g -> g > 0.0)
      "uplink_gbps must be positive"
  in
  let* () =
    match t.traffic with
    | None -> Ok ()
    | Some s -> (
      match Ninja_workloads.Traffic.of_string s with
      | Ok _ -> Ok ()
      | Error e -> Error e)
  in
  let* () =
    match t.trigger with
    | Drain -> Ok ()
    | Disaster | Rebalance -> check (eth_capacity >= t.vms) "trigger needs eth >= vms"
    | Consolidate k ->
      let* () = check (k >= 1) "consolidate factor must be >= 1" in
      check (((t.vms + k - 1) / k) <= eth_capacity) "consolidate needs enough eth targets"
  in
  List.fold_left
    (fun acc f ->
      let* () = acc in
      match Ninja_faults.Injector.parse_spec f with
      | Ok _ -> Ok ()
      | Error e -> Error (Printf.sprintf "fault %S: %s" f e))
    (Ok ()) t.faults

(* ------------------------------------------------------------------ *)
(* Textual form *)

let trigger_to_string = function
  | Drain -> "drain"
  | Disaster -> "disaster"
  | Consolidate k -> Printf.sprintf "consolidate:%d" k
  | Rebalance -> "rebalance"

let trigger_of_string s =
  match String.split_on_char ':' s with
  | [ "drain" ] -> Ok Drain
  | [ "disaster" ] -> Ok Disaster
  | [ "rebalance" ] -> Ok Rebalance
  | [ "consolidate"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Consolidate k)
    | _ -> Error (Printf.sprintf "bad consolidate factor %S" k))
  | _ -> Error (Printf.sprintf "unknown trigger %S" s)

(* %.17g round-trips any finite double exactly. *)
let fstr = Printf.sprintf "%.17g"

let to_string t =
  let b = Buffer.create 256 in
  let line k v = Buffer.add_string b (k ^ "=" ^ v ^ "\n") in
  Buffer.add_string b "# ninja_sim check scenario\n";
  line "seed" (Int64.to_string t.seed);
  line "ib" (string_of_int t.ib);
  line "eth" (string_of_int t.eth);
  (match t.topo with Some topo -> line "topology" (Topology.to_string topo) | None -> ());
  line "vms" (string_of_int t.vms);
  line "procs" (string_of_int t.procs);
  line "mem_gb" (fstr t.mem_gb);
  line "compute" (fstr t.compute);
  line "msg_bytes" (fstr t.msg_bytes);
  line "until" (fstr t.until);
  (match t.uplink_gbps with Some g -> line "uplink_gbps" (fstr g) | None -> ());
  line "strategy" (Solver.name t.strategy);
  line "mode" (Ninja_vmm.Migration.mode_name t.mode);
  (match t.traffic with Some p -> line "traffic" p | None -> ());
  line "trigger" (trigger_to_string t.trigger);
  line "trigger_at" (fstr t.trigger_at);
  List.iter (fun f -> line "fault" f) t.faults;
  (match t.plant with Some p -> line "plant" p | None -> ());
  Buffer.contents b

let default =
  {
    seed = 1L;
    ib = 2;
    eth = 2;
    topo = None;
    vms = 1;
    procs = 1;
    mem_gb = 4.0;
    compute = 0.2;
    msg_bytes = 1e7;
    until = 40.0;
    uplink_gbps = None;
    strategy = Solver.sequential;
    mode = Ninja_vmm.Migration.Precopy;
    traffic = None;
    trigger = Drain;
    trigger_at = 5.0;
    faults = [];
    plant = None;
  }

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad integer %S for %s" v k)
  in
  let parse_float k v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "bad number %S for %s" v k)
  in
  let apply acc line =
    let* t = acc in
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "malformed line %S (expected key=value)" line)
    | Some i ->
      let k = String.trim (String.sub line 0 i) in
      let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      (match k with
      | "seed" -> (
        match Int64.of_string_opt v with
        | Some s -> Ok { t with seed = s }
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | "ib" -> Result.map (fun n -> { t with ib = n }) (parse_int k v)
      | "eth" -> Result.map (fun n -> { t with eth = n }) (parse_int k v)
      | "topology" ->
        Result.map (fun topo -> { t with topo = Some topo }) (Topology.of_string v)
      | "vms" -> Result.map (fun n -> { t with vms = n }) (parse_int k v)
      | "procs" -> Result.map (fun n -> { t with procs = n }) (parse_int k v)
      | "mem_gb" -> Result.map (fun f -> { t with mem_gb = f }) (parse_float k v)
      | "compute" -> Result.map (fun f -> { t with compute = f }) (parse_float k v)
      | "msg_bytes" -> Result.map (fun f -> { t with msg_bytes = f }) (parse_float k v)
      | "until" -> Result.map (fun f -> { t with until = f }) (parse_float k v)
      | "uplink_gbps" ->
        Result.map (fun f -> { t with uplink_gbps = Some f }) (parse_float k v)
      | "strategy" ->
        Result.map (fun s -> { t with strategy = s }) (Solver.of_string v)
      | "mode" ->
        Result.map (fun m -> { t with mode = m }) (Ninja_vmm.Migration.mode_of_string v)
      (* The value itself contains '=' and ',' (e.g. skewed:elephants=2);
         the first-'=' split above keeps it intact. *)
      | "traffic" -> Ok { t with traffic = Some v }
      | "trigger" -> Result.map (fun tr -> { t with trigger = tr }) (trigger_of_string v)
      | "trigger_at" -> Result.map (fun f -> { t with trigger_at = f }) (parse_float k v)
      | "fault" -> Ok { t with faults = t.faults @ [ v ] }
      | "plant" -> Ok { t with plant = Some v }
      | _ -> Error (Printf.sprintf "unknown scenario key %S" k))
  in
  let* t = List.fold_left apply (Ok default) lines in
  let* () = validate t in
  Ok t

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

let shrink t =
  let candidates = ref [] in
  let add c = candidates := c :: !candidates in
  (* A smaller VM fleet may invalidate @vmN fault sites; keep only the
     faults whose sites still exist. *)
  let prune_vm_faults vms faults =
    List.filter
      (fun f ->
        match Ninja_faults.Injector.parse_spec f with
        | Ok { Ninja_faults.Injector.site = Some s; _ } ->
          (try Scanf.sscanf s "vm%d" (fun i -> i < vms) with _ -> true)
        | _ -> true)
      faults
  in
  (* Most aggressive first: collapse the topology to the two-rack spec,
     then try smaller topologies. *)
  if t.topo <> None then add { t with topo = None };
  (match t.topo with
  | Some topo -> List.iter (fun c -> add { t with topo = Some c }) (Topology.shrink topo)
  | None -> ());
  if t.trigger <> Drain then add { t with trigger = Drain };
  if t.strategy <> Solver.sequential then add { t with strategy = Solver.sequential };
  if t.mode <> Ninja_vmm.Migration.Precopy then
    add { t with mode = Ninja_vmm.Migration.Precopy };
  if t.traffic <> None then add { t with traffic = None };
  if t.uplink_gbps <> None then add { t with uplink_gbps = None };
  if t.until > 40.0 then add { t with until = Float.max 40.0 (t.until /. 2.0) };
  if t.msg_bytes > 1e6 then add { t with msg_bytes = 1e6 };
  if t.compute > 0.1 then add { t with compute = 0.1 };
  if t.mem_gb > 4.0 then add { t with mem_gb = Float.max 4.0 (t.mem_gb /. 2.0) };
  if t.procs > 1 then add { t with procs = 1 };
  if t.vms > 1 then
    add { t with vms = t.vms - 1; faults = prune_vm_faults (t.vms - 1) t.faults };
  List.iteri (fun i _ -> add { t with faults = drop_nth i t.faults }) t.faults;
  (* A candidate produced by one simplification can violate another
     dimension's constraint (e.g. a shrunken topology's rack no longer
     holds the fleet); only valid scenarios may reach the re-runner. *)
  List.rev !candidates |> List.filter (fun c -> validate c = Ok ())

let pp fmt t =
  Format.fprintf fmt "seed=%Ld %s, %d vm(s) x%d, %s/%s%s @%.1fs%s%s%s" t.seed
    (match t.topo with
    | None -> Printf.sprintf "%d+%d nodes" t.ib t.eth
    | Some topo -> Topology.to_string topo)
    t.vms t.procs
    (trigger_to_string t.trigger)
    (Solver.name t.strategy)
    (match t.mode with
    | Ninja_vmm.Migration.Precopy -> ""
    | Ninja_vmm.Migration.Postcopy -> "/postcopy")
    t.trigger_at
    (match t.traffic with None -> "" | Some p -> " traffic=" ^ p)
    (match t.faults with
    | [] -> ""
    | fs -> " faults=[" ^ String.concat "; " fs ^ "]")
    (match t.plant with None -> "" | Some p -> " plant=" ^ p)
