(** Randomised migration scenarios.

    A scenario is a complete, self-contained description of one fuzz
    case: cluster shape, VM fleet, workload intensity, the scheduler
    trigger that sets migrations in motion, the armed fault specs, and
    (for harness self-tests) an optional planted protocol bug. A
    scenario fixes a run completely — {!Runner.run} on equal scenarios
    is byte-identical — which is what makes counterexamples replayable.

    The textual form is a line-oriented [key=value] file ([#] starts a
    comment; [fault=] may repeat). {!to_string} and {!of_string}
    round-trip exactly, including float parameters. *)

type trigger =
  | Drain  (** maintenance: evacuate node [ib00] *)
  | Disaster  (** evacuate the whole IB rack (rack 0) *)
  | Consolidate of int  (** pack [k] VMs per Ethernet host *)
  | Rebalance  (** spread one VM per Ethernet host *)

type t = {
  seed : int64;  (** seeds the simulation (and nothing else) *)
  ib : int;  (** IB-equipped node count (rack 0); ignored under [topo] *)
  eth : int;  (** Ethernet-only node count (rack 1); ignored under [topo] *)
  topo : Ninja_hardware.Topology.t option;
      (** when set, the cluster is a generated datacenter topology
          instead of the two-rack spec; VM [i] starts on the [i]-th host
          of the first IB rack, and [ib]/[eth]/[uplink_gbps] are unused
          (validation requires [uplink_gbps = None]) *)
  vms : int;  (** VM fleet size; VM [i] starts on node [ib<i>] *)
  procs : int;  (** MPI processes per VM *)
  mem_gb : float;  (** VM memory size *)
  compute : float;  (** per-iteration compute seconds *)
  msg_bytes : float;  (** per-iteration allreduce payload *)
  until : float;  (** workload iterates until this MPI wtime *)
  uplink_gbps : float option;  (** inter-rack WAN constraint, if any *)
  strategy : Ninja_planner.Solver.t;
      (** any registered planner strategy (see {!Ninja_planner.Solver.all}) *)
  mode : Ninja_vmm.Migration.mode;
      (** copy strategy for every migration the trigger sets in motion;
          [Postcopy] commits switchovers, so its failure semantics (the
          {!Ninja_core.Ninja.Lost} outcome, reroute refusal, mode-aware
          rollback) run under the checker *)
  traffic : string option;
      (** tenant traffic pattern in {!Ninja_workloads.Traffic} grammar,
          priced by cost-model strategies; a seeded matrix is drawn over
          the fleet at run time *)
  trigger : trigger;
  trigger_at : float;  (** sim seconds before the trigger fires *)
  faults : string list;  (** {!Ninja_faults.Injector} textual specs *)
  plant : string option;  (** planted bug name, for self-tests *)
}

val gen : Ninja_engine.Prng.t -> t
(** Draw a random well-formed scenario: destination capacity always
    suffices for the trigger, fault sites reference existing VMs/nodes,
    and node-death is only ever aimed at Ethernet (destination) nodes so
    migration sources never die. One in four scenarios carries a
    generated {!Ninja_hardware.Topology}. One in three scenarios
    migrates postcopy. No plant is ever generated. *)

val validate : t -> (unit, string) result
(** Structural sanity (positive counts, parsable fault specs, trigger
    feasibility). Generated scenarios always validate; hand-written
    replay files may not. *)

val trigger_to_string : trigger -> string

val to_string : t -> string
(** Render as a replay file (with a leading comment header). *)

val of_string : string -> (t, string) result
(** Parse a replay file. Unknown keys and malformed values are errors;
    missing keys fall back to the documented defaults. *)

val shrink : t -> t list
(** Single-step simplification candidates, most aggressive first: drop a
    fault, remove a VM, drop to one process, halve the memory, shorten
    the workload, lift the WAN cap, serialise the plan, simplify the
    trigger. The plant (if any) is preserved. *)

val pp : Format.formatter -> t -> unit
(** One-line summary (not the replay form). *)
