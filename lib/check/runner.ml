open Ninja_engine
open Ninja_faults
open Ninja_hardware
open Ninja_vmm
open Ninja_mpi
open Ninja_core
open Ninja_scheduler

type outcome = Passed | Violated of Checker.violation list | Crashed of string

type result = {
  scenario : Scenario.t;
  outcome : outcome;
  events : int;
  sim_end : float;
}

let plants = [ "skip-rollback"; "skip-fence" ]

let failed r = match r.outcome with Passed -> false | Violated _ | Crashed _ -> true

(* The persistent fault that guarantees the skip-rollback plant actually
   reaches its rollback path. *)
let abort_forever = "precopy-abort:count=inf"

let effective_faults (sc : Scenario.t) =
  match sc.Scenario.plant with
  | Some "skip-rollback" when not (List.mem abort_forever sc.Scenario.faults) ->
    sc.Scenario.faults @ [ abort_forever ]
  | _ -> sc.Scenario.faults

(* The VMs' starting nodes. On the spec path these are ib00..ibNN (rack
   0); on the topology path, the first hosts of the first IB rack —
   either way origin 0 anchors the Drain and Disaster triggers, so the
   two cluster shapes share one trigger/check definition. *)
let origin_hosts cluster (sc : Scenario.t) =
  let names =
    match sc.Scenario.topo with
    | None -> List.init sc.Scenario.vms (Printf.sprintf "ib%02d")
    | Some _ ->
      List.init sc.Scenario.vms (fun i -> Topology.host_name ~pod:0 ~rack:0 ~host:i)
  in
  List.map (Cluster.find_node cluster) names

let trigger_of cluster ~origins (sc : Scenario.t) =
  let eth = Cluster.eth_only_nodes cluster in
  let origin0 : Node.t = List.hd origins in
  match sc.Scenario.trigger with
  | Scenario.Drain ->
    Cloud_scheduler.Maintenance { avoid = (fun n -> n.Node.name = origin0.Node.name) }
  | Scenario.Disaster -> Cloud_scheduler.Disaster { rack = origin0.Node.rack }
  | Scenario.Consolidate k ->
    Cloud_scheduler.Consolidate { vms_per_host = k; targets = eth }
  | Scenario.Rebalance -> Cloud_scheduler.Rebalance { targets = eth }

let trigger_satisfied ~origins (sc : Scenario.t) host =
  let origin0 : Node.t = List.hd origins in
  match sc.Scenario.trigger with
  | Scenario.Drain -> host.Node.name <> origin0.Node.name
  | Scenario.Disaster -> host.Node.rack <> origin0.Node.rack
  | Scenario.Consolidate _ | Scenario.Rebalance -> not (Node.has_ib host)

(* Time-bounded loop with a collectively agreed exit: rank 0 evaluates the
   deadline and its verdict rides a broadcast, so every rank executes the
   same number of collectives. Exiting on local clocks strands laggards
   inside a collective once rank skew builds up — e.g. CPU contention
   after a consolidation doubles VMs up on a host. *)
let workload (sc : Scenario.t) stop ctx =
  while not !stop do
    Mpi.compute ctx ~seconds:sc.Scenario.compute;
    Mpi.allreduce ctx ~bytes:sc.Scenario.msg_bytes;
    if Mpi.rank ctx = 0 && Mpi.wtime ctx >= sc.Scenario.until then stop := true;
    (* Non-root ranks cannot complete the broadcast before rank 0 enters
       it, so by the time any rank re-reads [stop], rank 0 has written
       this iteration's verdict. *)
    Mpi.bcast ctx ~root:0 ~bytes:8.0;
    Mpi.checkpoint_point ctx
  done

(* The planted bug: a direct VMM-layer migration behind the protocol's
   back — no fence, no rollback bookkeeping. Fault injection is cleared
   first so the buggy path itself executes cleanly; the point is that
   the checker, not a crash, flags it. *)
let sneak_migrate cluster vm =
  Injector.clear (Cluster.injector cluster);
  let dst =
    Cluster.eth_only_nodes cluster
    |> List.find_opt (fun n ->
           Cluster.node_alive cluster n && n.Node.id <> (Vm.host vm).Node.id)
  in
  match dst with
  | None -> ()
  | Some dst ->
    (match Vm.find_device vm ~tag:"vf0" with
    | Some _ -> ignore (Vm.detach_device vm ~tag:"vf0")
    | None -> ());
    ignore (Migration.migrate vm ~dst ~transport:Migration.Tcp ())

let apply_plant (sc : Scenario.t) cluster ninja =
  match sc.Scenario.plant with
  | None -> ()
  | Some "skip-fence" -> sneak_migrate cluster (List.hd (Ninja.vms ninja))
  | Some "skip-rollback" -> (
    match Ninja.last_outcome ninja with
    | Some (Ninja.Rolled_back _) -> sneak_migrate cluster (List.hd (Ninja.vms ninja))
    (* A lost VM cannot be migrated at all — the plant has nothing to
       sneak past the protocol. *)
    | Some (Ninja.Lost _) | Some Ninja.Completed | None -> ())
  | Some other -> invalid_arg (Printf.sprintf "unknown plant %S" other)

let final_checks ~origins (sc : Scenario.t) ninja checker =
  match Ninja.last_outcome ninja with
  | None ->
    Checker.record checker ~invariant:"migration-ran"
      ~detail:"the scheduler trigger never performed a migration"
  | Some Ninja.Completed ->
    List.iter
      (fun vm ->
        let host = Vm.host vm in
        if not (trigger_satisfied ~origins sc host) then
          Checker.record checker ~invariant:"trigger-satisfied"
            ~detail:
              (Printf.sprintf "%s ended on %s, which violates trigger %s" (Vm.name vm)
                 host.Node.name
                 (Scenario.trigger_to_string sc.Scenario.trigger)))
      (Ninja.vms ninja)
  | Some (Ninja.Rolled_back _) ->
    (* Mode-aware rollback: a rollback must actually restore-to-source.
       Reporting [Rolled_back] while a VM is lost would claim a restore
       that never happened — that is the [Lost] outcome's job. *)
    List.iter
      (fun vm ->
        if Vm.is_lost vm then
          Checker.record checker ~invariant:"lost-unreported"
            ~detail:
              (Printf.sprintf
                 "%s was lost mid-postcopy but the outcome claims a clean rollback"
                 (Vm.name vm)))
      (Ninja.vms ninja);
    List.iteri
      (fun i vm ->
        let origin = (List.nth origins i).Node.name in
        if
          (not (Vm.is_lost vm))
          && (not (Checker.excused checker (Vm.name vm)))
          && (Vm.host vm).Node.name <> origin
        then
          Checker.record checker ~invariant:"rollback-restore"
            ~detail:
              (Printf.sprintf "%s ends on %s after a rollback; its origin is %s"
                 (Vm.name vm) (Vm.host vm).Node.name origin))
      (Ninja.vms ninja)
  | Some (Ninja.Lost _) ->
    (* The terminal postcopy outcome: at least one VM must really be
       lost (and paused — {!Checker.check_finish} asserts that part),
       and every surviving VM must still have been restored to source. *)
    if not (List.exists Vm.is_lost (Ninja.vms ninja)) then
      Checker.record checker ~invariant:"lost-accounting"
        ~detail:"outcome is Lost but no VM is marked lost";
    List.iteri
      (fun i vm ->
        let origin = (List.nth origins i).Node.name in
        if
          (not (Vm.is_lost vm))
          && (not (Checker.excused checker (Vm.name vm)))
          && (Vm.host vm).Node.name <> origin
        then
          Checker.record checker ~invariant:"rollback-restore"
            ~detail:
              (Printf.sprintf "%s ends on %s after a lost migration; its origin is %s"
                 (Vm.name vm) (Vm.host vm).Node.name origin))
      (Ninja.vms ninja)

let run ?attach scenario =
  let checker_ref = ref None in
  let sim_ref = ref None in
  let outcome =
    match Scenario.validate scenario with
    | Error e -> Crashed ("invalid scenario: " ^ e)
    | Ok () -> (
      try
        let sim = Sim.create ~seed:scenario.Scenario.seed () in
        sim_ref := Some sim;
        let cluster =
          match scenario.Scenario.topo with
          | Some topo -> Cluster.create sim ~topology:topo ()
          | None ->
            let spec =
              Spec.make ~ib_nodes:scenario.Scenario.ib
                ~eth_nodes:scenario.Scenario.eth ()
            in
            Cluster.create sim ~spec ()
        in
        (match scenario.Scenario.uplink_gbps with
        | Some g ->
          Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps g)
            ~latency:(Time.ms 5)
        | None -> ());
        List.iter
          (fun text ->
            match Injector.parse_spec text with
            | Ok spec -> Injector.arm_spec (Cluster.injector cluster) spec
            | Error e -> failwith (Printf.sprintf "bad fault spec %S: %s" text e))
          (effective_faults scenario);
        (* Extra observers (e.g. a telemetry recorder under test) join the
           bus before any fleet activity. *)
        Option.iter (fun f -> f cluster) attach;
        let origins = origin_hosts cluster scenario in
        let ninja =
          Ninja.setup cluster ~hosts:origins ~mem_gb:scenario.Scenario.mem_gb ()
        in
        Checker.with_checker cluster ~vms:(Ninja.vms ninja) @@ fun checker ->
        checker_ref := Some checker;
        let stop = ref false in
        ignore
          (Ninja.launch ninja ~procs_per_vm:scenario.Scenario.procs
             (workload scenario stop));
        let traffic =
          match scenario.Scenario.traffic with
          | None -> []
          | Some text -> (
            match Ninja_workloads.Traffic.of_string text with
            | Error e -> failwith e
            | Ok pattern ->
              (* A dedicated split keyed off the sim stream: drawn at a
                 fixed point in setup, so equal scenarios get equal
                 matrices and traffic-less scenarios leave the stream
                 untouched. *)
              let prng = Prng.split (Sim.prng sim) in
              Ninja_workloads.Traffic.matrix prng pattern
                ~vms:(List.map Vm.name (Ninja.vms ninja)))
        in
        let sched =
          Cloud_scheduler.create ~strategy:scenario.Scenario.strategy
            ~mode:scenario.Scenario.mode ~traffic ninja
        in
        Cloud_scheduler.schedule sched
          ~after:(Time.of_sec_f scenario.Scenario.trigger_at)
          (trigger_of cluster ~origins scenario);
        if scenario.Scenario.plant <> None then
          Sim.spawn sim ~name:"plant" (fun () ->
              Ninja.wait_job ninja;
              apply_plant scenario cluster ninja);
        Sim.run sim;
        Checker.check_finish checker;
        final_checks ~origins scenario ninja checker;
        match Checker.violations checker with [] -> Passed | vs -> Violated vs
      with
      | Sim.Deadlock stuck ->
        Crashed (Printf.sprintf "deadlock; stuck fibers: %s" (String.concat ", " stuck))
      | exn -> Crashed (Printexc.to_string exn))
  in
  {
    scenario;
    outcome;
    events = (match !checker_ref with Some c -> Checker.events_seen c | None -> 0);
    sim_end =
      (match !sim_ref with Some s -> Time.to_sec_f (Sim.now s) | None -> 0.0);
  }

let pp_result fmt r =
  match r.outcome with
  | Passed ->
    Format.fprintf fmt "PASS (%d events, sim ended at %.1fs): %a" r.events r.sim_end
      Scenario.pp r.scenario
  | Crashed msg -> Format.fprintf fmt "CRASH %s: %a" msg Scenario.pp r.scenario
  | Violated vs ->
    Format.fprintf fmt "@[<v>FAIL (%d violation(s)): %a" (List.length vs) Scenario.pp
      r.scenario;
    List.iter (fun v -> Format.fprintf fmt "@,  %a" Checker.pp_violation v) vs;
    Format.fprintf fmt "@]"
