(** Protocol invariant checker.

    Subscribes to a cluster's {!Ninja_engine.Probe} bus and asserts,
    synchronously on every announced transition, the protocol invariants
    the paper's correctness argument rests on:

    - {b clock-monotone} — probe timestamps never go backwards;
    - {b fence-before-migrate} — a managed VM only ever changes host
      while it is inside a SymVirt fence (all ranks paused);
    - {b bypass-migrate} — no VM migrates with a VMM-bypass device
      still attached;
    - {b attach-balance} — device adds and removes stay balanced per VM
      (no duplicate attach, no detach of an absent device);
    - {b plan-acyclic} — every constructed plan DAG is acyclic;
    - {b permit-leak} — the plan executor returns every per-host permit
      it acquired;
    - {b flow-conservation} — at every transition, the sum of flow
      rates on each fabric link stays within its capacity;
    - {b fence-pairing} — fence enter/release strictly alternate, and
      no fence is left held at the end of the run;
    - {b rollback-restore} — after a rolled-back migration, every VM
      the rollback did not explicitly give up on is back on its origin
      host;
    - {b pull-monotone} — every postcopy pull strictly shrinks the
      VM's remaining remote byte count (the drain always progresses);
    - {b no-double-resident} — no pull ever re-claims a page that is
      already resident at the destination;
    - {b postcopy-lost} — a VM lost to a mid-drain source death ends
      the run frozen (running it would execute over missing pages), and
      every loss is announced by a ["migration"/"lost"] event;
    - {b postcopy-complete} — a VM that is {e not} lost has finished
      every postcopy drain it started; silently running with pages
      still at the source is the violation the [Lost] accounting
      exists to prevent.

    Violations are collected, not raised: a single run reports every
    invariant it breaks. VMs the transactional rollback abandoned (a
    ["migrate"/"giveup"] probe) are excused from placement and device
    restoration checks — giving up under a persistent fault is the
    documented best-effort behaviour, not a bug. Lost VMs are likewise
    exempt from restore-to-source and placement checks: rollback from a
    committed postcopy switchover is impossible by construction, and the
    mode-aware checks above replace the precopy-shaped ones for them. *)

open Ninja_hardware
open Ninja_vmm

type violation = {
  invariant : string;  (** short kebab-case name, e.g. ["fence-before-migrate"] *)
  at : Ninja_engine.Time.t;  (** sim time of the offending transition *)
  detail : string;
}

type t

val install : Cluster.t -> vms:Vm.t list -> t
(** Attach a checker to the cluster's probe bus, watching [vms] (their
    current devices become the attach-balance baseline). Install after
    the fleet is created and before any migration activity. *)

val detach : t -> unit
(** Remove the checker's bus subscription (idempotent). A detached bus
    with no other subscriber goes back to costing nothing per emit. *)

val with_checker : Cluster.t -> vms:Vm.t list -> (t -> 'a) -> 'a
(** [install], run the body, then {!detach} — even on exceptions. *)

val record : t -> invariant:string -> detail:string -> unit
(** Report a violation found outside the probe stream (used by
    {!Runner}'s end-of-run checks). *)

val excused : t -> string -> bool
(** Whether a VM (by name) was abandoned by a best-effort rollback
    phase since the last migration started. *)

val check_finish : t -> unit
(** End-of-run invariants: no fence held, every watched VM running on a
    live host, device state consistent with the host's hardware
    (IB host ⇒ HCA attached; Ethernet host ⇒ no bypass device), every
    postcopy drain finished, and every lost VM frozen. Call after
    [Sim.run] returns. *)

val events_seen : t -> int

val violations : t -> violation list
(** In detection order. *)

val pp_violation : Format.formatter -> violation -> unit
