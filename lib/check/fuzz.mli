(** Fuzzing campaigns: generate, run, shrink.

    A campaign draws [n] scenarios from the context's seed, runs each
    under {!Runner} (domain-parallel when the context carries a pool —
    submission order is preserved, so parallel campaigns report the same
    failures as serial ones), then greedily shrinks every failure to a
    smaller scenario that still fails. Shrinking re-runs candidate
    scenarios serially under a bounded budget. *)

type failure = {
  index : int;  (** 0-based index of the scenario in the campaign *)
  result : Runner.result;  (** the original failing run *)
  shrunk : Runner.result option;  (** smaller still-failing repro, if found *)
}

type summary = {
  total : int;
  passed : int;
  crashed : int;
  events : int;  (** probe events observed across all runs *)
  failures : failure list;
}

val generate : seed:int64 -> n:int -> Scenario.t list
(** The deterministic scenario stream: [n] draws from a fresh PRNG. *)

val shrink_result : ?budget:int -> Runner.result -> Runner.result option
(** Greedy shrink of a failing result: repeatedly take the first
    simplification candidate that still fails, spending at most
    [budget] (default 60) runs. [None] if the input passes or no
    candidate fails. *)

val campaign :
  Ninja_engine.Run_ctx.t ->
  n:int ->
  ?plant:string ->
  ?topology:Ninja_hardware.Topology.t ->
  ?strategy:Ninja_planner.Solver.t ->
  ?mode:Ninja_vmm.Migration.mode ->
  ?shrink:bool ->
  unit ->
  summary
(** Run a campaign of [n] scenarios seeded from the context. [plant]
    installs the named planted bug (see {!Runner}) into every scenario;
    [topology] forces every scenario onto the given datacenter topology
    (clamping fleet size and memory to fit it); [strategy] pins every
    scenario to one registered planner strategy (the CI strategy matrix);
    [mode] pins every scenario to one migration mode (by default
    scenarios keep their generated mix, roughly one-in-three postcopy);
    [shrink] (default true) controls counterexample minimisation. *)

val repro_of : failure -> string
(** The replay file for a failure (the shrunk scenario when available),
    with the violations appended as comments. *)

val pp_summary : Format.formatter -> summary -> unit
