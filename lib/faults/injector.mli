(** Fault-injection registry.

    Model code declares {e fault points} — named places where the real
    system can fail (a precopy transfer stalling or aborting, a QMP
    command timing out, a hotplug attach failing, a SymVirt agent
    crashing, a destination node dying). An injector holds a set of
    {e armed} faults, each a (point, optional site, trigger, firing
    budget) tuple; at runtime the fault point calls {!fire} and, when an
    armed fault's trigger matches, simulates the failure.

    Determinism: probabilistic triggers draw from the injector's own
    splitmix64 stream (never the simulation's), and an injector with
    nothing armed performs no draws and no allocation on the hit path —
    so runs with faults disabled are byte-identical to runs without the
    injector. *)

open Ninja_engine

type point =
  | Precopy_stall  (** a precopy round stalls for a fixed extra delay *)
  | Precopy_abort  (** the precopy transfer aborts; the VM stays at the source *)
  | Qmp_timeout  (** a monitor command times out without executing *)
  | Hotplug_attach_fail  (** a [device_add] fails after the ACPI delay *)
  | Agent_crash  (** a SymVirt agent dies before issuing its commands *)
  | Node_death  (** the targeted destination node dies permanently *)

val point_name : point -> string
(** ["precopy-stall"], ["precopy-abort"], ["qmp-timeout"], ["attach-fail"],
    ["agent-crash"], ["node-death"]. *)

val point_of_name : string -> point option

val all_points : point list

type trigger =
  | Always  (** every matching hit fires (subject to the count budget) *)
  | At of Time.span  (** hits at or after this sim-time fire *)
  | Nth of int  (** exactly the nth matching hit fires (1-based) *)
  | Prob of float  (** each hit fires independently with this probability *)

type spec = {
  point : point;
  site : string option;  (** [None] matches any site *)
  trigger : trigger;
  count : int;  (** maximum firings; [max_int] means unlimited *)
}

type t

val create : ?seed:int64 -> Sim.t -> t
(** A fresh injector with nothing armed. [seed] (default a fixed
    constant) initialises the injector's private PRNG used only by
    [Prob] triggers. *)

val set_trace : t -> Trace.t -> unit
(** Firings are recorded under category ["faults"]. *)

val set_probes : t -> Probe.t -> unit
(** Firings are announced on the bus as topic ["fault"], action the point
    name, subject the site, with a ["firing"] ordinal in the info. *)

val arm : t -> ?site:string -> ?count:int -> trigger -> point -> unit
(** Arm a fault ([count] defaults to 1). Several faults may be armed on
    the same point. *)

val arm_spec : t -> spec -> unit

val clear : t -> unit

val enabled : t -> bool
(** True iff anything is armed (cheap; fault points use it as a guard). *)

val fire : t -> point -> site:string -> bool
(** Register a hit at a fault point. Returns true iff some armed fault
    matching [(point, site)] fires; its remaining count is decremented.
    A disabled injector always returns false at zero cost. *)

val fired : t -> point -> int
(** Total firings recorded for the point so far. *)

val hits : t -> point -> int
(** Total hits registered for the point so far (armed matches only). *)

(** {1 Textual fault specs}

    Grammar: [point\[@site\]\[:param{,param}\]] with at most one trigger
    param among [t=<seconds>] ({!At}), [n=<int>] ({!Nth}) and
    [p=<float>] ({!Prob}); no trigger param means {!Always}. [count=<int>]
    or [count=inf] bounds the firings (default 1).

    Examples: ["precopy-abort@vm0:t=12"], ["qmp-timeout:p=0.2,count=inf"],
    ["node-death@eth03:n=1"]. *)

val parse_spec : string -> (spec, string) result

val spec_to_string : spec -> string

val pp_spec : Format.formatter -> spec -> unit
