open Ninja_engine

type point =
  | Precopy_stall
  | Precopy_abort
  | Qmp_timeout
  | Hotplug_attach_fail
  | Agent_crash
  | Node_death

let point_name = function
  | Precopy_stall -> "precopy-stall"
  | Precopy_abort -> "precopy-abort"
  | Qmp_timeout -> "qmp-timeout"
  | Hotplug_attach_fail -> "attach-fail"
  | Agent_crash -> "agent-crash"
  | Node_death -> "node-death"

let all_points =
  [ Precopy_stall; Precopy_abort; Qmp_timeout; Hotplug_attach_fail; Agent_crash; Node_death ]

let point_of_name name =
  List.find_opt (fun p -> String.equal (point_name p) name) all_points

type trigger = Always | At of Time.span | Nth of int | Prob of float

type spec = { point : point; site : string option; trigger : trigger; count : int }

type armed = { spec : spec; mutable remaining : int; mutable seen : int }

type t = {
  sim : Sim.t;
  prng : Prng.t;
  mutable trace : Trace.t option;
  mutable probes : Probe.t option;
  mutable armed : armed list;
  fired_counts : (point, int ref) Hashtbl.t;
  hit_counts : (point, int ref) Hashtbl.t;
}

(* A fixed private seed: arming or firing faults must never perturb the
   simulation's main PRNG stream. *)
let default_seed = 0x6E696E6A61L

let create ?(seed = default_seed) sim =
  {
    sim;
    prng = Prng.create ~seed;
    trace = None;
    probes = None;
    armed = [];
    fired_counts = Hashtbl.create 8;
    hit_counts = Hashtbl.create 8;
  }

let set_trace t trace = t.trace <- Some trace

let set_probes t probes = t.probes <- Some probes

let validate spec =
  (match spec.trigger with
  | Nth n when n < 1 -> invalid_arg "Injector.arm: Nth trigger is 1-based"
  | Prob p when p < 0.0 || p > 1.0 || not (Float.is_finite p) ->
    invalid_arg "Injector.arm: probability must be in [0, 1]"
  | Always | At _ | Nth _ | Prob _ -> ());
  if spec.count < 1 then invalid_arg "Injector.arm: count must be >= 1"

let arm_spec t spec =
  validate spec;
  t.armed <- t.armed @ [ { spec; remaining = spec.count; seen = 0 } ]

let arm t ?site ?(count = 1) trigger point = arm_spec t { point; site; trigger; count }

let clear t =
  t.armed <- [];
  Hashtbl.reset t.fired_counts;
  Hashtbl.reset t.hit_counts

let enabled t = t.armed <> []

let counter table point =
  match Hashtbl.find_opt table point with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Hashtbl.add table point c;
    c

let fired t point = match Hashtbl.find_opt t.fired_counts point with Some c -> !c | None -> 0

let hits t point = match Hashtbl.find_opt t.hit_counts point with Some c -> !c | None -> 0

let matches a point ~site =
  a.spec.point = point
  && (match a.spec.site with None -> true | Some s -> String.equal s site)

let fire t point ~site =
  t.armed <> []
  &&
  let candidates = List.filter (fun a -> matches a point ~site) t.armed in
  if candidates = [] then false
  else begin
    incr (counter t.hit_counts point);
    List.iter (fun a -> a.seen <- a.seen + 1) candidates;
    let fires a =
      a.remaining > 0
      &&
      match a.spec.trigger with
      | Always -> true
      | At at -> Time.(Sim.now t.sim >= at)
      | Nth n -> a.seen = n
      | Prob p -> p > 0.0 && Prng.float t.prng 1.0 < p
    in
    match List.find_opt fires candidates with
    | None -> false
    | Some a ->
      if a.remaining <> max_int then a.remaining <- a.remaining - 1;
      incr (counter t.fired_counts point);
      Option.iter
        (fun trace ->
          Trace.recordf trace ~category:"faults" "injected %s at %s (firing %d)"
            (point_name point) site (fired t point))
        t.trace;
      Option.iter
        (fun probes ->
          Probe.emit probes ~topic:"fault" ~action:(point_name point) ~subject:site
            ~info:[ ("firing", string_of_int (fired t point)) ]
            ())
        t.probes;
      true
  end

(* ------------------------------------------------------------------ *)
(* Textual specs: point[@site][:param{,param}] *)

let parse_spec text =
  let ( let* ) = Result.bind in
  let text = String.trim text in
  let head, params =
    match String.index_opt text ':' with
    | None -> (text, [])
    | Some i ->
      ( String.sub text 0 i,
        String.sub text (i + 1) (String.length text - i - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun s -> s <> "") )
  in
  let point_str, site =
    match String.index_opt head '@' with
    | None -> (head, None)
    | Some i ->
      ( String.sub head 0 i,
        Some (String.sub head (i + 1) (String.length head - i - 1)) )
  in
  let* point =
    match point_of_name (String.trim point_str) with
    | Some p -> Ok p
    | None ->
      Error
        (Printf.sprintf "unknown fault point %S; expected one of: %s" point_str
           (String.concat ", " (List.map point_name all_points)))
  in
  let* site =
    match site with
    | Some "" -> Error "empty fault site after '@'"
    | other -> Ok other
  in
  let parse_param (trigger, count) param =
    match String.index_opt param '=' with
    | None -> Error (Printf.sprintf "malformed fault parameter %S (expected key=value)" param)
    | Some i ->
      let key = String.sub param 0 i in
      let value = String.sub param (i + 1) (String.length param - i - 1) in
      let one_trigger mk =
        match trigger with
        | Some _ -> Error (Printf.sprintf "fault spec has more than one trigger (at %S)" param)
        | None -> Result.map (fun tr -> (Some tr, count)) mk
      in
      let float_of v =
        match float_of_string_opt v with
        | Some f when Float.is_finite f -> Ok f
        | _ -> Error (Printf.sprintf "bad number %S in fault spec" v)
      in
      (match key with
      | "t" -> one_trigger (Result.map (fun s -> At (Time.of_sec_f s)) (float_of value))
      | "n" -> (
        match int_of_string_opt value with
        | Some n when n >= 1 -> one_trigger (Ok (Nth n))
        | _ -> Error (Printf.sprintf "bad hit index %S in fault spec (need int >= 1)" value))
      | "p" -> (
        let* p = float_of value in
        if p < 0.0 || p > 1.0 then Error (Printf.sprintf "probability %s out of [0, 1]" value)
        else one_trigger (Ok (Prob p)))
      | "count" -> (
        match value with
        | "inf" -> Ok (trigger, Some max_int)
        | _ -> (
          match int_of_string_opt value with
          | Some c when c >= 1 -> Ok (trigger, Some c)
          | _ -> Error (Printf.sprintf "bad count %S in fault spec (need int >= 1 or inf)" value)))
      | _ -> Error (Printf.sprintf "unknown fault parameter %S" key))
  in
  let* trigger, count =
    List.fold_left
      (fun acc p -> Result.bind acc (fun st -> parse_param st p))
      (Ok (None, None)) params
  in
  Ok
    {
      point;
      site;
      trigger = Option.value trigger ~default:Always;
      count = Option.value count ~default:1;
    }

let spec_to_string s =
  let site = match s.site with None -> "" | Some site -> "@" ^ site in
  let params =
    (match s.trigger with
    | Always -> []
    | At t -> [ Printf.sprintf "t=%g" (Time.to_sec_f t) ]
    | Nth n -> [ Printf.sprintf "n=%d" n ]
    | Prob p -> [ Printf.sprintf "p=%g" p ])
    @ (if s.count = max_int then [ "count=inf" ]
       else if s.count = 1 then []
       else [ Printf.sprintf "count=%d" s.count ])
  in
  point_name s.point ^ site
  ^ match params with [] -> "" | ps -> ":" ^ String.concat "," ps

let pp_spec fmt s = Format.pp_print_string fmt (spec_to_string s)
