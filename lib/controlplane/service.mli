(** The continuous control plane: a long-running, sim-time migration
    service.

    Everything else in the repo is one-shot — plan a batch, fence, migrate,
    exit. This service runs for the whole simulation: an open-loop arrival
    stream ({!Ninja_workloads.Arrivals}) submits {!Request}s; an admission
    controller bounds each tenant's queue; a dispatcher fiber serves the
    per-tenant weighted-fair queues ({!Fair_queue}) under a bounded
    in-flight batch budget; each admitted batch claims its VM/host
    footprint ({!Locks}) so concurrent plans never overlap, then executes
    through the existing pipeline — placement
    ({!Ninja_scheduler.Placement.pack_least_loaded}), plan construction
    ({!Ninja_planner.Plan.of_assignment}), strategy solving
    ({!Ninja_planner.Solver}) and the fault-aware fiber executor
    ({!Ninja_planner.Executor}).

    Each batch runs inside its own keyed SymVirt-style fence (probe topic
    ["fence"] with an [id]): the batch's VMs are paused, bypass devices
    detached, migrated, re-equipped for wherever they landed (an HCA on
    IB-equipped hosts) and resumed. A failed batch rolls every VM back to
    its origin — VMs stranded by a dead node are excused with a
    ["migrate"]/["giveup"] probe, exactly like {!Ninja_core.Ninja} — and
    the request is re-queued until its attempt budget runs out, so faults
    delay requests rather than lose them.

    Telemetry: every decision lands in the service's {!Ninja_telemetry.Metrics}
    registry ([ctl.*] counters, queue-depth gauge/histogram, request
    latency / queue-wait / batch-makespan / VM-downtime histograms) and is
    mirrored on the probe bus (topic ["ctl"], action ["stat"]) so an
    attached {!Ninja_telemetry.Recorder} exports the same numbers; each
    request gets a span track ([controlplane]/[req-NNN]) with its queued
    interval and execution window.

    Determinism: one service per simulation, all decisions taken in
    deterministic DES order from seeded PRNGs — equal seeds give equal
    request logs, outcomes and metrics. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_telemetry

type tenant_spec = {
  name : string;
  weight : float;
  vms : Vm.t list;
  traffic : Ninja_planner.Cost_model.traffic;
      (** the tenant's steady-state VM-to-VM demand (see
          {!Ninja_workloads.Traffic}); empty when unknown *)
}
(** The VMs a tenant owns; weights shape the fair queues. A VM may appear
    in at most one tenant. *)

type config = {
  strategy : Ninja_planner.Solver.t;
  mode : Migration.mode;
      (** default copy strategy stamped on every request ({!make} can
          override per request); postcopy requests commit their
          switchovers and cannot be rolled back to source *)
  max_inflight : int;  (** concurrent batch plans; >= 1 *)
  queue_cap : int;  (** admission bound per tenant queue *)
  max_attempts : int;  (** dispatch attempts per request before Failed *)
  max_defers : int;  (** capacity/lock deferrals before Dropped *)
  retry : Retry.policy;  (** per-step and rollback retry policy *)
  max_per_host : int;  (** executor migration slots per node *)
  auto_swap : bool;
      (** run the online destination-swap policy: whenever the dispatcher
          wakes with no swap outstanding, price every VM pair against the
          tenant traffic matrices and submit the best improving exchange
          as a [Swap] request (see {!propose_swap}) *)
}

val default_config : config
(** Grouped strategy, precopy mode, 2 batches in flight, queue cap 8,
    3 attempts, 25 deferrals, no auto-swap, the executor's defaults
    otherwise. *)

type outcome =
  | Completed
  | Rejected of string  (** refused at admission (e.g. ["queue-full"]) *)
  | Dropped of string
      (** left the queue unserved: ["deadline-missed"],
          ["no-feasible-placement"], ... *)
  | Failed of string  (** every dispatch attempt rolled back *)

val outcome_name : outcome -> string

type t

val create : Cluster.t -> config:config -> tenants:tenant_spec list -> unit -> t
(** Registers the tenants (plus an implicit VM-less ["ops"] tenant for
    operator requests, unless one is supplied) and spawns the dispatcher
    fiber — create the service before running the simulation. *)

val boot_tenants :
  ?traffic:Ninja_workloads.Traffic.pattern ->
  Cluster.t ->
  tenants:(string * float) list ->
  vms_per_tenant:int ->
  mem_bytes:float ->
  tenant_spec list
(** Convenience harness: boots [vms_per_tenant] VMs per (name, weight)
    tenant, round-robin over the cluster's alive nodes under their memory
    capacity, attaching a VMM-bypass HCA on IB-equipped hosts. [traffic]
    draws each tenant a seeded matrix of the given pattern (from a
    dedicated split of the sim's PRNG; tenants without traffic leave the
    stream untouched). *)

val cluster : t -> Cluster.t

val vms : t -> Vm.t list
(** Every managed VM, sorted by name — the checker's watch list. *)

val metrics : t -> Metrics.t

(** {1 Feeding requests} *)

val make :
  t ->
  tenant:string ->
  kind:Request.kind ->
  ?mode:Migration.mode ->
  ?priority:Request.priority ->
  ?deadline:Time.span ->
  unit ->
  Request.t
(** Allocate the next request id, stamped with the current sim time.
    [mode] defaults to the service config's mode. *)

val submit : t -> Request.t -> unit
(** Admission: reject (["queue-full"], ["unknown-tenant"]) or enqueue. *)

val random_request : t -> Request.t
(** Draw from the built-in traffic mix (tenant placement changes plus
    operator evacuations/failovers) using the service's PRNG stream. *)

val inject : t -> after:Time.span -> (t -> Request.t) -> unit
(** Submit one constructed request after a delay (a registered feeder, so
    the dispatcher outlives it). *)

val open_loop : t -> process:Ninja_workloads.Arrivals.process -> horizon:float -> unit
(** Spawn the open-loop source: arrival instants drawn over [horizon]
    seconds from now, one {!random_request} submitted at each. May be
    called several times to overlay sources. *)

val propose_swap : t -> bool
(** One round of the online destination-swap policy: price every
    same-fabric-class, unlocked VM pair against the tenant traffic
    matrices ({!Ninja_planner.Cost_model}) and submit the most improving
    exchange as a [Low]-priority [Swap] request — [true] if one was
    submitted, [false] when no exchange pays for its migrations within
    the horizon (counted as [ctl.swap.noop]). Called automatically by
    the dispatcher under [auto_swap]; harmless to call directly.
    Telemetry: [ctl.swap.proposed]/[ctl.swap.gain] here,
    [ctl.swap.applied]/[ctl.swap.rolled_back] when the batch settles. *)

(** {1 Results} *)

val submitted : t -> int

val outcomes : t -> (Request.t * outcome) list
(** In completion order. *)

val count : t -> string -> float
(** A counter/gauge value from the service registry, 0 when absent. *)

val log : t -> string list
(** The request log, one deterministic line per transition. *)

val quiesced : t -> bool
(** No feeders, no queued requests, no batch in flight. *)

val accounting : t -> (unit, string) result
(** Every submitted request reached exactly one terminal outcome and
    nothing is still queued or in flight — the no-stranded-requests
    invariant. *)

val latency_percentiles : t -> (float * float * float) option
(** Nearest-rank (p50, p95, p99) of completed-request latency seconds. *)
