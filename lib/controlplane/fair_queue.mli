(** Per-tenant weighted-fair queues.

    Each tenant owns a FIFO and a virtual-time clock; serving a tenant
    advances its clock by [cost / weight], so over time tenants receive
    service in proportion to their weights (classic WFQ). A tenant whose
    queue was empty rejoins at the current virtual time of the busy
    tenants — idling never banks credit.

    The queue is deliberately policy-free about {e which} head runs next:
    {!heads} exposes every tenant's front element with its virtual time,
    in registration order, and the service loop applies its own ordering
    (priority-major, then virtual time) so the dispatch decision stays in
    one place. All iteration orders are deterministic. *)

type 'a t

val create : unit -> 'a t

val register : 'a t -> name:string -> weight:float -> unit
(** Weight must be positive. Re-registering a name is an error. *)

val tenants : 'a t -> string list
(** In registration order. *)

val push : 'a t -> tenant:string -> 'a -> unit
(** Append to the tenant's FIFO. Raises [Not_found] for an unknown
    tenant. *)

val push_front : 'a t -> tenant:string -> 'a -> unit
(** Return a deferred element to the head of its FIFO, preserving
    per-tenant submission order. *)

val pop : 'a t -> tenant:string -> 'a
(** Remove and return the tenant's head. Raises [Not_found] when the
    tenant is unknown or its queue is empty. *)

val charge : 'a t -> tenant:string -> float -> unit
(** Advance the tenant's virtual time by [cost / weight] — call once per
    dispatched batch with the batch's cost (e.g. its step count). *)

val heads : 'a t -> (string * float * 'a) list
(** [(tenant, vtime, head)] for every non-empty tenant, in registration
    order. *)

val depth : 'a t -> tenant:string -> int

val length : 'a t -> int
(** Total queued elements across tenants. *)

val is_empty : 'a t -> bool
