type t = {
  hosts : (int, int) Hashtbl.t;  (* node id -> batch *)
  vms : (string, int) Hashtbl.t;  (* vm name -> batch *)
  reserved : (int, float) Hashtbl.t;  (* node id -> inbound bytes *)
}

type claim = {
  cbatch : int;
  mutable c_hosts : int list;
  mutable c_vms : string list;
  mutable c_reserved : (int * float) list;
  mutable released : bool;
}

let create () =
  { hosts = Hashtbl.create 16; vms = Hashtbl.create 16; reserved = Hashtbl.create 16 }

let batch c = c.cbatch

let host_free t ?batch id =
  match Hashtbl.find_opt t.hosts id with
  | None -> true
  | Some owner -> ( match batch with Some b -> b = owner | None -> false)

let vm_free t name = not (Hashtbl.mem t.vms name)

let reserved_bytes t id = Option.value (Hashtbl.find_opt t.reserved id) ~default:0.0

let add_reservation t (id, bytes) =
  Hashtbl.replace t.reserved id (reserved_bytes t id +. bytes)

let try_claim t ~batch ~vms ~hosts ~reserved =
  let hosts = List.sort_uniq compare hosts in
  let vms = List.sort_uniq compare vms in
  let ok =
    List.for_all (host_free t ~batch) hosts && List.for_all (vm_free t) vms
  in
  if not ok then None
  else begin
    List.iter (fun id -> Hashtbl.replace t.hosts id batch) hosts;
    List.iter (fun name -> Hashtbl.replace t.vms name batch) vms;
    List.iter (add_reservation t) reserved;
    Some { cbatch = batch; c_hosts = hosts; c_vms = vms; c_reserved = reserved; released = false }
  end

let extend t c ~host ~bytes =
  if not (host_free t ~batch:c.cbatch host) then
    invalid_arg (Printf.sprintf "Locks.extend: node %d is claimed by another batch" host);
  if not (List.mem host c.c_hosts) then begin
    Hashtbl.replace t.hosts host c.cbatch;
    c.c_hosts <- host :: c.c_hosts
  end;
  add_reservation t (host, bytes);
  c.c_reserved <- (host, bytes) :: c.c_reserved

let release t c =
  if not c.released then begin
    c.released <- true;
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.hosts id with
        | Some owner when owner = c.cbatch -> Hashtbl.remove t.hosts id
        | _ -> ())
      c.c_hosts;
    List.iter
      (fun name ->
        match Hashtbl.find_opt t.vms name with
        | Some owner when owner = c.cbatch -> Hashtbl.remove t.vms name
        | _ -> ())
      c.c_vms;
    List.iter
      (fun (id, bytes) ->
        let left = reserved_bytes t id -. bytes in
        if left <= 1.0 then Hashtbl.remove t.reserved id
        else Hashtbl.replace t.reserved id left)
      c.c_reserved
  end

let claimed_hosts t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.hosts [] |> List.sort compare

let claimed_vms t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.vms [] |> List.sort compare
