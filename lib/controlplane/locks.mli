(** Host/VM claims: the overlap guard between concurrent batches.

    Before a batch plan executes, the service claims — atomically, all or
    nothing — every VM it will move and every node its steps touch
    (sources, destinations, staging nodes), plus a per-node reservation of
    the memory bytes about to arrive. A second batch whose footprint
    intersects a claimed VM or node is deferred, so simultaneously
    executing plans can never migrate the same VM, fight over a node's
    migration slots, or jointly overcommit a destination: placement counts
    {!reserved_bytes} as already-used capacity.

    Claims can grow mid-flight ({!extend}) when the executor reroutes a
    step around a dead node, and are released as a unit when the batch
    completes or rolls back. *)

type t

type claim
(** One batch's footprint. *)

val create : unit -> t

val batch : claim -> int

val host_free : t -> ?batch:int -> int -> bool
(** Whether the node id is unclaimed — or claimed by [batch] itself. *)

val vm_free : t -> string -> bool

val reserved_bytes : t -> int -> float
(** Memory bytes currently reserved for in-flight arrivals at a node. *)

val try_claim :
  t ->
  batch:int ->
  vms:string list ->
  hosts:int list ->
  reserved:(int * float) list ->
  claim option
(** All-or-nothing: [None] (and no state change) if any VM or host is
    already claimed by another batch. Duplicate entries are fine. *)

val extend : t -> claim -> host:int -> bytes:float -> unit
(** Add a node (and an arrival reservation on it) to an existing claim —
    the reroute path. The node must be free or already ours; raises
    [Invalid_argument] if another batch holds it. *)

val release : t -> claim -> unit
(** Returns every VM, host and reservation of the claim. Idempotent. *)

val claimed_hosts : t -> int list
(** Sorted; for introspection and tests. *)

val claimed_vms : t -> string list
(** Sorted. *)
