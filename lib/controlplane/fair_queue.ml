(* Two-list deques so a deferred head can go back where it came from. *)
type 'a dq = { mutable front : 'a list; mutable back : 'a list }

let dq_create () = { front = []; back = [] }

let dq_len d = List.length d.front + List.length d.back

let dq_is_empty d = d.front = [] && d.back = []

let dq_push d x = d.back <- x :: d.back

let dq_push_front d x = d.front <- x :: d.front

let dq_norm d =
  if d.front = [] then begin
    d.front <- List.rev d.back;
    d.back <- []
  end

let dq_peek d =
  dq_norm d;
  match d.front with [] -> None | x :: _ -> Some x

let dq_pop d =
  dq_norm d;
  match d.front with
  | [] -> raise Not_found
  | x :: rest ->
    d.front <- rest;
    x

type 'a tenant = { weight : float; mutable vtime : float; q : 'a dq }

type 'a t = {
  by_name : (string, 'a tenant) Hashtbl.t;
  mutable rev_order : string list;  (* registration order, reversed *)
}

let create () = { by_name = Hashtbl.create 8; rev_order = [] }

let register t ~name ~weight =
  if weight <= 0.0 || not (Float.is_finite weight) then
    invalid_arg "Fair_queue.register: weight must be positive and finite";
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Fair_queue.register: duplicate tenant %S" name);
  Hashtbl.replace t.by_name name { weight; vtime = 0.0; q = dq_create () };
  t.rev_order <- name :: t.rev_order

let tenants t = List.rev t.rev_order

let find t name = Hashtbl.find t.by_name name

(* Virtual "now": the least clock among busy tenants, so a tenant waking
   from idle starts level with the pack instead of replaying banked
   credit. *)
let vnow t =
  List.fold_left
    (fun acc name ->
      let ten = find t name in
      if dq_is_empty ten.q then acc else Float.min acc ten.vtime)
    Float.infinity (tenants t)

let push t ~tenant x =
  let ten = find t tenant in
  if dq_is_empty ten.q then begin
    let now = vnow t in
    if Float.is_finite now then ten.vtime <- Float.max ten.vtime now
  end;
  dq_push ten.q x

let push_front t ~tenant x = dq_push_front (find t tenant).q x

let pop t ~tenant = dq_pop (find t tenant).q

let charge t ~tenant cost =
  let ten = find t tenant in
  ten.vtime <- ten.vtime +. (cost /. ten.weight)

let heads t =
  List.filter_map
    (fun name ->
      let ten = find t name in
      Option.map (fun x -> (name, ten.vtime, x)) (dq_peek ten.q))
    (tenants t)

let depth t ~tenant = dq_len (find t tenant).q

let length t =
  List.fold_left (fun acc name -> acc + dq_len (find t name).q) 0 (tenants t)

let is_empty t = length t = 0
