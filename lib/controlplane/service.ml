open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_planner
open Ninja_telemetry

type tenant_spec = {
  name : string;
  weight : float;
  vms : Vm.t list;
  traffic : Cost_model.traffic;
}

type config = {
  strategy : Solver.t;
  mode : Migration.mode;
  max_inflight : int;
  queue_cap : int;
  max_attempts : int;
  max_defers : int;
  retry : Retry.policy;
  max_per_host : int;
  auto_swap : bool;
}

let default_config =
  {
    strategy = Solver.default;
    mode = Migration.Precopy;
    max_inflight = 2;
    queue_cap = 8;
    max_attempts = 3;
    max_defers = 25;
    retry = Retry.default_policy;
    max_per_host = Executor.default_max_per_host;
    auto_swap = false;
  }

type outcome = Completed | Rejected of string | Dropped of string | Failed of string

let outcome_name = function
  | Completed -> "completed"
  | Rejected r -> "rejected:" ^ r
  | Dropped r -> "dropped:" ^ r
  | Failed _ -> "failed"

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  probes : Probe.t;
  cfg : config;
  tenants : tenant_spec list;
  all_vms : Vm.t list;  (* name-sorted *)
  traffic : Cost_model.traffic;  (* all tenants' matrices, concatenated *)
  queue : Request.t Fair_queue.t;
  locks : Locks.t;
  m : Metrics.t;
  prng : Prng.t;  (* the service's own stream: traffic mix and arrivals *)
  wake : Semaphore.t;  (* the dispatcher's condition variable *)
  blocked : (int, int) Hashtbl.t;  (* request id -> epoch when deferred *)
  mutable next_id : int;
  mutable next_batch : int;
  mutable inflight : int;
  mutable feeders : int;
  mutable epoch : int;  (* bumped whenever a batch settles *)
  mutable swap_pending : bool;  (* an auto-proposed swap is queued or in flight *)
  mutable submitted_n : int;
  mutable rev_done : (Request.t * outcome) list;
  mutable rev_log : string list;
}

let cluster t = t.cluster

let vms t = t.all_vms

let metrics t = t.m

let submitted t = t.submitted_n

let outcomes t = List.rev t.rev_done

let log t = List.rev t.rev_log

let count_of t name = Option.value (Metrics.value t.m name) ~default:0.0

let quiesced t = t.feeders = 0 && Fair_queue.is_empty t.queue && t.inflight = 0

let accounting t =
  let finished = List.length t.rev_done in
  let queued = Fair_queue.length t.queue in
  if t.submitted_n = finished && queued = 0 && t.inflight = 0 then Ok ()
  else
    Error
      (Printf.sprintf "submitted %d but finished %d (%d queued, %d in flight)"
         t.submitted_n finished queued t.inflight)

let logf t fmt =
  Printf.ksprintf
    (fun line ->
      t.rev_log <-
        Printf.sprintf "[%10.1f] %s" (Time.to_sec_f (Sim.now t.sim)) line :: t.rev_log)
    fmt

(* Every registry update is mirrored as a ["ctl"]/["stat"] probe so an
   attached telemetry recorder exports the same numbers; the bus is
   zero-cost when unobserved. *)
let stat t kind name v =
  Probe.emit t.probes ~topic:"ctl" ~action:"stat" ~subject:name
    ~info:[ ("kind", kind); ("value", Printf.sprintf "%.17g" v) ]
    ()

let count ?(by = 1.0) t name =
  Metrics.incr t.m ~by name;
  stat t "counter" name by

let gauge t name v =
  Metrics.gauge t.m name v;
  stat t "gauge" name v

let observe t name v =
  Metrics.observe t.m name v;
  stat t "histogram" name v

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))

let latency_percentiles t =
  match Metrics.samples t.m "ctl.request.latency.seconds" with
  | [] -> None
  | samples ->
    let a = Array.of_list samples in
    Array.sort Float.compare a;
    Some (percentile a 50.0, percentile a 95.0, percentile a 99.0)

(* {1 Cluster views} *)

let by_node_id (a : Node.t) (b : Node.t) = compare a.Node.id b.Node.id

let avail t =
  Cluster.alive_nodes t.cluster
  |> List.filter (fun (n : Node.t) -> Locks.host_free t.locks n.Node.id)
  |> List.sort by_node_id

let vm_bytes vm = Memory.total_bytes (Vm.memory vm)

let resident_bytes t (n : Node.t) =
  List.fold_left
    (fun acc vm -> if (Vm.host vm).Node.id = n.Node.id then acc +. vm_bytes vm else acc)
    0.0 t.all_vms

let load_bytes t n = resident_bytes t n +. Locks.reserved_bytes t.locks n.Node.id

let staging_nodes t = List.filter (fun n -> resident_bytes t n = 0.0) (avail t)

let tenant_vms t name =
  match List.find_opt (fun ts -> String.equal ts.name name) t.tenants with
  | Some ts -> ts.vms
  | None -> []

(* {1 Placement} *)

type planned = Noop | Blocked of string | Assignment of (Vm.t * Node.t) list

let acceptable_node (r : Request.t) (n : Node.t) =
  match r.Request.kind with
  | Request.Evacuate { node } -> n.Node.name <> node
  | Request.Failover { rack } -> n.Node.rack <> rack
  | Request.Fallback -> not (Node.has_ib n)
  | Request.Return -> Node.has_ib n
  | Request.Rebalance -> true
  | Request.Swap _ -> true (* the reroute pins the fabric class per step *)

let by_vm_name a b = compare (Vm.name a) (Vm.name b)

(* A destination exchange is its own little plan: no packing, just the
   two VMs aimed at each other's hosts ({!Ninja_planner.Plan.of_assignment}
   turns the 2-cycle into a staged chain or a traced overcommit). Tenants
   swap among their own VMs; [ops] may swap across tenants. Exchanges
   never cross fabric classes — the device plan for each VM was computed
   for its host's interconnect. *)
let plan_swap t (r : Request.t) ~vm_a ~vm_b =
  let pool =
    if String.equal r.Request.tenant "ops" then t.all_vms
    else tenant_vms t r.Request.tenant
  in
  let find nm = List.find_opt (fun vm -> String.equal (Vm.name vm) nm) pool in
  match (find vm_a, find vm_b) with
  | Some a, Some b ->
    let ha = Vm.host a and hb = Vm.host b in
    if Vm.is_lost a || Vm.is_lost b then Blocked "vm-lost"
    else if ha.Node.id = hb.Node.id then Noop
    else if
      not (Cluster.node_alive t.cluster ha && Cluster.node_alive t.cluster hb)
    then Blocked "host-dead"
    else if Node.has_ib ha <> Node.has_ib hb then Blocked "fabric-class"
    else if not (Locks.vm_free t.locks vm_a && Locks.vm_free t.locks vm_b) then
      Blocked "vm-locked"
    else if
      not (Locks.host_free t.locks ha.Node.id && Locks.host_free t.locks hb.Node.id)
    then Blocked "host-locked"
    else Assignment [ (a, hb); (b, ha) ]
  | _ -> Noop

let plan_request t (r : Request.t) =
  match r.Request.kind with
  | Request.Swap { vm_a; vm_b } -> plan_swap t r ~vm_a ~vm_b
  | _ ->
  let avail = avail t in
  let mine = tenant_vms t r.Request.tenant in
  let movers, candidates =
    match r.Request.kind with
    | Request.Swap _ -> assert false
    | Request.Evacuate { node } ->
      ( List.filter (fun vm -> (Vm.host vm).Node.name = node) t.all_vms,
        List.filter (fun (n : Node.t) -> n.Node.name <> node) avail )
    | Request.Failover { rack } ->
      ( List.filter (fun vm -> (Vm.host vm).Node.rack = rack) t.all_vms,
        List.filter (fun (n : Node.t) -> n.Node.rack <> rack) avail )
    | Request.Fallback ->
      ( List.filter (fun vm -> Node.has_ib (Vm.host vm)) mine,
        List.filter (fun n -> not (Node.has_ib n)) avail )
    | Request.Return ->
      ( List.filter (fun vm -> not (Node.has_ib (Vm.host vm))) mine,
        List.filter Node.has_ib avail )
    | Request.Rebalance ->
      (* Keep the first co-located VM of each pile, move the rest onto
         nodes this tenant does not occupy. *)
      let by_host = Hashtbl.create 8 in
      List.iter
        (fun vm ->
          let id = (Vm.host vm).Node.id in
          Hashtbl.replace by_host id
            (vm :: Option.value (Hashtbl.find_opt by_host id) ~default:[]))
        mine;
      let movers =
        Hashtbl.fold
          (fun _ piled acc ->
            match List.sort by_vm_name piled with
            | [] | [ _ ] -> acc
            | _keep :: rest -> rest @ acc)
          by_host []
        |> List.sort by_vm_name
      in
      let occupied = List.map (fun vm -> (Vm.host vm).Node.id) mine in
      ( movers,
        List.filter (fun (n : Node.t) -> not (List.mem n.Node.id occupied)) avail )
  in
  (* A VM lost to a committed postcopy switchover is unmovable forever. *)
  match List.filter (fun vm -> not (Vm.is_lost vm)) movers with
  | [] -> Noop
  | movers ->
    if List.exists (fun vm -> not (Locks.vm_free t.locks (Vm.name vm))) movers then
      Blocked "vm-locked"
    else (
      match
        Ninja_scheduler.Placement.pack_least_loaded ~vms:movers
          ~candidates:(fun _ -> candidates)
          ~load_bytes:(load_bytes t) ~bytes_of:vm_bytes ()
      with
      | Error e -> Blocked e
      | Ok assignment -> Assignment assignment)

(* {1 Request bookkeeping} *)

let thread_of (r : Request.t) = Printf.sprintf "req-%03d" r.Request.id

let note_queued t (r : Request.t) =
  Span.emit_note t.probes ~name:"queued" ~cat:"ctl" ~proc:"controlplane"
    ~thread:(thread_of r) ~start:r.Request.submitted
    ~args:
      [ ("tenant", r.Request.tenant); ("kind", Request.kind_name r.Request.kind) ]
    ()

let finish t (r : Request.t) outcome =
  Hashtbl.remove t.blocked r.Request.id;
  (match r.Request.kind with Request.Swap _ -> t.swap_pending <- false | _ -> ());
  t.rev_done <- (r, outcome) :: t.rev_done;
  let latency = Time.to_sec_f (Time.diff (Sim.now t.sim) r.Request.submitted) in
  (match outcome with
  | Completed ->
    count t "ctl.requests.completed";
    observe t "ctl.request.latency.seconds" latency
  | Rejected reason ->
    count t "ctl.requests.rejected";
    count t ("ctl.rejected." ^ reason)
  | Dropped reason ->
    count t "ctl.requests.dropped";
    count t ("ctl.dropped." ^ reason)
  | Failed _ -> count t "ctl.requests.failed");
  logf t "req#%d %s after %.1fs" r.Request.id (outcome_name outcome) latency

(* {1 Batch execution} *)

let give_up t vm =
  Probe.emit t.probes ~topic:"migrate" ~action:"giveup" ~subject:(Vm.name vm) ();
  count t "ctl.vms.stranded"

(* Restore each VM to its origin; a VM whose current or origin host is
   dead cannot be restored and is excused instead, exactly like
   [Ninja.migrate]'s rollback. A VM lost mid-postcopy has no restorable
   state anywhere — rollback-to-source is impossible by construction, so
   it is only counted. *)
let roll_back t origins =
  List.iter
    (fun (vm, (origin : Node.t)) ->
      let here = Vm.host vm in
      if Vm.is_lost vm then count t "ctl.vms.lost"
      else if here.Node.id <> origin.Node.id then begin
        if
          (not (Cluster.node_alive t.cluster here))
          || not (Cluster.node_alive t.cluster origin)
        then give_up t vm
        else
          match
            Retry.run ~sim:t.sim ~policy:t.cfg.retry (fun ~attempt:_ ->
                ignore (Migration.migrate vm ~dst:origin ()))
          with
          | (), _ -> ()
          | exception _ -> give_up t vm
      end
      else if not (Cluster.node_alive t.cluster here) then give_up t vm)
    origins

let reroute t (r : Request.t) claim (step : Plan.step) =
  let vm = step.Plan.vm in
  (* Once a postcopy switchover commits, the VM runs at the destination
     with pages still in flight — there is no coherent state to aim at a
     third node, and a lost VM has nothing left to move at all. *)
  if Vm.switchover_committed vm || Vm.is_lost vm then None
  else
  let need = vm_bytes vm in
  let here = Vm.host vm in
  Cluster.alive_nodes t.cluster
  |> List.filter (fun (n : Node.t) ->
         n.Node.id <> here.Node.id
         && acceptable_node r n
         && (match r.Request.kind with
            | Request.Swap _ -> Node.has_ib n = Node.has_ib step.Plan.dst
            | _ -> true)
         && Locks.host_free t.locks ~batch:(Locks.batch claim) n.Node.id
         && load_bytes t n +. need <= n.Node.mem_bytes *. (1.0 +. 1e-9))
  |> List.sort (fun a b ->
         match Float.compare (load_bytes t a) (load_bytes t b) with
         | 0 -> by_node_id a b
         | c -> c)
  |> function
  | [] -> None
  | n :: _ ->
    Locks.extend t.locks claim ~host:n.Node.id ~bytes:need;
    Some n

type batch_end = Batch_done of Executor.report | Batch_failed of string

let hca () = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca

let execute_batch t (r : Request.t) claim plan =
  let bid = Printf.sprintf "batch-%d" (Locks.batch claim) in
  let moving =
    Plan.steps plan |> List.map (fun (s : Plan.step) -> s.Plan.vm) |> List.sort_uniq compare
  in
  let origins = List.map (fun vm -> (vm, Vm.host vm)) moving in
  let origin_info =
    List.map (fun (vm, (h : Node.t)) -> (Vm.name vm, h.Node.name)) origins
  in
  Span.emit_begin t.probes ~name:"execute" ~cat:"ctl" ~proc:"controlplane"
    ~thread:(thread_of r)
    ~args:
      [ ("batch", bid); ("steps", string_of_int (Plan.length plan));
        ("tenant", r.Request.tenant); ("kind", Request.kind_name r.Request.kind) ]
    ();
  Probe.emit t.probes ~topic:"migrate" ~action:"start" ~subject:bid
    ~info:(origin_info @ [ ("batch", bid) ])
    ();
  (* The batch's own fence: quiesce, shed bypass devices, move. *)
  List.iter Vm.pause moving;
  let fence_info =
    [ ("vms", String.concat "," (List.map Vm.name moving));
      ("count", string_of_int (List.length moving)); ("id", bid) ]
  in
  let entered = Sim.now t.sim in
  Probe.emit t.probes ~topic:"fence" ~action:"enter" ~info:fence_info ();
  List.iter
    (fun vm ->
      List.iter
        (fun (d : Device.t) ->
          if Device.is_bypass d.Device.kind then
            ignore (Vm.detach_device vm ~tag:d.Device.tag))
        (Vm.devices vm))
    moving;
  let solved = Solver.solve t.cfg.strategy t.cluster ~traffic:t.traffic plan in
  let result =
    match
      Executor.run t.cluster ~max_per_host:t.cfg.max_per_host ~mode:r.Request.mode
        ~retry:t.cfg.retry ~reroute:(reroute t r claim) solved
    with
    | report ->
      (* A destination that died after receiving VMs leaves them stranded
         even though every step "succeeded": treat that as a failed batch
         so the request is re-tried rather than silently degraded. *)
      if
        List.exists
          (fun vm ->
            (not (Vm.is_lost vm))
            && not (Cluster.node_alive t.cluster (Vm.host vm)))
          moving
      then Batch_failed "destination died after arrival"
      else if List.exists Vm.is_lost moving then
        Batch_failed "postcopy source died mid-drain"
      else Batch_done report
    | exception Executor.Step_failed { step_id; vm; dst; reason } ->
      Batch_failed (Printf.sprintf "step %d (%s -> %s): %s" step_id vm dst reason)
  in
  (match result with Batch_failed _ -> roll_back t origins | Batch_done _ -> ());
  (* Fence release: restore the device posture for wherever each VM ended
     up, then resume. Lost VMs stay frozen — running one would execute
     over pages that died with the source. *)
  List.iter
    (fun vm ->
      let h = Vm.host vm in
      if
        (not (Vm.is_lost vm))
        && Cluster.node_alive t.cluster h
        && Node.has_ib h
        && Vm.find_device vm ~tag:"vf0" = None
      then Vm.attach_device vm (hca ()))
    moving;
  List.iter (fun vm -> if not (Vm.is_lost vm) then Vm.resume vm) moving;
  Probe.emit t.probes ~topic:"fence" ~action:"release" ~info:fence_info ();
  let resident = Time.to_sec_f (Time.diff (Sim.now t.sim) entered) in
  List.iter (fun _ -> observe t "ctl.vm.downtime.seconds" resident) moving;
  (match result with
  | Batch_done report ->
    Probe.emit t.probes ~topic:"migrate" ~action:"complete" ~subject:bid
      ~info:[ ("batch", bid) ]
      ();
    observe t "ctl.batch.makespan.seconds" (Time.to_sec_f report.Executor.makespan);
    count t ~by:report.Executor.total_wire_bytes "ctl.batch.wire.bytes";
    (match r.Request.kind with
    | Request.Swap _ -> count t "ctl.swap.applied"
    | _ -> ());
    if report.Executor.retries > 0 then
      count t ~by:(float_of_int report.Executor.retries) "ctl.batch.retries";
    logf t "req#%d batch %s done: %d steps in %.1fs" r.Request.id bid
      (Plan.length plan)
      (Time.to_sec_f report.Executor.makespan)
  | Batch_failed reason ->
    Probe.emit t.probes ~topic:"migrate" ~action:"rollback" ~subject:bid
      ~info:(origin_info @ [ ("batch", bid) ])
      ();
    count t "ctl.batches.rolled_back";
    (match r.Request.kind with
    | Request.Swap _ -> count t "ctl.swap.rolled_back"
    | _ -> ());
    logf t "req#%d batch %s rolled back: %s" r.Request.id bid reason);
  Span.emit_end t.probes ~name:"execute" ~proc:"controlplane" ~thread:(thread_of r)
    ~args:
      [ ("outcome",
         match result with Batch_done _ -> "done" | Batch_failed _ -> "rolled-back") ]
    ();
  Locks.release t.locks claim;
  t.inflight <- t.inflight - 1;
  t.epoch <- t.epoch + 1;
  (match result with
  | Batch_done _ -> finish t r Completed
  | Batch_failed reason ->
    r.Request.attempts <- r.Request.attempts + 1;
    if r.Request.attempts >= t.cfg.max_attempts then finish t r (Failed reason)
    else begin
      Fair_queue.push t.queue ~tenant:r.Request.tenant r;
      count t "ctl.requests.requeued";
      logf t "req#%d requeued (attempt %d/%d)" r.Request.id
        (r.Request.attempts + 1) t.cfg.max_attempts
    end);
  Semaphore.release t.wake

(* {1 Dispatch} *)

let defer t tenant (r : Request.t) reason =
  if r.Request.defers >= t.cfg.max_defers then begin
    note_queued t r;
    finish t r (Dropped "no-feasible-placement")
  end
  else begin
    r.Request.defers <- r.Request.defers + 1;
    Hashtbl.replace t.blocked r.Request.id t.epoch;
    Fair_queue.push_front t.queue ~tenant r;
    count t "ctl.requests.deferred";
    logf t "req#%d deferred (%s, %d/%d)" r.Request.id reason r.Request.defers
      t.cfg.max_defers
  end

let try_dispatch t tenant (r : Request.t) =
  if Request.expired r ~now:(Sim.now t.sim) then begin
    note_queued t r;
    count t "ctl.requests.expired";
    finish t r (Dropped "deadline-missed")
  end
  else
    match plan_request t r with
    | Noop ->
      note_queued t r;
      count t "ctl.requests.noop";
      finish t r Completed
    | Blocked reason -> defer t tenant r reason
    | Assignment assignment -> (
      let movers = List.map fst assignment in
      let dst_of vm = List.assq vm assignment in
      let plan =
        Plan.of_assignment t.cluster ~vms:movers ~dst_of ~staging:(staging_nodes t) ()
      in
      if Plan.length plan = 0 then begin
        note_queued t r;
        count t "ctl.requests.noop";
        finish t r Completed
      end
      else
        let hosts =
          List.map (fun (n : Node.t) -> n.Node.id) (Plan.nodes_touched plan)
        in
        let reserved =
          List.map
            (fun (s : Plan.step) -> (s.Plan.dst.Node.id, vm_bytes s.Plan.vm))
            (Plan.steps plan)
        in
        let names =
          List.sort_uniq compare
            (List.map (fun (s : Plan.step) -> Vm.name s.Plan.vm) (Plan.steps plan))
        in
        match
          Locks.try_claim t.locks ~batch:t.next_batch ~vms:names ~hosts ~reserved
        with
        | None -> defer t tenant r "footprint-locked"
        | Some claim ->
          t.next_batch <- t.next_batch + 1;
          t.inflight <- t.inflight + 1;
          gauge t "ctl.inflight.max" (float_of_int t.inflight);
          Fair_queue.charge t.queue ~tenant (float_of_int (Plan.length plan));
          note_queued t r;
          observe t "ctl.request.queue_wait.seconds"
            (Time.to_sec_f (Time.diff (Sim.now t.sim) r.Request.submitted));
          count t "ctl.requests.dispatched";
          logf t "req#%d dispatch batch-%d: %d steps, %d hosts" r.Request.id
            (Locks.batch claim) (Plan.length plan) (List.length hosts);
          Sim.spawn t.sim
            ~name:(Printf.sprintf "ctl-batch-%d" (Locks.batch claim))
            (fun () -> execute_batch t r claim plan))

let rec dispatch_ready t =
  if t.inflight < t.cfg.max_inflight then begin
    let order =
      Fair_queue.heads t.queue
      |> List.sort (fun (n1, v1, r1) (n2, v2, r2) ->
             match
               compare
                 (Request.priority_rank r2.Request.priority)
                 (Request.priority_rank r1.Request.priority)
             with
             | 0 -> ( match Float.compare v1 v2 with 0 -> compare n1 n2 | c -> c)
             | c -> c)
    in
    match
      List.find_opt
        (fun (_, _, r) -> Hashtbl.find_opt t.blocked r.Request.id <> Some t.epoch)
        order
    with
    | Some (tenant, _, r) ->
      ignore (Fair_queue.pop t.queue ~tenant);
      try_dispatch t tenant r;
      dispatch_ready t
    | None -> (
      (* Every head is deferred at the current epoch. With work in flight
         (or feeders still arriving) a later completion re-opens them; with
         neither, nothing will ever change placement state, so drop the
         first stuck head to keep the queue draining. *)
      match order with
      | (tenant, _, r) :: _ when t.inflight = 0 && t.feeders = 0 ->
        ignore (Fair_queue.pop t.queue ~tenant);
        note_queued t r;
        finish t r (Dropped "no-feasible-placement");
        dispatch_ready t
      | _ -> ())
  end

(* {1 Feeding} *)

let make t ~tenant ~kind ?mode ?(priority = Request.Normal) ?deadline () =
  let id = t.next_id in
  t.next_id <- id + 1;
  {
    Request.id;
    tenant;
    kind;
    mode = Option.value mode ~default:t.cfg.mode;
    priority;
    deadline;
    submitted = Sim.now t.sim;
    attempts = 0;
    defers = 0;
  }

let submit t (r : Request.t) =
  t.submitted_n <- t.submitted_n + 1;
  count t "ctl.requests.submitted";
  logf t "req#%d %s %s prio=%s submit" r.Request.id r.Request.tenant
    (Request.describe r)
    (Request.priority_name r.Request.priority);
  if not (List.mem r.Request.tenant (Fair_queue.tenants t.queue)) then
    finish t r (Rejected "unknown-tenant")
  else if Fair_queue.depth t.queue ~tenant:r.Request.tenant >= t.cfg.queue_cap then
    finish t r (Rejected "queue-full")
  else begin
    Fair_queue.push t.queue ~tenant:r.Request.tenant r;
    count t "ctl.requests.admitted";
    let depth = float_of_int (Fair_queue.length t.queue) in
    gauge t "ctl.queue.depth.max" depth;
    observe t "ctl.queue.depth" depth;
    Semaphore.release t.wake
  end

(* {1 The online destination-swap policy (Avin et al., arXiv:1309.5826)}

   Priced exactly like the planner's [swap] strategy: exchanging the
   hosts of two VMs is worth proposing when the tenant-communication
   saving, amortised over the cost model's horizon, exceeds the two
   migrations it costs. Only entries incident to the candidate pair can
   change, so the scan prices those. *)

let swap_gain t a b =
  let env = Cost_model.env t.cluster ~traffic:t.traffic () in
  let ha = Vm.host a and hb = Vm.host b in
  let na = Vm.name a and nb = Vm.name b in
  let lookup name = Cluster.vm_node t.cluster ~name in
  let swapped name =
    if String.equal name na then Some hb
    else if String.equal name nb then Some ha
    else lookup name
  in
  let incident =
    List.filter
      (fun (x, y, _) ->
        String.equal x na || String.equal y na || String.equal x nb || String.equal y nb)
      t.traffic
  in
  let cost lk =
    List.fold_left
      (fun acc (x, y, rate) ->
        match (lk x, lk y) with
        | Some nx, Some ny -> acc +. (rate *. Cost_model.pair_cost env nx ny)
        | _ -> acc)
      0.0 incident
  in
  let saved = cost lookup -. cost swapped in
  let mig =
    Cost_model.move_seconds env ~vm:a ~src:ha ~dst:hb ()
    +. Cost_model.move_seconds env ~vm:b ~src:hb ~dst:ha ()
  in
  (Cost_model.default_horizon *. saved) -. mig

let propose_swap t =
  if t.traffic = [] then false
  else begin
    let vms = Array.of_list t.all_vms in
    let n = Array.length vms in
    let best = ref None in
    let best_gain = ref 1e-9 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        let a = vms.(i) and b = vms.(j) in
        let ha = Vm.host a and hb = Vm.host b in
        if
          ha.Node.id <> hb.Node.id
          && (not (Vm.is_lost a))
          && (not (Vm.is_lost b))
          && Cluster.node_alive t.cluster ha
          && Cluster.node_alive t.cluster hb
          && Node.has_ib ha = Node.has_ib hb
          && Locks.vm_free t.locks (Vm.name a)
          && Locks.vm_free t.locks (Vm.name b)
        then begin
          let g = swap_gain t a b in
          if g > !best_gain then begin
            best_gain := g;
            best := Some (a, b)
          end
        end
      done
    done;
    match !best with
    | None ->
      count t "ctl.swap.noop";
      false
    | Some (a, b) ->
      let tenant_of vm =
        List.find_opt (fun ts -> List.exists (fun v -> v == vm) ts.vms) t.tenants
      in
      let tenant =
        match (tenant_of a, tenant_of b) with
        | Some ta, Some tb when String.equal ta.name tb.name -> ta.name
        | _ -> "ops"
      in
      let r =
        make t ~tenant
          ~kind:(Request.Swap { vm_a = Vm.name a; vm_b = Vm.name b })
          ~priority:Request.Low ()
      in
      (* Set before [submit]: an admission rejection finishes the request
         synchronously, which clears the flag again. *)
      t.swap_pending <- true;
      count t "ctl.swap.proposed";
      gauge t "ctl.swap.gain" !best_gain;
      logf t "swap proposal %s<->%s (gain %.3f)" (Vm.name a) (Vm.name b) !best_gain;
      submit t r;
      true
  end

let rec dispatcher t =
  if t.cfg.auto_swap && not t.swap_pending then ignore (propose_swap t);
  dispatch_ready t;
  if not (quiesced t) then begin
    Semaphore.acquire t.wake;
    dispatcher t
  end

let random_request t =
  let user = List.filter (fun ts -> ts.vms <> []) t.tenants in
  let pick_tenant () =
    match user with
    | [] -> "ops"
    | _ -> (List.nth user (Prng.int t.prng (List.length user))).name
  in
  let alive = List.sort by_node_id (Cluster.alive_nodes t.cluster) in
  let racks =
    List.sort_uniq compare
      (List.map (fun (n : Node.t) -> n.Node.rack) (Cluster.nodes t.cluster))
  in
  let x = Prng.float t.prng 1.0 in
  let tenant, kind =
    if x < 0.30 || alive = [] then (pick_tenant (), Request.Rebalance)
    else if x < 0.55 then (pick_tenant (), Request.Fallback)
    else if x < 0.80 then (pick_tenant (), Request.Return)
    else if x < 0.92 then
      let n = List.nth alive (Prng.int t.prng (List.length alive)) in
      ("ops", Request.Evacuate { node = n.Node.name })
    else
      let rack = List.nth racks (Prng.int t.prng (List.length racks)) in
      ("ops", Request.Failover { rack })
  in
  let priority =
    match kind with
    | Request.Failover _ -> Request.High
    | _ ->
      let p = Prng.float t.prng 1.0 in
      if p < 0.15 then Request.High
      else if p < 0.85 then Request.Normal
      else Request.Low
  in
  let deadline =
    if Prng.float t.prng 1.0 < 0.30 then Some (Time.sec (60 + Prng.int t.prng 540))
    else None
  in
  make t ~tenant ~kind ~priority ?deadline ()

let inject t ~after mk =
  t.feeders <- t.feeders + 1;
  Sim.spawn t.sim ~name:"ctl-inject" (fun () ->
      Sim.sleep after;
      submit t (mk t);
      t.feeders <- t.feeders - 1;
      Semaphore.release t.wake)

let open_loop t ~process ~horizon =
  (match Ninja_workloads.Arrivals.validate process with
  | Ok () -> ()
  | Error e -> invalid_arg ("Service.open_loop: " ^ e));
  t.feeders <- t.feeders + 1;
  Sim.spawn t.sim ~name:"ctl-arrivals" (fun () ->
      let start = Sim.now t.sim in
      List.iter
        (fun at ->
          let target = Time.add start (Time.of_sec_f at) in
          let gap = Time.diff target (Sim.now t.sim) in
          if not (Time.is_negative gap) then Sim.sleep gap;
          submit t (random_request t))
        (Ninja_workloads.Arrivals.times t.prng process ~horizon);
      t.feeders <- t.feeders - 1;
      Semaphore.release t.wake)

(* {1 Construction} *)

let boot_tenants ?traffic cluster ~tenants ~vms_per_tenant ~mem_bytes =
  let nodes = Array.of_list (List.sort by_node_id (Cluster.alive_nodes cluster)) in
  if Array.length nodes = 0 then failwith "Service.boot_tenants: no alive nodes";
  let k = Array.length nodes in
  let used = Hashtbl.create 8 in
  let used_of (n : Node.t) = Option.value (Hashtbl.find_opt used n.Node.id) ~default:0.0 in
  let cursor = ref 0 in
  let place () =
    let rec probe i =
      if i >= k then failwith "Service.boot_tenants: cluster out of memory"
      else
        let n = nodes.((!cursor + i) mod k) in
        if used_of n +. mem_bytes <= n.Node.mem_bytes *. (1.0 +. 1e-9) then begin
          cursor := (!cursor + i + 1) mod k;
          Hashtbl.replace used n.Node.id (used_of n +. mem_bytes);
          n
        end
        else probe (i + 1)
    in
    probe 0
  in
  (* Split lazily: tenants without traffic must not perturb the sim's
     PRNG stream (existing seeds keep their draws). *)
  let traffic_prng =
    match traffic with
    | None -> None
    | Some _ -> Some (Prng.split (Sim.prng (Cluster.sim cluster)))
  in
  List.map
    (fun (name, weight) ->
      let vms =
        List.init vms_per_tenant (fun i ->
            let host = place () in
            let vm =
              Vm.create cluster
                ~name:(Printf.sprintf "%s-vm%d" name i)
                ~host ~vcpus:2 ~mem_bytes ()
            in
            if Node.has_ib host then Vm.attach_device vm (hca ());
            vm)
      in
      let traffic =
        match (traffic, traffic_prng) with
        | Some pattern, Some prng ->
          Ninja_workloads.Traffic.matrix prng pattern ~vms:(List.map Vm.name vms)
        | _ -> []
      in
      { name; weight; vms; traffic })
    tenants

let create cluster ~config ~tenants () =
  let tenants =
    if List.exists (fun ts -> String.equal ts.name "ops") tenants then tenants
    else tenants @ [ { name = "ops"; weight = 4.0; vms = []; traffic = [] } ]
  in
  let queue = Fair_queue.create () in
  List.iter (fun ts -> Fair_queue.register queue ~name:ts.name ~weight:ts.weight) tenants;
  let sim = Cluster.sim cluster in
  let t =
    {
      cluster;
      sim;
      probes = Cluster.probes cluster;
      cfg = config;
      tenants;
      all_vms = List.sort by_vm_name (List.concat_map (fun ts -> ts.vms) tenants);
      traffic = List.concat_map (fun (ts : tenant_spec) -> ts.traffic) tenants;
      queue;
      locks = Locks.create ();
      m = Metrics.create ();
      prng = Prng.split (Sim.prng sim);
      wake = Semaphore.create 0;
      blocked = Hashtbl.create 16;
      next_id = 0;
      next_batch = 0;
      inflight = 0;
      feeders = 0;
      epoch = 0;
      swap_pending = false;
      submitted_n = 0;
      rev_done = [];
      rev_log = [];
    }
  in
  Sim.spawn sim ~name:"ctl-dispatcher" (fun () -> dispatcher t);
  t

let count = count_of
