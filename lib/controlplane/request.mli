(** The control plane's typed request surface.

    A request asks the service to change where some set of VMs runs: a
    per-tenant placement change (fall back to Ethernet, return to IB,
    spread out), or an operator-scoped action over whole nodes and racks
    (drain a node for maintenance, evacuate a rack). Requests carry the
    submitting tenant (fair-queued per tenant), a priority (served
    strictly first within the fair order) and an optional relative
    deadline after which the request is dropped rather than served. *)

open Ninja_engine

type kind =
  | Evacuate of { node : string }
      (** drain every managed VM off the named node (maintenance) *)
  | Rebalance  (** spread the tenant's co-located VMs over distinct nodes *)
  | Fallback  (** move the tenant's VMs from the IB cluster to Ethernet *)
  | Return  (** move the tenant's VMs back onto IB-equipped nodes *)
  | Failover of { rack : int }
      (** mass evacuation: move every managed VM off the given rack *)
  | Swap of { vm_a : string; vm_b : string }
      (** exchange the hosts of two VMs — the adaptive placement move of
          Avin et al. (arXiv:1309.5826), submitted by a tenant for its own
          VMs (intra-tenant) or by [ops] across tenants (inter-tenant) *)

type priority = Low | Normal | High

type t = {
  id : int;  (** dense, service-assigned, in submission order *)
  tenant : string;
  kind : kind;
  mode : Ninja_vmm.Migration.mode;
      (** copy strategy for every migration this request triggers; a
          postcopy request's committed switchovers cannot be rolled back
          or rerouted *)
  priority : priority;
  deadline : Time.span option;  (** relative to [submitted] *)
  submitted : Time.t;
  mutable attempts : int;  (** completed dispatch attempts (rollbacks) *)
  mutable defers : int;  (** times deferred for capacity/lock conflicts *)
}

val priority_rank : priority -> int
(** [High] > [Normal] > [Low]. *)

val priority_name : priority -> string

val kind_name : kind -> string

val describe : t -> string
(** e.g. ["evacuate ib03"], ["fallback"], ["failover rack1"]. *)

val expired : t -> now:Time.t -> bool
(** Whether the deadline (if any) has passed. *)
