open Ninja_engine

type kind =
  | Evacuate of { node : string }
  | Rebalance
  | Fallback
  | Return
  | Failover of { rack : int }
  | Swap of { vm_a : string; vm_b : string }

type priority = Low | Normal | High

type t = {
  id : int;
  tenant : string;
  kind : kind;
  mode : Ninja_vmm.Migration.mode;
  priority : priority;
  deadline : Time.span option;
  submitted : Time.t;
  mutable attempts : int;
  mutable defers : int;
}

let priority_rank = function High -> 2 | Normal -> 1 | Low -> 0

let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

let kind_name = function
  | Evacuate _ -> "evacuate"
  | Rebalance -> "rebalance"
  | Fallback -> "fallback"
  | Return -> "return"
  | Failover _ -> "failover"
  | Swap _ -> "swap"

let describe t =
  let base =
    match t.kind with
    | Evacuate { node } -> "evacuate " ^ node
    | Failover { rack } -> Printf.sprintf "failover rack%d" rack
    | Swap { vm_a; vm_b } -> Printf.sprintf "swap %s<->%s" vm_a vm_b
    | k -> kind_name k
  in
  match t.mode with
  | Ninja_vmm.Migration.Precopy -> base
  | Ninja_vmm.Migration.Postcopy -> base ^ " (postcopy)"

let expired t ~now =
  match t.deadline with
  | None -> false
  | Some d -> Time.( > ) now (Time.add t.submitted d)
