open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_metrics
open Ninja_mpi
open Ninja_symvirt
open Ninja_telemetry
open Ninja_vmm

type vnode = { vm : Vm.t; guest : Guest.t; endpoint : Hypercall.t }

type outcome =
  | Completed
  | Rolled_back of string
  | Lost of string
      (* A postcopy switchover committed and then the source died: the VM
         has no complete image anywhere, so rollback-to-source is
         impossible. Terminal — surviving VMs are still restored. *)

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  trace : Trace.t;
  nodes : vnode list;
  mutable procs_per_vm : int;
  mutable rt : Runtime.t option;
  (* Multi-fence protocol state: while true, coordinators that wake from a
     SymVirt signal immediately re-enter symvirt_wait, giving the
     controller one fence per VMM operation group (Fig. 5). *)
  mutable operation_active : bool;
  mutable abort_check : unit -> bool;
  mutable last_outcome : outcome option;
}

exception Not_launched

(* Internal: a VMM operation phase could not complete even under the retry
   policy; the migration must roll back. *)
exception Phase_failed of string

let hca_tag = "vf0"

let hca_addr = "04:00.0"

let make cluster nodes =
  {
    cluster;
    sim = Cluster.sim cluster;
    trace = Cluster.trace cluster;
    nodes;
    procs_per_vm = 0;
    rt = None;
    operation_active = false;
    abort_check = (fun () -> false);
    last_outcome = None;
  }

let setup cluster ~hosts ?(vcpus = 8) ?(mem_gb = 20.0) ?(attach_hca = true) () =
  if hosts = [] then invalid_arg "Ninja.setup: no hosts";
  let nodes =
    List.mapi
      (fun i host ->
        let vm =
          Vm.create cluster
            ~name:(Printf.sprintf "vm%d" i)
            ~host ~vcpus ~mem_bytes:(Units.gb mem_gb) ()
        in
        if attach_hca && Node.has_ib host then
          Vm.attach_device vm (Device.make ~tag:hca_tag ~pci_addr:hca_addr Device.Ib_hca);
        let guest = Guest.boot vm in
        { vm; guest; endpoint = Hypercall.create vm })
      hosts
  in
  make cluster nodes

let of_vms cluster ~vms =
  if vms = [] then invalid_arg "Ninja.of_vms: no VMs";
  let nodes =
    List.map (fun vm -> { vm; guest = Guest.boot vm; endpoint = Hypercall.create vm }) vms
  in
  make cluster nodes

let set_abort_check t f = t.abort_check <- f

let cluster t = t.cluster

let vnodes t = t.nodes

let vms t = List.map (fun n -> n.vm) t.nodes

let endpoint_of t vm =
  match List.find_opt (fun n -> n.vm == vm) t.nodes with
  | Some n -> n.endpoint
  | None -> invalid_arg "Ninja: VM is not managed by this instance"

(* The SymVirt coordinator, installed as the SELF CRS callbacks: at
   checkpoint time each MPI process issues symvirt_wait, and keeps
   re-entering the wait while a multi-fence operation is in flight (the
   guest briefly runs between fences so the OS can process ACPI events,
   Fig. 4/5). The continue callback is a no-op here because BTL
   reconstruction and link confirmation live in the runtime's continue
   path. *)
let ft_hooks t =
  {
    Rank.on_checkpoint =
      (fun proc ->
        let ep = endpoint_of t (Rank.vm proc) in
        Hypercall.guest_wait ep;
        while t.operation_active do
          Hypercall.guest_wait ep
        done;
        if t.abort_check () then raise Rank.Job_aborted);
    Rank.on_continue = (fun _ -> ());
  }

let launch t ~procs_per_vm ?(continue_like_restart = true) body =
  (match t.rt with Some _ -> invalid_arg "Ninja.launch: job already launched" | None -> ());
  t.procs_per_vm <- procs_per_vm;
  let members = List.map (fun n -> (n.vm, n.guest)) t.nodes in
  let rt =
    Runtime.mpirun t.cluster ~members ~procs_per_vm ~continue_like_restart
      ~ft_hooks:(ft_hooks t) body
  in
  t.rt <- Some rt;
  rt

let runtime t = match t.rt with Some rt -> rt | None -> raise Not_launched

let procs_per_vm t = t.procs_per_vm

let wait_job t = Runtime.wait (runtime t)

let controller t =
  Controller.create t.cluster
    ~members:
      (List.map
         (fun n -> { Controller.vm = n.vm; endpoint = n.endpoint; procs = t.procs_per_vm })
         t.nodes)

let span_since sim t0 = Time.diff (Sim.now sim) t0

let default_detach vm =
  match Vm.find_device vm ~tag:hca_tag with Some _ -> [ hca_tag ] | None -> []

let default_attach plan vm =
  if Node.has_ib (plan vm) then [ Device.make ~tag:hca_tag ~pci_addr:hca_addr Device.Ib_hca ]
  else []

(* The complete Fig. 4 control flow. [`Multi] (the default) brackets each
   VMM operation group in its own wait_all/signal pair, exactly like the
   Fig. 5 script — the guest runs briefly between fences so the OS can
   process ACPI events; [`Single] holds one fence across all three phases
   (measured overheads are equal, asserted by tests).

   The flow is transactional: each VMM phase retries failed VMs under the
   [retry] policy, and when a phase still cannot complete the whole
   operation rolls back — every VM returns to its origin node, detached
   bypass devices are re-attached where the source hardware allows, the
   fence is released and the guests resume where they were. [migrate]
   never leaks an exception from an injected fault; callers read
   {!last_outcome} to distinguish a completed migration from a rollback. *)
let migrate t ~plan ?(transport = Migration.Tcp) ?(mode = Migration.Precopy) ?hotplug_noise
    ?(protocol = `Multi_fence) ?detach:detach_f ?attach:attach_f ?migration_exec
    ?(retry = Retry.default_policy) () =
  let rt = runtime t in
  if Runtime.is_finished rt then
    invalid_arg "Ninja.migrate: the MPI job has already finished (nothing to fence)";
  let sim = t.sim in
  let detach_f = Option.value detach_f ~default:default_detach in
  let attach_f = Option.value attach_f ~default:(default_attach plan) in
  let moving = List.exists (fun n -> (plan n.vm).Node.id <> (Vm.host n.vm).Node.id) t.nodes in
  let noise =
    match hotplug_noise with
    | Some n -> n
    | None -> if moving then Calibration.hotplug_noise_factor else 1.0
  in
  let multi = protocol = `Multi_fence in
  let ctl = controller t in
  t.last_outcome <- None;
  (* Rollback bookkeeping: where every VM started, and which devices the
     detach phase actually removed (so rollback can restore them). *)
  let origins = List.map (fun n -> (n.vm, Vm.host n.vm)) t.nodes in
  let origin_of vm = List.assq vm origins in
  let removed = List.map (fun n -> (n.vm, ref [])) t.nodes in
  let removed_of vm = List.assq vm removed in
  let remember_removed vm (d : Device.t) =
    let r = removed_of vm in
    if not (List.exists (fun (e : Device.t) -> e.Device.tag = d.Device.tag) !r) then
      r := d :: !r
  in
  let probes = Cluster.probes t.cluster in
  (* The span tree is built unconditionally (a handful of allocations, no
     simulated effect): the returned breakdown is derived from it. The
     scope mirrors transitions onto the probe bus only while observed. *)
  let sc = Span.scope ~probes ~sim ~proc:"ninja" ~thread:"migration" () in
  let in_span name cat f =
    let s = Span.enter sc ~name ~cat () in
    Fun.protect ~finally:(fun () -> Span.exit_ sc s) f
  in
  Trace.record t.trace ~category:"ninja" "migration triggered";
  if Probe.active probes then
    Probe.emit probes ~topic:"migrate" ~action:"start"
      ~info:(List.map (fun (vm, origin) -> (Vm.name vm, origin.Node.name)) origins)
      ();
  let root = Span.enter sc ~name:"migration" ~cat:"migration" () in
  (* 1. Trigger: the runtime tells every process to reach a safe point and
     call into the coordinator; the controller waits for the fence. *)
  t.operation_active <- multi;
  let coordination = Span.enter sc ~name:"coordination" ~cat:"phase" () in
  let complete = Runtime.request_checkpoint rt in
  Controller.wait_all ctl;
  Span.exit_ sc coordination;
  let fence_boundary ~last =
    if multi then begin
      if last then t.operation_active <- false;
      Controller.signal ctl;
      if not last then Controller.wait_all ctl
    end
    else if last then Controller.signal ctl
  in
  (* A VMM phase with per-VM retry: only the VMs whose agent reported an
     error are re-issued their (idempotent) command lists, after the
     policy's backoff. Sim-time spent on failed attempts and backoff
     sleeps is recorded as ["retry"]-category spans, which the breakdown
     derivation sums. [best_effort] phases (rollback) log and drop VMs
     that exhaust the policy instead of raising. *)
  let phase ~name ?(best_effort = false) ?(retryable = fun _vm _msg -> true) commands_for =
    let phase_start = Sim.now sim in
    let rec go attempt pending =
      let a0 = Sim.now sim in
      let results =
        Controller.run_agents_results ctl (fun vm ->
            if List.memq vm pending then commands_for vm else [])
      in
      let failed =
        List.filter_map
          (fun (vm, responses) ->
            match Controller.first_error responses with
            | Some msg -> Some (vm, msg)
            | None -> None)
          results
      in
      if failed <> [] then begin
        ignore (Span.note sc ~name:"retry-attempt" ~cat:"retry" ~start:a0
                  ~args:[ ("phase", name); ("attempt", string_of_int attempt) ] ());
        let fatals, transients = List.partition (fun (vm, msg) -> not (retryable vm msg)) failed in
        List.iter
          (fun (vm, msg) ->
            Trace.recordf t.trace ~category:"faults" "%s: %s unrecoverable: %s" name
              (Vm.name vm) msg)
          fatals;
        if best_effort then
          List.iter
            (fun (vm, _msg) ->
              Probe.emit probes ~topic:"migrate" ~action:"giveup" ~subject:(Vm.name vm)
                ~info:[ ("phase", name) ] ())
            fatals
        else (
          match fatals with
          | (vm, msg) :: _ ->
              raise (Phase_failed (Printf.sprintf "%s: %s: %s" name (Vm.name vm) msg))
          | [] -> ());
        if transients <> [] then begin
          let delay = Retry.backoff retry ~attempt in
          let within_deadline =
            match retry.Retry.deadline with
            | None -> true
            | Some budget ->
                Time.( <= ) (Time.add (span_since sim phase_start) delay) budget
          in
          if attempt >= retry.Retry.max_attempts || not within_deadline then begin
            let vm, msg = List.hd transients in
            if best_effort then begin
              Trace.recordf t.trace ~category:"faults" "%s: giving up on %s after %d attempts"
                name (Vm.name vm) attempt;
              List.iter
                (fun (vm, _msg) ->
                  Probe.emit probes ~topic:"migrate" ~action:"giveup" ~subject:(Vm.name vm)
                    ~info:[ ("phase", name) ] ())
                transients
            end
            else
              raise
                (Phase_failed
                   (Printf.sprintf "%s: %s: %s (after %d attempts)" name (Vm.name vm) msg
                      attempt))
          end
          else begin
            Trace.recordf t.trace ~category:"faults"
              "%s: attempt %d failed for %d VM(s); retrying in %a" name attempt
              (List.length transients) Time.pp delay;
            let backoff =
              Span.enter sc ~name:"backoff" ~cat:"retry" ~args:[ ("phase", name) ] ()
            in
            Sim.sleep delay;
            Span.exit_ sc backoff;
            go (attempt + 1) (List.map fst transients)
          end
        end
      end
    in
    go 1 (List.map (fun n -> n.vm) t.nodes)
  in
  (* Idempotent command builders: each consults live VM state, so a retry
     re-issues only what is still missing and a successful VM gets an
     empty list. *)
  let detach_builder vm =
    let devices = List.filter_map (fun tag -> Vm.find_device vm ~tag) (detach_f vm) in
    List.iter (remember_removed vm) devices;
    List.map (fun (d : Device.t) -> Qmp.Device_del { tag = d.Device.tag; noise }) devices
  in
  let migration_builder vm = [ Qmp.Migrate { dst = plan vm; transport; mode } ] in
  let attach_builder vm =
    attach_f vm
    |> List.filter (fun (d : Device.t) -> Vm.find_device vm ~tag:d.Device.tag = None)
    |> List.map (fun device -> Qmp.Device_add { device; noise })
  in
  (* 2–4. Detach, migrate, re-attach — each phase under retry, each a
     direct child span of the migration root. *)
  let result =
    try
      in_span "detach" "phase" (fun () -> phase ~name:"detach" detach_builder);
      fence_boundary ~last:false;
      (* The migration-phase span is named by mode so the breakdown and
         telemetry consumers can tell the copy strategies apart. *)
      in_span (Migration.mode_name mode) "phase" (fun () ->
          match migration_exec with
          | Some exec -> exec ()
          | None ->
              phase ~name:"migration"
                ~retryable:(fun vm _msg ->
                  (* A lost VM must never be re-issued a migrate; fail the
                     phase immediately so the rollback can run. *)
                  (not (Vm.is_lost vm)) && Cluster.node_alive t.cluster (plan vm))
                migration_builder);
      fence_boundary ~last:false;
      in_span "attach" "phase" (fun () -> phase ~name:"attach" attach_builder);
      Ok ()
    with
    | Phase_failed reason -> Error reason
    | exn -> Error (Printexc.to_string exn)
  in
  (match result with
  | Ok () ->
      t.last_outcome <- Some Completed;
      Probe.emit probes ~topic:"migrate" ~action:"complete" ();
      (* 5. Final signal; guests confirm link-up and rebuild transports. *)
      fence_boundary ~last:true
  | Error reason ->
      Trace.recordf t.trace ~category:"ninja" "migration failed (%s); rolling back" reason;
      (* The whole rollback is charged to the breakdown's retry bucket as
         one span; retry spans nested inside it are excluded from the sum,
         so the inner failed attempts are not double-billed. *)
      let rollback =
        Span.enter sc ~name:"rollback" ~cat:"rollback" ~args:[ ("reason", reason) ] ()
      in
      (* A VM lost to a mid-drain source death has no complete image to
         restore: it stays paused at the destination and every rollback
         phase skips it — re-issuing commands to it would be exactly the
         "silently keep running with missing pages" failure mode. *)
      let restorable vm = not (Vm.is_lost vm) in
      (* a. Strip bypass devices from any VM that must travel back (a
         partially completed attach would otherwise pin it in place). *)
      in_span "rollback-detach" "phase" (fun () ->
          phase ~name:"rollback-detach" ~best_effort:true (fun vm ->
              if restorable vm && (Vm.host vm).Node.id <> (origin_of vm).Node.id then begin
                let stuck =
                  List.filter
                    (fun (d : Device.t) -> Vm.find_device vm ~tag:d.Device.tag <> None)
                    (attach_f vm)
                in
                List.iter (remember_removed vm) stuck;
                List.map
                  (fun (d : Device.t) -> Qmp.Device_del { tag = d.Device.tag; noise })
                  stuck
              end
              else []));
      (* b. Return every displaced VM to its origin. *)
      in_span "rollback-return" "phase" (fun () ->
          phase ~name:"rollback-return" ~best_effort:true
            ~retryable:(fun vm _msg ->
              restorable vm && Cluster.node_alive t.cluster (origin_of vm))
            (fun vm ->
              if restorable vm && (Vm.host vm).Node.id <> (origin_of vm).Node.id then
                (* The return trip is always precopy: the origin still holds
                   nothing, so there is no hot set to lean on, and a second
                   committed switchover would compound the failure. *)
                [ Qmp.Migrate { dst = origin_of vm; transport; mode = Migration.Precopy } ]
              else []));
      (* c. Re-attach what the detach phase removed, where the (source)
         hardware still backs it. *)
      in_span "rollback-attach" "phase" (fun () ->
          phase ~name:"rollback-attach" ~best_effort:true (fun vm ->
              if not (restorable vm) then []
              else
                !(removed_of vm)
              |> List.filter (fun (d : Device.t) ->
                     Vm.find_device vm ~tag:d.Device.tag = None
                     && (not (Device.is_bypass d.Device.kind) || Node.has_ib (Vm.host vm)))
              |> List.map (fun device -> Qmp.Device_add { device; noise })));
      Span.exit_ sc rollback;
      let lost = List.filter (fun n -> Vm.is_lost n.vm) t.nodes in
      (match lost with
      | [] ->
          t.last_outcome <- Some (Rolled_back reason);
          Trace.record t.trace ~category:"ninja" "rollback complete: VMs restored at source"
      | _ ->
          t.last_outcome <- Some (Lost reason);
          Trace.recordf t.trace ~category:"ninja"
            "rollback complete: %d VM(s) lost (no rollback from a committed switchover), \
             survivors restored at source"
            (List.length lost));
      Probe.emit probes ~topic:"migrate" ~action:"rollback"
        ~info:
          (("reason", reason)
          :: List.map (fun n -> ("lost", Vm.name n.vm)) lost)
        ();
      (* Release the fence exactly like a completed operation would. *)
      t.operation_active <- false;
      Controller.signal ctl);
  Runtime.await_checkpoint_complete complete;
  (* Link-up (BTL reconstruction + port polling) happens inside the
     runtime's continue path and is only known after the fact; its
     interval ends exactly when the checkpoint completes. *)
  let linkup = Runtime.last_linkup_wait rt in
  ignore
    (Span.note sc ~name:"link-up" ~cat:"phase"
       ~start:(Time.max root.Span.start (Time.diff (Sim.now sim) linkup))
       ());
  Span.exit_ sc root;
  let breakdown = Export.breakdown_of_root root in
  Trace.recordf t.trace ~category:"ninja" "migration done: %a" Breakdown.pp breakdown;
  breakdown

let last_outcome t = t.last_outcome

let plan_of_dsts t dsts =
  if List.length dsts <> List.length t.nodes then
    invalid_arg "Ninja: destination list length does not match VM count";
  let table = List.combine (vms t) dsts in
  fun vm -> List.assq vm table

let fallback t ~dsts ?mode () = migrate t ~plan:(plan_of_dsts t dsts) ?mode ()

let recovery t ~dsts ?mode () = migrate t ~plan:(plan_of_dsts t dsts) ?mode ()

let self_migration t = migrate t ~plan:(fun vm -> Vm.host vm) ()

let checkpoint_to_store t store ~name_prefix =
  let rt = runtime t in
  let ctl = controller t in
  let complete = Runtime.request_checkpoint rt in
  Controller.wait_all ctl;
  let snaps =
    List.mapi
      (fun i n -> Snapshot.save store n.vm ~name:(Printf.sprintf "%s-%d" name_prefix i))
      t.nodes
  in
  Controller.signal ctl;
  Runtime.await_checkpoint_complete complete;
  snaps
