open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_metrics
open Ninja_mpi
open Ninja_symvirt
open Ninja_vmm

type vnode = { vm : Vm.t; guest : Guest.t; endpoint : Hypercall.t }

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  trace : Trace.t;
  nodes : vnode list;
  mutable procs_per_vm : int;
  mutable rt : Runtime.t option;
  (* Multi-fence protocol state: while true, coordinators that wake from a
     SymVirt signal immediately re-enter symvirt_wait, giving the
     controller one fence per VMM operation group (Fig. 5). *)
  mutable operation_active : bool;
  mutable abort_check : unit -> bool;
}

exception Not_launched

let hca_tag = "vf0"

let hca_addr = "04:00.0"

let make cluster nodes =
  {
    cluster;
    sim = Cluster.sim cluster;
    trace = Cluster.trace cluster;
    nodes;
    procs_per_vm = 0;
    rt = None;
    operation_active = false;
    abort_check = (fun () -> false);
  }

let setup cluster ~hosts ?(vcpus = 8) ?(mem_gb = 20.0) ?(attach_hca = true) () =
  if hosts = [] then invalid_arg "Ninja.setup: no hosts";
  let nodes =
    List.mapi
      (fun i host ->
        let vm =
          Vm.create cluster
            ~name:(Printf.sprintf "vm%d" i)
            ~host ~vcpus ~mem_bytes:(Units.gb mem_gb) ()
        in
        if attach_hca && Node.has_ib host then
          Vm.attach_device vm (Device.make ~tag:hca_tag ~pci_addr:hca_addr Device.Ib_hca);
        let guest = Guest.boot vm in
        { vm; guest; endpoint = Hypercall.create vm })
      hosts
  in
  make cluster nodes

let of_vms cluster ~vms =
  if vms = [] then invalid_arg "Ninja.of_vms: no VMs";
  let nodes =
    List.map (fun vm -> { vm; guest = Guest.boot vm; endpoint = Hypercall.create vm }) vms
  in
  make cluster nodes

let set_abort_check t f = t.abort_check <- f

let cluster t = t.cluster

let vnodes t = t.nodes

let vms t = List.map (fun n -> n.vm) t.nodes

let endpoint_of t vm =
  match List.find_opt (fun n -> n.vm == vm) t.nodes with
  | Some n -> n.endpoint
  | None -> invalid_arg "Ninja: VM is not managed by this instance"

(* The SymVirt coordinator, installed as the SELF CRS callbacks: at
   checkpoint time each MPI process issues symvirt_wait, and keeps
   re-entering the wait while a multi-fence operation is in flight (the
   guest briefly runs between fences so the OS can process ACPI events,
   Fig. 4/5). The continue callback is a no-op here because BTL
   reconstruction and link confirmation live in the runtime's continue
   path. *)
let ft_hooks t =
  {
    Rank.on_checkpoint =
      (fun proc ->
        let ep = endpoint_of t (Rank.vm proc) in
        Hypercall.guest_wait ep;
        while t.operation_active do
          Hypercall.guest_wait ep
        done;
        if t.abort_check () then raise Rank.Job_aborted);
    Rank.on_continue = (fun _ -> ());
  }

let launch t ~procs_per_vm ?(continue_like_restart = true) body =
  (match t.rt with Some _ -> invalid_arg "Ninja.launch: job already launched" | None -> ());
  t.procs_per_vm <- procs_per_vm;
  let members = List.map (fun n -> (n.vm, n.guest)) t.nodes in
  let rt =
    Runtime.mpirun t.cluster ~members ~procs_per_vm ~continue_like_restart
      ~ft_hooks:(ft_hooks t) body
  in
  t.rt <- Some rt;
  rt

let runtime t = match t.rt with Some rt -> rt | None -> raise Not_launched

let procs_per_vm t = t.procs_per_vm

let wait_job t = Runtime.wait (runtime t)

let controller t =
  Controller.create t.cluster
    ~members:
      (List.map
         (fun n -> { Controller.vm = n.vm; endpoint = n.endpoint; procs = t.procs_per_vm })
         t.nodes)

let span_since sim t0 = Time.diff (Sim.now sim) t0

let default_detach vm =
  match Vm.find_device vm ~tag:hca_tag with Some _ -> [ hca_tag ] | None -> []

let default_attach plan vm =
  if Node.has_ib (plan vm) then [ Device.make ~tag:hca_tag ~pci_addr:hca_addr Device.Ib_hca ]
  else []

(* The complete Fig. 4 control flow. [`Multi] (the default) brackets each
   VMM operation group in its own wait_all/signal pair, exactly like the
   Fig. 5 script — the guest runs briefly between fences so the OS can
   process ACPI events; [`Single] holds one fence across all three phases
   (measured overheads are equal, asserted by tests). *)
let migrate t ~plan ?(transport = Migration.Tcp) ?hotplug_noise
    ?(protocol = `Multi_fence) ?detach:detach_f ?attach:attach_f ?migration_exec () =
  let rt = runtime t in
  if Runtime.is_finished rt then
    invalid_arg "Ninja.migrate: the MPI job has already finished (nothing to fence)";
  let sim = t.sim in
  let detach_f = Option.value detach_f ~default:default_detach in
  let attach_f = Option.value attach_f ~default:(default_attach plan) in
  let moving = List.exists (fun n -> (plan n.vm).Node.id <> (Vm.host n.vm).Node.id) t.nodes in
  let noise =
    match hotplug_noise with
    | Some n -> n
    | None -> if moving then Calibration.hotplug_noise_factor else 1.0
  in
  let multi = protocol = `Multi_fence in
  let ctl = controller t in
  let t0 = Sim.now sim in
  Trace.record t.trace ~category:"ninja" "migration triggered";
  (* 1. Trigger: the runtime tells every process to reach a safe point and
     call into the coordinator; the controller waits for the fence. *)
  t.operation_active <- multi;
  let complete = Runtime.request_checkpoint rt in
  Controller.wait_all ctl;
  let coordination = span_since sim t0 in
  let fence_boundary ~last =
    if multi then begin
      if last then t.operation_active <- false;
      Controller.signal ctl;
      if not last then Controller.wait_all ctl
    end
    else if last then Controller.signal ctl
  in
  (* 2. Detach VMM-bypass devices (agents, in parallel). *)
  let t1 = Sim.now sim in
  ignore
    (Controller.run_agents ctl (fun vm ->
         List.map (fun tag -> Qmp.Device_del { tag; noise }) (detach_f vm)));
  let detach = span_since sim t1 in
  fence_boundary ~last:false;
  (* 3. Live migration: by default one agent per VM, all in parallel; a
     batch planner can substitute its own ordered execution of the same
     window (every VM must be at [plan vm] when it returns). *)
  let t2 = Sim.now sim in
  (match migration_exec with
  | Some exec -> exec ()
  | None -> ignore (Controller.migration ctl ~plan ~transport ()));
  let migration = span_since sim t2 in
  fence_boundary ~last:false;
  (* 4. Re-attach where the destination hardware allows it. *)
  let t3 = Sim.now sim in
  ignore
    (Controller.run_agents ctl (fun vm ->
         List.map (fun device -> Qmp.Device_add { device; noise }) (attach_f vm)));
  let attach = span_since sim t3 in
  (* 5. Final signal; guests confirm link-up and rebuild transports. *)
  fence_boundary ~last:true;
  Runtime.await_checkpoint_complete complete;
  let linkup = Runtime.last_linkup_wait rt in
  let total = span_since sim t0 in
  let breakdown = { Breakdown.coordination; detach; migration; attach; linkup; total } in
  Trace.recordf t.trace ~category:"ninja" "migration done: %a" Breakdown.pp breakdown;
  breakdown

let plan_of_dsts t dsts =
  if List.length dsts <> List.length t.nodes then
    invalid_arg "Ninja: destination list length does not match VM count";
  let table = List.combine (vms t) dsts in
  fun vm -> List.assq vm table

let fallback t ~dsts = migrate t ~plan:(plan_of_dsts t dsts) ()

let recovery t ~dsts = migrate t ~plan:(plan_of_dsts t dsts) ()

let self_migration t = migrate t ~plan:(fun vm -> Vm.host vm) ()

let checkpoint_to_store t store ~name_prefix =
  let rt = runtime t in
  let ctl = controller t in
  let complete = Runtime.request_checkpoint rt in
  Controller.wait_all ctl;
  let snaps =
    List.mapi
      (fun i n -> Snapshot.save store n.vm ~name:(Printf.sprintf "%s-%d" name_prefix i))
      t.nodes
  in
  Controller.signal ctl;
  Runtime.await_checkpoint_complete complete;
  snaps
