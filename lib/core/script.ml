open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_mpi
open Ninja_symvirt
open Ninja_vmm

type ctl = {
  ninja : Ninja.t;
  controller : Controller.t;
  sim : Sim.t;
  started : Time.t;
  mutable complete : unit Ivar.t option;
  mutable coordination : Time.span;
  mutable detach : Time.span;
  mutable migration : Time.span;
  mutable attach : Time.span;
  mutable linkup : Time.span;
}

let controller ninja =
  let members =
    List.map
      (fun (n : Ninja.vnode) ->
        { Controller.vm = n.vm; endpoint = n.endpoint; procs = Ninja.procs_per_vm ninja })
      (Ninja.vnodes ninja)
  in
  let cluster = Ninja.cluster ninja in
  {
    ninja;
    controller = Controller.create cluster ~members;
    sim = Cluster.sim cluster;
    started = Sim.now (Cluster.sim cluster);
    complete = None;
    coordination = Time.zero;
    detach = Time.zero;
    migration = Time.zero;
    attach = Time.zero;
    linkup = Time.zero;
  }

let timed ctl f =
  let t0 = Sim.now ctl.sim in
  f ();
  Time.diff (Sim.now ctl.sim) t0

let wait_all ctl =
  let span =
    timed ctl (fun () ->
        (match ctl.complete with
        | None ->
          ctl.complete <- Some (Runtime.request_checkpoint (Ninja.runtime ctl.ninja))
        | Some _ -> ());
        Controller.wait_all ctl.controller)
  in
  ctl.coordination <- Time.add ctl.coordination span

let device_detach ctl ~tag =
  let span =
    timed ctl (fun () ->
        ignore
          (Controller.run_agents ctl.controller (fun vm ->
               match Vm.find_device vm ~tag with
               | Some _ -> [ Qmp.Device_del { tag; noise = 1.0 } ]
               | None -> [])))
  in
  ctl.detach <- Time.add ctl.detach span

let device_attach ctl ~host ~tag =
  let span =
    timed ctl (fun () ->
        Controller.device_attach ctl.controller
          ~mk_device:(fun vm ->
            if Node.has_ib (Vm.host vm) then
              Some (Device.make ~tag ~pci_addr:host Device.Ib_hca)
            else None)
          ())
  in
  ctl.attach <- Time.add ctl.attach span

let migration ctl ~src ~dst =
  if List.length src <> List.length dst then
    invalid_arg "Script.migration: hostlist length mismatch";
  let cluster = Ninja.cluster ctl.ninja in
  let moves =
    List.map2
      (fun s d -> (Cluster.find_node cluster s, Cluster.find_node cluster d))
      src dst
  in
  let span =
    timed ctl (fun () ->
        ignore
          (Controller.run_agents ctl.controller (fun vm ->
               match
                 List.find_opt (fun (s, _) -> s.Node.id = (Vm.host vm).Node.id) moves
               with
               | Some (_, d) ->
                 [ Qmp.Migrate { dst = d; transport = Migration.Tcp; mode = Migration.Precopy } ]
               | None -> [])))
  in
  ctl.migration <- Time.add ctl.migration span

let signal ctl =
  let span =
    timed ctl (fun () ->
        Controller.signal ctl.controller;
        match ctl.complete with
        | Some ivar ->
          Runtime.await_checkpoint_complete ivar;
          ctl.complete <- None;
          ctl.linkup <-
            Time.add ctl.linkup (Runtime.last_linkup_wait (Ninja.runtime ctl.ninja))
        | None -> ())
  in
  (* The signal-to-resume gap is link-up plus reconstruction, already
     accounted; nothing else to attribute here. *)
  ignore span

let quit ctl =
  {
    Breakdown.coordination = ctl.coordination;
    detach = ctl.detach;
    migration = ctl.migration;
    attach = ctl.attach;
    linkup = ctl.linkup;
    retry = Time.zero;
    total = Time.diff (Sim.now ctl.sim) ctl.started;
  }
