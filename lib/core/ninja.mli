(** Ninja migration: interconnect-transparent migration of a whole
    virtualised MPI cluster (the paper's contribution, §III).

    A [Ninja.t] owns a set of VMs running one MPI job, with the full
    SymVirt assembly wired up: a hypercall endpoint per VM, coordinator
    callbacks inside every MPI process (registered as OPAL CRS SELF
    handlers), and a host-side controller with per-VM agents.

    {!migrate} performs the complete Fig. 4 flow:

    trigger → CRCP quiesce → SymVirt fence (VMs paused) → detach bypass
    devices → precopy migration → re-attach where the destination has the
    hardware → signal → BTL reconstruction (+ link-up wait) → resume —

    and returns the overhead breakdown the paper reports. Fallback
    (IB→Ethernet) and recovery (Ethernet→IB) are the same flow with
    different destinations; the transport switch falls out of BTL
    exclusivity, not from any special-casing here. *)

open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_metrics
open Ninja_mpi
open Ninja_symvirt
open Ninja_vmm

type t

type vnode = { vm : Vm.t; guest : Guest.t; endpoint : Hypercall.t }

type outcome =
  | Completed  (** every VM reached its planned destination *)
  | Rolled_back of string
      (** a phase exhausted its retry policy; every VM was returned to its
          origin node with its bypass devices restored, and the guests
          resumed where they were. The payload is the failure reason. *)
  | Lost of string
      (** a postcopy switchover committed and then the source died before
          the page drain completed: no host holds a complete image, so
          rollback-to-source is impossible for that VM. The lost VM(s)
          stay paused at the destination and are skipped by every rollback
          phase; surviving VMs are still restored to their origins. The
          payload is the failure reason. *)

val setup :
  Cluster.t ->
  hosts:Node.t list ->
  ?vcpus:int ->
  ?mem_gb:float ->
  ?attach_hca:bool ->
  unit ->
  t
(** One VM per host entry (named vm0, vm1, ...). With [attach_hca] (the
    default), hosts that have an InfiniBand port get a VMM-bypass HCA
    passed through at ["04:00.0"] with tag ["vf0"]. *)

val of_vms : Cluster.t -> vms:Vm.t list -> t
(** Wrap existing VMs (e.g. snapshot-restored ones) instead of creating
    fresh ones: boots a guest and creates a SymVirt endpoint for each. *)

val set_abort_check : t -> (unit -> bool) -> unit
(** When the check returns true as coordinators wake from a SymVirt
    signal, they raise [Rank.Job_aborted] so every process unwinds cleanly
    — how a fault-tolerance layer kills an incarnation at a fence. *)

val cluster : t -> Cluster.t

val vnodes : t -> vnode list

val vms : t -> Vm.t list

val launch :
  t ->
  procs_per_vm:int ->
  ?continue_like_restart:bool ->
  (Mpi.ctx -> unit) ->
  Runtime.t
(** Start the MPI job across the VMs with the SymVirt coordinator
    installed (checkpoint callback = [symvirt_wait], as libsymvirt.so does
    via LD_PRELOAD + the SELF CRS component). *)

val runtime : t -> Runtime.t
(** Raises {!Not_launched} before {!launch}. *)

val procs_per_vm : t -> int

val wait_job : t -> unit

(** {1 Migration} *)

exception Not_launched

val migrate :
  t ->
  plan:(Vm.t -> Node.t) ->
  ?transport:Migration.transport ->
  ?mode:Migration.mode ->
  ?hotplug_noise:float ->
  ?protocol:[ `Multi_fence | `Single_fence ] ->
  ?detach:(Vm.t -> string list) ->
  ?attach:(Vm.t -> Device.t list) ->
  ?migration_exec:(unit -> unit) ->
  ?retry:Retry.policy ->
  unit ->
  Breakdown.t
(** The full Ninja migration of every VM (concurrently, one agent each).
    [hotplug_noise] defaults to the calibrated "migration noise" factor
    when any VM actually changes host, and 1.0 for self-migration.
    [protocol] defaults to [`Multi_fence]: each VMM operation group gets
    its own SymVirt wait/signal pair as in the Fig. 5 script, the guests
    briefly running between fences; [`Single_fence] holds one fence across
    all phases (equal measured overheads). [detach] defaults to the VM's
    bypass HCA if present; [attach] defaults to an HCA wherever the
    destination node has an IB port. The Table II experiment overrides
    both to hotplug the interconnect device under test (including virtio
    NICs for the Ethernet rows). [migration_exec] replaces the migration
    phase itself — the batch planner ({!Ninja_planner.Executor}) uses it
    to run an ordered plan inside the fence window; when it returns,
    every VM must already sit on [plan vm].

    The flow is transactional under [retry] (default
    {!Retry.default_policy}): a VMM phase re-issues only the failed VMs'
    commands after the policy's backoff, and a phase that still cannot
    complete rolls the whole operation back — VMs return to their origin
    nodes, detached bypass devices are re-attached where the source
    hardware allows, and the fence is released so the job continues where
    it was. [migrate] does not raise on injected faults; the time lost to
    retries and rollback is reported in the breakdown's [retry] field and
    the result is readable via {!last_outcome}.

    [mode] selects the copy strategy (default [Precopy]). Under
    [Postcopy] the failure semantics change: a fault before the
    switchover commits still rolls back cleanly, but a source death
    mid-drain makes the affected VM unrecoverable and the outcome becomes
    {!Lost} — rollback restores only the surviving VMs. *)

val last_outcome : t -> outcome option
(** Outcome of the most recent {!migrate} ([None] before the first). *)

val fallback : t -> dsts:Node.t list -> ?mode:Migration.mode -> unit -> Breakdown.t
(** Migrate VM i to [dsts.(i)] — e.g. from the IB cluster to the Ethernet
    cluster. Raises [Invalid_argument] on a length mismatch. *)

val recovery : t -> dsts:Node.t list -> ?mode:Migration.mode -> unit -> Breakdown.t
(** Same mechanics as {!fallback}; named for the Fig. 2 phase. *)

val self_migration : t -> Breakdown.t
(** Each VM migrates to its own host (the Table II measurement mode). *)

(** {1 Checkpoint/restart to shared storage (§II, proactive FT)} *)

val checkpoint_to_store : t -> Snapshot.store -> name_prefix:string -> Snapshot.t list
(** Quiesce the job at a SymVirt fence and save a consistent snapshot of
    every VM, then resume — the proactive fault-tolerance building block
    from the authors' SymVirt paper that §II's use cases rely on. *)
