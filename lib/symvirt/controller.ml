open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type member = { vm : Vm.t; endpoint : Hypercall.t; procs : int }

type t = { cluster : Cluster.t; members : member list; trace : Trace.t }

exception Agent_failure of string

let create cluster ~members =
  List.iter
    (fun m ->
      if m.procs <= 0 then invalid_arg "Controller.create: procs must be positive")
    members;
  { cluster; members; trace = Cluster.trace cluster }

let members t = t.members

let cluster t = t.cluster

let probe_fence t action =
  let probes = Cluster.probes t.cluster in
  if Probe.active probes then
    Probe.emit probes ~topic:"fence" ~action
      ~info:
        [
          ("vms", String.concat "," (List.map (fun m -> Vm.name m.vm) t.members));
          ("count", string_of_int (List.length t.members));
        ]
      ()

let wait_all t =
  List.iter (fun m -> Hypercall.await_waiters m.endpoint m.procs) t.members;
  List.iter (fun m -> Vm.pause m.vm) t.members;
  Trace.recordf t.trace ~category:"symvirt" "fence reached: %d VMs paused"
    (List.length t.members);
  probe_fence t "enter"

let signal t =
  List.iter
    (fun m ->
      Vm.resume m.vm;
      Hypercall.host_signal m.endpoint)
    t.members;
  Trace.recordf t.trace ~category:"symvirt" "signalled %d VMs" (List.length t.members);
  probe_fence t "release"

(* One agent fiber per VM, driving its monitor; the caller blocks on all of
   them (the paper's controller joins its agent threads). An armed
   [Agent_crash] fault kills the agent before it issues anything — its
   command list is untouched, so a fresh agent can safely re-run it. *)
let run_agents_results t commands_for =
  let sim = Cluster.sim t.cluster in
  let injector = Cluster.injector t.cluster in
  let jobs =
    List.map
      (fun m ->
        let done_ = Ivar.create () in
        let commands = commands_for m.vm in
        Sim.spawn sim ~name:(Printf.sprintf "agent-%s" (Vm.name m.vm)) (fun () ->
            let responses =
              if
                commands <> []
                && Ninja_faults.Injector.enabled injector
                && Ninja_faults.Injector.fire injector Ninja_faults.Injector.Agent_crash
                     ~site:(Vm.name m.vm)
              then [ Qmp.Error "agent crashed before issuing its commands" ]
              else List.map (fun c -> Qmp.execute m.vm c) commands
            in
            Ivar.fill done_ responses);
        (m.vm, done_))
      t.members
  in
  List.map (fun (vm, done_) -> (vm, Ivar.read done_)) jobs

let first_error responses =
  List.find_map (function Qmp.Error msg -> Some msg | _ -> None) responses

let run_agents t commands_for =
  let results = run_agents_results t commands_for in
  List.iter
    (fun (vm, responses) ->
      match first_error responses with
      | Some msg -> raise (Agent_failure (Printf.sprintf "%s: %s" (Vm.name vm) msg))
      | None -> ())
    results;
  results

let device_detach t ~tag ?(noise = 1.0) () =
  ignore (run_agents t (fun _vm -> [ Qmp.Device_del { tag; noise } ]))

let device_attach t ~mk_device ?(noise = 1.0) () =
  ignore
    (run_agents t (fun vm ->
         match mk_device vm with
         | Some device -> [ Qmp.Device_add { device; noise } ]
         | None -> []))

let migration t ~plan ?(transport = Migration.Tcp) ?(mode = Migration.Precopy) () =
  let results =
    run_agents t (fun vm -> [ Qmp.Migrate { dst = plan vm; transport; mode } ])
  in
  List.concat_map
    (fun (vm, responses) ->
      List.filter_map
        (function Qmp.Migrated stats -> Some (vm, stats) | _ -> None)
        responses)
    results
