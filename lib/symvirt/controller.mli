(** The SymVirt controller and its per-VM agents (Fig. 3).

    The controller is the host-side master. [wait_all] blocks until every
    VM of the job has all of its guest processes parked in [symvirt_wait],
    then pauses the VMs — the globally consistent fence. Between
    [wait_all] and [signal], the controller spawns one agent per VM; each
    agent drives its VM's QEMU monitor (detach, migrate, attach). Agents
    run concurrently, exactly like the paper's Python agent threads, with
    each QMP command paying the controller round-trip overhead. *)

open Ninja_hardware
open Ninja_vmm

type member = { vm : Vm.t; endpoint : Hypercall.t; procs : int }

type t

val create : Cluster.t -> members:member list -> t

val members : t -> member list

val cluster : t -> Cluster.t

val wait_all : t -> unit
(** Block until every member VM has [procs] waiters, then pause the VMs. *)

val signal : t -> unit
(** Resume every VM and wake its waiters. *)

val run_agents : t -> (Vm.t -> Qmp.command list) -> (Vm.t * Qmp.response list) list
(** Spawn one agent per VM executing that VM's command list; block until
    all agents finish. Responses are returned in member order. Raises
    {!Agent_failure} if any command returned an error. *)

val run_agents_results : t -> (Vm.t -> Qmp.command list) -> (Vm.t * Qmp.response list) list
(** Like {!run_agents} but never raises on a monitor error: failures stay
    in the response lists for the caller's retry/rollback machinery. A VM
    whose agent is killed by an armed [Agent_crash] fault reports a single
    [Error] response without having issued anything. *)

val first_error : Qmp.response list -> string option

exception Agent_failure of string

val device_detach : t -> tag:string -> ?noise:float -> unit -> unit
(** Detach the tagged device from every member VM (agents in parallel). *)

val device_attach : t -> mk_device:(Vm.t -> Device.t option) -> ?noise:float -> unit -> unit
(** Attach a device to each VM for which [mk_device] returns one. *)

val migration : t -> plan:(Vm.t -> Node.t) -> ?transport:Migration.transport ->
  ?mode:Migration.mode -> unit -> (Vm.t * Migration.stats) list
(** Migrate every member VM to its planned destination in parallel. *)
