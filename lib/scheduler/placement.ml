open Ninja_hardware
open Ninja_vmm

let nodes_free cluster ~vms =
  let occupied = Hashtbl.create (List.length vms) in
  List.iter (fun vm -> Hashtbl.replace occupied (Vm.host vm).Node.id ()) vms;
  Cluster.nodes cluster
  |> List.filter (fun (n : Node.t) -> not (Hashtbl.mem occupied n.Node.id))
  |> List.sort (fun (a : Node.t) (b : Node.t) -> compare a.Node.id b.Node.id)

let evacuation_plan cluster ~vms ~avoid =
  let candidates =
    nodes_free cluster ~vms
    |> List.filter (fun n -> not (avoid n))
    (* Prefer IB-equipped refuges so recovered jobs keep their fast
       interconnect when possible. *)
    |> List.stable_sort (fun a b -> compare (Node.has_ib b) (Node.has_ib a))
  in
  let moving = List.filter (fun vm -> avoid (Vm.host vm)) vms in
  if List.length moving > List.length candidates then
    failwith "Placement.evacuation_plan: not enough free nodes";
  let assignment = List.combine moving (List.filteri (fun i _ -> i < List.length moving) candidates) in
  fun vm ->
    match List.assq_opt vm assignment with
    | Some dst -> dst
    | None -> Vm.host vm

let consolidation_plan _cluster ~vms ~vms_per_host ~targets =
  if vms_per_host <= 0 then invalid_arg "Placement.consolidation_plan: vms_per_host";
  let needed = (List.length vms + vms_per_host - 1) / vms_per_host in
  if needed > List.length targets then
    failwith "Placement.consolidation_plan: not enough target nodes";
  let assignment =
    List.mapi (fun i vm -> (vm, List.nth targets (i / vms_per_host))) vms
  in
  fun vm ->
    match List.assq_opt vm assignment with
    | Some dst -> dst
    | None -> Vm.host vm

let pack_least_loaded ~vms ~candidates ~load_bytes ~bytes_of () =
  let planned = Hashtbl.create 8 in
  let extra (n : Node.t) = Option.value (Hashtbl.find_opt planned n.Node.id) ~default:0.0 in
  let projected n = load_bytes n +. extra n in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | vm :: rest -> (
      let need = bytes_of vm in
      let fits n = projected n +. need <= (n.Node.mem_bytes *. (1.0 +. 1e-9)) in
      let best =
        candidates vm |> List.filter fits
        |> List.sort (fun a b ->
               match Float.compare (projected a) (projected b) with
               | 0 -> compare a.Node.id b.Node.id
               | c -> c)
      in
      match best with
      | [] -> Error (Printf.sprintf "no feasible destination for %s" (Vm.name vm))
      | n :: _ ->
        Hashtbl.replace planned n.Node.id (extra n +. need);
        go ((vm, n) :: acc) rest)
  in
  go [] vms

let spread_plan _cluster ~vms ~targets =
  if List.length vms > List.length targets then
    failwith "Placement.spread_plan: not enough target nodes";
  let assignment = List.mapi (fun i vm -> (vm, List.nth targets i)) vms in
  fun vm ->
    match List.assq_opt vm assignment with
    | Some dst -> dst
    | None -> Vm.host vm
