open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_metrics
open Ninja_core
open Ninja_planner

type trigger =
  | Maintenance of { avoid : Node.t -> bool }
  | Disaster of { rack : int }
  | Consolidate of { vms_per_host : int; targets : Node.t list }
  | Rebalance of { targets : Node.t list }

type record = {
  at : Time.t;
  trigger : trigger;
  breakdown : Breakdown.t;
  report : Executor.report option;
}

type t = {
  ninja : Ninja.t;
  sim : Sim.t;
  strategy : Solver.t;
  mode : Migration.mode;
  traffic : Cost_model.traffic;
  max_per_host : int;
  retry : Retry.policy;
  mutable records : record list;
}

let create ?(strategy = Solver.default) ?(mode = Migration.Precopy) ?(traffic = [])
    ?(max_per_host = Executor.default_max_per_host) ?(retry = Retry.default_policy) ninja =
  if max_per_host <= 0 then invalid_arg "Cloud_scheduler.create: max_per_host";
  {
    ninja;
    sim = Cluster.sim (Ninja.cluster ninja);
    strategy;
    mode;
    traffic;
    max_per_host;
    retry;
    records = [];
  }

let strategy t = t.strategy

let mode t = t.mode

let trigger_name = function
  | Maintenance _ -> "maintenance"
  | Disaster { rack } -> Printf.sprintf "disaster(rack%d)" rack
  | Consolidate { vms_per_host; _ } -> Printf.sprintf "consolidate(%d/host)" vms_per_host
  | Rebalance _ -> "rebalance"

let plan_for t trigger =
  let cluster = Ninja.cluster t.ninja in
  let vms = Ninja.vms t.ninja in
  match trigger with
  | Maintenance { avoid } -> Placement.evacuation_plan cluster ~vms ~avoid
  | Disaster { rack } ->
    Placement.evacuation_plan cluster ~vms ~avoid:(fun n -> n.Node.rack = rack)
  | Consolidate { vms_per_host; targets } ->
    Placement.consolidation_plan cluster ~vms ~vms_per_host ~targets
  | Rebalance { targets } -> Placement.spread_plan cluster ~vms ~targets

(* Turn the trigger's placement into an executable migration plan: derive
   capacity/staging dependencies, let the configured strategy shape the
   parallelism, and run the result inside the fence window that
   [Ninja.migrate] opens. VMs already on an acceptable host contribute no
   step (in particular they no longer pay a loopback self-migration). *)
let build_plan t trigger dst_of =
  let cluster = Ninja.cluster t.ninja in
  let vms = Ninja.vms t.ninja in
  let staging = Placement.nodes_free cluster ~vms in
  let plan = Plan.of_assignment cluster ~vms ~dst_of ~staging () in
  Trace.recordf
    (Cluster.trace cluster)
    ~category:"planner" "trigger %s: %d steps, strategy %s, est. serial %a"
    (trigger_name trigger) (Plan.length plan) (Solver.name t.strategy) Time.pp
    (Estimator.sequential_duration cluster plan);
  Solver.solve t.strategy cluster ~traffic:t.traffic plan

(* Would [n] be a policy-conformant destination for this trigger? Rerouted
   steps must respect it too: evacuating onto an avoided node would undo
   the trigger. *)
let acceptable trigger n =
  match trigger with
  | Maintenance { avoid } -> not (avoid n)
  | Disaster { rack } -> n.Node.rack <> rack
  | Consolidate { targets; _ } | Rebalance { targets } ->
    List.exists (fun m -> m.Node.id = n.Node.id) targets

(* When a destination dies mid-plan, send the step to the first live node
   the trigger's policy accepts that still has room. "Room" counts VMs
   currently resident, every other step's intended destination, and the
   reroutes this closure already granted — reroute decisions are taken
   while migrations are in flight, so current placement alone undercounts
   and concurrent reroutes would pile every displaced VM onto the first
   node that merely looks empty, overcommitting its memory. Candidates
   are further pinned to the planned destination's interconnect class:
   [Ninja.migrate] computed its detach/re-attach device plan for that
   class, so sending the VM across fabrics would land it without (or
   with a stale) bypass device. *)
let make_reroute t trigger plan =
  let cluster = Ninja.cluster t.ninja in
  let granted : (int, Vm.t list ref) Hashtbl.t = Hashtbl.create 4 in
  fun (step : Plan.step) ->
    (* A committed postcopy switchover pins the VM: its memory is split
       between source and destination, so aiming the pull stream at a
       third node is meaningless. A lost VM has nothing left to move.
       Either way the step must fail rather than be rerouted. *)
    if Vm.switchover_committed step.Plan.vm || Vm.is_lost step.Plan.vm then None
    else begin
    let vms = Ninja.vms t.ninja in
    let headed_to n =
      let residents =
        List.filter (fun vm -> (Vm.host vm).Node.id = n.Node.id) vms
      in
      let planned =
        Plan.steps plan
        |> List.filter (fun (s : Plan.step) -> s.Plan.dst.Node.id = n.Node.id)
        |> List.map (fun (s : Plan.step) -> s.Plan.vm)
      in
      let rerouted =
        match Hashtbl.find_opt granted n.Node.id with Some l -> !l | None -> []
      in
      step.Plan.vm :: (residents @ planned @ rerouted)
      |> List.sort_uniq (fun a b -> compare (Vm.name a) (Vm.name b))
    in
    let fits n =
      let load = headed_to n in
      let bytes =
        List.fold_left (fun acc vm -> acc +. Memory.total_bytes (Vm.memory vm)) 0.0 load
      in
      let count_ok =
        match trigger with
        | Consolidate { vms_per_host; _ } -> List.length load <= vms_per_host
        | Maintenance _ | Disaster _ | Rebalance _ -> true
      in
      count_ok && bytes <= n.Node.mem_bytes
    in
    let choice =
      (* The indexed free-memory registry pre-filters to nodes whose
         registered residents leave room for this VM (id order), so the
         scan below only prices in-flight state — planned arrivals and
         already-granted reroutes — instead of walking every node. *)
      Cluster.nodes_with_free cluster
        ~bytes:(Memory.total_bytes (Vm.memory step.Plan.vm))
      |> List.find_opt (fun n ->
             Cluster.node_alive cluster n
             && n.Node.id <> step.Plan.dst.Node.id
             && n.Node.id <> (Vm.host step.Plan.vm).Node.id
             && Node.has_ib n = Node.has_ib step.Plan.dst
             && acceptable trigger n && fits n)
    in
    (match choice with
    | Some n ->
      let l =
        match Hashtbl.find_opt granted n.Node.id with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace granted n.Node.id l;
          l
      in
      l := step.Plan.vm :: !l
    | None -> ());
    choice
    end

let execute t trigger =
  Probe.emit
    (Cluster.probes (Ninja.cluster t.ninja))
    ~topic:"scheduler" ~action:"trigger" ~subject:(trigger_name trigger) ();
  let dst_of = plan_for t trigger in
  let plan = build_plan t trigger dst_of in
  let report = ref None in
  let breakdown =
    Ninja.migrate t.ninja ~plan:dst_of ~mode:t.mode ~retry:t.retry
      ~migration_exec:(fun () ->
        report :=
          Some
            (Executor.run (Ninja.cluster t.ninja) ~mode:t.mode
               ~max_per_host:t.max_per_host ~retry:t.retry
               ~reroute:(make_reroute t trigger plan) plan))
      ()
  in
  t.records <- { at = Sim.now t.sim; trigger; breakdown; report = !report } :: t.records;
  Trace.recordf
    (Cluster.trace (Ninja.cluster t.ninja))
    ~category:"scheduler" "trigger %s done: %a" (trigger_name trigger) Breakdown.pp breakdown;
  breakdown

let schedule t ~after trigger =
  Sim.spawn t.sim ~name:("trigger-" ^ trigger_name trigger) (fun () ->
      Sim.sleep after;
      ignore (execute t trigger))

let history t = List.rev t.records
