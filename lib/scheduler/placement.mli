(** VM placement policies for the cloud scheduler.

    Pure functions from current state to a destination plan; all orderings
    are deterministic (node id order). *)

open Ninja_hardware
open Ninja_vmm

val nodes_free : Cluster.t -> vms:Vm.t list -> Node.t list
(** Nodes not currently hosting any of the given VMs, in id order. *)

val evacuation_plan :
  Cluster.t -> vms:Vm.t list -> avoid:(Node.t -> bool) -> (Vm.t -> Node.t)
(** Move every VM whose host satisfies [avoid] to a free, non-avoided
    node, preferring InfiniBand-equipped nodes; VMs on acceptable hosts
    stay put. Raises [Failure] if capacity is insufficient. *)

val consolidation_plan :
  Cluster.t -> vms:Vm.t list -> vms_per_host:int -> targets:Node.t list -> (Vm.t -> Node.t)
(** Pack the VMs [vms_per_host]-deep onto the target nodes in order. *)

val spread_plan : Cluster.t -> vms:Vm.t list -> targets:Node.t list -> (Vm.t -> Node.t)
(** One VM per target node, in order (the recovery / rebalance shape). *)

val pack_least_loaded :
  vms:Vm.t list ->
  candidates:(Vm.t -> Node.t list) ->
  load_bytes:(Node.t -> float) ->
  bytes_of:(Vm.t -> float) ->
  unit ->
  ((Vm.t * Node.t) list, string) result
(** Capacity-aware greedy assignment, the control-plane building block:
    each VM (in list order) goes to the acceptable candidate with the
    least projected memory load — [load_bytes] (residents plus in-flight
    reservations, supplied by the caller) plus bytes already assigned to
    that node by this call — among those where the VM still fits within
    [Node.mem_bytes]. Ties break by node id, so the result is
    deterministic. [Error] names the first VM with no feasible
    destination. *)
