(** The cloud scheduler of Fig. 3: it owns migration policy and delivers
    trigger events to the MPI runtime and the SymVirt controller (both via
    {!Ninja_core.Ninja.migrate}).

    Triggers fire at scheduled simulation times. Each computes a placement
    with {!Placement}, turns it into a batch migration plan via
    {!Ninja_planner} (capacity conflicts and swap cycles become dependency
    edges; the configured {!Ninja_planner.Solver} strategy — [grouped] by
    default — shapes the parallelism and, for placement-aware strategies
    such as [swap], may re-aim destinations against the tenant traffic
    matrix), executes the plan inside the SymVirt fence window, and
    records the overhead breakdown plus the per-step executor report in
    the history. *)

open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_planner

type trigger =
  | Maintenance of { avoid : Node.t -> bool }
      (** Evacuate VMs from nodes matching [avoid] (non-stop maintenance,
          §II-A). *)
  | Disaster of { rack : int }
      (** Evacuate a whole rack/data-center (disaster recovery, §II-A). *)
  | Consolidate of { vms_per_host : int; targets : Node.t list }
      (** Pack VMs for utilisation (server consolidation, §II-A). *)
  | Rebalance of { targets : Node.t list }
      (** Spread back out, e.g. after maintenance ends. *)

type record = {
  at : Time.t;
  trigger : trigger;
  breakdown : Breakdown.t;
  report : Executor.report option;
      (** Per-step plan execution report ([None] only if the migration
          phase never ran). *)
}

type t

val create :
  ?strategy:Solver.t ->
  ?mode:Ninja_vmm.Migration.mode ->
  ?traffic:Cost_model.traffic ->
  ?max_per_host:int ->
  ?retry:Retry.policy ->
  Ninja.t ->
  t
(** [strategy] defaults to {!Ninja_planner.Solver.default} ([grouped]);
    [mode] (default [Precopy]) is the copy strategy every triggered
    migration uses — under [Postcopy], a step whose switchover has
    committed is never rerouted (its memory is split across two hosts),
    and a source death mid-drain surfaces as the
    {!Ninja_core.Ninja.Lost} outcome;
    [traffic] (default empty) is the tenant traffic matrix
    placement-aware strategies price placements against; [max_per_host]
    bounds concurrent migrations touching one node (default
    {!Ninja_planner.Executor.default_max_per_host}); [retry] (default
    {!Ninja_engine.Retry.default_policy}) governs both the executor's
    per-step re-attempts and the migrate flow's per-phase re-attempts.
    When a plan step's destination dies, the scheduler reroutes it to the
    first live free node the trigger's placement policy accepts (e.g. not
    an avoided node during maintenance) rather than aborting the
    trigger; candidates come from the cluster's indexed free-memory
    registry, not a scan over every node. *)

val strategy : t -> Solver.t

val mode : t -> Ninja_vmm.Migration.mode

val plan_for : t -> trigger -> Ninja_vmm.Vm.t -> Node.t

val execute : t -> trigger -> Breakdown.t
(** Run the migration now (must be called from a fiber). *)

val schedule : t -> after:Time.span -> trigger -> unit
(** Fire-and-forget: deliver the trigger after a delay. *)

val history : t -> record list
(** Executed triggers, oldest first. *)

val trigger_name : trigger -> string
