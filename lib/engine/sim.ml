type handle = { mutable cancelled : bool }

type event = { run : unit -> unit; h : handle }

type t = {
  mutable now : Time.t;
  mutable seq : int;
  queue : event Pheap.t;
  prng : Prng.t;
  mutable n_events : int;
  mutable next_fiber : int;
  fibers : (int, string) Hashtbl.t; (* live (spawned, not yet finished) *)
}

exception Deadlock of string list

type _ Effect.t +=
  | Sleep : t * Time.span -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let create ?(seed = 1L) () =
  {
    now = Time.zero;
    seq = 0;
    queue = Pheap.create ();
    prng = Prng.create ~seed;
    n_events = 0;
    next_fiber = 0;
    fibers = Hashtbl.create 64;
  }

let now t = t.now

let prng t = t.prng

let events_processed t = t.n_events

let schedule_at t at run =
  if Time.(at < t.now) then invalid_arg "Sim.schedule_at: time is in the past";
  let h = { cancelled = false } in
  Pheap.add t.queue ~key:(Time.to_ns at) ~seq:t.seq { run; h };
  t.seq <- t.seq + 1;
  h

let schedule t ~after run =
  let after = if Time.is_negative after then Time.zero else after in
  schedule_at t (Time.add t.now after) run

let cancel h = h.cancelled <- true

let live_fibers t = Hashtbl.length t.fibers

(* The per-fiber effect handler. [Suspend]'s register function receives a
   resume callback that is idempotent: only its first invocation schedules
   the continuation, so primitives may safely keep stale wakeup references
   (e.g. a timeout racing a fill). *)
let run_fiber t id body =
  let open Effect.Deep in
  let finish () = Hashtbl.remove t.fibers id in
  match_with body ()
    {
      retc = (fun () -> finish ());
      exnc = (fun e -> finish (); raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep (st, d) ->
            Some
              (fun (k : (a, _) continuation) ->
                ignore (schedule st ~after:d (fun () -> continue k ())))
          | Suspend (st, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                let fired = ref false in
                let resume () =
                  if not !fired then begin
                    fired := true;
                    ignore (schedule st ~after:Time.zero (fun () -> continue k ()))
                  end
                in
                register resume)
          | _ -> None);
    }

let spawn t ?(name = "fiber") body =
  let id = t.next_fiber in
  t.next_fiber <- id + 1;
  Hashtbl.add t.fibers id (Printf.sprintf "%s#%d" name id);
  ignore (schedule t ~after:Time.zero (fun () -> run_fiber t id body))

(* These are meaningful only inside a fiber; performing an effect outside
   one raises [Effect.Unhandled], which surfaces as a programming error. *)
let sleep_on t d = Effect.perform (Sleep (t, d))

let suspend_on t register = Effect.perform (Suspend (t, register))

(* Fibers always run under a handler whose simulation is the one that
   spawned them, so we can recover [t] from the effect payload; the public
   API threads it implicitly via these wrappers. The ambient simulation
   lives in domain-local storage, not a global ref, so independent
   simulations can run concurrently on different domains (one simulation
   per domain) without observing each other. *)
let current_sim : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_current t f =
  let saved = Domain.DLS.get current_sim in
  Domain.DLS.set current_sim (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_sim saved) f

let get_current () =
  match Domain.DLS.get current_sim with
  | Some t -> t
  | None -> failwith "Sim: blocking call outside of a running simulation"

let sleep d = sleep_on (get_current ()) d

let suspend register = suspend_on (get_current ()) register

let step t ev =
  t.n_events <- t.n_events + 1;
  with_current t ev.run

(* The one event loop both entry points share: pop and execute events
   while the head timestamp passes [keep_going]. *)
let drain t ~keep_going =
  let rec loop () =
    match Pheap.peek_key t.queue with
    | Some (k, _) when keep_going (Time.of_ns k) ->
      let ev = Pheap.pop t.queue in
      if not ev.h.cancelled then begin
        t.now <- Time.of_ns k;
        step t ev
      end;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let run t =
  drain t ~keep_going:(fun _ -> true);
  if Hashtbl.length t.fibers > 0 then begin
    let stuck = Hashtbl.fold (fun _ name acc -> name :: acc) t.fibers [] in
    raise (Deadlock (List.sort String.compare stuck))
  end

let run_until t limit =
  drain t ~keep_going:(fun at -> Time.(at <= limit));
  t.now <- Time.max t.now limit

let run_for t span = run_until t (Time.add t.now span)
