(** Retry policies for simulated operations.

    A policy bounds how a recoverable operation is re-attempted: a maximum
    attempt count, exponential backoff between attempts (with an optional
    uniform jitter drawn from an explicit {!Prng.t} so retries never touch
    the simulation's main stream), a delay cap, and an optional total
    deadline — all expressed in sim-time, so retry schedules are exactly
    reproducible and can be asserted against by tests. *)

type policy = {
  max_attempts : int;  (** total tries including the first; >= 1 *)
  base_delay : Time.span;  (** backoff before the second attempt *)
  multiplier : float;  (** geometric growth factor, >= 1.0 *)
  max_delay : Time.span;  (** cap applied after growth *)
  jitter : float;  (** fraction of the delay added uniformly, in [0, 1] *)
  deadline : Time.span option;
      (** total sim-time budget measured from the first attempt; once
          exceeded, no further attempts are made *)
}

val default_policy : policy
(** 3 attempts, 100 ms base delay, x2 growth, 5 s cap, no jitter, no
    deadline. *)

val policy :
  ?max_attempts:int ->
  ?base_delay:Time.span ->
  ?multiplier:float ->
  ?max_delay:Time.span ->
  ?jitter:float ->
  ?deadline:Time.span ->
  unit ->
  policy
(** {!default_policy} with overrides; validates the fields. *)

val backoff : policy -> attempt:int -> Time.span
(** Deterministic backoff slept after failed attempt number [attempt]
    (1-based): [base_delay * multiplier^(attempt-1)], capped at
    [max_delay]. Jitter is not included — it is applied by {!run} when a
    PRNG is supplied. *)

type outcome = {
  attempts : int;  (** attempts actually made (>= 1) *)
  delay_total : Time.span;  (** total backoff slept between attempts *)
}

val run :
  sim:Sim.t ->
  ?prng:Prng.t ->
  ?policy:policy ->
  ?retryable:(exn -> bool) ->
  ?on_retry:(attempt:int -> delay:Time.span -> exn -> unit) ->
  (attempt:int -> 'a) ->
  'a * outcome
(** [run ~sim f] calls [f ~attempt:1]; on an exception for which
    [retryable] holds (default: everything), sleeps the backoff and tries
    again while attempts and the deadline allow, then re-raises the last
    exception. Must be called from inside a fiber when any retry can
    sleep. [on_retry] observes each scheduled retry before its backoff
    sleep. *)
