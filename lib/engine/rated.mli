(** Sets of tasks that progress at externally assigned rates.

    A [Rated.t] tracks tasks with a remaining amount of work (in arbitrary
    units) each progressing at a rate (units per simulated second) that a
    user-supplied [rerate] policy reassigns whenever the set changes. This
    is the common core of processor-sharing CPUs ({!Ps_resource}) and
    max–min fair network fabrics ({!Ninja_flownet.Fabric}): both only
    differ in their rate-assignment policy.

    Between events rates are constant, so completions can be scheduled
    exactly; on any membership or capacity change the set is settled
    (remaining work advanced), re-rated, and the next completion is
    re-scheduled. *)

type 'a t

type 'a task

type 'a change = Joined of 'a task | Left of 'a task

val create : Sim.t -> name:string -> rerate:('a t -> unit) -> 'a t
(** [rerate] assigns rates with {!set_rate}; it is called with the set
    already settled to the current instant. A global policy re-rates every
    active task; an incremental policy may consult {!changes} and leave
    unaffected tasks' rates untouched. *)

val changes : 'a t -> 'a change list
(** Membership deltas since the previous [rerate] call, oldest first —
    only meaningful from within the [rerate] callback (the log is cleared
    when it returns). A task added and completed within one change shows
    up as [Joined] then [Left]. *)

val add : 'a t -> payload:'a -> work:float -> 'a task
(** Register a new task (non-blocking). [work] must be non-negative; a
    zero-work task completes at the next instant. *)

val await : 'a task -> unit
(** Block the calling fiber until the task completes (or is cancelled). *)

val cancel : 'a t -> 'a task -> unit
(** Remove a task before completion; its waiters are woken. No-op if the
    task already completed. *)

val kick : 'a t -> unit
(** Settle, re-rate and re-schedule after an external change the set
    cannot observe (e.g. a capacity update). *)

val active : 'a t -> 'a task list
(** Active (incomplete) tasks, in insertion order. *)

val payload : 'a task -> 'a

val remaining : 'a t -> 'a task -> float
(** Remaining work, settled to the current instant. *)

val rate : 'a task -> float

val set_rate : 'a task -> float -> unit
(** Only meaningful from within the [rerate] callback. Rates must be
    non-negative and finite. *)

val is_done : 'a task -> bool
