(** Explicit per-run context.

    Everything that configures one experiment run — PRNG seed, quick vs
    full-scale parameters, armed fault specs, output sinks, and the
    optional domain pool for point-grid sweeps — travels in a single
    immutable value, created once at the entry point (CLI, bench, test)
    and threaded through every layer. Nothing here is global: two
    contexts can drive two simulations concurrently on different domains
    without sharing any mutable state.

    Determinism: a context fixes a run completely. Two runs under equal
    contexts produce identical tables, and {!map} preserves submission
    order, so sweeping a grid through a pool is byte-identical to the
    serial sweep. *)

type mode = Quick | Full
(** [Quick] shrinks sizes/iterations so the whole suite stays
    test-speed; [Full] reproduces the paper's parameters. *)

type sink = string -> unit
(** Receives self-contained chunks (a rendered trace timeline, a CSV
    table). Chunks arriving from pooled tasks may interleave across
    concurrent runs; each single chunk is delivered in one call. *)

type t = {
  seed : int64;  (** seeds every simulation the run creates *)
  mode : mode;
  faults : string list;
      (** textual fault specs in the [Ninja_faults.Injector] grammar,
          armed on every cluster the run creates; validated upstream *)
  topology : string option;
      (** textual topology spec in the [Ninja_hardware.Topology] grammar;
          when set, experiment clusters are built from the generated
          topology instead of the default spec; validated upstream *)
  traffic : string option;
      (** textual tenant traffic pattern in the [Ninja_workloads.Traffic]
          grammar; when set, traffic-aware experiments draw their tenant
          matrices from it instead of their built-in default; validated
          upstream *)
  migration : string option;
      (** migration copy mode name in the [Ninja_vmm.Migration] grammar
          (["precopy"] or ["postcopy"]); when set, experiments that
          perform Ninja migrations use it instead of their precopy
          default; validated upstream *)
  label : string;
      (** names this run's simulations in telemetry exports (e.g. the
          experiment entry and sweep-point index), so tracks from
          different simulations stay distinct; [""] when unused *)
  trace : sink option;  (** rendered trace timelines, one per simulation *)
  metrics : sink option;  (** result tables as CSV, one chunk per table *)
  spans : sink option;
      (** telemetry span exports (Chrome trace-event JSON), one chunk per
          simulation; setting it arms the telemetry recorder on every
          cluster the run creates *)
  observe : (string -> float -> unit) option;
      (** scalar observation hook [name value], e.g. a bench harness
          collecting per-entry simulated seconds; may be called from
          pooled domains, so the callback must be thread-safe *)
  pool : Pool.t option;  (** grid points run domain-parallel when set *)
}

val make :
  ?seed:int64 ->
  ?mode:mode ->
  ?faults:string list ->
  ?topology:string ->
  ?traffic:string ->
  ?migration:string ->
  ?label:string ->
  ?trace:sink ->
  ?metrics:sink ->
  ?spans:sink ->
  ?observe:(string -> float -> unit) ->
  ?pool:Pool.t ->
  unit ->
  t
(** Defaults: seed 42, [Quick], no faults, no sinks, serial. *)

val default : t
(** [make ()]. *)

val quick : t

val full : t

val with_seed : int64 -> t -> t

val with_mode : mode -> t -> t

val with_topology : string option -> t -> t

val with_traffic : string option -> t -> t

val with_migration : string option -> t -> t

val with_pool : Pool.t option -> t -> t

val with_label : string -> t -> t

val with_sinks : ?trace:sink -> ?metrics:sink -> ?spans:sink -> t -> t
(** Replaces all three sinks (absent arguments clear the sink — deriving
    a silent context from a noisy one is the common case). *)

val with_observer : (string -> float -> unit) option -> t -> t

val jobs : t -> int
(** Pool size, or 1 when serial. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** The sweep primitive: [List.map f] when serial, {!Pool.map} when a
    pool is present. Results are in input order either way. *)

val trace_line : t -> string -> unit
(** Send a chunk to the trace sink, if any. *)

val emit_metrics : t -> string -> unit
(** Send a chunk to the metrics sink, if any. *)

val emit_spans : t -> string -> unit
(** Send a chunk to the spans sink, if any. *)

val observe : t -> string -> float -> unit
(** Report a named scalar to the observation hook, if any. *)
