type event = {
  at : Time.t;
  topic : string;
  action : string;
  subject : string;
  info : (string * string) list;
}

type t = {
  sim : Sim.t;
  mutable subscribers : (event -> unit) list;
  mutable emitted : int;
}

let create sim = { sim; subscribers = []; emitted = 0 }

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]

let active t = t.subscribers <> []

let emitted t = t.emitted

let emit t ~topic ~action ?(subject = "") ?(info = []) () =
  match t.subscribers with
  | [] -> ()
  | subscribers ->
    t.emitted <- t.emitted + 1;
    let e = { at = Sim.now t.sim; topic; action; subject; info } in
    List.iter (fun f -> f e) subscribers

let info_of e key = List.assoc_opt key e.info

let pp fmt e =
  Format.fprintf fmt "[%a] %s/%s %s" Time.pp e.at e.topic e.action e.subject;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) e.info
