type event = {
  at : Time.t;
  topic : string;
  action : string;
  subject : string;
  info : (string * string) list;
}

(* Each subscriber is boxed so [detach] can remove exactly the entry an
   [attach] created (closures have no useful equality). *)
type subscription = { fn : event -> unit }

type t = {
  sim : Sim.t;
  mutable subscribers : subscription list;
  mutable emitted : int;
}

let create sim = { sim; subscribers = []; emitted = 0 }

let attach t f =
  let s = { fn = f } in
  t.subscribers <- t.subscribers @ [ s ];
  s

let detach t s = t.subscribers <- List.filter (fun x -> x != s) t.subscribers

let subscribe t f = ignore (attach t f)

let with_subscriber t f body =
  let s = attach t f in
  Fun.protect ~finally:(fun () -> detach t s) body

let active t = t.subscribers <> []

let emitted t = t.emitted

let emit t ~topic ~action ?(subject = "") ?(info = []) () =
  match t.subscribers with
  | [] -> ()
  | subscribers ->
    t.emitted <- t.emitted + 1;
    let e = { at = Sim.now t.sim; topic; action; subject; info } in
    List.iter (fun s -> s.fn e) subscribers

let info_of e key = List.assoc_opt key e.info

let pp fmt e =
  Format.fprintf fmt "[%a] %s/%s %s" Time.pp e.at e.topic e.action e.subject;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) e.info
