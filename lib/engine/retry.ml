type policy = {
  max_attempts : int;
  base_delay : Time.span;
  multiplier : float;
  max_delay : Time.span;
  jitter : float;
  deadline : Time.span option;
}

let default_policy =
  {
    max_attempts = 3;
    base_delay = Time.ms 100;
    multiplier = 2.0;
    max_delay = Time.sec 5;
    jitter = 0.0;
    deadline = None;
  }

let policy ?(max_attempts = default_policy.max_attempts)
    ?(base_delay = default_policy.base_delay) ?(multiplier = default_policy.multiplier)
    ?(max_delay = default_policy.max_delay) ?(jitter = default_policy.jitter) ?deadline () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if Time.is_negative base_delay then invalid_arg "Retry.policy: negative base_delay";
  if multiplier < 1.0 || not (Float.is_finite multiplier) then
    invalid_arg "Retry.policy: multiplier must be >= 1.0";
  if jitter < 0.0 || jitter > 1.0 then invalid_arg "Retry.policy: jitter must be in [0, 1]";
  { max_attempts; base_delay; multiplier; max_delay; jitter; deadline }

let backoff p ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempt is 1-based";
  let grown =
    Time.scale p.base_delay (p.multiplier ** float_of_int (attempt - 1))
  in
  Time.min grown p.max_delay

type outcome = { attempts : int; delay_total : Time.span }

let run ~sim ?prng ?(policy = default_policy) ?(retryable = fun _ -> true)
    ?(on_retry = fun ~attempt:_ ~delay:_ _ -> ()) f =
  let started = Sim.now sim in
  let delay_total = ref Time.zero in
  let over_deadline delay =
    match policy.deadline with
    | None -> false
    | Some budget ->
      Time.(Time.add (Time.diff (Sim.now sim) started) delay > budget)
  in
  let rec go attempt =
    match f ~attempt with
    | v -> (v, { attempts = attempt; delay_total = !delay_total })
    | exception e ->
      if (not (retryable e)) || attempt >= policy.max_attempts then raise e;
      let delay = backoff policy ~attempt in
      let delay =
        match prng with
        | Some prng when policy.jitter > 0.0 ->
          Time.add delay (Time.scale delay (Prng.float prng policy.jitter))
        | _ -> delay
      in
      if over_deadline delay then raise e;
      on_retry ~attempt ~delay e;
      delay_total := Time.add !delay_total delay;
      Sim.sleep delay;
      go (attempt + 1)
  in
  go 1
