type 'a task = {
  payload : 'a;
  mutable remaining : float;
  mutable rate : float;
  finished : unit Ivar.t;
  mutable live : bool;
}

type 'a change = Joined of 'a task | Left of 'a task

type 'a t = {
  sim : Sim.t;
  name : string;
  rerate : 'a t -> unit;
  mutable tasks : 'a task list; (* reversed insertion order *)
  mutable last_settle : Time.t;
  mutable timer : Sim.handle option;
  mutable rev_changes : 'a change list; (* membership deltas since last rerate *)
}

let create sim ~name ~rerate =
  {
    sim;
    name;
    rerate;
    tasks = [];
    last_settle = Sim.now sim;
    timer = None;
    rev_changes = [];
  }

let payload task = task.payload

let rate task = task.rate

let is_done task = not task.live

let set_rate task r =
  if not (r >= 0.0 && Float.is_finite r) then
    invalid_arg "Rated.set_rate: rate must be non-negative and finite";
  task.rate <- r

let active t = List.rev (List.filter (fun task -> task.live) t.tasks)

(* Advance every live task by its rate over the elapsed interval. *)
let settle t =
  let now = Sim.now t.sim in
  let dt = Time.to_sec_f (Time.diff now t.last_settle) in
  if dt > 0.0 then
    List.iter
      (fun task ->
        if task.live then
          task.remaining <- Float.max 0.0 (task.remaining -. (task.rate *. dt)))
      t.tasks;
  t.last_settle <- now

let remaining t task =
  settle t;
  task.remaining

let complete t task =
  if task.live then begin
    task.live <- false;
    t.rev_changes <- Left task :: t.rev_changes
  end;
  ignore (Ivar.fill_if_empty task.finished ())

let changes t = List.rev t.rev_changes

(* The rerate policy consumes the change log exactly once: it is cleared
   as soon as the callback returns, so an incremental policy that keeps
   per-resource task registries in sync never sees a delta twice. *)
let run_rerate t =
  t.rerate t;
  t.rev_changes <- []

(* A task is done when its remaining work is negligible relative to the
   unit scale; the argmin task forced below guarantees progress despite
   floating-point drift. *)
let eps = 1e-6

let rec reschedule t =
  (match t.timer with
  | Some h ->
    Sim.cancel h;
    t.timer <- None
  | None -> ());
  let next =
    List.fold_left
      (fun acc task ->
        if task.live && task.rate > 0.0 then
          let eta = task.remaining /. task.rate in
          match acc with
          | Some (best_eta, _) when best_eta <= eta -> acc
          | _ -> Some (eta, task)
        else acc)
      None t.tasks
  in
  match next with
  | None -> ()
  | Some (eta, task) ->
    let span = Time.of_sec_f (Float.max 0.0 eta) in
    t.timer <- Some (Sim.schedule t.sim ~after:span (fun () -> on_timer t task))

and on_timer t argmin =
  t.timer <- None;
  settle t;
  (* Rates were constant since scheduling, so the argmin task has run out
     of work (modulo rounding): force it, then sweep any ties. *)
  if argmin.live then begin
    argmin.remaining <- 0.0;
    complete t argmin
  end;
  List.iter (fun task -> if task.live && task.remaining <= eps then complete t task) t.tasks;
  t.tasks <- List.filter (fun task -> task.live) t.tasks;
  run_rerate t;
  reschedule t

let change t f =
  settle t;
  let result = f () in
  List.iter (fun task -> if task.live && task.remaining <= eps then complete t task) t.tasks;
  t.tasks <- List.filter (fun task -> task.live) t.tasks;
  run_rerate t;
  reschedule t;
  result

let add t ~payload ~work =
  if not (work >= 0.0 && Float.is_finite work) then
    invalid_arg (t.name ^ ": work must be non-negative and finite");
  change t (fun () ->
      let task =
        { payload; remaining = work; rate = 0.0; finished = Ivar.create (); live = true }
      in
      t.tasks <- task :: t.tasks;
      t.rev_changes <- Joined task :: t.rev_changes;
      task)

let await task = Ivar.read task.finished

let cancel t task =
  if task.live then
    change t (fun () ->
        complete t task)

let kick t = change t (fun () -> ())
