(** Protocol probe bus.

    A lightweight publish/subscribe channel over which model layers
    announce protocol-relevant transitions — fence entry/release, VM
    migrations, device hotplug, plan construction, fault firings — as
    plain (topic, action, subject, info) records stamped with the current
    simulation time. Unlike {!Trace}, events are structured (no string
    parsing needed to consume them) and delivery is synchronous: a
    subscriber observes the simulation exactly at the instant of the
    transition, which is what an invariant checker needs.

    When nothing is subscribed, {!emit} returns immediately without
    allocating — an idle bus costs one branch per probe site, so
    production runs pay nothing for the instrumentation. *)

type event = {
  at : Time.t;  (** simulation time at emission *)
  topic : string;  (** layer, e.g. ["fence"], ["vm"], ["qmp"], ["plan"] *)
  action : string;  (** transition, e.g. ["enter"], ["migrated"] *)
  subject : string;  (** VM or node name; [""] when not applicable *)
  info : (string * string) list;  (** further key/value detail *)
}

type t

type subscription
(** A handle identifying one attached subscriber, so it can be removed
    again. *)

val create : Sim.t -> t

val subscribe : t -> (event -> unit) -> unit
(** Subscribers are called synchronously, in subscription order, from the
    emitting fiber. They must not block. *)

val attach : t -> (event -> unit) -> subscription
(** Like {!subscribe}, but returns a handle for {!detach}. *)

val detach : t -> subscription -> unit
(** Removes the subscriber; a no-op if it was already detached. The bus
    returns to zero-cost idle once the last subscriber is gone. *)

val with_subscriber : t -> (event -> unit) -> (unit -> 'a) -> 'a
(** [with_subscriber t f body] runs [body] with [f] attached and
    guarantees detachment on exit (normal or exceptional), so a checker
    or telemetry recorder cannot leak across runs. *)

val active : t -> bool
(** Whether any subscriber is attached (probe sites may use this to skip
    expensive payload construction). *)

val emitted : t -> int
(** Events delivered so far (0 while no subscriber is attached). *)

val emit :
  t -> topic:string -> action:string -> ?subject:string -> ?info:(string * string) list ->
  unit -> unit

val info_of : event -> string -> string option

val pp : Format.formatter -> event -> unit
