(** Discrete-event simulation kernel.

    A simulation owns a virtual clock, an event queue and a set of fibers
    (lightweight processes implemented with OCaml 5 effects). Fibers run
    code that blocks on simulated conditions — {!sleep}, {!suspend}, and
    everything the higher-level primitives ({!Ivar}, {!Channel},
    {!Semaphore}, {!Ps_resource}) build on top of them.

    Determinism: events scheduled for the same instant fire in the order
    they were scheduled; a fiber wakeup is itself an event, so wakeup order
    is deterministic too. No wall-clock time is consulted anywhere.

    Domain-safety: the ambient simulation that {!sleep} and {!suspend}
    consult is domain-local, so independent simulations may run
    concurrently, one per domain (see {!Pool}). A single [t] must still
    only ever be driven from one domain at a time. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

exception Deadlock of string list
(** Raised by {!run} when the event queue drains while named fibers are
    still suspended — i.e. the modelled system has deadlocked. The payload
    lists the names of the stuck fibers. *)

val create : ?seed:int64 -> unit -> t
(** A fresh simulation at time zero. [seed] (default 1) initialises the
    simulation's PRNG. *)

val now : t -> Time.t

val prng : t -> Prng.t

val events_processed : t -> int
(** Number of events executed so far (a cheap progress / cost metric). *)

(** {1 Scheduling raw events} *)

val schedule : t -> after:Time.span -> (unit -> unit) -> handle
(** Run a thunk [after] from now. Negative spans are clamped to zero. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** Run a thunk at an absolute time, which must not be in the past. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

(** {1 Fibers} *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a new fiber at the current instant. The body runs under the
    simulation's effect handler; any exception it raises aborts the whole
    simulation run with that exception. *)

val live_fibers : t -> int

val sleep : Time.span -> unit
(** Block the calling fiber for a simulated duration. Must be called from
    inside a fiber. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] blocks the calling fiber and calls
    [register resume]. The fiber resumes (as a fresh event at the instant
    of the call) when [resume ()] is invoked. Calling [resume] more than
    once is harmless: only the first call counts. This is the single
    primitive from which all blocking abstractions are built. *)

(** {1 Running} *)

val run : t -> unit
(** Execute events until the queue is empty. Raises {!Deadlock} if fibers
    remain suspended afterwards. *)

val run_until : t -> Time.t -> unit
(** Execute events with timestamps [<=] the given time, then set the clock
    to exactly that time. Suspended fibers are not an error here — the
    simulation can be resumed with further [run_until]/[run] calls. *)

val run_for : t -> Time.span -> unit
(** [run_for t span] is [run_until t (Time.add (now t) span)]. *)
