type mode = Quick | Full

type sink = string -> unit

type t = {
  seed : int64;
  mode : mode;
  faults : string list;
  topology : string option;
  traffic : string option;
  migration : string option;
  label : string;
  trace : sink option;
  metrics : sink option;
  spans : sink option;
  observe : (string -> float -> unit) option;
  pool : Pool.t option;
}

let make ?(seed = 42L) ?(mode = Quick) ?(faults = []) ?topology ?traffic ?migration
    ?(label = "") ?trace ?metrics ?spans ?observe ?pool () =
  { seed; mode; faults; topology; traffic; migration; label; trace; metrics; spans;
    observe; pool }

let default = make ()

let quick = default

let full = make ~mode:Full ()

let with_seed seed t = { t with seed }

let with_mode mode t = { t with mode }

let with_topology topology t = { t with topology }

let with_traffic traffic t = { t with traffic }

let with_migration migration t = { t with migration }

let with_pool pool t = { t with pool }

let with_label label t = { t with label }

let with_sinks ?trace ?metrics ?spans t = { t with trace; metrics; spans }

let with_observer observe t = { t with observe }

let jobs t = match t.pool with None -> 1 | Some p -> Pool.size p

let map t ~f xs =
  match t.pool with None -> List.map f xs | Some pool -> Pool.map pool ~f xs

let trace_line t line = Option.iter (fun sink -> sink line) t.trace

let emit_metrics t chunk = Option.iter (fun sink -> sink chunk) t.metrics

let emit_spans t chunk = Option.iter (fun sink -> sink chunk) t.spans

let observe t name value = Option.iter (fun f -> f name value) t.observe
