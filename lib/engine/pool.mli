(** Fixed-size domain pool for farming out independent simulations.

    A pool owns [size - 1] worker domains plus the submitting domain
    itself: {!await} and {!map} make the caller execute queued tasks
    while it waits ("helping"), so nested fan-out — a pooled task that
    itself calls {!map} on the same pool — cannot deadlock and a pool of
    size [n] really uses [n] cores.

    Tasks must be self-contained: each one typically creates, runs and
    tears down its own {!Sim.t}. The simulation kernel keeps its
    ambient-simulation reference in domain-local storage, so any number
    of simulations may run concurrently, one per domain.

    Determinism: {!map} returns results in submission order regardless
    of completion order, so a parallel sweep over deterministic
    simulations produces output byte-identical to the serial sweep. *)

type t

type 'a future

val create : ?size:int -> unit -> t
(** [size] (default {!Domain.recommended_domain_count}, clamped to at
    least 1) is the number of domains that execute tasks, counting the
    caller. [size = 1] spawns no worker domains at all: everything runs
    in the submitting domain, inside {!await}. *)

val size : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. It runs on any pool domain (or on a caller stuck in
    {!await}); exceptions it raises are caught and re-raised by
    {!await}. *)

val await : t -> 'a future -> 'a
(** Block until the future resolves, executing other queued tasks while
    waiting. Re-raises (with its original backtrace) if the task
    failed. Do not call from inside a running simulation event. *)

val map : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map pool ~f xs] submits [f x] for every element up front, then
    awaits them in order: results line up with [xs] whatever the
    completion order. If several tasks fail, the exception of the
    earliest submitted one wins. *)

val shutdown : t -> unit
(** Stop and join the worker domains once the queue drains. Idempotent.
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)
