type t = {
  mutex : Mutex.t;
  cond : Condition.t;
      (* signalled on task submission, future resolution and shutdown *)
  tasks : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

type 'a state =
  | Pending
  | Resolved of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable state : 'a state }

(* Pop one task, or block until one arrives / the pool stops. *)
let rec worker_next pool =
  if pool.stopped && Queue.is_empty pool.tasks then None
  else
    match Queue.take_opt pool.tasks with
    | Some _ as task -> task
    | None ->
      Condition.wait pool.cond pool.mutex;
      worker_next pool

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let task = worker_next pool in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop pool

let create ?size () =
  let size =
    max 1 (match size with Some n -> n | None -> Domain.recommended_domain_count ())
  in
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [];
      size;
    }
  in
  pool.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

let submit pool f =
  let fut = { state = Pending } in
  let task () =
    let outcome =
      match f () with
      | v -> Resolved v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock pool.mutex;
    fut.state <- outcome;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  if pool.stopped then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task pool.tasks;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  fut

let await pool fut =
  Mutex.lock pool.mutex;
  let rec loop () =
    match fut.state with
    | Resolved v ->
      Mutex.unlock pool.mutex;
      v
    | Failed (e, bt) ->
      Mutex.unlock pool.mutex;
      Printexc.raise_with_backtrace e bt
    | Pending -> (
      (* Help: run queued work instead of sleeping, so nested submissions
         from inside pooled tasks always make progress. *)
      match Queue.take_opt pool.tasks with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        Mutex.lock pool.mutex;
        loop ()
      | None ->
        Condition.wait pool.cond pool.mutex;
        loop ())
  in
  loop ()

let map pool ~f xs =
  let futures = List.map (fun x -> submit pool (fun () -> f x)) xs in
  List.map (await pool) futures

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.stopped <- true;
  pool.workers <- [];
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
