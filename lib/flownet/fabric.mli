(** Flow-level network fabric with max–min fair bandwidth sharing.

    A fabric is a set of directed capacity-constrained links; a {e flow} is
    a bulk transfer routed over a list of links. Whenever the flow
    population changes (or a capacity changes), all flow rates are
    recomputed by progressive filling: repeatedly saturate the most
    contended link, freeze its flows at the fair share, and continue with
    the residual capacities. Between changes rates are constant, so flow
    completions are exact events.

    This models both MPI traffic and migration traffic sharing the same
    interconnect, which is where the paper's congestion effects (e.g.
    migration time growth under load) come from. Propagation latency is
    deliberately not modelled here — callers account for per-message
    latency separately, since it is protocol-specific. *)

type t

type link

type flow

type solver =
  | Incremental
      (** Re-run progressive filling only over the affected bottleneck set
          — the connected component (flows linked by shared links) touched
          by a join/leave/capacity change. Produces rates identical to
          [Global] (components are independent; see DESIGN), at cost
          proportional to the component instead of the fabric. *)
  | Global  (** Reference implementation: full re-solve on every change. *)

val create : ?solver:solver -> Ninja_engine.Sim.t -> t
(** Default solver is [Incremental]; pass [~solver:Global] to run the
    reference implementation (differential tests race the two). *)

val solver : t -> solver

val last_bottlenecks : t -> int list
(** Link ids frozen by the most recent re-rate, in freeze order — the
    solve's deterministic tie-break trace, exposed for tests. Under
    [Incremental] it covers only the re-solved component. *)

val add_link : t -> name:string -> capacity:float -> link
(** [capacity] in bytes per second; must be positive. *)

val links : t -> link list
(** Every link ever added, in creation order — lets an observer sweep the
    whole fabric (e.g. to check flow conservation on each link). *)

val link_name : link -> string

val link_id : link -> int
(** Unique within a fabric; stable for the link's lifetime. Useful as a
    hash/set key when reasoning about route overlap. *)

val link_capacity : link -> float

val set_link_capacity : t -> link -> float -> unit
(** Takes effect immediately; in-flight flows are re-rated. *)

val start : t -> route:link list -> bytes:float -> flow
(** Begin a transfer (non-blocking). The route must be non-empty and free
    of duplicate links. [bytes] must be non-negative. *)

val await : flow -> unit
(** Block the calling fiber until the flow completes (or is cancelled). *)

val transfer : t -> route:link list -> bytes:float -> unit
(** [start] followed by [await]. *)

val cancel : t -> flow -> unit

val rate : flow -> float
(** Current rate in bytes per second (0 before the first re-rate). *)

val is_done : flow -> bool

val active_flows : t -> int

val link_utilization : t -> link -> float
(** Sum of the current rates of flows crossing the link, in bytes/s. *)
