open Ninja_engine

type link = {
  id : int;
  name : string;
  mutable capacity : float;
  (* Scratch fields for the progressive-filling pass. *)
  mutable residual : float;
  mutable unfrozen : int;
  (* Live flows crossing this link (fid -> task), maintained by the
     incremental solver from the rated set's change log. Stays empty under
     the [Global] reference solver. *)
  flows_on : (int, info Rated.task) Hashtbl.t;
  (* Epoch stamp: equal to the state's epoch iff this link is already in
     the current rerate's affected set. Replaces a per-rerate hashtable so
     a small-fabric rerate allocates nothing beyond the work queue. *)
  mutable mark : int;
}

and info = { fid : int; route : link list; mutable fmark : int }

type solver = Incremental | Global

type state = {
  solver : solver;
  mutable dirty_links : link list; (* capacity changes since last rerate *)
  mutable freeze_log : int list; (* bottleneck ids of the last solve, reversed *)
  mutable epoch : int; (* bumped per incremental rerate; validates marks *)
}

type t = {
  set : info Rated.t;
  state : state;
  mutable next_link : int;
  mutable next_fid : int;
  mutable all_links : link list;
}

type flow = info Rated.task

(* Bottleneck choice: lexicographic minimum of (fair share, link id). A
   strictly smaller fair share wins; an exact floating-point tie goes to
   the smaller link id. Shared by both solvers, so they freeze links in
   the same order and a replay is deterministic. *)
let better (fair, l) acc =
  match acc with
  | Some (bfair, bl) when bfair < fair || (bfair = fair && bl.id < l.id) -> acc
  | _ -> Some (fair, l)

(* Progressive filling (max–min fairness) over a closed subproblem:
   [links] is exactly the union of the [flows]' routes, and [flows] are in
   insertion (fid) order — the order the global solve scans them in, so a
   component-local solve performs the identical arithmetic. Repeatedly
   pick the bottleneck link (smallest fair share = residual / unfrozen
   flows), freeze the unfrozen flows crossing it at that share, subtract
   their rate along their whole routes, and repeat until every flow is
   frozen. *)
let solve_subset state flows links =
  let n = Array.length flows in
  let routes = Array.map (fun fl -> (Rated.payload fl).route) flows in
  List.iter
    (fun l ->
      l.residual <- l.capacity;
      l.unfrozen <- 0)
    links;
  Array.iter (fun route -> List.iter (fun l -> l.unfrozen <- l.unfrozen + 1) route) routes;
  let frozen = Array.make n false in
  let remaining = ref n in
  while !remaining > 0 do
    let bottleneck =
      List.fold_left
        (fun acc l ->
          if l.unfrozen = 0 then acc
          else better (Float.max 0.0 (l.residual /. float_of_int l.unfrozen), l) acc)
        None links
    in
    match bottleneck with
    | None ->
      (* Unreachable: every unfrozen flow crosses at least one link that
         therefore has unfrozen > 0. *)
      assert false
    | Some (fair, bottleneck_link) ->
      state.freeze_log <- bottleneck_link.id :: state.freeze_log;
      for i = 0 to n - 1 do
        if (not frozen.(i)) && List.exists (fun l -> l.id = bottleneck_link.id) routes.(i)
        then begin
          frozen.(i) <- true;
          Rated.set_rate flows.(i) fair;
          decr remaining;
          List.iter
            (fun l ->
              l.residual <- Float.max 0.0 (l.residual -. fair);
              l.unfrozen <- l.unfrozen - 1)
            routes.(i)
        end
      done
  done

(* Reference solver: re-solve the whole fabric from scratch. *)
let global_rerate state set =
  let flows = Array.of_list (Rated.active set) in
  if Array.length flows > 0 then begin
    let links =
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun fl ->
          List.iter
            (fun l -> if not (Hashtbl.mem tbl l.id) then Hashtbl.add tbl l.id l)
            (Rated.payload fl).route)
        flows;
      Hashtbl.fold (fun _ l acc -> l :: acc) tbl []
    in
    solve_subset state flows links
  end

(* Incremental solver: flows partition into connected components of the
   link-sharing graph, and components are independent — freezing a flow
   never touches another component's links. So only the component(s)
   reachable from this change need re-solving; every other flow's rate is
   already exactly what a global re-solve would assign (see DESIGN). *)
let incremental_rerate state set =
  let deltas = Rated.changes set in
  let dirty = state.dirty_links in
  state.dirty_links <- [];
  state.epoch <- state.epoch + 1;
  let epoch = state.epoch in
  (* A link enters the work queue at most once per rerate: its mark is
     stamped with the current epoch on enqueue. *)
  let queue = Queue.create () in
  let seed l =
    if l.mark <> epoch then begin
      l.mark <- epoch;
      Queue.add l queue
    end
  in
  (* Sync the per-link flow registries — each membership delta arrives
     exactly once — and seed the affected set with every touched link. *)
  List.iter
    (fun delta ->
      match delta with
      | Rated.Joined fl ->
        let { fid; route; _ } = Rated.payload fl in
        List.iter
          (fun l ->
            Hashtbl.replace l.flows_on fid fl;
            seed l)
          route
      | Rated.Left fl ->
        let { fid; route; _ } = Rated.payload fl in
        List.iter
          (fun l ->
            Hashtbl.remove l.flows_on fid;
            seed l)
          route)
    deltas;
  List.iter seed dirty;
  if not (Queue.is_empty queue) then begin
    (* Close over the seeds: every flow on an affected link is affected,
       and every link of an affected flow is affected — the resulting
       subproblem is self-contained. *)
    let aff_links = ref [] in
    let aff_flows = ref [] in
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      aff_links := l :: !aff_links;
      Hashtbl.iter
        (fun _ fl ->
          let inf = Rated.payload fl in
          if inf.fmark <> epoch then begin
            inf.fmark <- epoch;
            aff_flows := fl :: !aff_flows;
            List.iter seed inf.route
          end)
        l.flows_on
    done;
    let flows =
      List.sort (fun a b -> compare (Rated.payload a).fid (Rated.payload b).fid) !aff_flows
      |> Array.of_list
    in
    if Array.length flows > 0 then solve_subset state flows !aff_links
  end

let rerate state set =
  state.freeze_log <- [];
  match state.solver with
  | Global -> global_rerate state set
  | Incremental -> incremental_rerate state set

let create ?(solver = Incremental) sim =
  let state = { solver; dirty_links = []; freeze_log = []; epoch = 0 } in
  {
    set = Rated.create sim ~name:"fabric" ~rerate:(rerate state);
    state;
    next_link = 0;
    next_fid = 0;
    all_links = [];
  }

let solver t = t.state.solver

let last_bottlenecks t = List.rev t.state.freeze_log

let add_link t ~name ~capacity =
  if not (capacity > 0.0 && Float.is_finite capacity) then
    invalid_arg "Fabric.add_link: capacity must be positive and finite";
  let id = t.next_link in
  t.next_link <- id + 1;
  let l =
    { id; name; capacity; residual = 0.0; unfrozen = 0; flows_on = Hashtbl.create 4; mark = 0 }
  in
  t.all_links <- l :: t.all_links;
  l

let links t = List.rev t.all_links

let link_name l = l.name

let link_id l = l.id

let link_capacity l = l.capacity

let set_link_capacity t l c =
  if not (c > 0.0 && Float.is_finite c) then
    invalid_arg "Fabric.set_link_capacity: capacity must be positive and finite";
  l.capacity <- c;
  (match t.state.solver with
  | Incremental -> t.state.dirty_links <- l :: t.state.dirty_links
  | Global -> ());
  Rated.kick t.set

let check_route route =
  if route = [] then invalid_arg "Fabric: empty route";
  let ids = List.map (fun l -> l.id) route in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Fabric: route contains duplicate links"

let start t ~route ~bytes =
  check_route route;
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  Rated.add t.set ~payload:{ fid; route; fmark = 0 } ~work:bytes

let await fl = Rated.await fl

let transfer t ~route ~bytes = await (start t ~route ~bytes)

let cancel t fl = Rated.cancel t.set fl

let rate fl = Rated.rate fl

let is_done fl = Rated.is_done fl

let active_flows t = List.length (Rated.active t.set)

let link_utilization t l =
  match t.state.solver with
  | Incremental ->
    (* The registry holds exactly the live flows crossing [l]. Summing in
       table order is reproducible: hashing is unseeded and the table's
       layout is a pure function of the simulation's (deterministic)
       insert/remove history, so replays and [-j N] runs see the same
       order. Checkers probe this on every event — keep it allocation-free. *)
    let total = ref 0.0 in
    Hashtbl.iter (fun _ fl -> total := !total +. Rated.rate fl) l.flows_on;
    !total
  | Global ->
    List.fold_left
      (fun acc fl ->
        if List.exists (fun l' -> l'.id = l.id) (Rated.payload fl).route then
          acc +. Rated.rate fl
        else acc)
      0.0
      (Rated.active t.set)
