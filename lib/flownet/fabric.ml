open Ninja_engine

type link = {
  id : int;
  name : string;
  mutable capacity : float;
  (* Scratch fields for the progressive-filling pass. *)
  mutable residual : float;
  mutable unfrozen : int;
}

type info = { route : link list }

type t = { set : info Rated.t; mutable next_link : int; mutable all_links : link list }

type flow = info Rated.task

(* Progressive filling (max–min fairness): repeatedly pick the link whose
   fair share (residual / unfrozen flows) is smallest, freeze the unfrozen
   flows crossing it at that share, subtract their rate along their whole
   routes, and repeat until every flow is frozen. *)
let rerate set =
  let flows = Array.of_list (Rated.active set) in
  let n = Array.length flows in
  if n > 0 then begin
    let routes = Array.map (fun fl -> (Rated.payload fl).route) flows in
    let links =
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun route ->
          List.iter (fun l -> if not (Hashtbl.mem tbl l.id) then Hashtbl.add tbl l.id l) route)
        routes;
      Hashtbl.fold (fun _ l acc -> l :: acc) tbl []
    in
    List.iter
      (fun l ->
        l.residual <- l.capacity;
        l.unfrozen <- 0)
      links;
    Array.iter (fun route -> List.iter (fun l -> l.unfrozen <- l.unfrozen + 1) route) routes;
    let frozen = Array.make n false in
    let remaining = ref n in
    while !remaining > 0 do
      (* Bottleneck link: minimum fair share among links that still carry
         unfrozen flows. Ties broken by link id for determinism. *)
      let bottleneck =
        List.fold_left
          (fun acc l ->
            if l.unfrozen = 0 then acc
            else
              let fair = Float.max 0.0 (l.residual /. float_of_int l.unfrozen) in
              match acc with
              | Some (best, bl) when best < fair || (best = fair && bl.id <= l.id) -> acc
              | _ -> Some (fair, l))
          None links
      in
      match bottleneck with
      | None ->
        (* Unreachable: every unfrozen flow crosses at least one link that
           therefore has unfrozen > 0. *)
        assert false
      | Some (fair, bottleneck_link) ->
        for i = 0 to n - 1 do
          if (not frozen.(i)) && List.exists (fun l -> l.id = bottleneck_link.id) routes.(i)
          then begin
            frozen.(i) <- true;
            Rated.set_rate flows.(i) fair;
            decr remaining;
            List.iter
              (fun l ->
                l.residual <- Float.max 0.0 (l.residual -. fair);
                l.unfrozen <- l.unfrozen - 1)
              routes.(i)
          end
        done
    done
  end

let create sim = { set = Rated.create sim ~name:"fabric" ~rerate; next_link = 0; all_links = [] }

let add_link t ~name ~capacity =
  if not (capacity > 0.0 && Float.is_finite capacity) then
    invalid_arg "Fabric.add_link: capacity must be positive and finite";
  let id = t.next_link in
  t.next_link <- id + 1;
  let l = { id; name; capacity; residual = 0.0; unfrozen = 0 } in
  t.all_links <- l :: t.all_links;
  l

let links t = List.rev t.all_links

let link_name l = l.name

let link_id l = l.id

let link_capacity l = l.capacity

let set_link_capacity t l c =
  if not (c > 0.0 && Float.is_finite c) then
    invalid_arg "Fabric.set_link_capacity: capacity must be positive and finite";
  l.capacity <- c;
  Rated.kick t.set

let check_route route =
  if route = [] then invalid_arg "Fabric: empty route";
  let ids = List.map (fun l -> l.id) route in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Fabric: route contains duplicate links"

let start t ~route ~bytes =
  check_route route;
  Rated.add t.set ~payload:{ route } ~work:bytes

let await fl = Rated.await fl

let transfer t ~route ~bytes = await (start t ~route ~bytes)

let cancel t fl = Rated.cancel t.set fl

let rate fl = Rated.rate fl

let is_done fl = Rated.is_done fl

let active_flows t = List.length (Rated.active t.set)

let link_utilization t l =
  List.fold_left
    (fun acc fl ->
      if List.exists (fun l' -> l'.id = l.id) (Rated.payload fl).route then acc +. Rated.rate fl
      else acc)
    0.0
    (Rated.active t.set)
