open Ninja_engine
open Ninja_hardware
open Ninja_telemetry
open Ninja_vmm

type kind = Direct | Stage_out | Stage_in

type step = {
  id : int;
  vm : Vm.t;
  src : Node.t;
  dst : Node.t;
  bytes : float;
  kind : kind;
}

type t = {
  mutable rev_steps : step list;
  by_id : (int, step) Hashtbl.t;
  deps : (int, int list ref) Hashtbl.t;  (* after id -> before ids *)
  dep_set : (int * int, unit) Hashtbl.t;  (* (after, before) membership *)
}

exception Cyclic of string

let create () =
  {
    rev_steps = [];
    by_id = Hashtbl.create 16;
    deps = Hashtbl.create 16;
    dep_set = Hashtbl.create 16;
  }

let length t = Hashtbl.length t.by_id

let steps t = List.rev t.rev_steps

let find t id = Hashtbl.find t.by_id id

let with_dst (s : step) ~dst = { s with dst }

let add_step t ~vm ~src ~dst ~bytes ?(kind = Direct) () =
  if bytes < 0.0 || not (Float.is_finite bytes) then
    invalid_arg "Plan.add_step: bytes must be non-negative and finite";
  let step = { id = length t; vm; src; dst; bytes; kind } in
  t.rev_steps <- step :: t.rev_steps;
  Hashtbl.add t.by_id step.id step;
  step

let owned t step =
  match Hashtbl.find_opt t.by_id step.id with Some s -> s == step | None -> false

let add_dep t ~before ~after =
  if not (owned t before && owned t after) then
    invalid_arg "Plan.add_dep: step does not belong to this plan";
  if before.id = after.id then invalid_arg "Plan.add_dep: self-dependency";
  let cell =
    match Hashtbl.find_opt t.deps after.id with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.add t.deps after.id c;
      c
  in
  if not (Hashtbl.mem t.dep_set (after.id, before.id)) then begin
    Hashtbl.add t.dep_set (after.id, before.id) ();
    cell := before.id :: !cell
  end

let dep_ids t step =
  match Hashtbl.find_opt t.deps step.id with Some c -> List.sort compare !c | None -> []

let deps_of t step = List.map (find t) (dep_ids t step)

let dependents_of t step =
  List.filter (fun s -> Hashtbl.mem t.dep_set (s.id, step.id)) (steps t)

let dep_count t = Hashtbl.fold (fun _ c acc -> acc + List.length !c) t.deps 0

let topo_order t =
  let all = steps t in
  let n = length t in
  let indeg = Array.make n 0 in
  List.iter (fun s -> indeg.(s.id) <- List.length (dep_ids t s)) all;
  (* dependents adjacency *)
  let out = Array.make n [] in
  List.iter
    (fun s -> List.iter (fun d -> out.(d) <- s.id :: out.(d)) (dep_ids t s))
    all;
  let module Ints = Set.Make (Int) in
  let ready = ref (Ints.of_list (List.filter_map (fun s -> if indeg.(s.id) = 0 then Some s.id else None) all)) in
  let order = ref [] in
  let emitted = ref 0 in
  while not (Ints.is_empty !ready) do
    let id = Ints.min_elt !ready in
    ready := Ints.remove id !ready;
    order := find t id :: !order;
    incr emitted;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then ready := Ints.add j !ready)
      out.(id)
  done;
  if !emitted <> n then begin
    let stuck =
      List.filter (fun s -> indeg.(s.id) > 0) all
      |> List.map (fun s -> Printf.sprintf "step %d (%s)" s.id (Vm.name s.vm))
    in
    raise (Cyclic (String.concat ", " stuck))
  end;
  List.rev !order

let is_acyclic t = match topo_order t with _ -> true | exception Cyclic _ -> false

let nodes_touched t =
  let module Ints = Set.Make (Int) in
  let ids =
    List.fold_left
      (fun acc s -> Ints.add s.src.Node.id (Ints.add s.dst.Node.id acc))
      Ints.empty (steps t)
  in
  let by_id = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace by_id s.src.Node.id s.src;
      Hashtbl.replace by_id s.dst.Node.id s.dst)
    (steps t);
  List.map (Hashtbl.find by_id) (Ints.elements ids)

let kind_name = function
  | Direct -> "direct"
  | Stage_out -> "stage-out"
  | Stage_in -> "stage-in"

let pp_step fmt s =
  Format.fprintf fmt "#%d %s: %s %s -> %s (%a)" s.id (kind_name s.kind) (Vm.name s.vm)
    s.src.Node.name s.dst.Node.name Units.pp_bytes s.bytes

let pp fmt t =
  Format.fprintf fmt "@[<v>plan: %d steps, %d deps" (length t) (dep_count t);
  List.iter
    (fun s ->
      Format.fprintf fmt "@,  %a" pp_step s;
      match dep_ids t s with
      | [] -> ()
      | ids ->
        Format.fprintf fmt " after {%s}" (String.concat "," (List.map string_of_int ids)))
    (steps t);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Plan construction from a placement assignment. *)

type mover = { mvm : Vm.t; msrc : Node.t; mdst : Node.t; mbytes : float }

(* Find one dependency cycle among the movers, ignoring staged movers (a
   staged mover's first step has no dependencies, so paths through it are
   already broken). Returns the cycle as a list in which each member
   depends on the next, cyclically. *)
let find_cycle ~edges ~staged m =
  let color = Array.make m 0 in
  let parent = Array.make m (-1) in
  let cycle = ref None in
  let rec dfs i =
    if !cycle = None then begin
      color.(i) <- 1;
      List.iter
        (fun j ->
          if (not staged.(j)) && !cycle = None then
            if color.(j) = 1 then begin
              let rec collect k acc = if k = j then j :: acc else collect parent.(k) (k :: acc) in
              cycle := Some (collect i [])
            end
            else if color.(j) = 0 then begin
              parent.(j) <- i;
              dfs j
            end)
        edges.(i);
      color.(i) <- 2
    end
  in
  for i = 0 to m - 1 do
    if (not staged.(i)) && color.(i) = 0 then dfs i
  done;
  !cycle

let of_assignment cluster ~vms ~dst_of ?(staging = []) ?bytes_of () =
  let trace = Cluster.trace cluster in
  let bytes_of =
    Option.value bytes_of ~default:(fun vm -> Memory.nonzero_bytes (Vm.memory vm))
  in
  let movers =
    List.filter_map
      (fun vm ->
        let src = Vm.host vm and dst = dst_of vm in
        if src.Node.id = dst.Node.id then None
        else Some { mvm = vm; msrc = src; mdst = dst; mbytes = bytes_of vm })
      vms
  in
  let movers = Array.of_list movers in
  let m = Array.length movers in
  (* Which movers currently occupy each node. Non-moving VMs never vacate,
     so they impose no ordering (packing onto an occupied node is the
     consolidation case, not a conflict). *)
  let occupants = Hashtbl.create 16 in
  Array.iteri
    (fun i mv ->
      let cur = Option.value (Hashtbl.find_opt occupants mv.msrc.Node.id) ~default:[] in
      Hashtbl.replace occupants mv.msrc.Node.id (i :: cur))
    movers;
  (* edges.(i) = movers i waits for (they occupy i's destination). *)
  let edges =
    Array.mapi
      (fun i mv ->
        Option.value (Hashtbl.find_opt occupants mv.mdst.Node.id) ~default:[]
        |> List.filter (fun j -> j <> i)
        |> List.sort compare)
      movers
  in
  (* Staging pool: free nodes that neither host a VM nor receive one. *)
  let busy = Hashtbl.create 16 in
  List.iter (fun vm -> Hashtbl.replace busy (Vm.host vm).Node.id ()) vms;
  Array.iter (fun mv -> Hashtbl.replace busy mv.mdst.Node.id ()) movers;
  let pool =
    ref
      (staging
      |> List.filter (fun (n : Node.t) -> not (Hashtbl.mem busy n.Node.id))
      |> List.sort_uniq (fun (a : Node.t) (b : Node.t) -> compare a.Node.id b.Node.id))
  in
  let staged = Array.make m false in
  let stage_node = Array.make m None in
  (* Break every conflict cycle, preferring the cheapest member. *)
  let continue = ref true in
  while !continue do
    match find_cycle ~edges ~staged m with
    | None -> continue := false
    | Some cycle ->
      let pick =
        List.fold_left
          (fun best i ->
            match best with
            | Some b
              when movers.(b).mbytes < movers.(i).mbytes
                   || (movers.(b).mbytes = movers.(i).mbytes && b < i) -> best
            | _ -> Some i)
          None cycle
        |> Option.get
      in
      (match !pool with
      | s :: rest ->
        pool := rest;
        staged.(pick) <- true;
        stage_node.(pick) <- Some s;
        Trace.recordf trace ~category:"planner" "cycle of %d broken: %s staged via %s"
          (List.length cycle)
          (Vm.name movers.(pick).mvm)
          s.Node.name
      | [] ->
        (* No refuge: drop the picked member's in-cycle edge and accept a
           transient overcommit of its destination. *)
        let rec next_of = function
          | a :: b :: _ when a = pick -> b
          | [ a ] when a = pick -> List.hd cycle
          | _ :: rest -> next_of rest
          | [] -> assert false
        in
        let dropped = next_of cycle in
        edges.(pick) <- List.filter (fun j -> j <> dropped) edges.(pick);
        Trace.recordf trace ~category:"planner"
          "cycle of %d: no staging node free, %s overcommits %s" (List.length cycle)
          (Vm.name movers.(pick).mvm)
          movers.(pick).mdst.Node.name)
  done;
  (* Materialise steps and edges. *)
  let plan = create () in
  let first_step = Array.make m None in
  let arriving_step = Array.make m None in
  Array.iteri
    (fun i mv ->
      if staged.(i) then begin
        let s = Option.get stage_node.(i) in
        let out =
          add_step plan ~vm:mv.mvm ~src:mv.msrc ~dst:s ~bytes:mv.mbytes ~kind:Stage_out ()
        in
        let in_ =
          add_step plan ~vm:mv.mvm ~src:s ~dst:mv.mdst ~bytes:mv.mbytes ~kind:Stage_in ()
        in
        add_dep plan ~before:out ~after:in_;
        first_step.(i) <- Some out;
        arriving_step.(i) <- Some in_
      end
      else begin
        let st = add_step plan ~vm:mv.mvm ~src:mv.msrc ~dst:mv.mdst ~bytes:mv.mbytes () in
        first_step.(i) <- Some st;
        arriving_step.(i) <- Some st
      end)
    movers;
  Array.iteri
    (fun i waits_for ->
      List.iter
        (fun j ->
          add_dep plan
            ~before:(Option.get first_step.(j))
            ~after:(Option.get arriving_step.(i)))
        waits_for)
    edges;
  Probe.emit (Cluster.probes cluster) ~topic:"plan" ~action:"built"
    ~info:
      [
        ("steps", string_of_int (length plan));
        ("deps", string_of_int (dep_count plan));
        ("acyclic", string_of_bool (is_acyclic plan));
      ]
    ();
  (* Plan building is pure bookkeeping — no simulated time passes — so the
     span is a zero-duration marker on the planner track. *)
  Span.emit_note (Cluster.probes cluster) ~name:"plan-build" ~cat:"planner" ~proc:"planner"
    ~thread:"plan"
    ~start:(Sim.now (Cluster.sim cluster))
    ~args:[ ("steps", string_of_int (length plan)) ] ();
  plan
