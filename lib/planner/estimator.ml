open Ninja_engine
open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type estimate = {
  wire_bytes : float;
  zero_bytes : float;
  dirty_bytes : float;
  rate : float;
  duration : Time.span;
  bottleneck : Fabric.link option;
}

let sender_demand transport = Migration.sender_rate transport

let route_between cluster ~src ~dst =
  Cluster.route cluster ~net:Cluster.Eth ~src ~dst

let route cluster (step : Plan.step) =
  route_between cluster ~src:step.Plan.src ~dst:step.Plan.dst

let thinnest_link links =
  List.fold_left
    (fun acc l ->
      match acc with
      | Some best when Fabric.link_capacity best <= Fabric.link_capacity l -> acc
      | _ -> Some l)
    None links

let estimate_move cluster ?(transport = Migration.Tcp) ~vm ~src ~dst ~bytes () =
  let memory = Vm.memory vm in
  let wire_bytes = bytes in
  let zero_bytes = Memory.zero_bytes memory in
  let dirty_bytes = Float.min (Memory.dirty_bytes memory) wire_bytes in
  let sender = sender_demand transport in
  let links = route_between cluster ~src ~dst in
  let thin = thinnest_link links in
  let link_cap = match thin with Some l -> Fabric.link_capacity l | None -> infinity in
  let rate = Float.min sender link_cap in
  let bottleneck = if link_cap < sender then thin else None in
  let transfer_sec = (wire_bytes +. dirty_bytes) /. rate in
  let scan_sec = zero_bytes /. Calibration.zero_scan_rate in
  {
    wire_bytes;
    zero_bytes;
    dirty_bytes;
    rate;
    duration = Time.of_sec_f (transfer_sec +. scan_sec);
    bottleneck;
  }

let estimate cluster ?transport (step : Plan.step) =
  estimate_move cluster ?transport ~vm:step.Plan.vm ~src:step.Plan.src ~dst:step.Plan.dst
    ~bytes:step.Plan.bytes ()

let shared_links cluster a b =
  let rb = route cluster b in
  List.filter
    (fun l -> List.exists (fun l' -> Fabric.link_id l' = Fabric.link_id l) rb)
    (route cluster a)

let contention cluster plan =
  let loads = Hashtbl.create 16 in
  List.iter
    (fun (s : Plan.step) ->
      List.iter
        (fun l ->
          let id = Fabric.link_id l in
          let cur = match Hashtbl.find_opt loads id with Some (_, b) -> b | None -> 0.0 in
          Hashtbl.replace loads id (l, cur +. s.Plan.bytes))
        (route cluster s))
    (Plan.steps plan);
  Hashtbl.fold (fun _ lb acc -> lb :: acc) loads []
  |> List.sort (fun (la, ba) (lb, bb) ->
         match compare bb ba with 0 -> compare (Fabric.link_id la) (Fabric.link_id lb) | c -> c)

let link_load loads link =
  match
    List.find_opt (fun (l, _) -> Fabric.link_id l = Fabric.link_id link) loads
  with
  | Some (_, b) -> b
  | None -> 0.0

let sequential_duration cluster ?transport plan =
  List.fold_left
    (fun acc s -> Time.add acc (estimate cluster ?transport s).duration)
    Time.zero (Plan.steps plan)
