open Ninja_engine
open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type t = { name : string; aliases : string list; doc : string; cost : Cost_model.t }

type impl = Cost_model.env -> Plan.t -> Plan.t

(* Append-only; guarded so registration from two domains cannot tear the
   list. Reads are unsynchronised single-word loads of an immutable list —
   register strategies before spawning solver-running domains. *)
let registry : (t * impl) list ref = ref []

let registry_mutex = Mutex.create ()

let register ~name ?(aliases = []) ?(doc = "") ?(cost = Cost_model.Migration_time) impl =
  let canon s = String.lowercase_ascii (String.trim s) in
  let name = canon name in
  let handle = { name; aliases = List.map canon aliases; doc; cost } in
  if name = "" then invalid_arg "Solver.register: empty name";
  Mutex.protect registry_mutex (fun () ->
      let taken s =
        List.exists (fun (h, _) -> h.name = s || List.mem s h.aliases) !registry
      in
      List.iter
        (fun s ->
          if taken s then
            invalid_arg (Printf.sprintf "Solver.register: strategy %S already registered" s))
        (name :: handle.aliases);
      registry := !registry @ [ (handle, impl) ]);
  handle

let all () = List.map fst !registry

let names () = List.map (fun h -> h.name) (all ())

let help () = String.concat "|" (names ())

let name h = h.name

let doc h = h.doc

let cost_model h = h.cost

let of_string s =
  let key = String.lowercase_ascii (String.trim s) in
  match
    List.find_opt (fun (h, _) -> h.name = key || List.mem key h.aliases) !registry
  with
  | Some (h, _) -> Ok h
  | None -> Error (Printf.sprintf "unknown strategy %S (expected %s)" s (help ()))

let impl_of h =
  match List.find_opt (fun (h', _) -> h'.name = h.name) !registry with
  | Some (_, impl) -> impl
  | None -> invalid_arg (Printf.sprintf "Solver: strategy %S is not registered" h.name)

(* ---- sequential ---- *)

let sequential_impl _env plan =
  let rec chain = function
    | a :: (b :: _ as rest) ->
      Plan.add_dep plan ~before:a ~after:b;
      chain rest
    | [] | [ _ ] -> ()
  in
  chain (Plan.topo_order plan);
  plan

(* ---- grouped ---- *)

(* Greedy wave packing. Steps are released in dependency order (Kahn);
   among the released steps the most contended work goes first, and each
   step lands in the earliest wave where (a) all its plan dependencies
   are in strictly earlier waves and (b) adding its standalone rate
   oversubscribes no fabric link used by that wave. *)
let grouped_waves cluster ?transport plan =
  let steps = Plan.steps plan in
  let n = Plan.length plan in
  if n = 0 then []
  else begin
    let est = Array.make n None in
    List.iter
      (fun (s : Plan.step) ->
        est.(s.Plan.id) <- Some (Estimator.estimate cluster ?transport s))
      steps;
    let est i = Option.get est.(i) in
    let loads = Estimator.contention cluster plan in
    let hot_load (s : Plan.step) =
      List.fold_left
        (fun acc l -> Float.max acc (Estimator.link_load loads l))
        0.0
        (Estimator.route cluster s)
    in
    let priority = Array.make n 0.0 in
    let bytes = Array.make n 0.0 in
    List.iter
      (fun (s : Plan.step) ->
        priority.(s.Plan.id) <- hot_load s;
        bytes.(s.Plan.id) <- s.Plan.bytes)
      steps;
    let better a b =
      (* Larger footprint on the more contended link first; id for ties. *)
      priority.(a) > priority.(b)
      || (priority.(a) = priority.(b)
         && (bytes.(a) > bytes.(b) || (bytes.(a) = bytes.(b) && a < b)))
    in
    let indeg = Array.make n 0 in
    let out = Array.make n [] in
    List.iter
      (fun (s : Plan.step) ->
        let ds = Plan.deps_of plan s in
        indeg.(s.Plan.id) <- List.length ds;
        List.iter (fun (d : Plan.step) -> out.(d.Plan.id) <- s.Plan.id :: out.(d.Plan.id)) ds)
      steps;
    let ready = ref (List.filter_map (fun (s : Plan.step) -> if indeg.(s.Plan.id) = 0 then Some s.Plan.id else None) steps) in
    let wave = Array.make n 0 in
    let usage : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
    let fits w (s : Plan.step) demand =
      List.for_all
        (fun l ->
          let used = Option.value (Hashtbl.find_opt usage (w, Fabric.link_id l)) ~default:0.0 in
          used +. demand <= Fabric.link_capacity l +. 1e-6)
        (Estimator.route cluster s)
    in
    let occupy w (s : Plan.step) demand =
      List.iter
        (fun l ->
          let key = (w, Fabric.link_id l) in
          let used = Option.value (Hashtbl.find_opt usage key) ~default:0.0 in
          Hashtbl.replace usage key (used +. demand))
        (Estimator.route cluster s)
    in
    let max_wave = ref 0 in
    while !ready <> [] do
      let id = List.fold_left (fun best i -> if better i best then i else best) (List.hd !ready) !ready in
      ready := List.filter (fun i -> i <> id) !ready;
      let s = Plan.find plan id in
      let floor =
        List.fold_left
          (fun acc (d : Plan.step) -> max acc (wave.(d.Plan.id) + 1))
          1 (Plan.deps_of plan s)
      in
      let demand = (est id).Estimator.rate in
      let w = ref floor in
      while not (fits !w s demand) do
        incr w
      done;
      wave.(id) <- !w;
      occupy !w s demand;
      if !w > !max_wave then max_wave := !w;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then ready := j :: !ready)
        out.(id)
    done;
    List.init !max_wave (fun i ->
        List.filter (fun (s : Plan.step) -> wave.(s.Plan.id) = i + 1) steps)
  end

let grouped_impl (env : Cost_model.env) plan =
  let waves = grouped_waves env.Cost_model.cluster ~transport:env.Cost_model.transport plan in
  let rec order earlier = function
    | [] -> ()
    | wave :: rest ->
      List.iter
        (fun (s : Plan.step) ->
          List.iter
            (fun (s' : Plan.step) ->
              if Estimator.shared_links env.Cost_model.cluster s s' <> [] then
                Plan.add_dep plan ~before:s' ~after:s)
            earlier)
        wave;
      order (earlier @ wave) rest
  in
  order [] waves;
  plan

(* ---- swap ---- *)

let swap_horizon = Cost_model.default_horizon

(* Greedy best-swap-first hill climb over destination exchanges. Each
   pass scans every pair of direct steps and applies the single exchange
   with the largest positive net gain (communication saving over the
   horizon minus the extra migration seconds); deterministic because ties
   keep the first (lowest-index) maximum. Destination multisets are
   invariant under exchanges, so per-node load is exactly what the
   original assignment committed to. *)
let swap_impl (env : Cost_model.env) plan =
  let cluster = env.Cost_model.cluster in
  let directs =
    Array.of_list
      (List.filter (fun (s : Plan.step) -> s.Plan.kind = Plan.Direct) (Plan.steps plan))
  in
  let n = Array.length directs in
  if n < 2 || env.Cost_model.traffic = [] then grouped_impl env plan
  else begin
    let proposal = Array.map (fun (s : Plan.step) -> s.Plan.dst) directs in
    let index_of_vm : (string, int) Hashtbl.t = Hashtbl.create n in
    Array.iteri
      (fun i (s : Plan.step) -> Hashtbl.replace index_of_vm (Vm.name s.Plan.vm) i)
      directs;
    (* Staged VMs and bystanders resolve through the original plan's final
       placement; direct movers through the live proposal. *)
    let base_lookup = Cost_model.plan_placement env plan in
    let place name =
      match Hashtbl.find_opt index_of_vm name with
      | Some i -> Some proposal.(i)
      | None -> base_lookup name
    in
    let pair_cache : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let pair_cost a b =
      let key =
        if a.Node.id <= b.Node.id then (a.Node.id, b.Node.id) else (b.Node.id, a.Node.id)
      in
      match Hashtbl.find_opt pair_cache key with
      | Some c -> c
      | None ->
        let c = Cost_model.pair_cost env a b in
        Hashtbl.add pair_cache key c;
        c
    in
    let traffic = Array.of_list env.Cost_model.traffic in
    let incident = Array.make n [] in
    Array.iteri
      (fun ti (a, b, _) ->
        (match Hashtbl.find_opt index_of_vm a with
        | Some i -> incident.(i) <- ti :: incident.(i)
        | None -> ());
        match Hashtbl.find_opt index_of_vm b with
        | Some j -> if not (List.mem ti incident.(j)) then incident.(j) <- ti :: incident.(j)
        | None -> ())
      traffic;
    let entry_cost lookup ti =
      let a, b, rate = traffic.(ti) in
      match (lookup a, lookup b) with
      | Some na, Some nb -> rate *. pair_cost na nb
      | _ -> 0.0
    in
    let comm_around i j lookup =
      List.sort_uniq compare (incident.(i) @ incident.(j))
      |> List.fold_left (fun acc ti -> acc +. entry_cost lookup ti) 0.0
    in
    let mig i dst =
      let s = directs.(i) in
      if s.Plan.src.Node.id = dst.Node.id then 0.0
      else
        Cost_model.move_seconds env ~vm:s.Plan.vm ~src:s.Plan.src ~dst ~bytes:s.Plan.bytes
          ()
    in
    (* Net gain of exchanging the proposed destinations of i and j;
       [neg_infinity] vetoes the pair. Fabric classes never mix: a VM the
       planner aimed at an IB-capable host keeps one (the PR-4 reroute
       bug family made this a hard invariant). *)
    let gain i j =
      let di = proposal.(i) and dj = proposal.(j) in
      if di.Node.id = dj.Node.id then neg_infinity
      else if Node.has_ib di <> Node.has_ib dj then neg_infinity
      else begin
        let vi = Vm.name directs.(i).Plan.vm and vj = Vm.name directs.(j).Plan.vm in
        let swapped name =
          if String.equal name vi then Some dj
          else if String.equal name vj then Some di
          else place name
        in
        let saved = comm_around i j place -. comm_around i j swapped in
        let mig_delta = mig i dj +. mig j di -. mig i di -. mig j dj in
        (swap_horizon *. saved) -. mig_delta
      end
    in
    let swaps = ref 0 in
    let pass_limit = (4 * n) + 16 in
    let continue_ = ref true in
    let passes = ref 0 in
    while !continue_ && !passes < pass_limit do
      incr passes;
      let best_gain = ref 1e-9 and best = ref None in
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          let g = gain i j in
          if g > !best_gain then begin
            best_gain := g;
            best := Some (i, j)
          end
        done
      done;
      (match !best with
      | Some (i, j) ->
        let d = proposal.(i) in
        proposal.(i) <- proposal.(j);
        proposal.(j) <- d;
        incr swaps
      | None -> continue_ := false)
    done;
    if !swaps = 0 then grouped_impl env plan
    else begin
      (* Rebuild a conflict-correct plan for the adjusted assignment; the
         original plan's staging choices and byte estimates carry over. *)
      let final : (string, Node.t) Hashtbl.t = Hashtbl.create n in
      let bytes : (string, float) Hashtbl.t = Hashtbl.create n in
      let staging = ref [] in
      let vms = ref [] in
      List.iter
        (fun (s : Plan.step) ->
          let nm = Vm.name s.Plan.vm in
          (match s.Plan.kind with
          | Plan.Direct ->
            Hashtbl.replace final nm proposal.(Hashtbl.find index_of_vm nm);
            Hashtbl.replace bytes nm s.Plan.bytes
          | Plan.Stage_in -> Hashtbl.replace final nm s.Plan.dst
          | Plan.Stage_out ->
            Hashtbl.replace bytes nm s.Plan.bytes;
            if not (List.exists (fun (x : Node.t) -> x.Node.id = s.Plan.dst.Node.id) !staging)
            then staging := s.Plan.dst :: !staging);
          if not (List.exists (fun v -> String.equal (Vm.name v) nm) !vms) then
            vms := s.Plan.vm :: !vms)
        (Plan.steps plan);
      let vms = List.rev !vms in
      let plan' =
        Plan.of_assignment cluster ~vms
          ~dst_of:(fun vm -> Hashtbl.find final (Vm.name vm))
          ~staging:(List.rev !staging)
          ~bytes_of:(fun vm -> Hashtbl.find bytes (Vm.name vm))
          ()
      in
      let probes = Cluster.probes cluster in
      if Probe.active probes then
        Probe.emit probes ~topic:"plan" ~action:"swap"
          ~info:
            [
              ("swaps", string_of_int !swaps);
              ("passes", string_of_int !passes);
              ("movers", string_of_int n);
            ]
          ();
      grouped_impl env plan'
    end
  end

(* ---- registry bootstrap ---- *)

let sequential =
  register ~name:"sequential" ~aliases:[ "seq" ]
    ~doc:"one migration at a time, in dependency order" ~cost:Cost_model.Migration_time
    sequential_impl

let grouped =
  register ~name:"grouped" ~aliases:[ "group" ]
    ~doc:"bandwidth-aware parallel waves; no fabric link oversubscribed"
    ~cost:Cost_model.Migration_time grouped_impl

let swap =
  register ~name:"swap" ~aliases:[ "destination-swap" ]
    ~doc:"adaptive destination exchanges minimising tenant communication cost"
    ~cost:(Cost_model.Composite { horizon = swap_horizon })
    swap_impl

let default = grouped

let stat probes name v =
  Probe.emit probes ~topic:"ctl" ~action:"stat" ~subject:name
    ~info:[ ("kind", "gauge"); ("value", Printf.sprintf "%.17g" v) ]
    ()

let solve h cluster ?transport ?(traffic = []) plan =
  let env = Cost_model.env cluster ?transport ~traffic () in
  let impl = impl_of h in
  let probes = Cluster.probes cluster in
  if not (Probe.active probes) then impl env plan
  else begin
    let before = Cost_model.plan_cost h.cost env plan in
    let plan = impl env plan in
    let after = Cost_model.plan_cost h.cost env plan in
    stat probes "plan.cost.before" before;
    stat probes "plan.cost.after" after;
    Probe.emit probes ~topic:"plan" ~action:"cost"
      ~info:
        [
          ("strategy", h.name);
          ("model", Cost_model.describe h.cost);
          ("before", Printf.sprintf "%.17g" before);
          ("after", Printf.sprintf "%.17g" after);
        ]
      ();
    plan
  end
