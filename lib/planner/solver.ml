open Ninja_flownet

type strategy = Sequential | Grouped

let all = [ Sequential; Grouped ]

let name = function Sequential -> "sequential" | Grouped -> "grouped"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sequential" | "seq" -> Ok Sequential
  | "grouped" | "group" -> Ok Grouped
  | other -> Error (Printf.sprintf "unknown strategy %S (expected sequential|grouped)" other)

let sequential plan =
  let rec chain = function
    | a :: (b :: _ as rest) ->
      Plan.add_dep plan ~before:a ~after:b;
      chain rest
    | [] | [ _ ] -> ()
  in
  chain (Plan.topo_order plan);
  plan

(* Greedy wave packing. Steps are released in dependency order (Kahn);
   among the released steps the most contended work goes first, and each
   step lands in the earliest wave where (a) all its plan dependencies
   are in strictly earlier waves and (b) adding its standalone rate
   oversubscribes no fabric link used by that wave. *)
let grouped_waves cluster ?transport plan =
  let steps = Plan.steps plan in
  let n = Plan.length plan in
  if n = 0 then []
  else begin
    let est = Array.make n None in
    List.iter
      (fun (s : Plan.step) ->
        est.(s.Plan.id) <- Some (Estimator.estimate cluster ?transport s))
      steps;
    let est i = Option.get est.(i) in
    let loads = Estimator.contention cluster plan in
    let hot_load (s : Plan.step) =
      List.fold_left
        (fun acc l -> Float.max acc (Estimator.link_load loads l))
        0.0
        (Estimator.route cluster s)
    in
    let priority = Array.make n 0.0 in
    let bytes = Array.make n 0.0 in
    List.iter
      (fun (s : Plan.step) ->
        priority.(s.Plan.id) <- hot_load s;
        bytes.(s.Plan.id) <- s.Plan.bytes)
      steps;
    let better a b =
      (* Larger footprint on the more contended link first; id for ties. *)
      priority.(a) > priority.(b)
      || (priority.(a) = priority.(b)
         && (bytes.(a) > bytes.(b) || (bytes.(a) = bytes.(b) && a < b)))
    in
    let indeg = Array.make n 0 in
    let out = Array.make n [] in
    List.iter
      (fun (s : Plan.step) ->
        let ds = Plan.deps_of plan s in
        indeg.(s.Plan.id) <- List.length ds;
        List.iter (fun (d : Plan.step) -> out.(d.Plan.id) <- s.Plan.id :: out.(d.Plan.id)) ds)
      steps;
    let ready = ref (List.filter_map (fun (s : Plan.step) -> if indeg.(s.Plan.id) = 0 then Some s.Plan.id else None) steps) in
    let wave = Array.make n 0 in
    let usage : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
    let fits w (s : Plan.step) demand =
      List.for_all
        (fun l ->
          let used = Option.value (Hashtbl.find_opt usage (w, Fabric.link_id l)) ~default:0.0 in
          used +. demand <= Fabric.link_capacity l +. 1e-6)
        (Estimator.route cluster s)
    in
    let occupy w (s : Plan.step) demand =
      List.iter
        (fun l ->
          let key = (w, Fabric.link_id l) in
          let used = Option.value (Hashtbl.find_opt usage key) ~default:0.0 in
          Hashtbl.replace usage key (used +. demand))
        (Estimator.route cluster s)
    in
    let max_wave = ref 0 in
    while !ready <> [] do
      let id = List.fold_left (fun best i -> if better i best then i else best) (List.hd !ready) !ready in
      ready := List.filter (fun i -> i <> id) !ready;
      let s = Plan.find plan id in
      let floor =
        List.fold_left
          (fun acc (d : Plan.step) -> max acc (wave.(d.Plan.id) + 1))
          1 (Plan.deps_of plan s)
      in
      let demand = (est id).Estimator.rate in
      let w = ref floor in
      while not (fits !w s demand) do
        incr w
      done;
      wave.(id) <- !w;
      occupy !w s demand;
      if !w > !max_wave then max_wave := !w;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then ready := j :: !ready)
        out.(id)
    done;
    List.init !max_wave (fun i ->
        List.filter (fun (s : Plan.step) -> wave.(s.Plan.id) = i + 1) steps)
  end

let grouped cluster ?transport plan =
  let waves = grouped_waves cluster ?transport plan in
  let rec order earlier = function
    | [] -> ()
    | wave :: rest ->
      List.iter
        (fun (s : Plan.step) ->
          List.iter
            (fun (s' : Plan.step) ->
              if Estimator.shared_links cluster s s' <> [] then
                Plan.add_dep plan ~before:s' ~after:s)
            earlier)
        wave;
      order (earlier @ wave) rest
  in
  order [] waves;
  plan

let solve strategy cluster ?transport plan =
  match strategy with
  | Sequential -> sequential plan
  | Grouped -> grouped cluster ?transport plan
