open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type step_result = {
  step : Plan.step;
  started : Time.t;
  finished : Time.t;
  stats : Migration.stats;
}

type report = {
  started : Time.t;
  finished : Time.t;
  makespan : Time.span;
  total_downtime : Time.span;
  total_wire_bytes : float;
  step_results : step_result list;
}

exception Step_failed of string

let default_max_per_host = 4

let default_run_step transport (step : Plan.step) =
  match Qmp.execute step.Plan.vm (Qmp.Migrate { dst = step.Plan.dst; transport }) with
  | Qmp.Migrated stats -> stats
  | Qmp.Error msg ->
    raise (Step_failed (Printf.sprintf "%s: %s" (Vm.name step.Plan.vm) msg))
  | Qmp.Ok_empty | Qmp.Elapsed _ | Qmp.Status _ ->
    raise (Step_failed "unexpected QMP response to migrate")

(* Permits for the step's endpoints, in global node-id order: fibers never
   hold a high-id permit while waiting for a lower one, so permit waits
   cannot form a cycle even at max_per_host = 1. *)
let permit_nodes (step : Plan.step) =
  let src = step.Plan.src and dst = step.Plan.dst in
  if src.Node.id = dst.Node.id then [ src ]
  else if src.Node.id < dst.Node.id then [ src; dst ]
  else [ dst; src ]

let run cluster ?(transport = Migration.Tcp) ?(max_per_host = default_max_per_host)
    ?run_step plan =
  if max_per_host <= 0 then invalid_arg "Executor.run: max_per_host must be positive";
  ignore (Plan.topo_order plan);
  let sim = Cluster.sim cluster in
  let trace = Cluster.trace cluster in
  let run_step = Option.value run_step ~default:(default_run_step transport) in
  let steps = Plan.steps plan in
  let started = Sim.now sim in
  let sems : (int, Semaphore.t) Hashtbl.t = Hashtbl.create 8 in
  let sem (n : Node.t) =
    match Hashtbl.find_opt sems n.Node.id with
    | Some s -> s
    | None ->
      let s = Semaphore.create max_per_host in
      Hashtbl.add sems n.Node.id s;
      s
  in
  let done_ivars : (int, step_result Ivar.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (s : Plan.step) -> Hashtbl.add done_ivars s.Plan.id (Ivar.create ())) steps;
  let completed = ref [] in
  List.iter
    (fun (s : Plan.step) ->
      Sim.spawn sim
        ~name:(Printf.sprintf "plan-step-%d-%s" s.Plan.id (Vm.name s.Plan.vm))
        (fun () ->
          List.iter
            (fun (d : Plan.step) ->
              ignore (Ivar.read (Hashtbl.find done_ivars d.Plan.id)))
            (Plan.deps_of plan s);
          let nodes = permit_nodes s in
          List.iter (fun n -> Semaphore.acquire (sem n)) nodes;
          let t0 = Sim.now sim in
          Trace.recordf trace ~category:"planner" "%a starts" Plan.pp_step s;
          let stats = run_step s in
          (* Release before waking dependents so a freed permit is visible
             to them even at max_per_host = 1. *)
          List.iter (fun n -> Semaphore.release (sem n)) nodes;
          let finished = Sim.now sim in
          let result = { step = s; started = t0; finished; stats } in
          completed := result :: !completed;
          Trace.recordf trace ~category:"planner" "%a done in %a" Plan.pp_step s Time.pp
            (Time.diff finished t0);
          Ivar.fill (Hashtbl.find done_ivars s.Plan.id) result))
    steps;
  List.iter
    (fun (s : Plan.step) -> ignore (Ivar.read (Hashtbl.find done_ivars s.Plan.id)))
    steps;
  let finished = Sim.now sim in
  let step_results = List.rev !completed in
  {
    started;
    finished;
    makespan = Time.diff finished started;
    total_downtime =
      List.fold_left
        (fun acc r -> Time.add acc r.stats.Migration.downtime)
        Time.zero step_results;
    total_wire_bytes =
      List.fold_left (fun acc r -> acc +. r.stats.Migration.transferred_bytes) 0.0 step_results;
    step_results;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d steps, makespan %a, downtime %a, %a on the wire"
    (List.length r.step_results) Time.pp r.makespan Time.pp r.total_downtime Units.pp_bytes
    r.total_wire_bytes;
  List.iter
    (fun (sr : step_result) ->
      Format.fprintf fmt "@,  [%a .. %a] %a" Time.pp sr.started Time.pp sr.finished
        Plan.pp_step sr.step)
    r.step_results;
  Format.fprintf fmt "@]"
