open Ninja_engine
open Ninja_hardware
open Ninja_telemetry
open Ninja_vmm

type step_result = {
  step : Plan.step;
  started : Time.t;
  finished : Time.t;
  stats : Migration.stats;
}

type report = {
  started : Time.t;
  finished : Time.t;
  makespan : Time.span;
  total_downtime : Time.span;
  total_wire_bytes : float;
  step_results : step_result list;
  retries : int;
  retry_delay : Time.span;
  permits_leaked : int;
}

exception Step_failed of { step_id : int; vm : string; dst : string; reason : string }

let () =
  Printexc.register_printer (function
    | Step_failed { step_id; vm; dst; reason } ->
        Some (Printf.sprintf "step %d (%s -> %s): %s" step_id vm dst reason)
    | _ -> None)

let default_max_per_host = 4

let fail_of (step : Plan.step) reason =
  Step_failed
    {
      step_id = step.Plan.id;
      vm = Vm.name step.Plan.vm;
      dst = step.Plan.dst.Node.name;
      reason;
    }

(* A staged VM crosses two hops back to back. Running those hops
   postcopy would commit an irreversible switchover onto a scratch
   staging node, then immediately commit a second one — doubling the
   window in which a source death loses the VM, and stranding it on the
   staging node if the chain fails between hops. Staged hops therefore
   always run precopy; only Direct steps honour the requested mode. *)
let step_mode mode (step : Plan.step) =
  match step.Plan.kind with
  | Plan.Direct -> mode
  | Plan.Stage_out | Plan.Stage_in -> Migration.Precopy

let default_run_step transport mode (step : Plan.step) =
  let mode = step_mode mode step in
  match Qmp.execute step.Plan.vm (Qmp.Migrate { dst = step.Plan.dst; transport; mode }) with
  | Qmp.Migrated stats -> stats
  | Qmp.Error msg -> raise (fail_of step msg)
  | Qmp.Ok_empty | Qmp.Elapsed _ | Qmp.Status _ ->
      raise (fail_of step "unexpected QMP response to migrate")

(* Permits for the step's endpoints, in global node-id order: fibers never
   hold a high-id permit while waiting for a lower one, so permit waits
   cannot form a cycle even at max_per_host = 1. *)
let permit_nodes (step : Plan.step) =
  let src = step.Plan.src and dst = step.Plan.dst in
  if src.Node.id = dst.Node.id then [ src ]
  else if src.Node.id < dst.Node.id then [ src; dst ]
  else [ dst; src ]

let run cluster ?(transport = Migration.Tcp) ?(mode = Migration.Precopy)
    ?(max_per_host = default_max_per_host) ?run_step ?(retry = Retry.default_policy)
    ?reroute plan =
  if max_per_host <= 0 then invalid_arg "Executor.run: max_per_host must be positive";
  ignore (Plan.topo_order plan);
  let sim = Cluster.sim cluster in
  let trace = Cluster.trace cluster in
  let probes = Cluster.probes cluster in
  let run_step = Option.value run_step ~default:(default_run_step transport mode) in
  let steps = Plan.steps plan in
  let started = Sim.now sim in
  let sems : (int, Semaphore.t) Hashtbl.t = Hashtbl.create 8 in
  let sem (n : Node.t) =
    match Hashtbl.find_opt sems n.Node.id with
    | Some s -> s
    | None ->
      let s = Semaphore.create max_per_host in
      Hashtbl.add sems n.Node.id s;
      s
  in
  (* Completion ivars carry no payload and are filled on success AND on
     terminal failure: dependents always get to run (the simulated hosts
     tolerate overcommit), so an injected failure can never deadlock the
     executor — it surfaces as [Step_failed] from the calling fiber after
     every step has settled. *)
  let done_ivars : (int, unit Ivar.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (s : Plan.step) -> Hashtbl.add done_ivars s.Plan.id (Ivar.create ())) steps;
  let completed = ref [] in
  let failures = ref [] in
  let retries = ref 0 in
  let retry_delay = ref Time.zero in
  List.iter
    (fun (s : Plan.step) ->
      Sim.spawn sim
        ~name:(Printf.sprintf "plan-step-%d-%s" s.Plan.id (Vm.name s.Plan.vm))
        (fun () ->
          List.iter
            (fun (d : Plan.step) ->
              ignore (Ivar.read (Hashtbl.find done_ivars d.Plan.id)))
            (Plan.deps_of plan s);
          let fail (step : Plan.step) reason =
            failures := (step, reason) :: !failures;
            Trace.recordf trace ~category:"planner" "step %d (%s -> %s) failed: %s"
              step.Plan.id (Vm.name step.Plan.vm) step.Plan.dst.Node.name reason
          in
          (* A dead destination is not retried in place: the replanner (if
             any) supplies a live substitute and the step carries on. *)
          let reroute_or_fail (step : Plan.step) reason =
            match reroute with
            | None ->
                fail step reason;
                None
            | Some f -> (
                match f step with
                | Some (n : Node.t) when Cluster.node_alive cluster n ->
                    Trace.recordf trace ~category:"planner"
                      "step %d (%s) rerouted %s -> %s: %s" step.Plan.id
                      (Vm.name step.Plan.vm) step.Plan.dst.Node.name n.Node.name reason;
                    Some (Plan.with_dst step ~dst:n)
                | _ ->
                    fail step reason;
                    None)
          in
          let rec attempt (step : Plan.step) attempt_no =
            let step =
              if Cluster.node_alive cluster step.Plan.dst then Some step
              else
                reroute_or_fail step
                  (Printf.sprintf "destination %s is dead" step.Plan.dst.Node.name)
            in
            match step with
            | None -> ()
            | Some step -> (
                let nodes = permit_nodes step in
                List.iter (fun n -> Semaphore.acquire (sem n)) nodes;
                let t0 = Sim.now sim in
                Trace.recordf trace ~category:"planner" "%a starts" Plan.pp_step step;
                (* One span per attempt, on the step's source track, where
                   the VMM migration span it triggers will nest under it. *)
                let span_name = Printf.sprintf "step-%d" step.Plan.id in
                let proc = step.Plan.src.Node.name and thread = Vm.name step.Plan.vm in
                Span.emit_begin probes ~name:span_name ~cat:"executor" ~proc ~thread
                  ~args:
                    [
                      ("dst", step.Plan.dst.Node.name);
                      ("attempt", string_of_int attempt_no);
                    ]
                  ();
                match
                  Fun.protect
                    ~finally:(fun () ->
                      Span.emit_end probes ~name:span_name ~proc ~thread ())
                    (fun () -> run_step step)
                with
                | stats ->
                    (* Release before waking dependents so a freed permit is
                       visible to them even at max_per_host = 1. *)
                    List.iter (fun n -> Semaphore.release (sem n)) nodes;
                    let finished = Sim.now sim in
                    let result = { step; started = t0; finished; stats } in
                    completed := result :: !completed;
                    Trace.recordf trace ~category:"planner" "%a done in %a" Plan.pp_step
                      step Time.pp (Time.diff finished t0)
                | exception exn ->
                    List.iter (fun n -> Semaphore.release (sem n)) nodes;
                    let reason =
                      match exn with
                      | Step_failed f -> f.reason
                      | exn -> Printexc.to_string exn
                    in
                    if attempt_no >= retry.Retry.max_attempts then
                      fail step
                        (Printf.sprintf "%s (after %d attempts)" reason attempt_no)
                    else if not (Cluster.node_alive cluster step.Plan.dst) then (
                      match reroute_or_fail step reason with
                      | Some step' ->
                          incr retries;
                          attempt step' (attempt_no + 1)
                      | None -> ())
                    else begin
                      let delay = Retry.backoff retry ~attempt:attempt_no in
                      incr retries;
                      retry_delay := Time.add !retry_delay delay;
                      Trace.recordf trace ~category:"planner"
                        "step %d (%s -> %s) attempt %d failed: %s; retrying in %a"
                        step.Plan.id (Vm.name step.Plan.vm) step.Plan.dst.Node.name
                        attempt_no reason Time.pp delay;
                      Span.emit_begin probes ~name:"backoff" ~cat:"executor"
                        ~proc:step.Plan.src.Node.name ~thread:(Vm.name step.Plan.vm)
                        ~args:[ ("step", string_of_int step.Plan.id) ] ();
                      Sim.sleep delay;
                      Span.emit_end probes ~name:"backoff" ~proc:step.Plan.src.Node.name
                        ~thread:(Vm.name step.Plan.vm) ();
                      attempt step (attempt_no + 1)
                    end)
          in
          attempt s 1;
          Ivar.fill (Hashtbl.find done_ivars s.Plan.id) ()))
    steps;
  List.iter
    (fun (s : Plan.step) -> ignore (Ivar.read (Hashtbl.find done_ivars s.Plan.id)))
    steps;
  let finished = Sim.now sim in
  let step_results = List.rev !completed in
  let permits_leaked =
    Hashtbl.fold (fun _ s acc -> acc + (max_per_host - Semaphore.available s)) sems 0
  in
  (* The probe fires before any [Step_failed] is raised so an observer sees
     the permit balance even when the run fails. *)
  Probe.emit probes ~topic:"executor" ~action:"report"
    ~info:
      [
        ("steps", string_of_int (List.length step_results));
        ("failures", string_of_int (List.length !failures));
        ("retries", string_of_int !retries);
        ("permits-leaked", string_of_int permits_leaked);
      ]
    ();
  (match List.rev !failures with
  | [] -> ()
  | (step, reason) :: _ -> raise (fail_of step reason));
  {
    started;
    finished;
    makespan = Time.diff finished started;
    total_downtime =
      List.fold_left
        (fun acc r -> Time.add acc r.stats.Migration.downtime)
        Time.zero step_results;
    total_wire_bytes =
      List.fold_left (fun acc r -> acc +. r.stats.Migration.transferred_bytes) 0.0 step_results;
    step_results;
    retries = !retries;
    retry_delay = !retry_delay;
    permits_leaked;
  }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d steps, makespan %a, downtime %a, %a on the wire"
    (List.length r.step_results) Time.pp r.makespan Time.pp r.total_downtime Units.pp_bytes
    r.total_wire_bytes;
  if r.retries > 0 then
    Format.fprintf fmt " (%d retries, %a lost)" r.retries Time.pp r.retry_delay;
  List.iter
    (fun (sr : step_result) ->
      Format.fprintf fmt "@,  [%a .. %a] %a" Time.pp sr.started Time.pp sr.finished
        Plan.pp_step sr.step)
    r.step_results;
  Format.fprintf fmt "@]"
