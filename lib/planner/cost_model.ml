open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type traffic = (string * string * float) list

type t = Migration_time | Communication | Composite of { horizon : float }

let default_horizon = 600.0

let describe = function
  | Migration_time -> "migration-time"
  | Communication -> "communication"
  | Composite { horizon } -> Printf.sprintf "composite(horizon=%gs)" horizon

type env = {
  cluster : Cluster.t;
  transport : Migration.transport;
  traffic : traffic;
}

let env cluster ?(transport = Migration.Tcp) ?(traffic = []) () =
  { cluster; transport; traffic }

(* Residual capacity floored at 1% so a saturated link prices as "very
   expensive", not as an absorbing infinity that would make every
   placement containing it incomparable. *)
let residual fabric l =
  let cap = Fabric.link_capacity l in
  Float.max (0.01 *. cap) (cap -. Fabric.link_utilization fabric l)

let pair_cost e a b =
  if Node.(a.id = b.id) then 0.0
  else
    match Cluster.route_opt e.cluster ~net:Cluster.Eth ~src:a ~dst:b with
    | None -> infinity
    | Some links ->
      let fabric = Cluster.fabric e.cluster in
      List.fold_left (fun acc l -> acc +. (1.0 /. residual fabric l)) 0.0 links

let placement_cost e ~lookup =
  List.fold_left
    (fun acc (a, b, rate) ->
      match (lookup a, lookup b) with
      | Some na, Some nb -> acc +. (rate *. pair_cost e na nb)
      | _ -> acc)
    0.0 e.traffic

let current_cost e = placement_cost e ~lookup:(fun name -> Cluster.vm_node e.cluster ~name)

let move_seconds e ~vm ~src ~dst ?bytes () =
  if Node.(src.id = dst.id) then 0.0
  else
    let bytes =
      match bytes with Some b -> b | None -> Memory.nonzero_bytes (Vm.memory vm)
    in
    let est =
      Estimator.estimate_move e.cluster ~transport:e.transport ~vm ~src ~dst ~bytes ()
    in
    Ninja_engine.Time.to_sec_f est.Estimator.duration

let plan_seconds e plan =
  Ninja_engine.Time.to_sec_f
    (Estimator.sequential_duration e.cluster ~transport:e.transport plan)

let plan_placement e plan =
  let final : (string, Node.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Plan.step) ->
      match s.Plan.kind with
      | Plan.Direct | Plan.Stage_in -> Hashtbl.replace final (Vm.name s.Plan.vm) s.Plan.dst
      | Plan.Stage_out -> ())
    (Plan.steps plan);
  fun name ->
    match Hashtbl.find_opt final name with
    | Some n -> Some n
    | None -> Cluster.vm_node e.cluster ~name

let plan_cost model e plan =
  match model with
  | Migration_time -> plan_seconds e plan
  | Communication -> placement_cost e ~lookup:(plan_placement e plan)
  | Composite { horizon } ->
    plan_seconds e plan +. (horizon *. placement_cost e ~lookup:(plan_placement e plan))
