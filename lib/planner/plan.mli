(** Migration plan IR: a DAG of per-VM migration steps.

    A batch migration (evacuation, consolidation, rebalance) is expressed
    as a set of {!step}s — (vm, src, dst, estimated wire bytes) — plus
    explicit dependency edges. An edge [before -> after] means [after] may
    not start until [before] has completed. {!of_assignment} derives the
    edges a correct batch needs:

    - {e destination-capacity conflicts}: when the destination of step A
      is currently occupied by the VM of step B, A waits for B to vacate
      (first-step of B precedes the arriving step of A);
    - {e swap/chain cycles}: when the conflict edges form a cycle (A→B and
      B→A, or longer rotations), one member of the cycle is re-routed
      through a free {e staging} node — two steps, [Stage_out] to the
      staging node and [Stage_in] to the final destination — which breaks
      the cycle (the destination-swap strategy of Avin et al.,
      arXiv:1309.5826). With no staging node available the weakest
      conflict edge is dropped instead (a deliberate, traced overcommit —
      hosts in this model can hold several VMs).

    Solvers ({!Solver}) add further {e ordering} edges on top to shape
    parallelism; the IR does not distinguish the two kinds. *)

open Ninja_hardware
open Ninja_vmm

type kind =
  | Direct  (** one hop, src → final destination *)
  | Stage_out  (** first hop of a staged VM: src → staging node *)
  | Stage_in  (** second hop of a staged VM: staging node → destination *)

type step = private {
  id : int;  (** dense, 0-based, in creation order *)
  vm : Vm.t;
  src : Node.t;
  dst : Node.t;
  bytes : float;  (** estimated wire bytes (non-zero page footprint) *)
  kind : kind;
}

type t

exception Cyclic of string
(** Raised by {!topo_order} on a cyclic plan; the payload names the steps
    involved. *)

val create : unit -> t

val add_step :
  t -> vm:Vm.t -> src:Node.t -> dst:Node.t -> bytes:float -> ?kind:kind -> unit -> step

val add_dep : t -> before:step -> after:step -> unit
(** Idempotent; raises [Invalid_argument] on a self-edge or foreign step. *)

val length : t -> int

val steps : t -> step list
(** In creation order. *)

val find : t -> int -> step
(** By id; raises [Not_found]. *)

val with_dst : step -> dst:Node.t -> step
(** A copy of the step aimed at a different destination — how the
    executor reroutes a step around a dead node. The copy shares the
    original's id, so plan dependencies keep applying to it. *)

val deps_of : t -> step -> step list
(** Steps that must complete before the given step starts. *)

val dependents_of : t -> step -> step list

val dep_count : t -> int
(** Total number of edges. *)

val is_acyclic : t -> bool

val nodes_touched : t -> Node.t list
(** Every node appearing as a step source or destination (staging nodes
    included), deduplicated and sorted by node id — the footprint a
    control plane must lock so concurrent plans never overlap. *)

val topo_order : t -> step list
(** Dependency-respecting order, deterministic (ties broken by id).
    Raises {!Cyclic}. *)

val of_assignment :
  Cluster.t ->
  vms:Vm.t list ->
  dst_of:(Vm.t -> Node.t) ->
  ?staging:Node.t list ->
  ?bytes_of:(Vm.t -> float) ->
  unit ->
  t
(** Build the plan for moving each VM to [dst_of vm]. VMs already on
    their destination contribute no step. [staging] lists candidate free
    nodes for cycle breaking (nodes that host a VM or serve as a
    destination are filtered out); [bytes_of] defaults to the VM's
    non-zero memory footprint. The result is acyclic. *)

val kind_name : kind -> string

val pp_step : Format.formatter -> step -> unit

val pp : Format.formatter -> t -> unit
