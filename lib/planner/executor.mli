(** Fiber-based plan executor.

    Runs a solved plan inside the simulation: one fiber per step, each
    blocking on the completion of its dependencies, then on per-host
    concurrency permits ([max_per_host] migrations may touch a node at
    once — a migration holds a permit on both its source and destination,
    acquired in node-id order so permit waits can never cycle). Steps
    execute through the VM's QEMU monitor by default, exactly as the
    per-VM SymVirt agents do, and the executor records a per-step trace
    plus timing so experiments can report makespan, per-step latency and
    aggregate downtime.

    Failures are recoverable: a step that errors is re-attempted under the
    [retry] policy, a step whose destination node has died is handed to
    the [reroute] replanner for a live substitute, and a step that still
    cannot complete is recorded without blocking its dependents — every
    completion ivar is filled on success and failure alike, so an injected
    fault can never deadlock the executor. Terminal failures surface as
    {!Step_failed} raised from the calling fiber after all steps settle
    (never from inside a step fiber, which would abort the simulation). *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type step_result = {
  step : Plan.step;
      (** the step as executed — its [dst] reflects any reroute *)
  started : Time.t;
  finished : Time.t;
  stats : Migration.stats;
}

type report = {
  started : Time.t;
  finished : Time.t;
  makespan : Time.span;  (** first step release to last step completion *)
  total_downtime : Time.span;  (** sum of per-step stop-and-copy pauses *)
  total_wire_bytes : float;
  step_results : step_result list;  (** in completion order *)
  retries : int;  (** re-attempts (including reroutes) across all steps *)
  retry_delay : Time.span;  (** total backoff slept between attempts *)
  permits_leaked : int;
      (** per-host permits not returned by completion; always 0 — reported
          so tests can assert the invariant under injected faults *)
}

exception
  Step_failed of { step_id : int; vm : string; dst : string; reason : string }
(** Carries the identity of the first terminally-failed step: its plan
    step id, the VM being moved and the destination node it could not
    reach. *)

val default_max_per_host : int

val step_mode : Migration.mode -> Plan.step -> Migration.mode
(** The mode a step actually migrates under when the caller requested
    [mode]: [Direct] steps honour the request, [Stage_out]/[Stage_in]
    hops of a broken swap cycle are always demoted to {!Migration.Precopy}
    — a postcopy switchover commits irreversibly, and committing onto a
    scratch staging node mid-chain would strand the VM there if the
    second hop never runs. *)

val run :
  Cluster.t ->
  ?transport:Migration.transport ->
  ?mode:Migration.mode ->
  ?max_per_host:int ->
  ?run_step:(Plan.step -> Migration.stats) ->
  ?retry:Retry.policy ->
  ?reroute:(Plan.step -> Node.t option) ->
  Plan.t ->
  report
(** Execute every step; blocks the calling fiber until the last one
    settles. Must be called from inside a fiber. The plan must be acyclic
    (checked up front, raising {!Plan.Cyclic} rather than deadlocking the
    simulation). [run_step] overrides how a single step is performed
    (default: a [migrate] QMP command to the VM's monitor). A failing step
    is re-attempted under [retry] (default {!Retry.default_policy}); when
    its destination is dead, [reroute] is asked for a replacement node
    (a [None] answer, or no [reroute], makes the failure terminal). If any
    step failed terminally, raises {!Step_failed} for the first of them
    after all steps have settled. *)

val pp_report : Format.formatter -> report -> unit
