(** Fiber-based plan executor.

    Runs a solved plan inside the simulation: one fiber per step, each
    blocking on the completion of its dependencies, then on per-host
    concurrency permits ([max_per_host] migrations may touch a node at
    once — a migration holds a permit on both its source and destination,
    acquired in node-id order so permit waits can never cycle). Steps
    execute through the VM's QEMU monitor by default, exactly as the
    per-VM SymVirt agents do, and the executor records a per-step trace
    plus timing so experiments can report makespan, per-step latency and
    aggregate downtime. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type step_result = {
  step : Plan.step;
  started : Time.t;
  finished : Time.t;
  stats : Migration.stats;
}

type report = {
  started : Time.t;
  finished : Time.t;
  makespan : Time.span;  (** first step release to last step completion *)
  total_downtime : Time.span;  (** sum of per-step stop-and-copy pauses *)
  total_wire_bytes : float;
  step_results : step_result list;  (** in completion order *)
}

exception Step_failed of string

val default_max_per_host : int

val run :
  Cluster.t ->
  ?transport:Migration.transport ->
  ?max_per_host:int ->
  ?run_step:(Plan.step -> Migration.stats) ->
  Plan.t ->
  report
(** Execute every step; blocks the calling fiber until the last one
    completes. Must be called from inside a fiber. The plan must be
    acyclic (checked up front, raising {!Plan.Cyclic} rather than
    deadlocking the simulation). [run_step] overrides how a single step
    is performed (default: a [migrate] QMP command to the VM's monitor);
    it raises {!Step_failed} on a monitor error. *)

val pp_report : Format.formatter -> report -> unit
