(** Per-step cost model for migration plans.

    Predicts, from the same parameters {!Ninja_vmm.Migration} itself uses
    — non-zero footprint, zero-page scan rate, residual dirty set, the
    single-threaded sender rate — and from the {!Ninja_flownet.Fabric}
    link capacities along the step's Ethernet route, how long a step takes
    when it has the fabric to itself, and which steps contend for the same
    bottleneck links. Solvers use these estimates to order and group
    steps; the executor then measures reality. *)

open Ninja_engine
open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type estimate = {
  wire_bytes : float;  (** non-zero pages that cross the wire *)
  zero_bytes : float;  (** pages the sender detects/compresses at scan rate *)
  dirty_bytes : float;  (** residual dirty set, re-sent in stop-and-copy *)
  rate : float;
      (** bytes/s the step achieves alone: min of the sender rate and the
          thinnest fabric link on the route *)
  duration : Time.span;  (** zero scan + (wire + dirty) transfer at [rate] *)
  bottleneck : Fabric.link option;
      (** the fabric link that caps [rate], or [None] when the
          single-threaded sender itself is the bottleneck *)
}

val sender_demand : Migration.transport -> float
(** Peak fabric demand of one migration (the sender's private rate). *)

val route_between : Cluster.t -> src:Node.t -> dst:Node.t -> Fabric.link list
(** The shared Ethernet path between two hosts (the per-migration private
    sender hop is excluded). *)

val route : Cluster.t -> Plan.step -> Fabric.link list
(** Fabric links the step's migration traffic crosses
    ({!route_between} the step's source and destination). *)

val estimate_move :
  Cluster.t ->
  ?transport:Migration.transport ->
  vm:Vm.t ->
  src:Node.t ->
  dst:Node.t ->
  bytes:float ->
  unit ->
  estimate
(** Cost of a hypothetical migration before any {!Plan.step} exists —
    what a destination-swapping solver prices when it weighs moving [vm]
    to a different host than the plan proposed. *)

val estimate : Cluster.t -> ?transport:Migration.transport -> Plan.step -> estimate

val shared_links : Cluster.t -> Plan.step -> Plan.step -> Fabric.link list
(** Fabric links the two steps would contend on (empty = link-disjoint). *)

val contention : Cluster.t -> Plan.t -> (Fabric.link * float) list
(** Total wire bytes each fabric link must carry across the whole plan,
    most contended first (ties broken by link id). *)

val link_load : (Fabric.link * float) list -> Fabric.link -> float
(** Lookup in a {!contention} result; 0 for an unlisted link. *)

val sequential_duration : Cluster.t -> ?transport:Migration.transport -> Plan.t -> Time.span
(** Sum of the standalone step durations — the makespan of a strictly
    serial schedule, and an upper bound for any work-conserving one. *)
