(** Pluggable cost models for plan solvers.

    A strategy is "solve + cost model": the solver shapes the plan, the
    cost model says what it is optimising. Three models ship:

    - [Migration_time] — the classic objective, seconds of migration work
      as priced by {!Estimator} (sum of standalone step durations). What
      [sequential] and [grouped] have always minimised implicitly.
    - [Communication] — steady-state tenant communication cost of the
      {e placement} the plan ends in. Tenant traffic matrices (VM-pair
      demand rates, see {!Ninja_workloads.Traffic} for generators) are
      priced over the {!Ninja_flownet.Fabric} routes between the hosts
      the VMs land on, weighted by residual link capacity, so demand
      crossing congested oversubscribed spine links costs more than
      demand staying inside a rack.
    - [Composite] — migration seconds plus communication cost amortised
      over a [horizon] of steady-state seconds: the objective of the
      destination-swap strategy (Avin et al., arXiv:1309.5826), which
      accepts a swap exactly when the communication saving over the
      horizon exceeds the extra migration time it costs.

    Traffic matrices are plain data — [(vm_a, vm_b, bytes_per_sec)]
    triples keyed by VM {e name} — so workload generators can produce
    them without depending on this library. *)

open Ninja_hardware
open Ninja_vmm

type traffic = (string * string * float) list
(** Undirected demand entries [(vm_a, vm_b, rate)] in bytes/s. Entries
    whose endpoints share a host cost nothing; VM names unknown to the
    cluster registry are ignored. *)

type t =
  | Migration_time
  | Communication
  | Composite of { horizon : float }
      (** [horizon] — seconds of steady-state communication one unit of
          migration time trades against. *)

val default_horizon : float
(** 600 s: a swap must pay for itself within ten minutes of traffic. *)

val describe : t -> string

(** {1 Evaluation environment} *)

type env = {
  cluster : Cluster.t;
  transport : Migration.transport;
  traffic : traffic;
}

val env :
  Cluster.t -> ?transport:Migration.transport -> ?traffic:traffic -> unit -> env
(** [transport] defaults to [Migration.Tcp], [traffic] to the empty
    matrix (under which [Communication] costs are all zero). *)

(** {1 Cost primitives} *)

val pair_cost : env -> Node.t -> Node.t -> float
(** Cost per byte/s of demand between two hosts: 0 on the same node,
    otherwise the sum over the Ethernet route's links of
    [1 / residual capacity] (residual floored at 1% of capacity so a
    saturated link is expensive, not infinite). A demand rate multiplied
    by this is the fraction of link-seconds it consumes per second —
    dimensionless, comparable across placements. *)

val placement_cost : env -> lookup:(string -> Node.t option) -> float
(** Total communication cost of a placement: sum over traffic entries of
    [rate *. pair_cost] between the hosts [lookup] assigns the
    endpoints. Entries with an unresolvable endpoint contribute 0. *)

val current_cost : env -> float
(** {!placement_cost} of the placement the cluster's VM registry
    currently records. *)

val move_seconds :
  env -> vm:Vm.t -> src:Node.t -> dst:Node.t -> ?bytes:float -> unit -> float
(** Estimated seconds to migrate [vm] from [src] to [dst] ([bytes]
    defaults to the VM's non-zero footprint); 0 when [src] and [dst] are
    the same node. *)

val plan_seconds : env -> Plan.t -> float
(** {!Estimator.sequential_duration} in seconds — the migration-time
    component of a plan's cost. *)

val plan_placement : env -> Plan.t -> (string -> Node.t option)
(** The placement the plan ends in: each moved VM at its final
    destination (a staged VM at its [Stage_in] target), every other
    registered VM where the cluster registry has it. *)

val plan_cost : t -> env -> Plan.t -> float
(** The model's objective for a plan: migration seconds, communication
    cost of {!plan_placement}, or their horizon-weighted sum. *)
