(** Plan scheduling strategies: a registry of pluggable, cost-model-driven
    solvers.

    A strategy takes a plan whose edges encode only {e correctness}
    (capacity conflicts, staging chains) and rewrites it — adding
    {e ordering} edges that shape how much of it may run concurrently,
    and possibly re-aiming steps at different destinations — guided by an
    explicit {!Cost_model}. Strategies are only reachable through the
    registry: {!register} is the single way to mint a handle, and
    {!of_string}/{!all} (and therefore every CLI flag, scenario grammar
    and experiment grid built on them) enumerate exactly what has been
    registered. Three strategies ship:

    - [sequential] — a total chain, one migration at a time in dependency
      order. The pre-planner baseline behaviour of a scheduler that walks
      its VM list serially. Cost model: migration time.
    - [grouped] — bandwidth-aware greedy bin-packing (after Wang et al.,
      arXiv:1412.4980): steps are packed into maximal parallel waves such
      that no fabric link is oversubscribed — the sum of the member
      steps' standalone rates stays within every shared link's capacity —
      processing the most contended work first (largest footprint on the
      most loaded link). Steps in different waves that share a link are
      ordered by an edge; link-disjoint steps run freely in parallel.
      Cost model: migration time.
    - [swap] — adaptive destination exchanges (Avin/Dunay/Schmid,
      arXiv:1309.5826): starting from the plan's proposed assignment,
      repeatedly exchange the destinations of the two steps whose swap
      most reduces tenant communication cost (priced by {!Cost_model}
      over fabric routes and residual capacities) net of the migration
      time the exchange costs, until no exchange pays for itself within
      the cost model's horizon. Exchanges never cross fabric classes (an
      IB-planned VM keeps an IB-capable destination). The surviving
      assignment is rebuilt into a fresh conflict-correct plan and then
      grouped-wave packed. Cost model: composite. *)

open Ninja_hardware
open Ninja_vmm

type t
(** A registered strategy handle: plain comparable data (no closures), so
    scenarios can embed it, compare it with structural equality and
    shrink over it. Obtain one from {!register}, {!of_string} or the
    built-ins below. *)

val register :
  name:string ->
  ?aliases:string list ->
  ?doc:string ->
  ?cost:Cost_model.t ->
  (Cost_model.env -> Plan.t -> Plan.t) ->
  t
(** Mint and register a strategy. The implementation receives the
    evaluation environment (cluster, transport, traffic matrix) and the
    correctness plan; it must return an acyclic plan (the same value,
    mutated, or a rebuilt one). [cost] (default [Migration_time])
    declares the objective, which {!solve} also uses for the
    [plan.cost.*] telemetry. Names and aliases are lowercased and must
    be unique across the registry; registration must happen before
    domains race on {!solve}. Raises [Invalid_argument] on a duplicate
    or empty name. *)

val all : unit -> t list
(** Registration order; the built-ins first. *)

val names : unit -> string list

val help : unit -> string
(** The canonical names joined with ["|"] — for CLI docs and error
    messages, so a newly registered strategy shows up everywhere without
    touching call sites. *)

val name : t -> string

val doc : t -> string

val cost_model : t -> Cost_model.t

val of_string : string -> (t, string) result
(** Case-insensitive lookup by name or alias; the error message
    enumerates the currently registered names. *)

val sequential : t

val grouped : t

val swap : t

val default : t
(** [grouped]. *)

val grouped_waves :
  Cluster.t -> ?transport:Migration.transport -> Plan.t -> Plan.step list list
(** The wave decomposition [grouped] would use, for inspection: wave [i]
    steps only contend with steps in earlier waves. Call it on the unsolved
    plan — ordering edges added by {!solve} count as dependencies and
    would refine the result. *)

val solve :
  t ->
  Cluster.t ->
  ?transport:Migration.transport ->
  ?traffic:Cost_model.traffic ->
  Plan.t ->
  Plan.t
(** Run the strategy. The input plan may be mutated; callers must use the
    {e returned} plan (a destination-rewriting strategy builds a fresh
    one). The result is acyclic whenever the input is. When the cluster's
    probe bus is live, emits [plan.cost.before]/[plan.cost.after] gauges
    (the strategy's own cost model) and a [plan]/[cost] event. *)
