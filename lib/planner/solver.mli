(** Plan scheduling strategies.

    A solver takes a plan whose edges encode only {e correctness}
    (capacity conflicts, staging chains) and adds {e ordering} edges that
    shape how much of it may run concurrently. Two strategies ship:

    - [Sequential] — a total chain, one migration at a time in dependency
      order. The pre-planner baseline behaviour of a scheduler that walks
      its VM list serially.
    - [Grouped] — bandwidth-aware greedy bin-packing (after Wang et al.,
      arXiv:1412.4980): steps are packed into maximal parallel waves such
      that no fabric link is oversubscribed — the sum of the member
      steps' standalone rates stays within every shared link's capacity —
      processing the most contended work first (largest footprint on the
      most loaded link). Steps in different waves that share a link are
      ordered by an edge; link-disjoint steps run freely in parallel. *)

open Ninja_hardware
open Ninja_vmm

type strategy = Sequential | Grouped

val all : strategy list

val name : strategy -> string

val of_string : string -> (strategy, string) result

val grouped_waves :
  Cluster.t -> ?transport:Migration.transport -> Plan.t -> Plan.step list list
(** The wave decomposition [Grouped] would use, for inspection: wave [i]
    steps only contend with steps in earlier waves. Call it on the unsolved
    plan — ordering edges added by {!solve} count as dependencies and
    would refine the result. *)

val solve :
  strategy -> Cluster.t -> ?transport:Migration.transport -> Plan.t -> Plan.t
(** Mutates (and returns) the plan, adding ordering edges. The result is
    acyclic whenever the input is. *)
