(** Exporters: Chrome trace-event JSON and the span-derived breakdown.

    The JSON follows the trace-event format that Perfetto and
    chrome://tracing load: ["X"] complete events for spans, ["i"]
    instant events for plain probe events, ["M"] metadata naming each
    process/thread track, timestamps in microseconds of {e simulated}
    time. Track ids are stable string hashes of the track names, so
    fragments produced independently (different simulations, different
    domains) concatenate into one consistent file without renumbering —
    which is what keeps pooled runs byte-identical to serial ones. *)

open Ninja_engine

val fragment :
  ?track_prefix:string ->
  ?instants:Probe.event list ->
  ?upto:Time.t ->
  Span.t list ->
  string
(** Renders span trees (plus instants) as comma-separated trace-event
    objects — a fragment of a [traceEvents] array, [""] when there is
    nothing to render. [track_prefix] namespaces every process track
    (e.g. ["fig6#0/"] for sweep point 0), keeping simulations apart in
    one file. Spans still open are closed at [upto] (default: the
    latest stop/start in the input) and marked ["unfinished"]. *)

val document : string list -> string
(** Wraps fragments (empty ones are dropped) into a complete JSON
    object: [{"displayTimeUnit": "ms", "traceEvents": [...]}]. *)

val recorder_fragment : ?track_prefix:string -> Recorder.t -> string
(** [fragment] of everything a recorder collected. *)

val breakdown_of_root : Span.t -> Ninja_metrics.Breakdown.t
(** Re-derives the paper's overhead decomposition from a migration root
    span: [coordination]/[detach]/[migration]/[attach]/[linkup] are the
    durations of the direct children named ["coordination"],
    ["detach"], ["precopy"], ["attach"], ["link-up"] (zero when
    absent); [retry] is the ["rollback"] child's duration plus every
    ["retry"]-category span outside the rollback subtree (failed
    attempts and backoff sleeps — the rollback's own inner retries are
    part of its duration already); [total] is the root's duration.
    Raises [Invalid_argument] on an unfinished span. *)
