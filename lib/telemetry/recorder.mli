(** Probe-bus telemetry recorder.

    Subscribes to a cluster's {!Ninja_engine.Probe} bus and turns the
    event stream into

    - {b span trees}, reassembled per track from the ["span"] topic's
      begin/end/note events (the same trees the emitting {!Span.scope}
      builds locally), and
    - a {b metrics registry}: protocol counters (migrations
      started/completed/rolled back/given up, precopied bytes, fault
      firings, executor step totals), the fence-residency and per-phase
      latency histograms, and a high-water gauge of VMs per fence.

    Every event that is not a span transition is kept as an instant for
    the exporter, so a trace file shows fence entries, QMP commands,
    fault firings and node deaths on their tracks alongside the spans. *)

open Ninja_engine

type t

val create : unit -> t

val on_event : t -> Probe.event -> unit
(** The subscriber; attach it with {!Probe.attach} or
    {!Probe.with_subscriber} (or use {!attach}). *)

val attach : t -> Probe.t -> Probe.subscription

val roots : t -> Span.t list
(** Reconstructed top-level spans in begin order, across all tracks;
    spans whose end never arrived are still open. *)

val open_spans : t -> int

val instants : t -> Probe.event list
(** Non-span events in arrival order. *)

val metrics : t -> Metrics.t

val anomalies : t -> string list
(** Mismatched or unmatched span ends — evidence of a broken emitter. *)

val last_at : t -> Time.t
(** Timestamp of the newest event ([Time.zero] before any). *)

val events_seen : t -> int
