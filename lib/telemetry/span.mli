(** Hierarchical timing spans.

    A span is a named sim-time interval on a track — a (process, thread)
    pair mirroring how trace viewers group timelines: one process per
    node (or component), one thread per VM (or role). Spans nest: a
    migration root span contains one child per protocol phase, a phase
    contains its retry attempts and backoff sleeps, and so on.

    Spans exist in two forms that share one wire encoding:

    - {b local trees}, built inline by model code through a {!scope} —
      always constructed (a handful of allocations per migration, no
      simulation effect), so [Ninja.migrate] can derive its returned
      [Breakdown.t] from the tree without any bus subscriber; and
    - {b probe events} (topic ["span"], actions ["begin"]/["end"]/
      ["note"]), mirrored by the scope only while the bus is observed —
      an idle bus still costs one branch per site — and reassembled into
      identical trees by {!Recorder}. *)

open Ninja_engine

type t = {
  name : string;
  cat : string;  (** taxonomy bucket: ["phase"], ["retry"], ["rollback"], ["vmm"], ... *)
  proc : string;  (** track process, e.g. a node name or ["ninja"] *)
  thread : string;  (** track thread, e.g. a VM name *)
  start : Time.t;
  mutable stop : Time.t option;  (** [None] while the span is open *)
  mutable args : (string * string) list;
  mutable rev_children : t list;
}

val create :
  name:string -> cat:string -> proc:string -> thread:string -> start:Time.t ->
  ?args:(string * string) list -> unit -> t

val finish : t -> at:Time.t -> ?args:(string * string) list -> unit -> unit
(** Closes the span, appending [args]. Raises [Invalid_argument] if it is
    already finished or [at] precedes its start. *)

val finished : t -> bool

val duration : t -> Time.span
(** Raises [Invalid_argument] on an open span. *)

val add_child : t -> t -> unit

val children : t -> t list
(** In creation order. *)

val iter : (t -> unit) -> t -> unit
(** Preorder traversal of the whole tree. *)

val find_child : t -> string -> t option
(** First direct child with the given name. *)

val well_formed : t -> string list
(** Structural problems of the tree, empty when sound: every span must be
    finished with [stop >= start], and every child interval must lie
    within its parent's. *)

(** {2 Probe-bus mirroring}

    The wire encoding reserves the info keys ["cat"], ["proc"], ["tid"]
    and ["start"]; any other pair is a span argument. All three emitters
    are no-ops while the bus is idle. *)

val emit_begin :
  Probe.t -> name:string -> cat:string -> proc:string -> thread:string ->
  ?args:(string * string) list -> unit -> unit

val emit_end :
  Probe.t -> name:string -> proc:string -> thread:string ->
  ?args:(string * string) list -> unit -> unit

val emit_note :
  Probe.t -> name:string -> cat:string -> proc:string -> thread:string ->
  start:Time.t -> ?args:(string * string) list -> unit -> unit
(** A retroactive, already-closed span [start .. now] — used where an
    interval is only known after the fact (a failed attempt, link-up),
    since bus events themselves must carry monotone timestamps. *)

(** {2 Scoped builder}

    One scope per instrumented flow: it keeps the open-span stack for a
    single track, builds the local tree, and mirrors every operation to
    the probe bus when one is given (and observed). *)

type scope

val scope : ?probes:Probe.t -> sim:Sim.t -> proc:string -> thread:string -> unit -> scope

val enter : scope -> name:string -> cat:string -> ?args:(string * string) list -> unit -> t
(** Opens a child of the innermost open span (a new root when none). *)

val exit_ : scope -> ?args:(string * string) list -> t -> unit
(** Closes [s] at the current sim time. Any span opened after [s] and
    still open is closed first (exception unwinding). Raises
    [Invalid_argument] if [s] is not on the stack. *)

val note :
  scope -> name:string -> cat:string -> start:Time.t ->
  ?args:(string * string) list -> unit -> t
(** Records a closed child [start .. now] of the innermost open span. *)

val roots : scope -> t list
(** Top-level spans in creation order (open ones included). *)
