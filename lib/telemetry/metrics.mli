(** Named metrics registry: counters, gauges, histograms.

    One registry per run (simulation), mergeable across a sweep. The
    merge operations are commutative — counters add, gauges keep the
    high-water mark, histograms pool their samples and compute their
    statistics on the {e sorted} sample — so merging per-domain
    registries in any order renders identical output, which is what
    keeps pooled runs byte-identical to serial ones.

    All operations take the registry lock; the callbacks are safe to use
    from pooled domains. *)

type t

type kind = Counter | Gauge | Histogram

val create : unit -> t

val incr : t -> ?by:float -> string -> unit
(** Counter += [by] (default 1.0). *)

val gauge : t -> string -> float -> unit
(** High-water gauge: keeps [max current value] so that merge order
    cannot matter. *)

val observe : t -> string -> float -> unit
(** Appends a sample to a histogram. *)

val kind_of : t -> string -> kind option

val value : t -> string -> float option
(** Current value of a counter or gauge; [None] for absent names and
    histograms. *)

val samples : t -> string -> float list
(** A histogram's samples in recording order; [[]] for absent names.
    Raises [Invalid_argument] on a counter or gauge. *)

val names : t -> string list
(** Sorted. *)

val merge_into : into:t -> t -> unit
(** Folds [t] into [into]. Raises [Invalid_argument] when a name is
    registered with different kinds in the two registries. *)

val to_table : t -> Ninja_metrics.Table.t
(** One row per metric, sorted by name, with nearest-rank p50/p95/p99
    for histograms. Deterministic for a given set of recorded values
    regardless of histogram insertion order. *)

val to_csv : t -> string

val is_empty : t -> bool
