open Ninja_metrics

type kind = Counter | Gauge | Histogram

type cell =
  | Count of float ref
  | High of float ref
  | Samples of float list ref  (* newest first *)

type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

let create () = { mutex = Mutex.create (); cells = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let kind_name = function
  | Count _ -> "counter"
  | High _ -> "gauge"
  | Samples _ -> "histogram"

(* Under the lock. *)
let cell t name make =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add t.cells name c;
    c

let mismatch name c =
  invalid_arg (Printf.sprintf "Metrics: %s is a %s" name (kind_name c))

let incr t ?(by = 1.0) name =
  locked t @@ fun () ->
  match cell t name (fun () -> Count (ref 0.0)) with
  | Count r -> r := !r +. by
  | c -> mismatch name c

let gauge t name v =
  locked t @@ fun () ->
  match cell t name (fun () -> High (ref v)) with
  | High r -> r := Float.max !r v
  | c -> mismatch name c

let observe t name v =
  locked t @@ fun () ->
  match cell t name (fun () -> Samples (ref [])) with
  | Samples r -> r := v :: !r
  | c -> mismatch name c

let kind_of t name =
  locked t @@ fun () ->
  Option.map
    (function Count _ -> Counter | High _ -> Gauge | Samples _ -> Histogram)
    (Hashtbl.find_opt t.cells name)

let value t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.cells name with
  | Some (Count r) | Some (High r) -> Some !r
  | Some (Samples _) | None -> None

let samples t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.cells name with
  | Some (Samples r) -> List.rev !r
  | Some c -> mismatch name c
  | None -> []

let names t =
  locked t @@ fun () ->
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.cells [])

let is_empty t = locked t @@ fun () -> Hashtbl.length t.cells = 0

let merge_into ~into t =
  (* Snapshot the source first: taking both locks at once could deadlock
     against a concurrent merge in the other direction. *)
  let snapshot =
    locked t @@ fun () ->
    Hashtbl.fold
      (fun name c acc ->
        let copy =
          match c with
          | Count r -> Count (ref !r)
          | High r -> High (ref !r)
          | Samples r -> Samples (ref !r)
        in
        (name, copy) :: acc)
      t.cells []
  in
  locked into @@ fun () ->
  List.iter
    (fun (name, c) ->
      match (cell into name (fun () -> c), c) with
      | Count dst, Count src -> if dst != src then dst := !dst +. !src
      | High dst, High src -> if dst != src then dst := Float.max !dst !src
      | Samples dst, Samples src -> if dst != src then dst := !src @ !dst
      | dst, _ -> mismatch name dst)
    snapshot

let fmt_val v =
  (* Enough digits to round-trip the doubles we produce, without the noise
     of %h: counts are small integers, times a few significant figures. *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_table t =
  let rows =
    locked t @@ fun () ->
    Hashtbl.fold (fun name c acc -> (name, c) :: acc) t.cells []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, c) ->
           match c with
           | Count r -> [ name; "counter"; "-"; fmt_val !r; "-"; "-"; "-"; "-"; "-"; "-" ]
           | High r -> [ name; "gauge"; "-"; fmt_val !r; "-"; "-"; "-"; "-"; "-"; "-" ]
           | Samples r ->
             let s = List.sort Float.compare !r in
             let p q = fmt_val (Stats.percentile q s) in
             [
               name;
               "histogram";
               string_of_int (List.length s);
               fmt_val (List.fold_left ( +. ) 0.0 s);
               fmt_val (Stats.mean s);
               fmt_val (Stats.minimum s);
               p 50.0;
               p 95.0;
               p 99.0;
               fmt_val (Stats.maximum s);
             ])
  in
  let table =
    Table.create ~title:"telemetry metrics"
      ~columns:
        [ "metric"; "kind"; "count"; "value"; "mean"; "min"; "p50"; "p95"; "p99"; "max" ]
  in
  List.iter (Table.add_row table) rows;
  table

let to_csv t = Table.to_csv (to_table t)
