open Ninja_engine

type track = { mutable stack : Span.t list (* innermost open span first *) }

type t = {
  m : Metrics.t;
  tracks : (string * string, track) Hashtbl.t;
  mutable rev_roots : Span.t list;
  mutable rev_instants : Probe.event list;
  mutable rev_anomalies : string list;
  fences : (string, Time.t) Hashtbl.t;  (* fence id -> entry time; key "" legacy *)
  mutable last_at : Time.t;
  mutable events : int;
  mutable open_count : int;
}

let create () =
  {
    m = Metrics.create ();
    tracks = Hashtbl.create 8;
    rev_roots = [];
    rev_instants = [];
    rev_anomalies = [];
    fences = Hashtbl.create 4;
    last_at = Time.zero;
    events = 0;
    open_count = 0;
  }

let metrics t = t.m

let roots t = List.rev t.rev_roots

let instants t = List.rev t.rev_instants

let anomalies t = List.rev t.rev_anomalies

let last_at t = t.last_at

let events_seen t = t.events

let open_spans t = t.open_count

let anomaly t fmt = Printf.ksprintf (fun m -> t.rev_anomalies <- m :: t.rev_anomalies) fmt

let reserved = [ "cat"; "proc"; "tid"; "start" ]

let span_args info = List.filter (fun (k, _) -> not (List.mem k reserved)) info

let track t ~proc ~tid =
  match Hashtbl.find_opt t.tracks (proc, tid) with
  | Some tr -> tr
  | None ->
    let tr = { stack = [] } in
    Hashtbl.add t.tracks (proc, tid) tr;
    tr

let seconds = Time.to_sec_f

(* Histograms keyed by span taxonomy, fed as spans close. *)
let closed t (s : Span.t) =
  match s.Span.cat with
  | "phase" -> Metrics.observe t.m ("phase." ^ s.Span.name ^ ".seconds") (seconds (Span.duration s))
  | "migration" -> Metrics.observe t.m "migration.total.seconds" (seconds (Span.duration s))
  | "retry" -> Metrics.observe t.m "retry.lost.seconds" (seconds (Span.duration s))
  | _ -> ()

let on_span t (e : Probe.event) =
  let info key = Option.value (Probe.info_of e key) ~default:"" in
  let proc = info "proc" and tid = info "tid" in
  let tr = track t ~proc ~tid in
  let attach s =
    match tr.stack with
    | top :: _ -> Span.add_child top s
    | [] -> t.rev_roots <- s :: t.rev_roots
  in
  match e.Probe.action with
  | "begin" ->
    let s =
      Span.create ~name:e.Probe.subject ~cat:(info "cat") ~proc ~thread:tid
        ~start:e.Probe.at ~args:(span_args e.Probe.info) ()
    in
    attach s;
    tr.stack <- s :: tr.stack;
    t.open_count <- t.open_count + 1
  | "end" -> (
    match tr.stack with
    | [] -> anomaly t "span end %S on %s/%s without a begin" e.Probe.subject proc tid
    | top :: rest ->
      if not (String.equal top.Span.name e.Probe.subject) then
        anomaly t "span end %S on %s/%s closes open span %S" e.Probe.subject proc tid
          top.Span.name;
      tr.stack <- rest;
      t.open_count <- t.open_count - 1;
      Span.finish top ~at:e.Probe.at ~args:(span_args e.Probe.info) ();
      closed t top)
  | "note" -> (
    match Int64.of_string_opt (info "start") with
    | None -> anomaly t "span note %S on %s/%s carries no start" e.Probe.subject proc tid
    | Some ns ->
      let start = Time.min (Time.of_ns ns) e.Probe.at in
      let s =
        Span.create ~name:e.Probe.subject ~cat:(info "cat") ~proc ~thread:tid ~start
          ~args:(span_args e.Probe.info) ()
      in
      Span.finish s ~at:e.Probe.at ();
      attach s;
      closed t s)
  | other -> anomaly t "unknown span action %S" other

let float_info e key = Option.bind (Probe.info_of e key) float_of_string_opt

let on_event t (e : Probe.event) =
  t.events <- t.events + 1;
  t.last_at <- Time.max t.last_at e.Probe.at;
  match (e.Probe.topic, e.Probe.action) with
  | "span", _ -> on_span t e
  | topic_action ->
    t.rev_instants <- e :: t.rev_instants;
    (match topic_action with
    | "migrate", "start" -> Metrics.incr t.m "migrations.started"
    | "migrate", "complete" -> Metrics.incr t.m "migrations.completed"
    | "migrate", "rollback" -> Metrics.incr t.m "migrations.rolled_back"
    | "migrate", "giveup" -> Metrics.incr t.m "migrations.gave_up"
    | "fence", "enter" ->
      (* Concurrent control-plane batches each run their own fence; events
         carry an [id] (absent — "" — for the single legacy fence). *)
      let id = Option.value (Probe.info_of e "id") ~default:"" in
      Hashtbl.replace t.fences id e.Probe.at;
      Option.iter (Metrics.gauge t.m "fence.vms.max") (float_info e "count")
    | "fence", "release" ->
      let id = Option.value (Probe.info_of e "id") ~default:"" in
      Option.iter
        (fun entered ->
          Metrics.observe t.m "fence.residency.seconds"
            (seconds (Time.diff e.Probe.at entered));
          Hashtbl.remove t.fences id)
        (Hashtbl.find_opt t.fences id)
    | "ctl", "stat" ->
      (* The control plane mirrors its registry on the bus so a recorder
         exports the same ctl.* numbers. *)
      Option.iter
        (fun v ->
          match Probe.info_of e "kind" with
          | Some "counter" -> Metrics.incr t.m ~by:v e.Probe.subject
          | Some "gauge" -> Metrics.gauge t.m e.Probe.subject v
          | Some "histogram" -> Metrics.observe t.m e.Probe.subject v
          | _ -> ())
        (float_info e "value")
    | "migration", "done" ->
      Option.iter (fun b -> Metrics.incr t.m ~by:b "precopy.bytes") (float_info e "bytes");
      Option.iter (fun r -> Metrics.incr t.m ~by:r "precopy.rounds") (float_info e "rounds");
      Option.iter
        (fun ns -> Metrics.observe t.m "vm.downtime.seconds" (ns /. 1e9))
        (float_info e "downtime_ns")
    | "fault", _ -> Metrics.incr t.m "faults.injected"
    | "node", "death" -> Metrics.incr t.m "node.deaths"
    | "plan", "built" -> Metrics.incr t.m "plans.built"
    | "executor", "report" ->
      Option.iter (fun v -> Metrics.incr t.m ~by:v "executor.steps") (float_info e "steps");
      Option.iter
        (fun v -> Metrics.incr t.m ~by:v "executor.failures")
        (float_info e "failures");
      Option.iter
        (fun v -> Metrics.incr t.m ~by:v "executor.retries")
        (float_info e "retries")
    | _ -> ())

let attach t probes = Probe.attach probes (on_event t)
