open Ninja_engine

(* ------------------------------------------------------------------ *)
(* JSON plumbing *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quoted s = "\"" ^ escape s ^ "\""

let args_obj pairs =
  "{" ^ String.concat "," (List.map (fun (k, v) -> quoted k ^ ":" ^ quoted v) pairs) ^ "}"

(* Microseconds of sim time. 64-bit ns counts we produce stay well below
   2^53, so the float conversion is exact and %.3f is deterministic. *)
let usec at = Printf.sprintf "%.3f" (Int64.to_float (Time.to_ns at) /. 1e3)

(* FNV-1a, folded to a positive 31-bit int: track ids derive from track
   names alone, so independently rendered fragments agree on them. *)
let track_id s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x7fffffff) s;
  !h land 0x3fffffff

(* ------------------------------------------------------------------ *)
(* Fragment rendering *)

type tracks = {
  mutable rev_meta : string list;
  seen_procs : (string, unit) Hashtbl.t;
  seen_threads : (string * string, unit) Hashtbl.t;
}

let no_tracks () =
  { rev_meta = []; seen_procs = Hashtbl.create 8; seen_threads = Hashtbl.create 8 }

(* First sighting of a track emits its naming metadata. *)
let ids tracks ~proc ~thread =
  let pid = track_id proc in
  let tid = track_id (proc ^ "\x00" ^ thread) in
  if not (Hashtbl.mem tracks.seen_procs proc) then begin
    Hashtbl.add tracks.seen_procs proc ();
    tracks.rev_meta <-
      Printf.sprintf {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}|}
        pid (quoted proc)
      :: tracks.rev_meta
  end;
  if not (Hashtbl.mem tracks.seen_threads (proc, thread)) then begin
    Hashtbl.add tracks.seen_threads (proc, thread) ();
    tracks.rev_meta <-
      Printf.sprintf {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}|}
        pid tid (quoted thread)
      :: tracks.rev_meta
  end;
  (pid, tid)

let rec latest acc (s : Span.t) =
  let acc = Time.max acc s.Span.start in
  let acc = match s.Span.stop with Some t -> Time.max acc t | None -> acc in
  List.fold_left latest acc (Span.children s)

let fragment ?(track_prefix = "") ?(instants = []) ?upto roots =
  let upto =
    match upto with
    | Some t -> t
    | None ->
      List.fold_left
        (fun acc (e : Probe.event) -> Time.max acc e.Probe.at)
        (List.fold_left latest Time.zero roots)
        instants
  in
  let tracks = no_tracks () in
  let rev_events = ref [] in
  let push line = rev_events := line :: !rev_events in
  let rec span_event (s : Span.t) =
    let pid, tid = ids tracks ~proc:(track_prefix ^ s.Span.proc) ~thread:s.Span.thread in
    let stop, args =
      match s.Span.stop with
      | Some t -> (t, s.Span.args)
      | None -> (Time.max upto s.Span.start, s.Span.args @ [ ("unfinished", "true") ])
    in
    push
      (Printf.sprintf
         {|{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":%s}|}
         (quoted s.Span.name) (quoted s.Span.cat) (usec s.Span.start)
         (usec (Time.diff stop s.Span.start))
         pid tid (args_obj args));
    List.iter span_event (Span.children s)
  in
  List.iter span_event roots;
  List.iter
    (fun (e : Probe.event) ->
      let thread = if e.Probe.subject = "" then e.Probe.topic else e.Probe.subject in
      let pid, tid = ids tracks ~proc:(track_prefix ^ e.Probe.topic) ~thread in
      push
        (Printf.sprintf
           {|{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d,"args":%s}|}
           (quoted (e.Probe.topic ^ "/" ^ e.Probe.action))
           (quoted e.Probe.topic) (usec e.Probe.at) pid tid (args_obj e.Probe.info))
      )
    instants;
  match (tracks.rev_meta, !rev_events) with
  | [], [] -> ""
  | rev_meta, rev_events ->
    String.concat ",\n" (List.rev_append rev_meta (List.rev rev_events))

let document fragments =
  let fragments = List.filter (fun f -> f <> "") fragments in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" fragments
  ^ "\n]}\n"

let recorder_fragment ?track_prefix r =
  fragment ?track_prefix ~instants:(Recorder.instants r) ~upto:(Recorder.last_at r)
    (Recorder.roots r)

(* ------------------------------------------------------------------ *)
(* Breakdown derivation *)

let breakdown_of_root root =
  let child_dur name =
    match Span.find_child root name with Some s -> Span.duration s | None -> Time.zero
  in
  (* Failed attempts and backoff sleeps anywhere outside the rollback
     subtree; the rollback itself is charged once, as a whole, so its
     inner retries must not be double-billed. *)
  let rec retry_outside_rollback acc (s : Span.t) =
    if String.equal s.Span.cat "rollback" then acc
    else
      let acc = if String.equal s.Span.cat "retry" then Time.add acc (Span.duration s) else acc in
      List.fold_left retry_outside_rollback acc (Span.children s)
  in
  {
    Ninja_metrics.Breakdown.coordination = child_dur "coordination";
    detach = child_dur "detach";
    (* The migration-phase span is named by copy mode; exactly one of the
       two exists per migration, so the sum is just "the one that ran". *)
    migration = Time.add (child_dur "precopy") (child_dur "postcopy");
    attach = child_dur "attach";
    linkup = child_dur "link-up";
    retry = Time.add (child_dur "rollback") (retry_outside_rollback Time.zero root);
    total = Span.duration root;
  }
