open Ninja_engine

type t = {
  name : string;
  cat : string;
  proc : string;
  thread : string;
  start : Time.t;
  mutable stop : Time.t option;
  mutable args : (string * string) list;
  mutable rev_children : t list;
}

let create ~name ~cat ~proc ~thread ~start ?(args = []) () =
  { name; cat; proc; thread; start; stop = None; args; rev_children = [] }

let finished s = s.stop <> None

let finish s ~at ?(args = []) () =
  if finished s then invalid_arg (Printf.sprintf "Span.finish: %s already finished" s.name);
  if Time.( < ) at s.start then
    invalid_arg (Printf.sprintf "Span.finish: %s would stop before it starts" s.name);
  s.stop <- Some at;
  if args <> [] then s.args <- s.args @ args

let duration s =
  match s.stop with
  | Some stop -> Time.diff stop s.start
  | None -> invalid_arg (Printf.sprintf "Span.duration: %s is still open" s.name)

let add_child parent child = parent.rev_children <- child :: parent.rev_children

let children s = List.rev s.rev_children

let rec iter f s =
  f s;
  List.iter (iter f) (children s)

let find_child s name = List.find_opt (fun c -> String.equal c.name name) (children s)

let well_formed root =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let rec walk parent s =
    (match s.stop with
    | None -> problem "%s/%s: span %S is not finished" s.proc s.thread s.name
    | Some stop ->
      if Time.( < ) stop s.start then
        problem "%s/%s: span %S stops before it starts" s.proc s.thread s.name;
      (match parent with
      | None -> ()
      | Some p -> (
        if Time.( < ) s.start p.start then
          problem "%s: child %S starts before its parent %S" s.proc s.name p.name;
        match p.stop with
        | Some pstop when Time.( > ) stop pstop ->
          problem "%s: child %S stops after its parent %S" s.proc s.name p.name
        | _ -> ())));
    List.iter (walk (Some s)) (children s)
  in
  walk None root;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Probe-bus wire encoding *)

let meta ~cat ~proc ~thread = [ ("cat", cat); ("proc", proc); ("tid", thread) ]

let emit_begin probes ~name ~cat ~proc ~thread ?(args = []) () =
  if Probe.active probes then
    Probe.emit probes ~topic:"span" ~action:"begin" ~subject:name
      ~info:(meta ~cat ~proc ~thread @ args)
      ()

let emit_end probes ~name ~proc ~thread ?(args = []) () =
  if Probe.active probes then
    Probe.emit probes ~topic:"span" ~action:"end" ~subject:name
      ~info:(meta ~cat:"" ~proc ~thread @ args)
      ()

let emit_note probes ~name ~cat ~proc ~thread ~start ?(args = []) () =
  if Probe.active probes then
    Probe.emit probes ~topic:"span" ~action:"note" ~subject:name
      ~info:
        ((("start", Int64.to_string (Time.to_ns start)) :: meta ~cat ~proc ~thread) @ args)
      ()

(* ------------------------------------------------------------------ *)
(* Scoped builder *)

type scope = {
  probes : Probe.t option;
  sim : Sim.t;
  proc : string;
  thread : string;
  mutable stack : t list;  (* innermost open span first *)
  mutable rev_roots : t list;
}

let scope ?probes ~sim ~proc ~thread () =
  { probes; sim; proc; thread; stack = []; rev_roots = [] }

let attach sc s =
  match sc.stack with
  | top :: _ -> add_child top s
  | [] -> sc.rev_roots <- s :: sc.rev_roots

let enter sc ~name ~cat ?(args = []) () =
  let s =
    create ~name ~cat ~proc:sc.proc ~thread:sc.thread ~start:(Sim.now sc.sim) ~args ()
  in
  attach sc s;
  sc.stack <- s :: sc.stack;
  Option.iter
    (fun probes -> emit_begin probes ~name ~cat ~proc:sc.proc ~thread:sc.thread ~args ())
    sc.probes;
  s

let close sc ?(args = []) s =
  finish s ~at:(Sim.now sc.sim) ~args ();
  Option.iter
    (fun probes ->
      emit_end probes ~name:s.name ~proc:sc.proc ~thread:sc.thread ~args ())
    sc.probes

let exit_ sc ?(args = []) s =
  if not (List.memq s sc.stack) then
    invalid_arg (Printf.sprintf "Span.exit_: %s is not an open span of this scope" s.name);
  let rec pop () =
    match sc.stack with
    | [] -> assert false
    | top :: rest ->
      sc.stack <- rest;
      if top == s then close sc ~args s
      else begin
        (* Unwinding past an abandoned span (an exception escaped it):
           close it where we stand so the tree stays well-formed. *)
        close sc ~args:[ ("abandoned", "true") ] top;
        pop ()
      end
  in
  pop ()

let note sc ~name ~cat ~start ?(args = []) () =
  let now = Sim.now sc.sim in
  let start = Time.min start now in
  let s = create ~name ~cat ~proc:sc.proc ~thread:sc.thread ~start ~args () in
  finish s ~at:now ();
  attach sc s;
  Option.iter
    (fun probes ->
      emit_note probes ~name ~cat ~proc:sc.proc ~thread:sc.thread ~start ~args ())
    sc.probes;
  s

let roots sc = List.rev sc.rev_roots
