open Ninja_engine

type pattern =
  | Uniform of { rate : float }
  | Ring of { rate : float }
  | Skewed of { elephants : int; rate : float; factor : float }

let default_rate = 1e6

let default_elephants = 2

let default_factor = 16.0

let ok_rate r = r >= 0.0 && Float.is_finite r

let validate = function
  | Uniform { rate } | Ring { rate } ->
    if ok_rate rate then Ok () else Error "rate must be non-negative and finite"
  | Skewed { elephants; rate; factor } ->
    if not (ok_rate rate) then Error "rate must be non-negative and finite"
    else if elephants < 0 then Error "elephants must be non-negative"
    else if not (factor >= 1.0 && Float.is_finite factor) then
      Error "factor must be >= 1 and finite"
    else Ok ()

let to_string = function
  | Uniform { rate } -> Printf.sprintf "uniform:rate=%.17g" rate
  | Ring { rate } -> Printf.sprintf "ring:rate=%.17g" rate
  | Skewed { elephants; rate; factor } ->
    Printf.sprintf "skewed:elephants=%d,rate=%.17g,factor=%.17g" elephants rate factor

let describe = function
  | Uniform { rate } -> Printf.sprintf "uniform %g B/s per pair" rate
  | Ring { rate } -> Printf.sprintf "ring %g B/s per neighbour" rate
  | Skewed { elephants; rate; factor } ->
    Printf.sprintf "skewed: %d elephant(s) at %gx over %g B/s ring" elephants factor rate

let of_string s =
  let s = String.trim s in
  let shape, params =
    match String.index_opt s ':' with
    | None -> (s, [])
    | Some i ->
      ( String.sub s 0 i,
        String.sub s (i + 1) (String.length s - i - 1)
        |> String.split_on_char ','
        |> List.filter (fun p -> p <> "") )
  in
  let parse_params () =
    List.fold_left
      (fun acc p ->
        match acc with
        | Error _ -> acc
        | Ok kvs -> (
          match String.index_opt p '=' with
          | None -> Error (Printf.sprintf "malformed parameter %S (expected key=value)" p)
          | Some i ->
            let k = String.sub p 0 i in
            let v = String.sub p (i + 1) (String.length p - i - 1) in
            (match float_of_string_opt v with
            | None -> Error (Printf.sprintf "parameter %s: bad number %S" k v)
            | Some f -> Ok ((k, f) :: kvs))))
      (Ok []) params
  in
  let get kvs k ~default = Option.value (List.assoc_opt k kvs) ~default in
  let known kvs allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
    | Some (k, _) ->
      Error
        (Printf.sprintf "unknown parameter %S (expected %s)" k (String.concat "," allowed))
    | None -> Ok ()
  in
  let build () =
    match parse_params () with
    | Error e -> Error e
    | Ok kvs -> (
      match String.lowercase_ascii shape with
      | "uniform" -> (
        match known kvs [ "rate" ] with
        | Error e -> Error e
        | Ok () -> Ok (Uniform { rate = get kvs "rate" ~default:default_rate }))
      | "ring" -> (
        match known kvs [ "rate" ] with
        | Error e -> Error e
        | Ok () -> Ok (Ring { rate = get kvs "rate" ~default:default_rate }))
      | "skewed" -> (
        match known kvs [ "elephants"; "rate"; "factor" ] with
        | Error e -> Error e
        | Ok () ->
          Ok
            (Skewed
               {
                 elephants =
                   int_of_float (get kvs "elephants" ~default:(float_of_int default_elephants));
                 rate = get kvs "rate" ~default:default_rate;
                 factor = get kvs "factor" ~default:default_factor;
               }))
      | other -> Error (Printf.sprintf "unknown traffic pattern %S (expected uniform|ring|skewed)" other))
  in
  match build () with
  | Error e -> Error ("traffic: " ^ e)
  | Ok p -> ( match validate p with Ok () -> Ok p | Error e -> Error ("traffic: " ^ e))

let gen prng =
  match Prng.int prng 3 with
  | 0 -> Uniform { rate = default_rate *. (0.25 +. Prng.float prng 2.0) }
  | 1 -> Ring { rate = default_rate *. (0.25 +. Prng.float prng 2.0) }
  | _ ->
    Skewed
      {
        elephants = 1 + Prng.int prng 3;
        rate = default_rate *. (0.25 +. Prng.float prng 1.0);
        factor = 4.0 +. Prng.float prng 28.0;
      }

(* Canonical undirected entry: endpoints in name order, so the output is
   stable under endpoint orientation and sortable. *)
let entry a b rate = if String.compare a b <= 0 then (a, b, rate) else (b, a, rate)

let ring_pairs vms rate =
  let arr = Array.of_list vms in
  let n = Array.length arr in
  if n < 2 then []
  else if n = 2 then [ entry arr.(0) arr.(1) rate ]
  else List.init n (fun i -> entry arr.(i) arr.((i + 1) mod n) rate)

let matrix prng p ~vms =
  (match validate p with Ok () -> () | Error e -> invalid_arg ("Traffic.matrix: " ^ e));
  let arr = Array.of_list vms in
  let n = Array.length arr in
  let entries =
    if n < 2 then []
    else
      match p with
      | Uniform { rate } ->
        List.concat
          (List.init n (fun i ->
               List.init (n - 1 - i) (fun k -> entry arr.(i) arr.(i + 1 + k) rate)))
      | Ring { rate } -> ring_pairs vms rate
      | Skewed { elephants; rate; factor } ->
        let mice = ring_pairs vms rate in
        (* Draw elephant pairs without replacement; the attempt bound
           keeps a tiny population (few distinct pairs) from looping. *)
        let chosen = Hashtbl.create 8 in
        let picked = ref [] in
        let attempts = ref 0 in
        let limit = 16 * (elephants + 1) in
        while List.length !picked < elephants && !attempts < limit do
          incr attempts;
          let i = Prng.int prng n in
          let j = Prng.int prng n in
          if i <> j then begin
            let key = (min i j, max i j) in
            if not (Hashtbl.mem chosen key) then begin
              Hashtbl.add chosen key ();
              picked := entry arr.(i) arr.(j) (rate *. factor) :: !picked
            end
          end
        done;
        mice @ !picked
  in
  List.sort compare entries
