(** Open-loop arrival processes.

    An open-loop source emits requests at instants drawn from a stochastic
    process, independent of how fast the system drains them — the standard
    way to expose a service to overload. Two primitive shapes ship, plus
    composition:

    - [Poisson] — memoryless arrivals at a given mean rate (exponential
      inter-arrival gaps), the baseline traffic model;
    - [Bursts] — a trace-shaped pattern: every [period] seconds a burst of
      [size] arrivals lands, each jittered uniformly over [spread] seconds
      (a maintenance window, a failover storm);
    - [Overlay] — the superposition of several processes (e.g. a Poisson
      background plus an hourly evacuation burst).

    All draws come from the caller's {!Ninja_engine.Prng.t}, so a seeded
    run reproduces its arrival trace exactly. *)

open Ninja_engine

type process =
  | Poisson of { rate : float }  (** mean arrivals per second; 0 = silent *)
  | Bursts of { period : float; size : int; spread : float }
      (** [size] arrivals every [period] s, jittered over [spread] s *)
  | Overlay of process list

val validate : process -> (unit, string) result
(** Checks rates are non-negative, periods positive, sizes non-negative,
    spreads within the period, and overlays non-empty. *)

val times : Prng.t -> process -> horizon:float -> float list
(** The arrival instants in [\[0, horizon)], sorted ascending. Draw order
    is fixed by the process structure, so equal seeds give equal traces.
    Raises [Invalid_argument] when {!validate} would fail. *)

val describe : process -> string
(** One-line human description, e.g. ["poisson 0.50/s + burst 8 every 600s"]. *)
