(** Seeded per-tenant traffic matrices.

    A traffic matrix says how hard a tenant's VMs talk to each other in
    steady state — the demand a placement-aware planner (the [swap]
    strategy) optimises against. Patterns mirror the communication
    shapes of the MPI collectives the workload layer generates:

    - [Uniform] — every VM pair exchanges the same rate (alltoall /
      allreduce: dense, placement-insensitive except for locality).
    - [Ring] — VM [i] talks to VM [i+1] (ring allreduce, halo exchange /
      nearest-neighbour stencils: placement-sensitive and cheap to
      localise).
    - [Skewed] — a nearest-neighbour mouse background plus a few
      {e elephant} pairs carrying [factor] times the rate, drawn from
      the PRNG (the skewed flow distributions datacenter traces show;
      the case where adaptive destination swapping pays most, Avin et
      al. arXiv:1309.5826).

    Matrices are plain [(vm_a, vm_b, bytes_per_sec)] triples keyed by VM
    name — the representation {!Ninja_planner.Cost_model} prices — so no
    dependency edge is needed between the two libraries.

    The textual grammar (scenario files, [--traffic]) is
    [pattern:key=value,...] with no spaces, e.g. [uniform:rate=1e6],
    [ring:rate=5e5], [skewed:elephants=2,rate=1e5,factor=16]. Parameters
    may be omitted ([skewed] alone) to take the defaults. *)

open Ninja_engine

type pattern =
  | Uniform of { rate : float }  (** bytes/s per VM pair *)
  | Ring of { rate : float }  (** bytes/s per adjacent pair *)
  | Skewed of { elephants : int; rate : float; factor : float }
      (** [elephants] hot pairs at [rate *. factor] over a ring of mice
          at [rate] *)

val default_rate : float
(** 1 MB/s — small against migration link capacities, so communication
    cost steers placement without starving migrations. *)

val validate : pattern -> (unit, string) result

val to_string : pattern -> string
(** Round-trips through {!of_string}; canonical form (all parameters
    explicit, [%.17g] floats). *)

val of_string : string -> (pattern, string) result

val describe : pattern -> string
(** Human-readable one-liner. *)

val gen : Prng.t -> pattern
(** Draw a random pattern (for the scenario fuzzer). *)

val matrix : Prng.t -> pattern -> vms:string list -> (string * string * float) list
(** The demand entries for the given VM population, sorted by endpoint
    names (deterministic for a given PRNG state). Fewer than two VMs
    yield the empty matrix. Raises [Invalid_argument] if the pattern
    does not {!validate}. *)
