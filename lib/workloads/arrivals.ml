open Ninja_engine

type process =
  | Poisson of { rate : float }
  | Bursts of { period : float; size : int; spread : float }
  | Overlay of process list

let rec validate = function
  | Poisson { rate } ->
    if rate >= 0.0 && Float.is_finite rate then Ok ()
    else Error "poisson rate must be non-negative and finite"
  | Bursts { period; size; spread } ->
    if not (period > 0.0 && Float.is_finite period) then
      Error "burst period must be positive and finite"
    else if size < 0 then Error "burst size must be non-negative"
    else if not (spread >= 0.0 && spread <= period) then
      Error "burst spread must lie within [0, period]"
    else Ok ()
  | Overlay [] -> Error "overlay of no processes"
  | Overlay ps ->
    List.fold_left
      (fun acc p -> match acc with Error _ -> acc | Ok () -> validate p)
      (Ok ()) ps

let rec draw prng p ~horizon =
  match p with
  | Poisson { rate } when rate = 0.0 -> []
  | Poisson { rate } ->
    let mean = 1.0 /. rate in
    let rec go acc t =
      let t = t +. Prng.exponential prng ~mean in
      if t >= horizon then acc else go (t :: acc) t
    in
    go [] 0.0
  | Bursts { period; size; spread } ->
    let rec go acc k =
      let base = float_of_int k *. period in
      if base >= horizon then acc
      else
        let acc =
          List.fold_left
            (fun acc _ ->
              let t = base +. (if spread > 0.0 then Prng.float prng spread else 0.0) in
              if t < horizon then t :: acc else acc)
            acc
            (List.init size Fun.id)
        in
        go acc (k + 1)
    in
    go [] 0
  | Overlay ps -> List.concat_map (fun p -> draw prng p ~horizon) ps

let times prng p ~horizon =
  (match validate p with Ok () -> () | Error e -> invalid_arg ("Arrivals.times: " ^ e));
  if not (horizon >= 0.0 && Float.is_finite horizon) then
    invalid_arg "Arrivals.times: horizon must be non-negative and finite";
  List.sort Float.compare (draw prng p ~horizon)

let rec describe = function
  | Poisson { rate } -> Printf.sprintf "poisson %.2f/s" rate
  | Bursts { period; size; spread } ->
    Printf.sprintf "burst %d every %gs (spread %gs)" size period spread
  | Overlay ps -> String.concat " + " (List.map describe ps)
