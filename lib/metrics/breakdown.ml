open Ninja_engine

type t = {
  coordination : Time.span;
  detach : Time.span;
  migration : Time.span;
  attach : Time.span;
  linkup : Time.span;
  retry : Time.span;
  total : Time.span;
}

let zero =
  {
    coordination = Time.zero;
    detach = Time.zero;
    migration = Time.zero;
    attach = Time.zero;
    linkup = Time.zero;
    retry = Time.zero;
    total = Time.zero;
  }

let hotplug t = Time.add t.detach t.attach

let add a b =
  {
    coordination = Time.add a.coordination b.coordination;
    detach = Time.add a.detach b.detach;
    migration = Time.add a.migration b.migration;
    attach = Time.add a.attach b.attach;
    linkup = Time.add a.linkup b.linkup;
    retry = Time.add a.retry b.retry;
    total = Time.add a.total b.total;
  }

let overhead_sum t =
  Time.add (Time.add t.coordination (hotplug t)) (Time.add t.migration t.linkup)

(* [retry] appears only when nonzero so that fault-free runs render
   byte-identically to the pre-fault-layer output. *)
let pp fmt t =
  Format.fprintf fmt
    "coordination=%a hotplug=%a migration=%a linkup=%a" Time.pp t.coordination
    Time.pp (hotplug t) Time.pp t.migration Time.pp t.linkup;
  if not (Time.equal t.retry Time.zero) then Format.fprintf fmt " retry=%a" Time.pp t.retry;
  Format.fprintf fmt " total=%a" Time.pp t.total

let to_row t =
  [
    ("coordination", Time.to_sec_f t.coordination);
    ("hotplug", Time.to_sec_f (hotplug t));
    ("migration", Time.to_sec_f t.migration);
    ("linkup", Time.to_sec_f t.linkup);
  ]
  @ (if Time.equal t.retry Time.zero then [] else [ ("retry", Time.to_sec_f t.retry) ])
  @ [ ("total", Time.to_sec_f t.total) ]
