let check = function [] -> invalid_arg "Stats: empty sample" | l -> l

let mean l =
  let l = check l in
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let minimum l = List.fold_left Float.min Float.infinity (check l)

let maximum l = List.fold_left Float.max Float.neg_infinity (check l)

let stddev l =
  match check l with
  | [ _ ] -> 0.0 (* a singleton has no spread; avoid any sqrt round-off *)
  | l ->
    let m = mean l in
    let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
    sqrt (var /. float_of_int (List.length l))

let percentile p l =
  let l = check l in
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p must be within [0, 100]";
  let sorted = List.sort Float.compare l in
  let n = List.length sorted in
  (* Nearest-rank: the smallest value with at least p% of the sample at or
     below it; p = 0 is defined as the minimum. *)
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  List.nth sorted (rank - 1)

let best_of n f =
  if n <= 0 then invalid_arg "Stats.best_of: n must be positive";
  minimum (List.init n (fun _ -> f ()))
