(** Small numeric helpers for repeated measurements. *)

val mean : float list -> float
(** Raises [Invalid_argument] on an empty list. *)

val minimum : float list -> float
(** The paper reports best-of-three for its timing tables. *)

val maximum : float list -> float

val stddev : float list -> float
(** Population standard deviation; 0.0 on a singleton list. *)

val percentile : float -> float list -> float
(** [percentile p l] is the nearest-rank p-th percentile of [l]: the
    smallest sample value with at least [p]% of the sample at or below
    it ([p = 0] yields the minimum, [p = 100] the maximum, so the result
    is always an actual sample). Raises [Invalid_argument] on an empty
    list or [p] outside [0, 100]. *)

val best_of : int -> (unit -> float) -> float
(** [best_of n f] runs [f] n times and returns the smallest result. *)
