(** Ninja-migration overhead breakdown (the paper's measurement unit).

    One record per migration event, split the way Figs. 4/6/7 split it:
    coordination (trigger → fence), hotplug (detach + re-attach +
    confirm), migration (precopy + stop-and-copy), and link-up (port
    training wait observed by the guests). *)

open Ninja_engine

type t = {
  coordination : Time.span;
  detach : Time.span;
  migration : Time.span;
  attach : Time.span;
  linkup : Time.span;
  retry : Time.span;
      (** sim-time lost to recovery: failed attempts, backoff sleeps and
          rollback work. A subset of [total]; zero on a fault-free run. *)
  total : Time.span;  (** trigger → every process resumed *)
}

val zero : t

val hotplug : t -> Time.span
(** detach + attach (the paper's "hotplug" bar segment). *)

val add : t -> t -> t

val overhead_sum : t -> Time.span
(** coordination + hotplug + migration + linkup (excludes idle gaps). *)

val pp : Format.formatter -> t -> unit

val to_row : t -> (string * float) list
(** Label/seconds pairs for table and CSV output. [retry] is included in
    both {!pp} and {!to_row} only when nonzero, so fault-free runs render
    byte-identically to builds without the fault layer. *)
