(** QEMU-style precopy live migration.

    Round 0 walks all guest memory: non-zero pages stream at the sender's
    CPU-bound effective rate through the Ethernet fabric; zero pages are
    detected and compressed at scan rate (§IV-B2: "compresses pages that
    contain uniform data"). Subsequent rounds re-send pages the (still
    running) guest dirtied; when the residual dirty set transfers within
    the downtime target — or the round budget is exhausted — the VM is
    paused for the final stop-and-copy.

    Under Ninja migration the guest is already frozen at the SymVirt fence,
    so precopy converges right after the first pass; the live path matters
    for the no-quiesce ablation and for plain (non-MPI) VMs.

    A migration with a VMM-bypass device attached is refused — the
    invariant the paper's whole coordination dance exists to satisfy.

    Fault injection: the cluster's {!Ninja_faults.Injector} is consulted
    at each precopy round boundary ([Precopy_stall] burns
    {!precopy_stall_duration}; [Precopy_abort] raises {!Aborted} after
    tearing the attempt down — the VM keeps its source host and run
    state) and at migration start ([Node_death] of the destination, which
    raises [Cluster.Node_dead]). *)

open Ninja_engine
open Ninja_hardware

exception Bypass_device_attached of string

exception Aborted of string
(** An injected mid-flight failure {e before} any switchover commit. The
    VM is left exactly as before the attempt: on its source host, with
    its pre-migration run state. Also raised when migrating a VM that an
    earlier postcopy failure already lost. *)

exception Postcopy_lost of string
(** The source died after a postcopy switchover committed but before the
    page drain completed: part of the VM's memory is unrecoverable and no
    host holds a complete image. The VM is paused at the destination,
    marked {!Vm.is_lost}, and must never run again — there is no rollback
    from a committed switchover. *)

type transport = Tcp | Rdma

type mode =
  | Precopy
  | Postcopy
      (** Stop-and-switch after pushing a small hot set, then demand-page
          the rest: prioritized chunked pulls over the data fabric (one
          rated flow and one ["migration"/"pull"] probe each) while the
          guest runs at the destination under a remote-demand-fault
          slowdown. Total time is footprint-bound like precopy, but
          downtime is constant and live re-dirtying costs nothing (each
          page moves exactly once, tracked by {!Memory}'s dual residency
          bitmaps) — the trade-off studied by the authors' later postcopy
          work (Yabusame). Failure semantics differ fundamentally from
          precopy: an abort before switchover is a clean return-to-source,
          but once the switchover commits the source's death raises
          {!Postcopy_lost}. *)

val mode_name : mode -> string

val mode_of_string : string -> (mode, string) result

type stats = {
  duration : Time.span;
  rounds : int;
  transferred_bytes : float;  (** actual wire bytes (zero pages excluded) *)
  scanned_zero_bytes : float;
  downtime : Time.span;  (** stop-and-copy pause *)
  pulls : Time.span list;
      (** per-chunk postcopy pull latencies in pull order; [[]] for
          precopy — feeds the pull-latency histogram and tail columns *)
}

val migrate : Vm.t -> dst:Node.t -> ?transport:transport -> ?mode:mode -> unit -> stats
(** Blocks the calling fiber until the VM runs on [dst] (for [Postcopy]:
    until the background pull completes and the slowdown is lifted).
    Self-migration ([dst] = current host) exercises the same protocol over
    the loopback path, as in the paper's Table II experiment. *)

val sender_rate : transport -> float

val precopy_stall_duration : Ninja_engine.Time.span

val postcopy_hot_set_bytes : float

val postcopy_fault_slowdown : float

val postcopy_pull_chunk_bytes : float
(** Bytes moved per prioritized pull (one probe/flow each). *)
