(** QEMU-style precopy live migration.

    Round 0 walks all guest memory: non-zero pages stream at the sender's
    CPU-bound effective rate through the Ethernet fabric; zero pages are
    detected and compressed at scan rate (§IV-B2: "compresses pages that
    contain uniform data"). Subsequent rounds re-send pages the (still
    running) guest dirtied; when the residual dirty set transfers within
    the downtime target — or the round budget is exhausted — the VM is
    paused for the final stop-and-copy.

    Under Ninja migration the guest is already frozen at the SymVirt fence,
    so precopy converges right after the first pass; the live path matters
    for the no-quiesce ablation and for plain (non-MPI) VMs.

    A migration with a VMM-bypass device attached is refused — the
    invariant the paper's whole coordination dance exists to satisfy.

    Fault injection: the cluster's {!Ninja_faults.Injector} is consulted
    at each precopy round boundary ([Precopy_stall] burns
    {!precopy_stall_duration}; [Precopy_abort] raises {!Aborted} after
    tearing the attempt down — the VM keeps its source host and run
    state) and at migration start ([Node_death] of the destination, which
    raises [Cluster.Node_dead]). *)

open Ninja_engine
open Ninja_hardware

exception Bypass_device_attached of string

exception Aborted of string
(** An injected mid-flight failure. The VM is left exactly as before the
    attempt: on its source host, with its pre-migration run state. *)

type transport = Tcp | Rdma

type mode =
  | Precopy
  | Postcopy
      (** Stop-and-switch after pushing a small hot set, then pull the rest
          in the background while the guest runs at the destination under a
          remote-demand-fault slowdown. Total time is footprint-bound like
          precopy, but downtime is constant and live re-dirtying costs
          nothing (each page moves exactly once) — the trade-off studied by
          the authors' later postcopy work (Yabusame). *)

type stats = {
  duration : Time.span;
  rounds : int;
  transferred_bytes : float;  (** actual wire bytes (zero pages excluded) *)
  scanned_zero_bytes : float;
  downtime : Time.span;  (** stop-and-copy pause *)
}

val migrate : Vm.t -> dst:Node.t -> ?transport:transport -> ?mode:mode -> unit -> stats
(** Blocks the calling fiber until the VM runs on [dst] (for [Postcopy]:
    until the background pull completes and the slowdown is lifted).
    Self-migration ([dst] = current host) exercises the same protocol over
    the loopback path, as in the paper's Table II experiment. *)

val sender_rate : transport -> float

val precopy_stall_duration : Ninja_engine.Time.span

val postcopy_hot_set_bytes : float

val postcopy_fault_slowdown : float
