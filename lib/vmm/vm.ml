open Ninja_engine
open Ninja_hardware

type state = Running | Paused

type t = {
  name : string;
  cluster : Cluster.t;
  vcpus : int;
  memory : Memory.t;
  mutable host : Node.t;
  mutable devices : Device.t list;
  mutable state : state;
  mutable pause_waiters : (unit -> unit) list;
  migration_lock : Semaphore.t;
  mutable slowdown : float;
  (* Postcopy failure semantics: once a postcopy switchover commits the
     VM's only copy of already-pulled state is at the destination, so a
     rollback-to-source is impossible; if the source then dies before
     the drain completes, the VM is lost for good. *)
  mutable switchover_committed : bool;
  mutable lost : bool;
  mutable added_hooks : (Device.t -> unit) list;
  mutable removed_hooks : (Device.t -> unit) list;
  mutable migrated_hooks : (src:Node.t -> dst:Node.t -> unit) list;
}

let default_os_resident = 2.3e9

let name t = t.name

let cluster t = t.cluster

let host t = t.host

let vcpus t = t.vcpus

let memory t = t.memory

let state t = t.state

let devices t = t.devices

let find_device t ~tag = List.find_opt (fun (d : Device.t) -> String.equal d.tag tag) t.devices

let has_bypass_device t = List.exists (fun (d : Device.t) -> Device.is_bypass d.kind) t.devices

let on_device_added t f = t.added_hooks <- f :: t.added_hooks

let on_device_removed t f = t.removed_hooks <- f :: t.removed_hooks

let on_migrated t f = t.migrated_hooks <- f :: t.migrated_hooks

let attach_device t (d : Device.t) =
  (match find_device t ~tag:d.tag with
  | Some _ -> invalid_arg (Printf.sprintf "Vm.attach_device: duplicate tag %s" d.tag)
  | None -> ());
  t.devices <- t.devices @ [ d ];
  Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: device %s attached" t.name d.tag;
  Probe.emit (Cluster.probes t.cluster) ~topic:"vm" ~action:"device-add" ~subject:t.name
    ~info:
      [ ("tag", d.tag); ("bypass", string_of_bool (Device.is_bypass d.kind)) ]
    ();
  List.iter (fun f -> f d) (List.rev t.added_hooks)

let detach_device t ~tag =
  match find_device t ~tag with
  | None -> raise Not_found
  | Some d ->
    t.devices <- List.filter (fun (d' : Device.t) -> not (String.equal d'.tag tag)) t.devices;
    Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: device %s detached" t.name tag;
    Probe.emit (Cluster.probes t.cluster) ~topic:"vm" ~action:"device-del" ~subject:t.name
      ~info:[ ("tag", tag) ] ();
    List.iter (fun f -> f d) (List.rev t.removed_hooks);
    d

let create cluster ~name ~host ~vcpus ~mem_bytes ?(os_resident_bytes = default_os_resident) () =
  if vcpus <= 0 then invalid_arg "Vm.create: vcpus must be positive";
  if mem_bytes > host.Node.mem_bytes then invalid_arg "Vm.create: VM larger than host memory";
  let memory = Memory.create ~total_bytes:mem_bytes in
  (* The OS resident set is non-zero from boot and stays clean unless the
     guest touches it again. *)
  let os = Memory.alloc memory ~bytes:(Float.min os_resident_bytes mem_bytes) in
  Memory.write_all memory os;
  Memory.clear_dirty memory;
  let t =
    {
      name;
      cluster;
      vcpus;
      memory;
      host;
      devices = [];
      state = Running;
      pause_waiters = [];
      migration_lock = Semaphore.create 1;
      slowdown = 1.0;
      switchover_committed = false;
      lost = false;
      added_hooks = [];
      removed_hooks = [];
      migrated_hooks = [];
    }
  in
  Cluster.register_vm cluster ~name ~node:host.Node.id ~bytes:mem_bytes;
  attach_device t (Device.make ~tag:"virtio0" ~pci_addr:"00:03.0" Device.Virtio_net);
  t

let migration_lock t = t.migration_lock

let switchover_committed t = t.switchover_committed

let set_switchover_committed t v = t.switchover_committed <- v

let is_lost t = t.lost

let mark_lost t =
  if not t.lost then begin
    t.lost <- true;
    Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: LOST (postcopy source died)"
      t.name
  end

let pause t =
  if t.state = Running then begin
    t.state <- Paused;
    Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: paused" t.name
  end

let resume t =
  if t.state = Paused then begin
    t.state <- Running;
    Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: resumed" t.name;
    let waiters = List.rev t.pause_waiters in
    t.pause_waiters <- [];
    List.iter (fun wake -> wake ()) waiters
  end

let set_host t dst =
  let src = t.host in
  t.host <- dst;
  Cluster.move_vm t.cluster ~name:t.name ~node:dst.Node.id;
  Trace.recordf (Cluster.trace t.cluster) ~category:"vmm" "%s: now on %s" t.name dst.Node.name;
  Probe.emit (Cluster.probes t.cluster) ~topic:"vm" ~action:"migrated" ~subject:t.name
    ~info:
      [
        ("src", src.Node.name);
        ("dst", dst.Node.name);
        ("bypass", string_of_bool (has_bypass_device t));
      ]
    ();
  List.iter (fun f -> f ~src ~dst) (List.rev t.migrated_hooks)

let await_running t =
  while t.state = Paused do
    Sim.suspend (fun resume -> t.pause_waiters <- resume :: t.pause_waiters)
  done

let set_compute_slowdown t f =
  if not (f >= 1.0) then invalid_arg "Vm.set_compute_slowdown: factor must be >= 1";
  t.slowdown <- f

let compute_slowdown t = t.slowdown

let compute ?(cores = 1.0) ?(chunk = 1.0) t ~core_seconds =
  if core_seconds < 0.0 then invalid_arg "Vm.compute: negative work";
  let remaining = ref core_seconds in
  while !remaining > 0.0 do
    await_running t;
    let work = Float.min chunk !remaining in
    Ps_resource.consume t.host.Node.cpu ~demand:cores ~work:(work *. t.slowdown);
    remaining := !remaining -. work
  done

let guest_write t region ~offset ~bytes ~bandwidth =
  if not (bandwidth > 0.0) then invalid_arg "Vm.guest_write: bandwidth must be positive";
  let chunk_bytes = 256.0 *. 1024.0 *. 1024.0 in
  let written = ref 0.0 in
  while !written < bytes do
    await_running t;
    let n = Float.min chunk_bytes (bytes -. !written) in
    Ps_resource.consume t.host.Node.cpu ~demand:1.0 ~work:(n /. bandwidth *. t.slowdown);
    Memory.write t.memory region ~offset:(offset +. !written) ~bytes:n;
    written := !written +. n
  done

let pp fmt t =
  Format.fprintf fmt "%s@%s(%s)" t.name t.host.Node.name
    (match t.state with Running -> "running" | Paused -> "paused")
