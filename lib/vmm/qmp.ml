open Ninja_engine
open Ninja_hardware

type command =
  | Device_del of { tag : string; noise : float }
  | Device_add of { device : Device.t; noise : float }
  | Migrate of { dst : Node.t; transport : Migration.transport; mode : Migration.mode }
  | Stop
  | Cont
  | Query_status
  | Query_migrate

type response =
  | Ok_empty
  | Elapsed of Time.span
  | Migrated of Migration.stats
  | Status of Vm.state
  | Error of string

let command_to_string = function
  | Device_del { tag; _ } -> Printf.sprintf "device_del %s" tag
  | Device_add { device; _ } ->
    Printf.sprintf "device_add %s %s %s" device.Device.tag device.Device.pci_addr
      (match device.Device.kind with
      | Device.Ib_hca -> "ib"
      | Device.Virtio_net -> "virtio"
      | Device.Eth_10g -> "eth"
      | Device.Emulated_nic -> "emulated")
  | Migrate { dst; mode = Migration.Postcopy; _ } ->
    Printf.sprintf "migrate_postcopy %s" dst.Node.name
  | Migrate { dst; transport = Migration.Tcp; _ } -> Printf.sprintf "migrate %s" dst.Node.name
  | Migrate { dst; transport = Migration.Rdma; _ } ->
    Printf.sprintf "migrate_rdma %s" dst.Node.name
  | Stop -> "stop"
  | Cont -> "cont"
  | Query_status -> "query-status"
  | Query_migrate -> "query-migrate"

(* How long the controller waits on a monitor command before declaring the
   round-trip lost (the injected [Qmp_timeout] failure mode: the command is
   dropped before execution, so re-issuing it is always safe). *)
let command_timeout = Time.sec 2

let probe_command vm command =
  let probes = Cluster.probes (Vm.cluster vm) in
  if Probe.active probes then begin
    let action, info =
      match command with
      | Device_del { tag; _ } -> ("device_del", [ ("tag", tag) ])
      | Device_add { device; _ } -> ("device_add", [ ("tag", device.Device.tag) ])
      | Migrate { dst; mode; _ } ->
        ("migrate", [ ("dst", dst.Node.name); ("mode", Migration.mode_name mode) ])
      | Stop -> ("stop", [])
      | Cont -> ("cont", [])
      | Query_status -> ("query-status", [])
      | Query_migrate -> ("query-migrate", [])
    in
    Probe.emit probes ~topic:"qmp" ~action ~subject:(Vm.name vm) ~info ()
  end

let execute vm command =
  probe_command vm command;
  let injector = Cluster.injector (Vm.cluster vm) in
  if
    Ninja_faults.Injector.enabled injector
    && Ninja_faults.Injector.fire injector Ninja_faults.Injector.Qmp_timeout
         ~site:(Vm.name vm)
  then begin
    Sim.sleep command_timeout;
    Error (Printf.sprintf "timed out: %s" (command_to_string command))
  end
  else begin
  Sim.sleep Calibration.qmp_command_overhead;
  match command with
  | Device_del { tag; noise } -> (
    match Hotplug.device_del vm ~tag ~noise () with
    | elapsed -> Elapsed elapsed
    | exception Not_found -> Error (Printf.sprintf "device not found: %s" tag))
  | Device_add { device; noise } -> (
    match Hotplug.device_add vm ~device ~noise () with
    | elapsed -> Elapsed elapsed
    | exception Hotplug.No_backing_port msg -> Error msg
    | exception Hotplug.Attach_failed msg -> Error msg
    | exception Invalid_argument msg -> Error msg)
  | Migrate { dst; transport; mode } -> (
    match Migration.migrate vm ~dst ~transport ~mode () with
    | stats -> Migrated stats
    | exception Migration.Bypass_device_attached msg -> Error msg
    | exception Migration.Aborted msg -> Error msg
    | exception Migration.Postcopy_lost msg -> Error msg
    | exception Cluster.Node_dead msg -> Error msg
    | exception Cluster.Unreachable msg -> Error msg)
  | Stop ->
    Vm.pause vm;
    Ok_empty
  | Cont ->
    Vm.resume vm;
    Ok_empty
  | Query_status -> Status (Vm.state vm)
  | Query_migrate -> Ok_empty
  end

let parse cluster line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") with
  | [ "device_del"; tag ] -> Result.Ok (Device_del { tag; noise = 1.0 })
  | [ "device_add"; tag; pci_addr; kind ] -> (
    match kind with
    | "ib" -> Result.Ok (Device_add { device = Device.make ~tag ~pci_addr Device.Ib_hca; noise = 1.0 })
    | "virtio" ->
      Result.Ok (Device_add { device = Device.make ~tag ~pci_addr Device.Virtio_net; noise = 1.0 })
    | _ -> Result.Error (Printf.sprintf "unknown device kind: %s" kind))
  | [ "migrate"; dest ] -> (
    match Cluster.find_node cluster dest with
    | dst -> Result.Ok (Migrate { dst; transport = Migration.Tcp; mode = Migration.Precopy })
    | exception Not_found -> Result.Error (Printf.sprintf "unknown node: %s" dest))
  | [ "migrate_rdma"; dest ] -> (
    match Cluster.find_node cluster dest with
    | dst -> Result.Ok (Migrate { dst; transport = Migration.Rdma; mode = Migration.Precopy })
    | exception Not_found -> Result.Error (Printf.sprintf "unknown node: %s" dest))
  | [ "migrate_postcopy"; dest ] -> (
    match Cluster.find_node cluster dest with
    | dst -> Result.Ok (Migrate { dst; transport = Migration.Tcp; mode = Migration.Postcopy })
    | exception Not_found -> Result.Error (Printf.sprintf "unknown node: %s" dest))
  | [ "stop" ] -> Result.Ok Stop
  | [ "cont" ] -> Result.Ok Cont
  | [ "query-status" ] -> Result.Ok Query_status
  | [ "query-migrate" ] -> Result.Ok Query_migrate
  | _ -> Result.Error (Printf.sprintf "unparsable command: %s" line)

let response_to_string = function
  | Ok_empty -> "ok"
  | Elapsed span -> Format.asprintf "ok elapsed=%a" Time.pp span
  | Migrated stats -> Format.asprintf "ok migrated in %a" Time.pp stats.Migration.duration
  | Status Vm.Running -> "status=running"
  | Status Vm.Paused -> "status=paused"
  | Error msg -> "error: " ^ msg
