(* Dirty/non-zero state is tracked at 64 KiB granularity (16 hardware
   pages per bit): byte-count accuracy is unaffected at the sizes the
   experiments use, and bitmap maintenance is 16x cheaper than per-4KiB
   tracking on multi-GB writers. *)
let page_size = 16 * Ninja_hardware.Calibration.page_size

(* Page bitmaps as 32-bit words in an int array. Writers touch multi-MB
   ranges at a time, so marking must be word-at-a-time, not bit-at-a-time:
   a range update masks whole words and counts the flipped bits with a
   SWAR popcount, making a 1 GB write ~500 word operations instead of
   ~16k bit operations. *)
module Bitset = struct
  type t = int array

  let word_bits = 32

  let full = (1 lsl word_bits) - 1

  let create n = Array.make ((n + word_bits - 1) / word_bits) 0

  let get (t : t) i = t.(i lsr 5) land (1 lsl (i land 31)) <> 0

  let popcount w =
    let w = w - ((w lsr 1) land 0x55555555) in
    let w = (w land 0x33333333) + ((w lsr 2) land 0x33333333) in
    let w = (w + (w lsr 4)) land 0x0f0f0f0f in
    (w * 0x01010101) lsr 24 land 0x3f

  (* Word-aligned mask covering the slice of word [w] inside [lo, hi). *)
  let mask_for w lo hi =
    let lo_bit = if w = lo lsr 5 then lo land 31 else 0 in
    let hi_bit = if w = (hi - 1) lsr 5 then (hi - 1) land 31 else 31 in
    ((1 lsl (hi_bit - lo_bit + 1)) - 1) lsl lo_bit

  (* Set every bit in [lo, hi); returns how many were newly set. *)
  let set_range (t : t) lo hi =
    if hi <= lo then 0
    else begin
      let added = ref 0 in
      for w = lo lsr 5 to (hi - 1) lsr 5 do
        let mask = mask_for w lo hi in
        let old = t.(w) in
        let updated = old lor mask in
        if updated <> old then begin
          added := !added + popcount (updated lxor old);
          t.(w) <- updated
        end
      done;
      !added
    end

  (* Clear every bit in [lo, hi); returns how many were cleared. *)
  let clear_range (t : t) lo hi =
    if hi <= lo then 0
    else begin
      let removed = ref 0 in
      for w = lo lsr 5 to (hi - 1) lsr 5 do
        let mask = mask_for w lo hi in
        let old = t.(w) in
        let updated = old land (lnot mask land full) in
        if updated <> old then begin
          removed := !removed + popcount (old lxor updated);
          t.(w) <- updated
        end
      done;
      !removed
    end

  let clear_all (t : t) = Array.fill t 0 (Array.length t) 0
end

type t = {
  pages : int;
  nonzero : Bitset.t;
  dirty : Bitset.t;
  (* Postcopy dual residency: while a postcopy migration is active, the
     [resident] bitmap records which nonzero pages already live at the
     destination. Pages the guest writes after switchover materialise at
     the destination directly, so [write] marks them resident; the
     puller claims the remaining remote (nonzero, not-yet-resident)
     pages lowest-index-first via [pull_pages]. *)
  resident : Bitset.t;
  mutable resident_count : int;
  mutable postcopy_active : bool;
  mutable pull_cursor : int; (* word index; remote pages never reappear below it *)
  mutable nonzero_count : int;
  mutable dirty_count : int;
  mutable next_free : int; (* bump allocator; freed regions are recycled *)
  mutable free_list : (int * int) list; (* (start, len) *)
}

type region = { start : int; len : int; mutable live : bool }

let pages_of_bytes b = int_of_float (Float.ceil (b /. float_of_int page_size))

let create ~total_bytes =
  if not (total_bytes > 0.0) then invalid_arg "Memory.create: size must be positive";
  let pages = pages_of_bytes total_bytes in
  {
    pages;
    nonzero = Bitset.create pages;
    dirty = Bitset.create pages;
    resident = Bitset.create pages;
    resident_count = 0;
    postcopy_active = false;
    pull_cursor = 0;
    nonzero_count = 0;
    dirty_count = 0;
    next_free = 0;
    free_list = [];
  }

let total_bytes t = float_of_int t.pages *. float_of_int page_size

let alloc t ~bytes =
  let len = pages_of_bytes bytes in
  let fit =
    List.find_opt (fun (_, flen) -> flen >= len) t.free_list
  in
  match fit with
  | Some ((fstart, flen) as entry) ->
    t.free_list <- List.filter (fun e -> e <> entry) t.free_list;
    if flen > len then t.free_list <- (fstart + len, flen - len) :: t.free_list;
    { start = fstart; len; live = true }
  | None ->
    if t.next_free + len > t.pages then invalid_arg "Memory.alloc: out of guest memory";
    let start = t.next_free in
    t.next_free <- start + len;
    { start; len; live = true }

let region_bytes r = float_of_int r.len *. float_of_int page_size

let write t r ~offset ~bytes =
  if not r.live then invalid_arg "Memory.write: region was freed";
  if offset < 0.0 || bytes < 0.0 then invalid_arg "Memory.write: negative range";
  if bytes = 0.0 then ()
  else begin
    let first = r.start + (int_of_float offset / page_size) in
    let last_excl =
      r.start + (pages_of_bytes (offset +. bytes)) |> fun l -> min l (r.start + r.len)
    in
    t.nonzero_count <- t.nonzero_count + Bitset.set_range t.nonzero first last_excl;
    t.dirty_count <- t.dirty_count + Bitset.set_range t.dirty first last_excl;
    if t.postcopy_active then
      t.resident_count <- t.resident_count + Bitset.set_range t.resident first last_excl
  end

let write_all t r = write t r ~offset:0.0 ~bytes:(region_bytes r)

let free t r =
  if r.live then begin
    r.live <- false;
    let last_excl = r.start + r.len in
    t.nonzero_count <- t.nonzero_count - Bitset.clear_range t.nonzero r.start last_excl;
    t.dirty_count <- t.dirty_count - Bitset.clear_range t.dirty r.start last_excl;
    t.resident_count <- t.resident_count - Bitset.clear_range t.resident r.start last_excl;
    t.free_list <- (r.start, r.len) :: t.free_list
  end

let nonzero_bytes t = float_of_int t.nonzero_count *. float_of_int page_size

let zero_bytes t = float_of_int (t.pages - t.nonzero_count) *. float_of_int page_size

let dirty_bytes t = float_of_int t.dirty_count *. float_of_int page_size

let clear_dirty t =
  Bitset.clear_all t.dirty;
  t.dirty_count <- 0

let used_fraction t = float_of_int t.nonzero_count /. float_of_int t.pages

let page_nonzero t i = Bitset.get t.nonzero i

let page_dirty t i = Bitset.get t.dirty i

(* ------------------------------------------------------------------ *)
(* Postcopy residency *)

let reset_residency t =
  Bitset.clear_all t.resident;
  t.resident_count <- 0;
  t.pull_cursor <- 0

let begin_postcopy t =
  reset_residency t;
  t.postcopy_active <- true

let end_postcopy t =
  reset_residency t;
  t.postcopy_active <- false

let postcopy_active t = t.postcopy_active

let resident_bytes t = float_of_int t.resident_count *. float_of_int page_size

(* resident ⊆ nonzero: pulls only claim nonzero pages and [write] marks
   both bitmaps, so the difference is exactly the still-at-source set. *)
let remote_bytes t =
  float_of_int (t.nonzero_count - t.resident_count) *. float_of_int page_size

let page_resident t i = Bitset.get t.resident i

let pull_pages t ~max_pages =
  if max_pages <= 0 then 0
  else begin
    let words = Array.length t.nonzero in
    let pulled = ref 0 in
    let w = ref t.pull_cursor in
    while !pulled < max_pages && !w < words do
      let remote = t.nonzero.(!w) land lnot t.resident.(!w) land Bitset.full in
      if remote = 0 then begin
        (* Drained word: remote pages never reappear (post-switchover
           writes land resident), so the cursor can skip it for good. *)
        if !w = t.pull_cursor then t.pull_cursor <- t.pull_cursor + 1;
        incr w
      end
      else begin
        let need = max_pages - !pulled in
        let avail = Bitset.popcount remote in
        if avail <= need then begin
          t.resident.(!w) <- t.resident.(!w) lor remote;
          pulled := !pulled + avail;
          if !w = t.pull_cursor then t.pull_cursor <- t.pull_cursor + 1;
          incr w
        end
        else begin
          (* Claim the lowest [need] set bits of [remote]. *)
          let taken = ref 0 and bit = ref 0 in
          let word = ref t.resident.(!w) in
          while !taken < need do
            let m = 1 lsl !bit in
            if remote land m <> 0 then begin
              word := !word lor m;
              incr taken
            end;
            incr bit
          done;
          t.resident.(!w) <- !word;
          pulled := !pulled + need
        end
      end
    done;
    t.resident_count <- t.resident_count + !pulled;
    !pulled
  end
