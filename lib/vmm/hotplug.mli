(** PCI hotplug (ACPI acpiphp protocol).

    [device_del]/[device_add] are the timed monitor operations: the VMM
    raises an ACPI event, the guest's acpiphp driver quiesces or probes the
    device, and only then does the device list change. Durations are the
    per-device-class constants calibrated against Table II, multiplied by
    the "migration noise" factor when other VMs of the same job are
    mid-migration (§IV-B2).

    Both calls block the calling fiber for the operation's duration. *)

open Ninja_hardware

val device_del : Vm.t -> tag:string -> ?noise:float -> unit -> Ninja_engine.Time.span
(** Returns the elapsed hotplug time. Raises [Not_found] if the tag is not
    attached. *)

val device_add : Vm.t -> device:Device.t -> ?noise:float -> unit -> Ninja_engine.Time.span
(** Attach a device. For a bypass HCA the host must actually have an IB
    port — raises {!No_backing_port} otherwise (you cannot passthrough
    hardware the destination node does not have, which is exactly the
    heterogeneity barrier of the paper). An armed [Hotplug_attach_fail]
    fault raises {!Attach_failed} after the ACPI delay, leaving the
    device unattached — a transient failure a retry may clear. *)

exception No_backing_port of string

exception Attach_failed of string
