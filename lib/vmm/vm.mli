(** A QEMU/KVM-style virtual machine.

    A VM has vCPUs that draw from its current host's processor-sharing CPU
    pool, page-tracked guest memory, and a set of attached PCI devices. A
    para-virtualised virtio NIC is attached at boot; a VMM-bypass IB HCA
    may be hot-added/removed ({!Hotplug}). While any bypass device is
    attached the VM cannot migrate — the constraint the paper's whole
    mechanism exists to work around.

    Guest-side code (MPI ranks, workloads) runs as fibers that perform
    {!compute} and {!guest_write}; both respect the VMM pause gate, so a
    paused VM makes no progress and dirties no memory. *)

open Ninja_engine
open Ninja_hardware

type state = Running | Paused

type t

val create :
  Cluster.t ->
  name:string ->
  host:Node.t ->
  vcpus:int ->
  mem_bytes:float ->
  ?os_resident_bytes:float ->
  unit ->
  t
(** Boots [Running] with a virtio NIC ["virtio0"] attached and
    [os_resident_bytes] (default 2.3 GB — kernel, OMPI runtime, page
    cache) of memory already non-zero. *)

val name : t -> string

val cluster : t -> Cluster.t

val host : t -> Node.t

val vcpus : t -> int

val memory : t -> Memory.t

val state : t -> state

(** {1 Devices} *)

val devices : t -> Device.t list

val find_device : t -> tag:string -> Device.t option

val has_bypass_device : t -> bool

val attach_device : t -> Device.t -> unit
(** Immediate bookkeeping + hook dispatch; the timed ACPI protocol lives in
    {!Hotplug}. Raises [Invalid_argument] on duplicate tag. *)

val detach_device : t -> tag:string -> Device.t
(** Raises [Not_found] if no such device. *)

(** {1 VMM-side lifecycle} *)

val pause : t -> unit

val resume : t -> unit

val set_host : t -> Node.t -> unit
(** Used by {!Migration}; re-binds the virtio NIC to the new host and fires
    migration hooks. *)

val migration_lock : t -> Semaphore.t
(** Serialises migration/snapshot operations on this VM. *)

(** {1 Postcopy failure semantics} *)

val switchover_committed : t -> bool
(** True between a postcopy switchover commit and the end of its page
    drain: the VM runs at the destination with pages still at the
    source, so it must not be rerouted and cannot roll back. *)

val set_switchover_committed : t -> bool -> unit
(** Used by {!Migration}'s postcopy path. *)

val is_lost : t -> bool
(** The VM's source died mid-postcopy-drain: part of its memory is gone
    and no host has a complete image. Terminal. *)

val mark_lost : t -> unit

(** {1 Hooks} *)

val on_device_added : t -> (Device.t -> unit) -> unit

val on_device_removed : t -> (Device.t -> unit) -> unit

val on_migrated : t -> (src:Node.t -> dst:Node.t -> unit) -> unit

(** {1 Guest-side operations (called from fibers)} *)

val await_running : t -> unit
(** Block while the VM is paused. *)

val compute : ?cores:float -> ?chunk:float -> t -> core_seconds:float -> unit
(** Execute CPU work on the current host, in [chunk]-sized pieces (default
    1 core-second) so that pauses and host changes take effect promptly.
    Over-committed hosts slow this down via processor sharing; an active
    {!set_compute_slowdown} factor (demand paging during a postcopy pull)
    inflates the work. *)

val set_compute_slowdown : t -> float -> unit
(** Multiplier (>= 1.0) applied to guest compute and memory writes while
    set; used by postcopy migration to model remote demand faults. *)

val compute_slowdown : t -> float

val guest_write : t -> Memory.region -> offset:float -> bytes:float -> bandwidth:float -> unit
(** Write [bytes] into guest memory at the given memory bandwidth (one core
    of demand), dirtying pages as it goes, in 256 MiB chunks — the write
    pattern precopy migration reacts to. *)

val pp : Format.formatter -> t -> unit
