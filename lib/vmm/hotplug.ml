open Ninja_engine
open Ninja_faults
open Ninja_hardware

exception No_backing_port of string

exception Attach_failed of string

let timed vm span =
  let start = Sim.now (Cluster.sim (Vm.cluster vm)) in
  Sim.sleep span;
  Time.diff (Sim.now (Cluster.sim (Vm.cluster vm))) start

let device_del vm ~tag ?(noise = 1.0) () =
  match Vm.find_device vm ~tag with
  | None -> raise Not_found
  | Some d ->
    let span = Time.scale (Device.detach_time d.kind) noise in
    let elapsed = timed vm span in
    ignore (Vm.detach_device vm ~tag);
    elapsed

let device_add vm ~device ?(noise = 1.0) () =
  (match (device : Device.t).kind with
  | Device.Ib_hca ->
    if not (Node.has_ib (Vm.host vm)) then
      raise
        (No_backing_port
           (Printf.sprintf "%s: host %s has no InfiniBand port to pass through" (Vm.name vm)
              (Vm.host vm).Node.name))
  | Device.Virtio_net | Device.Eth_10g | Device.Emulated_nic -> ());
  let span = Time.scale (Device.attach_time device.kind) noise in
  let elapsed = timed vm span in
  (* Transient injected failure: the ACPI handshake ran its course but the
     guest never saw the device come up — a retry may succeed. *)
  let injector = Cluster.injector (Vm.cluster vm) in
  if
    Injector.enabled injector
    && Injector.fire injector Injector.Hotplug_attach_fail ~site:(Vm.name vm)
  then
    raise
      (Attach_failed
         (Printf.sprintf "%s: hotplug of %s failed" (Vm.name vm) device.Device.tag));
  Vm.attach_device vm device;
  elapsed
