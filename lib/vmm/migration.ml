open Ninja_engine
open Ninja_flownet
open Ninja_hardware

open Ninja_faults
open Ninja_telemetry

exception Bypass_device_attached of string

exception Aborted of string

exception Postcopy_lost of string

type transport = Tcp | Rdma

type mode = Precopy | Postcopy

let mode_name = function Precopy -> "precopy" | Postcopy -> "postcopy"

let mode_of_string = function
  | "precopy" -> Ok Precopy
  | "postcopy" -> Ok Postcopy
  | s -> Error (Printf.sprintf "unknown migration mode %S (expected precopy or postcopy)" s)

type stats = {
  duration : Time.span;
  rounds : int;
  transferred_bytes : float;
  scanned_zero_bytes : float;
  downtime : Time.span;
  pulls : Time.span list;
}

let sender_rate = function
  | Tcp -> Calibration.transfer_rate
  | Rdma -> Calibration.rdma_transfer_rate

let sender_cpu_demand = function
  | Tcp -> Calibration.migration_cpu_demand
  | Rdma -> 0.15 (* RDMA offloads the copy; §V. *)

let precopy_stall_duration = Time.sec 3

let postcopy_hot_set_bytes = 256.0 *. 1024.0 *. 1024.0

let postcopy_fault_slowdown = 2.5

(* One prioritized pull per chunk: the guest's demand faults front-run the
   background prefetcher, so each chunk is one rated flow on the fabric
   and one [migration/pull] probe for the checker/telemetry. *)
let postcopy_pull_chunk_bytes = 256.0 *. 1024.0 *. 1024.0

(* Shared sender machinery: a private capacity hop modelling the
   single-threaded QEMU sender (§V: one core saturated, < 1.3 Gb/s wire),
   in series with the shared Ethernet fabric path, plus the sender
   thread's CPU load on the source host. *)
type sender = {
  route : Fabric.link list;
  cpu : Ps_resource.t;
  cpu_task : Ps_resource.task;
  mutable sent : float;
}

let start_sender vm ~src ~dst ~transport =
  let cluster = Vm.cluster vm in
  let fabric = Cluster.fabric cluster in
  let sender_link =
    Fabric.add_link fabric
      ~name:(Printf.sprintf "%s.sender" (Vm.name vm))
      ~capacity:(sender_rate transport)
  in
  let path = Cluster.route cluster ~net:Cluster.Eth ~src ~dst in
  (* Work value is just "longer than any migration"; the task is cancelled
     when the migration completes. *)
  let cpu_task =
    Ps_resource.start src.Node.cpu ~demand:(sender_cpu_demand transport) ~work:1e8
  in
  { route = sender_link :: path; cpu = src.Node.cpu; cpu_task; sent = 0.0 }

let send sender vm bytes =
  if bytes > 0.0 then begin
    sender.sent <- sender.sent +. bytes;
    Fabric.transfer (Cluster.fabric (Vm.cluster vm)) ~route:sender.route ~bytes
  end

let stop_sender sender = Ps_resource.cancel sender.cpu sender.cpu_task

(* ------------------------------------------------------------------ *)

let precopy vm ~dst ~transport =
  let cluster = Vm.cluster vm in
  let sim = Cluster.sim cluster in
  let src = Vm.host vm in
  let sender = start_sender vm ~src ~dst ~transport in
  let memory = Vm.memory vm in
  let was_running = Vm.state vm = Vm.Running in
  (* Injected fault gate, evaluated at each round boundary: a stall burns
     extra transfer time; an abort tears the attempt down (the VM keeps
     its source host and pre-migration run state — the destination simply
     discards the partial image). *)
  let injector = Cluster.injector cluster in
  let fault_gate () =
    if Injector.enabled injector then begin
      if Injector.fire injector Injector.Precopy_stall ~site:(Vm.name vm) then
        Sim.sleep precopy_stall_duration;
      if Injector.fire injector Injector.Precopy_abort ~site:(Vm.name vm) then begin
        stop_sender sender;
        if was_running && Vm.state vm = Vm.Paused then Vm.resume vm;
        raise
          (Aborted (Printf.sprintf "%s: precopy to %s aborted" (Vm.name vm) dst.Node.name))
      end
    end
  in
  fault_gate ();
  (* Round 0: full walk. Zero pages cost scan time only. *)
  let zero = Memory.zero_bytes memory in
  Memory.clear_dirty memory;
  send sender vm (Memory.nonzero_bytes memory);
  if zero > 0.0 then Sim.sleep (Time.of_sec_f (zero /. Calibration.zero_scan_rate));
  let downtime_budget_bytes =
    Time.to_sec_f Calibration.migration_downtime_target *. sender_rate transport
  in
  let rec rounds n =
    fault_gate ();
    let dirty = Memory.dirty_bytes memory in
    if dirty <= downtime_budget_bytes || n >= Calibration.migration_max_rounds then begin
      (* Stop-and-copy. *)
      Vm.pause vm;
      Memory.clear_dirty memory;
      let t0 = Sim.now sim in
      send sender vm dirty;
      Span.emit_note (Cluster.probes cluster) ~name:"stop-and-copy" ~cat:"vmm"
        ~proc:src.Node.name ~thread:(Vm.name vm) ~start:t0 ();
      (n + 1, Time.diff (Sim.now sim) t0)
    end
    else begin
      Memory.clear_dirty memory;
      send sender vm dirty;
      rounds (n + 1)
    end
  in
  let rounds, downtime = rounds 1 in
  stop_sender sender;
  Vm.set_host vm dst;
  (* Restore the pre-migration run state: a VM frozen at a SymVirt fence
     must stay frozen until the controller signals it. *)
  if was_running then Vm.resume vm;
  (rounds, zero, downtime, sender.sent, [])

let postcopy vm ~dst ~transport =
  let cluster = Vm.cluster vm in
  let sim = Cluster.sim cluster in
  let src = Vm.host vm in
  let sender = start_sender vm ~src ~dst ~transport in
  let memory = Vm.memory vm in
  let was_running = Vm.state vm = Vm.Running in
  let injector = Cluster.injector cluster in
  let probes = Cluster.probes cluster in
  (* Pre-commit fault gate, mirroring precopy's round gate: until the
     switchover commits the destination holds no unique state, so an
     injected abort is still a clean return-to-source. *)
  if Injector.enabled injector then begin
    if Injector.fire injector Injector.Precopy_stall ~site:(Vm.name vm) then
      Sim.sleep precopy_stall_duration;
    if Injector.fire injector Injector.Precopy_abort ~site:(Vm.name vm) then begin
      stop_sender sender;
      raise
        (Aborted
           (Printf.sprintf "%s: postcopy to %s aborted before switchover" (Vm.name vm)
              dst.Node.name))
    end
  end;
  (* Stop-and-switch: push vCPU state plus a small hot set, flip hosts.
     From here on the destination owns the VM; there is no way back. *)
  Vm.pause vm;
  Memory.clear_dirty memory;
  Memory.begin_postcopy memory;
  let page = float_of_int Memory.page_size in
  let t0 = Sim.now sim in
  let hot_pages =
    Memory.pull_pages memory ~max_pages:(int_of_float (postcopy_hot_set_bytes /. page))
  in
  send sender vm (float_of_int hot_pages *. page);
  let downtime = Time.diff (Sim.now sim) t0 in
  Span.emit_note probes ~name:"stop-and-switch" ~cat:"vmm" ~proc:src.Node.name
    ~thread:(Vm.name vm) ~start:t0 ();
  Vm.set_host vm dst;
  Vm.set_switchover_committed vm true;
  if was_running then Vm.resume vm;
  (* Demand-paged drain: the guest runs at the destination under the
     remote-fault slowdown while prioritized pulls move the remaining
     pages chunk by chunk. Pages the guest writes meanwhile materialise
     at the destination (Memory marks them resident), so each page moves
     at most once. The source must stay alive for the whole drain: its
     death at a pull boundary loses the VM. *)
  let chunk_pages = max 1 (int_of_float (postcopy_pull_chunk_bytes /. page)) in
  let pulls = ref [] in
  let lost = ref false in
  Vm.set_compute_slowdown vm postcopy_fault_slowdown;
  while (not !lost) && Memory.remote_bytes memory > 0.0 do
    if
      Injector.enabled injector
      && Injector.fire injector Injector.Node_death ~site:src.Node.name
    then Cluster.kill_node cluster src;
    if not (Cluster.node_alive cluster src) then lost := true
    else begin
      let t_pull = Sim.now sim in
      let fresh = Memory.pull_pages memory ~max_pages:chunk_pages in
      let bytes = float_of_int fresh *. page in
      send sender vm bytes;
      pulls := Time.diff (Sim.now sim) t_pull :: !pulls;
      if Probe.active probes then
        Probe.emit probes ~topic:"migration" ~action:"pull" ~subject:(Vm.name vm)
          ~info:
            [
              ("bytes", Printf.sprintf "%.0f" bytes);
              ("fresh_pages", string_of_int fresh);
              ("dup_pages", "0");
              ("remaining", Printf.sprintf "%.0f" (Memory.remote_bytes memory));
            ]
          ()
    end
  done;
  Vm.set_compute_slowdown vm 1.0;
  stop_sender sender;
  if !lost then begin
    (* The remote pages died with the source: no host has a complete
       image any more. Freeze what remains and report the loss. *)
    let missing = Memory.remote_bytes memory in
    Vm.pause vm;
    Vm.mark_lost vm;
    Vm.set_switchover_committed vm false;
    Memory.end_postcopy memory;
    if Probe.active probes then
      Probe.emit probes ~topic:"migration" ~action:"lost" ~subject:(Vm.name vm)
        ~info:
          [
            ("src", src.Node.name);
            ("dst", dst.Node.name);
            ("missing", Printf.sprintf "%.0f" missing);
          ]
        ();
    raise
      (Postcopy_lost
         (Printf.sprintf "%s: source %s died mid-postcopy (%.0f bytes unrecoverable)"
            (Vm.name vm) src.Node.name missing))
  end;
  Vm.set_switchover_committed vm false;
  Memory.end_postcopy memory;
  (* Writes that landed during the pull went straight to the destination;
     nothing is ever re-sent. *)
  Memory.clear_dirty memory;
  (1, 0.0, downtime, sender.sent, List.rev !pulls)

let migrate vm ~dst ?(transport = Tcp) ?(mode = Precopy) () =
  if Vm.has_bypass_device vm then
    raise
      (Bypass_device_attached
         (Printf.sprintf "%s: cannot migrate with VMM-bypass device attached" (Vm.name vm)));
  if Vm.is_lost vm then
    raise
      (Aborted
         (Printf.sprintf "%s: VM was lost by an earlier postcopy failure" (Vm.name vm)));
  let cluster = Vm.cluster vm in
  let sim = Cluster.sim cluster in
  let trace = Cluster.trace cluster in
  let injector = Cluster.injector cluster in
  if
    Injector.enabled injector
    && Injector.fire injector Injector.Node_death ~site:dst.Node.name
  then Cluster.kill_node cluster dst;
  if not (Cluster.node_alive cluster dst) then
    raise
      (Cluster.Node_dead
         (Printf.sprintf "%s: destination %s is dead" (Vm.name vm) dst.Node.name));
  Semaphore.with_permit (Vm.migration_lock vm) @@ fun () ->
  let src = Vm.host vm in
  let started = Sim.now sim in
  let mode_name = mode_name mode in
  Trace.recordf trace ~category:"migration" "%s: %s %s -> %s begins" (Vm.name vm) mode_name
    src.Node.name dst.Node.name;
  let probes = Cluster.probes cluster in
  Span.emit_begin probes ~name:mode_name ~cat:"vmm" ~proc:src.Node.name ~thread:(Vm.name vm)
    ~args:[ ("dst", dst.Node.name) ] ();
  let rounds, zero, downtime, sent, pulls =
    (* The end mirror must fire even when an injected fault aborts the
       attempt mid-copy, or the recorder's track would stay open. *)
    Fun.protect
      ~finally:(fun () ->
        Span.emit_end probes ~name:mode_name ~proc:src.Node.name ~thread:(Vm.name vm) ())
      (fun () ->
        match mode with
        | Precopy -> precopy vm ~dst ~transport
        | Postcopy -> postcopy vm ~dst ~transport)
  in
  let duration = Time.diff (Sim.now sim) started in
  Trace.recordf trace ~category:"migration" "%s: done in %a (%d rounds, downtime %a)"
    (Vm.name vm) Time.pp duration rounds Time.pp downtime;
  if Probe.active probes then
    Probe.emit probes ~topic:"migration" ~action:"done" ~subject:(Vm.name vm)
      ~info:
        [
          ("src", src.Node.name);
          ("dst", dst.Node.name);
          ("mode", mode_name);
          ("bytes", Printf.sprintf "%.0f" sent);
          ("rounds", string_of_int rounds);
          ("downtime_ns", Int64.to_string (Time.to_ns downtime));
        ]
      ();
  { duration; rounds; transferred_bytes = sent; scanned_zero_bytes = zero; downtime; pulls }
