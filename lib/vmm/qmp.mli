(** QEMU Monitor Protocol endpoint.

    Each VM exposes a monitor that accepts the commands the paper's SymVirt
    agents issue ([device_del], [device_add], [migrate], [stop], [cont],
    plus queries). Commands have a small controller round-trip overhead and
    execute the corresponding VMM operation; a textual form mirrors the
    QMP/telnet wire protocol so agents can be driven by scripts and tests
    can exercise parsing. *)

open Ninja_engine
open Ninja_hardware

type command =
  | Device_del of { tag : string; noise : float }
  | Device_add of { device : Device.t; noise : float }
  | Migrate of { dst : Node.t; transport : Migration.transport; mode : Migration.mode }
  | Stop
  | Cont
  | Query_status
  | Query_migrate

type response =
  | Ok_empty
  | Elapsed of Time.span
  | Migrated of Migration.stats
  | Status of Vm.state
  | Error of string

val command_timeout : Time.span
(** How long an injected [Qmp_timeout] fault stalls before the command is
    declared lost (it is dropped without executing, so a re-issue is
    always safe). *)

val execute : Vm.t -> command -> response
(** Blocking; includes the per-command controller/QMP overhead. Monitor
    commands never raise — failures (including injected timeouts, aborted
    precopies, lost postcopies, hotplug attach failures and dead
    destinations) surface as [Error]. *)

val parse : Cluster.t -> string -> (command, string) result
(** Textual command, e.g. ["device_del vf0"], ["device_add vf0 04:00.0 ib"],
    ["migrate eth03"], ["migrate_postcopy eth03"], ["stop"], ["cont"]. *)

val command_to_string : command -> string

val response_to_string : response -> string
