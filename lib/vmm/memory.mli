(** Guest physical memory with page-granular dirty and non-zero tracking.

    This is the state that drives precopy migration cost: pages that have
    never been written ("zero pages") are compressed by the QEMU sender and
    cost only scan time; written pages cost wire transfer; pages written
    since the last synchronisation round are dirty and must be re-sent.

    Workloads allocate {!region}s and {!write} into them; the migration
    algorithm snapshots and {!clear_dirty}s between rounds. *)

type t

type region

val create : total_bytes:float -> t
(** Rounds up to whole pages. *)

val total_bytes : t -> float

val page_size : int
(** Tracking granularity in bytes (a multiple of the 4 KiB hardware page;
    see the implementation note). *)

(** {1 Guest-side operations} *)

val alloc : t -> bytes:float -> region
(** Reserve a contiguous region (pages still zero until written). Raises
    [Invalid_argument] if the VM is out of memory. *)

val region_bytes : region -> float

val write : t -> region -> offset:float -> bytes:float -> unit
(** Mark the page range as non-zero and dirty. Clipped to the region. *)

val write_all : t -> region -> unit

val free : t -> region -> unit
(** Return the pages to the allocator and zero them (madvise-style). *)

(** {1 VMM-side observations} *)

val nonzero_bytes : t -> float

val zero_bytes : t -> float

val dirty_bytes : t -> float

val clear_dirty : t -> unit

val used_fraction : t -> float

(** {1 Postcopy dual residency}

    During a postcopy migration the VMM tracks, per page, whether it is
    already resident at the destination or still at the source. The
    resident set starts empty at switchover ({!begin_postcopy}); pulls
    claim remote (nonzero, not-yet-resident) pages lowest-index-first;
    guest writes after switchover materialise at the destination, so
    {!write} marks them resident too. {!end_postcopy} drops the bitmap
    when the drain completes (or the VM is lost). *)

val begin_postcopy : t -> unit
(** Switchover commit: clear the resident set and start dual tracking. *)

val end_postcopy : t -> unit
(** Drain complete (every page moved) or VM lost: stop dual tracking. *)

val postcopy_active : t -> bool

val pull_pages : t -> max_pages:int -> int
(** Mark up to [max_pages] remote pages resident, lowest index first;
    returns how many were newly claimed (0 when fully drained). Never
    claims a page twice — the no-double-resident invariant. *)

val resident_bytes : t -> float

val remote_bytes : t -> float
(** Nonzero bytes still at the source ([nonzero - resident]). *)

(** {1 Page-level inspection (tests)} *)

val page_nonzero : t -> int -> bool

val page_dirty : t -> int -> bool

val page_resident : t -> int -> bool
