(** Guest physical memory with page-granular dirty and non-zero tracking.

    This is the state that drives precopy migration cost: pages that have
    never been written ("zero pages") are compressed by the QEMU sender and
    cost only scan time; written pages cost wire transfer; pages written
    since the last synchronisation round are dirty and must be re-sent.

    Workloads allocate {!region}s and {!write} into them; the migration
    algorithm snapshots and {!clear_dirty}s between rounds. *)

type t

type region

val create : total_bytes:float -> t
(** Rounds up to whole pages. *)

val total_bytes : t -> float

val page_size : int
(** Tracking granularity in bytes (a multiple of the 4 KiB hardware page;
    see the implementation note). *)

(** {1 Guest-side operations} *)

val alloc : t -> bytes:float -> region
(** Reserve a contiguous region (pages still zero until written). Raises
    [Invalid_argument] if the VM is out of memory. *)

val region_bytes : region -> float

val write : t -> region -> offset:float -> bytes:float -> unit
(** Mark the page range as non-zero and dirty. Clipped to the region. *)

val write_all : t -> region -> unit

val free : t -> region -> unit
(** Return the pages to the allocator and zero them (madvise-style). *)

(** {1 VMM-side observations} *)

val nonzero_bytes : t -> float

val zero_bytes : t -> float

val dirty_bytes : t -> float

val clear_dirty : t -> unit

val used_fraction : t -> float

(** {1 Page-level inspection (tests)} *)

val page_nonzero : t -> int -> bool

val page_dirty : t -> int -> bool
