(* ninja-sim: run any of the paper's experiments from the command line.

   Examples:
     ninja_sim list
     ninja_sim run table2
     ninja_sim run fig8 --full --seed 7
     ninja_sim run all --csv out/
     ninja_sim plan --vms 4 --strategy grouped
*)

open Cmdliner
open Ninja_experiments

let seed_arg =
  let doc = "PRNG seed for the simulation(s), for reproducibly variable runs." in
  Arg.(value & opt (some int64) None & info [ "seed" ] ~docv:"SEED" ~doc)

let strategy_conv =
  let parse s = Ninja_planner.Solver.of_string s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Ninja_planner.Solver.name s))

(* Derived from the solver registry, so a newly registered strategy shows
   up in every command's help without touching this file. *)
let strategy_doc =
  Printf.sprintf "Planner strategy: %s." (Ninja_planner.Solver.help ())

let mode_conv =
  let parse s =
    Ninja_vmm.Migration.mode_of_string s |> Result.map_error (fun e -> `Msg e)
  in
  Arg.conv
    ( parse,
      fun fmt m -> Format.pp_print_string fmt (Ninja_vmm.Migration.mode_name m) )

let mode_doc =
  "Migration copy mode: $(b,precopy) (iterative dirty rounds, then stop-and-copy; \
   rollback restores the source on failure) or $(b,postcopy) (switch over after a \
   hot-set push, then demand-page over the fabric; once the switchover commits a \
   source death makes the VM unrecoverably $(i,lost) — there is no rollback)."

let traffic_conv =
  let parse s = Ninja_workloads.Traffic.of_string s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv
    ( parse,
      fun fmt p -> Format.pp_print_string fmt (Ninja_workloads.Traffic.to_string p) )

let traffic_doc =
  "Tenant traffic pattern: PATTERN[:K=V{,K=V}] where PATTERN is uniform, ring or \
   skewed and keys are rate (bytes/s), elephants and factor. Example: \
   'skewed:elephants=2,rate=1e5,factor=16'."

let fault_conv =
  let parse s =
    Ninja_faults.Injector.parse_spec s |> Result.map_error (fun e -> `Msg e)
  in
  Arg.conv (parse, Ninja_faults.Injector.pp_spec)

let topology_conv =
  let parse s =
    Ninja_hardware.Topology.of_string s |> Result.map_error (fun e -> `Msg e)
  in
  Arg.conv (parse, Ninja_hardware.Topology.pp)

let topology_arg =
  let doc =
    "Build clusters from a generated datacenter topology instead of the AGC testbed \
     spec. $(docv) is TIER[:K=V{,K=V}] where TIER is leaf-spine or fat-tree and keys \
     are pods, racks (per pod), hosts (per rack), ib-pods (leading pods that are \
     InfiniBand islands), oversub (leaf oversubscription ratio), cores, mem-gb and \
     seed (drives VM placement). Example: \
     'leaf-spine:pods=4,racks=2,hosts=8,ib-pods=2,oversub=4'."
  in
  Arg.(value & opt (some topology_conv) None & info [ "topology" ] ~docv:"TOPO" ~doc)

let fault_args =
  let doc =
    "Arm a fault before the run (repeatable). $(docv) is \
     POINT[@SITE][:PARAM{,PARAM}] where POINT is one of precopy-stall, \
     precopy-abort, qmp-timeout, attach-fail, agent-crash, node-death; SITE \
     narrows it to one VM or node name; PARAMs are t=SEC (fire at sim-time), \
     n=N (fire on the Nth hit), p=PROB (fire probabilistically) and count=N \
     or count=inf (firing budget, default 1). Example: \
     'precopy-abort@vm0:n=1,count=inf'."
  in
  Arg.(value & opt_all fault_conv [] & info [ "fault" ] ~docv:"SPEC" ~doc)

let print_tables ~csv_dir name tables =
  List.iter Ninja_metrics.Table.print tables;
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i table ->
        let path = Filename.concat dir (Printf.sprintf "%s-%d.csv" name i) in
        let oc = open_out path in
        output_string oc (Ninja_metrics.Table.to_csv table);
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      tables

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-18s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run an experiment (or 'all') and print its tables." in
  let name_arg =
    let doc = "Experiment name (see 'list'), or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let full =
    let doc = "Use the paper's full-scale parameters (slower) instead of quick mode." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let csv_dir =
    let doc = "Also write each table as CSV into $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let jobs =
    let doc =
      "Run up to $(docv) simulations domain-parallel: experiments of 'run all' and each \
       experiment's internal point grid (fig6 sizes, fig7 kernels, the evacuation matrix, \
       ...). Output is byte-identical to a serial run."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let trace_file =
    let doc =
      "Write the simulation trace timelines to $(docv) (one block per simulation; block \
       order across simulations is unspecified under --jobs > 1)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_file =
    let doc = "Also write every produced table to $(docv) as CSV, in experiment order." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let spans_file =
    let doc =
      "Write telemetry spans to $(docv) as Chrome trace-event JSON (load it in Perfetto or \
       chrome://tracing): one process track per node/component, one thread per VM/role, \
       timestamps in simulated time. Also appends the telemetry metrics of each simulation \
       to --metrics output. Byte-identical at any --jobs value."
    in
    Arg.(value & opt (some string) None & info [ "spans" ] ~docv:"FILE" ~doc)
  in
  let traffic =
    let doc =
      traffic_doc
      ^ " Traffic-aware experiments (placement) sweep this single pattern instead of \
         their built-in pattern axis."
    in
    Arg.(value & opt (some traffic_conv) None & info [ "traffic" ] ~docv:"PATTERN" ~doc)
  in
  let mig_mode =
    let doc =
      mode_doc
      ^ " Experiments that perform Ninja migrations (fig6, ...) use it instead of \
         their precopy default."
    in
    Arg.(value & opt (some mode_conv) None & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let run name full csv_dir seed faults topology traffic mig_mode jobs trace_file
      metrics_file spans_file =
    if jobs < 1 then begin
      prerr_endline "run: --jobs must be at least 1";
      exit 1
    end;
    let mode = if full then Ninja_engine.Run_ctx.Full else Ninja_engine.Run_ctx.Quick in
    let entries =
      if String.equal name "all" then Ok Registry.all
      else
        match Registry.find name with
        | Some e -> Ok [ e ]
        | None ->
          Error
            (Printf.sprintf "unknown experiment %S; expected one of: all, %s" name
               (String.concat ", " Registry.names))
    in
    match entries with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok entries ->
      let open Ninja_engine in
      let faults = List.map Ninja_faults.Injector.spec_to_string faults in
      (* Pooled tasks write their sinks into per-experiment buffers; the
         main domain drains each buffer in submission order, so the files
         come out deterministically even under --jobs > 1. *)
      let locked_sink buf =
        let m = Mutex.create () in
        fun chunk ->
          Mutex.lock m;
          Buffer.add_string buf chunk;
          if chunk = "" || chunk.[String.length chunk - 1] <> '\n' then Buffer.add_char buf '\n';
          Mutex.unlock m
      in
      let with_out path k =
        match path with
        | None -> k None
        | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> k (Some oc))
      in
      let with_pool k =
        if jobs > 1 then Pool.with_pool ~size:jobs (fun p -> k (Some p)) else k None
      in
      with_out trace_file @@ fun trace_oc ->
      with_out metrics_file @@ fun metrics_oc ->
      with_pool @@ fun pool ->
      let topology = Option.map Ninja_hardware.Topology.to_string topology in
      let traffic = Option.map Ninja_workloads.Traffic.to_string traffic in
      let migration = Option.map Ninja_vmm.Migration.mode_name mig_mode in
      let ctx =
        Run_ctx.make ?seed ~mode ~faults ?topology ?traffic ?migration ?pool ()
      in
      (* Span fragments accumulate across all experiments (in submission
         order) and are assembled into one JSON document at the end. *)
      let all_fragments = ref [] in
      let run_one e =
        let tbuf = Buffer.create 256 and mbuf = Buffer.create 256 in
        let smutex = Mutex.create () in
        let sfrags = ref [] in
        let ctx =
          Run_ctx.with_sinks
            ?trace:(Option.map (fun _ -> locked_sink tbuf) trace_oc)
            ?metrics:(Option.map (fun _ -> locked_sink mbuf) metrics_oc)
            ?spans:
              (Option.map
                 (fun _ chunk ->
                   Mutex.protect smutex (fun () -> sfrags := chunk :: !sfrags))
                 spans_file)
            ctx
        in
        let tables = Registry.run_entry ctx e in
        (tables, Buffer.contents tbuf, Buffer.contents mbuf, List.rev !sfrags)
      in
      let print_result e (tables, tchunk, mchunk, sfrags) =
        Printf.printf "== %s: %s ==\n%!" e.Registry.name e.Registry.description;
        print_tables ~csv_dir e.Registry.name tables;
        Option.iter (fun oc -> output_string oc tchunk) trace_oc;
        Option.iter (fun oc -> output_string oc mchunk) metrics_oc;
        all_fragments := List.rev_append sfrags !all_fragments
      in
      (* Submit everything up front, then print in submission order as
         results arrive: parallel output is byte-identical to serial. *)
      (match pool with
      | Some p ->
        entries
        |> List.map (fun e -> (e, Pool.submit p (fun () -> run_one e)))
        |> List.iter (fun (e, fut) -> print_result e (Pool.await p fut))
      | None -> List.iter (fun e -> print_result e (run_one e)) entries);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Ninja_telemetry.Export.document (List.rev !all_fragments));
          close_out oc;
          Printf.printf "wrote %s\n%!" path)
        spans_file
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ name_arg $ full $ csv_dir $ seed_arg $ fault_args $ topology_arg
      $ traffic $ mig_mode $ jobs $ trace_file $ metrics_file $ spans_file)

(* `ninja_sim script [FILE]`: execute a Fig. 5-style migration script
   against a canned demo scenario (2 VMs on the IB cluster running a
   bcast+reduce job). With no FILE, runs the paper's Fig. 5 script. *)
let script_cmd =
  let doc = "Execute a textual migration script (see Script_lang; default: the paper's Fig. 5)." in
  let file =
    let doc = "Script file; '-' or absent runs the built-in Fig. 5 script." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file seed =
    let text =
      match file with
      | None | Some "-" -> Ninja_core.Script_lang.fig5
      | Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    in
    match Ninja_core.Script_lang.parse text with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok commands ->
      let open Ninja_engine in
      let open Ninja_hardware in
      let sim = Sim.create ~seed:(Option.value seed ~default:3L) () in
      let cluster = Cluster.create sim () in
      let hosts = [ Cluster.find_node cluster "ib00"; Cluster.find_node cluster "ib01" ] in
      let ninja = Ninja_core.Ninja.setup cluster ~hosts () in
      ignore
        (Ninja_core.Ninja.launch ninja ~procs_per_vm:4 (fun ctx ->
             Ninja_workloads.Bcast_reduce.run ctx ~data_per_node:4.0e9 ~procs_per_vm:4
               ~steps:60 ()));
      Printf.printf "executing %d script commands against a 2-VM demo job:\n"
        (List.length commands);
      List.iter
        (fun c -> Printf.printf "  %s\n" (Ninja_core.Script_lang.command_to_string c))
        commands;
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 10);
          let b = Ninja_core.Script_lang.execute ninja commands in
          Format.printf "script done: %a@." Ninja_metrics.Breakdown.pp b;
          List.iter
            (fun vm ->
              Printf.printf "%s now on %s\n" (Ninja_vmm.Vm.name vm)
                (Ninja_vmm.Vm.host vm).Node.name)
            (Ninja_core.Ninja.vms ninja);
          Ninja_core.Ninja.wait_job ninja);
      Sim.run sim;
      Printf.printf "job finished at %.1f simulated seconds.\n" (Time.to_sec_f (Sim.now sim))
  in
  Cmd.v (Cmd.info "script" ~doc) Term.(const run $ file $ seed_arg)

(* `ninja_sim plan`: build, print and execute a batch evacuation plan on a
   demo scenario (N idle VMs on the IB rack, one constrained inter-rack
   uplink), showing the planner's step DAG, wave decomposition and the
   measured makespan of the chosen strategy. *)
let plan_cmd =
  let doc = "Build and execute a batch migration plan on a demo evacuation scenario." in
  let vms =
    let doc = "Number of VMs to evacuate (1-8)." in
    Arg.(value & opt int 4 & info [ "vms" ] ~docv:"N" ~doc)
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Ninja_planner.Solver.default
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc:strategy_doc)
  in
  let uplink =
    let doc = "Inter-rack uplink capacity in Gb/s." in
    Arg.(value & opt float 10.0 & info [ "uplink-gbps" ] ~docv:"GBPS" ~doc)
  in
  let run n strategy uplink_gbps seed =
    if n < 1 || n > 8 then begin
      prerr_endline "plan: --vms must be between 1 and 8";
      exit 1
    end;
    let open Ninja_engine in
    let open Ninja_hardware in
    let open Ninja_planner in
    let sim = Sim.create ~seed:(Option.value seed ~default:42L) () in
    let cluster = Cluster.create sim () in
    Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1
      ~capacity:(Units.gbps uplink_gbps) ~latency:(Time.us 50);
    let host i = Cluster.find_node cluster (Printf.sprintf "ib%02d" i) in
    let dst i = Cluster.find_node cluster (Printf.sprintf "eth%02d" i) in
    let vms =
      List.init n (fun i ->
          Ninja_vmm.Vm.create cluster
            ~name:(Printf.sprintf "vm%d" i)
            ~host:(host i) ~vcpus:8 ~mem_bytes:(Units.gb 20.0) ())
    in
    let table = List.mapi (fun i vm -> (vm, dst i)) vms in
    let dst_of vm = List.assq vm table in
    let plan = Plan.of_assignment cluster ~vms ~dst_of () in
    Format.printf "%a@." Plan.pp plan;
    List.iteri
      (fun i wave ->
        Format.printf "wave %d: %s@." (i + 1)
          (String.concat ", "
             (List.map (fun (s : Plan.step) -> Ninja_vmm.Vm.name s.Plan.vm) wave)))
      (Solver.grouped_waves cluster plan);
    let solved = Solver.solve strategy cluster plan in
    Format.printf "executing with strategy %s...@." (Solver.name strategy);
    let report = ref None in
    Sim.spawn sim (fun () -> report := Some (Executor.run cluster solved));
    Sim.run sim;
    Format.printf "%a@." Executor.pp_report (Option.get !report)
  in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run $ vms $ strategy $ uplink $ seed_arg)

(* `ninja_sim check`: fuzz the migration protocol with the invariant
   checker, writing a replayable repro file for every failure; or replay
   one such file deterministically. *)
let check_cmd =
  let doc =
    "Fuzz random migration scenarios under the protocol invariant checker \
     (lib/check), or replay a repro file."
  in
  let n =
    let doc = "Number of random scenarios to run." in
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let jobs =
    let doc = "Fan the scenarios out over $(docv) domains (results are identical to -j 1)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let out_dir =
    let doc = "Directory for repro files of failing scenarios." in
    Arg.(value & opt string "repros" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let plant =
    let doc =
      "Plant a known protocol bug into every scenario (self-test of the checker): \
       $(b,skip-rollback) or $(b,skip-fence). The campaign then $(i,fails) unless the \
       checker catches it."
    in
    Arg.(
      value
      & opt (some (enum (List.map (fun p -> (p, p)) Ninja_check.Runner.plants))) None
      & info [ "plant" ] ~docv:"BUG" ~doc)
  in
  let strategy =
    let doc =
      strategy_doc ^ " Pins every generated scenario to one registered strategy \
                      (the CI strategy matrix); default: the generator mixes them."
    in
    Arg.(value & opt (some strategy_conv) None & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let mig_mode =
    let doc =
      mode_doc
      ^ " Pins every generated scenario to one mode (the CI mode matrix); default: \
         the generator mixes them, roughly one in three postcopy."
    in
    Arg.(value & opt (some mode_conv) None & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let no_shrink =
    let doc = "Skip counterexample minimisation." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let replay =
    let doc = "Re-run the exact scenario serialised in $(docv) instead of fuzzing." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let run n jobs out_dir plant strategy mig_mode no_shrink replay seed topology =
    let open Ninja_check in
    match replay with
    | Some path ->
      let text =
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      in
      (match Scenario.of_string text with
      | Error msg ->
        prerr_endline ("check --replay: " ^ msg);
        exit 1
      | Ok scenario ->
        let r = Runner.run scenario in
        Format.printf "%a@." Runner.pp_result r;
        if Runner.failed r then exit 1)
    | None ->
      if n < 1 || jobs < 1 then begin
        prerr_endline "check: -n and -j must be at least 1";
        exit 1
      end;
      let open Ninja_engine in
      let with_pool k =
        if jobs > 1 then Pool.with_pool ~size:jobs (fun p -> k (Some p)) else k None
      in
      with_pool @@ fun pool ->
      let ctx = Run_ctx.make ?seed ?pool () in
      let summary =
        Fuzz.campaign ctx ~n ?plant ?topology ?strategy ?mode:mig_mode
          ~shrink:(not no_shrink) ()
      in
      Format.printf "%a@." Fuzz.pp_summary summary;
      if summary.Fuzz.failures <> [] then begin
        if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
        List.iter
          (fun (f : Fuzz.failure) ->
            let path = Filename.concat out_dir (Printf.sprintf "repro-%d.txt" f.Fuzz.index) in
            let oc = open_out path in
            output_string oc (Fuzz.repro_of f);
            close_out oc;
            Printf.printf "wrote %s (replay with: ninja_sim check --replay %s)\n%!" path path)
          summary.Fuzz.failures;
        exit 1
      end
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ n $ jobs $ out_dir $ plant $ strategy $ mig_mode $ no_shrink $ replay
      $ seed_arg $ topology_arg)

(* `ninja_sim serve`: run the continuous control plane — an open-loop
   request stream served by the long-running migration scheduler — under
   the protocol invariant checker, and report SLO percentiles. *)
let serve_cmd =
  let doc =
    "Run the continuous control plane: a long-lived migration service consuming an \
     open-loop request stream (rebalance, placement changes, evacuations, failovers), \
     checked against the protocol invariants. Exits 2 on an invariant violation or a \
     stranded request, 3 on an SLO breach."
  in
  let duration =
    let doc = "Simulated service duration in seconds." in
    Arg.(value & opt float 3600.0 & info [ "duration" ] ~docv:"SEC" ~doc)
  in
  let rate =
    let doc = "Mean Poisson arrival rate, requests per simulated second." in
    Arg.(value & opt float 0.2 & info [ "rate" ] ~docv:"R" ~doc)
  in
  let burst_period =
    let doc = "Overlay a burst source: one burst every $(docv) seconds (0 disables)." in
    Arg.(value & opt float 0.0 & info [ "burst-period" ] ~docv:"SEC" ~doc)
  in
  let burst_size =
    let doc = "Requests per burst." in
    Arg.(value & opt int 4 & info [ "burst-size" ] ~docv:"N" ~doc)
  in
  let burst_spread =
    let doc = "Burst arrival jitter in seconds." in
    Arg.(value & opt float 5.0 & info [ "burst-spread" ] ~docv:"SEC" ~doc)
  in
  let tenants =
    let doc = "Number of tenants (weights cycle 3:2:1)." in
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let vms_per_tenant =
    let doc = "VMs booted per tenant." in
    Arg.(value & opt int 2 & info [ "vms-per-tenant" ] ~docv:"N" ~doc)
  in
  let mem_gb =
    let doc = "Memory per VM in GB." in
    Arg.(value & opt float 8.0 & info [ "mem-gb" ] ~docv:"GB" ~doc)
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Ninja_planner.Solver.default
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc:strategy_doc)
  in
  let mig_mode =
    let doc =
      mode_doc
      ^ " Stamped on every request the service draws; a postcopy request whose \
         source dies mid-drain leaves the VM lost (counted, never resumed)."
    in
    Arg.(value & opt mode_conv Ninja_vmm.Migration.Precopy & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let traffic =
    let doc =
      traffic_doc
      ^ " Each tenant draws a seeded matrix; cost-model strategies and the \
         auto-swap policy price placements against it."
    in
    Arg.(value & opt (some traffic_conv) None & info [ "traffic" ] ~docv:"PATTERN" ~doc)
  in
  let auto_swap =
    let doc =
      "Run the online destination-swap policy: between batches the dispatcher prices \
       every VM pair against the tenant traffic matrices and submits the best \
       improving exchange (most useful with --traffic)."
    in
    Arg.(value & flag & info [ "auto-swap" ] ~doc)
  in
  let max_inflight =
    let doc = "Concurrent non-overlapping batch plans." in
    Arg.(value & opt int 2 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let queue_cap =
    let doc = "Admission bound per tenant queue." in
    Arg.(value & opt int 8 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let slo =
    let doc = "p99 request-latency SLO in seconds; a breach exits 3." in
    Arg.(value & opt (some float) None & info [ "slo" ] ~docv:"SEC" ~doc)
  in
  let seeds =
    let doc = "Run one service simulation per seed (repeatable; default: --seed or 1)." in
    Arg.(value & opt_all int64 [] & info [ "seeds" ] ~docv:"SEED" ~doc)
  in
  let jobs =
    let doc =
      "Run the seeds domain-parallel on $(docv) domains; output is byte-identical to -j 1."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let show_log =
    let doc = "Print the per-request service log." in
    Arg.(value & flag & info [ "log" ] ~doc)
  in
  let trace_file =
    let doc = "Write the simulation trace timelines to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_file =
    let doc = "Write the telemetry metrics of each run to $(docv) as CSV." in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let spans_file =
    let doc =
      "Write request/migration spans to $(docv) as Chrome trace-event JSON (one \
       controlplane thread per request)."
    in
    Arg.(value & opt (some string) None & info [ "spans" ] ~docv:"FILE" ~doc)
  in
  let run duration rate burst_period burst_size burst_spread tenants_n vms_per_tenant
      mem_gb strategy mig_mode traffic auto_swap max_inflight queue_cap slo seed seeds
      jobs show_log faults topology trace_file metrics_file spans_file =
    if duration <= 0.0 || rate < 0.0 || tenants_n < 1 || vms_per_tenant < 0
       || max_inflight < 1 || queue_cap < 1 || jobs < 1
    then begin
      prerr_endline
        "serve: --duration must be positive, --rate non-negative, --tenants, \
         --max-inflight, --queue-cap and -j at least 1";
      exit 1
    end;
    let open Ninja_engine in
    let open Ninja_controlplane in
    let process =
      let base = Ninja_workloads.Arrivals.Poisson { rate } in
      if burst_period > 0.0 then
        Ninja_workloads.Arrivals.Overlay
          [ base;
            Ninja_workloads.Arrivals.Bursts
              { period = burst_period; size = burst_size; spread = burst_spread } ]
      else base
    in
    (match Ninja_workloads.Arrivals.validate process with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("serve: " ^ msg);
      exit 1);
    let faults = List.map Ninja_faults.Injector.spec_to_string faults in
    let seeds = if seeds = [] then [ Option.value seed ~default:1L ] else seeds in
    let locked_sink buf =
      let m = Mutex.create () in
      fun chunk ->
        Mutex.lock m;
        Buffer.add_string buf chunk;
        if chunk = "" || chunk.[String.length chunk - 1] <> '\n' then
          Buffer.add_char buf '\n';
        Mutex.unlock m
    in
    let with_out path k =
      match path with
      | None -> k None
      | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> k (Some oc))
    in
    let with_pool k =
      if jobs > 1 then Pool.with_pool ~size:jobs (fun p -> k (Some p)) else k None
    in
    with_out trace_file @@ fun trace_oc ->
    with_out metrics_file @@ fun metrics_oc ->
    with_pool @@ fun pool ->
    let topology = Option.map Ninja_hardware.Topology.to_string topology in
    let ctx = Run_ctx.make ~faults ?topology ?pool ~label:"serve" () in
    let all_fragments = ref [] in
    let serve_one ctx seed =
      let tbuf = Buffer.create 256 and mbuf = Buffer.create 256 in
      let smutex = Mutex.create () in
      let sfrags = ref [] in
      let ctx =
        Run_ctx.with_sinks
          ?trace:(Option.map (fun _ -> locked_sink tbuf) trace_oc)
          ?metrics:(Option.map (fun _ -> locked_sink mbuf) metrics_oc)
          ?spans:
            (Option.map
               (fun _ chunk ->
                 Mutex.protect smutex (fun () -> sfrags := chunk :: !sfrags))
               spans_file)
          (Run_ctx.with_seed seed ctx)
      in
      let env = Exp_common.fresh ctx in
      let tenant_names =
        List.init tenants_n (fun i ->
            (Printf.sprintf "t%d" i, [| 3.0; 2.0; 1.0 |].(i mod 3)))
      in
      let specs =
        Service.boot_tenants ?traffic env.Exp_common.cluster ~tenants:tenant_names
          ~vms_per_tenant ~mem_bytes:(Ninja_hardware.Units.gb mem_gb)
      in
      let config =
        { Service.default_config with
          strategy;
          mode = mig_mode;
          max_inflight;
          queue_cap;
          auto_swap
        }
      in
      let svc = Service.create env.Exp_common.cluster ~config ~tenants:specs () in
      let checker =
        Ninja_check.Checker.install env.Exp_common.cluster ~vms:(Service.vms svc)
      in
      Service.open_loop svc ~process ~horizon:duration;
      Exp_common.run_to_completion env;
      Ninja_check.Checker.check_finish checker;
      Ninja_check.Checker.detach checker;
      let violations = Ninja_check.Checker.violations checker in
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "== serve: seed %Ld, %.0fs at rate %.3g/s, strategy %s, mode %s ==\n" seed
        duration rate
        (Ninja_planner.Solver.name strategy)
        (Ninja_vmm.Migration.mode_name mig_mode);
      if show_log then List.iter (fun line -> pf "%s\n" line) (Service.log svc);
      let c name = int_of_float (Service.count svc name) in
      pf
        "requests: %d submitted, %d completed, %d rejected, %d dropped, %d failed \
         (%d deferrals, %d requeues, %d rollbacks, %d stranded VMs, %d lost VMs)\n"
        (Service.submitted svc) (c "ctl.requests.completed") (c "ctl.requests.rejected")
        (c "ctl.requests.dropped") (c "ctl.requests.failed") (c "ctl.requests.deferred")
        (c "ctl.requests.requeued") (c "ctl.batches.rolled_back") (c "ctl.vms.stranded")
        (c "ctl.vms.lost");
      (match Service.latency_percentiles svc with
      | None -> pf "request latency: no completed requests\n"
      | Some (p50, p95, p99) ->
        pf "request latency: p50 %.1fs, p95 %.1fs, p99 %.1fs\n" p50 p95 p99);
      (match Ninja_telemetry.Metrics.samples (Service.metrics svc) "ctl.vm.downtime.seconds" with
      | [] -> pf "vm downtime: none\n"
      | samples ->
        pf "vm downtime: %d fenced intervals, max %.2fs, total %.2fs\n"
          (List.length samples)
          (List.fold_left Float.max 0.0 samples)
          (List.fold_left ( +. ) 0.0 samples));
      pf "%s"
        (Format.asprintf "%a" Ninja_metrics.Table.pp
           (Ninja_telemetry.Metrics.to_table (Service.metrics svc)));
      let status = ref 0 in
      (match Service.accounting svc with
      | Ok () -> ()
      | Error msg ->
        pf "ACCOUNTING VIOLATION: %s\n" msg;
        status := 2);
      if violations <> [] then begin
        List.iter
          (fun v ->
            pf "INVARIANT VIOLATION: %s\n"
              (Format.asprintf "%a" Ninja_check.Checker.pp_violation v))
          violations;
        status := 2
      end;
      (match (slo, Service.latency_percentiles svc) with
      | Some budget, Some (_, _, p99) when p99 > budget && !status = 0 ->
        pf "SLO BREACH: p99 %.1fs > %.1fs\n" p99 budget;
        status := 3
      | _ -> ());
      (!status, Buffer.contents b, Buffer.contents tbuf, Buffer.contents mbuf,
       List.rev !sfrags)
    in
    let results = Exp_common.sweep ctx ~f:serve_one seeds in
    let worst =
      List.fold_left
        (fun acc (status, report, tchunk, mchunk, sfrags) ->
          print_string report;
          Option.iter (fun oc -> output_string oc tchunk) trace_oc;
          Option.iter (fun oc -> output_string oc mchunk) metrics_oc;
          all_fragments := List.rev_append sfrags !all_fragments;
          max acc status)
        0 results
    in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Ninja_telemetry.Export.document (List.rev !all_fragments));
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      spans_file;
    if worst <> 0 then exit worst
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ duration $ rate $ burst_period $ burst_size $ burst_spread $ tenants
      $ vms_per_tenant $ mem_gb $ strategy $ mig_mode $ traffic $ auto_swap
      $ max_inflight $ queue_cap $ slo $ seed_arg $ seeds $ jobs $ show_log $ fault_args
      $ topology_arg $ trace_file $ metrics_file $ spans_file)

let () =
  let doc = "Ninja migration reproduction: run the paper's experiments on the simulator." in
  let info = Cmd.info "ninja_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; run_cmd; script_cmd; plan_cmd; check_cmd; serve_cmd ]))
