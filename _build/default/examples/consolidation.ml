(* Server consolidation for utilisation (paper §II-A).

   Overnight, a half-idle 4-VM job is packed two-per-host onto the
   Ethernet cluster (freeing two IB nodes for other tenants), then spread
   back out in the morning. Shows the over-commit cost on iteration times
   and the hosts freed.

     dune exec examples/consolidation.exe
*)

open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_scheduler
open Ninja_workloads

let () =
  let sim = Sim.create ~seed:31L () in
  let cluster = Cluster.create sim () in
  let hosts prefix n =
    List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))
  in
  let ib = hosts "ib" 4 and eth = hosts "eth" 4 in
  let ninja = Ninja.setup cluster ~hosts:ib () in
  let sched = Cloud_scheduler.create ninja in

  let used_hosts () =
    Ninja.vms ninja
    |> List.map (fun vm -> (Ninja_vmm.Vm.host vm).Node.name)
    |> List.sort_uniq compare
    |> String.concat ", "
  in

  ignore
    (Ninja.launch ninja ~procs_per_vm:8 (fun ctx ->
         Npb.run ctx Npb.LU Npb.C
           ~on_iteration:(fun i dt ->
             if i mod 50 = 0 then Printf.printf "  LU iteration %3d: %5.2f s/iter\n" i dt)
           ()));

  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 30);
      print_endline "\n== night: consolidating 4 VMs onto 2 Ethernet hosts ==";
      let b =
        Cloud_scheduler.execute sched
          (Cloud_scheduler.Consolidate
             { vms_per_host = 2; targets = [ List.nth eth 0; List.nth eth 1 ] })
      in
      Format.printf "   overhead: %a@." Breakdown.pp b;
      Printf.printf "   hosts in use: %s\n" (used_hosts ());
      Sim.sleep (Time.sec 60);
      print_endline "\n== morning: spreading back onto the InfiniBand cluster ==";
      let b = Cloud_scheduler.execute sched (Cloud_scheduler.Rebalance { targets = ib }) in
      Format.printf "   overhead: %a@." Breakdown.pp b;
      Printf.printf "   hosts in use: %s\n" (used_hosts ());
      Ninja.wait_job ninja);

  print_endline "consolidation scenario (LU class C, 32 processes)";
  Sim.run sim;
  Printf.printf "\ndone at %.1f s; %d scheduler actions recorded.\n"
    (Time.to_sec_f (Sim.now sim))
    (List.length (Cloud_scheduler.history sched))
