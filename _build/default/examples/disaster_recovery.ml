(* Disaster recovery across data centers (paper §II-A).

   The InfiniBand data center (rack 0) gets an evacuation order; the VMs
   are live-migrated over a constrained WAN link to the Ethernet data
   center (rack 1) before the outage, and the MPI job continues there.
   Shows the cloud scheduler driving Ninja migration, and the WAN's
   effect on migration time.

     dune exec examples/disaster_recovery.exe
*)

open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_scheduler
open Ninja_workloads

let () =
  let sim = Sim.create ~seed:23L () in
  let cluster = Cluster.create sim () in
  (* The two racks are different sites, joined by a 10 Gb/s WAN with 8 ms
     one-way latency. *)
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps 10.0)
    ~latency:(Time.ms 8);
  let hosts prefix n =
    List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))
  in
  let ninja = Ninja.setup cluster ~hosts:(hosts "ib" 4) ~mem_gb:20.0 () in
  let sched = Cloud_scheduler.create ninja in

  ignore
    (Ninja.launch ninja ~procs_per_vm:4 (fun ctx ->
         Bcast_reduce.run ctx ~data_per_node:4.0e9 ~procs_per_vm:4 ~steps:30
           ~on_step:(fun s ->
             if s.Bcast_reduce.step mod 5 = 0 then
               Printf.printf "  step %2d  %5.1f s\n" s.Bcast_reduce.step s.Bcast_reduce.elapsed)
           ()));

  (* The storm hits rack 0 at t=60 s; evacuate before it does. *)
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 20);
      print_endline "\n== disaster alert for data center 0: evacuating over the WAN ==";
      let b = Cloud_scheduler.execute sched (Cloud_scheduler.Disaster { rack = 0 }) in
      Format.printf "   evacuation overhead: %a@." Breakdown.pp b;
      List.iter
        (fun vm ->
          Printf.printf "   %s is now on %s (rack %d)\n" (Ninja_vmm.Vm.name vm)
            (Ninja_vmm.Vm.host vm).Node.name (Ninja_vmm.Vm.host vm).Node.rack)
        (Ninja.vms ninja);
      Ninja.wait_job ninja);

  print_endline "disaster-recovery scenario (4 VMs evacuating data center 0)";
  Sim.run sim;
  Printf.printf "\njob completed in data center 1 at %.1f s; no process restarts.\n"
    (Time.to_sec_f (Sim.now sim))
