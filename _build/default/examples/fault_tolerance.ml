(* Reactive fault tolerance (paper §II): "using proactive and reactive
   fault tolerant systems, we can restart VMs on an Ethernet cluster from
   checkpointed VM images on an Infiniband cluster."

   A 2-VM MPI job runs on the InfiniBand cluster with a coordinated VM
   snapshot set written to NFS every 5 iterations. At t=35 s the IB data
   center is lost without warning; the job restarts from the last images
   on the Ethernet cluster and runs to completion — re-executing only the
   iterations since the last checkpoint.

     dune exec examples/fault_tolerance.exe
*)

open Ninja_engine
open Ninja_hardware
open Ninja_mpi
open Ninja_vmm
open Ninja_ft

let () =
  let sim = Sim.create ~seed:47L () in
  let cluster = Cluster.create sim () in
  let store = Snapshot.create_store cluster in
  let hosts prefix n =
    List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))
  in
  let spec =
    {
      Ft_runtime.procs_per_vm = 4;
      iterations = 30;
      checkpoint_every = 5;
      step =
        (fun ctx i ->
          Mpi.compute ctx ~seconds:0.6;
          Mpi.allreduce ctx ~bytes:5.0e7;
          if Mpi.rank ctx = 0 && i mod 5 = 0 then
            Printf.printf "[%6.1fs] iteration %2d done (transport: %s)\n" (Mpi.wtime ctx) i
              (match Mpi.current_transport ctx ~peer:4 with
              | Some k -> Btl.kind_name k
              | None -> "?"));
    }
  in
  print_endline "fault-tolerance scenario: 2 VMs, checkpoint every 5 iterations";
  let ft = Ft_runtime.start cluster ~store ~hosts:(hosts "ib" 2) spec in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 35);
      Printf.printf "\n[%6.1fs] !!! InfiniBand data center lost (completed: %d, last checkpoint: %s)\n"
        (Time.to_sec_f (Sim.now sim))
        (Ft_runtime.completed_iterations ft)
        (match Ft_runtime.last_checkpoint ft with
        | Some (i, _) -> Printf.sprintf "iteration %d" i
        | None -> "none");
      Ft_runtime.fail_and_restart ft ~new_hosts:(hosts "eth" 2);
      Printf.printf "[%6.1fs] restarted on the Ethernet cluster (incarnation %d)\n\n"
        (Time.to_sec_f (Sim.now sim))
        (Ft_runtime.incarnation ft);
      Ft_runtime.await ft);
  Sim.run sim;
  Printf.printf "\njob completed all %d iterations at %.1f s.\n" 30
    (Time.to_sec_f (Sim.now sim));
  let reworked =
    List.filter (fun i -> Ft_runtime.executions_of ft i > 1) (List.init 30 (fun i -> i + 1))
  in
  Printf.printf "iterations re-executed after the restart: %s\n"
    (String.concat ", " (List.map string_of_int reworked))
