open Ninja_mpi

type sample = { step : int; started : float; elapsed : float }

let run ctx ~data_per_node ~procs_per_vm ~steps ?(on_step = fun _ -> ()) () =
  if procs_per_vm <= 0 then invalid_arg "Bcast_reduce.run: procs_per_vm must be positive";
  let bytes = data_per_node /. float_of_int procs_per_vm in
  for step = 1 to steps do
    let started = Mpi.wtime ctx in
    Mpi.bcast ctx ~root:0 ~bytes;
    Mpi.reduce ctx ~root:0 ~bytes;
    Mpi.barrier ctx;
    Mpi.checkpoint_point ctx;
    if Mpi.rank ctx = 0 then
      on_step { step; started; elapsed = Mpi.wtime ctx -. started }
  done
