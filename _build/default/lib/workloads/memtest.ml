open Ninja_mpi
open Ninja_vmm

let default_bandwidth = 3.0e9

let alloc ctx ~array_bytes = Memory.alloc (Vm.memory (Mpi.vm ctx)) ~bytes:array_bytes

let one_pass ctx region ~array_bytes ~write_bandwidth =
  Vm.guest_write (Mpi.vm ctx) region ~offset:0.0 ~bytes:array_bytes ~bandwidth:write_bandwidth;
  Mpi.checkpoint_point ctx;
  Mpi.barrier ctx

let run ctx ~array_bytes ?(passes = 3) ?(write_bandwidth = default_bandwidth) () =
  let region = alloc ctx ~array_bytes in
  for _ = 1 to passes do
    one_pass ctx region ~array_bytes ~write_bandwidth
  done

let run_until ctx ~array_bytes ~until ?(write_bandwidth = default_bandwidth) () =
  let region = alloc ctx ~array_bytes in
  while Mpi.wtime ctx < until do
    one_pass ctx region ~array_bytes ~write_bandwidth
  done
