(** The Fig. 8 workload: "a simple MPI program that repeatedly broadcasts
    and reduces 8 GB data per a node". Iteration time tracks interconnect
    bandwidth, which is what makes the fallback/recovery transport switch
    visible in the per-step series. *)

type sample = { step : int; started : float; elapsed : float }

val run :
  Ninja_mpi.Mpi.ctx ->
  data_per_node:float ->
  procs_per_vm:int ->
  steps:int ->
  ?on_step:(sample -> unit) ->
  unit ->
  unit
(** Each VM ("node") contributes [data_per_node] bytes split across its
    [procs_per_vm] ranks; every step broadcasts each rank's share from
    rank 0 and reduces it back. [on_step] fires on rank 0 with the
    elapsed time of each step. *)
