(** The paper's memtest micro-benchmark (§IV-B): each MPI process
    sequentially writes a memory array of the configured size, over and
    over. It exists to create a controlled memory footprint (and dirty
    rate) for migration-overhead measurements (Table II, Fig. 6). *)

val run :
  Ninja_mpi.Mpi.ctx ->
  array_bytes:float ->
  ?passes:int ->
  ?write_bandwidth:float ->
  unit ->
  unit
(** Allocate [array_bytes] of guest memory and write it sequentially
    [passes] times (default 3) at [write_bandwidth] (default 3 GB/s),
    with a checkpoint-safe point and a barrier after every pass. *)

val run_until :
  Ninja_mpi.Mpi.ctx ->
  array_bytes:float ->
  until:float ->
  ?write_bandwidth:float ->
  unit ->
  unit
(** Keep writing passes until simulated time [until] (seconds). *)
