(** NAS Parallel Benchmarks skeletons (BT, CG, FT, LU).

    Each kernel is modelled as its iteration structure: per-iteration
    compute time per rank plus the kernel's communication pattern (BT:
    face exchanges on a 2-D process grid; CG: transpose exchanges + small
    allreduces; FT: a global transpose / all-to-all; LU: light wavefront
    neighbour traffic), with class-D working sets sized so that per-VM
    memory footprints span the paper's 2.3–16 GB range. This reproduces
    what Fig. 7 actually measures — baseline run time and
    migration-overhead sensitivity to footprint — without re-implementing
    the numerics.

    Message sizes are nominal for 64 ranks and scaled by 64/np so the
    aggregate volume is class-determined, like the real benchmarks. *)

open Ninja_mpi

type kernel = BT | CG | FT | LU | EP | IS | MG | SP

type klass = C | D

val all : kernel list
(** The four kernels the paper's Fig. 7 evaluates (BT, CG, FT, LU). *)

val extended : kernel list
(** All eight modelled kernels, including EP/IS/MG/SP (not used by the
    paper; provided for workload-library completeness). *)

val kernel_name : kernel -> string

val kernel_of_string : string -> kernel option

val iterations : kernel -> klass -> int

val footprint_per_vm : kernel -> klass -> procs_per_vm:int -> float
(** Application bytes resident per VM (the OS image comes on top). *)

val nominal_baseline : kernel -> klass -> float
(** Analytic no-migration run time on the idle IB cluster (seconds), for
    documentation and sanity tests. *)

val run : Mpi.ctx -> kernel -> klass -> ?on_iteration:(int -> float -> unit) -> unit -> unit
(** Execute the kernel to completion. [on_iteration] fires on rank 0 with
    (iteration index, elapsed seconds of that iteration). *)
