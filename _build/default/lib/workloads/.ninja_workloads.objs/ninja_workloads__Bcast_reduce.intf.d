lib/workloads/bcast_reduce.mli: Ninja_mpi
