lib/workloads/npb.ml: Float List Memory Mpi Ninja_mpi Ninja_vmm Rank String Vm
