lib/workloads/npb.mli: Mpi Ninja_mpi
