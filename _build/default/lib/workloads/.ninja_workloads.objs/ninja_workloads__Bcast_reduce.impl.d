lib/workloads/bcast_reduce.ml: Mpi Ninja_mpi
