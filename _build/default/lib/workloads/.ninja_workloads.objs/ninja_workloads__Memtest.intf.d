lib/workloads/memtest.mli: Ninja_mpi
