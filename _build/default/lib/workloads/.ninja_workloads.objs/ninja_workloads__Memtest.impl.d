lib/workloads/memtest.ml: Memory Mpi Ninja_mpi Ninja_vmm Vm
