open Ninja_mpi
open Ninja_vmm

type kernel = BT | CG | FT | LU | EP | IS | MG | SP

type klass = C | D

(* The paper's Fig. 7 uses BT/CG/FT/LU; the remaining NPB kernels are
   provided for workload-library completeness. *)
let all = [ BT; CG; FT; LU ]

let extended = [ BT; CG; FT; LU; EP; IS; MG; SP ]

let kernel_name = function
  | BT -> "BT"
  | CG -> "CG"
  | FT -> "FT"
  | LU -> "LU"
  | EP -> "EP"
  | IS -> "IS"
  | MG -> "MG"
  | SP -> "SP"

let kernel_of_string s =
  match String.uppercase_ascii s with
  | "BT" -> Some BT
  | "CG" -> Some CG
  | "FT" -> Some FT
  | "LU" -> Some LU
  | "EP" -> Some EP
  | "IS" -> Some IS
  | "MG" -> Some MG
  | "SP" -> Some SP
  | _ -> None

(* Per-kernel model parameters. Compute is core-seconds per rank per
   iteration at 64 ranks of class D, calibrated so the analytic baselines
   land near the paper's Fig. 7 bars; class C scales the work down ~4x.
   Communication sizes are per-rank nominal values at 64 ranks. *)

let iterations kernel klass =
  match (kernel, klass) with
  | BT, D -> 250
  | BT, C -> 200
  | CG, D -> 100
  | CG, C -> 75
  | FT, D -> 25
  | FT, C -> 20
  | LU, D -> 300
  | LU, C -> 250
  | EP, (C | D) -> 16
  | IS, (C | D) -> 10
  | MG, D -> 50
  | MG, C -> 40
  | SP, D -> 400
  | SP, C -> 320

let compute_per_iter kernel klass =
  let d =
    match kernel with
    | BT -> 3.90
    | CG -> 7.60
    | FT -> 16.70
    | LU -> 1.95
    | EP -> 8.00
    | IS -> 2.20
    | MG -> 4.50
    | SP -> 1.40
  in
  match klass with D -> d | C -> d /. 4.0

(* Application-resident bytes per VM at 8 ranks per VM (class D), spanning
   the paper's 2.3-16 GB per-VM footprint range once the OS image is
   added. *)
let footprint_per_vm kernel klass ~procs_per_vm =
  let per_vm_8 =
    match kernel with
    | BT -> 8.2e9
    | CG -> 1.5e9
    | FT -> 13.7e9
    | LU -> 3.9e9
    | EP -> 0.3e9
    | IS -> 4.6e9
    | MG -> 7.1e9
    | SP -> 6.0e9
  in
  let class_factor = match klass with D -> 1.0 | C -> 0.25 in
  per_vm_8 *. class_factor *. float_of_int procs_per_vm /. 8.0

let nominal_baseline kernel klass =
  let iters = float_of_int (iterations kernel klass) in
  let comm =
    match (kernel, klass) with
    | BT, D -> 0.05
    | CG, D -> 0.02
    | FT, D -> 1.4
    | LU, D -> 0.01
    | EP, D -> 0.0
    | IS, D -> 0.5
    | MG, D -> 0.03
    | SP, D -> 0.04
    | (BT | CG | FT | LU | EP | IS | MG | SP), C -> 0.01
  in
  iters *. (compute_per_iter kernel klass +. comm)

(* Message sizes (bytes per rank at 64 ranks); scaled by 64/np so class
   volume is constant. *)
let scale ctx nominal klass =
  let class_factor = match klass with D -> 1.0 | C -> 0.25 in
  nominal *. class_factor *. 64.0 /. float_of_int (Mpi.size ctx)

let communicate ctx kernel klass =
  let np = Mpi.size ctx in
  let r = Mpi.rank ctx in
  let neighbor d = ((r + d) mod np + np) mod np in
  match kernel with
  | BT ->
    (* Face exchanges on a (sqrt np)^2 grid: row and column neighbours. *)
    let face = scale ctx 3.0e6 klass in
    let row = max 1 (int_of_float (Float.sqrt (float_of_int np))) in
    if np > 1 then begin
      ignore (Mpi.sendrecv ctx ~dst:(neighbor 1) ~src:(neighbor (-1)) ~bytes:face);
      ignore (Mpi.sendrecv ctx ~dst:(neighbor (-1)) ~src:(neighbor 1) ~bytes:face);
      ignore (Mpi.sendrecv ctx ~dst:(neighbor row) ~src:(neighbor (-row)) ~bytes:face);
      ignore (Mpi.sendrecv ctx ~dst:(neighbor (-row)) ~src:(neighbor row) ~bytes:face)
    end
  | CG ->
    (* Transpose exchange with the conjugate rank + dot-product
       reductions. *)
    let seg = scale ctx 1.5e6 klass in
    if np > 1 then begin
      let partner = if r land 1 = 0 then neighbor 1 else neighbor (-1) in
      ignore (Mpi.sendrecv ctx ~dst:partner ~src:partner ~bytes:seg);
      for _ = 1 to 3 do
        Mpi.allreduce ctx ~bytes:8.0
      done
    end
  | FT ->
    (* Global transpose. *)
    let pair = scale ctx (34.4e9 /. (64.0 *. 64.0)) klass in
    if np > 1 then Mpi.alltoall ctx ~bytes_per_pair:pair
  | LU ->
    (* Wavefront pencil exchanges (aggregated per iteration). *)
    let pencil = scale ctx 2.5e5 klass in
    if np > 1 then begin
      ignore (Mpi.sendrecv ctx ~dst:(neighbor 1) ~src:(neighbor (-1)) ~bytes:pencil);
      ignore (Mpi.sendrecv ctx ~dst:(neighbor (-1)) ~src:(neighbor 1) ~bytes:pencil)
    end
  | EP ->
    (* Embarrassingly parallel: only the final counts are reduced. *)
    if np > 1 then Mpi.allreduce ctx ~bytes:80.0
  | IS ->
    (* Bucket sort: key histogram allreduce + all-to-all key exchange. *)
    if np > 1 then begin
      Mpi.allreduce ctx ~bytes:(scale ctx 4.0e3 klass);
      Mpi.alltoall ctx ~bytes_per_pair:(scale ctx (8.6e9 /. (64.0 *. 64.0)) klass)
    end
  | MG ->
    (* V-cycle: nearest-neighbour face exchanges at several grid levels
       plus a residual-norm allreduce. *)
    let face = scale ctx 1.2e6 klass in
    if np > 1 then begin
      for level = 0 to 3 do
        let d = 1 lsl level in
        ignore (Mpi.sendrecv ctx ~dst:(neighbor d) ~src:(neighbor (-d)) ~bytes:(face /. float_of_int (1 lsl level)))
      done;
      Mpi.allreduce ctx ~bytes:8.0
    end
  | SP ->
    (* Scalar pentadiagonal: like BT but lighter per sweep. *)
    let face = scale ctx 1.8e6 klass in
    let row = max 1 (int_of_float (Float.sqrt (float_of_int np))) in
    if np > 1 then begin
      ignore (Mpi.sendrecv ctx ~dst:(neighbor 1) ~src:(neighbor (-1)) ~bytes:face);
      ignore (Mpi.sendrecv ctx ~dst:(neighbor row) ~src:(neighbor (-row)) ~bytes:face)
    end

(* Touch the kernel's working set once so the VM's migratable footprint is
   realistic; the write rate mimics initialisation, not the solver. *)
let allocate_working_set ctx kernel klass =
  let vm = Mpi.vm ctx in
  let ranks_here =
    List.length (List.filter (fun p -> Rank.vm p == vm) (Rank.procs (Rank.job ctx)))
  in
  let per_rank =
    footprint_per_vm kernel klass ~procs_per_vm:ranks_here /. float_of_int ranks_here
  in
  let region = Memory.alloc (Vm.memory vm) ~bytes:per_rank in
  Vm.guest_write vm region ~offset:0.0 ~bytes:per_rank ~bandwidth:6.0e9

let run ctx kernel klass ?(on_iteration = fun _ _ -> ()) () =
  allocate_working_set ctx kernel klass;
  Mpi.barrier ctx;
  let iters = iterations kernel klass in
  let compute = compute_per_iter kernel klass in
  for i = 1 to iters do
    let t0 = Mpi.wtime ctx in
    Mpi.compute ctx ~seconds:compute;
    communicate ctx kernel klass;
    Mpi.checkpoint_point ctx;
    if Mpi.rank ctx = 0 then on_iteration i (Mpi.wtime ctx -. t0)
  done;
  Mpi.barrier ctx
