(** Counting semaphore for fibers.

    Waiters are granted permits in FIFO order. Also usable as a mutex
    (capacity 1) and, via {!with_permit}, as a scoped critical section. *)

type t

val create : int -> t
(** [create n] has [n] permits initially. [n] must be non-negative. *)

val acquire : t -> unit
(** Blocks until a permit is available, then takes it. *)

val release : t -> unit

val try_acquire : t -> bool

val available : t -> int

val waiters : t -> int

val with_permit : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
