lib/engine/semaphore.mli:
