lib/engine/time.ml: Float Format Int64 Stdlib
