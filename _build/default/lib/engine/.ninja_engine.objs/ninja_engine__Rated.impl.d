lib/engine/rated.ml: Float Ivar List Sim Time
