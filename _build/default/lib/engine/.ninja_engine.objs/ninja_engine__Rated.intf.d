lib/engine/rated.mli: Sim
