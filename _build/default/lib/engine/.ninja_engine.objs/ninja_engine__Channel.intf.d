lib/engine/channel.mli:
