lib/engine/semaphore.ml: Fun Queue Sim
