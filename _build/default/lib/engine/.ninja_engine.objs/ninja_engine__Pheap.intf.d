lib/engine/pheap.mli:
