lib/engine/channel.ml: Queue Sim
