lib/engine/ps_resource.mli: Sim
