lib/engine/ivar.mli:
