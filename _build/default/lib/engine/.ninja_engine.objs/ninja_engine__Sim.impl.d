lib/engine/sim.ml: Effect Fun Hashtbl List Pheap Printf Prng String Time
