lib/engine/pheap.ml: Array
