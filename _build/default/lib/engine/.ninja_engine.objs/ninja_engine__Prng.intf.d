lib/engine/prng.mli:
