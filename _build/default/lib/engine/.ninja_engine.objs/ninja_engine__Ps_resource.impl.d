lib/engine/ps_resource.ml: Float List Rated
