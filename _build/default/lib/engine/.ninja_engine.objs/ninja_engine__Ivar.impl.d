lib/engine/ivar.ml: List Sim
