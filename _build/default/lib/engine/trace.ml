type record = { at : Time.t; category : string; message : string }

type t = { sim : Sim.t; mutable entries : record list (* newest first *) }

let create sim = { sim; entries = [] }

let record t ~category message =
  t.entries <- { at = Sim.now t.sim; category; message } :: t.entries

let recordf t ~category fmt = Format.kasprintf (fun s -> record t ~category s) fmt

let records t = List.rev t.entries

let by_category t category =
  List.filter (fun r -> String.equal r.category category) (records t)

let clear t = t.entries <- []

let pp_timeline fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "[%8.2fs] %-10s %s@." (Time.to_sec_f r.at) r.category r.message)
    (records t)
