(** Unbounded FIFO message queue between fibers.

    Senders never block; receivers block while the queue is empty. Used for
    mailbox-style actors (the QMP monitor, the SymVirt controller, MPI
    unexpected-message queues). *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Blocks until a message is available. Competing receivers are served in
    arrival order. *)

val try_recv : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool
