type info = { demand : float }

type t = {
  name : string;
  cap : float ref;
  set : info Rated.t;
}

type task = info Rated.task

(* Water-filling: serve tasks in increasing demand order; each takes
   [min(demand, residual / remaining_tasks)]. *)
let rerate cap set =
  let tasks = Rated.active set in
  let sorted =
    List.sort
      (fun a b -> Float.compare (Rated.payload a).demand (Rated.payload b).demand)
      tasks
  in
  let n = ref (List.length sorted) in
  let residual = ref cap in
  List.iter
    (fun task ->
      let fair = if !n > 0 then !residual /. float_of_int !n else 0.0 in
      let r = Float.min (Rated.payload task).demand fair in
      Rated.set_rate task r;
      residual := !residual -. r;
      decr n)
    sorted

let create sim ~name ~capacity =
  if not (capacity > 0.0) then invalid_arg "Ps_resource.create: capacity must be positive";
  let cap = ref capacity in
  let set = Rated.create sim ~name ~rerate:(fun set -> rerate !cap set) in
  { name; cap; set }

let name t = t.name

let capacity t = !(t.cap)

let set_capacity t c =
  if not (c > 0.0) then invalid_arg "Ps_resource.set_capacity: capacity must be positive";
  t.cap := c;
  Rated.kick t.set

let start t ~demand ~work =
  if not (demand > 0.0) then invalid_arg "Ps_resource.start: demand must be positive";
  Rated.add t.set ~payload:{ demand } ~work

let await task = Rated.await task

let consume t ~demand ~work = await (start t ~demand ~work)

let cancel t task = Rated.cancel t.set task

let active t = List.length (Rated.active t.set)

let load t =
  List.fold_left (fun acc task -> acc +. (Rated.payload task).demand) 0.0 (Rated.active t.set)

let utilization t =
  let granted = List.fold_left (fun acc task -> acc +. Rated.rate task) 0.0 (Rated.active t.set) in
  Float.min 1.0 (granted /. !(t.cap))
