(** Imperative binary min-heap, specialised for the event queue.

    Elements are ordered by an [int64] primary key (timestamp) with an [int]
    tiebreaker (insertion sequence number), so that events scheduled for the
    same instant fire in FIFO order — the property the simulator relies on
    for determinism. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:int64 -> seq:int -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the minimum element. Raises [Not_found] if the heap
    is empty. *)

val peek_key : 'a t -> (int64 * int) option
(** Key of the minimum element without removing it. *)
