(** Simulated time.

    All simulation timestamps and durations are expressed as 64-bit signed
    counts of nanoseconds. Timestamps ([t]) are nanoseconds since the start
    of the simulation; durations ([span]) are nanosecond differences.
    Keeping both as integers makes event ordering exact and the simulation
    bit-for-bit deterministic. *)

type t
(** An absolute simulated timestamp (ns since simulation start). *)

type span = t
(** A duration. Shares the representation of [t]; the two are distinguished
    only by the function signatures below. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span
val minutes : int -> span

val of_sec_f : float -> span
(** [of_sec_f s] is the span closest to [s] seconds. Raises
    [Invalid_argument] if [s] is not finite. *)

val to_sec_f : t -> float
val to_ns : t -> int64
val of_ns : int64 -> t

val add : t -> span -> t
val diff : t -> t -> span
val mul : span -> int -> span
val scale : span -> float -> span

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_negative : span -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["3.88s"],
    ["29.91ms"], ["250ns"]. *)

val pp_sec : Format.formatter -> t -> unit
(** Rendering always in seconds with two decimals, e.g. ["53.70"]. *)
