(** Write-once synchronisation variable.

    An ['a Ivar.t] starts empty; {!fill} transitions it to full exactly
    once and wakes every reader. Reads after the fill return immediately.
    This is the basic rendezvous primitive between fibers (completion
    notifications, request/response). *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already full. *)

val fill_if_empty : 'a t -> 'a -> bool
(** Returns [true] if this call performed the fill. *)

val read : 'a t -> 'a
(** Blocks the calling fiber until the ivar is full. *)

val peek : 'a t -> 'a option

val is_full : 'a t -> bool
