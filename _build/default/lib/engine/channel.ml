type 'a t = { items : 'a Queue.t; readers : ('a -> unit) Queue.t }

let create () = { items = Queue.create (); readers = Queue.create () }

let send t v =
  match Queue.take_opt t.readers with
  | Some wake -> wake v
  | None -> Queue.add v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None ->
    let result = ref None in
    Sim.suspend (fun resume ->
        Queue.add
          (fun v ->
            result := Some v;
            resume ())
          t.readers);
    (match !result with Some v -> v | None -> assert false)

let try_recv t = Queue.take_opt t.items

let length t = Queue.length t.items

let is_empty t = Queue.is_empty t.items
