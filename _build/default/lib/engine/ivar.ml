type 'a state = Empty of ('a -> unit) list | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill_if_empty t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
    t.state <- Full v;
    (* Wake in registration order. *)
    List.iter (fun w -> w v) (List.rev waiters);
    true

let fill t v = if not (fill_if_empty t v) then invalid_arg "Ivar.fill: already full"

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
    let result = ref None in
    Sim.suspend (fun resume ->
        match t.state with
        | Full v ->
          (* Filled between the match and the registration: resume now. *)
          result := Some v;
          resume ()
        | Empty waiters ->
          let wake v =
            result := Some v;
            resume ()
          in
          t.state <- Empty (wake :: waiters));
    (match !result with Some v -> v | None -> assert false)

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let is_full t = match t.state with Full _ -> true | Empty _ -> false
