type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one 64-bit word of
   state, supports cheap stream splitting. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

let float t bound =
  if not (bound > 0.0 && Float.is_finite bound) then
    invalid_arg "Prng.float: bound must be positive and finite";
  (* 53 uniform mantissa bits. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. Float.log1p (-.u)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
