(** Deterministic pseudo-random number generation (splitmix64).

    Every simulation owns exactly one generator, created from an explicit
    seed, so that runs are reproducible regardless of module initialisation
    order. The generator may be [split] to derive statistically independent
    streams (e.g. one per workload) whose draws do not perturb each other. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** [split t] derives a new independent generator; [t] advances by one
    draw. *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive and finite. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
