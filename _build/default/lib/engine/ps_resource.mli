(** Generalized processor sharing resource (CPU model).

    Models a pool of capacity (e.g. CPU cores) shared by concurrent tasks.
    Each task declares a demand cap (e.g. 1.0 = one core); when the sum of
    demands exceeds capacity, the surplus is distributed max–min fairly:
    every task gets [min(demand, fair share)], with slack from low-demand
    tasks redistributed (water-filling).

    This is what turns CPU over-commit into slowdown mechanistically: 16
    single-core tasks on an 8-core node each progress at rate 0.5, which is
    exactly the Fig. 8 "2 hosts (TCP)" consolidation penalty in the
    paper. *)

type t

val create : Sim.t -> name:string -> capacity:float -> t
(** [capacity] in core-equivalents; must be positive. *)

val name : t -> string

val capacity : t -> float

val set_capacity : t -> float -> unit

val consume : t -> demand:float -> work:float -> unit
(** Block the calling fiber until [work] core-seconds have been executed,
    drawing at most [demand] cores at any instant. *)

type task

val start : t -> demand:float -> work:float -> task
(** Non-blocking variant; pair with {!await} (e.g. to overlap CPU work with
    a network transfer). *)

val await : task -> unit

val cancel : t -> task -> unit

val active : t -> int
(** Number of in-flight tasks. *)

val load : t -> float
(** Sum of demands of in-flight tasks (may exceed capacity). *)

val utilization : t -> float
(** Fraction of capacity currently granted to tasks, in [0, 1]. *)
