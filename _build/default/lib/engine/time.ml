type t = int64

type span = t

let zero = 0L

let ns n = Int64.of_int n

let us n = Int64.mul (Int64.of_int n) 1_000L

let ms n = Int64.mul (Int64.of_int n) 1_000_000L

let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

let minutes n = Int64.mul (Int64.of_int n) 60_000_000_000L

let of_sec_f s =
  if not (Float.is_finite s) then invalid_arg "Time.of_sec_f: not finite";
  let ns = Float.round (s *. 1e9) in
  (* Clamp to the representable range (~±292 years) instead of letting
     Int64.of_float produce unspecified values. *)
  (* ~95 years; leaves headroom so clamped spans can still be added to any
     realistic simulation clock without wrapping. *)
  if ns >= 3.0e18 then 3_000_000_000_000_000_000L
  else if ns <= -3.0e18 then (-3_000_000_000_000_000_000L)
  else Int64.of_float ns

let to_sec_f t = Int64.to_float t /. 1e9

let to_ns t = t

let of_ns n = n

let add = Int64.add

let diff = Int64.sub

let mul s n = Int64.mul s (Int64.of_int n)

let scale s f = of_sec_f (to_sec_f s *. f)

let compare = Int64.compare

let equal = Int64.equal

let ( < ) a b = Int64.compare a b < 0

let ( <= ) a b = Int64.compare a b <= 0

let ( > ) a b = Int64.compare a b > 0

let ( >= ) a b = Int64.compare a b >= 0

let min a b = if a <= b then a else b

let max a b = if a >= b then a else b

let is_negative s = s < 0L

let pp fmt t =
  let f = to_sec_f t in
  let abs = Float.abs f in
  if Stdlib.( >= ) abs 1.0 then Format.fprintf fmt "%.2fs" f
  else if Stdlib.( >= ) abs 1e-3 then Format.fprintf fmt "%.2fms" (f *. 1e3)
  else if Stdlib.( >= ) abs 1e-6 then Format.fprintf fmt "%.2fus" (f *. 1e6)
  else Format.fprintf fmt "%Ldns" t

let pp_sec fmt t = Format.fprintf fmt "%.2f" (to_sec_f t)
