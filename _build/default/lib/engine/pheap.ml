type 'a entry = { key : int64; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let add t ~key ~seq value =
  let entry = { key; seq; value } in
  grow t entry;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry t.data.(parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then raise Not_found;
  let min = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.data.(t.size) in
    t.data.(0) <- last;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
      if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.data.(!i) in
        t.data.(!i) <- t.data.(!smallest);
        t.data.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  min.value

let peek_key t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).seq)
