(** Timestamped event trace.

    A lightweight append-only log of (time, category, message) records used
    by examples and tests to observe the sequence of simulated operations
    (hotplug, migration phases, transport switches) without coupling the
    model code to any output format. *)

type t

type record = { at : Time.t; category : string; message : string }

val create : Sim.t -> t

val record : t -> category:string -> string -> unit

val recordf : t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** In chronological (append) order. *)

val by_category : t -> string -> record list

val clear : t -> unit

val pp_timeline : Format.formatter -> t -> unit
(** Renders e.g. ["\[  12.50s\] vmm      migration of vm3 complete"]. *)
