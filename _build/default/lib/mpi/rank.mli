(** MPI job and process state: the PML (point-to-point matching engine),
    the CRCP quiesce protocol, and the checkpoint/continue flow with BTL
    reconstruction.

    This is the internal machinery; user code goes through {!Mpi} (public
    operations) and {!Runtime} (job launch / checkpoint requests). *)

open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_vmm

type job

type proc

type ft_hooks = {
  on_checkpoint : proc -> unit;
      (** SELF checkpoint callback — fired per process after CRCP quiesce
          and IB resource release; Ninja parks the process in
          [symvirt_wait] here. *)
  on_continue : proc -> unit;
      (** SELF continue callback — fired per process after the VMM signal,
          before BTL reconstruction. *)
}

(** {1 Job construction (used by Runtime)} *)

val make_job :
  Cluster.t ->
  members:(Vm.t * Guest.t) list ->
  procs_per_vm:int ->
  continue_like_restart:bool ->
  ft_hooks:ft_hooks option ->
  job

val procs : job -> proc list

val np : job -> int

val cluster : job -> Cluster.t

val job_finished : job -> unit Ivar.t

val rank_started : job -> unit

val rank_finished : job -> unit

(** {1 Process accessors} *)

val rank : proc -> int

val size : proc -> int

val vm : proc -> Vm.t

val guest : proc -> Guest.t

val job : proc -> job

val btls : proc -> Btl.kind list

val init_btls : proc -> unit
(** MPI_Init-time BTL module construction (may wait for link training). *)

(** {1 Point-to-point (no checkpoint interception — see {!Mpi})} *)

exception No_route of string

val select_btl : proc -> dst:proc -> Btl.kind
(** Highest-exclusivity transport available on both endpoints and
    currently reachable. Raises {!No_route} when the peers share no
    transport (e.g. after an uncoordinated migration). *)

val send : proc -> dst:int -> tag:int -> bytes:float -> unit
(** Eager below the transport's limit (returns after injection),
    rendezvous above it (returns after the payload is delivered). *)

val recv : proc -> ?src:int -> ?tag:int -> unit -> float
(** Blocks until a matching message arrives; returns its size. [None]
    matches any source / any tag. *)

(** {1 Checkpoint/restart protocol} *)

val request_checkpoint : job -> unit Ivar.t
(** Host side. Every process enters the checkpoint flow at the first safe
    point no process has yet reached (epoch agreement — see the
    implementation note). The returned ivar fills when all processes have
    completed the continue phase (transports reconstructed, links
    confirmed). *)

val checkpoint_requested : job -> bool

val checkpoint_point : proc -> unit
(** Safe point. If a checkpoint is pending and this process has reached
    the globally agreed epoch, run quiesce → release IB →
    [on_checkpoint] → [on_continue] → BTL reconstruction → barrier.
    Applications must call this once per iteration (all processes, the
    same number of times) — the application-level checkpointing
    discipline of the SELF CRS component. *)

val last_linkup_wait : job -> Time.span
(** Longest time any process spent waiting for link training during the
    most recent checkpoint's reconstruction (the paper's "link-up"
    overhead segment). *)

val inflight : job -> int

exception Job_aborted
(** Raised inside a process to unwind it cleanly (fault-tolerance restart:
    the job incarnation is being killed, a new one will resume from the
    last checkpoint). {!Runtime.mpirun} treats it as a normal rank exit. *)

val last_checkpoint_epoch : job -> int
(** The safe-point epoch (per-process iteration count) at which the most
    recent checkpoint fenced — i.e. the application progress captured in
    the corresponding VM images. *)

(** {1 Communicator support services (used by {!Comm})} *)

val alloc_context_id : job -> int

val proc_of_rank : job -> int -> proc

val split_exchange :
  job ->
  parent_ctx:int ->
  members:int ->
  me:proc ->
  color:int ->
  key:int ->
  (int * int * int) list * (int * int) list
(** Collective rendezvous: blocks until [members] processes have called
    with the same [parent_ctx]; returns every deposit as
    [(job rank, color, key)] plus one fresh context id per distinct
    color. *)
