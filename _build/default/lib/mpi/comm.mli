(** Communicators: ordered process groups with isolated tag spaces.

    [world] spans the whole job. [split] creates disjoint
    sub-communicators MPI_Comm_split-style (e.g. one per VM, or one per
    blade); collectives and point-to-point operate on ranks {e within} the
    communicator, and each communicator gets a distinct context id so
    traffic never crosses between them.

    All operations must be called collectively by every member, like their
    MPI counterparts. *)

type t

val world : Rank.proc -> t
(** The communicator spanning all processes of the calling process's job
    (context id 0; always the same value for a given job). *)

val split : t -> Rank.proc -> color:int -> key:int -> t
(** Collective over [t]: processes with equal [color] end up in the same
    new communicator, ordered by [key] (ties broken by parent rank).
    Mirrors MPI_Comm_split, including its synchronising behaviour. *)

val dup : t -> Rank.proc -> t
(** Collective: same group, fresh context id (library-private traffic). *)

val rank : t -> Rank.proc -> int
(** The calling process's rank within [t]. Raises [Not_found] if the
    process is not a member. *)

val size : t -> int

val context_id : t -> int

val translate : t -> int -> Rank.proc
(** Member at a communicator rank. *)

(** {1 Operations within the communicator} *)

val send : ?tag:int -> t -> Rank.proc -> dst:int -> bytes:float -> unit

val recv : t -> Rank.proc -> ?src:int -> ?tag:int -> unit -> float

val barrier : t -> Rank.proc -> unit

val bcast : t -> Rank.proc -> root:int -> bytes:float -> unit

val reduce : t -> Rank.proc -> root:int -> bytes:float -> unit

val allreduce : t -> Rank.proc -> bytes:float -> unit

val allgather : t -> Rank.proc -> bytes_per_rank:float -> unit

val alltoall : t -> Rank.proc -> bytes_per_pair:float -> unit
