lib/mpi/rank.mli: Btl Cluster Guest Ivar Ninja_engine Ninja_guestos Ninja_hardware Ninja_vmm Time Vm
