lib/mpi/btl.mli: Cluster Ninja_hardware Ninja_vmm Vm
