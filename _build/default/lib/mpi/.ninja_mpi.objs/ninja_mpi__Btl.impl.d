lib/mpi/btl.ml: Calibration Cluster Device Fabric List Ninja_engine Ninja_flownet Ninja_hardware Ninja_vmm Node Printf Ps_resource Sim Time Vm
