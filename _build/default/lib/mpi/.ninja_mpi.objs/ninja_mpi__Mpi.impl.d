lib/mpi/mpi.ml: Cluster Coll List Ninja_engine Ninja_hardware Ninja_vmm Rank Vm
