lib/mpi/comm.mli: Rank
