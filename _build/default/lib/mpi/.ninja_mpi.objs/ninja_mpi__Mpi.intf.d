lib/mpi/mpi.mli: Btl Guest Ninja_guestos Ninja_vmm Rank Vm
