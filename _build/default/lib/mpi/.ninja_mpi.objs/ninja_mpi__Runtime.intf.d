lib/mpi/runtime.mli: Cluster Guest Ivar Ninja_engine Ninja_guestos Ninja_hardware Ninja_vmm Rank Time Vm
