lib/mpi/rank.ml: Array Btl Cluster Device Fun Guest Hashtbl Ivar List Ninja_engine Ninja_guestos Ninja_hardware Ninja_vmm Node Printf Ps_resource Sim String Time Trace Vm
