lib/mpi/coll.ml: Calibration Cluster Ivar Ninja_engine Ninja_hardware Ninja_vmm Rank Vm
