lib/mpi/runtime.ml: Cluster Ivar List Ninja_engine Ninja_hardware Printf Rank Sim
