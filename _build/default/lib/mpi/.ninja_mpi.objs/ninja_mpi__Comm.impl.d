lib/mpi/comm.ml: Array Calibration Cluster Coll List Ninja_engine Ninja_hardware Ninja_vmm Option Rank Sim Vm
