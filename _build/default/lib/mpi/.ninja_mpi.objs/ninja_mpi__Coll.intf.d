lib/mpi/coll.mli: Rank
