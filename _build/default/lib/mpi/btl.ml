open Ninja_engine
open Ninja_flownet
open Ninja_hardware
open Ninja_vmm

type kind = Sm | Tcp | Openib

exception Transport_failure of string

let exclusivity = function Sm -> 65535 | Openib -> 1024 | Tcp -> 100

let eager_limit = function
  | Sm -> 4.0 *. 1024.0
  | Openib -> float_of_int Calibration.mpi_eager_limit_ib
  | Tcp -> float_of_int Calibration.mpi_eager_limit_tcp

let kind_name = function Sm -> "sm" | Tcp -> "tcp" | Openib -> "openib"

let compare_priority a b = compare (exclusivity b) (exclusivity a)

let has_ib_device vm =
  List.exists (fun (d : Device.t) -> d.Device.kind = Device.Ib_hca) (Vm.devices vm)

let has_eth_device vm =
  List.exists
    (fun (d : Device.t) ->
      match d.Device.kind with
      | Device.Virtio_net | Device.Eth_10g | Device.Emulated_nic -> true
      | Device.Ib_hca -> false)
    (Vm.devices vm)

let eth_device_kind vm =
  List.find_map
    (fun (d : Device.t) ->
      match d.Device.kind with
      | Device.Virtio_net | Device.Eth_10g | Device.Emulated_nic -> Some d.Device.kind
      | Device.Ib_hca -> None)
    (Vm.devices vm)

let reachable cluster ~src ~dst kind =
  match kind with
  | Sm -> src == dst
  | Openib ->
    src != dst && has_ib_device src && has_ib_device dst
    && Cluster.route_opt cluster ~net:Cluster.Ib ~src:(Vm.host src) ~dst:(Vm.host dst) <> None
  | Tcp ->
    has_eth_device src && has_eth_device dst
    && Cluster.route_opt cluster ~net:Cluster.Eth ~src:(Vm.host src) ~dst:(Vm.host dst) <> None

let check_usable cluster ~src ~dst kind =
  if not (reachable cluster ~src ~dst kind) then
    raise
      (Transport_failure
         (Printf.sprintf "btl_%s: no path from %s to %s (device detached or peer unreachable?)"
            (kind_name kind) (Vm.name src) (Vm.name dst)))

(* Charge protocol CPU work on a host concurrently with the wire transfer;
   under CPU over-commit the CPU side becomes the bottleneck. *)
let with_cpu_tasks tasks body =
  let started = List.map (fun (cpu, work) -> (cpu, Ps_resource.start cpu ~demand:1.0 ~work)) tasks in
  body ();
  List.iter (fun (_, task) -> Ps_resource.await task) started

let control_latency cluster ~src ~dst kind =
  match kind with
  | Sm -> Calibration.sm_latency
  | Openib -> Cluster.path_latency cluster ~net:Cluster.Ib ~src:(Vm.host src) ~dst:(Vm.host dst)
  | Tcp ->
    let nic_latency =
      match eth_device_kind src with
      | Some k -> Device.latency k
      | None -> Calibration.virtio_latency
    in
    Time.add nic_latency
      (Cluster.path_latency cluster ~net:Cluster.Eth ~src:(Vm.host src) ~dst:(Vm.host dst))

let control_message cluster ~src ~dst kind =
  check_usable cluster ~src ~dst kind;
  Sim.sleep (control_latency cluster ~src ~dst kind)

let transfer cluster ~src ~dst kind ~bytes =
  check_usable cluster ~src ~dst kind;
  Sim.sleep (control_latency cluster ~src ~dst kind);
  if bytes > 0.0 then begin
    let fabric = Cluster.fabric cluster in
    let src_host = Vm.host src and dst_host = Vm.host dst in
    match kind with
    | Openib ->
      let route = Cluster.route cluster ~net:Cluster.Ib ~src:src_host ~dst:dst_host in
      Fabric.transfer fabric ~route ~bytes
    | Tcp ->
      let cpb =
        match eth_device_kind src with
        | Some k -> Device.cpu_per_byte k
        | None -> Calibration.virtio_cpu_per_byte
      in
      let work = bytes *. cpb in
      let tasks =
        if src_host == dst_host then [ (src_host.Node.cpu, 2.0 *. work) ]
        else [ (src_host.Node.cpu, work); (dst_host.Node.cpu, work) ]
      in
      with_cpu_tasks tasks (fun () ->
          (* The guest NIC (virtio queue or emulated device) caps below the
             10 GbE line rate; model it as a private first hop, like the
             migration sender. *)
          let nic_bw =
            match eth_device_kind src with
            | Some k -> Device.bandwidth k
            | None -> Calibration.virtio_bandwidth
          in
          let virtio_cap =
            Fabric.add_link fabric ~name:(Vm.name src ^ ".virtio") ~capacity:nic_bw
          in
          let route = Cluster.route cluster ~net:Cluster.Eth ~src:src_host ~dst:dst_host in
          Fabric.transfer fabric ~route:(virtio_cap :: route) ~bytes)
    | Sm ->
      let work = bytes *. Calibration.sm_cpu_per_byte in
      with_cpu_tasks
        [ (src_host.Node.cpu, 2.0 *. work) ]
        (fun () -> Sim.sleep (Time.of_sec_f (bytes /. Calibration.sm_bandwidth)))
  end
