(** Collective communication algorithms (Open MPI "tuned" style).

    Small payloads use latency-optimal trees (binomial); large payloads use
    bandwidth-optimal compositions (binomial scatter + ring allgather for
    bcast — van de Geijn; ring reduce-scatter for reduce/allreduce —
    Rabenseifner), which is what gives the paper's collectives their
    near-line-rate cost on 8 GB payloads.

    All functions are SPMD: every rank of the job calls the same function
    with the same arguments. Reduction operators charge CPU time on the
    combining rank. These primitives do NOT intercept checkpoints — the
    {!Mpi} wrappers do. *)

val sendrecv :
  Rank.proc -> dst:int -> src:int -> tag:int -> send_bytes:float -> recv_bytes:float -> float
(** Concurrent send+receive (ring building block); returns received size.
    [recv_bytes] is only documentation of the expected size. *)

val barrier : Rank.proc -> unit
(** Dissemination barrier (works for any process count). *)

val bcast : Rank.proc -> root:int -> bytes:float -> unit

val reduce : Rank.proc -> root:int -> bytes:float -> unit

val allreduce : Rank.proc -> bytes:float -> unit

val allgather : Rank.proc -> bytes_per_rank:float -> unit

val gather : Rank.proc -> root:int -> bytes_per_rank:float -> unit

val scatter : Rank.proc -> root:int -> bytes_per_rank:float -> unit

val alltoall : Rank.proc -> bytes_per_pair:float -> unit

val reduce_scatter : Rank.proc -> bytes_per_rank:float -> unit
(** Ring reduce-scatter: each rank ends up owning one reduced chunk. *)

val scan : Rank.proc -> bytes:float -> unit
(** MPI_Scan: inclusive prefix reduction along the rank order. *)

val exscan : Rank.proc -> bytes:float -> unit

val large_threshold : float
(** Payload size above which the bandwidth-optimal algorithms kick in. *)

(** {1 Algorithm core over an abstract process view}

    The same algorithms run on sub-communicators: {!Comm} builds a [view]
    that translates ranks and offsets tags by the communicator's context
    id. *)

type view = {
  vme : int;  (** my rank within the group *)
  vn : int;  (** group size *)
  vsend : dst:int -> tag:int -> bytes:float -> unit;
  vrecv : src:int option -> tag:int -> float;
  vspawn : (unit -> unit) -> unit;
  vreduce_cost : bytes:float -> unit;
}

val world_view : Rank.proc -> view

val v_sendrecv : view -> dst:int -> src:int -> tag:int -> send_bytes:float -> float

val v_barrier : view -> unit

val v_bcast : view -> root:int -> bytes:float -> unit

val v_reduce : view -> root:int -> bytes:float -> unit

val v_allreduce : view -> bytes:float -> unit

val v_allgather : view -> bytes_per_rank:float -> unit

val v_gather : view -> root:int -> bytes_per_rank:float -> unit

val v_scatter : view -> root:int -> bytes_per_rank:float -> unit

val v_alltoall : view -> bytes_per_pair:float -> unit
