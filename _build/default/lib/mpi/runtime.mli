(** Job launcher (mpirun) and host-side fault-tolerance control.

    [mpirun] spawns one fiber per MPI process, block-mapped onto the given
    VMs ([procs_per_vm] ranks per VM, consecutive ranks together), runs
    MPI_Init-time BTL construction, executes the body, and completes the
    job when every rank returns.

    [request_checkpoint] is the cloud-scheduler trigger of Fig. 3: it asks
    every process to enter the checkpoint protocol at its next MPI
    operation boundary and returns an ivar that fills when all processes
    have resumed with reconstructed transports. *)

open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_vmm

type t
(** A running (or finished) MPI job. *)

val mpirun :
  Cluster.t ->
  members:(Vm.t * Guest.t) list ->
  procs_per_vm:int ->
  ?continue_like_restart:bool ->
  ?ft_hooks:Rank.ft_hooks ->
  (Rank.proc -> unit) ->
  t
(** [continue_like_restart] defaults to [true] (the paper sets
    [ompi_cr_continue_like_restart] so that recovery migrations rebuild
    the transport set even for TCP-only processes). *)

val job : t -> Rank.job

val wait : t -> unit
(** Block until every rank's body has returned. *)

val is_finished : t -> bool

val request_checkpoint : t -> unit Ivar.t

val await_checkpoint_complete : unit Ivar.t -> unit

val last_linkup_wait : t -> Time.span
