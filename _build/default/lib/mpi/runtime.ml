open Ninja_engine
open Ninja_hardware

type t = { rjob : Rank.job }

let mpirun cluster ~members ~procs_per_vm ?(continue_like_restart = true) ?ft_hooks body =
  let job =
    Rank.make_job cluster ~members ~procs_per_vm ~continue_like_restart ~ft_hooks
  in
  let sim = Cluster.sim cluster in
  List.iter
    (fun proc ->
      Rank.rank_started job;
      Sim.spawn sim ~name:(Printf.sprintf "rank%d" (Rank.rank proc)) (fun () ->
          Rank.init_btls proc;
          (try body proc with Rank.Job_aborted -> ());
          Rank.rank_finished job))
    (Rank.procs job);
  { rjob = job }

let job t = t.rjob

let wait t = Ivar.read (Rank.job_finished t.rjob)

let is_finished t = Ivar.is_full (Rank.job_finished t.rjob)

let request_checkpoint t = Rank.request_checkpoint t.rjob

let await_checkpoint_complete ivar = Ivar.read ivar

let last_linkup_wait t = Rank.last_linkup_wait t.rjob
