open Ninja_hardware
open Ninja_vmm

type ctx = Rank.proc

let rank = Rank.rank

let size = Rank.size

let vm = Rank.vm

let guest = Rank.guest

let wtime ctx =
  Ninja_engine.Time.to_sec_f (Ninja_engine.Sim.now (Cluster.sim (Rank.cluster (Rank.job ctx))))

let default_tag = 0

let compute ctx ~seconds = Vm.compute (Rank.vm ctx) ~core_seconds:seconds

let send ?(tag = default_tag) ctx ~dst ~bytes =
  Rank.send ctx ~dst ~tag ~bytes

let recv ctx ?src ?tag () = Rank.recv ctx ?src ?tag ()

let sendrecv ?(tag = default_tag) ctx ~dst ~src ~bytes =
  Coll.sendrecv ctx ~dst ~src ~tag ~send_bytes:bytes ~recv_bytes:bytes

let barrier ctx = Coll.barrier ctx

let bcast ctx ~root ~bytes = Coll.bcast ctx ~root ~bytes

let reduce ctx ~root ~bytes = Coll.reduce ctx ~root ~bytes

let allreduce ctx ~bytes = Coll.allreduce ctx ~bytes

let allgather ctx ~bytes_per_rank = Coll.allgather ctx ~bytes_per_rank

let gather ctx ~root ~bytes_per_rank = Coll.gather ctx ~root ~bytes_per_rank

let scatter ctx ~root ~bytes_per_rank = Coll.scatter ctx ~root ~bytes_per_rank

let alltoall ctx ~bytes_per_pair = Coll.alltoall ctx ~bytes_per_pair

let reduce_scatter ctx ~bytes_per_rank = Coll.reduce_scatter ctx ~bytes_per_rank

let scan ctx ~bytes = Coll.scan ctx ~bytes

let exscan ctx ~bytes = Coll.exscan ctx ~bytes

type request = float Ninja_engine.Ivar.t

let spawn_op ctx f =
  let result = Ninja_engine.Ivar.create () in
  Ninja_engine.Sim.spawn
    (Cluster.sim (Rank.cluster (Rank.job ctx)))
    ~name:"mpi-nb"
    (fun () -> Ninja_engine.Ivar.fill result (f ()));
  result

let isend ?(tag = default_tag) ctx ~dst ~bytes =
  spawn_op ctx (fun () ->
      Rank.send ctx ~dst ~tag ~bytes;
      bytes)

let irecv ctx ?src ?tag () = spawn_op ctx (fun () -> Rank.recv ctx ?src ?tag ())

let wait request = Ninja_engine.Ivar.read request

let test request = Ninja_engine.Ivar.peek request

let waitall requests = List.map wait requests

let checkpoint_point ctx = Rank.checkpoint_point ctx

let current_transport ctx ~peer =
  let peers = Rank.procs (Rank.job ctx) in
  match List.nth_opt peers peer with
  | None -> None
  | Some dst -> ( match Rank.select_btl ctx ~dst with k -> Some k | exception Rank.No_route _ -> None)
