open Ninja_engine
open Ninja_guestos
open Ninja_hardware
open Ninja_vmm

type rendezvous = { cts : unit Ivar.t; data_done : unit Ivar.t }

(* Envelopes are delivered into the receiver's matching engine in the
   sender's program order (synchronously at send time), which is what
   gives MPI its per-(source, tag) non-overtaking guarantee; the wire time
   is charged on the payload path ([`Eager] carries an "data arrived"
   ivar, rendezvous streams after the CTS). *)
type delivery = {
  d_src : int;
  d_tag : int;
  d_bytes : float;
  d_protocol : [ `Eager of unit Ivar.t | `Rendezvous of rendezvous ];
}

type posted = { want_src : int option; want_tag : int option; got : delivery Ivar.t }

type ft_hooks = { on_checkpoint : proc -> unit; on_continue : proc -> unit }

and job = {
  jcluster : Cluster.t;
  sim : Sim.t;
  trace : Trace.t;
  mutable jprocs : proc array;
  jnp : int;
  continue_like_restart : bool;
  ft_hooks : ft_hooks option;
  (* CRCP / checkpoint state for the current generation *)
  mutable ckpt_requested : bool;
  mutable ckpt_target : int;
  mutable ckpt_entered : int;
  mutable ckpt_release : unit Ivar.t;
  mutable ckpt_done : int;
  mutable ckpt_complete : unit Ivar.t;
  mutable jinflight : int;
  mutable linkup_waits : Time.span list;
  finished : unit Ivar.t;
  mutable running_ranks : int;
  mutable inited : int;
  init_done : unit Ivar.t;
  (* Communicator support: context-id allocator and the rendezvous state
     for in-flight MPI_Comm_split-style exchanges (one per parent
     communicator at a time). *)
  mutable next_context_id : int;
  split_scratch : (int, split_state) Hashtbl.t;
}

and split_state = {
  mutable deposits : (int * int * int) list; (* (job rank, color, key) *)
  expected : int;
  outcome : ((int * int * int) list * (int * int) list) Ivar.t;
      (* (all deposits, color -> context id) *)
}

and proc = {
  prank : int;
  pjob : job;
  pvm : Vm.t;
  pguest : Guest.t;
  mutable points_passed : int;
  mutable spin_depth : int;
  mutable spin_task : Ps_resource.task option;
  mutable pbtls : Btl.kind list;
  (* Per-peer transport choice, fixed at (re)construction time like Open
     MPI's add_procs: a device vanishing underneath it is a hard failure,
     not a silent re-route. *)
  peer_kind : Btl.kind option array;
  mutable posted : posted list;
  mutable unexpected : delivery list;
}

exception No_route of string

exception Job_aborted

(* ------------------------------------------------------------------ *)
(* Construction *)

let make_job cluster ~members ~procs_per_vm ~continue_like_restart ~ft_hooks =
  if members = [] then invalid_arg "Rank.make_job: no VMs";
  if procs_per_vm <= 0 then invalid_arg "Rank.make_job: procs_per_vm must be positive";
  let np = List.length members * procs_per_vm in
  let job =
    {
      jcluster = cluster;
      sim = Cluster.sim cluster;
      trace = Cluster.trace cluster;
      jprocs = [||];
      jnp = np;
      continue_like_restart;
      ft_hooks;
      ckpt_requested = false;
      ckpt_target = 0;
      ckpt_entered = 0;
      ckpt_release = Ivar.create ();
      ckpt_done = 0;
      ckpt_complete = Ivar.create ();
      jinflight = 0;
      linkup_waits = [];
      finished = Ivar.create ();
      running_ranks = 0;
      inited = 0;
      init_done = Ivar.create ();
      next_context_id = 1;
      split_scratch = Hashtbl.create 4;
    }
  in
  let members = Array.of_list members in
  job.jprocs <-
    Array.init np (fun r ->
        let vm, guest = members.(r / procs_per_vm) in
        {
          prank = r;
          pjob = job;
          pvm = vm;
          pguest = guest;
          points_passed = 0;
          spin_depth = 0;
          spin_task = None;
          pbtls = [];
          peer_kind = Array.make np None;
          posted = [];
          unexpected = [];
        });
  job

let procs job = Array.to_list job.jprocs

let np job = job.jnp

let cluster job = job.jcluster

let job_finished job = job.finished

let rank_started job = job.running_ranks <- job.running_ranks + 1

let rank_finished job =
  job.running_ranks <- job.running_ranks - 1;
  if job.running_ranks = 0 then Ivar.fill job.finished ()

let rank p = p.prank

let size p = p.pjob.jnp

let vm p = p.pvm

let guest p = p.pguest

let job p = p.pjob

let btls p = p.pbtls

let inflight job = job.jinflight

(* ------------------------------------------------------------------ *)
(* BTL module (re)construction *)

let has_ib_attached p =
  List.exists (fun (d : Device.t) -> d.Device.kind = Device.Ib_hca) (Vm.devices p.pvm)

(* Build the set of transports this process can use, waiting for link
   training where needed (the "confirm link-up" step of Fig. 4). Returns
   the time spent waiting. *)
let construct_btls p =
  let sim = p.pjob.sim in
  let t0 = Sim.now sim in
  let with_ib =
    if has_ib_attached p then begin
      Guest.await_link_active p.pguest Device.Ib_hca;
      [ Btl.Openib ]
    end
    else []
  in
  let wait = Time.diff (Sim.now sim) t0 in
  p.pbtls <- List.sort Btl.compare_priority (Btl.Sm :: Btl.Tcp :: with_ib);
  Array.fill p.peer_kind 0 (Array.length p.peer_kind) None;
  wait

(* MPI_Init: construct modules (possibly waiting for link training), then
   synchronise — no rank may communicate before every peer has a transport
   table. *)
let init_btls p =
  ignore (construct_btls p);
  let job = p.pjob in
  job.inited <- job.inited + 1;
  if job.inited = job.jnp then Ivar.fill job.init_done ();
  Ivar.read job.init_done

(* ------------------------------------------------------------------ *)
(* PML: matching *)

let matches (po : posted) (d : delivery) =
  (match po.want_src with None -> true | Some s -> s = d.d_src)
  && match po.want_tag with None -> true | Some t -> t = d.d_tag

let deliver dst d =
  let rec take acc = function
    | [] -> None
    | po :: rest when matches po d -> Some (po, List.rev_append acc rest)
    | po :: rest -> take (po :: acc) rest
  in
  match take [] dst.posted with
  | Some (po, rest) ->
    dst.posted <- rest;
    Ivar.fill po.got d
  | None -> dst.unexpected <- dst.unexpected @ [ d ]

let take_unexpected p ~want_src ~want_tag =
  let po = { want_src; want_tag; got = Ivar.create () } in
  let rec take acc = function
    | [] -> None
    | d :: rest when matches po d -> Some (d, List.rev_append acc rest)
    | d :: rest -> take (d :: acc) rest
  in
  match take [] p.unexpected with
  | Some (d, rest) ->
    p.unexpected <- rest;
    Some d
  | None -> None

let select_btl p ~dst =
  match p.peer_kind.(dst.prank) with
  | Some k -> k
  | None ->
    let shared =
      List.filter
        (fun k ->
          List.mem k dst.pbtls && Btl.reachable p.pjob.jcluster ~src:p.pvm ~dst:dst.pvm k)
        p.pbtls
    in
    (match List.sort Btl.compare_priority shared with
    | k :: _ ->
      p.peer_kind.(dst.prank) <- Some k;
      k
    | [] ->
      raise
        (No_route
           (Printf.sprintf "rank %d -> rank %d: no common reachable BTL (have [%s] / [%s])"
              p.prank dst.prank
              (String.concat "," (List.map Btl.kind_name p.pbtls))
              (String.concat "," (List.map Btl.kind_name dst.pbtls)))))

(* ------------------------------------------------------------------ *)
(* CRCP bookmark bookkeeping *)

let maybe_release job =
  if job.ckpt_entered = job.jnp && job.jinflight = 0 then
    ignore (Ivar.fill_if_empty job.ckpt_release ())

let inflight_incr job = job.jinflight <- job.jinflight + 1

let inflight_decr job =
  job.jinflight <- job.jinflight - 1;
  assert (job.jinflight >= 0);
  maybe_release job

(* ------------------------------------------------------------------ *)
(* Busy-wait model: Open MPI's progress engine polls, so a process blocked
   inside an MPI operation still occupies (up to) a core. On a
   non-over-committed host this is invisible — the spinner burns its own
   core; under consolidation it is exactly the paper's Fig. 8b "CPU
   contention under the CPU over-commit setting". One spin task per
   process, reference-counted across nested waits (sendrecv runs a send
   fiber and a receive concurrently). *)

let spin_enter p =
  p.spin_depth <- p.spin_depth + 1;
  if p.spin_depth = 1 then
    p.spin_task <-
      Some (Ps_resource.start (Vm.host p.pvm).Node.cpu ~demand:1.0 ~work:1.0e8)

let spin_exit p =
  p.spin_depth <- p.spin_depth - 1;
  if p.spin_depth = 0 then begin
    (match p.spin_task with
    | Some task -> Ps_resource.cancel (Vm.host p.pvm).Node.cpu task
    | None -> ());
    p.spin_task <- None
  end

let with_spin p f =
  spin_enter p;
  Fun.protect ~finally:(fun () -> spin_exit p) f

(* ------------------------------------------------------------------ *)
(* Point-to-point *)

let send p ~dst ~tag ~bytes =
  if dst < 0 || dst >= p.pjob.jnp then invalid_arg "Rank.send: bad destination rank";
  if bytes < 0.0 then invalid_arg "Rank.send: negative size";
  let dproc = p.pjob.jprocs.(dst) in
  let kind = select_btl p ~dst:dproc in
  let job = p.pjob in
  inflight_incr job;
  if bytes <= Btl.eager_limit kind then begin
    (* Eager: the envelope is injected now (program order), the sender
       returns immediately, and the payload travels on its own fiber. *)
    let arrived = Ivar.create () in
    deliver dproc
      { d_src = p.prank; d_tag = tag; d_bytes = bytes; d_protocol = `Eager arrived };
    Sim.spawn job.sim ~name:"eager-send" (fun () ->
        Btl.transfer job.jcluster ~src:p.pvm ~dst:dproc.pvm kind ~bytes;
        Ivar.fill arrived ();
        inflight_decr job)
  end
  else
    with_spin p (fun () ->
        (* Rendezvous: RTS now, wait for the matching receive (CTS),
           stream. *)
        let rv = { cts = Ivar.create (); data_done = Ivar.create () } in
        deliver dproc
          { d_src = p.prank; d_tag = tag; d_bytes = bytes; d_protocol = `Rendezvous rv };
        Ivar.read rv.cts;
        Btl.control_message job.jcluster ~src:p.pvm ~dst:dproc.pvm kind;
        Btl.transfer job.jcluster ~src:p.pvm ~dst:dproc.pvm kind ~bytes;
        Ivar.fill rv.data_done ();
        inflight_decr job)

let complete_delivery d =
  match d.d_protocol with
  | `Eager arrived ->
    Ivar.read arrived;
    d.d_bytes
  | `Rendezvous rv ->
    Ivar.fill rv.cts ();
    Ivar.read rv.data_done;
    d.d_bytes

let recv p ?src ?tag () =
  with_spin p (fun () ->
      match take_unexpected p ~want_src:src ~want_tag:tag with
      | Some d -> complete_delivery d
      | None ->
        let po = { want_src = src; want_tag = tag; got = Ivar.create () } in
        p.posted <- p.posted @ [ po ];
        let d = Ivar.read po.got in
        complete_delivery d)

(* ------------------------------------------------------------------ *)
(* Checkpoint flow *)

let request_checkpoint job =
  if job.ckpt_requested then invalid_arg "Rank.request_checkpoint: already pending";
  job.ckpt_requested <- true;
  (* Epoch agreement: every process takes the checkpoint at the first safe
     point no process has reached yet. Because each application iteration
     contains a synchronising collective, process skew is under one
     iteration, so by the time the leading process fences itself at the
     target epoch it has already served every lagging peer's current
     iteration — no one blocks on a fenced process. *)
  job.ckpt_target <-
    1 + Array.fold_left (fun acc p -> max acc p.points_passed) 0 job.jprocs;
  job.linkup_waits <- [];
  Trace.recordf job.trace ~category:"crcp" "checkpoint requested (epoch %d)" job.ckpt_target;
  job.ckpt_complete

let checkpoint_requested job = job.ckpt_requested

let last_checkpoint_epoch job = job.ckpt_target

let last_linkup_wait job = List.fold_left Time.max Time.zero job.linkup_waits

let checkpoint_flow p =
  let job = p.pjob in
  (* 1. CRCP quiesce: everyone at a safe point, network drained. *)
  job.ckpt_entered <- job.ckpt_entered + 1;
  let release = job.ckpt_release in
  maybe_release job;
  Ivar.read release;
  (* 2. OPAL CRS pre-checkpoint: release InfiniBand resources (QPs, pinned
     buffers) so the HCA can be detached (§III-C). *)
  let had_openib = List.mem Btl.Openib p.pbtls in
  p.pbtls <- List.filter (fun k -> k <> Btl.Openib) p.pbtls;
  (* 3. SELF checkpoint callback — Ninja parks us in symvirt_wait here;
     when it returns the VMM has detached/migrated/re-attached. *)
  (match job.ft_hooks with Some h -> h.on_checkpoint p | None -> ());
  (* 4. SELF continue callback. *)
  (match job.ft_hooks with Some h -> h.on_continue p | None -> ());
  (* 5. BTL reconstruction. Normally it happens because the IB modules
     were torn down; a TCP-only process skips it unless
     ompi_cr_continue_like_restart forces it (§III-C). *)
  if had_openib || job.continue_like_restart then begin
    let wait = construct_btls p in
    job.linkup_waits <- wait :: job.linkup_waits
  end;
  (* 6. Post-reconstruction barrier: no process resumes application code
     until every process has a consistent transport table (Open MPI's
     coordinated continue). The last one out resets the generation and
     fills the host-side ivar. *)
  let complete = job.ckpt_complete in
  job.ckpt_done <- job.ckpt_done + 1;
  if job.ckpt_done = job.jnp then begin
    job.ckpt_requested <- false;
    job.ckpt_entered <- 0;
    job.ckpt_done <- 0;
    job.ckpt_release <- Ivar.create ();
    job.ckpt_complete <- Ivar.create ();
    Trace.record job.trace ~category:"crcp" "checkpoint complete";
    Ivar.fill complete ()
  end;
  Ivar.read complete

(* ------------------------------------------------------------------ *)
(* Communicator support services *)

let alloc_context_id job =
  let id = job.next_context_id in
  job.next_context_id <- id + 1;
  id

let proc_of_rank job r = job.jprocs.(r)

(* Collective rendezvous for MPI_Comm_split/dup: every member of the
   parent communicator deposits (color, key); the last arrival assigns one
   fresh context id per distinct color and releases everyone with the full
   picture. *)
let split_exchange job ~parent_ctx ~members ~me ~color ~key =
  let state =
    match Hashtbl.find_opt job.split_scratch parent_ctx with
    | Some s -> s
    | None ->
      let s = { deposits = []; expected = members; outcome = Ivar.create () } in
      Hashtbl.replace job.split_scratch parent_ctx s;
      s
  in
  state.deposits <- (me.prank, color, key) :: state.deposits;
  if List.length state.deposits = state.expected then begin
    Hashtbl.remove job.split_scratch parent_ctx;
    let deposits = List.rev state.deposits in
    let colors =
      List.sort_uniq compare (List.map (fun (_, c, _) -> c) deposits)
    in
    let assignments = List.map (fun c -> (c, alloc_context_id job)) colors in
    Ivar.fill state.outcome (deposits, assignments)
  end;
  Ivar.read state.outcome

let checkpoint_point p =
  p.points_passed <- p.points_passed + 1;
  if p.pjob.ckpt_requested && p.points_passed >= p.pjob.ckpt_target then checkpoint_flow p
