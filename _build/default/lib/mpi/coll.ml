open Ninja_engine
open Ninja_hardware
open Ninja_vmm

let large_threshold = 512.0 *. 1024.0

(* Distinct tag spaces per collective; per-pair FIFO ordering makes one tag
   per collective sufficient across consecutive calls. Communicator
   context ids are folded in on top (see [view]). *)
let tag_barrier = 0x10000

let tag_bcast = 0x11000

let tag_reduce = 0x12000

let tag_allgather = 0x13000

let tag_gather = 0x14000

let tag_scatter = 0x15000

let tag_alltoall = 0x16000

(* ------------------------------------------------------------------ *)
(* A view abstracts "who am I, how many of us, how do I reach rank i" so
   every algorithm below works identically on the world communicator and
   on sub-communicators (ranks and tags translated by the caller). *)

type view = {
  vme : int;
  vn : int;
  vsend : dst:int -> tag:int -> bytes:float -> unit;
  vrecv : src:int option -> tag:int -> float;
  vspawn : (unit -> unit) -> unit;
  vreduce_cost : bytes:float -> unit;
}

let reduction_cost proc ~bytes =
  if bytes > 0.0 then
    Vm.compute (Rank.vm proc) ~core_seconds:(bytes /. Calibration.reduction_rate)

let sim_of proc = Cluster.sim (Rank.cluster (Rank.job proc))

(* The world view: communicator ranks are job ranks, tags unchanged
   (context id 0). *)
let world_view p =
  {
    vme = Rank.rank p;
    vn = Rank.size p;
    vsend = (fun ~dst ~tag ~bytes -> Rank.send p ~dst ~tag ~bytes);
    vrecv = (fun ~src ~tag -> Rank.recv p ?src ~tag ());
    vspawn = (fun f -> Ninja_engine.Sim.spawn (sim_of p) ~name:"coll" f);
    vreduce_cost = (fun ~bytes -> reduction_cost p ~bytes);
  }

let v_sendrecv v ~dst ~src ~tag ~send_bytes =
  let send_done = Ivar.create () in
  v.vspawn (fun () ->
      v.vsend ~dst ~tag ~bytes:send_bytes;
      Ivar.fill send_done ());
  let got = v.vrecv ~src:(Some src) ~tag in
  Ivar.read send_done;
  got

(* ------------------------------------------------------------------ *)

let v_barrier v =
  if v.vn > 1 then begin
    let mask = ref 1 in
    while !mask < v.vn do
      let dst = (v.vme + !mask) mod v.vn in
      let src = (v.vme - !mask + v.vn) mod v.vn in
      ignore (v_sendrecv v ~dst ~src ~tag:tag_barrier ~send_bytes:1.0);
      mask := !mask lsl 1
    done
  end

(* ------------------------------------------------------------------ *)
(* Broadcast *)

let v_bcast_binomial v ~root ~bytes =
  let n = v.vn in
  let vr = (v.vme - root + n) mod n in
  let abs x = (x + root) mod n in
  (* Receive from the parent (the lowest set bit of vr). *)
  let mask = ref 1 in
  (try
     while !mask < n do
       if vr land !mask <> 0 then begin
         ignore (v.vrecv ~src:(Some (abs (vr - !mask))) ~tag:tag_bcast);
         raise Exit
       end;
       mask := !mask lsl 1
     done
   with Exit -> ());
  (* Relay to children. *)
  mask := !mask lsr 1;
  while !mask > 0 do
    if vr + !mask < n then v.vsend ~dst:(abs (vr + !mask)) ~tag:tag_bcast ~bytes;
    mask := !mask lsr 1
  done

(* Binomial scatter of [bytes] into n contiguous chunks (MPICH
   scatter_for_bcast). Returns this rank's chunk size. *)
let v_scatter_for_bcast v ~root ~bytes =
  let n = v.vn in
  let vr = (v.vme - root + n) mod n in
  let abs x = (x + root) mod n in
  let chunk = bytes /. float_of_int n in
  let curr = ref (if vr = 0 then bytes else 0.0) in
  let mask = ref 1 in
  (try
     while !mask < n do
       if vr land !mask <> 0 then begin
         let recv_size = bytes -. (float_of_int vr *. chunk) in
         if recv_size > 0.0 then curr := v.vrecv ~src:(Some (abs (vr - !mask))) ~tag:tag_bcast;
         raise Exit
       end;
       mask := !mask lsl 1
     done
   with Exit -> ());
  mask := !mask lsr 1;
  while !mask > 0 do
    if vr + !mask < n then begin
      let send_size = !curr -. (chunk *. float_of_int !mask) in
      if send_size > 0.0 then begin
        v.vsend ~dst:(abs (vr + !mask)) ~tag:tag_bcast ~bytes:send_size;
        curr := !curr -. send_size
      end
    end;
    mask := !mask lsr 1
  done;
  chunk

(* van de Geijn: binomial scatter + ring allgather. Bandwidth term
   ~ 2·bytes·(n-1)/n, which beats the binomial tree's bytes·log n for
   large payloads. *)
let v_bcast_vandegeijn v ~root ~bytes =
  let chunk = v_scatter_for_bcast v ~root ~bytes in
  let right = (v.vme + 1) mod v.vn and left = (v.vme - 1 + v.vn) mod v.vn in
  for _step = 1 to v.vn - 1 do
    ignore (v_sendrecv v ~dst:right ~src:left ~tag:tag_bcast ~send_bytes:chunk)
  done

let v_bcast v ~root ~bytes =
  if root < 0 || root >= v.vn then invalid_arg "Coll.bcast: bad root";
  if v.vn > 1 then
    if bytes <= large_threshold then v_bcast_binomial v ~root ~bytes
    else v_bcast_vandegeijn v ~root ~bytes

(* ------------------------------------------------------------------ *)
(* Reduce *)

let v_reduce_binomial v ~root ~bytes =
  let n = v.vn in
  let vr = (v.vme - root + n) mod n in
  let abs x = (x + root) mod n in
  let mask = ref 1 in
  (try
     while !mask < n do
       if vr land !mask = 0 then begin
         if vr + !mask < n then begin
           ignore (v.vrecv ~src:(Some (abs (vr + !mask))) ~tag:tag_reduce);
           v.vreduce_cost ~bytes
         end
       end
       else begin
         v.vsend ~dst:(abs (vr - !mask)) ~tag:tag_reduce ~bytes;
         raise Exit
       end;
       mask := !mask lsl 1
     done
   with Exit -> ())

(* Ring reduce-scatter: after n-1 steps, rank r owns the fully reduced
   chunk ((r+1) mod n). Each step moves bytes/n and reduces it. *)
let v_ring_reduce_scatter v ~bytes =
  let chunk = bytes /. float_of_int v.vn in
  let right = (v.vme + 1) mod v.vn and left = (v.vme - 1 + v.vn) mod v.vn in
  for _step = 1 to v.vn - 1 do
    ignore (v_sendrecv v ~dst:right ~src:left ~tag:tag_reduce ~send_bytes:chunk);
    v.vreduce_cost ~bytes:chunk
  done;
  chunk

let v_reduce_rabenseifner v ~root ~bytes =
  let chunk = v_ring_reduce_scatter v ~bytes in
  (* Gather the reduced chunks at the root. *)
  if v.vme = root then
    for _ = 1 to v.vn - 1 do
      ignore (v.vrecv ~src:None ~tag:tag_gather)
    done
  else v.vsend ~dst:root ~tag:tag_gather ~bytes:chunk

let v_reduce v ~root ~bytes =
  if root < 0 || root >= v.vn then invalid_arg "Coll.reduce: bad root";
  if v.vn > 1 then
    if bytes <= large_threshold then v_reduce_binomial v ~root ~bytes
    else v_reduce_rabenseifner v ~root ~bytes

(* ------------------------------------------------------------------ *)

let v_ring_allgather v ~chunk =
  let right = (v.vme + 1) mod v.vn and left = (v.vme - 1 + v.vn) mod v.vn in
  for _step = 1 to v.vn - 1 do
    ignore (v_sendrecv v ~dst:right ~src:left ~tag:tag_allgather ~send_bytes:chunk)
  done

let v_allreduce v ~bytes =
  if v.vn > 1 then
    if bytes <= large_threshold then begin
      v_reduce_binomial v ~root:0 ~bytes;
      v_bcast_binomial v ~root:0 ~bytes
    end
    else begin
      let chunk = v_ring_reduce_scatter v ~bytes in
      v_ring_allgather v ~chunk
    end

let v_allgather v ~bytes_per_rank = if v.vn > 1 then v_ring_allgather v ~chunk:bytes_per_rank

let v_gather v ~root ~bytes_per_rank =
  if v.vn > 1 then
    if v.vme = root then
      for _ = 1 to v.vn - 1 do
        ignore (v.vrecv ~src:None ~tag:tag_gather)
      done
    else v.vsend ~dst:root ~tag:tag_gather ~bytes:bytes_per_rank

let v_scatter v ~root ~bytes_per_rank =
  if v.vn > 1 then
    if v.vme = root then
      for dst = 0 to v.vn - 1 do
        if dst <> root then v.vsend ~dst ~tag:tag_scatter ~bytes:bytes_per_rank
      done
    else ignore (v.vrecv ~src:(Some root) ~tag:tag_scatter)

let v_alltoall v ~bytes_per_pair =
  for step = 1 to v.vn - 1 do
    let dst = (v.vme + step) mod v.vn and src = (v.vme - step + v.vn) mod v.vn in
    ignore (v_sendrecv v ~dst ~src ~tag:tag_alltoall ~send_bytes:bytes_per_pair)
  done

let v_reduce_scatter v ~bytes_per_rank =
  if v.vn > 1 then ignore (v_ring_reduce_scatter v ~bytes:(bytes_per_rank *. float_of_int v.vn))

(* Linear-pipeline scan: rank r receives the prefix from r-1, combines,
   forwards to r+1. MPI_Scan and MPI_Exscan differ only in whether the
   local contribution is folded in, which costs the same — both map
   here. *)
let v_scan v ~bytes =
  if v.vn > 1 then begin
    if v.vme > 0 then begin
      ignore (v.vrecv ~src:(Some (v.vme - 1)) ~tag:tag_reduce);
      v.vreduce_cost ~bytes
    end;
    if v.vme < v.vn - 1 then v.vsend ~dst:(v.vme + 1) ~tag:tag_reduce ~bytes
  end

(* ------------------------------------------------------------------ *)
(* World-communicator wrappers (the original public API). *)

let sendrecv p ~dst ~src ~tag ~send_bytes ~recv_bytes:_ =
  let v = world_view p in
  let send_done = Ivar.create () in
  v.vspawn (fun () ->
      v.vsend ~dst ~tag ~bytes:send_bytes;
      Ivar.fill send_done ());
  let got = v.vrecv ~src:(Some src) ~tag in
  Ivar.read send_done;
  got

let barrier p = v_barrier (world_view p)

let bcast p ~root ~bytes = v_bcast (world_view p) ~root ~bytes

let reduce p ~root ~bytes = v_reduce (world_view p) ~root ~bytes

let allreduce p ~bytes = v_allreduce (world_view p) ~bytes

let allgather p ~bytes_per_rank = v_allgather (world_view p) ~bytes_per_rank

let gather p ~root ~bytes_per_rank = v_gather (world_view p) ~root ~bytes_per_rank

let scatter p ~root ~bytes_per_rank = v_scatter (world_view p) ~root ~bytes_per_rank

let alltoall p ~bytes_per_pair = v_alltoall (world_view p) ~bytes_per_pair

let reduce_scatter p ~bytes_per_rank = v_reduce_scatter (world_view p) ~bytes_per_rank

let scan p ~bytes = v_scan (world_view p) ~bytes

let exscan p ~bytes = v_scan (world_view p) ~bytes
