(** Byte Transfer Layer: interconnect-agnostic transports (Open MPI §III-C).

    A BTL kind abstracts one way of moving bytes between two processes:
    [Sm] (shared memory, same VM), [Openib] (VMM-bypass InfiniBand verbs)
    and [Tcp] (TCP/IP over whatever Ethernet NIC the guest has). Each kind
    carries Open MPI's {e exclusivity} priority — when several BTLs reach a
    peer, the highest-exclusivity one is used, which is exactly how the
    paper's transport switch works: after migration to the Ethernet
    cluster only [Tcp] reaches remote peers (100); back on the InfiniBand
    cluster [Openib] (1024) wins again, with no application involvement. *)

open Ninja_hardware
open Ninja_vmm

type kind = Sm | Tcp | Openib

val exclusivity : kind -> int
(** Open MPI defaults: sm 65535, openib 1024, tcp 100. *)

val eager_limit : kind -> float
(** Messages at most this size use the eager protocol; larger ones use
    rendezvous. *)

val kind_name : kind -> string

val compare_priority : kind -> kind -> int
(** Sorts highest exclusivity first. *)

val reachable : Cluster.t -> src:Vm.t -> dst:Vm.t -> kind -> bool
(** Whether this transport can currently carry bytes between the two VMs:
    [Sm] needs the same VM; [Openib] needs HCAs attached on both sides and
    an IB path between the hosts; [Tcp] needs only Ethernet. *)

exception Transport_failure of string
(** Raised when a transfer is attempted over a transport whose device has
    gone away (e.g. an HCA detached without coordination — the failure
    mode Ninja migration exists to prevent). *)

val transfer : Cluster.t -> src:Vm.t -> dst:Vm.t -> kind -> bytes:float -> unit
(** Move a payload (blocking, full cost): one-way latency, then the data
    at the transport's bandwidth. [Tcp] and [Sm] additionally charge
    protocol CPU on the hosts involved, so fallback traffic contends with
    application compute (Fig. 8's over-commit effect). *)

val control_message : Cluster.t -> src:Vm.t -> dst:Vm.t -> kind -> unit
(** One-way latency only (RTS/CTS handshakes, barrier tokens). *)
