open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type t = {
  ctx : int;
  members : Rank.proc array; (* communicator rank -> process *)
}

(* Tags within a communicator are offset by the context id so traffic in
   different communicators can never cross-match. Collective tag bases are
   below 0x20000, so blocks of 0x20000 per context are disjoint. *)
let ctx_stride = 0x20000

let world p = { ctx = 0; members = Array.of_list (Rank.procs (Rank.job p)) }

let context_id t = t.ctx

let size t = Array.length t.members

let translate t r =
  if r < 0 || r >= Array.length t.members then invalid_arg "Comm.translate: bad rank";
  t.members.(r)

let rank t p =
  let found = ref (-1) in
  Array.iteri (fun i q -> if q == p then found := i) t.members;
  if !found < 0 then raise Not_found;
  !found

let comm_tag t tag = (t.ctx * ctx_stride) + tag

let send ?(tag = 0) t p ~dst ~bytes =
  Rank.send p ~dst:(Rank.rank (translate t dst)) ~tag:(comm_tag t tag) ~bytes

let recv t p ?src ?(tag = 0) () =
  let src = Option.map (fun s -> Rank.rank (translate t s)) src in
  Rank.recv p ?src ~tag:(comm_tag t tag) ()

let reduction_cost p ~bytes =
  if bytes > 0.0 then
    Vm.compute (Rank.vm p) ~core_seconds:(bytes /. Calibration.reduction_rate)

let view t p =
  {
    Coll.vme = rank t p;
    vn = size t;
    vsend =
      (fun ~dst ~tag ~bytes ->
        Rank.send p ~dst:(Rank.rank t.members.(dst)) ~tag:(comm_tag t tag) ~bytes);
    vrecv =
      (fun ~src ~tag ->
        let src = Option.map (fun s -> Rank.rank t.members.(s)) src in
        Rank.recv p ?src ~tag:(comm_tag t tag) ());
    vspawn =
      (fun f ->
        Sim.spawn (Cluster.sim (Rank.cluster (Rank.job p))) ~name:"comm-coll" f);
    vreduce_cost = (fun ~bytes -> reduction_cost p ~bytes);
  }

let barrier t p = Coll.v_barrier (view t p)

let bcast t p ~root ~bytes = Coll.v_bcast (view t p) ~root ~bytes

let reduce t p ~root ~bytes = Coll.v_reduce (view t p) ~root ~bytes

let allreduce t p ~bytes = Coll.v_allreduce (view t p) ~bytes

let allgather t p ~bytes_per_rank = Coll.v_allgather (view t p) ~bytes_per_rank

let alltoall t p ~bytes_per_pair = Coll.v_alltoall (view t p) ~bytes_per_pair

let split t p ~color ~key =
  let job = Rank.job p in
  let deposits, assignments =
    Rank.split_exchange job ~parent_ctx:t.ctx ~members:(size t) ~me:p ~color ~key
  in
  let my_ctx = List.assoc color assignments in
  let mine =
    deposits
    |> List.filter (fun (_, c, _) -> c = color)
    (* Order by key, then by parent rank, like MPI_Comm_split. *)
    |> List.stable_sort (fun (r1, _, k1) (r2, _, k2) ->
           match compare k1 k2 with 0 -> compare r1 r2 | c -> c)
    |> List.map (fun (r, _, _) -> Rank.proc_of_rank job r)
  in
  { ctx = my_ctx; members = Array.of_list mine }

let dup t p =
  (* A split where everyone picks the same colour and keeps the parent
     order. *)
  split t p ~color:0 ~key:(rank t p)
