(** Public MPI-like operations for workload code.

    Checkpoints are taken at explicit {!checkpoint_point}s — the
    application-level checkpointing discipline of the OPAL CRS SELF
    component the paper builds on. Place one per application iteration
    (every process, the same number of times); the runtime agrees on a
    common epoch so all processes fence at the same iteration boundary. *)

open Ninja_guestos
open Ninja_vmm

type ctx = Rank.proc

val rank : ctx -> int

val size : ctx -> int

val vm : ctx -> Vm.t

val guest : ctx -> Guest.t

val wtime : ctx -> float
(** Simulated seconds since simulation start. *)

val compute : ctx -> seconds:float -> unit
(** One core of CPU work on the current host (slows under over-commit). *)

val send : ?tag:int -> ctx -> dst:int -> bytes:float -> unit

val recv : ctx -> ?src:int -> ?tag:int -> unit -> float

val sendrecv : ?tag:int -> ctx -> dst:int -> src:int -> bytes:float -> float

val barrier : ctx -> unit

val bcast : ctx -> root:int -> bytes:float -> unit

val reduce : ctx -> root:int -> bytes:float -> unit

val allreduce : ctx -> bytes:float -> unit

val allgather : ctx -> bytes_per_rank:float -> unit

val gather : ctx -> root:int -> bytes_per_rank:float -> unit

val scatter : ctx -> root:int -> bytes_per_rank:float -> unit

val alltoall : ctx -> bytes_per_pair:float -> unit

val reduce_scatter : ctx -> bytes_per_rank:float -> unit

val scan : ctx -> bytes:float -> unit
(** Inclusive prefix reduction (MPI_Scan). *)

val exscan : ctx -> bytes:float -> unit

(** {1 Non-blocking operations} *)

type request
(** Handle to an in-flight isend/irecv. *)

val isend : ?tag:int -> ctx -> dst:int -> bytes:float -> request

val irecv : ctx -> ?src:int -> ?tag:int -> unit -> request

val wait : request -> float
(** Block until the operation completes; returns the message size. *)

val test : request -> float option
(** Non-blocking completion probe. *)

val waitall : request list -> float list

(** {1 Checkpointing} *)

val checkpoint_point : ctx -> unit
(** Checkpoint-safe point; see the module comment. *)

val current_transport : ctx -> peer:int -> Btl.kind option
(** Which BTL would carry a message to [peer] right now ([None] if
    unreachable) — how tests observe the paper's transparent transport
    switch. *)
