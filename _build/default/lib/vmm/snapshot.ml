open Ninja_engine
open Ninja_hardware

type t = {
  name : string;
  taken_at : Time.t;
  image_bytes : float;
  total_bytes : float;
  vcpus : int;
  vm_name : string;
}

type store = {
  cluster : Cluster.t;
  nfs_bandwidth : float;
  mutable snapshots : t list;
}

let create_store ?(nfs_bandwidth = 0.4e9) cluster = { cluster; nfs_bandwidth; snapshots = [] }

let stream store bytes = Sim.sleep (Time.of_sec_f (bytes /. store.nfs_bandwidth))

let save store vm ~name =
  let was_running = Vm.state vm = Vm.Running in
  Vm.pause vm;
  let image_bytes = Memory.nonzero_bytes (Vm.memory vm) in
  stream store image_bytes;
  let snap =
    {
      name;
      taken_at = Sim.now (Cluster.sim store.cluster);
      image_bytes;
      total_bytes = Memory.total_bytes (Vm.memory vm);
      vcpus = Vm.vcpus vm;
      vm_name = Vm.name vm;
    }
  in
  store.snapshots <- snap :: store.snapshots;
  Trace.recordf (Cluster.trace store.cluster) ~category:"snapshot" "%s: saved as '%s' (%a)"
    (Vm.name vm) name Ninja_hardware.Units.pp_bytes image_bytes;
  if was_running then Vm.resume vm;
  snap

let restore store snap ~host =
  stream store snap.image_bytes;
  let vm =
    Vm.create store.cluster ~name:snap.vm_name ~host ~vcpus:snap.vcpus
      ~mem_bytes:snap.total_bytes ~os_resident_bytes:snap.image_bytes ()
  in
  Vm.pause vm;
  Trace.recordf (Cluster.trace store.cluster) ~category:"snapshot" "%s: restored from '%s' on %s"
    snap.vm_name snap.name host.Node.name;
  vm

let find store ~name = List.find_opt (fun s -> String.equal s.name name) store.snapshots

let name t = t.name

let taken_at t = t.taken_at

let image_bytes t = t.image_bytes
