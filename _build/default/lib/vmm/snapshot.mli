(** qcow2-style VM snapshots on shared storage.

    The paper's VMs live on qcow2 images over NFS so that migration needs
    no disk copy and checkpoint/restart can restore a whole virtual
    cluster (§II, proactive fault tolerance). A snapshot records the
    non-zero memory image; saving and restoring stream it through the NFS
    path at a calibrated rate. *)

open Ninja_engine
open Ninja_hardware

type store
(** Shared NFS storage reachable from every node. *)

type t

val create_store : ?nfs_bandwidth:float -> Cluster.t -> store
(** Default bandwidth 0.4 GB/s (NFSv3 over the 10 GbE network). *)

val save : store -> Vm.t -> name:string -> t
(** Pause the VM, stream its non-zero memory to storage, resume. Blocking;
    the snapshot is internal to the image (qcow2 [savevm] semantics). *)

val restore : store -> t -> host:Node.t -> Vm.t
(** Materialise a new VM from the snapshot on [host] (e.g. restarting an
    IB-cluster checkpoint on the Ethernet cluster after a failure). The
    restored VM boots paused; {!Vm.resume} it when coordination allows. *)

val find : store -> name:string -> t option

val name : t -> string

val taken_at : t -> Time.t

val image_bytes : t -> float
