(* Dirty/non-zero state is tracked at 64 KiB granularity (16 hardware
   pages per bit): byte-count accuracy is unaffected at the sizes the
   experiments use, and bitmap maintenance is 16x cheaper than per-4KiB
   tracking on multi-GB writers. *)
let page_size = 16 * Ninja_hardware.Calibration.page_size

type t = {
  pages : int;
  nonzero : Bytes.t; (* bit per page *)
  dirty : Bytes.t;
  mutable nonzero_count : int;
  mutable dirty_count : int;
  mutable next_free : int; (* bump allocator; freed regions are recycled *)
  mutable free_list : (int * int) list; (* (start, len) *)
}

type region = { start : int; len : int; mutable live : bool }

let pages_of_bytes b = int_of_float (Float.ceil (b /. float_of_int page_size))

let create ~total_bytes =
  if not (total_bytes > 0.0) then invalid_arg "Memory.create: size must be positive";
  let pages = pages_of_bytes total_bytes in
  let bitmap_len = (pages + 7) / 8 in
  {
    pages;
    nonzero = Bytes.make bitmap_len '\000';
    dirty = Bytes.make bitmap_len '\000';
    nonzero_count = 0;
    dirty_count = 0;
    next_free = 0;
    free_list = [];
  }

let total_bytes t = float_of_int t.pages *. float_of_int page_size

let get bitmap i = Char.code (Bytes.get bitmap (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set bitmap i =
  let byte = i lsr 3 in
  Bytes.set bitmap byte (Char.chr (Char.code (Bytes.get bitmap byte) lor (1 lsl (i land 7))))

let unset bitmap i =
  let byte = i lsr 3 in
  Bytes.set bitmap byte
    (Char.chr (Char.code (Bytes.get bitmap byte) land lnot (1 lsl (i land 7)) land 0xff))

let alloc t ~bytes =
  let len = pages_of_bytes bytes in
  let fit =
    List.find_opt (fun (_, flen) -> flen >= len) t.free_list
  in
  match fit with
  | Some ((fstart, flen) as entry) ->
    t.free_list <- List.filter (fun e -> e <> entry) t.free_list;
    if flen > len then t.free_list <- (fstart + len, flen - len) :: t.free_list;
    { start = fstart; len; live = true }
  | None ->
    if t.next_free + len > t.pages then invalid_arg "Memory.alloc: out of guest memory";
    let start = t.next_free in
    t.next_free <- start + len;
    { start; len; live = true }

let region_bytes r = float_of_int r.len *. float_of_int page_size

let mark_page t i =
  if not (get t.nonzero i) then begin
    set t.nonzero i;
    t.nonzero_count <- t.nonzero_count + 1
  end;
  if not (get t.dirty i) then begin
    set t.dirty i;
    t.dirty_count <- t.dirty_count + 1
  end

let write t r ~offset ~bytes =
  if not r.live then invalid_arg "Memory.write: region was freed";
  if offset < 0.0 || bytes < 0.0 then invalid_arg "Memory.write: negative range";
  if bytes = 0.0 then ()
  else begin
  let first = r.start + (int_of_float offset / page_size) in
  let last_excl =
    r.start + (pages_of_bytes (offset +. bytes)) |> fun l -> min l (r.start + r.len)
  in
  for i = first to last_excl - 1 do
    mark_page t i
  done
  end

let write_all t r = write t r ~offset:0.0 ~bytes:(region_bytes r)

let free t r =
  if r.live then begin
    r.live <- false;
    for i = r.start to r.start + r.len - 1 do
      if get t.nonzero i then begin
        unset t.nonzero i;
        t.nonzero_count <- t.nonzero_count - 1
      end;
      if get t.dirty i then begin
        unset t.dirty i;
        t.dirty_count <- t.dirty_count - 1
      end
    done;
    t.free_list <- (r.start, r.len) :: t.free_list
  end

let nonzero_bytes t = float_of_int t.nonzero_count *. float_of_int page_size

let zero_bytes t = float_of_int (t.pages - t.nonzero_count) *. float_of_int page_size

let dirty_bytes t = float_of_int t.dirty_count *. float_of_int page_size

let clear_dirty t =
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.dirty_count <- 0

let used_fraction t = float_of_int t.nonzero_count /. float_of_int t.pages
