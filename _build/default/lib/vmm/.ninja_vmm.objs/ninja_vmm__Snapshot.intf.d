lib/vmm/snapshot.mli: Cluster Ninja_engine Ninja_hardware Node Time Vm
