lib/vmm/migration.mli: Ninja_engine Ninja_hardware Node Time Vm
