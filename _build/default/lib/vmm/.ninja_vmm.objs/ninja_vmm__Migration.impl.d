lib/vmm/migration.ml: Calibration Cluster Fabric Float Memory Ninja_engine Ninja_flownet Ninja_hardware Node Printf Ps_resource Semaphore Sim Time Trace Vm
