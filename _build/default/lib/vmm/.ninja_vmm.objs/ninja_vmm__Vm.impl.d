lib/vmm/vm.ml: Cluster Device Float Format List Memory Ninja_engine Ninja_hardware Node Printf Ps_resource Semaphore Sim String Trace
