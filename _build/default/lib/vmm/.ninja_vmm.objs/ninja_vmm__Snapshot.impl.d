lib/vmm/snapshot.ml: Cluster List Memory Ninja_engine Ninja_hardware Node Sim String Time Trace Vm
