lib/vmm/hotplug.ml: Cluster Device Ninja_engine Ninja_hardware Node Printf Sim Time Vm
