lib/vmm/vm.mli: Cluster Device Format Memory Ninja_engine Ninja_hardware Node Semaphore
