lib/vmm/qmp.ml: Calibration Cluster Device Format Hotplug List Migration Ninja_engine Ninja_hardware Node Printf Result Sim String Time Vm
