lib/vmm/memory.ml: Bytes Char Float List Ninja_hardware
