lib/vmm/memory.mli:
