lib/vmm/qmp.mli: Cluster Device Migration Ninja_engine Ninja_hardware Node Time Vm
