lib/vmm/hotplug.mli: Device Ninja_engine Ninja_hardware Vm
