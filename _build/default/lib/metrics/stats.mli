(** Small numeric helpers for repeated measurements. *)

val mean : float list -> float
(** Raises [Invalid_argument] on an empty list. *)

val minimum : float list -> float
(** The paper reports best-of-three for its timing tables. *)

val maximum : float list -> float

val stddev : float list -> float

val best_of : int -> (unit -> float) -> float
(** [best_of n f] runs [f] n times and returns the smallest result. *)
