let check = function [] -> invalid_arg "Stats: empty sample" | l -> l

let mean l =
  let l = check l in
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let minimum l = List.fold_left Float.min Float.infinity (check l)

let maximum l = List.fold_left Float.max Float.neg_infinity (check l)

let stddev l =
  let l = check l in
  let m = mean l in
  let var = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
  sqrt (var /. float_of_int (List.length l))

let best_of n f =
  if n <= 0 then invalid_arg "Stats.best_of: n must be positive";
  minimum (List.init n (fun _ -> f ()))
