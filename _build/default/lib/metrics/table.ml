type t = { title : string; columns : string list; mutable body : string list list }

let create ~title ~columns = { title; columns; body = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match columns";
  t.body <- t.body @ [ cells ]

let add_float_row t label values =
  add_row t (label :: List.map (Printf.sprintf "%.2f") values)

let rows t = t.body

let widths t =
  let all = t.columns :: t.body in
  List.mapi
    (fun i _ -> List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.columns

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let pp fmt t =
  let ws = widths t in
  let line row =
    String.concat "  " (List.map2 pad ws row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  Format.fprintf fmt "%s@." t.title;
  Format.fprintf fmt "%s@." (line t.columns);
  Format.fprintf fmt "%s@." rule;
  List.iter (fun row -> Format.fprintf fmt "%s@." (line row)) t.body

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.columns :: List.map line t.body) ^ "\n"

let print t =
  Format.printf "%a@." pp t
