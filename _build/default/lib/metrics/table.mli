(** Plain-text table rendering for experiment output.

    The bench harness prints every reproduced table and figure as an ASCII
    table with a caption; the same rows can be emitted as CSV for
    re-plotting. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must have as many cells as there are columns. *)

val add_float_row : t -> string -> float list -> unit
(** Label in the first column, numbers (2 decimals) after. *)

val rows : t -> string list list

val pp : Format.formatter -> t -> unit

val to_csv : t -> string

val print : t -> unit
(** [pp] to stdout, followed by a blank line. *)
