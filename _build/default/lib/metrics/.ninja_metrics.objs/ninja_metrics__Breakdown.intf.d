lib/metrics/breakdown.mli: Format Ninja_engine Time
