lib/metrics/breakdown.ml: Format Ninja_engine Time
