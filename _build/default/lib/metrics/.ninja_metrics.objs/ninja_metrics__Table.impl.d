lib/metrics/table.ml: Format List Printf String
