lib/metrics/stats.mli:
