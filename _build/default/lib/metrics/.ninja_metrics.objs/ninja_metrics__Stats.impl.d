lib/metrics/stats.ml: Float List
