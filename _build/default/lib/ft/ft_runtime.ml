open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_mpi
open Ninja_symvirt
open Ninja_core

type spec = {
  procs_per_vm : int;
  iterations : int;
  checkpoint_every : int;
  step : Mpi.ctx -> int -> unit;
}

type t = {
  cluster : Cluster.t;
  sim : Sim.t;
  store : Snapshot.store;
  spec : spec;
  mutable ninja_ : Ninja.t;
  mutable incarnation : int;
  mutable aborting : bool;
  mutable last_snap : (int * Snapshot.t list) option;
  mutable completed : int;
  exec_counts : (int, int) Hashtbl.t;
  finished : unit Ivar.t;
  mutable progress : int Channel.t; (* rank 0 -> checkpoint driver *)
  ckpt_lock : Semaphore.t; (* serialises driver checkpoints against kills *)
}

let ninja t = t.ninja_

let incarnation t = t.incarnation

let completed_iterations t = t.completed

let last_checkpoint t = t.last_snap

let executions_of t i = Option.value ~default:0 (Hashtbl.find_opt t.exec_counts i)

let is_finished t = Ivar.is_full t.finished

(* The job body of one incarnation, resuming after [start]. Rank 0 reports
   progress to the checkpoint driver through the incarnation's channel. *)
let body t ~start ~progress ctx =
  for i = start + 1 to t.spec.iterations do
    t.spec.step ctx i;
    Mpi.checkpoint_point ctx;
    if Mpi.rank ctx = 0 then begin
      Hashtbl.replace t.exec_counts i (executions_of t i + 1);
      if i > t.completed then t.completed <- i;
      if i = t.spec.iterations then ignore (Ivar.fill_if_empty t.finished ());
      Channel.send progress i
    end
  done

(* Periodic coordinated snapshots: every [checkpoint_every] iterations of
   this incarnation, fence the job and save a VM image set. The recorded
   iteration comes from the fence epoch, since processes may advance a
   step between the trigger and the fence. *)
let checkpoint_driver t ~start ~progress =
  let my_incarnation = t.incarnation in
  let continue_ () =
    t.incarnation = my_incarnation && (not t.aborting) && not (is_finished t)
  in
  let rec loop () =
    if continue_ () then begin
      let i = Channel.recv progress in
      (* A negative value is the shutdown sentinel from a kill. *)
      if i >= 0 && continue_ () && i mod t.spec.checkpoint_every = 0
         && i < t.spec.iterations
      then
        Semaphore.with_permit t.ckpt_lock (fun () ->
            if continue_ () then begin
              let snaps =
                Ninja.checkpoint_to_store t.ninja_ t.store
                  ~name_prefix:(Printf.sprintf "inc%d-iter%d" t.incarnation i)
              in
              let epoch =
                Rank.last_checkpoint_epoch (Runtime.job (Ninja.runtime t.ninja_))
              in
              t.last_snap <- Some (start + epoch, snaps);
              Trace.recordf (Cluster.trace t.cluster) ~category:"ft"
                "checkpoint set saved at iteration %d (incarnation %d)" (start + epoch)
                t.incarnation
            end);
      loop ()
    end
  in
  loop ()

let launch_incarnation t ~start ~vms_to_resume =
  let progress = Channel.create () in
  t.progress <- progress;
  ignore
    (Ninja.launch t.ninja_ ~procs_per_vm:t.spec.procs_per_vm (body t ~start ~progress));
  Ninja.set_abort_check t.ninja_ (fun () -> t.aborting);
  List.iter Vm.resume vms_to_resume;
  Sim.spawn t.sim ~name:"ft-driver" (fun () -> checkpoint_driver t ~start ~progress)

let start cluster ~store ~hosts spec =
  if spec.checkpoint_every <= 0 then invalid_arg "Ft_runtime.start: checkpoint_every";
  if spec.iterations <= 0 then invalid_arg "Ft_runtime.start: iterations";
  let ninja_ = Ninja.setup cluster ~hosts () in
  let t =
    {
      cluster;
      sim = Cluster.sim cluster;
      store;
      spec;
      ninja_;
      incarnation = 0;
      aborting = false;
      last_snap = None;
      completed = 0;
      exec_counts = Hashtbl.create 64;
      finished = Ivar.create ();
      progress = Channel.create ();
      ckpt_lock = Semaphore.create 1;
    }
  in
  launch_incarnation t ~start:0 ~vms_to_resume:[];
  t

let hca_tag = "vf0"

let kill_current_incarnation t =
  (* Wait out any in-flight periodic checkpoint, then fence everyone and
     let the coordinators raise Job_aborted. *)
  Semaphore.acquire t.ckpt_lock;
  t.aborting <- true;
  let rt = Ninja.runtime t.ninja_ in
  ignore (Runtime.request_checkpoint rt);
  let members =
    List.map
      (fun (n : Ninja.vnode) ->
        { Controller.vm = n.vm; endpoint = n.endpoint; procs = Ninja.procs_per_vm t.ninja_ })
      (Ninja.vnodes t.ninja_)
  in
  let ctl = Controller.create t.cluster ~members in
  Controller.wait_all ctl;
  Controller.signal ctl;
  Runtime.wait rt;
  (* Retire this incarnation's checkpoint driver: bump the incarnation
     first so the driver's continue-check fails whenever its wakeup event
     actually runs, then unblock it. *)
  t.incarnation <- t.incarnation + 1;
  Channel.send t.progress (-1);
  t.aborting <- false;
  Semaphore.release t.ckpt_lock

let fail_and_restart t ~new_hosts =
  match t.last_snap with
  | None -> failwith "Ft_runtime.fail_and_restart: no checkpoint on stable storage yet"
  | Some (iter, snaps) ->
    if List.length new_hosts <> List.length snaps then
      invalid_arg "Ft_runtime.fail_and_restart: host/snapshot count mismatch";
    Trace.recordf (Cluster.trace t.cluster) ~category:"ft"
      "incarnation %d failed; restarting from iteration %d" t.incarnation iter;
    kill_current_incarnation t;
    (* Restore the VM images on the replacement hosts... *)
    let vms =
      List.map2 (fun snap host -> Snapshot.restore t.store snap ~host) snaps new_hosts
    in
    t.ninja_ <- Ninja.of_vms t.cluster ~vms;
    (* ...re-attach bypass HCAs where the new hardware has them (the guest
       pays link training before openib comes back). *)
    List.iter2
      (fun vm host ->
        if Node.has_ib host then
          Vm.attach_device vm (Device.make ~tag:hca_tag ~pci_addr:"04:00.0" Device.Ib_hca))
      vms new_hosts;
    launch_incarnation t ~start:iter ~vms_to_resume:vms

let await t =
  Ivar.read t.finished;
  Ninja.wait_job t.ninja_
