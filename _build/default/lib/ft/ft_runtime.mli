(** Fault tolerance on top of Ninja migration (paper §II, ref [7]).

    The paper's non-stop-maintenance and disaster use cases rest on two
    mechanisms from the authors' SymVirt work: {e proactive} evacuation
    (migrate away before a predicted failure — plain {!Ninja_core.Ninja})
    and {e reactive} restart: VM-level checkpoints are written to shared
    storage at SymVirt fences, and after a failure "we can restart VMs on
    an Ethernet cluster from checkpointed VM images on an Infiniband
    cluster".

    This module runs an iteration-structured MPI job under that regime: a
    coordinated VM snapshot set is saved every [checkpoint_every]
    iterations; {!fail_and_restart} kills the current incarnation at a
    fence (simulating loss of its hosts), restores the last snapshot set
    on replacement hosts, re-attaches HCAs where the new hosts have them
    (paying hotplug + link training), and relaunches the job from the
    checkpointed iteration. Work since the last checkpoint is lost and
    re-executed — the classic checkpoint/restart trade-off. *)

open Ninja_hardware
open Ninja_vmm
open Ninja_core

type spec = {
  procs_per_vm : int;
  iterations : int;
  checkpoint_every : int;
  step : Ninja_mpi.Mpi.ctx -> int -> unit;  (** one application iteration *)
}

type t

val start : Cluster.t -> store:Snapshot.store -> hosts:Node.t list -> spec -> t
(** Launch incarnation 0 on [hosts] with the periodic-checkpoint driver
    attached. Non-blocking. *)

val ninja : t -> Ninja.t
(** The current incarnation's Ninja instance. *)

val incarnation : t -> int

val completed_iterations : t -> int
(** Highest iteration some rank-0 has reported finished (across
    incarnations; may exceed the last checkpoint). *)

val last_checkpoint : t -> (int * Snapshot.t list) option
(** Most recent (iteration, snapshot set) on stable storage. *)

val executions_of : t -> int -> int
(** How many times iteration [i] has been executed by rank 0 (> 1 for
    iterations re-run after a restart). *)

val fail_and_restart : t -> new_hosts:Node.t list -> unit
(** Kill the running incarnation at a fence and restart from the last
    checkpoint on [new_hosts]. Blocking (call from a fiber); raises
    [Failure] if no checkpoint exists yet. *)

val await : t -> unit
(** Block until some incarnation completes all [iterations]. *)

val is_finished : t -> bool
