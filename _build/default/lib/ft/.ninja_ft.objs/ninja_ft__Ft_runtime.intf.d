lib/ft/ft_runtime.mli: Cluster Ninja Ninja_core Ninja_hardware Ninja_mpi Ninja_vmm Node Snapshot
