open Ninja_metrics

type command =
  | Wait_all
  | Device_detach of string
  | Device_attach of { host : string; tag : string }
  | Migration of string list * string list
  | Signal
  | Quit

let command_to_string = function
  | Wait_all -> "wait_all"
  | Device_detach tag -> "device_detach " ^ tag
  | Device_attach { host; tag } -> Printf.sprintf "device_attach %s %s" host tag
  | Migration (src, dst) ->
    Printf.sprintf "migration %s %s" (String.concat "," src) (String.concat "," dst)
  | Signal -> "signal"
  | Quit -> "quit"

let split_hosts s = String.split_on_char ',' s |> List.filter (fun h -> h <> "")

let parse_line lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  match String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "") with
  | [] -> Ok None
  | [ "wait_all" ] -> Ok (Some Wait_all)
  | [ "device_detach"; tag ] -> Ok (Some (Device_detach tag))
  | [ "device_attach"; host; tag ] -> Ok (Some (Device_attach { host; tag }))
  | [ "migration"; src; dst ] ->
    let src = split_hosts src and dst = split_hosts dst in
    if List.length src <> List.length dst then
      Error (Printf.sprintf "line %d: hostlist lengths differ" lineno)
    else if src = [] then Error (Printf.sprintf "line %d: empty hostlist" lineno)
    else Ok (Some (Migration (src, dst)))
  | [ "signal" ] -> Ok (Some Signal)
  | [ "quit" ] -> Ok (Some Quit)
  | word :: _ -> Error (Printf.sprintf "line %d: unknown command %S" lineno word)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some c) -> go (lineno + 1) (c :: acc) rest
      | Error _ as e -> e)
  in
  go 1 [] lines

let fig5 =
  {|# A simplified version of the Ninja migration script (paper Fig. 5).
### 1. fallback migration
wait_all
# 1a. device detach
device_detach vf0
# 1b. migration
migration ib00,ib01 eth00,eth01
signal

### 2. recovery migration
wait_all
# 2a. migration
migration eth00,eth01 ib00,ib01
# 2b. device attach
device_attach 04:00.0 vf0
signal
quit
|}

(* Each wait_all ... signal section runs on its own controller, like the
   successive symvirt.Controller instances of Fig. 5. *)
let execute ninja commands =
  let total = ref Breakdown.zero in
  let current = ref None in
  let require_open what =
    match !current with
    | Some ctl -> ctl
    | None -> failwith (Printf.sprintf "script: %s before wait_all" what)
  in
  let close () =
    match !current with
    | Some ctl ->
      total := Breakdown.add !total (Script.quit ctl);
      current := None
    | None -> ()
  in
  List.iter
    (fun command ->
      match command with
      | Wait_all ->
        if Option.is_some !current then failwith "script: nested wait_all";
        let ctl = Script.controller ninja in
        Script.wait_all ctl;
        current := Some ctl
      | Device_detach tag -> Script.device_detach (require_open "device_detach") ~tag
      | Device_attach { host; tag } ->
        Script.device_attach (require_open "device_attach") ~host ~tag
      | Migration (src, dst) -> Script.migration (require_open "migration") ~src ~dst
      | Signal ->
        let ctl = require_open "signal" in
        Script.signal ctl;
        close ()
      | Quit -> close ())
    commands;
  close ();
  !total
