(** A tiny textual script language mirroring the paper's Fig. 5 Python
    migration scripts, so operational flows can be written as data:

    {v
      # 1. fallback migration
      wait_all
      device_detach vf0
      migration ib00,ib01 eth00,eth01
      signal
      # 2. recovery migration
      wait_all
      migration eth00,eth01 ib00,ib01
      device_attach 04:00.0 vf0
      signal
      quit
    v}

    Blank lines and [#] comments are ignored. [quit] is optional (implied
    at end of input). Parsing is pure; {!execute} drives a {!Script}
    controller, opening a fresh controller at each [wait_all] after a
    [signal] (each wait/signal pair is one Ninja operation, like the two
    numbered sections of Fig. 5). *)

type command =
  | Wait_all
  | Device_detach of string  (** tag *)
  | Device_attach of { host : string; tag : string }  (** PCI addr, tag *)
  | Migration of string list * string list  (** source and dest hostlists *)
  | Signal
  | Quit

val parse : string -> (command list, string) result
(** Errors carry a 1-based line number and reason. *)

val command_to_string : command -> string

val fig5 : string
(** The paper's Fig. 5 script (simplified), adapted to this simulator's
    node names — fallback of 2 VMs to the Ethernet cluster and recovery
    back. *)

val execute : Ninja.t -> command list -> Ninja_metrics.Breakdown.t
(** Run the script against a launched Ninja instance (call from a fiber).
    Returns the accumulated overhead breakdown across all wait/signal
    sections. Raises [Failure] on protocol misuse (e.g. an operation
    before [wait_all]). *)
