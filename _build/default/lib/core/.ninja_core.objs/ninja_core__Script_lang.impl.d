lib/core/script_lang.ml: Breakdown List Ninja_metrics Option Printf Script String
