lib/core/script.mli: Breakdown Ninja Ninja_metrics
