lib/core/script_lang.mli: Ninja Ninja_metrics
