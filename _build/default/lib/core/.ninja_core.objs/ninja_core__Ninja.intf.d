lib/core/ninja.mli: Breakdown Cluster Device Guest Hypercall Migration Mpi Ninja_guestos Ninja_hardware Ninja_metrics Ninja_mpi Ninja_symvirt Ninja_vmm Node Runtime Snapshot Vm
