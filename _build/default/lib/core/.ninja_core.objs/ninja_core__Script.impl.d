lib/core/script.ml: Breakdown Cluster Controller Device Ivar List Migration Ninja Ninja_engine Ninja_hardware Ninja_metrics Ninja_mpi Ninja_symvirt Ninja_vmm Node Qmp Runtime Sim Time Vm
