(** Imperative controller API mirroring the paper's Fig. 5 Python script.

    The original drives QEMU monitors by name:

    {v
      ctl = symvirt.Controller(config.eth_hostlist)
      ctl.wait_all()
      ctl.device_detach(tag='vf0')
      ctl.migration(config.ib_hostlist, config.eth_hostlist)
      ctl.signal()
    v}

    This module is the OCaml equivalent, addressing nodes by name. One
    simplification relative to Fig. 5: the original brackets each VMM
    operation group in its own wait/signal pair (the guest briefly runs
    between them to process ACPI events); here a single fence spans the
    whole operation sequence, with ACPI settle time charged inside it —
    the measured overhead is the same (see DESIGN.md). *)

open Ninja_metrics

type ctl

val controller : Ninja.t -> ctl

val wait_all : ctl -> unit
(** Also requests the checkpoint (the cloud scheduler trigger) if no
    checkpoint is pending yet, then waits for the SymVirt fence. *)

val device_detach : ctl -> tag:string -> unit
(** Detach [tag] from every VM that has it. *)

val device_attach : ctl -> host:string -> tag:string -> unit
(** Attach an IB HCA at PCI address [host] (the paper reuses the QEMU
    argument name, e.g. ["04:00.0"]) to every VM whose current node has an
    IB port. *)

val migration : ctl -> src:string list -> dst:string list -> unit
(** Migrate the VM currently on each [src] node to the corresponding [dst]
    node (node names, as in the hostlist config of Fig. 5). *)

val signal : ctl -> unit
(** Resume the VMs and wait until every MPI process has reconstructed its
    transports (link-up included). *)

val quit : ctl -> Breakdown.t
(** End the script and return the overhead breakdown accumulated since the
    controller was created. *)
