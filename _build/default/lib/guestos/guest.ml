open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type driver = { dev : Device.t; mutable link : Link_state.t }

type t = {
  vm : Vm.t;
  sim : Sim.t;
  trace : Trace.t;
  mutable bound : driver list;
  mutable link_waiters : (unit -> unit) list;
  mutable link_hooks : (driver -> unit) list;
}

let vm t = t.vm

let drivers t = t.bound

let device d = d.dev

let link d = d.link

let find_driver t ~kind = List.find_opt (fun d -> d.dev.Device.kind = kind) t.bound

let notify_link t d =
  List.iter (fun f -> f d) (List.rev t.link_hooks);
  let waiters = List.rev t.link_waiters in
  t.link_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

let set_link t d state =
  if not (Link_state.equal d.link state) then begin
    d.link <- state;
    Trace.recordf t.trace ~category:"guest"
      "%s: %s link %a" (Vm.name t.vm) d.dev.Device.tag Link_state.pp state;
    notify_link t d
  end

let bind t dev ~initial_link =
  let d = { dev; link = initial_link } in
  t.bound <- t.bound @ [ d ];
  (match initial_link with
  | Link_state.Polling ->
    (* Port training: IB takes ~30 s, Ethernet is effectively instant. *)
    Sim.spawn t.sim ~name:"linkup" (fun () ->
        Sim.sleep (Device.linkup_time dev.Device.kind);
        if List.memq d t.bound then set_link t d Link_state.Active)
  | Link_state.Active -> notify_link t d
  | Link_state.Down -> ());
  d

let unbind t (dev : Device.t) =
  match List.find_opt (fun d -> String.equal d.dev.Device.tag dev.tag) t.bound with
  | None -> ()
  | Some d ->
    t.bound <- List.filter (fun d' -> d' != d) t.bound;
    set_link t d Link_state.Down

let boot vm =
  let cluster = Vm.cluster vm in
  let t =
    {
      vm;
      sim = Cluster.sim cluster;
      trace = Cluster.trace cluster;
      bound = [];
      link_waiters = [];
      link_hooks = [];
    }
  in
  (* Devices present at boot have finished training by the time userspace
     runs. *)
  List.iter (fun dev -> ignore (bind t dev ~initial_link:Link_state.Active)) (Vm.devices vm);
  Vm.on_device_added vm (fun dev -> ignore (bind t dev ~initial_link:Link_state.Polling));
  Vm.on_device_removed vm (fun dev -> unbind t dev);
  t

let usable_kinds t =
  t.bound
  |> List.filter (fun d -> Link_state.equal d.link Link_state.Active)
  |> List.map (fun d -> d.dev.Device.kind)
  |> List.sort_uniq (fun a b ->
         match Float.compare (Device.bandwidth b) (Device.bandwidth a) with
         | 0 -> compare a b
         | c -> c)

let await_link_active t kind =
  let ready () =
    match find_driver t ~kind with
    | Some d -> Link_state.equal d.link Link_state.Active
    | None -> false
  in
  while not (ready ()) do
    Sim.suspend (fun resume -> t.link_waiters <- resume :: t.link_waiters)
  done

let on_link_change t f = t.link_hooks <- f :: t.link_hooks
