open Ninja_hardware

let class_of = function
  | Device.Ib_hca -> "InfiniBand: Mellanox ConnectX"
  | Device.Virtio_net -> "Ethernet controller: Red Hat Virtio network device"
  | Device.Eth_10g -> "Ethernet controller: Broadcom NetXtreme II"
  | Device.Emulated_nic -> "Ethernet controller: Intel 82540EM (e1000)"

let lspci guest =
  Guest.drivers guest
  |> List.map (fun d ->
         let dev = Guest.device d in
         Printf.sprintf "%s %s (%s)" dev.Device.pci_addr (class_of dev.Device.kind)
           dev.Device.tag)

let port_state link =
  match link with
  | Link_state.Active -> "PORT_ACTIVE"
  | Link_state.Polling -> "POLLING"
  | Link_state.Down -> "PORT_DOWN"

let ibstat guest =
  let hcas =
    List.filter
      (fun d -> (Guest.device d).Device.kind = Device.Ib_hca)
      (Guest.drivers guest)
  in
  match hcas with
  | [] -> "no InfiniBand devices"
  | hcas ->
    hcas
    |> List.map (fun d ->
           Printf.sprintf "CA '%s': port 1 state %s" (Guest.device d).Device.tag
             (port_state (Guest.link d)))
    |> String.concat "\n"

let netdev_summary guest =
  List.map
    (fun d ->
      let dev = Guest.device d in
      ( dev.Device.tag,
        Device.kind_name dev.Device.kind,
        Format.asprintf "%a" Link_state.pp (Guest.link d) ))
    (Guest.drivers guest)
