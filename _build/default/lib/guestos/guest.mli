(** Guest operating system: PCI device manager and network drivers.

    One [Guest.t] runs inside each VM. It subscribes to the VM's ACPI
    hotplug events: when a device appears a driver is bound and its link
    begins training — an IB port stays in POLLING for ~30 s (the paper's
    dominant re-attach overhead, Table II); virtio links come up
    immediately. When a device is removed the driver is unbound.

    The MPI BTL layer asks the guest which device kinds currently have an
    ACTIVE link ({!usable_kinds}) and waits for links after a migration
    ({!await_link_active} — the "confirm link-up" step of Fig. 4). *)

open Ninja_hardware
open Ninja_vmm

type t

type driver

val boot : Vm.t -> t
(** Bind drivers for already-attached devices (links immediately active,
    as after a normal boot) and subscribe to hotplug events. *)

val vm : t -> Vm.t

val drivers : t -> driver list

val device : driver -> Device.t

val link : driver -> Link_state.t

val find_driver : t -> kind:Device.kind -> driver option

val usable_kinds : t -> Device.kind list
(** Kinds with an ACTIVE link, fastest first. *)

val await_link_active : t -> Device.kind -> unit
(** Block the calling fiber until a driver of that kind reports ACTIVE.
    Blocks forever if no such device is ever attached — guard with
    {!find_driver} when the device is optional. *)

val on_link_change : t -> (driver -> unit) -> unit
