(** Guest-side introspection, in the style of the tools an operator would
    run inside the paper's VMs ([lspci], [ibstat]) to watch devices come
    and go across a Ninja migration. Pure rendering over {!Guest} state. *)

val lspci : Guest.t -> string list
(** One line per PCI device, e.g.
    ["04:00.0 InfiniBand: Mellanox ConnectX (vf0)"]. *)

val ibstat : Guest.t -> string
(** HCA port state summary, e.g. ["CA 'vf0': port 1 state PORT_ACTIVE"] or
    ["no InfiniBand devices"]. The POLLING state here is the ~30 s window
    the paper measures as "link-up". *)

val netdev_summary : Guest.t -> (string * string * string) list
(** (device tag, kind, link state) triples for every bound driver. *)
