type t = Down | Polling | Active

let pp fmt = function
  | Down -> Format.pp_print_string fmt "down"
  | Polling -> Format.pp_print_string fmt "polling"
  | Active -> Format.pp_print_string fmt "active"

let equal a b =
  match (a, b) with
  | Down, Down | Polling, Polling | Active, Active -> true
  | (Down | Polling | Active), _ -> false
