(** Network port link states as the guest driver sees them. *)

type t =
  | Down  (** no device / device detached *)
  | Polling  (** port training; IB ports stay here ~30 s after attach *)
  | Active

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
