lib/guestos/link_state.ml: Format
