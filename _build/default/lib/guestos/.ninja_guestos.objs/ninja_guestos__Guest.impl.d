lib/guestos/guest.ml: Cluster Device Float Link_state List Ninja_engine Ninja_hardware Ninja_vmm Sim String Trace Vm
