lib/guestos/sysinfo.ml: Device Format Guest Link_state List Ninja_hardware Printf String
