lib/guestos/sysinfo.mli: Guest
