lib/guestos/guest.mli: Device Link_state Ninja_hardware Ninja_vmm Vm
