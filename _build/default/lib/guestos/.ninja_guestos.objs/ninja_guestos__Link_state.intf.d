lib/guestos/link_state.mli: Format
