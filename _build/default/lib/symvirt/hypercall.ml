open Ninja_engine
open Ninja_hardware
open Ninja_vmm

type t = {
  vm : Vm.t;
  mutable waiters : (unit -> unit) list;
  mutable arrival_watchers : (unit -> unit) list; (* one-shot *)
}

let create vm = { vm; waiters = []; arrival_watchers = [] }

let vm t = t.vm

let waiting t = List.length t.waiters

let guest_wait t =
  Sim.sleep Calibration.symvirt_hypercall_overhead;
  Sim.suspend (fun resume ->
      t.waiters <- resume :: t.waiters;
      let watchers = List.rev t.arrival_watchers in
      t.arrival_watchers <- [];
      List.iter (fun wake -> wake ()) watchers)

let await_waiters t n =
  while waiting t < n do
    Sim.suspend (fun resume -> t.arrival_watchers <- resume :: t.arrival_watchers)
  done

let host_signal t =
  let waiters = List.rev t.waiters in
  t.waiters <- [];
  List.iter (fun wake -> wake ()) waiters
