lib/symvirt/hypercall.ml: Calibration List Ninja_engine Ninja_hardware Ninja_vmm Sim Vm
