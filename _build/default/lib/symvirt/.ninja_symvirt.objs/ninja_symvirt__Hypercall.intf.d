lib/symvirt/hypercall.mli: Ninja_vmm Vm
