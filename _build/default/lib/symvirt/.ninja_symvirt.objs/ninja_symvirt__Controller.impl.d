lib/symvirt/controller.ml: Cluster Hypercall Ivar List Migration Ninja_engine Ninja_hardware Ninja_vmm Printf Qmp Sim Trace Vm
