lib/symvirt/controller.mli: Cluster Device Hypercall Migration Ninja_hardware Ninja_vmm Node Qmp Vm
