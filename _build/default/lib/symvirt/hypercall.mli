(** The SymVirt guest↔VMM channel.

    SymVirt provides exactly two mode-switch calls (§III-B): from the guest,
    [guest_wait] blocks the calling process until the VMM side issues
    [host_signal]. Between the two, the host may run monitor commands
    (detach/attach devices, migrate) against a quiescent guest.

    One endpoint exists per VM; several MPI processes in the same VM each
    call [guest_wait], and the host side observes the waiter count to know
    when the whole VM has reached the fence. *)

open Ninja_vmm

type t

val create : Vm.t -> t

val vm : t -> Vm.t

val guest_wait : t -> unit
(** Guest-side hypercall (costs the calibrated mode-switch overhead). Blocks
    until the next {!host_signal}. *)

val waiting : t -> int
(** Number of guest processes currently blocked in [guest_wait]. *)

val await_waiters : t -> int -> unit
(** Host-side: block until at least that many guest processes are parked in
    [guest_wait]. *)

val host_signal : t -> unit
(** Wake every waiter. Typically preceded by [Vm.resume] — the VM must be
    running for guest code to observe the signal. *)
