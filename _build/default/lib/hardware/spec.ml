type group = {
  count : int;
  name_prefix : string;
  rack : int;
  cores : float;
  mem_bytes : float;
  with_ib : bool;
}

type t = { name : string; groups : group list }

let make ?(name = "cluster") ~ib_nodes ~eth_nodes ?(cores = 8.0) ?(mem_gb = 48.0) () =
  let mem_bytes = Units.gb mem_gb in
  let groups =
    [
      { count = ib_nodes; name_prefix = "ib"; rack = 0; cores; mem_bytes; with_ib = true };
      { count = eth_nodes; name_prefix = "eth"; rack = 1; cores; mem_bytes; with_ib = false };
    ]
  in
  { name; groups = List.filter (fun g -> g.count > 0) groups }

let agc = make ~name:"agc" ~ib_nodes:8 ~eth_nodes:8 ()

let agc_ib16 = make ~name:"agc-ib16" ~ib_nodes:16 ~eth_nodes:0 ()

let small = make ~name:"small" ~ib_nodes:2 ~eth_nodes:2 ()

let total_nodes t = List.fold_left (fun acc g -> acc + g.count) 0 t.groups

let table1 =
  [
    ("Node PC", "Dell PowerEdge M610");
    ("CPU", "Quad-core Intel Xeon E5540/2.53GHz x2");
    ("Chipset", "Intel 5520");
    ("Memory", "48 GB DDR3-1066");
    ("Infiniband", "Mellanox ConnectX (MT26428)");
    ("10 GbE", "Broadcom NetXtreme II (BMC57711)");
    ("Disk", "SAS 300 GB hardware RAID-1 array");
    ("Switch Infiniband", "Mellanox M3601Q");
    ("Switch 10 GbE", "Dell M8024");
  ]
