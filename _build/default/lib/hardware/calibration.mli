(** Calibration constants for the simulated AGC testbed.

    Every empirical constant in the reproduction lives here, next to the
    paper measurement it is calibrated against (see DESIGN.md §5). Rates
    are bytes per second; CPU taxes are core-seconds per byte. *)

(** {1 Interconnect data paths} *)

val ib_bandwidth : float
(** VMM-bypass QDR InfiniBand HCA effective node bandwidth (~3.2 GB/s). *)

val ib_latency : Ninja_engine.Time.span

val ib_cpu_per_byte : float
(** Zero: RDMA bypasses both the VMM and the guest kernel. *)

val virtio_bandwidth : float
(** Para-virtualised virtio-net over the 10 GbE NIC (~1.05 GB/s). *)

val virtio_latency : Ninja_engine.Time.span

val virtio_cpu_per_byte : float
(** TCP/IP + vhost processing cost; makes fallback traffic contend with
    application compute. *)

val eth10g_bandwidth : float
(** Bare-metal 10 GbE (host side, used by migration traffic). *)

val eth10g_latency : Ninja_engine.Time.span

val eth10g_cpu_per_byte : float

val emulated_bandwidth : float
(** Fully emulated NIC (e1000-style); only used by the ablation bench that
    quantifies why VMM-bypass matters. *)

val emulated_latency : Ninja_engine.Time.span

val emulated_cpu_per_byte : float

val sm_bandwidth : float
(** Intra-VM shared-memory transport (Open MPI btl_sm). *)

val sm_latency : Ninja_engine.Time.span

val sm_cpu_per_byte : float

val loopback_bandwidth : float
(** Same-host memcpy path (self-migration, loopback TCP). *)

(** {1 PCI hotplug (calibrated against Table II)} *)

val detach_ib : Ninja_engine.Time.span
(** ACPI eject + mlx4 driver teardown of a VMM-bypass HCA (~2.75 s). *)

val attach_ib : Ninja_engine.Time.span

val detach_eth : Ninja_engine.Time.span

val attach_eth : Ninja_engine.Time.span

val hotplug_noise_factor : float
(** Paper §IV-B2: guest-visible hotplug time during a cross-node Ninja
    migration of 8 VMs is ~3x the self-migration value ("migration noise
    interferes with the execution of hotplug"). Applied when other VMs of
    the same job are mid-migration. *)

(** {1 Link-up (calibrated against Table II)} *)

val linkup_ib : Ninja_engine.Time.span
(** IB port stays in POLLING ~30 s after re-attach before going ACTIVE. *)

val linkup_eth : Ninja_engine.Time.span

(** {1 QEMU precopy migration (§IV-B, Figs. 6–7)} *)

val page_size : int

val zero_scan_rate : float
(** Rate at which the single-threaded sender walks and compresses uniform
    ("zero") pages. *)

val transfer_rate : float
(** Effective guest-byte rate for non-zero pages; CPU-bound at < 1.3 Gb/s
    wire throughput in the paper (§V). *)

val rdma_transfer_rate : float
(** Hypothetical RDMA-based migration sender (§V optimisation; ablation
    bench only). *)

val migration_downtime_target : Ninja_engine.Time.span

val migration_max_rounds : int

val migration_cpu_demand : float
(** Cores consumed by the sender thread on the source host (1.0: the paper
    observes one core saturated). *)

(** {1 Guest software stack} *)

val mpi_eager_limit_ib : int
(** openib BTL eager/rendezvous switch (bytes). *)

val mpi_eager_limit_tcp : int

val reduction_rate : float
(** Local reduction operator throughput (bytes/s/core) for MPI_Reduce. *)

val qmp_command_overhead : Ninja_engine.Time.span
(** Python controller/QMP round-trip per monitor command. *)

val symvirt_hypercall_overhead : Ninja_engine.Time.span
