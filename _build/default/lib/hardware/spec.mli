(** Cluster specifications.

    [agc] reproduces the paper's testbed (Table I): 16 Dell PowerEdge M610
    blades — 2× quad-core Xeon E5540 (8 cores), 48 GB DDR3, Mellanox
    ConnectX QDR IB, Broadcom BCM57711 10 GbE — in one M1000e enclosure
    with an M3601Q IB switch and an M8024 10 GbE switch. The experiments
    split it into an 8-node "InfiniBand cluster" and an 8-node "Ethernet
    cluster". *)

type group = {
  count : int;
  name_prefix : string;
  rack : int;
  cores : float;
  mem_bytes : float;
  with_ib : bool;
}

type t = { name : string; groups : group list }

val agc : t
(** The paper's 16-node AGC testbed in its heterogeneous-data-center
    configuration: an 8-node "InfiniBand cluster" (rack 0) and an 8-node
    "Ethernet cluster" (rack 1, no HCAs exposed). *)

val agc_ib16 : t
(** The same 16 blades with InfiniBand everywhere — the §IV-B setting
    where "both the source and the destination clusters use Infiniband
    only" (Table II, Figs. 6–7). *)

val small : t
(** A 2+2-node miniature for quickstart examples and fast tests. *)

val make :
  ?name:string -> ib_nodes:int -> eth_nodes:int -> ?cores:float -> ?mem_gb:float -> unit -> t

val total_nodes : t -> int

val table1 : (string * string) list
(** Table I of the paper, as label/value rows. *)
