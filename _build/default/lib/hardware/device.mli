(** Guest-visible network devices.

    A device is what the guest OS sees on its PCI bus: either a VMM-bypass
    InfiniBand HCA (PCI passthrough of a host port — fast, but it pins the
    VM to its host and must be hot-unplugged before any migration) or a
    para-virtualised / emulated NIC backed by whichever host the VM
    currently runs on. *)

type kind =
  | Ib_hca  (** VMM-bypass ConnectX QDR HCA (passthrough). *)
  | Virtio_net  (** Para-virtualised NIC over the host 10 GbE port. *)
  | Eth_10g  (** Bare-metal 10 GbE (host-side path, e.g. migration). *)
  | Emulated_nic  (** Fully emulated NIC; ablation benches only. *)

type t = {
  tag : string;  (** monitor-visible tag, e.g. ["vf0"]. *)
  pci_addr : string;  (** e.g. ["04:00.0"]. *)
  kind : kind;
}

val make : tag:string -> pci_addr:string -> kind -> t

val is_bypass : kind -> bool
(** True for devices that bypass the VMM and therefore block migration. *)

val bandwidth : kind -> float

val latency : kind -> Ninja_engine.Time.span

val cpu_per_byte : kind -> float

val detach_time : kind -> Ninja_engine.Time.span

val attach_time : kind -> Ninja_engine.Time.span

val linkup_time : kind -> Ninja_engine.Time.span

val kind_name : kind -> string

val pp : Format.formatter -> t -> unit
