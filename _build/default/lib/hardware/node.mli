(** A physical compute node.

    Owns a processor-sharing CPU pool (all vCPUs, migration sender threads
    and TCP protocol work draw from it), its RAM size, and its fabric
    attachment points: an optional InfiniBand port, a 10 GbE port, and a
    loopback path for same-host transfers. *)

open Ninja_engine
open Ninja_flownet

type port = { tx : Fabric.link; rx : Fabric.link }

type t = {
  id : int;
  name : string;
  rack : int;
  cpu : Ps_resource.t;
  mem_bytes : float;
  ib_port : port option;
  eth_port : port;
  loopback : Fabric.link;
}

val create :
  Sim.t ->
  Fabric.t ->
  id:int ->
  name:string ->
  rack:int ->
  cores:float ->
  mem_bytes:float ->
  with_ib:bool ->
  t

val has_ib : t -> bool

val pp : Format.formatter -> t -> unit
