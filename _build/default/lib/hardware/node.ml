open Ninja_engine
open Ninja_flownet

type port = { tx : Fabric.link; rx : Fabric.link }

type t = {
  id : int;
  name : string;
  rack : int;
  cpu : Ps_resource.t;
  mem_bytes : float;
  ib_port : port option;
  eth_port : port;
  loopback : Fabric.link;
}

let make_port fabric ~node_name ~net ~capacity =
  {
    tx = Fabric.add_link fabric ~name:(Printf.sprintf "%s.%s.tx" node_name net) ~capacity;
    rx = Fabric.add_link fabric ~name:(Printf.sprintf "%s.%s.rx" node_name net) ~capacity;
  }

let create sim fabric ~id ~name ~rack ~cores ~mem_bytes ~with_ib =
  let ib_port =
    if with_ib then
      Some (make_port fabric ~node_name:name ~net:"ib" ~capacity:Calibration.ib_bandwidth)
    else None
  in
  let eth_port =
    make_port fabric ~node_name:name ~net:"eth" ~capacity:Calibration.eth10g_bandwidth
  in
  let loopback =
    Fabric.add_link fabric ~name:(name ^ ".lo") ~capacity:Calibration.loopback_bandwidth
  in
  {
    id;
    name;
    rack;
    cpu = Ps_resource.create sim ~name:(name ^ ".cpu") ~capacity:cores;
    mem_bytes;
    ib_port;
    eth_port;
    loopback;
  }

let has_ib t = Option.is_some t.ib_port

let pp fmt t =
  Format.fprintf fmt "%s(rack%d%s)" t.name t.rack (if has_ib t then ",ib" else "")
