(** Node power model and energy metering.

    The paper's future work (§VII) proposes "intelligent VM placement in a
    data center consist[ing] of heterogeneous racks for power saving" —
    consolidation frees hosts that can then sleep. This module provides
    the accounting: a linear server power model (idle + dynamic·CPU
    utilisation, the standard first-order model for this class of blade)
    and a meter that integrates per-node energy over simulated time, with
    hosts at zero utilisation charged sleep power. *)

open Ninja_engine

type model = {
  sleep_watts : float;  (** suspended / powered-down host *)
  idle_watts : float;  (** powered on, 0% CPU *)
  dynamic_watts : float;  (** additional draw at 100% CPU *)
}

val m610 : model
(** A PowerEdge M610-class blade: ~15 W asleep, ~160 W idle, +110 W at
    full load. *)

type meter

val measure :
  Sim.t ->
  ?model:model ->
  ?interval:Time.span ->
  ?awake:(Node.t -> bool) ->
  until:Time.t ->
  Node.t list ->
  meter
(** Sample every [interval] (default 1 s) until the given time,
    integrating each node's power draw. [awake] decides whether a host is
    powered at all — the consolidation policy can only power off hosts
    with no resident VMs, so callers typically pass "hosts a VM"; the
    default treats any host with non-zero CPU utilisation as awake. *)

val energy_joules : meter -> float
(** Total energy across all metered nodes so far. *)

val per_node_joules : meter -> (Node.t * float) list

val samples : meter -> int
