(** Byte and bandwidth unit helpers. *)

val kib : float
val mib : float
val gib : float

val gb : float -> float
(** [gb x] is x·2{^30} bytes — the paper reports memory sizes in binary
    gigabytes (a "20 GB" VM is 20 GiB of RAM). *)

val mb : float -> float

val gbps : float -> float
(** Network vendor convention: [gbps x] is x·10{^9}/8 bytes per second. *)

val pp_bytes : Format.formatter -> float -> unit
(** ["2.0 GiB"], ["512.0 MiB"], ... *)
