let kib = 1024.0

let mib = 1024.0 *. 1024.0

let gib = 1024.0 *. 1024.0 *. 1024.0

let gb x = x *. gib

let mb x = x *. mib

let gbps x = x *. 1e9 /. 8.0

let pp_bytes fmt b =
  if b >= gib then Format.fprintf fmt "%.1f GiB" (b /. gib)
  else if b >= mib then Format.fprintf fmt "%.1f MiB" (b /. mib)
  else if b >= kib then Format.fprintf fmt "%.1f KiB" (b /. kib)
  else Format.fprintf fmt "%.0f B" b
