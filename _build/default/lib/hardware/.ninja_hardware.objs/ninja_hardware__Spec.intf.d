lib/hardware/spec.mli:
