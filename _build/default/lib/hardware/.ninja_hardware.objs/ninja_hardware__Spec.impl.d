lib/hardware/spec.ml: List Units
