lib/hardware/power.ml: Hashtbl List Ninja_engine Node Ps_resource Sim Time
