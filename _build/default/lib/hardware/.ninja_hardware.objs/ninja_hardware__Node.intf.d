lib/hardware/node.mli: Fabric Format Ninja_engine Ninja_flownet Ps_resource Sim
