lib/hardware/units.ml: Format
