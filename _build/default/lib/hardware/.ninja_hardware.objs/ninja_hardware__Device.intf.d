lib/hardware/device.mli: Format Ninja_engine
