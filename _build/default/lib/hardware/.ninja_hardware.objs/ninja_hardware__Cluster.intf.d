lib/hardware/cluster.mli: Fabric Ninja_engine Ninja_flownet Node Sim Spec Time Trace
