lib/hardware/calibration.ml: Ninja_engine Time
