lib/hardware/units.mli: Format
