lib/hardware/device.ml: Calibration Format
