lib/hardware/cluster.ml: Array Calibration Fabric Hashtbl List Ninja_engine Ninja_flownet Node Printf Sim Spec String Time Trace
