lib/hardware/node.ml: Calibration Fabric Format Ninja_engine Ninja_flownet Option Printf Ps_resource
