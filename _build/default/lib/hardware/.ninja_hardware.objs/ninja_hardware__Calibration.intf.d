lib/hardware/calibration.mli: Ninja_engine
