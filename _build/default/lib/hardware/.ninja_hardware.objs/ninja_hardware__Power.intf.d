lib/hardware/power.mli: Ninja_engine Node Sim Time
