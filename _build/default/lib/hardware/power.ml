open Ninja_engine

type model = { sleep_watts : float; idle_watts : float; dynamic_watts : float }

let m610 = { sleep_watts = 15.0; idle_watts = 160.0; dynamic_watts = 110.0 }

type meter = {
  model : model;
  nodes : Node.t list;
  joules : (int, float) Hashtbl.t;
  mutable n_samples : int;
}

let node_power model ~awake node =
  if not (awake node) then model.sleep_watts
  else model.idle_watts +. (model.dynamic_watts *. Ps_resource.utilization node.Node.cpu)

let default_awake (n : Node.t) = Ps_resource.utilization n.Node.cpu > 0.0

let measure sim ?(model = m610) ?(interval = Time.sec 1) ?(awake = default_awake) ~until nodes =
  let meter = { model; nodes; joules = Hashtbl.create 16; n_samples = 0 } in
  List.iter (fun (n : Node.t) -> Hashtbl.replace meter.joules n.Node.id 0.0) nodes;
  let dt = Time.to_sec_f interval in
  Sim.spawn sim ~name:"power-meter" (fun () ->
      while Time.(Time.add (Sim.now sim) interval <= until) do
        Sim.sleep interval;
        meter.n_samples <- meter.n_samples + 1;
        List.iter
          (fun (n : Node.t) ->
            let j = Hashtbl.find meter.joules n.Node.id in
            Hashtbl.replace meter.joules n.Node.id (j +. (node_power model ~awake n *. dt)))
          nodes
      done);
  meter

let per_node_joules meter =
  List.map (fun (n : Node.t) -> (n, Hashtbl.find meter.joules n.Node.id)) meter.nodes

let energy_joules meter = List.fold_left (fun acc (_, j) -> acc +. j) 0.0 (per_node_joules meter)

let samples meter = meter.n_samples
