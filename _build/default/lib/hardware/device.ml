type kind = Ib_hca | Virtio_net | Eth_10g | Emulated_nic

type t = { tag : string; pci_addr : string; kind : kind }

let make ~tag ~pci_addr kind = { tag; pci_addr; kind }

let is_bypass = function Ib_hca -> true | Virtio_net | Eth_10g | Emulated_nic -> false

let bandwidth = function
  | Ib_hca -> Calibration.ib_bandwidth
  | Virtio_net -> Calibration.virtio_bandwidth
  | Eth_10g -> Calibration.eth10g_bandwidth
  | Emulated_nic -> Calibration.emulated_bandwidth

let latency = function
  | Ib_hca -> Calibration.ib_latency
  | Virtio_net -> Calibration.virtio_latency
  | Eth_10g -> Calibration.eth10g_latency
  | Emulated_nic -> Calibration.emulated_latency

let cpu_per_byte = function
  | Ib_hca -> Calibration.ib_cpu_per_byte
  | Virtio_net -> Calibration.virtio_cpu_per_byte
  | Eth_10g -> Calibration.eth10g_cpu_per_byte
  | Emulated_nic -> Calibration.emulated_cpu_per_byte

let detach_time = function
  | Ib_hca -> Calibration.detach_ib
  | Virtio_net | Eth_10g | Emulated_nic -> Calibration.detach_eth

let attach_time = function
  | Ib_hca -> Calibration.attach_ib
  | Virtio_net | Eth_10g | Emulated_nic -> Calibration.attach_eth

let linkup_time = function
  | Ib_hca -> Calibration.linkup_ib
  | Virtio_net | Eth_10g | Emulated_nic -> Calibration.linkup_eth

let kind_name = function
  | Ib_hca -> "ib-hca"
  | Virtio_net -> "virtio-net"
  | Eth_10g -> "eth-10g"
  | Emulated_nic -> "emulated-nic"

let pp fmt t = Format.fprintf fmt "%s(%s@%s)" t.tag (kind_name t.kind) t.pci_addr
