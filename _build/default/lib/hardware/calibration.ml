open Ninja_engine

(* Interconnect data paths ------------------------------------------- *)

(* QDR IB: 40 Gb/s signalling, 32 Gb/s data; ~3.2 GB/s achievable from an
   MPI process through a VMM-bypass HCA (paper ref [4]). *)
let ib_bandwidth = 3.2e9

let ib_latency = Time.of_sec_f 1.7e-6

let ib_cpu_per_byte = 0.0

(* virtio-net on a BCM57711: ~8.4 Gb/s effective for MPI over TCP. *)
let virtio_bandwidth = 1.05e9

let virtio_latency = Time.of_sec_f 35e-6

(* ~0.8 core at line rate. *)
let virtio_cpu_per_byte = 0.8 /. 1.05e9

let eth10g_bandwidth = 1.18e9

let eth10g_latency = Time.of_sec_f 20e-6

let eth10g_cpu_per_byte = 0.4 /. 1.18e9

let emulated_bandwidth = 0.30e9

let emulated_latency = Time.of_sec_f 120e-6

let emulated_cpu_per_byte = 1.0 /. 0.30e9

let sm_bandwidth = 5.0e9

let sm_latency = Time.of_sec_f 0.5e-6

let sm_cpu_per_byte = 0.2 /. 5.0e9

let loopback_bandwidth = 8.0e9

(* PCI hotplug -------------------------------------------------------- *)
(* Solving Table II's four combinations:
     detach_ib + attach_ib  = 3.88   detach_ib + attach_eth = 2.80
     detach_eth + attach_ib = 1.15   detach_eth + attach_eth = 0.13
   gives detach_ib ~ 2.75, attach_ib ~ 1.13, detach_eth ~ 0.05,
   attach_eth ~ 0.08 (within the paper's run-to-run variation). *)
let detach_ib = Time.of_sec_f 2.75

let attach_ib = Time.of_sec_f 1.13

let detach_eth = Time.of_sec_f 0.05

let attach_eth = Time.of_sec_f 0.08

let hotplug_noise_factor = 3.1

(* Link-up ------------------------------------------------------------ *)

let linkup_ib = Time.of_sec_f 29.85

let linkup_eth = Time.zero

(* QEMU precopy migration --------------------------------------------- *)

let page_size = 4096

(* The single-threaded sender is CPU-bound: it walks every page, detecting
   and compressing uniform pages at [zero_scan_rate] and pushing the rest
   at [transfer_rate] effective guest bytes/s (< 1.3 Gb/s wire in the
   paper). The two rates reproduce Fig. 6's "dependent on the footprint
   but not exactly proportional" migration segment. *)
let zero_scan_rate = 0.9e9

let transfer_rate = 0.42e9

let rdma_transfer_rate = 1.1e9

let migration_downtime_target = Time.of_sec_f 0.3

let migration_max_rounds = 30

let migration_cpu_demand = 1.0

(* Guest software stack ------------------------------------------------ *)

let mpi_eager_limit_ib = 12 * 1024

let mpi_eager_limit_tcp = 64 * 1024

let reduction_rate = 2.0e9

let qmp_command_overhead = Time.of_sec_f 0.02

let symvirt_hypercall_overhead = Time.of_sec_f 0.001
