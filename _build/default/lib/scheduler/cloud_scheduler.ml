open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core

type trigger =
  | Maintenance of { avoid : Node.t -> bool }
  | Disaster of { rack : int }
  | Consolidate of { vms_per_host : int; targets : Node.t list }
  | Rebalance of { targets : Node.t list }

type record = { at : Time.t; trigger : trigger; breakdown : Breakdown.t }

type t = { ninja : Ninja.t; sim : Sim.t; mutable records : record list }

let create ninja = { ninja; sim = Cluster.sim (Ninja.cluster ninja); records = [] }

let trigger_name = function
  | Maintenance _ -> "maintenance"
  | Disaster { rack } -> Printf.sprintf "disaster(rack%d)" rack
  | Consolidate { vms_per_host; _ } -> Printf.sprintf "consolidate(%d/host)" vms_per_host
  | Rebalance _ -> "rebalance"

let plan_for t trigger =
  let cluster = Ninja.cluster t.ninja in
  let vms = Ninja.vms t.ninja in
  match trigger with
  | Maintenance { avoid } -> Placement.evacuation_plan cluster ~vms ~avoid
  | Disaster { rack } ->
    Placement.evacuation_plan cluster ~vms ~avoid:(fun n -> n.Node.rack = rack)
  | Consolidate { vms_per_host; targets } ->
    Placement.consolidation_plan cluster ~vms ~vms_per_host ~targets
  | Rebalance { targets } -> Placement.spread_plan cluster ~vms ~targets

let execute t trigger =
  let plan = plan_for t trigger in
  let breakdown = Ninja.migrate t.ninja ~plan () in
  t.records <- { at = Sim.now t.sim; trigger; breakdown } :: t.records;
  Trace.recordf
    (Cluster.trace (Ninja.cluster t.ninja))
    ~category:"scheduler" "trigger %s done: %a" (trigger_name trigger) Breakdown.pp breakdown;
  breakdown

let schedule t ~after trigger =
  Sim.spawn t.sim ~name:("trigger-" ^ trigger_name trigger) (fun () ->
      Sim.sleep after;
      ignore (execute t trigger))

let history t = List.rev t.records
