lib/scheduler/placement.mli: Cluster Ninja_hardware Ninja_vmm Node Vm
