lib/scheduler/cloud_scheduler.ml: Breakdown Cluster List Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Node Placement Printf Sim Time Trace
