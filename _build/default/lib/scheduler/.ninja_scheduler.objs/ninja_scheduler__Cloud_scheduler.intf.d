lib/scheduler/cloud_scheduler.mli: Breakdown Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Ninja_vmm Node Time
