lib/scheduler/placement.ml: Cluster List Ninja_hardware Ninja_vmm Node Vm
