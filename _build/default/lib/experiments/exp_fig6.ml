open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_workloads
open Exp_common

type row = {
  size_gb : float;
  migration : float;
  hotplug : float;
  linkup : float;
  total : float;
}

let measure ~size_gb =
  let sim, cluster = fresh ~spec:Spec.agc_ib16 () in
  let srcs = hosts cluster ~prefix:"ib" ~first:0 ~count:8 in
  let dsts = hosts cluster ~prefix:"ib" ~first:8 ~count:8 in
  let ninja = Ninja.setup cluster ~hosts:srcs () in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         Memtest.run_until ctx ~array_bytes:(Units.gb size_gb) ~until:200.0 ()));
  let result = ref None in
  Sim.spawn sim (fun () ->
      (* Let every rank complete at least one full pass first. *)
      Sim.sleep (Time.sec 30);
      let b = Ninja.fallback ninja ~dsts in
      result := Some b;
      Ninja.wait_job ninja);
  run_to_completion sim;
  let b = Option.get !result in
  {
    size_gb;
    migration = sec b.Breakdown.migration;
    hotplug = sec (Breakdown.hotplug b);
    linkup = sec b.Breakdown.linkup;
    total = sec (Breakdown.overhead_sum b);
  }

let run mode =
  let sizes = match mode with Quick -> [ 2.0; 16.0 ] | Full -> Paper_data.fig6_sizes_gb in
  let table =
    Table.create
      ~title:"Fig. 6: Ninja migration overhead on memtest [seconds] (paper values in parens)"
      ~columns:[ "Array"; "migration"; "hotplug"; "link-up"; "total overhead" ]
  in
  List.iter
    (fun size_gb ->
      let r = measure ~size_gb in
      let paper_at l =
        match
          List.find_opt (fun (s, _) -> s = size_gb) (List.combine Paper_data.fig6_sizes_gb l)
        with
        | Some (_, v) -> Printf.sprintf "%.1f" v
        | None -> "-"
      in
      Table.add_row table
        [
          Printf.sprintf "%.0fGB" size_gb;
          Printf.sprintf "%.1f (%s)" r.migration (paper_at Paper_data.fig6_migration);
          Printf.sprintf "%.1f (%s)" r.hotplug (paper_at Paper_data.fig6_hotplug);
          Printf.sprintf "%.1f (%s)" r.linkup (paper_at Paper_data.fig6_linkup);
          Printf.sprintf "%.1f" r.total;
        ])
    sizes;
  [ table ]
