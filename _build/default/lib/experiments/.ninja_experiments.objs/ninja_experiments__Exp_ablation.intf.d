lib/experiments/exp_ablation.mli: Exp_common Ninja_metrics
