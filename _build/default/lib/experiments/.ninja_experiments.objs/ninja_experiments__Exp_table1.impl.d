lib/experiments/exp_table1.ml: Calibration Format List Ninja_engine Ninja_hardware Ninja_metrics Printf Spec Table
