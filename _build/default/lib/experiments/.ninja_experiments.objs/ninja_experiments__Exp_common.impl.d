lib/experiments/exp_common.ml: Cluster List Ninja_engine Ninja_hardware Printf Sim Spec Time
