lib/experiments/registry.ml: Exp_ablation Exp_common Exp_fig6 Exp_fig7 Exp_fig8 Exp_power Exp_scalability Exp_table1 Exp_table2 List Ninja_metrics String
