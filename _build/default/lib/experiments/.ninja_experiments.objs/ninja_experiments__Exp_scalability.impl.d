lib/experiments/exp_scalability.ml: Breakdown Cluster Exp_common List Memtest Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Ninja_workloads Option Printf Sim Spec Table Time Units
