lib/experiments/exp_scalability.mli: Exp_common Ninja_metrics
