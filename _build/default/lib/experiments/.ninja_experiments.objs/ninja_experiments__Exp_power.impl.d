lib/experiments/exp_power.ml: Cluster Exp_common List Mpi Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Ninja_mpi Ninja_vmm Node Option Power Printf Sim Spec Table Time
