lib/experiments/exp_fig7.ml: Breakdown Exp_common List Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Ninja_mpi Ninja_workloads Npb Paper_data Printf Sim Spec Table Time
