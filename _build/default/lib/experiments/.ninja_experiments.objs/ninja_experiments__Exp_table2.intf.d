lib/experiments/exp_table2.mli: Exp_common Ninja_metrics Paper_data
