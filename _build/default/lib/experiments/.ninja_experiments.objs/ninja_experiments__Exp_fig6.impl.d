lib/experiments/exp_fig6.ml: Breakdown Exp_common List Memtest Ninja Ninja_core Ninja_engine Ninja_hardware Ninja_metrics Ninja_workloads Option Paper_data Printf Sim Spec Table Time Units
