lib/experiments/exp_fig8.mli: Exp_common Ninja_metrics
