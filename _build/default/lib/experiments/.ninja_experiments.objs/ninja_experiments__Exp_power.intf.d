lib/experiments/exp_power.mli: Exp_common Ninja_metrics
