lib/experiments/exp_common.mli: Cluster Ninja_engine Ninja_hardware Node Sim Spec Time
