lib/experiments/registry.mli: Exp_common Ninja_metrics
