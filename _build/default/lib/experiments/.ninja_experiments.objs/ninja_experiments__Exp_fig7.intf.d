lib/experiments/exp_fig7.mli: Exp_common Ninja_metrics Ninja_workloads
