lib/experiments/exp_table1.mli: Ninja_metrics
