type combo = Ib_to_ib | Ib_to_eth | Eth_to_ib | Eth_to_eth

let combos = [ Ib_to_ib; Ib_to_eth; Eth_to_ib; Eth_to_eth ]

let combo_name = function
  | Ib_to_ib -> "Infiniband -> Infiniband"
  | Ib_to_eth -> "Infiniband -> Ethernet"
  | Eth_to_ib -> "Ethernet -> Infiniband"
  | Eth_to_eth -> "Ethernet -> Ethernet"

let table2_hotplug = function
  | Ib_to_ib -> 3.88
  | Ib_to_eth -> 2.80
  | Eth_to_ib -> 1.15
  | Eth_to_eth -> 0.13

let table2_linkup = function
  | Ib_to_ib -> 29.91
  | Ib_to_eth -> 0.00
  | Eth_to_ib -> 29.79
  | Eth_to_eth -> 0.00

let fig6_sizes_gb = [ 2.0; 4.0; 8.0; 16.0 ]

let fig6_migration = [ 53.7; 35.9; 38.7; 44.2 ]

let fig6_hotplug = [ 14.6; 13.5; 12.5; 11.3 ]

let fig6_linkup = [ 28.5; 28.5; 28.5; 28.6 ]

(* Read off the Fig. 7 chart (bars are not labelled in the paper); treated
   as approximate in EXPERIMENTS.md. *)
let fig7_baseline = function
  | "BT" -> 980.0
  | "CG" -> 750.0
  | "FT" -> 440.0
  | "LU" -> 590.0
  | _ -> invalid_arg "Paper_data.fig7_baseline: unknown kernel"

let fig7_overhead = function
  | "BT" -> 75.0
  | "CG" -> 55.0
  | "FT" -> 90.0
  | "LU" -> 65.0
  | _ -> invalid_arg "Paper_data.fig7_overhead: unknown kernel"
