(** Reference values reported by the paper, for side-by-side output.

    Table II values are printed in the paper; figure values are read off
    the charts (the paper prints the Fig. 6 bar labels) and are
    approximate where noted. All in seconds. *)

type combo = Ib_to_ib | Ib_to_eth | Eth_to_ib | Eth_to_eth

val combo_name : combo -> string

val combos : combo list

val table2_hotplug : combo -> float

val table2_linkup : combo -> float

(** Fig. 6 (memtest, sizes 2/4/8/16 GB): bar segment labels as printed. *)

val fig6_sizes_gb : float list

val fig6_migration : float list

val fig6_hotplug : float list

val fig6_linkup : float list

(** Fig. 7 (NPB class D, 64 procs): approximate bar heights. *)

val fig7_baseline : string -> float
(** By kernel name (BT/CG/FT/LU). *)

val fig7_overhead : string -> float
(** Total added by the single Ninja migration, approximate. *)
