open Ninja_engine
open Ninja_hardware

type mode = Quick | Full

let fresh ?(spec = Spec.agc) () =
  let sim = Sim.create ~seed:42L () in
  (sim, Cluster.create sim ~spec ())

let hosts cluster ~prefix ~first ~count =
  List.init count (fun i ->
      Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix (first + i)))

let run_to_completion sim = Sim.run sim

let sec = Time.to_sec_f
