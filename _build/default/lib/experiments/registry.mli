(** Experiment registry: names every reproducible table/figure and maps it
    to its runner, for the CLI and the bench harness. *)

type entry = {
  name : string;  (** e.g. ["table2"] *)
  description : string;
  run : Exp_common.mode -> Ninja_metrics.Table.t list;
}

val all : entry list

val find : string -> entry option

val names : string list
