(** Table II: hotplug and link-up time of self-migration, for the four
    source→destination interconnect combinations.

    Reproduces §IV-B1: 8 VMs running memtest self-migrate (to their own
    node) with the interconnect device of each side hot-unplugged /
    re-plugged — a VMM-bypass HCA on InfiniBand sides, the virtio NIC on
    Ethernet sides. Best of three runs, like the paper. *)

val run : Exp_common.mode -> Ninja_metrics.Table.t list

val measure : Paper_data.combo -> hotplug:float ref -> linkup:float ref -> unit
(** One combo measurement (used by tests to probe single rows). *)
