(** Table I: AGC cluster specification, plus the simulator's calibrated
    model parameters for the same hardware. *)

val run : unit -> Ninja_metrics.Table.t list
