open Ninja_hardware
open Ninja_metrics

let run () =
  let spec = Table.create ~title:"Table I: AGC cluster specifications" ~columns:[ "Component"; "Value" ] in
  List.iter (fun (k, v) -> Table.add_row spec [ k; v ]) Spec.table1;
  let model =
    Table.create ~title:"Simulator calibration for the same hardware"
      ~columns:[ "Parameter"; "Value" ]
  in
  let row k v = Table.add_row model [ k; v ] in
  row "IB HCA bandwidth (VMM-bypass)" (Printf.sprintf "%.1f GB/s" (Calibration.ib_bandwidth /. 1e9));
  row "IB latency" (Format.asprintf "%a" Ninja_engine.Time.pp Calibration.ib_latency);
  row "virtio-net bandwidth" (Printf.sprintf "%.2f GB/s" (Calibration.virtio_bandwidth /. 1e9));
  row "virtio-net latency" (Format.asprintf "%a" Ninja_engine.Time.pp Calibration.virtio_latency);
  row "migration sender rate (TCP)" (Printf.sprintf "%.2f GB/s" (Calibration.transfer_rate /. 1e9));
  row "zero-page scan rate" (Printf.sprintf "%.2f GB/s" (Calibration.zero_scan_rate /. 1e9));
  row "IB link-up (port training)" (Format.asprintf "%a" Ninja_engine.Time.pp Calibration.linkup_ib);
  row "hotplug detach/attach IB"
    (Format.asprintf "%a / %a" Ninja_engine.Time.pp Calibration.detach_ib Ninja_engine.Time.pp
       Calibration.attach_ib);
  row "hotplug detach/attach eth"
    (Format.asprintf "%a / %a" Ninja_engine.Time.pp Calibration.detach_eth Ninja_engine.Time.pp
       Calibration.attach_eth);
  [ spec; model ]
