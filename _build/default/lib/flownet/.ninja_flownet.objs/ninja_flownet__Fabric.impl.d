lib/flownet/fabric.ml: Array Float Hashtbl List Ninja_engine Rated
