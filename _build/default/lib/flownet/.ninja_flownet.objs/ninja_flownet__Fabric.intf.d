lib/flownet/fabric.mli: Ninja_engine
