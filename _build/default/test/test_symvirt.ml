(* Tests for the SymVirt hypercall channel, controller and agents. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_symvirt

let check_near msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

let setup n =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  let vms =
    List.init n (fun i ->
        Vm.create cluster
          ~name:(Printf.sprintf "vm%d" i)
          ~host:(Cluster.find_node cluster (Printf.sprintf "ib%02d" i))
          ~vcpus:8 ~mem_bytes:(Units.gb 20.0) ())
  in
  (sim, cluster, vms)

let test_hypercall_wait_signal () =
  let sim, _, vms = setup 1 in
  let vm = List.hd vms in
  let ep = Hypercall.create vm in
  let resumed_at = ref 0.0 in
  Sim.spawn sim (fun () ->
      Hypercall.guest_wait ep;
      resumed_at := Time.to_sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      Alcotest.(check int) "one waiter" 1 (Hypercall.waiting ep);
      Hypercall.host_signal ep);
  Sim.run sim;
  check_near "resumed at signal" 0.01 5.0 !resumed_at;
  Alcotest.(check int) "no waiters after" 0 (Hypercall.waiting ep)

let test_hypercall_await_waiters () =
  let sim, _, vms = setup 1 in
  let ep = Hypercall.create (List.hd vms) in
  let fence_at = ref 0.0 in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Sim.sleep (Time.sec i);
        Hypercall.guest_wait ep)
  done;
  Sim.spawn sim (fun () ->
      Hypercall.await_waiters ep 3;
      fence_at := Time.to_sec_f (Sim.now sim);
      Hypercall.host_signal ep);
  Sim.run sim;
  check_near "fence when the last arrives" 0.01 3.0 !fence_at

let test_controller_fence_pauses_vms () =
  let sim, cluster, vms = setup 2 in
  let members =
    List.map (fun vm -> { Controller.vm; endpoint = Hypercall.create vm; procs = 2 }) vms
  in
  let ctl = Controller.create cluster ~members in
  (* 2 procs per VM: the fence must not open until all 4 are parked. *)
  List.iter
    (fun m ->
      for i = 1 to 2 do
        Sim.spawn sim (fun () ->
            Sim.sleep (Time.sec i);
            Hypercall.guest_wait m.Controller.endpoint)
      done)
    members;
  let fence_at = ref 0.0 in
  Sim.spawn sim (fun () ->
      Controller.wait_all ctl;
      fence_at := Time.to_sec_f (Sim.now sim);
      List.iter
        (fun vm -> Alcotest.(check bool) "paused at fence" true (Vm.state vm = Vm.Paused))
        vms;
      Controller.signal ctl;
      List.iter
        (fun vm -> Alcotest.(check bool) "resumed" true (Vm.state vm = Vm.Running))
        vms);
  Sim.run sim;
  check_near "fence at slowest waiter" 0.01 2.0 !fence_at

let test_agents_run_in_parallel () =
  let sim, cluster, vms = setup 4 in
  List.iter
    (fun vm -> Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca))
    vms;
  let members =
    List.map (fun vm -> { Controller.vm; endpoint = Hypercall.create vm; procs = 1 }) vms
  in
  let ctl = Controller.create cluster ~members in
  let elapsed = ref 0.0 in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      Controller.device_detach ctl ~tag:"vf0" ();
      elapsed := Time.to_sec_f (Time.diff (Sim.now sim) t0));
  Sim.run sim;
  (* 4 detaches concurrently: ~ detach_ib + QMP overhead, NOT 4x. *)
  check_near "parallel agents" 0.1 (Time.to_sec_f Calibration.detach_ib) !elapsed;
  List.iter
    (fun vm -> Alcotest.(check bool) "device gone" false (Vm.has_bypass_device vm))
    vms

let test_agent_failure_propagates () =
  let sim, cluster, vms = setup 1 in
  let members =
    List.map (fun vm -> { Controller.vm; endpoint = Hypercall.create vm; procs = 1 }) vms
  in
  let ctl = Controller.create cluster ~members in
  let failed = ref false in
  Sim.spawn sim (fun () ->
      match Controller.device_detach ctl ~tag:"missing" () with
      | () -> ()
      | exception Controller.Agent_failure _ -> failed := true);
  Sim.run sim;
  Alcotest.(check bool) "failure surfaced" true !failed

let test_parallel_migration_via_agents () =
  let sim, cluster, vms = setup 2 in
  let members =
    List.map (fun vm -> { Controller.vm; endpoint = Hypercall.create vm; procs = 1 }) vms
  in
  let ctl = Controller.create cluster ~members in
  let dsts =
    [ Cluster.find_node cluster "eth00"; Cluster.find_node cluster "eth01" ]
  in
  let plan vm = List.nth dsts (if String.equal (Vm.name vm) "vm0" then 0 else 1) in
  Sim.spawn sim (fun () ->
      List.iter Vm.pause vms;
      let stats = Controller.migration ctl ~plan () in
      Alcotest.(check int) "two results" 2 (List.length stats));
  Sim.run sim;
  List.iteri
    (fun i vm ->
      Alcotest.(check string) "moved to eth"
        (Printf.sprintf "eth%02d" i)
        (Vm.host vm).Node.name)
    vms

let () =
  Alcotest.run "ninja_symvirt"
    [
      ( "hypercall",
        [
          Alcotest.test_case "wait/signal" `Quick test_hypercall_wait_signal;
          Alcotest.test_case "await_waiters" `Quick test_hypercall_await_waiters;
        ] );
      ( "controller",
        [
          Alcotest.test_case "fence pauses VMs" `Quick test_controller_fence_pauses_vms;
          Alcotest.test_case "agents in parallel" `Quick test_agents_run_in_parallel;
          Alcotest.test_case "agent failure" `Quick test_agent_failure_propagates;
          Alcotest.test_case "parallel migration" `Quick test_parallel_migration_via_agents;
        ] );
    ]
