(* Tests for placement policies and the cloud scheduler. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_mpi
open Ninja_core
open Ninja_scheduler

let setup () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  (sim, cluster)

let hosts cluster prefix n =
  List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))

let launch_idle_job ninja =
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         while Mpi.wtime ctx < 200.0 do
           Mpi.compute ctx ~seconds:0.5;
           Mpi.barrier ctx;
           Mpi.checkpoint_point ctx
         done))

(* ------------------------------------------------------------------ *)
(* Placement *)

let test_nodes_free () =
  let _, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 3) () in
  let free = Placement.nodes_free cluster ~vms:(Ninja.vms ninja) in
  Alcotest.(check int) "13 of 16 free" 13 (List.length free);
  Alcotest.(check bool) "occupied not listed" true
    (not (List.exists (fun (n : Node.t) -> n.Node.name = "ib00") free))

let test_evacuation_plan_prefers_ib () =
  let _, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 2) () in
  let vms = Ninja.vms ninja in
  (* Evacuate ib00 only; free IB nodes exist, so the refugee goes to one. *)
  let plan =
    Placement.evacuation_plan cluster ~vms ~avoid:(fun n -> n.Node.name = "ib00")
  in
  let vm0 = List.hd vms and vm1 = List.nth vms 1 in
  Alcotest.(check bool) "moved off ib00" true ((plan vm0).Node.name <> "ib00");
  Alcotest.(check bool) "prefers an IB refuge" true (Node.has_ib (plan vm0));
  Alcotest.(check string) "unaffected VM stays" "ib01" (plan vm1).Node.name

let test_evacuation_plan_rack () =
  let _, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 4) () in
  let plan =
    Placement.evacuation_plan cluster ~vms:(Ninja.vms ninja) ~avoid:(fun n -> n.Node.rack = 0)
  in
  List.iter
    (fun vm -> Alcotest.(check int) "all to rack 1" 1 (plan vm).Node.rack)
    (Ninja.vms ninja)

let test_evacuation_capacity_failure () =
  let _, cluster = setup () in
  (* 16 VMs fill the cluster; evacuating rack 0 has nowhere to go. *)
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 8 @ hosts cluster "eth" 8) () in
  Alcotest.check_raises "capacity" (Failure "Placement.evacuation_plan: not enough free nodes")
    (fun () ->
      let (_ : Vm.t -> Node.t) =
        Placement.evacuation_plan cluster ~vms:(Ninja.vms ninja) ~avoid:(fun n ->
            n.Node.rack = 0)
      in
      ())

let test_consolidation_plan_packs () =
  let _, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 4) () in
  let targets = hosts cluster "eth" 2 in
  let plan =
    Placement.consolidation_plan cluster ~vms:(Ninja.vms ninja) ~vms_per_host:2 ~targets
  in
  let names = List.map (fun vm -> (plan vm).Node.name) (Ninja.vms ninja) in
  Alcotest.(check (list string)) "2 per host, in order"
    [ "eth00"; "eth00"; "eth01"; "eth01" ]
    names

let test_spread_plan () =
  let _, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 2) () in
  let plan = Placement.spread_plan cluster ~vms:(Ninja.vms ninja) ~targets:(hosts cluster "eth" 2) in
  Alcotest.(check (list string)) "one per target" [ "eth00"; "eth01" ]
    (List.map (fun vm -> (plan vm).Node.name) (Ninja.vms ninja));
  Alcotest.check_raises "too few targets" (Failure "Placement.spread_plan: not enough target nodes")
    (fun () ->
      let (_ : Vm.t -> Node.t) =
        Placement.spread_plan cluster ~vms:(Ninja.vms ninja) ~targets:(hosts cluster "eth" 1)
      in
      ())

(* ------------------------------------------------------------------ *)
(* Cloud scheduler *)

let test_scheduler_executes_disaster () =
  let sim, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 2) () in
  launch_idle_job ninja;
  let sched = Cloud_scheduler.create ninja in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      ignore (Cloud_scheduler.execute sched (Cloud_scheduler.Disaster { rack = 0 }));
      Ninja.wait_job ninja);
  Sim.run sim;
  List.iter
    (fun vm -> Alcotest.(check int) "evacuated" 1 (Vm.host vm).Node.rack)
    (Ninja.vms ninja);
  Alcotest.(check int) "history" 1 (List.length (Cloud_scheduler.history sched))

let test_scheduler_schedule_fires_later () =
  let sim, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 2) () in
  launch_idle_job ninja;
  let sched = Cloud_scheduler.create ninja in
  Cloud_scheduler.schedule sched ~after:(Time.sec 10)
    (Cloud_scheduler.Maintenance { avoid = (fun n -> n.Node.name = "ib00") });
  Sim.spawn sim (fun () -> Ninja.wait_job ninja);
  Sim.run sim;
  match Cloud_scheduler.history sched with
  | [ r ] ->
    Alcotest.(check bool) "fired after delay" true Time.(r.Cloud_scheduler.at >= Time.sec 10);
    Alcotest.(check string) "named" "maintenance" (Cloud_scheduler.trigger_name r.Cloud_scheduler.trigger)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let test_scheduler_consolidate_then_rebalance () =
  let sim, cluster = setup () in
  let ninja = Ninja.setup cluster ~hosts:(hosts cluster "ib" 4) () in
  launch_idle_job ninja;
  let sched = Cloud_scheduler.create ninja in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      ignore
        (Cloud_scheduler.execute sched
           (Cloud_scheduler.Consolidate { vms_per_host = 2; targets = hosts cluster "eth" 2 }));
      let used =
        List.sort_uniq compare
          (List.map (fun vm -> (Vm.host vm).Node.name) (Ninja.vms ninja))
      in
      Alcotest.(check (list string)) "packed" [ "eth00"; "eth01" ] used;
      Sim.sleep (Time.sec 5);
      ignore
        (Cloud_scheduler.execute sched (Cloud_scheduler.Rebalance { targets = hosts cluster "ib" 4 }));
      Ninja.wait_job ninja);
  Sim.run sim;
  Alcotest.(check (list string)) "spread back" [ "ib00"; "ib01"; "ib02"; "ib03" ]
    (List.map (fun vm -> (Vm.host vm).Node.name) (Ninja.vms ninja));
  Alcotest.(check int) "two records" 2 (List.length (Cloud_scheduler.history sched))

let () =
  Alcotest.run "ninja_scheduler"
    [
      ( "placement",
        [
          Alcotest.test_case "nodes_free" `Quick test_nodes_free;
          Alcotest.test_case "evacuation prefers IB" `Quick test_evacuation_plan_prefers_ib;
          Alcotest.test_case "evacuate a rack" `Quick test_evacuation_plan_rack;
          Alcotest.test_case "capacity failure" `Quick test_evacuation_capacity_failure;
          Alcotest.test_case "consolidation packs" `Quick test_consolidation_plan_packs;
          Alcotest.test_case "spread" `Quick test_spread_plan;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "disaster evacuation" `Quick test_scheduler_executes_disaster;
          Alcotest.test_case "delayed trigger" `Quick test_scheduler_schedule_fires_later;
          Alcotest.test_case "consolidate+rebalance" `Quick test_scheduler_consolidate_then_rebalance;
        ] );
    ]
