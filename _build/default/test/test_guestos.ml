(* Tests for the guest OS device manager and link-state machines. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_guestos

let check_float = Alcotest.(check (float 1e-6))

let setup () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.small () in
  let vm =
    Vm.create cluster ~name:"vm0" ~host:(Cluster.find_node cluster "ib00") ~vcpus:8
      ~mem_bytes:(Units.gb 20.0) ()
  in
  (sim, cluster, vm)

let hca () = Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca

let test_boot_binds_existing () =
  let _, _, vm = setup () in
  let guest = Guest.boot vm in
  Alcotest.(check int) "virtio driver bound" 1 (List.length (Guest.drivers guest));
  match Guest.find_driver guest ~kind:Device.Virtio_net with
  | None -> Alcotest.fail "no virtio driver"
  | Some d -> Alcotest.(check bool) "active at boot" true (Link_state.equal (Guest.link d) Link_state.Active)

let test_ib_linkup_takes_30s () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  let t_active = ref 0.0 in
  Sim.spawn sim (fun () ->
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      let t_attached = Time.to_sec_f (Sim.now sim) in
      (match Guest.find_driver guest ~kind:Device.Ib_hca with
      | Some d ->
        Alcotest.(check bool) "polling after attach" true
          (Link_state.equal (Guest.link d) Link_state.Polling)
      | None -> Alcotest.fail "driver not bound");
      Guest.await_link_active guest Device.Ib_hca;
      t_active := Time.to_sec_f (Sim.now sim) -. t_attached);
  Sim.run sim;
  check_float "ib polling ~29.85 s" (Time.to_sec_f Calibration.linkup_ib) !t_active

let test_eth_linkup_immediate () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  let elapsed = ref (-1.0) in
  Sim.spawn sim (fun () ->
      let nic = Device.make ~tag:"virtio1" ~pci_addr:"00:04.0" Device.Virtio_net in
      ignore (Hotplug.device_add vm ~device:nic ());
      let t0 = Time.to_sec_f (Sim.now sim) in
      Guest.await_link_active guest Device.Virtio_net;
      elapsed := Time.to_sec_f (Sim.now sim) -. t0);
  Sim.run sim;
  check_float "virtio up immediately" 0.0 !elapsed

let test_detach_downs_link () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  Sim.spawn sim (fun () ->
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      Guest.await_link_active guest Device.Ib_hca;
      ignore (Hotplug.device_del vm ~tag:"vf0" ());
      Alcotest.(check bool) "driver unbound" true
        (Guest.find_driver guest ~kind:Device.Ib_hca = None));
  Sim.run sim

let test_detach_before_linkup () =
  (* Detaching while still POLLING must not leave a ghost ACTIVE event. *)
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  Sim.spawn sim (fun () ->
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      Sim.sleep (Time.sec 5);
      ignore (Hotplug.device_del vm ~tag:"vf0" ());
      Sim.sleep (Time.sec 60);
      Alcotest.(check bool) "no ib in usable kinds" true
        (not (List.mem Device.Ib_hca (Guest.usable_kinds guest))));
  Sim.run sim

let test_usable_kinds_ordering () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  Sim.spawn sim (fun () ->
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      Guest.await_link_active guest Device.Ib_hca;
      match Guest.usable_kinds guest with
      | Device.Ib_hca :: Device.Virtio_net :: _ -> ()
      | kinds ->
        Alcotest.failf "expected ib first, got [%s]"
          (String.concat "; " (List.map Device.kind_name kinds)));
  Sim.run sim

let test_link_change_hook () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  let events = ref [] in
  Guest.on_link_change guest (fun d ->
      events :=
        Format.asprintf "%s:%a" (Guest.device d).Device.tag Link_state.pp (Guest.link d)
        :: !events);
  Sim.spawn sim (fun () ->
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      Sim.sleep (Time.minutes 1);
      ignore (Hotplug.device_del vm ~tag:"vf0" ()));
  Sim.run sim;
  Alcotest.(check (list string)) "active then down" [ "vf0:active"; "vf0:down" ] (List.rev !events)

let test_reattach_cycle () =
  (* Full fallback/recovery device cycle: attach, up, detach, re-attach,
     up again — what each VM's guest sees across Fig. 2's four phases. *)
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  let cycles = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        ignore (Hotplug.device_add vm ~device:(hca ()) ());
        Guest.await_link_active guest Device.Ib_hca;
        incr cycles;
        ignore (Hotplug.device_del vm ~tag:"vf0" ())
      done);
  Sim.run sim;
  Alcotest.(check int) "three cycles" 3 !cycles

let test_sysinfo () =
  let sim, _, vm = setup () in
  let guest = Guest.boot vm in
  Sim.spawn sim (fun () ->
      Alcotest.(check string) "ibstat without hca" "no InfiniBand devices" (Sysinfo.ibstat guest);
      ignore (Hotplug.device_add vm ~device:(hca ()) ());
      Alcotest.(check string) "polling after attach" "CA 'vf0': port 1 state POLLING"
        (Sysinfo.ibstat guest);
      Guest.await_link_active guest Device.Ib_hca;
      Alcotest.(check string) "active after training" "CA 'vf0': port 1 state PORT_ACTIVE"
        (Sysinfo.ibstat guest);
      Alcotest.(check int) "lspci lists both devices" 2 (List.length (Sysinfo.lspci guest));
      match Sysinfo.netdev_summary guest with
      | [ ("virtio0", "virtio-net", "active"); ("vf0", "ib-hca", "active") ] -> ()
      | other ->
        Alcotest.failf "unexpected summary: %s"
          (String.concat "; " (List.map (fun (a, b, c) -> a ^ "/" ^ b ^ "/" ^ c) other)));
  Sim.run sim

let () =
  Alcotest.run "ninja_guestos"
    [
      ( "guest",
        [
          Alcotest.test_case "boot binds existing" `Quick test_boot_binds_existing;
          Alcotest.test_case "ib linkup ~30s" `Quick test_ib_linkup_takes_30s;
          Alcotest.test_case "eth linkup immediate" `Quick test_eth_linkup_immediate;
          Alcotest.test_case "detach downs link" `Quick test_detach_downs_link;
          Alcotest.test_case "detach before linkup" `Quick test_detach_before_linkup;
          Alcotest.test_case "usable kinds ordering" `Quick test_usable_kinds_ordering;
          Alcotest.test_case "link change hook" `Quick test_link_change_hook;
          Alcotest.test_case "reattach cycle" `Quick test_reattach_cycle;
          Alcotest.test_case "sysinfo tools" `Quick test_sysinfo;
        ] );
    ]
