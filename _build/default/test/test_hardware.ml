(* Tests for the hardware layer: device constants, node construction,
   cluster topology/routing. *)

open Ninja_engine
open Ninja_hardware

let check_float = Alcotest.(check (float 1e-9))

let test_units () =
  check_float "gb" (20.0 *. 1073741824.0) (Units.gb 20.0);
  check_float "gbps" 1.25e9 (Units.gbps 10.0);
  Alcotest.(check string) "pp gib" "2.0 GiB" (Format.asprintf "%a" Units.pp_bytes (Units.gb 2.0));
  Alcotest.(check string) "pp b" "42 B" (Format.asprintf "%a" Units.pp_bytes 42.0)

let test_device_classes () =
  Alcotest.(check bool) "ib is bypass" true (Device.is_bypass Device.Ib_hca);
  Alcotest.(check bool) "virtio is not" false (Device.is_bypass Device.Virtio_net);
  Alcotest.(check bool) "ib faster than virtio" true
    (Device.bandwidth Device.Ib_hca > Device.bandwidth Device.Virtio_net);
  Alcotest.(check bool) "bypass has no cpu tax" true (Device.cpu_per_byte Device.Ib_hca = 0.0);
  Alcotest.(check bool) "virtio taxed" true (Device.cpu_per_byte Device.Virtio_net > 0.0);
  (* Table II structure: IB hotplug slower than Ethernet; IB link-up ~30 s,
     Ethernet immediate. *)
  Alcotest.(check bool) "ib detach slowest" true
    Time.(Device.detach_time Device.Ib_hca > Device.detach_time Device.Virtio_net);
  check_float "ib linkup ~30s" 29.85 (Time.to_sec_f (Device.linkup_time Device.Ib_hca));
  check_float "eth linkup 0" 0.0 (Time.to_sec_f (Device.linkup_time Device.Virtio_net))

let test_hotplug_solves_table2 () =
  (* The four Table II combinations from the calibrated constants. *)
  let sum a b = Time.to_sec_f (Time.add a b) in
  let ib_ib = sum Calibration.detach_ib Calibration.attach_ib in
  let ib_eth = sum Calibration.detach_ib Calibration.attach_eth in
  let eth_ib = sum Calibration.detach_eth Calibration.attach_ib in
  let eth_eth = sum Calibration.detach_eth Calibration.attach_eth in
  let close measured ours = Float.abs (measured -. ours) < 0.1 in
  Alcotest.(check bool) "IB->IB ~ 3.88" true (close 3.88 ib_ib);
  Alcotest.(check bool) "IB->Eth ~ 2.80" true (close 2.80 ib_eth);
  Alcotest.(check bool) "Eth->IB ~ 1.15" true (close 1.15 eth_ib);
  Alcotest.(check bool) "Eth->Eth ~ 0.13" true (close 0.13 eth_eth)

let test_spec_agc () =
  Alcotest.(check int) "16 nodes" 16 (Spec.total_nodes Spec.agc);
  Alcotest.(check int) "table1 rows" 9 (List.length Spec.table1)

let test_cluster_construction () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim () in
  Alcotest.(check int) "8 ib nodes" 8 (List.length (Cluster.ib_nodes cluster));
  Alcotest.(check int) "8 eth nodes" 8 (List.length (Cluster.eth_only_nodes cluster));
  let ib0 = Cluster.find_node cluster "ib00" in
  let eth0 = Cluster.find_node cluster "eth00" in
  Alcotest.(check bool) "ib00 has ib" true (Node.has_ib ib0);
  Alcotest.(check bool) "eth00 has no ib" false (Node.has_ib eth0);
  check_float "8 cores" 8.0 (Ps_resource.capacity ib0.Node.cpu);
  check_float "48 GB" (Units.gb 48.0) ib0.Node.mem_bytes;
  Alcotest.check_raises "unknown node" Not_found (fun () ->
      ignore (Cluster.find_node cluster "nope"))

let test_cluster_routing () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim () in
  let ib0 = Cluster.find_node cluster "ib00" in
  let ib1 = Cluster.find_node cluster "ib01" in
  let eth0 = Cluster.find_node cluster "eth00" in
  (* IB between two IB nodes: two hops (tx, rx). *)
  Alcotest.(check int) "ib route hops" 2
    (List.length (Cluster.route cluster ~net:Cluster.Ib ~src:ib0 ~dst:ib1));
  (* Ethernet works everywhere. *)
  Alcotest.(check int) "eth route hops" 2
    (List.length (Cluster.route cluster ~net:Cluster.Eth ~src:ib0 ~dst:eth0));
  (* No IB path to an Ethernet-only node. *)
  Alcotest.(check bool) "no ib to eth rack" true
    (Cluster.route_opt cluster ~net:Cluster.Ib ~src:ib0 ~dst:eth0 = None);
  (* Same node: loopback. *)
  Alcotest.(check int) "loopback" 1
    (List.length (Cluster.route cluster ~net:Cluster.Eth ~src:ib0 ~dst:ib0));
  Alcotest.check_raises "route raises on unreachable"
    (Cluster.Unreachable "no ib path from ib00 to eth00") (fun () ->
      ignore (Cluster.route cluster ~net:Cluster.Ib ~src:ib0 ~dst:eth0))

let test_inter_rack_wan () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim () in
  let ib0 = Cluster.find_node cluster "ib00" in
  let eth0 = Cluster.find_node cluster "eth00" in
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps 1.0)
    ~latency:(Time.ms 10);
  Alcotest.(check int) "wan hop present" 3
    (List.length (Cluster.route cluster ~net:Cluster.Eth ~src:ib0 ~dst:eth0));
  Alcotest.(check int) "reverse direction too" 3
    (List.length (Cluster.route cluster ~net:Cluster.Eth ~src:eth0 ~dst:ib0));
  let lat = Cluster.path_latency cluster ~net:Cluster.Eth ~src:ib0 ~dst:eth0 in
  Alcotest.(check bool) "latency includes wan" true Time.(lat > Time.ms 10)

let test_intra_rack_no_wan () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim () in
  let ib0 = Cluster.find_node cluster "ib00" in
  let ib1 = Cluster.find_node cluster "ib01" in
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps 1.0)
    ~latency:(Time.ms 10);
  Alcotest.(check int) "intra-rack path unchanged" 2
    (List.length (Cluster.route cluster ~net:Cluster.Eth ~src:ib0 ~dst:ib1))

let test_node_transfer_through_cluster () =
  (* End-to-end: an IB transfer between two nodes at IB bandwidth. *)
  let sim = Sim.create () in
  let cluster = Cluster.create sim () in
  let ib0 = Cluster.find_node cluster "ib00" in
  let ib1 = Cluster.find_node cluster "ib01" in
  let bytes = 3.2e9 in
  let elapsed = ref 0.0 in
  Sim.spawn sim (fun () ->
      let route = Cluster.route cluster ~net:Cluster.Ib ~src:ib0 ~dst:ib1 in
      Ninja_flownet.Fabric.transfer (Cluster.fabric cluster) ~route ~bytes;
      elapsed := Time.to_sec_f (Sim.now sim));
  Sim.run sim;
  check_float "1 s at QDR rate" 1.0 !elapsed

let test_power_model () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.small () in
  let node = Cluster.find_node cluster "ib00" in
  let idle_node = Cluster.find_node cluster "ib01" in
  (* Full load on one node past the metering window; the other sleeps. *)
  Sim.spawn sim (fun () -> Ps_resource.consume node.Node.cpu ~demand:8.0 ~work:88.0);
  let meter =
    Power.measure sim ~until:(Time.sec 10) [ node; idle_node ]
  in
  Sim.run sim;
  Alcotest.(check int) "10 samples" 10 (Power.samples meter);
  let joules = Power.per_node_joules meter in
  let j_busy = List.assq node joules and j_idle = List.assq idle_node joules in
  check_float "busy: (160+110) W x 10 s" 2700.0 j_busy;
  check_float "asleep: 15 W x 10 s" 150.0 j_idle;
  check_float "total" 2850.0 (Power.energy_joules meter)

let test_power_partial_utilization () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.small () in
  let node = Cluster.find_node cluster "ib00" in
  (* 2 of 8 cores busy: 160 + 110 x 0.25 = 187.5 W. *)
  Sim.spawn sim (fun () -> Ps_resource.consume node.Node.cpu ~demand:2.0 ~work:40.0);
  let meter = Power.measure sim ~until:(Time.sec 10) [ node ] in
  Sim.run sim;
  check_float "quarter load" 1875.0 (Power.energy_joules meter)

let ps_capacity_invariant_prop =
  (* Granted rates never exceed capacity, whatever the task mix. *)
  QCheck.Test.make ~name:"ps utilization bounded by 1" ~count:100
    QCheck.(small_list (pair (int_range 1 4) (int_range 1 10)))
    (fun tasks ->
      let sim = Sim.create () in
      let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:4.0 in
      let ok = ref true in
      List.iter
        (fun (demand, work) ->
          Sim.spawn sim (fun () ->
              Ps_resource.consume cpu ~demand:(float_of_int demand)
                ~work:(float_of_int work)))
        tasks;
      Sim.spawn sim (fun () ->
          for _ = 1 to 5 do
            Sim.sleep (Time.ms 300);
            if Ps_resource.utilization cpu > 1.0 +. 1e-9 then ok := false
          done);
      Sim.run sim;
      !ok)

let () =
  Alcotest.run "ninja_hardware"
    [
      ( "hardware",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "device classes" `Quick test_device_classes;
          Alcotest.test_case "hotplug solves Table II" `Quick test_hotplug_solves_table2;
          Alcotest.test_case "agc spec" `Quick test_spec_agc;
          Alcotest.test_case "cluster construction" `Quick test_cluster_construction;
          Alcotest.test_case "routing" `Quick test_cluster_routing;
          Alcotest.test_case "inter-rack wan" `Quick test_inter_rack_wan;
          Alcotest.test_case "intra-rack ignores wan" `Quick test_intra_rack_no_wan;
          Alcotest.test_case "transfer through cluster" `Quick test_node_transfer_through_cluster;
        ] );
      ( "power",
        Alcotest.test_case "model" `Quick test_power_model
        :: Alcotest.test_case "partial utilization" `Quick test_power_partial_utilization
        :: List.map QCheck_alcotest.to_alcotest [ ps_capacity_invariant_prop ] );
    ]
