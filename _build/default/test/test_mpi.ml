(* Tests for the MPI runtime: p2p protocols, BTL selection, collectives,
   CRCP quiesce and the checkpoint/continue flow. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_guestos
open Ninja_mpi

let check_near msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

(* A VM on [node], optionally with a VMM-bypass HCA already installed (as
   if configured before boot), plus its booted guest. *)
let make_member ?(ib = false) ?(mem_gb = 20.0) cluster ~name node =
  let vm = Vm.create cluster ~name ~host:node ~vcpus:8 ~mem_bytes:(Units.gb mem_gb) () in
  if ib then Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca);
  let guest = Guest.boot vm in
  (vm, guest)

let setup ?(n_ib = 2) ?(n_eth = 0) () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  let members =
    List.init n_ib (fun i ->
        make_member ~ib:true cluster
          ~name:(Printf.sprintf "vm-ib%d" i)
          (Cluster.find_node cluster (Printf.sprintf "ib%02d" i)))
    @ List.init n_eth (fun i ->
          make_member cluster
            ~name:(Printf.sprintf "vm-eth%d" i)
            (Cluster.find_node cluster (Printf.sprintf "eth%02d" i)))
  in
  (sim, cluster, members)

(* ------------------------------------------------------------------ *)
(* Point-to-point *)

let test_eager_send_recv () =
  let sim, cluster, members = setup () in
  let got = ref 0.0 and recv_at = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then Mpi.send ctx ~dst:1 ~bytes:1024.0
        else begin
          got := Mpi.recv ctx ();
          recv_at := Mpi.wtime ctx
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  check_near "payload size" 1e-9 1024.0 !got;
  (* Eager over IB: one latency + 1 KiB at 3.2 GB/s — well under 1 ms. *)
  Alcotest.(check bool) "fast delivery" true (!recv_at < 0.001)

let test_eager_sender_does_not_block () =
  let sim, cluster, members = setup () in
  let send_return = ref infinity in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          Mpi.send ctx ~dst:1 ~bytes:1024.0;
          send_return := Mpi.wtime ctx
        end
        else begin
          (* Receiver posts late; the eager sender must not care. *)
          Mpi.compute ctx ~seconds:2.0;
          ignore (Mpi.recv ctx ())
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "sender returned immediately" true (!send_return < 0.001)

let test_rendezvous_timing () =
  let sim, cluster, members = setup () in
  let bytes = 1.0e9 in
  let t_done = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then Mpi.send ctx ~dst:1 ~bytes
        else begin
          ignore (Mpi.recv ctx ());
          t_done := Mpi.wtime ctx
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  (* 1 GB at QDR ~3.2 GB/s; handshake latencies are microseconds. *)
  check_near "rendezvous at wire rate" 0.01 (bytes /. Calibration.ib_bandwidth) !t_done

let test_rendezvous_waits_for_receiver () =
  let sim, cluster, members = setup () in
  let send_done = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          Mpi.send ctx ~dst:1 ~bytes:1.0e8;
          send_done := Mpi.wtime ctx
        end
        else begin
          Mpi.compute ctx ~seconds:5.0;
          ignore (Mpi.recv ctx ())
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "sender blocked until recv posted" true (!send_done >= 5.0)

let test_tag_and_source_matching () =
  let sim, cluster, members = setup () in
  let order = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        match Mpi.rank ctx with
        | 0 ->
          Mpi.send ~tag:7 ctx ~dst:3 ~bytes:10.0;
          Mpi.send ~tag:9 ctx ~dst:3 ~bytes:20.0
        | 1 -> Mpi.send ~tag:7 ctx ~dst:3 ~bytes:30.0
        | 3 ->
          (* Tag 9 first even though tag 7 arrived earlier; then by source. *)
          let a = Mpi.recv ctx ~tag:9 () in
          let b = Mpi.recv ctx ~src:1 () in
          let c = Mpi.recv ctx ~src:0 ~tag:7 () in
          order := [ a; b; c ]
        | _ -> ())
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (list (float 0.001))) "selective matching" [ 20.0; 30.0; 10.0 ] !order

let test_fifo_per_pair () =
  let sim, cluster, members = setup () in
  let seen = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then
          for i = 1 to 5 do
            Mpi.send ctx ~dst:1 ~bytes:(float_of_int i)
          done
        else
          for _ = 1 to 5 do
            seen := Mpi.recv ctx () :: !seen
          done)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (list (float 0.001))) "fifo" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* BTL selection *)

let test_btl_selection_matrix () =
  let sim, cluster, members = setup ~n_ib:2 ~n_eth:1 () in
  let transports = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          let t peer = Option.map Btl.kind_name (Mpi.current_transport ctx ~peer) in
          transports := [ t 1 (* same VM *); t 2 (* other IB VM *); t 4 (* eth VM *) ]
        end;
        Mpi.barrier ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (list (option string)))
    "sm / openib / tcp"
    [ Some "sm"; Some "openib"; Some "tcp" ]
    !transports

let test_exclusivity_ordering () =
  Alcotest.(check bool) "sm > openib" true (Btl.exclusivity Btl.Sm > Btl.exclusivity Btl.Openib);
  Alcotest.(check int) "openib" 1024 (Btl.exclusivity Btl.Openib);
  Alcotest.(check int) "tcp" 100 (Btl.exclusivity Btl.Tcp);
  Alcotest.(check (list string)) "priority sort"
    [ "sm"; "openib"; "tcp" ]
    (List.map Btl.kind_name (List.sort Btl.compare_priority [ Btl.Tcp; Btl.Sm; Btl.Openib ]))

let test_uncoordinated_detach_breaks_job () =
  (* Detaching the HCA without the SymVirt dance must break in-flight
     communication — the failure Ninja migration exists to prevent. *)
  let sim, cluster, members = setup () in
  let failure = ref None in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          (* Prime the openib path. *)
          Mpi.send ctx ~dst:1 ~bytes:(10.0 *. 1024.0 *. 1024.0);
          Mpi.compute ctx ~seconds:1.0;
          match Mpi.send ctx ~dst:1 ~bytes:(10.0 *. 1024.0 *. 1024.0) with
          | () -> ()
          | exception Btl.Transport_failure msg -> failure := Some msg
        end
        else begin
          ignore (Mpi.recv ctx ());
          (* Rip the device out from under the runtime. *)
          ignore (Vm.detach_device (Mpi.vm ctx) ~tag:"vf0");
          ignore (Mpi.recv ctx ())
        end)
  in
  Sim.spawn sim (fun () -> try Runtime.wait job with Sim.Deadlock _ -> ());
  (try Sim.run sim with Sim.Deadlock _ -> ());
  match !failure with
  | Some msg ->
    Alcotest.(check bool) "names openib" true
      (String.length msg >= 10 && String.sub msg 0 10 = "btl_openib")
  | None -> Alcotest.fail "expected Transport_failure"

(* ------------------------------------------------------------------ *)
(* Collectives *)

let run_collective ?(n_ib = 4) ?(procs_per_vm = 1) body =
  let sim, cluster, members = setup ~n_ib () in
  let finish = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm (fun ctx ->
        body ctx;
        Mpi.barrier ctx;
        if Mpi.rank ctx = 0 then finish := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  !finish

let test_barrier_completes () =
  let t = run_collective (fun ctx -> Mpi.barrier ctx) in
  Alcotest.(check bool) "microseconds" true (t < 0.01)

let test_bcast_small () =
  let t = run_collective (fun ctx -> Mpi.bcast ctx ~root:0 ~bytes:4096.0) in
  Alcotest.(check bool) "fast" true (t < 0.01)

let test_bcast_large_bandwidth_optimal () =
  let bytes = 4.0e9 in
  let t = run_collective (fun ctx -> Mpi.bcast ctx ~root:0 ~bytes) in
  (* van de Geijn: ~2·(n-1)/n·B/bw = 2·0.75·4e9/3.2e9 = 1.875 s, plus
     scatter serialisation slack. A binomial tree would need ~2.5 s. *)
  check_near "vdG cost" 0.4 1.9 t

let test_bcast_roots_other_than_zero () =
  let t = run_collective (fun ctx -> Mpi.bcast ctx ~root:2 ~bytes:1.0e8) in
  Alcotest.(check bool) "completes" true (t > 0.0)

let test_reduce_large () =
  let bytes = 4.0e9 in
  let t = run_collective (fun ctx -> Mpi.reduce ctx ~root:0 ~bytes) in
  (* ring reduce-scatter (~0.94 s) + gather to root (~0.94 s) + op CPU. *)
  Alcotest.(check bool) "in plausible band" true (t > 1.2 && t < 4.0)

let test_allreduce_large () =
  let bytes = 2.0e9 in
  let t = run_collective (fun ctx -> Mpi.allreduce ctx ~bytes) in
  (* 2·(n-1)/n·B/bw + op = ~0.94 + ~0.75·2/2 -> ~1.7 s. *)
  Alcotest.(check bool) "in plausible band" true (t > 0.9 && t < 3.0)

let test_allreduce_small_uses_tree () =
  let t = run_collective (fun ctx -> Mpi.allreduce ctx ~bytes:1024.0) in
  Alcotest.(check bool) "fast" true (t < 0.01)

let test_gather_scatter_alltoall () =
  let t =
    run_collective (fun ctx ->
        Mpi.scatter ctx ~root:0 ~bytes_per_rank:1.0e6;
        Mpi.gather ctx ~root:0 ~bytes_per_rank:1.0e6;
        Mpi.alltoall ctx ~bytes_per_pair:1.0e6;
        Mpi.allgather ctx ~bytes_per_rank:1.0e6)
  in
  Alcotest.(check bool) "completes quickly" true (t < 1.0)

let test_reduce_scatter_scan () =
  let t =
    run_collective (fun ctx ->
        Mpi.reduce_scatter ctx ~bytes_per_rank:1.0e6;
        Mpi.scan ctx ~bytes:1.0e6;
        Mpi.exscan ctx ~bytes:1.0e6)
  in
  Alcotest.(check bool) "completes" true (t > 0.0 && t < 1.0)

let test_scan_is_a_chain () =
  (* A scan over n ranks takes ~n-1 hops; doubling the rank count roughly
     doubles the chain latency for a fixed payload. *)
  let time n =
    let sim, cluster, members = setup ~n_ib:n () in
    let t = ref 0.0 in
    let job =
      Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
          Mpi.scan ctx ~bytes:2.0e7;
          if Mpi.rank ctx = n - 1 then t := Mpi.wtime ctx)
    in
    Sim.spawn sim (fun () -> Runtime.wait job);
    Sim.run sim;
    !t
  in
  let t2 = time 2 and t4 = time 4 in
  check_near "3 hops vs 1 hop" (t2 *. 0.8) (3.0 *. t2) t4

let test_collectives_odd_process_count () =
  (* Non-power-of-two ranks exercise the general-case trees. *)
  let t =
    run_collective ~n_ib:3 ~procs_per_vm:1 (fun ctx ->
        Mpi.bcast ctx ~root:1 ~bytes:1.0e9;
        Mpi.reduce ctx ~root:2 ~bytes:1.0e9;
        Mpi.allreduce ctx ~bytes:1.0e9;
        Mpi.barrier ctx)
  in
  Alcotest.(check bool) "completes" true (t > 0.0)

let test_sm_collective_within_vm () =
  (* All ranks in one VM: pure shared-memory, no fabric involvement. *)
  let sim, cluster, members = setup ~n_ib:1 () in
  let t = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:8 (fun ctx ->
        Mpi.allreduce ctx ~bytes:1.0e8;
        if Mpi.rank ctx = 0 then t := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "fast shared-memory path" true (!t < 1.0)

(* ------------------------------------------------------------------ *)
(* Communicators *)

let test_comm_world_basics () =
  let sim, cluster, members = setup () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        let w = Comm.world ctx in
        Alcotest.(check int) "size" 4 (Comm.size w);
        Alcotest.(check int) "rank matches job rank" (Mpi.rank ctx) (Comm.rank w ctx);
        Alcotest.(check int) "ctx 0" 0 (Comm.context_id w);
        Alcotest.(check int) "translate" 3 (Rank.rank (Comm.translate w 3)))
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim

let test_comm_split_by_vm () =
  (* Split into one communicator per VM; collectives stay inside it. *)
  let sim, cluster, members = setup () in
  let results = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        let w = Comm.world ctx in
        let color = Mpi.rank ctx / 2 in
        let sub = Comm.split w ctx ~color ~key:(Mpi.rank ctx) in
        Alcotest.(check int) "sub size" 2 (Comm.size sub);
        (* Concurrent bcasts in both sub-communicators, same tags. *)
        Comm.bcast sub ctx ~root:0 ~bytes:4096.0;
        Comm.allreduce sub ctx ~bytes:1.0e6;
        results := (Mpi.rank ctx, color, Comm.rank sub ctx) :: !results)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  let sorted = List.sort compare !results in
  Alcotest.(check (list (triple int int int)))
    "ranks within colors"
    [ (0, 0, 0); (1, 0, 1); (2, 1, 0); (3, 1, 1) ]
    (List.map (fun (a, b, c) -> (a, b, c)) sorted)

let test_comm_split_key_ordering () =
  let sim, cluster, members = setup () in
  let results = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        let w = Comm.world ctx in
        (* Reverse the order via keys. *)
        let sub = Comm.split w ctx ~color:0 ~key:(- Mpi.rank ctx) in
        results := (Mpi.rank ctx, Comm.rank sub ctx) :: !results)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (list (pair int int))) "reversed"
    [ (0, 1); (1, 0) ]
    (List.sort compare !results)

let test_comm_dup_fresh_context () =
  let sim, cluster, members = setup () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        let w = Comm.world ctx in
        let d = Comm.dup w ctx in
        Alcotest.(check bool) "fresh ctx" true (Comm.context_id d <> Comm.context_id w);
        Alcotest.(check int) "same size" (Comm.size w) (Comm.size d);
        Alcotest.(check int) "same rank" (Comm.rank w ctx) (Comm.rank d ctx);
        (* p2p within the dup. *)
        if Comm.rank d ctx = 0 then Comm.send d ctx ~dst:1 ~bytes:64.0
        else ignore (Comm.recv d ctx ~src:0 ()))
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim

let test_comm_traffic_isolation () =
  (* A message sent in comm A with tag 5 must not match a recv in comm B
     with tag 5. *)
  let sim, cluster, members = setup () in
  let got_from = ref (-1) in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        let w = Comm.world ctx in
        let d = Comm.dup w ctx in
        match Mpi.rank ctx with
        | 0 ->
          Comm.send ~tag:5 w ctx ~dst:3 ~bytes:10.0;
          Comm.send ~tag:5 d ctx ~dst:3 ~bytes:20.0
        | 3 ->
          (* Posting the dup-communicator recv first must skip the
             world-communicator message even though it arrived first. *)
          let b = Comm.recv d ctx ~src:0 ~tag:5 () in
          got_from := int_of_float b;
          ignore (Comm.recv w ctx ~src:0 ~tag:5 ())
        | _ -> ())
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check int) "dup message matched" 20 !got_from

(* ------------------------------------------------------------------ *)
(* Non-blocking operations *)

let test_isend_overlaps_compute () =
  let sim, cluster, members = setup () in
  let t_done = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          (* 1 GB rendezvous (~0.31 s on QDR) overlapped with 0.3 s of
             compute: total ~ max, not sum. *)
          let r = Mpi.isend ctx ~dst:1 ~bytes:1.0e9 in
          Mpi.compute ctx ~seconds:0.3;
          ignore (Mpi.wait r);
          t_done := Mpi.wtime ctx
        end
        else begin
          ignore (Mpi.recv ctx ())
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "overlapped" true (!t_done < 0.45)

let test_irecv_test_and_wait () =
  let sim, cluster, members = setup () in
  let early = ref (Some 0.0) and late = ref None in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          let r = Mpi.irecv ctx () in
          early := Mpi.test r;
          Mpi.compute ctx ~seconds:2.0;
          late := Mpi.test r;
          Alcotest.(check (float 0.01)) "wait returns size" 4096.0 (Mpi.wait r)
        end
        else begin
          Mpi.compute ctx ~seconds:1.0;
          Mpi.send ctx ~dst:0 ~bytes:4096.0
        end)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (option (float 0.01))) "not yet" None !early;
  Alcotest.(check (option (float 0.01))) "completed during compute" (Some 4096.0) !late

let test_waitall () =
  let sim, cluster, members = setup () in
  let sizes = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        if Mpi.rank ctx = 0 then begin
          let rs = List.init 4 (fun i -> Mpi.irecv ctx ~tag:i ()) in
          sizes := Mpi.waitall rs
        end
        else
          for i = 0 to 3 do
            Mpi.send ~tag:i ctx ~dst:0 ~bytes:(float_of_int (100 * (i + 1)))
          done)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check (list (float 0.01))) "all sizes in request order"
    [ 100.0; 200.0; 300.0; 400.0 ] !sizes

(* ------------------------------------------------------------------ *)
(* Checkpoint / CRCP *)

let test_checkpoint_quiesces_and_resumes () =
  let sim, cluster, members = setup () in
  let hooks_called = ref 0 in
  let inflight_at_hook = ref (-1) in
  let iterations_done = ref 0 in
  let ft_hooks =
    {
      Rank.on_checkpoint =
        (fun p ->
          incr hooks_called;
          inflight_at_hook := Rank.inflight (Rank.job p));
      Rank.on_continue = (fun _ -> ());
    }
  in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 ~ft_hooks (fun ctx ->
        for _ = 1 to 10 do
          Mpi.allreduce ctx ~bytes:1.0e8;
          Mpi.checkpoint_point ctx;
          if Mpi.rank ctx = 0 then incr iterations_done
        done)
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.ms 500);
      let complete = Runtime.request_checkpoint job in
      Runtime.await_checkpoint_complete complete;
      Runtime.wait job);
  Sim.run sim;
  Alcotest.(check int) "all 4 processes checkpointed" 4 !hooks_called;
  Alcotest.(check int) "network drained at fence" 0 !inflight_at_hook;
  Alcotest.(check int) "job ran to completion" 10 !iterations_done

let test_checkpoint_hits_safe_point_only () =
  (* Requested mid-compute, taken at the next MPI operation. *)
  let sim, cluster, members = setup () in
  let ckpt_at = ref 0.0 in
  let ft_hooks =
    { Rank.on_checkpoint = (fun _ -> ckpt_at := Time.to_sec_f (Sim.now sim)); Rank.on_continue = (fun _ -> ()) }
  in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 ~ft_hooks (fun ctx ->
        Mpi.compute ctx ~seconds:10.0;
        Mpi.barrier ctx;
        Mpi.checkpoint_point ctx)
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 2);
      ignore (Runtime.request_checkpoint job);
      Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "after the compute completes" true (!ckpt_at >= 10.0)

let test_checkpoint_releases_ib_and_reconstructs () =
  let sim, cluster, members = setup () in
  let btls_at_fence = ref [] in
  let ft_hooks =
    {
      Rank.on_checkpoint =
        (fun p -> if Rank.rank p = 0 then btls_at_fence := List.map Btl.kind_name (Rank.btls p));
      Rank.on_continue = (fun _ -> ());
    }
  in
  let after = ref None in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 ~ft_hooks (fun ctx ->
        for _ = 1 to 4 do
          Mpi.allreduce ctx ~bytes:1.0e8;
          Mpi.checkpoint_point ctx
        done;
        if Mpi.rank ctx = 0 then after := Mpi.current_transport ctx ~peer:1)
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.ms 100);
      ignore (Runtime.request_checkpoint job);
      Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "no openib at the fence" true (not (List.mem "openib" !btls_at_fence));
  Alcotest.(check (option string)) "openib back after continue" (Some "openib")
    (Option.map Btl.kind_name !after)

let test_continue_like_restart_flag () =
  (* TCP-only job; an HCA appears mid-run. With the flag the transport
     upgrades at the next checkpoint; without it the process keeps TCP
     (paper §III-C, recovery-migration caveat). *)
  let run_with flag =
    let sim, cluster, members = setup ~n_ib:2 () in
    (* Strip the HCAs so the job starts TCP-only. *)
    List.iter (fun (vm, _) -> ignore (Vm.detach_device vm ~tag:"vf0")) members;
    let transport = ref None in
    let job =
      Runtime.mpirun cluster ~members ~procs_per_vm:1 ~continue_like_restart:flag (fun ctx ->
          (* Keep iterating until well past the checkpoint (~32 s). *)
          while Mpi.wtime ctx < 40.0 do
            Mpi.compute ctx ~seconds:2.0;
            Mpi.allreduce ctx ~bytes:1.0e7;
            Mpi.checkpoint_point ctx
          done;
          if Mpi.rank ctx = 0 then transport := Mpi.current_transport ctx ~peer:1)
    in
    Sim.spawn sim (fun () ->
        Sim.sleep (Time.ms 50);
        (* HCAs come back (e.g. recovery migration re-attached them). *)
        List.iter
          (fun (vm, _) ->
            ignore
              (Ninja_vmm.Hotplug.device_add vm
                 ~device:(Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca)
                 ()))
          members;
        Sim.sleep (Time.sec 31(* link training *));
        ignore (Runtime.request_checkpoint job);
        Runtime.wait job);
    Sim.run sim;
    Option.map Btl.kind_name !transport
  in
  Alcotest.(check (option string)) "flag on: upgraded to openib" (Some "openib") (run_with true);
  Alcotest.(check (option string)) "flag off: stuck on tcp" (Some "tcp") (run_with false)

let test_linkup_wait_recorded () =
  let sim, cluster, members = setup () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        for _ = 1 to 30 do
          Mpi.allreduce ctx ~bytes:1.0e7;
          Mpi.checkpoint_point ctx
        done)
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.ms 50);
      (* Detach and immediately re-attach the HCAs, then checkpoint: the
         continue phase must absorb the ~30 s link training. *)
      List.iter (fun (vm, _) -> ignore (Vm.detach_device vm ~tag:"vf0")) members;
      List.iter
        (fun (vm, _) ->
          Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca))
        members;
      let complete = Runtime.request_checkpoint job in
      Runtime.await_checkpoint_complete complete;
      let linkup = Time.to_sec_f (Runtime.last_linkup_wait job) in
      Alcotest.(check bool) "~30 s linkup wait" true (linkup > 25.0 && linkup < 31.0);
      Runtime.wait job);
  Sim.run sim

let test_double_checkpoint_request_rejected () =
  let sim, cluster, members = setup () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        Mpi.compute ctx ~seconds:5.0;
        Mpi.barrier ctx;
        Mpi.checkpoint_point ctx)
  in
  Sim.spawn sim (fun () ->
      ignore (Runtime.request_checkpoint job);
      Alcotest.check_raises "second request"
        (Invalid_argument "Rank.request_checkpoint: already pending") (fun () ->
          ignore (Runtime.request_checkpoint job));
      Runtime.wait job);
  Sim.run sim

let test_repeated_checkpoints () =
  let sim, cluster, members = setup () in
  let count = ref 0 in
  let ft_hooks =
    { Rank.on_checkpoint = (fun _ -> incr count); Rank.on_continue = (fun _ -> ()) }
  in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 ~ft_hooks (fun ctx ->
        for _ = 1 to 50 do
          Mpi.compute ctx ~seconds:0.05;
          Mpi.allreduce ctx ~bytes:1.0e7;
          Mpi.checkpoint_point ctx
        done)
  in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        Sim.sleep (Time.ms 100);
        Runtime.await_checkpoint_complete (Runtime.request_checkpoint job)
      done;
      Runtime.wait job);
  Sim.run sim;
  Alcotest.(check int) "3 checkpoints x 2 ranks" 6 !count

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Any collective, any process count, any payload: completes, takes
   positive time, and replays identically. *)
let collective_prop =
  QCheck.Test.make ~name:"collectives complete deterministically" ~count:40
    QCheck.(triple (int_range 2 6) (int_range 0 3) (float_bound_exclusive 1.0e7))
    (fun (np, which, bytes) ->
      let bytes = bytes +. 1.0 in
      let run () =
        let sim = Sim.create ~seed:5L () in
        let cluster = Cluster.create sim ~spec:Spec.agc_ib16 () in
        let members =
          List.init np (fun i ->
              make_member ~ib:true cluster
                ~name:(Printf.sprintf "p%d" i)
                (Cluster.find_node cluster (Printf.sprintf "ib%02d" i)))
        in
        let job =
          Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
              match which with
              | 0 -> Mpi.bcast ctx ~root:(np - 1) ~bytes
              | 1 -> Mpi.reduce ctx ~root:0 ~bytes
              | 2 -> Mpi.allreduce ctx ~bytes
              | _ -> Mpi.alltoall ctx ~bytes_per_pair:(bytes /. float_of_int np))
        in
        Sim.spawn sim (fun () -> Runtime.wait job);
        Sim.run sim;
        Time.to_sec_f (Sim.now sim)
      in
      let a = run () and b = run () in
      a > 0.0 && a = b)

(* Matched send/recv pairs with random tags always drain, and per-tag
   per-pair ordering is preserved. *)
let p2p_matching_prop =
  QCheck.Test.make ~name:"p2p matching drains and preserves order" ~count:60
    QCheck.(small_list (pair (int_bound 2) (int_range 1 64)))
    (fun msgs ->
      let sim = Sim.create () in
      let cluster = Cluster.create sim ~spec:Spec.agc_ib16 () in
      let members =
        List.init 2 (fun i ->
            make_member ~ib:true cluster
              ~name:(Printf.sprintf "p%d" i)
              (Cluster.find_node cluster (Printf.sprintf "ib%02d" i)))
      in
      let received = ref [] in
      let job =
        Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
            if Mpi.rank ctx = 0 then
              List.iter
                (fun (tag, kb) -> Mpi.send ~tag ctx ~dst:1 ~bytes:(float_of_int (kb * 1024)))
                msgs
            else
              List.iter
                (fun (tag, _) -> received := (tag, Mpi.recv ctx ~src:0 ~tag ()) :: !received)
                msgs)
      in
      Sim.spawn sim (fun () -> Runtime.wait job);
      Sim.run sim;
      let expected =
        List.map (fun (tag, kb) -> (tag, float_of_int (kb * 1024))) msgs
      in
      (* Receiver posts in program order with explicit tags: per-tag FIFO
         means each recv sees the sender's matching message in order. *)
      List.rev !received = expected)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ninja_mpi"
    [
      ( "p2p",
        [
          Alcotest.test_case "eager send/recv" `Quick test_eager_send_recv;
          Alcotest.test_case "eager non-blocking" `Quick test_eager_sender_does_not_block;
          Alcotest.test_case "rendezvous timing" `Quick test_rendezvous_timing;
          Alcotest.test_case "rendezvous waits" `Quick test_rendezvous_waits_for_receiver;
          Alcotest.test_case "tag/source matching" `Quick test_tag_and_source_matching;
          Alcotest.test_case "fifo per pair" `Quick test_fifo_per_pair;
        ] );
      ( "btl",
        [
          Alcotest.test_case "selection matrix" `Quick test_btl_selection_matrix;
          Alcotest.test_case "exclusivity" `Quick test_exclusivity_ordering;
          Alcotest.test_case "uncoordinated detach breaks" `Quick test_uncoordinated_detach_breaks_job;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "barrier" `Quick test_barrier_completes;
          Alcotest.test_case "bcast small" `Quick test_bcast_small;
          Alcotest.test_case "bcast large" `Quick test_bcast_large_bandwidth_optimal;
          Alcotest.test_case "bcast nonzero root" `Quick test_bcast_roots_other_than_zero;
          Alcotest.test_case "reduce large" `Quick test_reduce_large;
          Alcotest.test_case "allreduce large" `Quick test_allreduce_large;
          Alcotest.test_case "allreduce small" `Quick test_allreduce_small_uses_tree;
          Alcotest.test_case "gather/scatter/alltoall" `Quick test_gather_scatter_alltoall;
          Alcotest.test_case "reduce_scatter/scan" `Quick test_reduce_scatter_scan;
          Alcotest.test_case "scan chain cost" `Quick test_scan_is_a_chain;
          Alcotest.test_case "odd process count" `Quick test_collectives_odd_process_count;
          Alcotest.test_case "sm within VM" `Quick test_sm_collective_within_vm;
        ] );
      ( "comm",
        [
          Alcotest.test_case "world basics" `Quick test_comm_world_basics;
          Alcotest.test_case "split by VM" `Quick test_comm_split_by_vm;
          Alcotest.test_case "split key ordering" `Quick test_comm_split_key_ordering;
          Alcotest.test_case "dup fresh context" `Quick test_comm_dup_fresh_context;
          Alcotest.test_case "traffic isolation" `Quick test_comm_traffic_isolation;
        ] );
      ( "nonblocking",
        [
          Alcotest.test_case "isend overlap" `Quick test_isend_overlaps_compute;
          Alcotest.test_case "irecv test/wait" `Quick test_irecv_test_and_wait;
          Alcotest.test_case "waitall" `Quick test_waitall;
        ] );
      ("properties", qsuite [ collective_prop; p2p_matching_prop ]);
      ( "checkpoint",
        [
          Alcotest.test_case "quiesce and resume" `Quick test_checkpoint_quiesces_and_resumes;
          Alcotest.test_case "safe points only" `Quick test_checkpoint_hits_safe_point_only;
          Alcotest.test_case "ib release + reconstruct" `Quick
            test_checkpoint_releases_ib_and_reconstructs;
          Alcotest.test_case "continue_like_restart" `Quick test_continue_like_restart_flag;
          Alcotest.test_case "linkup wait recorded" `Quick test_linkup_wait_recorded;
          Alcotest.test_case "double request rejected" `Quick test_double_checkpoint_request_rejected;
          Alcotest.test_case "repeated checkpoints" `Quick test_repeated_checkpoints;
        ] );
    ]
