(* ninja-sim: run any of the paper's experiments from the command line.

   Examples:
     ninja_sim list
     ninja_sim run table2
     ninja_sim run fig8 --full
     ninja_sim run all --csv out/
*)

open Cmdliner
open Ninja_experiments

let print_tables ~csv_dir name tables =
  List.iter Ninja_metrics.Table.print tables;
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i table ->
        let path = Filename.concat dir (Printf.sprintf "%s-%d.csv" name i) in
        let oc = open_out path in
        output_string oc (Ninja_metrics.Table.to_csv table);
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      tables

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e -> Printf.printf "%-18s %s\n" e.Registry.name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run an experiment (or 'all') and print its tables." in
  let name_arg =
    let doc = "Experiment name (see 'list'), or 'all'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let full =
    let doc = "Use the paper's full-scale parameters (slower) instead of quick mode." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let csv_dir =
    let doc = "Also write each table as CSV into $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let run name full csv_dir =
    let mode = if full then Exp_common.Full else Exp_common.Quick in
    let entries =
      if String.equal name "all" then Ok Registry.all
      else
        match Registry.find name with
        | Some e -> Ok [ e ]
        | None ->
          Error
            (Printf.sprintf "unknown experiment %S; expected one of: all, %s" name
               (String.concat ", " Registry.names))
    in
    match entries with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok entries ->
      List.iter
        (fun e ->
          Printf.printf "== %s: %s ==\n%!" e.Registry.name e.Registry.description;
          print_tables ~csv_dir e.Registry.name (e.Registry.run mode))
        entries
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ name_arg $ full $ csv_dir)

(* `ninja_sim script [FILE]`: execute a Fig. 5-style migration script
   against a canned demo scenario (2 VMs on the IB cluster running a
   bcast+reduce job). With no FILE, runs the paper's Fig. 5 script. *)
let script_cmd =
  let doc = "Execute a textual migration script (see Script_lang; default: the paper's Fig. 5)." in
  let file =
    let doc = "Script file; '-' or absent runs the built-in Fig. 5 script." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let text =
      match file with
      | None | Some "-" -> Ninja_core.Script_lang.fig5
      | Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    in
    match Ninja_core.Script_lang.parse text with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok commands ->
      let open Ninja_engine in
      let open Ninja_hardware in
      let sim = Sim.create ~seed:3L () in
      let cluster = Cluster.create sim () in
      let hosts = [ Cluster.find_node cluster "ib00"; Cluster.find_node cluster "ib01" ] in
      let ninja = Ninja_core.Ninja.setup cluster ~hosts () in
      ignore
        (Ninja_core.Ninja.launch ninja ~procs_per_vm:4 (fun ctx ->
             Ninja_workloads.Bcast_reduce.run ctx ~data_per_node:4.0e9 ~procs_per_vm:4
               ~steps:60 ()));
      Printf.printf "executing %d script commands against a 2-VM demo job:\n"
        (List.length commands);
      List.iter
        (fun c -> Printf.printf "  %s\n" (Ninja_core.Script_lang.command_to_string c))
        commands;
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 10);
          let b = Ninja_core.Script_lang.execute ninja commands in
          Format.printf "script done: %a@." Ninja_metrics.Breakdown.pp b;
          List.iter
            (fun vm ->
              Printf.printf "%s now on %s\n" (Ninja_vmm.Vm.name vm)
                (Ninja_vmm.Vm.host vm).Node.name)
            (Ninja_core.Ninja.vms ninja);
          Ninja_core.Ninja.wait_job ninja);
      Sim.run sim;
      Printf.printf "job finished at %.1f simulated seconds.\n" (Time.to_sec_f (Sim.now sim))
  in
  Cmd.v (Cmd.info "script" ~doc) Term.(const run $ file)

let () =
  let doc = "Ninja migration reproduction: run the paper's experiments on the simulator." in
  let info = Cmd.info "ninja_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; script_cmd ]))
