#!/bin/sh
# Bench regression gate: compare the two newest BENCH_N.json files (or the
# two given as arguments) entry by entry and fail when any experiment's
# wall time regressed by more than BENCH_TOLERANCE (default 30%).
#
#   bench/compare.sh                       # newest vs previous in repo root
#   bench/compare.sh BENCH_5.json BENCH_6.json
#   BENCH_TOLERANCE=0.5 bench/compare.sh   # allow 50%
#
# Entries present only in the newer file are reported and skipped (new
# experiments have no baseline); entries faster than MIN_WALL seconds are
# skipped as noise. Exits 0 when there is nothing to compare.
#
# The 0.1s floor comes from the snapshot history: sub-100ms entries swing
# +/-30% between snapshots with no code changes (ablation-bypass recorded
# 35/49/42/56ms across PRs 5-8), so they measure scheduler noise, not
# regressions.
set -eu

TOL="${BENCH_TOLERANCE:-0.30}"
MIN_WALL="${BENCH_MIN_WALL:-0.1}"

if [ "$#" -eq 2 ]; then
  old="$1"
  new="$2"
else
  dir="$(dirname "$0")/.."
  set -- $(ls "$dir"/BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
  if [ "$#" -lt 2 ]; then
    echo "bench/compare.sh: fewer than two BENCH_N.json files; nothing to compare"
    exit 0
  fi
  while [ "$#" -gt 2 ]; do shift; done
  old="$1"
  new="$2"
fi

command -v jq >/dev/null 2>&1 || {
  echo "bench/compare.sh: jq not available; skipping bench gate"
  exit 0
}

echo "bench gate: $new vs baseline $old (tolerance ${TOL}, floor ${MIN_WALL}s)"

fail=0
for name in $(jq -r '.entries[].name' "$new"); do
  new_wall=$(jq -r --arg n "$name" '.entries[] | select(.name == $n) | .wall_s' "$new")
  old_wall=$(jq -r --arg n "$name" '.entries[] | select(.name == $n) | .wall_s' "$old")
  if [ -z "$old_wall" ]; then
    echo "  NEW   $name: ${new_wall}s (no baseline, skipped)"
    continue
  fi
  verdict=$(jq -n --argjson o "$old_wall" --argjson w "$new_wall" \
    --argjson t "$TOL" --argjson m "$MIN_WALL" \
    'if ($o < $m and $w < $m) then "skip"
     elif $w > $o * (1 + $t) then "regressed"
     else "ok" end' | tr -d '"')
  case "$verdict" in
    regressed)
      echo "  FAIL  $name: ${old_wall}s -> ${new_wall}s (> ${TOL} regression)"
      fail=1
      ;;
    skip) echo "  skip  $name: ${old_wall}s -> ${new_wall}s (below ${MIN_WALL}s floor)" ;;
    *) echo "  ok    $name: ${old_wall}s -> ${new_wall}s" ;;
  esac
done

if [ "$fail" -ne 0 ]; then
  echo "bench gate: wall-time regression detected"
  exit 1
fi
echo "bench gate: ok"
