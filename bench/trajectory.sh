#!/bin/sh
# Bench trajectory: chart wall-time across every committed BENCH_N.json.
#
#   bench/trajectory.sh              # all snapshots in the repo root
#   bench/trajectory.sh evacuation   # one experiment's trajectory only
#
# Each snapshot is one PR's `dune exec bench/main.exe` run (see
# bench/main.ml); compare.sh gates consecutive pairs, this script shows
# the whole history: total wall per snapshot, then per-experiment rows
# with an ASCII bar scaled to the slowest snapshot of that experiment.
set -eu

only="${1:-}"

dir="$(dirname "$0")/.."
set -- $(ls "$dir"/BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
if [ "$#" -eq 0 ]; then
  echo "bench/trajectory.sh: no BENCH_N.json snapshots found"
  exit 0
fi

command -v jq >/dev/null 2>&1 || {
  echo "bench/trajectory.sh: jq not available"
  exit 1
}

# One snapshot (a seed checkout) has no trajectory to chart: every bar
# would trivially be the maximum. Degrade to a single-row table of that
# snapshot's entries instead of an empty/degenerate chart.
if [ "$#" -eq 1 ]; then
  f="$1"
  pr=$(jq -r '.pr' "$f")
  w=$(jq -r '.total_wall_s // 0' "$f")
  jobs=$(jq -r '.jobs // 1' "$f")
  printf 'single snapshot (PR %s, -j%s): %ss total wall\n' "$pr" "$jobs" "$w"
  jq -r '.entries[] | [.name, (.wall_s | tostring)] | @tsv' "$f" \
    | while IFS="$(printf '\t')" read -r name w; do
        if [ -n "$only" ] && [ "$name" != "$only" ]; then continue; fi
        printf '  %-18s %8.3fs\n' "$name" "$w"
      done
  exit 0
fi

bar() { # bar <value> <max> — 1..40 hashes proportional to value/max
  jq -n --argjson v "$1" --argjson m "$2" \
    '"#" * (if $m <= 0 then 1 else (($v / $m * 40) | floor + 1) end)' | tr -d '"'
}

if [ -z "$only" ]; then
  echo "total wall seconds per snapshot:"
  max=0
  for f; do
    w=$(jq -r '.total_wall_s' "$f")
    max=$(jq -n --argjson a "$max" --argjson b "$w" 'if $b > $a then $b else $a end')
  done
  for f; do
    pr=$(jq -r '.pr' "$f")
    w=$(jq -r '.total_wall_s' "$f")
    jobs=$(jq -r '.jobs' "$f")
    printf '  PR %-3s %8.3fs -j%-2s %s\n' "$pr" "$w" "$jobs" "$(bar "$w" "$max")"
  done
  echo
fi

# Per-experiment rows over the union of entry names, newest-file order.
names=$(for f; do jq -r '.entries[].name' "$f"; done | awk '!seen[$0]++')
for name in $names; do
  if [ -n "$only" ] && [ "$name" != "$only" ]; then continue; fi
  max=0
  for f; do
    w=$(jq -r --arg n "$name" '[.entries[] | select(.name == $n) | .wall_s] | first // 0' "$f")
    max=$(jq -n --argjson a "$max" --argjson b "$w" 'if $b > $a then $b else $a end')
  done
  echo "$name:"
  for f; do
    pr=$(jq -r '.pr' "$f")
    w=$(jq -r --arg n "$name" '[.entries[] | select(.name == $n) | .wall_s] | first // empty' "$f")
    if [ -z "$w" ]; then
      printf '  PR %-3s %8s\n' "$pr" "-"
    else
      printf '  PR %-3s %8.3fs %s\n' "$pr" "$w" "$(bar "$w" "$max")"
    fi
  done
done
