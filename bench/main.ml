(* Bench harness.

   Default invocation regenerates every table and figure of the paper at
   paper-scale parameters, plus the ablations and extension studies, then
   runs the Bechamel micro-benchmarks of the simulator's hot paths.

     dune exec bench/main.exe                 # everything, paper-scale (~1-2 min)
     dune exec bench/main.exe -- quick        # everything, quick parameters
     dune exec bench/main.exe -- fig8         # one experiment (quick)
     dune exec bench/main.exe -- fig8 full    # one experiment, paper-scale
     dune exec bench/main.exe -- micro        # only the Bechamel suite
     dune exec bench/main.exe -- quick -j 4   # experiments domain-parallel, 4 cores
*)

(* Aliased before the opens: Toolkit shadows [Monotonic_clock] with its
   bechamel-instance wrapper, which has no [now]. *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit
open Ninja_experiments

(* ------------------------------------------------------------------ *)
(* Experiment tables *)

(* Monotonic wall seconds: under [-j N] an experiment's simulations run on
   several domains at once, so CPU time overstates (and [Sys.time] used to
   misreport) what the user actually waits. *)
let wall () = Int64.to_float (Mclock.now ()) /. 1e9

(* Machine-readable companion to the printed tables: per-entry wall-clock,
   CPU and simulated seconds, so perf regressions across PRs can be
   compared without scraping stdout. *)
let bench_json_path = "BENCH_9.json"

let write_bench_json ctx ~total_wall ~total_cpu entries =
  let oc = open_out bench_json_path in
  Printf.fprintf oc "{\n  \"pr\": 9,\n  \"seed\": %Ld,\n  \"jobs\": %d,\n  \"mode\": %S,\n"
    ctx.Ninja_engine.Run_ctx.seed
    (Ninja_engine.Run_ctx.jobs ctx)
    (match ctx.Ninja_engine.Run_ctx.mode with
    | Ninja_engine.Run_ctx.Quick -> "quick"
    | Ninja_engine.Run_ctx.Full -> "full");
  Printf.fprintf oc "  \"total_wall_s\": %.3f,\n  \"total_cpu_s\": %.3f,\n  \"entries\": [\n"
    total_wall total_cpu;
  List.iteri
    (fun i (name, wall_s, cpu_s, sim_s) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"wall_s\": %.3f, \"cpu_s\": %.3f, \"sim_s\": %.3f}%s\n" name
        wall_s cpu_s sim_s
        (if i = List.length entries - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" bench_json_path

let run_experiments ctx names =
  let w0 = wall () and c0 = Sys.time () in
  let results = ref [] in
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Printf.printf "unknown experiment: %s\n%!" name
      | Some e ->
        Printf.printf "== %s: %s ==\n%!" e.Registry.name e.Registry.description;
        (* Each simulation reports its simulated end time through the
           context's observation hook, possibly from a pooled domain. *)
        let sim_s = ref 0.0 in
        let sim_m = Mutex.create () in
        let ectx =
          Ninja_engine.Run_ctx.with_observer
            (Some
               (fun name v ->
                 if String.equal name "sim_s" then
                   Mutex.protect sim_m (fun () -> sim_s := !sim_s +. v)))
            ctx
        in
        let w = wall () and c = Sys.time () in
        List.iter Ninja_metrics.Table.print (Registry.run_entry ectx e);
        let wall_s = wall () -. w and cpu_s = Sys.time () -. c in
        Printf.printf "(generated in %.1fs wall, %.1fs CPU, %.1fs simulated)\n\n%!" wall_s
          cpu_s !sim_s;
        results := (e.Registry.name, wall_s, cpu_s, !sim_s) :: !results)
    names;
  let total_wall = wall () -. w0 and total_cpu = Sys.time () -. c0 in
  Printf.printf "== total: %.1fs wall, %.1fs CPU (%d job%s) ==\n%!" total_wall total_cpu
    (Ninja_engine.Run_ctx.jobs ctx)
    (if Ninja_engine.Run_ctx.jobs ctx = 1 then "" else "s");
  write_bench_json ctx ~total_wall ~total_cpu (List.rev !results)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test per reproduced table/figure (a
   single representative configuration each, so the cost of regenerating
   a result is itself tracked), plus the simulator's hot paths. *)

open Ninja_engine

let bench_heap =
  Test.make ~name:"engine/event-heap push+pop x1k"
    (Staged.stage @@ fun () ->
    let h = Pheap.create () in
    for i = 0 to 999 do
      Pheap.add h ~key:(Int64.of_int (i * 7919 mod 1000)) ~seq:i i
    done;
    while not (Pheap.is_empty h) do
      ignore (Pheap.pop h)
    done)

let bench_fibers =
  Test.make ~name:"engine/spawn+run 100 sleeping fibers"
    (Staged.stage @@ fun () ->
    let sim = Sim.create () in
    for i = 1 to 100 do
      Sim.spawn sim (fun () -> Sim.sleep (Time.ms i))
    done;
    Sim.run sim)

let bench_fabric =
  Test.make ~name:"flownet/max-min re-rate, 32 flows"
    (Staged.stage @@ fun () ->
    let sim = Sim.create () in
    let fab = Ninja_flownet.Fabric.create sim in
    let links =
      Array.init 8 (fun i ->
          Ninja_flownet.Fabric.add_link fab ~name:(string_of_int i) ~capacity:1e9)
    in
    for i = 0 to 31 do
      Sim.spawn sim (fun () ->
          Ninja_flownet.Fabric.transfer fab
            ~route:[ links.(i mod 8); links.((i + 3) mod 8) ]
            ~bytes:1e8)
    done;
    Sim.run sim)

let bench_collective =
  Test.make ~name:"mpi/allreduce 100MB, 8 ranks"
    (Staged.stage @@ fun () ->
    let sim = Sim.create () in
    let cluster = Ninja_hardware.Cluster.create sim ~spec:Ninja_hardware.Spec.agc_ib16 () in
    let members =
      List.init 4 (fun i ->
          let host = Ninja_hardware.Cluster.node cluster i in
          let vm =
            Ninja_vmm.Vm.create cluster
              ~name:(Printf.sprintf "b%d" i)
              ~host ~vcpus:8 ~mem_bytes:21.5e9 ()
          in
          Ninja_vmm.Vm.attach_device vm
            (Ninja_hardware.Device.make ~tag:"vf0" ~pci_addr:"04:00.0"
               Ninja_hardware.Device.Ib_hca);
          (vm, Ninja_guestos.Guest.boot vm))
    in
    let job =
      Ninja_mpi.Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
          Ninja_mpi.Mpi.allreduce ctx ~bytes:1e8)
    in
    Sim.spawn sim (fun () -> Ninja_mpi.Runtime.wait job);
    Sim.run sim)

let bench_table2 =
  Test.make ~name:"experiment/table2 one combo (IB->IB, 8 VMs)"
    (Staged.stage @@ fun () ->
    let hotplug = ref 0.0 and linkup = ref 0.0 in
    Exp_table2.measure Run_ctx.default Paper_data.Ib_to_ib ~hotplug ~linkup)

let bench_fig6 =
  Test.make ~name:"experiment/fig6 one point (2GB memtest, 8 VMs)"
    (Staged.stage @@ fun () -> ignore (Exp_fig6.measure Run_ctx.default ~size_gb:2.0))

let bench_fig7 =
  Test.make ~name:"experiment/fig7 one kernel (CG, quick)"
    (Staged.stage @@ fun () -> ignore (Exp_fig7.measure Run_ctx.default Ninja_workloads.Npb.CG))

let bench_fig8 =
  Test.make ~name:"experiment/fig8 series (1 proc/VM, quick)"
    (Staged.stage @@ fun () -> ignore (Exp_fig8.measure Run_ctx.default ~procs_per_vm:1))

let micro_tests =
  Test.make_grouped ~name:"ninja" ~fmt:"%s %s"
    [
      bench_heap;
      bench_fibers;
      bench_fabric;
      bench_collective;
      bench_table2;
      bench_fig6;
      bench_fig7;
      bench_fig8;
    ]

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (wall-clock cost of the simulator) ==";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Bechamel.Time.second 1.0) ~stabilize:false () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances micro_tests in
  let ols =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  let table =
    Ninja_metrics.Table.create ~title:"simulator hot paths (OLS estimate per run)"
      ~columns:[ "benchmark"; "time/run"; "r^2" ]
  in
  List.iter
    (fun (name, o) ->
      let time_ns =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | Some [] | None -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square o with Some r -> r | None -> Float.nan in
      Ninja_metrics.Table.add_row table
        [
          name;
          (if Float.is_nan time_ns then "n/a"
           else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
           else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
           else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
           else Printf.sprintf "%.0f ns" time_ns);
          Printf.sprintf "%.4f" r2;
        ])
    (List.sort compare rows);
  Ninja_metrics.Table.print table

(* ------------------------------------------------------------------ *)

(* Pull "-j N" / "--jobs N" out of the argument list. *)
let rec extract_jobs = function
  | [] -> (1, [])
  | ("-j" | "--jobs") :: n :: rest ->
    let jobs, rest = extract_jobs rest in
    ignore jobs;
    ((try max 1 (int_of_string n) with Failure _ -> 1), rest)
  | arg :: rest ->
    let jobs, rest = extract_jobs rest in
    (jobs, arg :: rest)

let () =
  let jobs, args = extract_jobs (List.tl (Array.to_list Sys.argv)) in
  let with_ctx mode k =
    if jobs > 1 then
      Pool.with_pool ~size:jobs (fun pool -> k (Run_ctx.make ~mode ~pool ()))
    else k (Run_ctx.make ~mode ())
  in
  match args with
  | [ "micro" ] -> run_micro ()
  | [ "quick" ] ->
    with_ctx Run_ctx.Quick (fun ctx -> run_experiments ctx Registry.names);
    run_micro ()
  | [ "full" ] | [] ->
    with_ctx Run_ctx.Full (fun ctx -> run_experiments ctx Registry.names);
    run_micro ()
  | [ name ] when Registry.find name <> None ->
    with_ctx Run_ctx.Quick (fun ctx -> run_experiments ctx [ name ])
  | [ name; "full" ] | [ "full"; name ] ->
    with_ctx Run_ctx.Full (fun ctx -> run_experiments ctx [ name ])
  | _ ->
    Printf.printf
      "usage: main.exe [quick | full | micro | <experiment> [full]] [-j N]\nexperiments: %s\n"
      (String.concat ", " Registry.names)
