(* Quickstart: the smallest end-to-end Ninja migration.

   Two VMs run a two-rank MPI job on the InfiniBand cluster; we migrate
   them to the Ethernet cluster mid-run. The job keeps running — the MPI
   transport switches from openib to tcp underneath it — and we print the
   overhead breakdown plus the interesting trace lines.

     dune exec examples/quickstart.exe
*)

open Ninja_engine
open Ninja_hardware
open Ninja_mpi
open Ninja_metrics
open Ninja_core

let () =
  (* 1. A simulated data center: 8 InfiniBand nodes + 8 Ethernet nodes
     (the paper's AGC testbed). *)
  let sim = Sim.create ~seed:7L () in
  let cluster = Cluster.create sim () in
  let host name = Cluster.find_node cluster name in

  (* 2. Two 20 GB VMs on the IB cluster, HCAs passed through. *)
  let ninja = Ninja.setup cluster ~hosts:[ host "ib00"; host "ib01" ] () in

  (* 3. An MPI job: iterations of compute + allreduce, reporting the
     transport used to reach the peer. *)
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         for i = 1 to 20 do
           Mpi.compute ctx ~seconds:1.0;
           Mpi.allreduce ctx ~bytes:1.0e8;
           Mpi.checkpoint_point ctx;
           if Mpi.rank ctx = 0 && i mod 5 = 0 then
             Printf.printf "[%6.1fs] iteration %2d done, transport to peer: %s\n"
               (Mpi.wtime ctx) i
               (match Mpi.current_transport ctx ~peer:1 with
               | Some k -> Btl.kind_name k
               | None -> "unreachable")
         done));

  (* 4. Ten seconds in, fall back to the Ethernet cluster. *)
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      Printf.printf "[%6.1fs] --- triggering Ninja fallback migration ---\n"
        (Time.to_sec_f (Sim.now sim));
      let b = Ninja.fallback ninja ~dsts:[ host "eth00"; host "eth01" ] () in
      Format.printf "[%6.1fs] --- migration done: %a ---@."
        (Time.to_sec_f (Sim.now sim))
        Breakdown.pp b;
      Ninja.wait_job ninja);

  Sim.run sim;
  Printf.printf "\njob finished at %.1fs without restarting any MPI process.\n"
    (Time.to_sec_f (Sim.now sim));
  print_endline "\n--- migration-related trace ---";
  List.iter
    (fun r ->
      Printf.printf "[%8.2fs] %-10s %s\n" (Time.to_sec_f r.Trace.at) r.Trace.category
        r.Trace.message)
    (Trace.by_category (Cluster.trace cluster) "ninja"
    @ Trace.by_category (Cluster.trace cluster) "symvirt")
