(* The paper's Fig. 1/Fig. 2 scenario, narrated.

   An InfiniBand cluster must go down for maintenance; its MPI job falls
   back to the Ethernet cluster, runs there (slower, over TCP), and
   recovers to InfiniBand when maintenance ends — without restarting any
   process. Per-step times make the interconnect visible.

     dune exec examples/fallback_recovery.exe
*)

open Ninja_engine
open Ninja_hardware
open Ninja_metrics
open Ninja_core
open Ninja_workloads

let () =
  let sim = Sim.create ~seed:11L () in
  let cluster = Cluster.create sim () in
  let hosts prefix n =
    List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "%s%02d" prefix i))
  in
  let ib = hosts "ib" 4 and eth = hosts "eth" 4 in
  let ninja = Ninja.setup cluster ~hosts:ib () in

  (* 4 VMs x 8 ranks; every step broadcasts and reduces 2 GB per node. *)
  let phase = ref "4 hosts (IB), normal operation" in
  ignore
    (Ninja.launch ninja ~procs_per_vm:8 (fun ctx ->
         Bcast_reduce.run ctx ~data_per_node:8.0e9 ~procs_per_vm:8 ~steps:30
           ~on_step:(fun s ->
             Printf.printf "  step %2d  %6.1f s   (%s)\n" s.Bcast_reduce.step
               s.Bcast_reduce.elapsed !phase)
           ()));

  let ibstat () =
    match Ninja.vnodes ninja with
    | { Ninja.guest; _ } :: _ ->
      Printf.printf "   vm0 guest sees: %s\n" (Ninja_guestos.Sysinfo.ibstat guest)
    | [] -> ()
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 15);
      print_endline "\n== maintenance window opens: fallback migration IB -> Ethernet ==";
      ibstat ();
      let b = Ninja.fallback ninja ~dsts:eth () in
      phase := "4 hosts (TCP), fallback operation";
      Format.printf "   overhead: %a@." Breakdown.pp b;
      ibstat ();
      Sim.sleep (Time.sec 40);
      print_endline "\n== maintenance done: recovery migration Ethernet -> IB ==";
      let b = Ninja.recovery ninja ~dsts:ib () in
      phase := "4 hosts (IB), recovered";
      Format.printf "   overhead: %a@." Breakdown.pp b;
      ibstat ();
      Ninja.wait_job ninja);

  print_endline "fallback-and-recovery scenario (4 VMs, 32 MPI processes)";
  Sim.run sim;
  Printf.printf "\nall 32 processes survived both migrations; done at %.1f s.\n"
    (Time.to_sec_f (Sim.now sim))
