(* Parallel sweep: run one experiment's point grid across CPU cores.

   Every experiment runner takes a [Run_ctx.t]; when the context carries a
   domain pool, its internal sweep (here: the Fig. 6 memory-array sizes)
   fans out one simulation per domain. Each point builds its own [Sim.t],
   so there is no shared mutable state between domains — the ambient
   simulation is domain-local. Results come back in submission order, so
   the table below is byte-identical to a serial run with the same seed.

     dune exec examples/parallel_sweep.exe
*)

open Ninja_engine
open Ninja_experiments
open Ninja_metrics

let () =
  let jobs = Domain.recommended_domain_count () in
  Printf.printf "sweeping fig6 sizes on %d domain(s)...\n%!" jobs;
  let tables =
    Pool.with_pool ~size:jobs (fun pool ->
        let rc = Run_ctx.make ~seed:7L ~mode:Run_ctx.Quick ~pool () in
        Exp_fig6.run rc)
  in
  List.iter Table.print tables;

  (* The same context without a pool produces the same bytes, serially. *)
  let serial = Exp_fig6.run (Run_ctx.make ~seed:7L ~mode:Run_ctx.Quick ()) in
  let render ts = String.concat "\n" (List.map Table.to_csv ts) in
  assert (render serial = render tables);
  print_endline "parallel output matches serial run byte-for-byte."
