(* Tests for the DES kernel: time, prng, heap, fibers, primitives, rated
   resources. Everything here underpins the whole reproduction, so these
   tests pin exact virtual-time semantics, not just "it runs". *)

open Ninja_engine

let sec_f = Time.to_sec_f

let check_time = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_time "us" 1e-6 (sec_f (Time.us 1));
  check_time "ms" 1e-3 (sec_f (Time.ms 1));
  check_time "sec" 42.0 (sec_f (Time.sec 42));
  check_time "minutes" 180.0 (sec_f (Time.minutes 3));
  check_time "of_sec_f roundtrip" 3.88 (sec_f (Time.of_sec_f 3.88))

let test_time_arith () =
  let t = Time.add (Time.sec 1) (Time.ms 500) in
  check_time "add" 1.5 (sec_f t);
  check_time "diff" 0.5 (sec_f (Time.diff t (Time.sec 1)));
  check_time "mul" 4.5 (sec_f (Time.mul t 3));
  check_time "scale" 0.75 (sec_f (Time.scale t 0.5));
  Alcotest.(check bool) "lt" true Time.(Time.sec 1 < Time.sec 2);
  Alcotest.(check bool) "ge" true Time.(Time.sec 2 >= Time.sec 2);
  Alcotest.(check bool) "neg" true (Time.is_negative (Time.diff Time.zero (Time.sec 1)))

let test_time_pp () =
  let str t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "s" "3.88s" (str (Time.of_sec_f 3.88));
  Alcotest.(check string) "ms" "29.91ms" (str (Time.of_sec_f 0.02991));
  Alcotest.(check string) "us" "1.70us" (str (Time.of_sec_f 1.7e-6));
  Alcotest.(check string) "ns" "250ns" (str (Time.ns 250))

let test_time_invalid () =
  Alcotest.check_raises "nan" (Invalid_argument "Time.of_sec_f: not finite") (fun () ->
      ignore (Time.of_sec_f Float.nan))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:8L in
  Alcotest.(check bool) "different streams" true (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_split_independent () =
  let a = Prng.create ~seed:7L in
  let c = Prng.split a in
  let v1 = Prng.next_int64 c in
  (* Draws from the parent must not change the child's future. *)
  ignore (Prng.next_int64 a);
  let d = Prng.split (Prng.create ~seed:7L) in
  Alcotest.(check int64) "split deterministic" v1 (Prng.next_int64 d)

let prng_range_prop =
  QCheck.Test.make ~name:"prng int/float stay in range" ~count:500
    QCheck.(pair (int_bound 60) small_int)
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let p = Prng.create ~seed:(Int64.of_int seed) in
      let i = Prng.int p bound in
      let f = Prng.float p (float_of_int bound) in
      i >= 0 && i < bound && f >= 0.0 && f < float_of_int bound)

let prng_shuffle_prop =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair (small_list int) int)
    (fun (l, seed) ->
      let arr = Array.of_list l in
      Prng.shuffle (Prng.create ~seed:(Int64.of_int seed)) arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let test_prng_exponential_mean () =
  let p = Prng.create ~seed:42L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (Float.abs (mean -. 5.0) < 0.25)

(* ------------------------------------------------------------------ *)
(* Pheap *)

let pheap_sorted_prop =
  QCheck.Test.make ~name:"pheap pops keys in order" ~count:300
    QCheck.(small_list (pair (int_bound 1000) unit))
    (fun l ->
      let h = Pheap.create () in
      List.iteri (fun i (k, ()) -> Pheap.add h ~key:(Int64.of_int k) ~seq:i k) l;
      let rec drain acc = if Pheap.is_empty h then List.rev acc else drain (Pheap.pop h :: acc) in
      drain [] = List.sort compare (List.map fst l))

(* Seed qcheck data that flows through a Prng from the environment, so the
   CI seed matrix (NINJA_TEST_SEED=1/7/1337) exercises distinct streams
   while any one run stays reproducible. *)
let env_seed =
  match Sys.getenv_opt "NINJA_TEST_SEED" with Some s -> Int64.of_string s | None -> 1L

let pheap_random_ops_prop =
  (* Heap order under an arbitrary interleaving of adds and pops, checked
     against a sorted-list model — [pheap_sorted_prop] only covers the
     add-everything-then-drain pattern. *)
  QCheck.Test.make ~name:"pheap heap order under interleaved add/pop" ~count:300
    QCheck.(pair small_int (small_list bool))
    (fun (salt, ops) ->
      let prng = Prng.create ~seed:(Int64.add env_seed (Int64.of_int salt)) in
      let h = Pheap.create () in
      let model = ref [] and seq = ref 0 and ok = ref true in
      List.iter
        (fun is_add ->
          if is_add then begin
            let k = Prng.int prng 50 in
            Pheap.add h ~key:(Int64.of_int k) ~seq:!seq (k, !seq);
            model := (k, !seq) :: !model;
            incr seq
          end
          else
            match List.sort compare !model with
            | [] -> if not (Pheap.is_empty h) then ok := false
            | best :: rest ->
              if Pheap.pop h <> best then ok := false;
              model := rest)
        ops;
      let rec drain acc =
        if Pheap.is_empty h then List.rev acc else drain (Pheap.pop h :: acc)
      in
      !ok && drain [] = List.sort compare !model)

let test_pheap_fifo_at_same_key () =
  let h = Pheap.create () in
  List.iteri (fun i v -> Pheap.add h ~key:5L ~seq:i v) [ "a"; "b"; "c"; "d" ];
  let out = List.init 4 (fun _ -> Pheap.pop h) in
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c"; "d" ] out

let test_pheap_empty_pop () =
  let h = Pheap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Pheap.pop (h : int Pheap.t)))

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_sleep_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 2);
      log := ("b", sec_f (Sim.now sim)) :: !log);
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      log := ("a", sec_f (Sim.now sim)) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "wakeups in time order"
    [ ("a", 1.0); ("b", 2.0) ]
    (List.rev !log)

let test_sim_fifo_same_instant () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.spawn sim (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "spawn order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_nested_spawn_and_clock () =
  let sim = Sim.create () in
  let finished = ref 0.0 in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 3);
          finished := sec_f (Sim.now sim));
      Sim.sleep (Time.sec 1));
  Sim.run sim;
  check_time "inner fiber time" 4.0 !finished

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~after:(Time.sec 1) (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim (fun () ->
      for _ = 1 to 10 do
        Sim.sleep (Time.sec 1);
        incr count
      done);
  Sim.run_until sim (Time.of_sec_f 4.5);
  Alcotest.(check int) "only events before limit" 4 !count;
  check_time "clock set to limit" 4.5 (sec_f (Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "resumable" 10 !count

let test_sim_deadlock_detection () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"stuck" (fun () -> Sim.suspend (fun _resume -> ()));
  match Sim.run sim with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Deadlock [ name ] ->
    Alcotest.(check bool) "names the fiber" true (String.length name > 0 && String.sub name 0 5 = "stuck")
  | exception Sim.Deadlock names ->
    Alcotest.fail (Printf.sprintf "expected 1 stuck fiber, got %d" (List.length names))

let test_sim_schedule_past_rejected () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time is in the past")
        (fun () -> ignore (Sim.schedule_at sim Time.zero (fun () -> ()))));
  Sim.run sim

let test_sim_exception_propagates () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> failwith "boom");
  Alcotest.check_raises "fiber exception aborts run" (Failure "boom") (fun () -> Sim.run sim)

let test_sim_determinism () =
  let observe () =
    let sim = Sim.create ~seed:9L () in
    let log = Buffer.create 64 in
    for i = 1 to 4 do
      Sim.spawn sim (fun () ->
          let d = Prng.int (Sim.prng sim) 1000 in
          Sim.sleep (Time.ms d);
          Buffer.add_string log (Printf.sprintf "%d@%f;" i (sec_f (Sim.now sim))))
    done;
    Sim.run sim;
    Buffer.contents log
  in
  Alcotest.(check string) "identical replays" (observe ()) (observe ())

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_fill_then_read () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 42;
  let got = ref 0 in
  Sim.spawn sim (fun () -> got := Ivar.read iv);
  Sim.run sim;
  Alcotest.(check int) "read after fill" 42 !got

let test_ivar_read_blocks () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref (0, 0.0) in
  Sim.spawn sim (fun () ->
      let v = Ivar.read iv in
      got := (v, sec_f (Sim.now sim)));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 3);
      Ivar.fill iv 7);
  Sim.run sim;
  Alcotest.(check (pair int (float 1e-9))) "woken at fill time" (7, 3.0) !got

let test_ivar_multiple_readers_fifo () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        ignore (Ivar.read iv);
        log := i :: !log)
  done;
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Ivar.fill iv ());
  Sim.run sim;
  Alcotest.(check (list int)) "readers woken in order" [ 1; 2; 3 ] (List.rev !log)

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.(check bool) "fill_if_empty refuses" false (Ivar.fill_if_empty iv 2);
  Alcotest.(check (option int)) "peek" (Some 1) (Ivar.peek iv);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already full") (fun () ->
      Ivar.fill iv 2)

(* ------------------------------------------------------------------ *)
(* Channel *)

let test_channel_fifo () =
  let sim = Sim.create () in
  let ch = Channel.create () in
  let out = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        out := Channel.recv ch :: !out
      done);
  Sim.spawn sim (fun () ->
      List.iter (Channel.send ch) [ "x"; "y"; "z" ]);
  Sim.run sim;
  Alcotest.(check (list string)) "fifo" [ "x"; "y"; "z" ] (List.rev !out)

let test_channel_blocking_recv () =
  let sim = Sim.create () in
  let ch = Channel.create () in
  let at = ref 0.0 in
  Sim.spawn sim (fun () ->
      ignore (Channel.recv ch);
      at := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      Channel.send ch ());
  Sim.run sim;
  check_time "recv completes at send time" 5.0 !at

let test_channel_try_recv () =
  let ch = Channel.create () in
  Alcotest.(check (option int)) "empty" None (Channel.try_recv ch);
  Channel.send ch 9;
  Alcotest.(check (option int)) "one" (Some 9) (Channel.try_recv ch);
  Alcotest.(check bool) "empty again" true (Channel.is_empty ch)

(* ------------------------------------------------------------------ *)
(* Semaphore *)

let test_semaphore_mutex () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    Sim.spawn sim (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.sleep (Time.sec 1);
            decr inside))
  done;
  Sim.run sim;
  Alcotest.(check int) "never concurrent" 1 !max_inside;
  check_time "serialised" 4.0 (sec_f (Sim.now sim))

let test_semaphore_counting () =
  let sim = Sim.create () in
  let sem = Semaphore.create 2 in
  Sim.spawn sim (fun () ->
      Semaphore.acquire sem;
      Semaphore.acquire sem;
      Alcotest.(check bool) "exhausted" false (Semaphore.try_acquire sem);
      Semaphore.release sem;
      Alcotest.(check bool) "released" true (Semaphore.try_acquire sem));
  Sim.run sim

let test_semaphore_fifo_handoff () =
  let sim = Sim.create () in
  let sem = Semaphore.create 0 in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        Semaphore.acquire sem;
        order := i :: !order)
  done;
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      for _ = 1 to 3 do
        Semaphore.release sem
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo handoff" [ 1; 2; 3 ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Ps_resource *)

let test_ps_single_task_exact () =
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:8.0 in
  let finished = ref 0.0 in
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:1.0 ~work:3.0;
      finished := sec_f (Sim.now sim));
  Sim.run sim;
  check_time "1 core for 3 core-sec = 3 s" 3.0 !finished

let test_ps_overcommit_halves_rate () =
  (* 16 unit-demand tasks on 8 cores: everyone runs at 0.5. *)
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:8.0 in
  let finish = Array.make 16 0.0 in
  for i = 0 to 15 do
    Sim.spawn sim (fun () ->
        Ps_resource.consume cpu ~demand:1.0 ~work:5.0;
        finish.(i) <- sec_f (Sim.now sim))
  done;
  Sim.run sim;
  Array.iter (fun f -> check_time "5 core-sec at rate 0.5" 10.0 f) finish

let test_ps_waterfill_mixed_demands () =
  (* cap 2.0, demands [0.5; 1.0; 1.0]: the small task gets 0.5 and the two
     big ones split the rest at 0.75 each. *)
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:2.0 in
  let t_small = ref 0.0 and t_big = ref 0.0 in
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:0.5 ~work:1.0;
      t_small := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:1.0 ~work:1.5;
      t_big := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:1.0 ~work:4.5;
      ());
  Sim.run sim;
  check_time "small task unimpeded" 2.0 !t_small;
  check_time "big task at 0.75" 2.0 !t_big

let test_ps_dynamic_join () =
  (* Task A alone for 1 s at rate 1, then B joins; on capacity 1 they share
     at 0.5. A has 1 unit left -> finishes at 1 + 2 = 3 s. *)
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:1.0 in
  let t_a = ref 0.0 in
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:1.0 ~work:2.0;
      t_a := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Ps_resource.consume cpu ~demand:1.0 ~work:2.0);
  Sim.run sim;
  check_time "join slows the first task" 3.0 !t_a;
  (* B: 1 unit done while sharing (t=1..3), 1 unit alone -> ends at 4 s. *)
  check_time "whole run" 4.0 (sec_f (Sim.now sim))

let test_ps_capacity_change () =
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:2.0 in
  let t_done = ref 0.0 in
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:2.0 ~work:4.0;
      t_done := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 1);
      Ps_resource.set_capacity cpu 1.0);
  Sim.run sim;
  (* 1 s at rate 2 (2 done), then 2 remaining at rate 1 -> ends at 3 s. *)
  check_time "capacity drop honoured" 3.0 !t_done

let test_ps_cancel () =
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:1.0 in
  let woke = ref 0.0 in
  Sim.spawn sim (fun () ->
      let task = Ps_resource.start cpu ~demand:1.0 ~work:100.0 in
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 2);
          Ps_resource.cancel cpu task);
      Ps_resource.await task;
      woke := sec_f (Sim.now sim));
  Sim.run sim;
  check_time "cancel wakes waiter" 2.0 !woke;
  Alcotest.(check int) "no active tasks" 0 (Ps_resource.active cpu)

let test_ps_zero_work () =
  let sim = Sim.create () in
  let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:1.0 in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      Ps_resource.consume cpu ~demand:1.0 ~work:0.0;
      ok := true);
  Sim.run sim;
  Alcotest.(check bool) "zero work completes" true !ok

let ps_work_conservation_prop =
  (* Total completion time of n equal tasks = total work / min(capacity,
     total demand): processor sharing conserves work. *)
  QCheck.Test.make ~name:"ps conserves work" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 1 8))
    (fun (n, cap) ->
      let sim = Sim.create () in
      let cpu = Ps_resource.create sim ~name:"cpu" ~capacity:(float_of_int cap) in
      let work = 4.0 in
      for _ = 1 to n do
        Sim.spawn sim (fun () -> Ps_resource.consume cpu ~demand:1.0 ~work)
      done;
      Sim.run sim;
      let expected = float_of_int n *. work /. Float.min (float_of_int cap) (float_of_int n) in
      Float.abs (sec_f (Sim.now sim) -. expected) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Rated *)

let rated_conservation_prop =
  (* Under an equal-share policy the set always serves exactly [capacity]
     units/s while any task is active, so the makespan of tasks started
     together is total work / capacity regardless of how the work is
     split — the rate limit is conserved, never overshot or leaked. *)
  QCheck.Test.make ~name:"rated equal-share conserves capacity" ~count:200
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 1 10) (int_range 1 50)))
    (fun (cap, works) ->
      let sim = Sim.create () in
      let capacity = float_of_int cap in
      let rerate set =
        let tasks = Rated.active set in
        let n = float_of_int (List.length tasks) in
        List.iter (fun task -> Rated.set_rate task (capacity /. n)) tasks
      in
      let set = Rated.create sim ~name:"net" ~rerate in
      Sim.spawn sim (fun () ->
          let tasks =
            List.map (fun w -> Rated.add set ~payload:() ~work:(float_of_int w)) works
          in
          List.iter Rated.await tasks);
      Sim.run sim;
      let total = float_of_int (List.fold_left ( + ) 0 works) in
      Float.abs (sec_f (Sim.now sim) -. (total /. capacity)) < 1e-6)

let rated_cancel_conservation_prop =
  (* Cancelling a task mid-flight must release its share to the others:
     serve [big] alone after cancelling [small] at t=0+ and the makespan
     is still (work actually served) / capacity. *)
  QCheck.Test.make ~name:"rated cancel re-rates survivors" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 2 40))
    (fun (cap, work) ->
      let sim = Sim.create () in
      let capacity = float_of_int cap in
      let rerate set =
        let tasks = Rated.active set in
        let n = float_of_int (List.length tasks) in
        List.iter (fun task -> Rated.set_rate task (capacity /. n)) tasks
      in
      let set = Rated.create sim ~name:"net" ~rerate in
      let w = float_of_int work in
      Sim.spawn sim (fun () ->
          let keep = Rated.add set ~payload:() ~work:w in
          let dropped = Rated.add set ~payload:() ~work:w in
          (* Let both run at capacity/2 for 1 s, then cancel one. *)
          Sim.sleep (Time.sec 1);
          Rated.cancel set dropped;
          Rated.await keep);
      Sim.run sim;
      (* keep: capacity/2 for 1 s, then full capacity for the rest. *)
      let expected = 1.0 +. ((w -. (capacity /. 2.0)) /. capacity) in
      Float.abs (sec_f (Sim.now sim) -. expected) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_and_filter () =
  let sim = Sim.create () in
  let trace = Trace.create sim in
  Sim.spawn sim (fun () ->
      Trace.record trace ~category:"vmm" "start";
      Sim.sleep (Time.sec 2);
      Trace.recordf trace ~category:"mpi" "rank %d done" 3);
  Sim.run sim;
  let all = Trace.records trace in
  Alcotest.(check int) "two records" 2 (List.length all);
  (match all with
  | [ a; b ] ->
    check_time "first at 0" 0.0 (sec_f a.Trace.at);
    check_time "second at 2" 2.0 (sec_f b.Trace.at);
    Alcotest.(check string) "formatted" "rank 3 done" b.Trace.message
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check int) "filter" 1 (List.length (Trace.by_category trace "mpi"))

let test_trace_pp_timeline () =
  let sim = Sim.create () in
  let trace = Trace.create sim in
  Sim.spawn sim (fun () ->
      Trace.record trace ~category:"vmm" "migration started";
      Sim.sleep (Time.ms 12500);
      Trace.recordf trace ~category:"ninja" "phase %s done" "precopy");
  Sim.run sim;
  Alcotest.(check string) "aligned rows, chronological"
    "[    0.00s] vmm        migration started\n[   12.50s] ninja      phase precopy done\n"
    (Format.asprintf "%a" Trace.pp_timeline trace);
  Alcotest.(check (list string)) "by_category keeps messages and order"
    [ "migration started" ]
    (List.map (fun r -> r.Trace.message) (Trace.by_category trace "vmm"));
  Alcotest.(check (list string)) "by_category of an absent category" []
    (List.map (fun r -> r.Trace.message) (Trace.by_category trace "mpi"));
  Trace.clear trace;
  Alcotest.(check int) "clear empties the log" 0 (List.length (Trace.records trace));
  Alcotest.(check string) "empty timeline renders nothing" ""
    (Format.asprintf "%a" Trace.pp_timeline trace)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests


(* ------------------------------------------------------------------ *)
(* Pool: domain-parallel task execution with deterministic collection *)

let test_pool_map_order () =
  Pool.with_pool ~size:4 (fun pool ->
      (* Uneven work so completion order differs from submission order. *)
      let f i =
        let acc = ref 0 in
        for _ = 1 to (17 - i) * 10_000 do
          incr acc
        done;
        ignore !acc;
        i * i
      in
      let xs = List.init 16 Fun.id in
      Alcotest.(check (list int)) "results line up with inputs" (List.map f xs)
        (Pool.map pool ~f xs))

let test_pool_size_one_serial () =
  Pool.with_pool ~size:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      Alcotest.(check (list int)) "runs in caller" [ 2; 4; 6 ]
        (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2; 3 ]))

exception Boom of int

let test_pool_exception_propagates () =
  Pool.with_pool ~size:2 (fun pool ->
      Alcotest.check_raises "first submitted failure wins" (Boom 1) (fun () ->
          ignore (Pool.map pool ~f:(fun i -> if i land 1 = 1 then raise (Boom i) else i) [ 0; 1; 2; 3 ]));
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "still usable" [ 1; 2 ] (Pool.map pool ~f:Fun.id [ 1; 2 ]))

let test_pool_nested_map () =
  (* A pooled task fans out again on the same pool: the helping await must
     keep everything moving even when tasks outnumber domains. *)
  Pool.with_pool ~size:2 (fun pool ->
      let grids =
        Pool.map pool
          ~f:(fun i -> Pool.map pool ~f:(fun j -> (10 * i) + j) [ 1; 2; 3 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int))) "nested results"
        [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]
        grids)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~size:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

(* Concurrent simulations on separate domains: the ambient-simulation
   reference is domain-local, so blocking calls inside one simulation's
   fibers must not observe another domain's simulation. *)
let test_pool_concurrent_sims () =
  Pool.with_pool ~size:4 (fun pool ->
      let run_sim seed =
        let sim = Sim.create ~seed:(Int64.of_int seed) () in
        let log = ref [] in
        for i = 1 to 5 do
          Sim.spawn sim (fun () ->
              Sim.sleep (Time.ms (i * seed));
              log := i :: !log)
        done;
        Sim.run sim;
        (Time.to_sec_f (Sim.now sim), List.rev !log)
      in
      let results = Pool.map pool ~f:run_sim [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
      List.iteri
        (fun idx (finished, log) ->
          let seed = idx + 1 in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "sim %d clock" seed)
            (float_of_int (5 * seed) /. 1000.0)
            finished;
          Alcotest.(check (list int)) "wakeup order" [ 1; 2; 3; 4; 5 ] log)
        results)

let test_pool_map_empty () =
  Pool.with_pool ~size:2 (fun pool ->
      Alcotest.(check (list int)) "empty in, empty out" [] (Pool.map pool ~f:(fun x -> x) []));
  Pool.with_pool ~size:1 (fun pool ->
      Alcotest.(check (list int)) "serial pool too" [] (Pool.map pool ~f:(fun x -> x) []))

let test_pool_zero_size_clamped () =
  (* size <= 0 clamps to 1 (caller-only) rather than spawning -1 domains
     or rejecting — a zero-width sweep configuration must stay usable. *)
  Pool.with_pool ~size:0 (fun pool ->
      Alcotest.(check int) "zero clamps to 1" 1 (Pool.size pool);
      Alcotest.(check (list int)) "usable" [ 2; 4 ] (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2 ]));
  Pool.with_pool ~size:(-3) (fun pool ->
      Alcotest.(check int) "negative clamps to 1" 1 (Pool.size pool))

let test_run_ctx_zero_size_pool () =
  Pool.with_pool ~size:0 (fun pool ->
      let ctx = Run_ctx.make ~pool () in
      Alcotest.(check int) "one job" 1 (Run_ctx.jobs ctx);
      Alcotest.(check (list int)) "map well-defined" [ 1; 4; 9 ]
        (Run_ctx.map ctx ~f:(fun x -> x * x) [ 1; 2; 3 ]);
      Alcotest.(check (list int)) "empty map" [] (Run_ctx.map ctx ~f:(fun x -> x) []))

(* Run_ctx.map must preserve order both serial and pooled. *)
let test_run_ctx_map () =
  let xs = List.init 10 Fun.id in
  let serial = Run_ctx.map Run_ctx.default ~f:(fun x -> x + 1) xs in
  let pooled =
    Pool.with_pool ~size:3 (fun pool ->
        Run_ctx.map (Run_ctx.make ~pool ()) ~f:(fun x -> x + 1) xs)
  in
  Alcotest.(check (list int)) "serial" (List.map succ xs) serial;
  Alcotest.(check (list int)) "pooled equals serial" serial pooled;
  Alcotest.(check int) "jobs serial" 1 (Run_ctx.jobs Run_ctx.default)

let () =
  Alcotest.run "ninja_engine"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arith" `Quick test_time_arith;
          Alcotest.test_case "pp" `Quick test_time_pp;
          Alcotest.test_case "invalid" `Quick test_time_invalid;
        ] );
      ( "prng",
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic
        :: Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity
        :: Alcotest.test_case "split independence" `Quick test_prng_split_independent
        :: Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean
        :: qsuite [ prng_range_prop; prng_shuffle_prop ] );
      ( "pheap",
        Alcotest.test_case "fifo at same key" `Quick test_pheap_fifo_at_same_key
        :: Alcotest.test_case "pop empty" `Quick test_pheap_empty_pop
        :: qsuite [ pheap_sorted_prop; pheap_random_ops_prop ] );
      ( "sim",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sim_sleep_ordering;
          Alcotest.test_case "fifo same instant" `Quick test_sim_fifo_same_instant;
          Alcotest.test_case "nested spawn clock" `Quick test_sim_nested_spawn_and_clock;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run_until resumable" `Quick test_sim_run_until;
          Alcotest.test_case "deadlock detection" `Quick test_sim_deadlock_detection;
          Alcotest.test_case "schedule in past" `Quick test_sim_schedule_past_rejected;
          Alcotest.test_case "exception propagates" `Quick test_sim_exception_propagates;
          Alcotest.test_case "deterministic replay" `Quick test_sim_determinism;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks;
          Alcotest.test_case "readers fifo" `Quick test_ivar_multiple_readers_fifo;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "blocking recv" `Quick test_channel_blocking_recv;
          Alcotest.test_case "try_recv" `Quick test_channel_try_recv;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutex" `Quick test_semaphore_mutex;
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "fifo handoff" `Quick test_semaphore_fifo_handoff;
        ] );
      ( "ps_resource",
        Alcotest.test_case "single exact" `Quick test_ps_single_task_exact
        :: Alcotest.test_case "overcommit" `Quick test_ps_overcommit_halves_rate
        :: Alcotest.test_case "waterfill mixed" `Quick test_ps_waterfill_mixed_demands
        :: Alcotest.test_case "dynamic join" `Quick test_ps_dynamic_join
        :: Alcotest.test_case "capacity change" `Quick test_ps_capacity_change
        :: Alcotest.test_case "cancel" `Quick test_ps_cancel
        :: Alcotest.test_case "zero work" `Quick test_ps_zero_work
        :: qsuite [ ps_work_conservation_prop ] );
      ("rated", qsuite [ rated_conservation_prop; rated_cancel_conservation_prop ]);
      ( "trace",
        [
          Alcotest.test_case "records and filter" `Quick test_trace_records_and_filter;
          Alcotest.test_case "timeline rendering" `Quick test_trace_pp_timeline;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "size one serial" `Quick test_pool_size_one_serial;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown_rejects;
          Alcotest.test_case "concurrent sims (DLS)" `Quick test_pool_concurrent_sims;
          Alcotest.test_case "map on empty list" `Quick test_pool_map_empty;
          Alcotest.test_case "zero size clamped" `Quick test_pool_zero_size_clamped;
          Alcotest.test_case "run_ctx zero-size pool" `Quick test_run_ctx_zero_size_pool;
          Alcotest.test_case "run_ctx map" `Quick test_run_ctx_map;
        ] );
    ]
