(* Integration tests for Ninja migration: the full fallback/recovery cycle
   of Fig. 2, the overhead breakdown, and the paper's two headline claims
   (no normal-operation overhead; no process restarts across interconnect
   changes). *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_metrics
open Ninja_mpi
open Ninja_core

let check_near msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

let sec = Time.to_sec_f

let setup_agc () =
  let sim = Sim.create () in
  (sim, Cluster.create sim ~spec:Spec.agc ())

let ib_hosts cluster n = List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "ib%02d" i))

let eth_hosts cluster n =
  List.init n (fun i -> Cluster.find_node cluster (Printf.sprintf "eth%02d" i))

(* A steady iteration workload that records per-iteration state; runs until
   simulated time [until]. *)
let iteration_workload ~until ~log ctx =
  while Mpi.wtime ctx < until do
    Mpi.compute ctx ~seconds:0.3;
    Mpi.allreduce ctx ~bytes:2.0e8;
    Mpi.checkpoint_point ctx;
    if Mpi.rank ctx = 0 then
      log := (Mpi.wtime ctx, Option.map Btl.kind_name (Mpi.current_transport ctx ~peer:1)) :: !log
  done

let test_setup_attaches_hcas () =
  let _, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2 @ eth_hosts cluster 1) () in
  match Ninja.vms ninja with
  | [ v0; v1; v2 ] ->
    Alcotest.(check bool) "ib hosts get HCAs" true
      (Vm.has_bypass_device v0 && Vm.has_bypass_device v1);
    Alcotest.(check bool) "eth host does not" false (Vm.has_bypass_device v2)
  | _ -> Alcotest.fail "expected 3 VMs"

let test_fallback_switches_transport () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 4) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:120.0 ~log));
  let breakdown = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      breakdown := Ninja.fallback ninja ~dsts:(eth_hosts cluster 4) ();
      Ninja.wait_job ninja);
  Sim.run sim;
  (* Transport before the migration: openib; after: tcp. *)
  let before = List.filter (fun (t, _) -> t < 10.0) (List.rev !log) in
  let after = List.filter (fun (t, _) -> t > sec !breakdown.Breakdown.total +. 10.0) (List.rev !log) in
  Alcotest.(check bool) "iterations before and after" true
    (List.length before > 2 && List.length after > 2);
  List.iter (fun (_, tr) -> Alcotest.(check (option string)) "openib before" (Some "openib") tr) before;
  List.iter (fun (_, tr) -> Alcotest.(check (option string)) "tcp after" (Some "tcp") tr) after;
  (* All VMs on the Ethernet cluster now. *)
  List.iter
    (fun vm -> Alcotest.(check bool) "on eth rack" false (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja)

let test_fallback_breakdown_shape () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 4) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:100.0 ~log));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      b := Ninja.fallback ninja ~dsts:(eth_hosts cluster 4) ();
      Ninja.wait_job ninja);
  Sim.run sim;
  let b = !b in
  (* Detach: IB detach under migration noise (~2.75 x 3.1). *)
  check_near "detach with noise" 1.0
    (Time.to_sec_f Calibration.detach_ib *. Calibration.hotplug_noise_factor)
    (sec b.Breakdown.detach);
  (* No IB at the destination: nothing to attach, no link training. *)
  Alcotest.(check bool) "attach ~0" true (sec b.Breakdown.attach < 0.5);
  Alcotest.(check bool) "linkup 0 on Ethernet" true (sec b.Breakdown.linkup < 0.1);
  (* 20 GB VM, mostly zero pages: tens of seconds of precopy. *)
  Alcotest.(check bool) "migration dominates" true
    (sec b.Breakdown.migration > 10.0 && sec b.Breakdown.migration < 60.0);
  Alcotest.(check bool) "coordination sub-second..ish" true (sec b.Breakdown.coordination < 2.0)

let test_recovery_restores_ib () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:250.0 ~log));
  let recovery_b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      ignore (Ninja.fallback ninja ~dsts:(eth_hosts cluster 2) ());
      Sim.sleep (Time.sec 5);
      recovery_b := Ninja.recovery ninja ~dsts:(ib_hosts cluster 2) ();
      Ninja.wait_job ninja);
  Sim.run sim;
  let b = !recovery_b in
  (* Recovery re-attaches the HCA: ~30 s of link training dominates. *)
  check_near "linkup ~29.85" 1.0 (Time.to_sec_f Calibration.linkup_ib) (sec b.Breakdown.linkup);
  Alcotest.(check bool) "attach > 0" true (sec b.Breakdown.attach > 1.0);
  (* And the job is back on openib afterwards. *)
  (match List.rev !log with
  | [] -> Alcotest.fail "no iterations"
  | entries ->
    let _, last_transport = List.nth entries (List.length entries - 1) in
    Alcotest.(check (option string)) "openib restored" (Some "openib") last_transport);
  List.iter
    (fun vm -> Alcotest.(check bool) "back on IB rack" true (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja)

let test_self_migration_matches_table2 () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:150.0 ~log));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      b := Ninja.self_migration ninja;
      Ninja.wait_job ninja);
  Sim.run sim;
  let b = !b in
  (* Self-migration: no "migration noise", so hotplug = detach + attach
     of the IB HCA ~ 3.88 s (Table II row 1) and linkup ~ 29.9 s. *)
  check_near "hotplug ~3.88" 0.3 3.88 (sec (Breakdown.hotplug b));
  check_near "linkup ~29.9" 1.0 29.91 (sec b.Breakdown.linkup)

let test_no_overhead_during_normal_operation () =
  (* Paper claim 1: with the Ninja machinery in place but no migration
     issued, iteration times equal a plain (machinery-free) run. *)
  let run_with_ninja with_ninja =
    let sim, cluster = setup_agc () in
    let hosts = ib_hosts cluster 4 in
    let done_at = ref 0.0 in
    let body ctx =
      for _ = 1 to 20 do
        Mpi.compute ctx ~seconds:0.3;
        Mpi.allreduce ctx ~bytes:2.0e8
      done;
      if Mpi.rank ctx = 0 then done_at := Mpi.wtime ctx
    in
    if with_ninja then begin
      let ninja = Ninja.setup cluster ~hosts () in
      ignore (Ninja.launch ninja ~procs_per_vm:1 body);
      Sim.spawn sim (fun () -> Ninja.wait_job ninja)
    end
    else begin
      let members =
        List.mapi
          (fun i host ->
            let vm =
              Vm.create cluster ~name:(Printf.sprintf "plain%d" i) ~host ~vcpus:8
                ~mem_bytes:(Units.gb 20.0) ()
            in
            Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca);
            (vm, Ninja_guestos.Guest.boot vm))
          hosts
      in
      let job = Runtime.mpirun cluster ~members ~procs_per_vm:1 body in
      Sim.spawn sim (fun () -> Runtime.wait job)
    end;
    Sim.run sim;
    !done_at
  in
  let plain = run_with_ninja false in
  let ninja = run_with_ninja true in
  check_near "identical performance" 1e-6 plain ninja

let test_consolidation_two_vms_per_host () =
  (* Fig. 8's "2 hosts (TCP)": consolidating 2 VMs onto 1 host halves the
     compute rate of a CPU-saturating job. *)
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let iter_times = ref [] in
  let body ctx =
    while Mpi.wtime ctx < 200.0 do
      let t0 = Mpi.wtime ctx in
      Mpi.compute ctx ~seconds:2.0;
      Mpi.allreduce ctx ~bytes:1.0e6;
      Mpi.checkpoint_point ctx;
      if Mpi.rank ctx = 0 then iter_times := (t0, Mpi.wtime ctx -. t0) :: !iter_times
    done
  in
  ignore (Ninja.launch ninja ~procs_per_vm:8 body);
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 20);
      (* Consolidate both VMs onto eth00. *)
      let dst = Cluster.find_node cluster "eth00" in
      b := Ninja.migrate ninja ~plan:(fun _ -> dst) ();
      Ninja.wait_job ninja);
  Sim.run sim;
  let after_migration =
    List.filter (fun (t0, _) -> t0 > 20.0 +. sec !b.Breakdown.total) !iter_times
  in
  let before = List.filter (fun (t0, _) -> t0 < 18.0) !iter_times in
  let mean l = Stats.mean (List.map snd l) in
  Alcotest.(check bool) "samples on both sides" true
    (List.length before > 1 && List.length after_migration > 1);
  (* 16 single-core compute tasks on 8 cores: ~2x slower iterations. *)
  check_near "overcommit ratio ~2" 0.3 2.0 (mean after_migration /. mean before)

let test_checkpoint_to_store () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let store = Snapshot.create_store cluster in
  let iterations = ref 0 in
  ignore
    (Ninja.launch ninja ~procs_per_vm:1 (fun ctx ->
         while Mpi.wtime ctx < 120.0 do
           Mpi.compute ctx ~seconds:0.5;
           Mpi.allreduce ctx ~bytes:1.0e7;
           Mpi.checkpoint_point ctx;
           if Mpi.rank ctx = 0 then incr iterations
         done));
  let snaps = ref [] in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      snaps := Ninja.checkpoint_to_store ninja store ~name_prefix:"ckpt";
      Ninja.wait_job ninja);
  Sim.run sim;
  Alcotest.(check int) "one snapshot per VM" 2 (List.length !snaps);
  Alcotest.(check bool) "job continued after checkpoint" true (!iterations > 50);
  Alcotest.(check bool) "snapshots findable" true (Snapshot.find store ~name:"ckpt-0" <> None)

let test_script_fig5_flow () =
  (* The literal Fig. 5 sequence: wait_all; device_detach; migration;
     signal — then recovery with device_attach. *)
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:220.0 ~log));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      (* 1. fallback migration *)
      let ctl = Script.controller ninja in
      Script.wait_all ctl;
      Script.device_detach ctl ~tag:"vf0";
      Script.migration ctl ~src:[ "ib00"; "ib01" ] ~dst:[ "eth00"; "eth01" ];
      Script.signal ctl;
      ignore (Script.quit ctl);
      Sim.sleep (Time.sec 5);
      (* 2. recovery migration *)
      let ctl = Script.controller ninja in
      Script.wait_all ctl;
      Script.migration ctl ~src:[ "eth00"; "eth01" ] ~dst:[ "ib00"; "ib01" ];
      Script.device_attach ctl ~host:"04:00.0" ~tag:"vf0";
      Script.signal ctl;
      b := Script.quit ctl;
      Ninja.wait_job ninja);
  Sim.run sim;
  Alcotest.(check bool) "recovery linkup ~30s" true (sec !b.Breakdown.linkup > 25.0);
  List.iter
    (fun vm -> Alcotest.(check bool) "home again" true (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja);
  match List.rev !log with
  | [] -> Alcotest.fail "no iterations"
  | entries ->
    let _, last = List.nth entries (List.length entries - 1) in
    Alcotest.(check (option string)) "openib at the end" (Some "openib") last

let test_fence_protocols_equivalent () =
  (* The faithful multi-fence protocol (Fig. 5) and the single-fence
     variant must measure the same overhead (within the extra hypercall
     round-trips), and multi-fence must pause/resume the VMs once per
     phase. *)
  let run protocol =
    let sim, cluster = setup_agc () in
    let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
    let log = ref [] in
    ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:150.0 ~log));
    let b = ref Breakdown.zero in
    Sim.spawn sim (fun () ->
        Sim.sleep (Time.sec 5);
        b := Ninja.migrate ninja ~plan:(fun vm -> Vm.host vm) ~protocol ();
        Ninja.wait_job ninja);
    Sim.run sim;
    let fences =
      Trace.by_category (Cluster.trace cluster) "symvirt"
      |> List.filter (fun r ->
             String.length r.Trace.message >= 5 && String.sub r.Trace.message 0 5 = "fence")
      |> List.length
    in
    (!b, fences)
  in
  let multi, multi_fences = run `Multi_fence in
  let single, single_fences = run `Single_fence in
  Alcotest.(check int) "three fences" 3 multi_fences;
  Alcotest.(check int) "one fence" 1 single_fences;
  check_near "equal totals" 0.5 (sec single.Breakdown.total) (sec multi.Breakdown.total);
  check_near "equal hotplug" 0.1
    (sec (Breakdown.hotplug single))
    (sec (Breakdown.hotplug multi));
  check_near "equal linkup" 0.5 (sec single.Breakdown.linkup) (sec multi.Breakdown.linkup)

let test_script_lang_parse () =
  (match Script_lang.parse Script_lang.fig5 with
  | Ok commands ->
    Alcotest.(check (list string)) "fig5 commands"
      [
        "wait_all"; "device_detach vf0"; "migration ib00,ib01 eth00,eth01"; "signal";
        "wait_all"; "migration eth00,eth01 ib00,ib01"; "device_attach 04:00.0 vf0"; "signal";
        "quit";
      ]
      (List.map Script_lang.command_to_string commands)
  | Error msg -> Alcotest.failf "fig5 failed to parse: %s" msg);
  (match Script_lang.parse "wait_all\nfrobnicate x\n" with
  | Error msg -> Alcotest.(check string) "line number" "line 2: unknown command \"frobnicate\"" msg
  | Ok _ -> Alcotest.fail "expected parse error");
  match Script_lang.parse "migration ib00,ib01 eth00\n" with
  | Error msg -> Alcotest.(check string) "length check" "line 1: hostlist lengths differ" msg
  | Ok _ -> Alcotest.fail "expected parse error"

let test_script_lang_execute () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:220.0 ~log));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      let commands = Result.get_ok (Script_lang.parse Script_lang.fig5) in
      b := Script_lang.execute ninja commands;
      Ninja.wait_job ninja);
  Sim.run sim;
  (* Fallback + recovery happened: back on IB, with one recovery linkup. *)
  List.iter
    (fun vm -> Alcotest.(check bool) "home again" true (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja);
  Alcotest.(check bool) "one linkup accumulated" true
    (sec !b.Breakdown.linkup > 25.0 && sec !b.Breakdown.linkup < 35.0)

let test_script_lang_protocol_misuse () =
  let sim, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (iteration_workload ~until:20.0 ~log));
  let failed = ref false in
  Sim.spawn sim (fun () ->
      (match Script_lang.execute ninja [ Script_lang.Device_detach "vf0" ] with
      | _ -> ()
      | exception Failure _ -> failed := true);
      Ninja.wait_job ninja);
  Sim.run sim;
  Alcotest.(check bool) "op before wait_all rejected" true !failed

let test_migrate_requires_launch () =
  let _, cluster = setup_agc () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  Alcotest.check_raises "not launched" Ninja.Not_launched (fun () ->
      ignore (Ninja.self_migration ninja))

let () =
  Alcotest.run "ninja_core"
    [
      ( "ninja",
        [
          Alcotest.test_case "setup attaches HCAs" `Quick test_setup_attaches_hcas;
          Alcotest.test_case "fallback switches transport" `Quick test_fallback_switches_transport;
          Alcotest.test_case "fallback breakdown" `Quick test_fallback_breakdown_shape;
          Alcotest.test_case "recovery restores IB" `Quick test_recovery_restores_ib;
          Alcotest.test_case "self-migration ~ Table II" `Quick test_self_migration_matches_table2;
          Alcotest.test_case "no normal-operation overhead" `Quick
            test_no_overhead_during_normal_operation;
          Alcotest.test_case "consolidation over-commit" `Quick test_consolidation_two_vms_per_host;
          Alcotest.test_case "checkpoint to store" `Quick test_checkpoint_to_store;
          Alcotest.test_case "Fig.5 script flow" `Quick test_script_fig5_flow;
          Alcotest.test_case "fence protocols equivalent" `Quick test_fence_protocols_equivalent;
          Alcotest.test_case "script language parse" `Quick test_script_lang_parse;
          Alcotest.test_case "script language execute" `Quick test_script_lang_execute;
          Alcotest.test_case "script protocol misuse" `Quick test_script_lang_protocol_misuse;
          Alcotest.test_case "migrate requires launch" `Quick test_migrate_requires_launch;
        ] );
    ]
