(* Tests for the metrics library: breakdowns, tables, stats. *)

open Ninja_engine
open Ninja_metrics

let check_float = Alcotest.(check (float 1e-9))

let breakdown =
  {
    Breakdown.coordination = Time.of_sec_f 0.5;
    detach = Time.of_sec_f 2.75;
    migration = Time.of_sec_f 28.5;
    attach = Time.of_sec_f 1.13;
    linkup = Time.of_sec_f 29.85;
    retry = Time.zero;
    total = Time.of_sec_f 70.0;
  }

let test_breakdown_hotplug () =
  check_float "hotplug = detach + attach" 3.88 (Time.to_sec_f (Breakdown.hotplug breakdown))

let test_breakdown_overhead_sum () =
  check_float "sum of segments" (0.5 +. 3.88 +. 28.5 +. 29.85)
    (Time.to_sec_f (Breakdown.overhead_sum breakdown))

let test_breakdown_add () =
  let doubled = Breakdown.add breakdown breakdown in
  check_float "add sums fields" 57.0 (Time.to_sec_f doubled.Breakdown.migration);
  check_float "zero is neutral" 28.5
    (Time.to_sec_f (Breakdown.add breakdown Breakdown.zero).Breakdown.migration)

let test_breakdown_row () =
  let row = Breakdown.to_row breakdown in
  Alcotest.(check (list string)) "labels"
    [ "coordination"; "hotplug"; "migration"; "linkup"; "total" ]
    (List.map fst row);
  check_float "hotplug cell" 3.88 (List.assoc "hotplug" row)

let test_breakdown_retry_row () =
  let b = { breakdown with Breakdown.retry = Time.of_sec_f 1.5 } in
  let row = Breakdown.to_row b in
  Alcotest.(check (list string)) "labels gain retry when nonzero"
    [ "coordination"; "hotplug"; "migration"; "linkup"; "retry"; "total" ]
    (List.map fst row);
  check_float "retry cell" 1.5 (List.assoc "retry" row);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let with_retry = Format.asprintf "%a" Breakdown.pp b in
  let without = Format.asprintf "%a" Breakdown.pp breakdown in
  Alcotest.(check bool) "pp mentions retry when nonzero" true (contains with_retry "retry=");
  Alcotest.(check bool) "pp omits retry when zero" false (contains without "retry=")

let test_breakdown_zero () =
  check_float "zero total" 0.0 (Time.to_sec_f Breakdown.zero.Breakdown.total);
  check_float "zero hotplug" 0.0 (Time.to_sec_f (Breakdown.hotplug Breakdown.zero));
  check_float "zero overhead sum" 0.0 (Time.to_sec_f (Breakdown.overhead_sum Breakdown.zero));
  let row = Breakdown.to_row Breakdown.zero in
  Alcotest.(check bool) "zero row omits retry" false (List.mem_assoc "retry" row);
  let z = Breakdown.add Breakdown.zero Breakdown.zero in
  check_float "zero + zero = zero" 0.0 (Time.to_sec_f (Breakdown.overhead_sum z))

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_float_row t "row2" [ 1.234 ];
  let s = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check int) "two rows" 2 (List.length (Table.rows t));
  Alcotest.(check (list string)) "float row formatted" [ "row2"; "1.23" ]
    (List.nth (Table.rows t) 1)

let test_table_arity_check () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: cell count does not match columns")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,1"; "plain" ];
  Alcotest.(check string) "escaped csv" "a,b\n\"x,1\",plain\n" (Table.to_csv t)

let test_table_empty () =
  (* A table with no rows still renders its header and produces a
     header-only CSV — experiment sweeps can legitimately come back
     empty. *)
  let t = Table.create ~title:"Empty" ~columns:[ "a"; "long-header" ] in
  Alcotest.(check (list (list string))) "no rows" [] (Table.rows t);
  let s = Format.asprintf "%a" Table.pp t in
  Alcotest.(check string) "render: title, header, rule"
    "Empty\na  long-header\n-  -----------\n" s;
  Alcotest.(check string) "csv: header only" "a,long-header\n" (Table.to_csv t)

let test_table_csv_quotes_and_newlines () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "say \"hi\""; "two\nlines" ];
  Alcotest.(check string) "quotes doubled, newline cell quoted"
    "a,b\n\"say \"\"hi\"\"\",\"two\nlines\"\n" (Table.to_csv t)

let test_stats_single_sample () =
  check_float "mean of one" 4.2 (Stats.mean [ 4.2 ]);
  check_float "min of one" 4.2 (Stats.minimum [ 4.2 ]);
  check_float "max of one" 4.2 (Stats.maximum [ 4.2 ]);
  check_float "stddev of one" 0.0 (Stats.stddev [ 4.2 ]);
  Alcotest.check_raises "empty stddev" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Stats.stddev []));
  Alcotest.check_raises "empty minimum" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Stats.minimum []));
  Alcotest.check_raises "best_of 0" (Invalid_argument "Stats.best_of: n must be positive")
    (fun () -> ignore (Stats.best_of 0 (fun () -> 1.0)))

let test_stats () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Stats.mean []))

let test_percentile () =
  let l = List.map float_of_int [ 15; 20; 35; 40; 50 ] in
  (* Nearest-rank: the smallest sample with at least p% of the sample at
     or below it — always an actual sample value. *)
  check_float "p0 is the minimum" 15.0 (Stats.percentile 0.0 l);
  check_float "p30 (textbook nearest-rank)" 20.0 (Stats.percentile 30.0 l);
  check_float "p40 lands on a sample" 20.0 (Stats.percentile 40.0 l);
  check_float "p50 of five" 35.0 (Stats.percentile 50.0 l);
  check_float "p100 is the maximum" 50.0 (Stats.percentile 100.0 l);
  check_float "singleton" 7.0 (Stats.percentile 99.0 [ 7.0 ]);
  check_float "unsorted input" 35.0 (Stats.percentile 50.0 [ 50.0; 15.0; 35.0; 40.0; 20.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample") (fun () ->
      ignore (Stats.percentile 50.0 []));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p must be within [0, 100]") (fun () ->
      ignore (Stats.percentile 101.0 [ 1.0 ]))

let test_best_of () =
  let calls = ref 0 in
  let v =
    Stats.best_of 3 (fun () ->
        incr calls;
        float_of_int !calls)
  in
  check_float "keeps the minimum" 1.0 v;
  Alcotest.(check int) "ran n times" 3 !calls

let stats_props =
  [
    QCheck.Test.make ~name:"min <= mean <= max" ~count:300
      QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
      (fun l ->
        let l = List.map Float.abs l in
        Stats.minimum l <= Stats.mean l +. 1e-9 && Stats.mean l <= Stats.maximum l +. 1e-9);
    QCheck.Test.make ~name:"stddev non-negative" ~count:300
      QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
      (fun l -> Stats.stddev l >= 0.0);
    QCheck.Test.make ~name:"percentile is always a sample member" ~count:300
      QCheck.(
        pair
          (list_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
          (float_bound_inclusive 100.0))
      (fun (l, p) -> List.mem (Stats.percentile p l) l);
  ]

let () =
  Alcotest.run "ninja_metrics"
    [
      ( "breakdown",
        [
          Alcotest.test_case "hotplug" `Quick test_breakdown_hotplug;
          Alcotest.test_case "overhead sum" `Quick test_breakdown_overhead_sum;
          Alcotest.test_case "add" `Quick test_breakdown_add;
          Alcotest.test_case "to_row" `Quick test_breakdown_row;
          Alcotest.test_case "retry row only when nonzero" `Quick test_breakdown_retry_row;
          Alcotest.test_case "zero element" `Quick test_breakdown_zero;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "csv escaping" `Quick test_table_csv;
          Alcotest.test_case "empty table" `Quick test_table_empty;
          Alcotest.test_case "csv quotes and newlines" `Quick test_table_csv_quotes_and_newlines;
        ] );
      ( "stats",
        Alcotest.test_case "basics" `Quick test_stats
        :: Alcotest.test_case "single sample" `Quick test_stats_single_sample
        :: Alcotest.test_case "nearest-rank percentile" `Quick test_percentile
        :: Alcotest.test_case "best_of" `Quick test_best_of
        :: List.map QCheck_alcotest.to_alcotest stats_props );
    ]
