(* Control-plane tests: arrival processes, fair queues, footprint locks,
   the service loop (determinism, faults, requeue-not-strand), the
   experiment's parallel/serial identity and the CLI exit codes. *)

open Ninja_engine
open Ninja_hardware
open Ninja_controlplane

(* {1 Arrivals} *)

let times ~seed process ~horizon =
  Ninja_workloads.Arrivals.times (Prng.create ~seed) process ~horizon

let test_arrivals_deterministic () =
  let p = Ninja_workloads.Arrivals.Poisson { rate = 0.5 } in
  let a = times ~seed:42L p ~horizon:1000.0 in
  let b = times ~seed:42L p ~horizon:1000.0 in
  Alcotest.(check (list (float 0.0))) "same seed, same instants" a b;
  let c = times ~seed:43L p ~horizon:1000.0 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_arrivals_shape () =
  let check_sorted name ts =
    Alcotest.(check bool) (name ^ " sorted") true (List.sort compare ts = ts);
    List.iter
      (fun t -> Alcotest.(check bool) (name ^ " in horizon") true (t >= 0.0 && t < 500.0))
      ts
  in
  let poisson = times ~seed:7L (Poisson { rate = 0.2 }) ~horizon:500.0 in
  check_sorted "poisson" poisson;
  (* Mean count is rate*horizon = 100; a 4-sigma excursion is < 40. *)
  let n = List.length poisson in
  Alcotest.(check bool) "poisson count plausible" true (n > 60 && n < 140);
  let bursts =
    times ~seed:7L (Bursts { period = 100.0; size = 3; spread = 5.0 }) ~horizon:500.0
  in
  check_sorted "bursts" bursts;
  Alcotest.(check int) "bursts count" 15 (List.length bursts);
  let overlay =
    times ~seed:7L
      (Overlay [ Poisson { rate = 0.2 }; Bursts { period = 100.0; size = 3; spread = 5.0 } ])
      ~horizon:500.0
  in
  check_sorted "overlay" overlay

let test_arrivals_validation () =
  let bad p =
    Alcotest.(check bool) "rejected" true
      (Result.is_error (Ninja_workloads.Arrivals.validate p))
  in
  bad (Poisson { rate = -1.0 });
  bad (Bursts { period = 0.0; size = 3; spread = 1.0 });
  bad (Bursts { period = 10.0; size = -1; spread = 1.0 });
  bad (Overlay []);
  Alcotest.(check bool) "good accepted" true
    (Result.is_ok (Ninja_workloads.Arrivals.validate (Poisson { rate = 0.0 })))

(* {1 Fair queue} *)

let test_fair_queue_order () =
  let q = Fair_queue.create () in
  Fair_queue.register q ~name:"a" ~weight:2.0;
  Fair_queue.register q ~name:"b" ~weight:1.0;
  Fair_queue.push q ~tenant:"a" 1;
  Fair_queue.push q ~tenant:"a" 2;
  Fair_queue.push q ~tenant:"b" 3;
  Alcotest.(check int) "total length" 3 (Fair_queue.length q);
  (* FIFO within a tenant. *)
  Alcotest.(check int) "a head" 1 (Fair_queue.pop q ~tenant:"a");
  Fair_queue.push_front q ~tenant:"a" 1;
  Alcotest.(check int) "push_front restores the head" 1 (Fair_queue.pop q ~tenant:"a");
  (* Equal work costs a weight-2 tenant half the virtual time. *)
  Fair_queue.charge q ~tenant:"a" 4.0;
  Fair_queue.charge q ~tenant:"b" 4.0;
  let vt name = List.assoc name (List.map (fun (n, v, _) -> (n, v)) (Fair_queue.heads q)) in
  Alcotest.(check (float 1e-9)) "a vtime" 2.0 (vt "a");
  Alcotest.(check (float 1e-9)) "b vtime" 4.0 (vt "b")

let test_fair_queue_idle_rejoin () =
  let q = Fair_queue.create () in
  Fair_queue.register q ~name:"busy" ~weight:1.0;
  Fair_queue.register q ~name:"idle" ~weight:1.0;
  Fair_queue.push q ~tenant:"busy" 0;
  Fair_queue.charge q ~tenant:"busy" 10.0;
  (* The idle tenant rejoins at the pack's virtual now, not at 0 — it must
     not replay banked credit. *)
  Fair_queue.push q ~tenant:"idle" 1;
  let heads = List.map (fun (n, v, _) -> (n, v)) (Fair_queue.heads q) in
  Alcotest.(check (float 1e-9)) "rejoins level" 10.0 (List.assoc "idle" heads)

(* {1 Locks} *)

let test_locks () =
  let l = Locks.create () in
  let c1 =
    Option.get
      (Locks.try_claim l ~batch:1 ~vms:[ "vm0"; "vm1" ] ~hosts:[ 1; 2 ]
         ~reserved:[ (2, 8e9) ])
  in
  Alcotest.(check bool) "vm0 taken" false (Locks.vm_free l "vm0");
  Alcotest.(check bool) "host 2 taken" false (Locks.host_free l 2);
  Alcotest.(check bool) "host 2 free for owner" true (Locks.host_free l ~batch:1 2);
  Alcotest.(check (float 0.0)) "reservation" 8e9 (Locks.reserved_bytes l 2);
  (* All-or-nothing: a claim touching any taken VM or host fails whole. *)
  Alcotest.(check bool) "overlapping claim refused" true
    (Locks.try_claim l ~batch:2 ~vms:[ "vm2" ] ~hosts:[ 2; 3 ] ~reserved:[] = None);
  Alcotest.(check bool) "host 3 untouched by failed claim" true (Locks.host_free l 3);
  Locks.extend l c1 ~host:4 ~bytes:1e9;
  Alcotest.(check bool) "extended host taken" false (Locks.host_free l 4);
  let c2 = Option.get (Locks.try_claim l ~batch:2 ~vms:[ "vm2" ] ~hosts:[ 3 ] ~reserved:[]) in
  Alcotest.check_raises "extend onto another batch's host"
    (Invalid_argument "Locks.extend: node 3 is claimed by another batch") (fun () ->
      Locks.extend l c1 ~host:3 ~bytes:1.0);
  Locks.release l c1;
  Locks.release l c1;
  (* idempotent *)
  Alcotest.(check bool) "released" true
    (Locks.vm_free l "vm0" && Locks.host_free l 2 && Locks.host_free l 4);
  Alcotest.(check (float 0.0)) "reservation returned" 0.0 (Locks.reserved_bytes l 2);
  Locks.release l c2;
  Alcotest.(check (list int)) "nothing claimed" [] (Locks.claimed_hosts l)

(* {1 Service helpers} *)

type harness = {
  sim : Sim.t;
  cluster : Cluster.t;
  svc : Service.t;
  checker : Ninja_check.Checker.t;
}

let harness ?(spec = Spec.make ~ib_nodes:2 ~eth_nodes:2 ()) ?(seed = 11L) ?(faults = [])
    ?(config = Service.default_config) ?(tenants = [ ("t0", 2.0); ("t1", 1.0) ])
    ?(vms_per_tenant = 1) () =
  let sim = Sim.create ~seed () in
  let cluster = Cluster.create sim ~spec () in
  List.iter
    (fun text ->
      match Ninja_faults.Injector.parse_spec text with
      | Ok spec -> Ninja_faults.Injector.arm_spec (Cluster.injector cluster) spec
      | Error msg -> failwith msg)
    faults;
  let specs =
    Service.boot_tenants cluster ~tenants ~vms_per_tenant ~mem_bytes:(Units.gb 8.0)
  in
  let svc = Service.create cluster ~config ~tenants:specs () in
  let checker = Ninja_check.Checker.install cluster ~vms:(Service.vms svc) in
  { sim; cluster; svc; checker }

let finish h =
  Sim.run h.sim;
  Ninja_check.Checker.check_finish h.checker;
  Ninja_check.Checker.detach h.checker;
  Alcotest.(check (list string))
    "no invariant violations" []
    (List.map
       (fun v -> Format.asprintf "%a" Ninja_check.Checker.pp_violation v)
       (Ninja_check.Checker.violations h.checker));
  match Service.accounting h.svc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "accounting: %s" msg

let outcome_names h =
  List.map (fun (_, o) -> Service.outcome_name o) (Service.outcomes h.svc)

(* {1 Service} *)

let test_service_smoke () =
  let h = harness () in
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t0" ~kind:Request.Fallback ());
  Service.inject h.svc ~after:(Time.sec 100) (fun svc ->
      Service.make svc ~tenant:"t0" ~kind:Request.Return ());
  Service.inject h.svc ~after:(Time.sec 200) (fun svc ->
      Service.make svc ~tenant:"ops" ~kind:(Request.Evacuate { node = "ib01" }) ());
  finish h;
  Alcotest.(check (list string))
    "all completed"
    [ "completed"; "completed"; "completed" ]
    (outcome_names h);
  (* The fallback moved t0-vm0 off InfiniBand, the return brought it back,
     the evacuation moved t1-vm0 off ib01. *)
  Alcotest.(check bool) "t0-vm0 back on IB" true
    (Node.has_ib (Ninja_vmm.Vm.host (List.nth (Service.vms h.svc) 0)));
  Alcotest.(check bool) "ib01 evacuated" true
    ((Ninja_vmm.Vm.host (List.nth (Service.vms h.svc) 1)).Node.name <> "ib01");
  Alcotest.(check bool) "downtime recorded" true
    (Ninja_telemetry.Metrics.samples (Service.metrics h.svc) "ctl.vm.downtime.seconds"
    <> [])

let test_service_admission () =
  let config = { Service.default_config with queue_cap = 1; max_inflight = 1 } in
  let h = harness ~config () in
  (* Five requests in the same instant against a cap-1 queue: the head is
     dispatched immediately, one sits in the queue, the rest bounce. *)
  for _ = 1 to 5 do
    Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
        Service.make svc ~tenant:"t0" ~kind:Request.Fallback ())
  done;
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"nosuch" ~kind:Request.Rebalance ());
  finish h;
  Alcotest.(check bool) "queue-full rejections" true
    (Service.count h.svc "ctl.rejected.queue-full" >= 1.0);
  Alcotest.(check (float 0.0)) "unknown tenant rejected" 1.0
    (Service.count h.svc "ctl.rejected.unknown-tenant");
  Alcotest.(check int) "every submission got an outcome" (Service.submitted h.svc)
    (List.length (Service.outcomes h.svc))

let run_once ~seed =
  let h = harness ~seed () in
  Service.open_loop h.svc
    ~process:(Overlay [ Poisson { rate = 0.05 }; Bursts { period = 240.0; size = 3; spread = 10.0 } ])
    ~horizon:900.0;
  finish h;
  ( Service.log h.svc,
    Ninja_telemetry.Metrics.to_csv (Service.metrics h.svc),
    outcome_names h )

let test_service_deterministic () =
  let log_a, csv_a, out_a = run_once ~seed:1337L in
  let log_b, csv_b, out_b = run_once ~seed:1337L in
  Alcotest.(check (list string)) "request logs identical" log_a log_b;
  Alcotest.(check string) "metrics CSV identical" csv_a csv_b;
  Alcotest.(check (list string)) "outcomes identical" out_a out_b;
  let log_c, _, _ = run_once ~seed:7L in
  Alcotest.(check bool) "different seed differs" true (log_a <> log_c)

let test_requeue_on_node_death () =
  (* Two concurrent fallback batches: t0 -> eth00, t1 -> eth01. eth01 dies
     as the second migration starts; its reroute alternative (eth00) is
     claimed by the first batch, so the batch rolls back and the request
     re-queues — and completes once eth00 frees up. Faults delay requests,
     they must not lose them. *)
  let h = harness ~faults:[ "node-death@eth01" ] ~tenants:[ ("t0", 1.0); ("t1", 1.0) ] () in
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t0" ~kind:Request.Fallback ());
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t1" ~kind:Request.Fallback ());
  finish h;
  Alcotest.(check (list string))
    "both requests completed despite the node death"
    [ "completed"; "completed" ] (outcome_names h);
  Alcotest.(check bool) "the failed batch rolled back" true
    (Service.count h.svc "ctl.batches.rolled_back" >= 1.0);
  Alcotest.(check bool) "the request was re-queued" true
    (Service.count h.svc "ctl.requests.requeued" >= 1.0);
  Alcotest.(check (float 0.0)) "no VM stranded" 0.0
    (Service.count h.svc "ctl.vms.stranded");
  List.iter
    (fun vm ->
      Alcotest.(check bool)
        (Ninja_vmm.Vm.name vm ^ " ends on a live Ethernet node")
        true
        (let host = Ninja_vmm.Vm.host vm in
         Cluster.node_alive h.cluster host && not (Node.has_ib host)))
    (Service.vms h.svc)

let test_failed_after_attempts () =
  (* Every pre-copy toward t0-vm0 aborts, forever: each dispatch rolls
     back, the request re-queues, and after max_attempts it is Failed —
     with the VM safely at its origin and the books balanced. *)
  let config = { Service.default_config with max_attempts = 2 } in
  let h = harness ~faults:[ "precopy-abort@t0-vm0:count=inf" ] ~config () in
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t0" ~kind:Request.Fallback ());
  finish h;
  (match Service.outcomes h.svc with
  | [ (_, Service.Failed _) ] -> ()
  | other ->
    Alcotest.failf "expected one Failed outcome, got [%s]"
      (String.concat "; " (List.map (fun (_, o) -> Service.outcome_name o) other)));
  Alcotest.(check (float 0.0)) "requeued once" 1.0
    (Service.count h.svc "ctl.requests.requeued");
  Alcotest.(check (float 0.0)) "two rollbacks" 2.0
    (Service.count h.svc "ctl.batches.rolled_back");
  Alcotest.(check bool) "vm still home on IB" true
    (Node.has_ib (Ninja_vmm.Vm.host (List.hd (Service.vms h.svc))))

let test_deadline_drop () =
  (* With one batch slot taken by a slow fallback, a 1-second deadline has
     expired by the time the second request reaches the head of the queue:
     it must be dropped at dispatch, not served late. *)
  let config = { Service.default_config with max_inflight = 1 } in
  let h = harness ~config () in
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t0" ~kind:Request.Fallback ());
  Service.inject h.svc ~after:(Time.sec 2) (fun svc ->
      Service.make svc ~tenant:"t1" ~kind:Request.Fallback
        ~deadline:(Time.sec 1) ());
  finish h;
  Alcotest.(check (list string))
    "served then dropped for deadline"
    [ "completed"; "dropped:deadline-missed" ]
    (outcome_names h);
  Alcotest.(check (float 0.0)) "expiry counted" 1.0
    (Service.count h.svc "ctl.requests.expired")

(* {1 Destination swaps (adaptive placement)} *)

(* A leaf-spine datacenter and skewed tenant matrices: the setting where
   exchanging two destinations can actually lower communication cost. *)
let swap_harness ?(config = Service.default_config) () =
  let sim = Sim.create ~seed:11L () in
  let topo =
    match
      Topology.v ~tier:Topology.Leaf_spine ~pods:2 ~racks_per_pod:2
        ~hosts_per_rack:4 ~ib_pods:1 ~oversub:4.0 ~mem_gb:32.0 ~seed:11L ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let cluster = Cluster.create sim ~topology:topo () in
  let tenants =
    Service.boot_tenants
      ~traffic:
        (Ninja_workloads.Traffic.Skewed
           { elephants = 2; rate = Ninja_workloads.Traffic.default_rate; factor = 16.0 })
      cluster
      ~tenants:[ ("t0", 3.0); ("t1", 2.0); ("t2", 1.0) ]
      ~vms_per_tenant:3 ~mem_bytes:(Units.gb 2.0)
  in
  let traffic =
    List.concat_map (fun (ts : Service.tenant_spec) -> ts.Service.traffic) tenants
  in
  let svc = Service.create cluster ~config ~tenants () in
  let checker = Ninja_check.Checker.install cluster ~vms:(Service.vms svc) in
  ({ sim; cluster; svc; checker }, Ninja_planner.Cost_model.env cluster ~traffic ())

let test_swap_request_exchanges_hosts () =
  let h, _ = swap_harness () in
  let host name =
    (Ninja_vmm.Vm.host
       (List.find (fun vm -> Ninja_vmm.Vm.name vm = name) (Service.vms h.svc)))
      .Node.name
  in
  Alcotest.(check string) "swap kind name" "swap"
    (Request.kind_name (Request.Swap { vm_a = "x"; vm_b = "y" }));
  let a0 = host "t0-vm0" and b0 = host "t0-vm1" in
  Alcotest.(check bool) "distinct starting hosts" true (a0 <> b0);
  Service.inject h.svc ~after:(Time.sec 1) (fun svc ->
      Service.make svc ~tenant:"t0"
        ~kind:(Request.Swap { vm_a = "t0-vm0"; vm_b = "t0-vm1" })
        ());
  finish h;
  Alcotest.(check (list string)) "completed" [ "completed" ] (outcome_names h);
  Alcotest.(check string) "t0-vm0 took t0-vm1's host" b0 (host "t0-vm0");
  Alcotest.(check string) "t0-vm1 took t0-vm0's host" a0 (host "t0-vm1");
  Alcotest.(check (float 0.0)) "counted as applied" 1.0
    (Service.count h.svc "ctl.swap.applied")

let test_auto_swap_converges () =
  (* Under [auto_swap] the dispatcher keeps submitting the best improving
     exchange until none pays for its migrations: the communication cost
     of the boot placement must strictly drop, and the policy must
     terminate in a noop rather than ping-pong forever. *)
  let config = { Service.default_config with Service.auto_swap = true } in
  let h, cost_env = swap_harness ~config () in
  let cost_start = Ninja_planner.Cost_model.current_cost cost_env in
  (* On the quiescent boot placement no exchange pays for its migrations
     (that very noop is asserted at the end) — churn the tenants so the
     placement degrades and the policy has something to recover. *)
  List.iteri
    (fun i tenant ->
      Service.inject h.svc
        ~after:(Time.of_sec_f (10.0 +. (3.0 *. float_of_int i)))
        (fun svc -> Service.make svc ~tenant ~kind:Request.Fallback ());
      Service.inject h.svc
        ~after:(Time.of_sec_f (45.0 +. (3.0 *. float_of_int i)))
        (fun svc -> Service.make svc ~tenant ~kind:Request.Return ()))
    [ "t0"; "t1"; "t2" ];
  finish h;
  let cost_end = Ninja_planner.Cost_model.current_cost cost_env in
  Alcotest.(check bool) "proposals made" true
    (Service.count h.svc "ctl.swap.proposed" >= 1.0);
  Alcotest.(check bool) "at least one swap applied" true
    (Service.count h.svc "ctl.swap.applied" >= 1.0);
  Alcotest.(check bool) "policy terminated in a noop" true
    (Service.count h.svc "ctl.swap.noop" >= 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "communication cost improves (%.4f -> %.4f)" cost_start
       cost_end)
    true (cost_end < cost_start);
  Alcotest.(check bool) "service quiesced" true (Service.quiesced h.svc);
  (* Convergence is stable: pricing the final placement proposes nothing. *)
  Alcotest.(check bool) "a further proposal is a noop" false
    (Service.propose_swap h.svc)

(* {1 Open-loop fuzz under faults} *)

let fault_menu =
  [ [];
    [ "precopy-abort:p=0.3,count=inf" ];
    [ "qmp-timeout:p=0.2,count=inf" ];
    [ "node-death@eth00" ];
    [ "node-death@eth01"; "precopy-stall:p=0.2,count=inf" ];
    [ "agent-crash:n=2" ]
  ]

let test_fuzz_open_loop () =
  let prng = Prng.create ~seed:99L in
  for case = 1 to 30 do
    let seed = Int64.of_int (Prng.int prng 100000) in
    let faults = List.nth fault_menu (Prng.int prng (List.length fault_menu)) in
    let rate = 0.02 +. Prng.float prng 0.2 in
    let config =
      { Service.default_config with max_inflight = 1 + Prng.int prng 3 }
    in
    let h =
      harness
        ~spec:(Spec.make ~ib_nodes:3 ~eth_nodes:3 ())
        ~seed ~faults ~config
        ~tenants:[ ("t0", 3.0); ("t1", 1.0) ]
        ~vms_per_tenant:(1 + Prng.int prng 2) ()
    in
    Service.open_loop h.svc ~process:(Poisson { rate }) ~horizon:400.0;
    Sim.run h.sim;
    Ninja_check.Checker.check_finish h.checker;
    Ninja_check.Checker.detach h.checker;
    let violations = Ninja_check.Checker.violations h.checker in
    if violations <> [] then
      Alcotest.failf "case %d (seed %Ld, faults [%s]): %s" case seed
        (String.concat "; " faults)
        (Format.asprintf "%a" Ninja_check.Checker.pp_violation (List.hd violations));
    match Service.accounting h.svc with
    | Ok () -> ()
    | Error msg ->
      Alcotest.failf "case %d (seed %Ld, faults [%s]): accounting: %s" case seed
        (String.concat "; " faults) msg
  done

(* {1 Experiment: parallel identical to serial} *)

let experiment_csv ctx =
  Ninja_experiments.Exp_controlplane.run ctx
  |> List.map Ninja_metrics.Table.to_csv
  |> String.concat "\n"

let test_experiment_parallel_matches_serial () =
  let serial = experiment_csv (Run_ctx.make ~seed:5L ()) in
  let parallel =
    Pool.with_pool ~size:4 (fun pool -> experiment_csv (Run_ctx.make ~seed:5L ~pool ()))
  in
  Alcotest.(check string) "-j 4 is byte-identical to serial" serial parallel

(* {1 CLI exit codes} *)

let ninja_sim args =
  (* `dune runtest` runs in _build/default/test (the binary is a declared
     dep one directory up); `dune exec` runs from the project root. *)
  let binary =
    List.find Sys.file_exists
      [ "../bin/ninja_sim.exe"; "_build/default/bin/ninja_sim.exe"; "bin/ninja_sim.exe" ]
  in
  Sys.command (Filename.quote_command binary args ^ " > /dev/null")

let test_cli_exit_codes () =
  Alcotest.(check int) "clean serve exits 0" 0
    (ninja_sim
       [ "serve"; "--duration"; "300"; "--rate"; "0.1"; "--seed"; "1" ]);
  Alcotest.(check int) "SLO breach exits 3" 3
    (ninja_sim
       [ "serve"; "--duration"; "300"; "--rate"; "0.1"; "--seed"; "1"; "--slo"; "0.0001" ]);
  Alcotest.(check int) "planted protocol bug exits 1" 1
    (ninja_sim
       [ "check"; "-n"; "2"; "--no-shrink"; "--plant"; "skip-fence"; "--out";
         Filename.concat (Filename.get_temp_dir_name ()) "ctl-repros" ]);
  Alcotest.(check int) "bad flags exit 1" 1
    (ninja_sim [ "serve"; "--duration"; "0" ])

let () =
  (* Exit-code tests spawn the CLI; silence its stdout to keep the test
     output readable. *)
  Alcotest.run "ninja_controlplane"
    [
      ( "arrivals",
        [
          Alcotest.test_case "deterministic" `Quick test_arrivals_deterministic;
          Alcotest.test_case "shape and bounds" `Quick test_arrivals_shape;
          Alcotest.test_case "validation" `Quick test_arrivals_validation;
        ] );
      ( "fair-queue",
        [
          Alcotest.test_case "order and weights" `Quick test_fair_queue_order;
          Alcotest.test_case "idle tenant rejoins level" `Quick test_fair_queue_idle_rejoin;
        ] );
      ("locks", [ Alcotest.test_case "claims" `Quick test_locks ]);
      ( "service",
        [
          Alcotest.test_case "smoke: placement requests complete" `Quick test_service_smoke;
          Alcotest.test_case "admission control" `Quick test_service_admission;
          Alcotest.test_case "same seed, same run" `Quick test_service_deterministic;
          Alcotest.test_case "node death re-queues, not strands" `Quick
            test_requeue_on_node_death;
          Alcotest.test_case "attempt budget exhausts to Failed" `Quick
            test_failed_after_attempts;
          Alcotest.test_case "expired deadline dropped" `Quick test_deadline_drop;
        ] );
      ( "swap",
        [
          Alcotest.test_case "swap request exchanges hosts" `Quick
            test_swap_request_exchanges_hosts;
          Alcotest.test_case "auto-swap converges" `Quick test_auto_swap_converges;
        ] );
      ("fuzz", [ Alcotest.test_case "open loop under faults" `Slow test_fuzz_open_loop ]);
      ( "experiment",
        [
          Alcotest.test_case "parallel matches serial" `Slow
            test_experiment_parallel_matches_serial;
        ] );
      ("cli", [ Alcotest.test_case "exit codes" `Slow test_cli_exit_codes ]);
    ]
