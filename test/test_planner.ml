(* Tests for the batch migration planner: plan IR, estimator, solver
   strategies and the fiber executor. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_planner

let setup () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  (sim, cluster)

let node cluster name = Cluster.find_node cluster name

let mk_vm cluster ~name ~host =
  Vm.create cluster ~name ~host:(node cluster host) ~vcpus:4
    ~mem_bytes:(Units.gb 4.0) ()

let step_of plan vm =
  List.find (fun (s : Plan.step) -> s.Plan.vm == vm) (Plan.steps plan)

(* ------------------------------------------------------------------ *)
(* Plan IR *)

let test_of_assignment_basic () =
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "eth00" else "eth01")
  in
  let plan = Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of () in
  Alcotest.(check int) "two steps" 2 (Plan.length plan);
  Alcotest.(check int) "no conflicts, no edges" 0 (Plan.dep_count plan);
  List.iter
    (fun (s : Plan.step) ->
      Alcotest.(check string) "direct" "direct" (Plan.kind_name s.Plan.kind);
      Alcotest.(check bool) "bytes from footprint" true (s.Plan.bytes > 0.0))
    (Plan.steps plan);
  Alcotest.(check int) "topo covers all" 2 (List.length (Plan.topo_order plan))

let test_stay_put_vm_has_no_step () =
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    if Vm.name vm = "a" then node cluster "eth00" else Vm.host vm
  in
  let plan = Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of () in
  Alcotest.(check int) "only the mover gets a step" 1 (Plan.length plan);
  Alcotest.(check string) "and it is vm a" "a"
    (Vm.name (List.hd (Plan.steps plan)).Plan.vm)

let test_capacity_conflict_edge () =
  let _, cluster = setup () in
  (* a: ib00 -> ib01 (occupied by b); b: ib01 -> ib02 (free). *)
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "ib01" else "ib02")
  in
  let plan = Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of () in
  Alcotest.(check int) "one conflict edge" 1 (Plan.dep_count plan);
  let sa = step_of plan a and sb = step_of plan b in
  Alcotest.(check bool) "a waits for b to vacate" true
    (List.memq sb (Plan.deps_of plan sa));
  Alcotest.(check bool) "acyclic" true (Plan.is_acyclic plan);
  match Plan.topo_order plan with
  | [ first; second ] ->
    Alcotest.(check string) "b first" "b" (Vm.name first.Plan.vm);
    Alcotest.(check string) "a second" "a" (Vm.name second.Plan.vm)
  | _ -> Alcotest.fail "expected two steps in topo order"

let test_swap_cycle_staged () =
  let _, cluster = setup () in
  (* a: ib00 -> ib01 and b: ib01 -> ib00 — a 2-cycle; ib02 is free. *)
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "ib01" else "ib00")
  in
  let plan =
    Plan.of_assignment cluster ~vms:[ a; b ]
      ~dst_of
      ~staging:[ node cluster "ib02" ] ()
  in
  Alcotest.(check int) "three steps: direct + stage_out + stage_in" 3
    (Plan.length plan);
  Alcotest.(check bool) "acyclic after staging" true (Plan.is_acyclic plan);
  let kinds =
    Plan.steps plan
    |> List.map (fun (s : Plan.step) -> Plan.kind_name s.Plan.kind)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "kinds" [ "direct"; "stage-in"; "stage-out" ] kinds;
  let stage_out =
    List.find
      (fun (s : Plan.step) -> s.Plan.kind = Plan.Stage_out)
      (Plan.steps plan)
  in
  Alcotest.(check string) "stages through the free node" "ib02"
    stage_out.Plan.dst.Node.name

let test_swap_cycle_no_staging_falls_back () =
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "ib01" else "ib00")
  in
  (* No staging pool: the planner must drop an edge rather than emit a
     cyclic (undeadlockable) plan. *)
  let plan = Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of () in
  Alcotest.(check int) "two direct steps" 2 (Plan.length plan);
  Alcotest.(check bool) "still acyclic" true (Plan.is_acyclic plan);
  Alcotest.(check bool) "at most one edge survives" true (Plan.dep_count plan <= 1)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_add_dep_validation () =
  let plan = Plan.create () in
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let s =
    Plan.add_step plan ~vm:a ~src:(node cluster "ib00") ~dst:(node cluster "eth00")
      ~bytes:1e9 ()
  in
  Alcotest.check_raises "self edge rejected"
    (Invalid_argument "Plan.add_dep: self-dependency") (fun () ->
      Plan.add_dep plan ~before:s ~after:s)

(* ------------------------------------------------------------------ *)
(* Estimator *)

let test_estimator_sanity () =
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let plan =
    Plan.of_assignment cluster ~vms:[ a ]
      ~dst_of:(fun _ -> node cluster "eth00")
      ()
  in
  let s = List.hd (Plan.steps plan) in
  let e = Estimator.estimate cluster s in
  Alcotest.(check bool) "wire bytes positive" true (e.Estimator.wire_bytes > 0.0);
  Alcotest.(check bool) "rate positive" true (e.Estimator.rate > 0.0);
  Alcotest.(check bool) "rate capped by sender" true
    (e.Estimator.rate <= Estimator.sender_demand Migration.Tcp +. 1.0);
  Alcotest.(check bool) "duration positive" true
    (Time.to_sec_f e.Estimator.duration > 0.0);
  Alcotest.(check bool) "route is non-empty" true
    (Estimator.route cluster s <> [])

let test_estimator_contention () =
  let _, cluster = setup () in
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1 ~capacity:(Units.gbps 10.0)
    ~latency:(Time.us 50);
  let vms =
    List.init 3 (fun i ->
        mk_vm cluster ~name:(Printf.sprintf "v%d" i)
          ~host:(Printf.sprintf "ib%02d" i))
  in
  let dst_of =
    let table =
      List.mapi (fun i vm -> (vm, node cluster (Printf.sprintf "eth%02d" i))) vms
    in
    fun vm -> List.assq vm table
  in
  let plan = Plan.of_assignment cluster ~vms ~dst_of () in
  match Estimator.contention cluster plan with
  | [] -> Alcotest.fail "expected contended links"
  | (top, load) :: rest ->
    (* Every cross-rack step crosses the shared uplink, so the most
       contended link carries all three footprints. *)
    let total =
      List.fold_left (fun acc (s : Plan.step) -> acc +. s.Plan.bytes) 0.0
        (Plan.steps plan)
    in
    Alcotest.(check (float 1e6)) "top link carries the whole batch" total load;
    Alcotest.(check bool) "sorted descending" true
      (List.for_all (fun (_, l) -> l <= load) rest);
    ignore top

(* ------------------------------------------------------------------ *)
(* Solver *)

let evacuation_scenario ?(n = 4) ?(uplink_gbps = 10.0) () =
  let sim, cluster = setup () in
  Cluster.set_inter_rack cluster ~rack_a:0 ~rack_b:1
    ~capacity:(Units.gbps uplink_gbps) ~latency:(Time.us 50);
  let vms =
    List.init n (fun i ->
        mk_vm cluster ~name:(Printf.sprintf "v%d" i)
          ~host:(Printf.sprintf "ib%02d" i))
  in
  let table =
    List.mapi (fun i vm -> (vm, node cluster (Printf.sprintf "eth%02d" i))) vms
  in
  let dst_of vm = List.assq vm table in
  (sim, cluster, vms, dst_of)

let test_sequential_chains_everything () =
  let _, cluster, vms, dst_of = evacuation_scenario () in
  let plan = Plan.of_assignment cluster ~vms ~dst_of () in
  let plan = Solver.solve Solver.sequential cluster plan in
  Alcotest.(check int) "n-1 chain edges" (List.length vms - 1) (Plan.dep_count plan);
  Alcotest.(check bool) "acyclic" true (Plan.is_acyclic plan);
  (* Exactly one step has no dependency; every other step has exactly one. *)
  let roots =
    List.filter (fun s -> Plan.deps_of plan s = []) (Plan.steps plan)
  in
  Alcotest.(check int) "single root" 1 (List.length roots)

let test_grouped_waves_respect_capacity () =
  let _, cluster, vms, dst_of = evacuation_scenario ~n:4 () in
  let plan = Plan.of_assignment cluster ~vms ~dst_of () in
  let waves = Solver.grouped_waves cluster plan in
  Alcotest.(check bool) "more than one wave on a thin uplink" true
    (List.length waves > 1);
  Alcotest.(check int) "waves cover every step" (Plan.length plan)
    (List.fold_left (fun acc w -> acc + List.length w) 0 waves);
  (* No wave oversubscribes any fabric link: the summed standalone rates
     of the members sharing a link stay within its capacity. *)
  List.iter
    (fun wave ->
      let usage = Hashtbl.create 8 in
      List.iter
        (fun step ->
          let rate = (Estimator.estimate cluster step).Estimator.rate in
          List.iter
            (fun link ->
              let id = Ninja_flownet.Fabric.link_id link in
              let prev =
                Option.value (Hashtbl.find_opt usage id) ~default:(link, 0.0)
              in
              Hashtbl.replace usage id (link, snd prev +. rate))
            (Estimator.route cluster step))
        wave;
      Hashtbl.iter
        (fun _ (link, used) ->
          Alcotest.(check bool)
            (Printf.sprintf "link %s not oversubscribed"
               (Ninja_flownet.Fabric.link_name link))
            true
            (used <= Ninja_flownet.Fabric.link_capacity link +. 1e-3))
        usage)
    waves

let test_solver_of_string () =
  Alcotest.(check bool) "grouped parses" true
    (Solver.of_string "grouped" = Ok Solver.grouped);
  Alcotest.(check bool) "seq alias parses" true
    (Solver.of_string "seq" = Ok Solver.sequential);
  Alcotest.(check bool) "destination-swap alias parses" true
    (Solver.of_string "destination-swap" = Ok Solver.swap);
  Alcotest.(check bool) "lookup is case/space insensitive" true
    (Solver.of_string "  GROUPED " = Ok Solver.grouped);
  match Solver.of_string "fastest" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error msg ->
    (* The error enumerates the live registry, so a strategy added by a
       plugin (or an earlier test) shows up without touching this list. *)
    List.iter
      (fun name ->
        Alcotest.(check bool) ("error lists " ^ name) true (contains msg name))
      [ "sequential"; "grouped"; "swap" ]

let test_solver_registry () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in names ()") true
        (List.mem name (Solver.names ())))
    [ "sequential"; "grouped"; "swap" ];
  (* Registration canonicalises (trim + lowercase) and the handle then
     resolves through every registry surface. *)
  let custom =
    Solver.register ~name:" Chain-Test " ~aliases:[ "ct" ]
      ~doc:"identity strategy for registry tests" (fun _cluster plan -> plan)
  in
  Alcotest.(check string) "name canonicalised" "chain-test" (Solver.name custom);
  Alcotest.(check bool) "listed" true (List.mem "chain-test" (Solver.names ()));
  Alcotest.(check bool) "alias resolves, case-insensitively" true
    (Solver.of_string "CT" = Ok custom);
  Alcotest.(check bool) "help advertises it" true
    (contains (Solver.help ()) "chain-test");
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Solver.register: strategy \"chain-test\" already registered")
    (fun () -> ignore (Solver.register ~name:"chain-test" (fun _ p -> p)));
  (* The custom instance drives Solver.solve like any built-in. *)
  let _, cluster, vms, dst_of = evacuation_scenario ~n:2 () in
  let plan = Plan.of_assignment cluster ~vms ~dst_of () in
  let plan = Solver.solve custom cluster plan in
  Alcotest.(check int) "identity strategy adds no edges" 0 (Plan.dep_count plan)

(* A leaf-spine datacenter whose Ethernet pod has two racks: the swap
   strategy's playground, since same-fabric-class destinations with
   different route costs exist. *)
let leaf_spine_cluster () =
  let sim = Sim.create () in
  let topo =
    match
      Topology.v ~tier:Topology.Leaf_spine ~pods:2 ~racks_per_pod:2
        ~hosts_per_rack:4 ~ib_pods:1 ~oversub:4.0 ~mem_gb:32.0 ~seed:5L ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail ("topology: " ^ e)
  in
  (sim, Cluster.create sim ~topology:topo ())

let test_swap_lowers_communication_cost () =
  let _, cluster = leaf_spine_cluster () in
  let host ~pod ~rack ~host =
    node cluster (Topology.host_name ~pod ~rack ~host)
  in
  let vms =
    List.init 4 (fun i ->
        Vm.create cluster
          ~name:(Printf.sprintf "v%d" i)
          ~host:(host ~pod:0 ~rack:0 ~host:i)
          ~vcpus:4 ~mem_bytes:(Units.gb 4.0) ())
  in
  (* Both elephant pairs (v0,v1) and (v2,v3) land split across the two
     Ethernet racks; exchanging v1 and v2's destinations co-racks both
     pairs, so exactly that swap pays off. *)
  let dst_of vm =
    match Vm.name vm with
    | "v0" -> host ~pod:1 ~rack:0 ~host:0
    | "v1" -> host ~pod:1 ~rack:1 ~host:0
    | "v2" -> host ~pod:1 ~rack:0 ~host:1
    | _ -> host ~pod:1 ~rack:1 ~host:1
  in
  let traffic = [ ("v0", "v1", 1e8); ("v2", "v3", 1e8) ] in
  let plan = Plan.of_assignment cluster ~vms ~dst_of () in
  let env = Cost_model.env cluster ~traffic () in
  let before =
    Cost_model.placement_cost env ~lookup:(Cost_model.plan_placement env plan)
  in
  let plan' = Solver.solve Solver.swap cluster ~traffic plan in
  Alcotest.(check bool) "rewritten plan acyclic" true (Plan.is_acyclic plan');
  Alcotest.(check int) "still one step per VM" (Plan.length plan)
    (Plan.length plan');
  let after =
    Cost_model.placement_cost env ~lookup:(Cost_model.plan_placement env plan')
  in
  Alcotest.(check bool)
    (Printf.sprintf "communication cost drops (%.6f -> %.6f)" before after)
    true (after < before);
  (* Swapping permutes destinations among the movers — it never invents
     or drops a slot. *)
  let slots p =
    Plan.steps p
    |> List.map (fun (s : Plan.step) -> s.Plan.dst.Node.name)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "destination multiset preserved" (slots plan)
    (slots plan')

let test_swap_never_crosses_fabric_class () =
  (* Pinned regression (the PR-4 cross-fabric reroute family): however
     large the communication gain, the swap solver must not exchange an
     InfiniBand destination with an Ethernet one. *)
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib02" in
  let c = mk_vm cluster ~name:"c" ~host:"eth01" in
  ignore c;
  let dst_of vm = node cluster (if Vm.name vm = "a" then "ib01" else "eth00") in
  (* An enormous elephant a<->c pulls a toward the Ethernet rack, and b's
     slot over there is the only candidate exchange. *)
  let traffic = [ ("a", "c", 1e9) ] in
  let plan = Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of () in
  let plan' = Solver.solve Solver.swap cluster ~traffic plan in
  let dst name =
    (List.find
       (fun (s : Plan.step) -> Vm.name s.Plan.vm = name)
       (Plan.steps plan'))
      .Plan.dst.Node.name
  in
  Alcotest.(check string) "a keeps its InfiniBand destination" "ib01" (dst "a");
  Alcotest.(check string) "b keeps its Ethernet destination" "eth00" (dst "b")

let test_cost_model_decomposition () =
  let _, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  ignore (mk_vm cluster ~name:"b" ~host:"eth00");
  let env =
    Cost_model.env cluster ~traffic:[ ("a", "b", 1e6); ("a", "ghost", 1e6) ] ()
  in
  Alcotest.(check (float 0.0)) "same node is free" 0.0
    (Cost_model.pair_cost env (node cluster "ib00") (node cluster "ib00"));
  Alcotest.(check bool) "cross-rack pair costs" true
    (Cost_model.pair_cost env (node cluster "ib00") (node cluster "eth00") > 0.0);
  (* Entries whose endpoints are not placed VMs are skipped, not fatal. *)
  Alcotest.(check bool) "unknown endpoint ignored" true
    (Cost_model.current_cost env > 0.0);
  let plan =
    Plan.of_assignment cluster ~vms:[ a ] ~dst_of:(fun _ -> node cluster "eth01") ()
  in
  let m = Cost_model.plan_cost Cost_model.Migration_time env plan in
  let c = Cost_model.plan_cost Cost_model.Communication env plan in
  let comp =
    Cost_model.plan_cost (Cost_model.Composite { horizon = 10.0 }) env plan
  in
  Alcotest.(check bool) "migration time positive" true (m > 0.0);
  Alcotest.(check (float 1e-6)) "composite = time + horizon * communication"
    (m +. (10.0 *. c)) comp

(* ------------------------------------------------------------------ *)
(* Executor *)

let run_plan sim cluster ?max_per_host plan =
  let report = ref None in
  Sim.spawn sim (fun () ->
      report := Some (Executor.run cluster ?max_per_host plan));
  Sim.run sim;
  Option.get !report

let test_executor_swap_via_staging () =
  let sim, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "ib01" else "ib00")
  in
  let plan =
    Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of
      ~staging:[ node cluster "ib02" ] ()
  in
  let plan = Solver.solve Solver.grouped cluster plan in
  let report = run_plan sim cluster plan in
  Alcotest.(check int) "three steps executed" 3
    (List.length report.Executor.step_results);
  Alcotest.(check string) "a landed on ib01" "ib01" (Vm.host a).Node.name;
  Alcotest.(check string) "b landed on ib00" "ib00" (Vm.host b).Node.name;
  Alcotest.(check bool) "makespan positive" true
    (Time.to_sec_f report.Executor.makespan > 0.0)

let test_executor_swap_max_per_host_one () =
  (* max_per_host = 1 is the tightest permit regime; the ordered
     acquisition must still complete the swap without Sim.Deadlock. *)
  let sim, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let dst_of vm =
    node cluster (if Vm.name vm = "a" then "ib01" else "ib00")
  in
  let plan =
    Plan.of_assignment cluster ~vms:[ a; b ] ~dst_of
      ~staging:[ node cluster "ib02" ] ()
  in
  let plan = Solver.solve Solver.sequential cluster plan in
  let report = run_plan sim cluster ~max_per_host:1 plan in
  Alcotest.(check int) "all steps done" 3 (List.length report.Executor.step_results);
  Alcotest.(check string) "a on ib01" "ib01" (Vm.host a).Node.name;
  Alcotest.(check string) "b on ib00" "ib00" (Vm.host b).Node.name

let test_grouped_beats_sequential () =
  (* Four migrations share one 10 Gb/s uplink; two senders fill it.
     Grouped runs two waves of two; Sequential runs them one at a time
     and must take strictly longer. *)
  let makespan strategy =
    let sim, cluster, vms, dst_of = evacuation_scenario ~n:4 () in
    let plan = Plan.of_assignment cluster ~vms ~dst_of () in
    let plan = Solver.solve strategy cluster plan in
    let report = run_plan sim cluster plan in
    Time.to_sec_f report.Executor.makespan
  in
  let seq = makespan Solver.sequential in
  let grp = makespan Solver.grouped in
  Alcotest.(check bool)
    (Printf.sprintf "grouped (%.1fs) < sequential (%.1fs)" grp seq)
    true (grp < seq);
  Alcotest.(check bool) "grouped at most 60%% of sequential" true
    (grp <= 0.6 *. seq)

let test_overcommit_fallback_executes () =
  (* Two swap cycles but only one free staging node: one cycle gets the
     staging node, the other falls back to overcommitting a destination
     (trace notes it) — and the overcommitted plan still executes to the
     right final placement. *)
  let sim, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let c = mk_vm cluster ~name:"c" ~host:"ib02" in
  let d = mk_vm cluster ~name:"d" ~host:"ib03" in
  let dst_of vm =
    node cluster
      (match Vm.name vm with
      | "a" -> "ib01"
      | "b" -> "ib00"
      | "c" -> "ib03"
      | _ -> "ib02")
  in
  let plan =
    Plan.of_assignment cluster ~vms:[ a; b; c; d ] ~dst_of
      ~staging:[ node cluster "ib04" ] ()
  in
  let kinds =
    Plan.steps plan
    |> List.map (fun (s : Plan.step) -> Plan.kind_name s.Plan.kind)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "one cycle staged, the other overcommitted"
    [ "direct"; "direct"; "direct"; "stage-in"; "stage-out" ]
    kinds;
  Alcotest.(check bool) "acyclic" true (Plan.is_acyclic plan);
  Alcotest.(check bool) "overcommit fallback recorded" true
    (List.exists
       (fun r -> contains r.Trace.message "overcommit")
       (Trace.by_category (Cluster.trace cluster) "planner"));
  let report = run_plan sim cluster plan in
  Alcotest.(check int) "five steps executed" 5
    (List.length report.Executor.step_results);
  List.iter
    (fun (vm, host) ->
      Alcotest.(check string) (Vm.name vm ^ " final host") host (Vm.host vm).Node.name)
    [ (a, "ib01"); (b, "ib00"); (c, "ib03"); (d, "ib02") ];
  Alcotest.(check int) "no permits leaked" 0 report.Executor.permits_leaked

let test_step_failed_carries_identity () =
  (* Regression: Step_failed used to swallow which step failed. The
     payload must name the step, the VM and the destination. *)
  let sim, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let plan =
    Plan.of_assignment cluster ~vms:[ a ] ~dst_of:(fun _ -> node cluster "eth00") ()
  in
  let expected_id = (List.hd (Plan.steps plan)).Plan.id in
  let calls = ref 0 in
  let failing (_ : Plan.step) =
    incr calls;
    failwith "synthetic monitor failure"
  in
  let seen = ref None in
  Sim.spawn sim (fun () ->
      try
        ignore
          (Executor.run cluster ~run_step:failing
             ~retry:(Retry.policy ~max_attempts:2 ~base_delay:(Time.ms 10) ())
             plan)
      with Executor.Step_failed { step_id; vm; dst; reason } ->
        seen := Some (step_id, vm, dst, reason));
  Sim.run sim;
  match !seen with
  | None -> Alcotest.fail "expected Step_failed"
  | Some (step_id, vm, dst, reason) ->
    Alcotest.(check int) "step id" expected_id step_id;
    Alcotest.(check string) "vm name" "a" vm;
    Alcotest.(check string) "destination" "eth00" dst;
    Alcotest.(check int) "retried per policy before failing" 2 !calls;
    Alcotest.(check bool) "reason kept" true (contains reason "synthetic monitor failure");
    Alcotest.(check bool) "attempt count reported" true (contains reason "2 attempts")

let test_executor_rejects_cycle () =
  let sim, cluster = setup () in
  let a = mk_vm cluster ~name:"a" ~host:"ib00" in
  let b = mk_vm cluster ~name:"b" ~host:"ib01" in
  let plan = Plan.create () in
  let sa =
    Plan.add_step plan ~vm:a ~src:(node cluster "ib00") ~dst:(node cluster "eth00")
      ~bytes:1e9 ()
  in
  let sb =
    Plan.add_step plan ~vm:b ~src:(node cluster "ib01") ~dst:(node cluster "eth01")
      ~bytes:1e9 ()
  in
  Plan.add_dep plan ~before:sa ~after:sb;
  Plan.add_dep plan ~before:sb ~after:sa;
  let raised = ref false in
  Sim.spawn sim (fun () ->
      try ignore (Executor.run cluster plan)
      with Plan.Cyclic _ -> raised := true);
  Sim.run sim;
  Alcotest.(check bool) "Cyclic raised instead of deadlock" true !raised

let () =
  Alcotest.run "planner"
    [
      ( "plan",
        [
          Alcotest.test_case "of_assignment basic" `Quick test_of_assignment_basic;
          Alcotest.test_case "stay-put VM skipped" `Quick test_stay_put_vm_has_no_step;
          Alcotest.test_case "capacity conflict edge" `Quick test_capacity_conflict_edge;
          Alcotest.test_case "swap cycle staged" `Quick test_swap_cycle_staged;
          Alcotest.test_case "swap without staging" `Quick
            test_swap_cycle_no_staging_falls_back;
          Alcotest.test_case "add_dep validation" `Quick test_add_dep_validation;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "estimate sanity" `Quick test_estimator_sanity;
          Alcotest.test_case "contention ranking" `Quick test_estimator_contention;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sequential chain" `Quick test_sequential_chains_everything;
          Alcotest.test_case "grouped waves fit links" `Quick
            test_grouped_waves_respect_capacity;
          Alcotest.test_case "of_string" `Quick test_solver_of_string;
          Alcotest.test_case "registry" `Quick test_solver_registry;
          Alcotest.test_case "swap lowers communication cost" `Quick
            test_swap_lowers_communication_cost;
          Alcotest.test_case "swap never crosses fabric class" `Quick
            test_swap_never_crosses_fabric_class;
          Alcotest.test_case "cost model decomposition" `Quick
            test_cost_model_decomposition;
        ] );
      ( "executor",
        [
          Alcotest.test_case "swap via staging" `Quick test_executor_swap_via_staging;
          Alcotest.test_case "swap at max_per_host=1" `Quick
            test_executor_swap_max_per_host_one;
          Alcotest.test_case "grouped beats sequential" `Quick
            test_grouped_beats_sequential;
          Alcotest.test_case "overcommit fallback executes" `Quick
            test_overcommit_fallback_executes;
          Alcotest.test_case "Step_failed carries identity" `Quick
            test_step_failed_carries_identity;
          Alcotest.test_case "cyclic plan rejected" `Quick test_executor_rejects_cycle;
        ] );
    ]
