(* Deterministic failure-scenario suite for the fault-injection layer:
   injector semantics, retry-policy arithmetic, and full Ninja migrations
   under injected faults (retry to completion, or rollback to the source
   with device state restored).

   Every simulation is seeded from NINJA_TEST_SEED (default 1) so the CI
   matrix can re-run the whole suite under several fixed seeds and fail on
   any flake. *)

open Ninja_engine
open Ninja_faults
open Ninja_hardware
open Ninja_vmm
open Ninja_mpi
open Ninja_metrics
open Ninja_core

let env_seed =
  match Sys.getenv_opt "NINJA_TEST_SEED" with
  | Some s -> ( try Int64.of_string s with Failure _ -> 1L)
  | None -> 1L

let sec = Time.to_sec_f

let check_float = Alcotest.(check (float 1e-9))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fresh ?(faults = []) () =
  let sim = Sim.create ~seed:env_seed () in
  let cluster = Cluster.create sim ~spec:Spec.agc () in
  List.iter
    (fun text ->
      match Injector.parse_spec text with
      | Ok spec -> Injector.arm_spec (Cluster.injector cluster) spec
      | Error e -> Alcotest.failf "bad fault spec %S: %s" text e)
    faults;
  (sim, cluster)

let node cluster name = Cluster.find_node cluster name

let ib_hosts cluster n =
  List.init n (fun i -> node cluster (Printf.sprintf "ib%02d" i))

let eth_hosts cluster n =
  List.init n (fun i -> node cluster (Printf.sprintf "eth%02d" i))

let workload ~until ~log ctx =
  while Mpi.wtime ctx < until do
    Mpi.compute ctx ~seconds:0.3;
    Mpi.allreduce ctx ~bytes:2.0e8;
    Mpi.checkpoint_point ctx;
    if Mpi.rank ctx = 0 then log := Mpi.wtime ctx :: !log
  done

(* A 2-VM job on ib00/ib01; one migration to [dsts] fires at t = 5 s. *)
let run_scenario ?(faults = []) ?(until = 120.0) ~dsts () =
  let sim, cluster = fresh ~faults () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (workload ~until ~log));
  let b = ref Breakdown.zero in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 5);
      b := Ninja.fallback ninja ~dsts:(dsts cluster) ();
      Ninja.wait_job ninja);
  Sim.run sim;
  (ninja, cluster, !b, List.rev !log)

let faults_trace cluster = Trace.by_category (Cluster.trace cluster) "faults"

let trace_has cluster sub =
  List.exists (fun r -> contains r.Trace.message sub) (faults_trace cluster)

let outcome_is ninja expected =
  match (Ninja.last_outcome ninja, expected) with
  | Some Ninja.Completed, `Completed -> true
  | Some (Ninja.Rolled_back _), `Rolled_back -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Injector unit tests *)

let test_parse_spec_basics () =
  (match Injector.parse_spec "precopy-abort@vm0:t=12" with
  | Ok s ->
    Alcotest.(check bool) "point" true (s.Injector.point = Injector.Precopy_abort);
    Alcotest.(check (option string)) "site" (Some "vm0") s.Injector.site;
    (match s.Injector.trigger with
    | Injector.At t -> check_float "at 12s" 12.0 (sec t)
    | _ -> Alcotest.fail "expected an At trigger");
    Alcotest.(check int) "default count" 1 s.Injector.count
  | Error e -> Alcotest.fail e);
  (match Injector.parse_spec "qmp-timeout:p=0.25,count=inf" with
  | Ok s ->
    Alcotest.(check bool) "prob" true (s.Injector.trigger = Injector.Prob 0.25);
    Alcotest.(check bool) "unlimited" true (s.Injector.count = max_int)
  | Error e -> Alcotest.fail e);
  match Injector.parse_spec "node-death@eth03:n=2,count=3" with
  | Ok s ->
    Alcotest.(check bool) "nth" true (s.Injector.trigger = Injector.Nth 2);
    Alcotest.(check int) "count" 3 s.Injector.count;
    Alcotest.(check string) "round-trips" "node-death@eth03:n=2,count=3"
      (Injector.spec_to_string s)
  | Error e -> Alcotest.fail e

let test_parse_spec_errors () =
  List.iter
    (fun text ->
      match Injector.parse_spec text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" text)
    [
      "frobnicate";
      "qmp-timeout:n=1,p=0.5";
      "precopy-abort:x=1";
      "precopy-abort:n=0";
      "qmp-timeout:p=1.5";
      "agent-crash@";
      "attach-fail:count=0";
      "node-death:t";
    ]

let test_injector_nth_and_budget () =
  let sim = Sim.create ~seed:env_seed () in
  let inj = Injector.create sim in
  Injector.arm inj ~site:"vm0" (Injector.Nth 3) Injector.Precopy_abort;
  let fires =
    List.init 5 (fun _ -> Injector.fire inj Injector.Precopy_abort ~site:"vm0")
  in
  Alcotest.(check (list bool)) "exactly the 3rd hit fires"
    [ false; false; true; false; false ] fires;
  Alcotest.(check int) "fired once" 1 (Injector.fired inj Injector.Precopy_abort);
  Alcotest.(check int) "all hits counted" 5 (Injector.hits inj Injector.Precopy_abort)

let test_injector_site_filter () =
  let sim = Sim.create ~seed:env_seed () in
  let inj = Injector.create sim in
  Injector.arm inj ~site:"vm1" ~count:max_int Injector.Always Injector.Qmp_timeout;
  Alcotest.(check bool) "other site does not match" false
    (Injector.fire inj Injector.Qmp_timeout ~site:"vm0");
  Alcotest.(check int) "non-matching hit not counted" 0
    (Injector.hits inj Injector.Qmp_timeout);
  Alcotest.(check bool) "matching site fires" true
    (Injector.fire inj Injector.Qmp_timeout ~site:"vm1");
  Injector.arm inj ~count:max_int Injector.Always Injector.Agent_crash;
  Alcotest.(check bool) "unsited arm matches any site" true
    (Injector.fire inj Injector.Agent_crash ~site:"whoever")

let test_injector_count_budget () =
  let sim = Sim.create ~seed:env_seed () in
  let inj = Injector.create sim in
  Injector.arm inj ~count:2 Injector.Always Injector.Agent_crash;
  let fires = List.init 4 (fun _ -> Injector.fire inj Injector.Agent_crash ~site:"x") in
  Alcotest.(check (list bool)) "budget of 2" [ true; true; false; false ] fires;
  let inj2 = Injector.create sim in
  Injector.arm inj2 ~count:max_int Injector.Always Injector.Agent_crash;
  Alcotest.(check bool) "count=inf never exhausts" true
    (List.init 20 (fun _ -> Injector.fire inj2 Injector.Agent_crash ~site:"x")
    |> List.for_all Fun.id)

let test_injector_at_time () =
  let sim = Sim.create ~seed:env_seed () in
  let inj = Injector.create sim in
  Injector.arm inj (Injector.At (Time.sec 5)) Injector.Precopy_stall;
  let early = Injector.fire inj Injector.Precopy_stall ~site:"x" in
  let late = ref false in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      late := Injector.fire inj Injector.Precopy_stall ~site:"x");
  Sim.run sim;
  Alcotest.(check bool) "before the deadline: no fire" false early;
  Alcotest.(check bool) "after the deadline: fires" true !late

let test_injector_prob_deterministic () =
  let draw seed =
    let sim = Sim.create ~seed:env_seed () in
    let inj = Injector.create ~seed sim in
    Injector.arm inj ~count:max_int (Injector.Prob 0.5) Injector.Qmp_timeout;
    List.init 32 (fun _ -> Injector.fire inj Injector.Qmp_timeout ~site:"x")
  in
  Alcotest.(check (list bool)) "same seed, same firing sequence" (draw 7L) (draw 7L);
  let sim = Sim.create ~seed:env_seed () in
  let never = Injector.create sim in
  Injector.arm never ~count:max_int (Injector.Prob 0.0) Injector.Qmp_timeout;
  Alcotest.(check bool) "p=0 never fires" false
    (List.init 16 (fun _ -> Injector.fire never Injector.Qmp_timeout ~site:"x")
    |> List.exists Fun.id);
  let always = Injector.create sim in
  Injector.arm always ~count:max_int (Injector.Prob 1.0) Injector.Qmp_timeout;
  Alcotest.(check bool) "p=1 always fires" true
    (List.init 16 (fun _ -> Injector.fire always Injector.Qmp_timeout ~site:"x")
    |> List.for_all Fun.id)

let test_injector_disabled_is_inert () =
  let sim = Sim.create ~seed:env_seed () in
  let inj = Injector.create sim in
  Alcotest.(check bool) "nothing armed" false (Injector.enabled inj);
  Alcotest.(check bool) "fire is a no-op" false
    (Injector.fire inj Injector.Node_death ~site:"eth00");
  Alcotest.(check int) "no hits recorded" 0 (Injector.hits inj Injector.Node_death);
  Injector.arm inj Injector.Always Injector.Node_death;
  Alcotest.(check bool) "armed" true (Injector.enabled inj);
  Injector.clear inj;
  Alcotest.(check bool) "clear disarms" false (Injector.enabled inj)

(* ------------------------------------------------------------------ *)
(* Retry-policy unit tests *)

let in_fiber f =
  let sim = Sim.create ~seed:env_seed () in
  let result = ref None in
  Sim.spawn sim (fun () -> result := Some (f sim));
  Sim.run sim;
  Option.get !result

let test_backoff_values () =
  let p =
    Retry.policy ~max_attempts:10 ~base_delay:(Time.ms 100) ~multiplier:2.0
      ~max_delay:(Time.sec 5) ()
  in
  List.iter
    (fun (attempt, expect) ->
      check_float
        (Printf.sprintf "backoff after attempt %d" attempt)
        expect
        (sec (Retry.backoff p ~attempt)))
    [ (1, 0.1); (2, 0.2); (3, 0.4); (4, 0.8); (6, 3.2); (7, 5.0); (8, 5.0) ]

let test_retry_run_success_after_failures () =
  let v, outcome, calls, elapsed =
    in_fiber (fun sim ->
        let calls = ref 0 in
        let v, o =
          Retry.run ~sim
            ~policy:(Retry.policy ~max_attempts:5 ())
            (fun ~attempt ->
              incr calls;
              if attempt < 3 then failwith "flaky" else attempt)
        in
        (v, o, !calls, sec (Sim.now sim)))
  in
  Alcotest.(check int) "returns 3rd attempt's value" 3 v;
  Alcotest.(check int) "attempts" 3 outcome.Retry.attempts;
  Alcotest.(check int) "calls" 3 calls;
  check_float "delay_total = 100ms + 200ms" 0.3 (sec outcome.Retry.delay_total);
  check_float "sim time advanced by the backoffs" 0.3 elapsed

let test_retry_exhaustion_reraises () =
  let calls, elapsed, raised =
    in_fiber (fun sim ->
        let calls = ref 0 in
        let raised =
          try
            ignore
              (Retry.run ~sim
                 ~policy:(Retry.policy ~max_attempts:3 ())
                 (fun ~attempt:_ ->
                   incr calls;
                   failwith "hopeless"));
            false
          with Failure m -> m = "hopeless"
        in
        (!calls, sec (Sim.now sim), raised))
  in
  Alcotest.(check bool) "last exception re-raised" true raised;
  Alcotest.(check int) "exactly max_attempts calls" 3 calls;
  check_float "slept 100ms + 200ms" 0.3 elapsed

let test_retry_nonretryable () =
  let calls, elapsed =
    in_fiber (fun sim ->
        let calls = ref 0 in
        (try
           ignore
             (Retry.run ~sim
                ~retryable:(function Failure _ -> false | _ -> true)
                (fun ~attempt:_ ->
                  incr calls;
                  failwith "fatal"))
         with Failure _ -> ());
        (!calls, sec (Sim.now sim)))
  in
  Alcotest.(check int) "one call only" 1 calls;
  check_float "no backoff slept" 0.0 elapsed

let test_retry_deadline () =
  let calls, elapsed =
    in_fiber (fun sim ->
        let calls = ref 0 in
        (try
           ignore
             (Retry.run ~sim
                ~policy:(Retry.policy ~max_attempts:10 ~deadline:(Time.ms 150) ())
                (fun ~attempt:_ ->
                  incr calls;
                  failwith "slow"))
         with Failure _ -> ());
        (!calls, sec (Sim.now sim)))
  in
  (* attempt 1 fails; 100 ms backoff fits the 150 ms budget; attempt 2
     fails; the next 200 ms backoff would blow it, so stop. *)
  Alcotest.(check int) "two attempts" 2 calls;
  check_float "only the first backoff slept" 0.1 elapsed

let test_retry_jitter_deterministic () =
  let total seed =
    in_fiber (fun sim ->
        let prng = Prng.create ~seed in
        try
          ignore
            (Retry.run ~sim ~prng
               ~policy:(Retry.policy ~max_attempts:3 ~jitter:0.5 ())
               (fun ~attempt:_ -> failwith "x"));
          Time.zero
        with Failure _ -> Sim.now sim)
  in
  let a = total 11L and b = total 11L in
  Alcotest.(check bool) "same prng seed, same jittered schedule" true (Time.equal a b);
  (* Jittered delays stay within [delay, 1.5 * delay]. *)
  Alcotest.(check bool) "within jitter bounds" true
    (sec a >= 0.3 && sec a <= 0.45)

(* ------------------------------------------------------------------ *)
(* Full migration scenarios under injected faults *)

let test_fault_free_run_clean () =
  let ninja, cluster, b, log = run_scenario ~dsts:(fun c -> eth_hosts c 2) () in
  check_float "retry is zero" 0.0 (sec b.Breakdown.retry);
  Alcotest.(check bool) "completed" true (outcome_is ninja `Completed);
  Alcotest.(check int) "no fault events" 0 (List.length (faults_trace cluster));
  Alcotest.(check bool) "job progressed" true (List.length log > 10)

let test_qmp_timeout_retried () =
  let ninja, cluster, b, _ =
    run_scenario ~faults:[ "qmp-timeout@vm0:n=1" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  Alcotest.(check bool) "completed despite the timeout" true (outcome_is ninja `Completed);
  List.iter
    (fun vm -> Alcotest.(check bool) "moved to the eth rack" false (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja);
  Alcotest.(check bool) "retry covers at least the timeout" true
    (sec b.Breakdown.retry >= sec Qmp.command_timeout);
  Alcotest.(check bool) "injection traced" true (trace_has cluster "injected qmp-timeout");
  Alcotest.(check bool) "retry traced" true (trace_has cluster "retrying in")

let test_attach_fail_retried () =
  let ninja, cluster, b, _ =
    run_scenario
      ~faults:[ "attach-fail@vm0:n=1" ]
      ~dsts:(fun c -> [ node c "ib02"; node c "ib03" ])
      ()
  in
  Alcotest.(check bool) "completed" true (outcome_is ninja `Completed);
  List.iter
    (fun vm ->
      Alcotest.(check bool) "HCA attached at the destination" true (Vm.has_bypass_device vm))
    (Ninja.vms ninja);
  Alcotest.(check bool) "retry time recorded" true (sec b.Breakdown.retry > 0.0);
  Alcotest.(check bool) "injection traced" true (trace_has cluster "injected attach-fail")

let test_precopy_stall_extends_migration () =
  let _, _, clean, _ = run_scenario ~dsts:(fun c -> eth_hosts c 2) () in
  let ninja, _, stalled, _ =
    run_scenario ~faults:[ "precopy-stall@vm0:n=1" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  Alcotest.(check bool) "still completes" true (outcome_is ninja `Completed);
  (* A stall is pure added latency, not an error: no retry time. *)
  check_float "no retry time" 0.0 (sec stalled.Breakdown.retry);
  let extra = sec stalled.Breakdown.migration -. sec clean.Breakdown.migration in
  Alcotest.(check bool)
    (Printf.sprintf "migration extended by ~the stall (%.2fs extra)" extra)
    true
    (extra >= sec Ninja_vmm.Migration.precopy_stall_duration -. 0.5
    && extra <= sec Ninja_vmm.Migration.precopy_stall_duration +. 1.0)

let test_precopy_abort_once_retried () =
  let ninja, cluster, b, _ =
    run_scenario ~faults:[ "precopy-abort@vm0:n=1" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  Alcotest.(check bool) "completed on the retry" true (outcome_is ninja `Completed);
  List.iter
    (fun vm -> Alcotest.(check bool) "on the eth rack" false (Node.has_ib (Vm.host vm)))
    (Ninja.vms ninja);
  Alcotest.(check bool) "nonzero retry downtime" true (sec b.Breakdown.retry > 0.0);
  Alcotest.(check bool) "injection traced" true (trace_has cluster "injected precopy-abort")

let assert_restored_at_source ninja =
  List.iteri
    (fun i vm ->
      Alcotest.(check string)
        (Printf.sprintf "vm%d back on its source" i)
        (Printf.sprintf "ib%02d" i)
        (Vm.host vm).Node.name;
      Alcotest.(check bool) "HCA re-attached at the source" true (Vm.has_bypass_device vm);
      Alcotest.(check bool) "not left paused" true (Vm.state vm = Vm.Running))
    (Ninja.vms ninja)

let test_precopy_abort_forever_rolls_back () =
  let ninja, cluster, b, log =
    run_scenario ~faults:[ "precopy-abort:count=inf" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  Alcotest.(check bool) "rolled back" true (outcome_is ninja `Rolled_back);
  assert_restored_at_source ninja;
  Alcotest.(check bool) "nonzero retry downtime" true (sec b.Breakdown.retry > 0.0);
  Alcotest.(check bool) "job ran to completion anyway" true
    (match List.rev log with [] -> false | t :: _ -> t > 100.0);
  Alcotest.(check bool) "rollback traced" true
    (List.exists
       (fun r -> contains r.Trace.message "rolling back")
       (Trace.by_category (Cluster.trace cluster) "ninja"))

let test_agent_crash_retried () =
  let ninja, cluster, b, _ =
    run_scenario ~faults:[ "agent-crash@vm0:n=1" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  Alcotest.(check bool) "completed" true (outcome_is ninja `Completed);
  Alcotest.(check bool) "retry time recorded" true (sec b.Breakdown.retry > 0.0);
  Alcotest.(check bool) "injection traced" true (trace_has cluster "injected agent-crash")

let test_node_death_rolls_back () =
  let ninja, cluster, b, _ =
    run_scenario ~faults:[ "node-death@eth00:n=1" ] ~dsts:(fun c -> eth_hosts c 2) ()
  in
  (match Ninja.last_outcome ninja with
  | Some (Ninja.Rolled_back reason) ->
    Alcotest.(check bool) "reason names the dead node" true (contains reason "dead")
  | _ -> Alcotest.fail "expected a rollback");
  assert_restored_at_source ninja;
  Alcotest.(check bool) "the node stays dead" false
    (Cluster.node_alive cluster (node cluster "eth00"));
  Alcotest.(check bool) "nonzero retry downtime" true (sec b.Breakdown.retry > 0.0)

let test_rollback_double_failure_converges () =
  (* The second fault fires during the rollback's own re-attach phase:
     rollback must retry itself and still converge. *)
  let ninja, cluster, b, _ =
    run_scenario
      ~faults:[ "precopy-abort:count=inf"; "attach-fail@vm0:n=1" ]
      ~dsts:(fun c -> eth_hosts c 2)
      ()
  in
  Alcotest.(check bool) "rolled back" true (outcome_is ninja `Rolled_back);
  assert_restored_at_source ninja;
  Alcotest.(check bool) "second fault fired" true (trace_has cluster "injected attach-fail");
  Alcotest.(check bool) "nonzero retry downtime" true (sec b.Breakdown.retry > 0.0)

let test_faulted_run_deterministic () =
  let run () =
    let ninja, cluster, b, _ =
      run_scenario ~faults:[ "precopy-abort:count=inf" ] ~dsts:(fun c -> eth_hosts c 2) ()
    in
    ( sec b.Breakdown.total,
      sec b.Breakdown.retry,
      List.length (Trace.records (Cluster.trace cluster)),
      List.map (fun vm -> (Vm.host vm).Node.name) (Ninja.vms ninja) )
  in
  let t1, r1, n1, hosts1 = run () in
  let t2, r2, n2, hosts2 = run () in
  check_float "identical total" t1 t2;
  check_float "identical retry time" r1 r2;
  Alcotest.(check int) "identical trace length" n1 n2;
  Alcotest.(check (list string)) "identical placement" hosts1 hosts2

let test_scheduler_reroutes_dead_destination () =
  let sim, cluster = fresh ~faults:[ "node-death@eth00:n=1" ] () in
  let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
  let log = ref [] in
  ignore (Ninja.launch ninja ~procs_per_vm:1 (workload ~until:120.0 ~log));
  let sched = Ninja_scheduler.Cloud_scheduler.create ninja in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 10);
      ignore
        (Ninja_scheduler.Cloud_scheduler.execute sched
           (Ninja_scheduler.Cloud_scheduler.Maintenance { avoid = Node.has_ib }));
      Ninja.wait_job ninja);
  Sim.run sim;
  Alcotest.(check bool) "trigger completed" true (outcome_is ninja `Completed);
  (match Ninja_scheduler.Cloud_scheduler.history sched with
  | [ record ] -> (
    match record.Ninja_scheduler.Cloud_scheduler.report with
    | Some r ->
      Alcotest.(check int) "no permits leaked" 0 r.Ninja_planner.Executor.permits_leaked;
      Alcotest.(check bool) "executor retried/rerouted" true
        (r.Ninja_planner.Executor.retries > 0)
    | None -> Alcotest.fail "expected an executor report")
  | _ -> Alcotest.fail "expected exactly one scheduler record");
  List.iter
    (fun vm ->
      Alcotest.(check bool) "VM evacuated off the IB rack" false (Node.has_ib (Vm.host vm));
      Alcotest.(check bool) "VM sits on a live node" true
        (Cluster.node_alive cluster (Vm.host vm)))
    (Ninja.vms ninja)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_migration_leaves_clean_state =
  QCheck.Test.make ~count:5 ~name:"successful migration leaves no paused VM, no missing HCA"
    QCheck.(pair bool (int_bound 1000))
    (fun (to_eth, salt) ->
      let sim = Sim.create ~seed:(Int64.add env_seed (Int64.of_int salt)) () in
      let cluster = Cluster.create sim ~spec:Spec.agc () in
      let ninja = Ninja.setup cluster ~hosts:(ib_hosts cluster 2) () in
      let log = ref [] in
      ignore (Ninja.launch ninja ~procs_per_vm:1 (workload ~until:100.0 ~log));
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.sec 5);
          let dsts =
            if to_eth then eth_hosts cluster 2
            else [ node cluster "ib02"; node cluster "ib03" ]
          in
          ignore (Ninja.fallback ninja ~dsts ());
          Ninja.wait_job ninja);
      Sim.run sim;
      outcome_is ninja `Completed
      && List.for_all
           (fun vm ->
             Vm.state vm = Vm.Running
             && ((not (Node.has_ib (Vm.host vm))) || Vm.has_bypass_device vm))
           (Ninja.vms ninja))

let prop_executor_death_no_deadlock =
  QCheck.Test.make ~count:5
    ~name:"executor under destination death: no deadlock, permits restored"
    QCheck.(pair (int_range 0 2) (int_range 3 6))
    (fun (dead, n) ->
      let open Ninja_planner in
      let sim = Sim.create ~seed:env_seed () in
      let cluster = Cluster.create sim ~spec:Spec.agc () in
      Injector.arm (Cluster.injector cluster)
        ~site:(Printf.sprintf "eth%02d" dead)
        (Injector.Nth 1) Injector.Node_death;
      let vms =
        List.init n (fun i ->
            Vm.create cluster
              ~name:(Printf.sprintf "vm%d" i)
              ~host:(node cluster (Printf.sprintf "ib%02d" i))
              ~vcpus:4 ~mem_bytes:(Units.gb 4.0) ())
      in
      let table =
        List.mapi (fun i vm -> (vm, node cluster (Printf.sprintf "eth%02d" (i mod 3)))) vms
      in
      let plan = Plan.of_assignment cluster ~vms ~dst_of:(fun vm -> List.assq vm table) () in
      let spare = node cluster "eth07" in
      let ok = ref false in
      Sim.spawn sim (fun () ->
          let r = Executor.run cluster ~reroute:(fun _ -> Some spare) plan in
          ok :=
            r.Executor.permits_leaked = 0
            && List.length r.Executor.step_results = List.length (Plan.steps plan));
      (* A deadlock would raise Sim.Deadlock here; the property fails. *)
      Sim.run sim;
      !ok
      && List.for_all (fun vm -> Cluster.node_alive cluster (Vm.host vm)) vms)

let prop_rollback_converges_under_second_failure =
  QCheck.Test.make ~count:3 ~name:"rollback is idempotent under a second injected failure"
    QCheck.(int_range 0 2)
    (fun which ->
      let second =
        List.nth
          [ "attach-fail@vm0:n=1"; "agent-crash@vm0:n=1"; "qmp-timeout@vm0:n=1" ]
          which
      in
      let ninja, _cluster, b, _ =
        run_scenario
          ~faults:[ "precopy-abort:count=inf"; second ]
          ~dsts:(fun c -> eth_hosts c 2)
          ()
      in
      outcome_is ninja `Rolled_back
      && sec b.Breakdown.retry > 0.0
      && List.for_all
           (fun vm ->
             Node.has_ib (Vm.host vm)
             && Vm.has_bypass_device vm
             && Vm.state vm = Vm.Running)
           (Ninja.vms ninja))

let () =
  Alcotest.run "ninja_faults"
    [
      ( "injector",
        [
          Alcotest.test_case "spec parsing" `Quick test_parse_spec_basics;
          Alcotest.test_case "spec parse errors" `Quick test_parse_spec_errors;
          Alcotest.test_case "nth trigger and budget" `Quick test_injector_nth_and_budget;
          Alcotest.test_case "site filter" `Quick test_injector_site_filter;
          Alcotest.test_case "count budget" `Quick test_injector_count_budget;
          Alcotest.test_case "at-time trigger" `Quick test_injector_at_time;
          Alcotest.test_case "probabilistic determinism" `Quick
            test_injector_prob_deterministic;
          Alcotest.test_case "disabled injector is inert" `Quick
            test_injector_disabled_is_inert;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff values" `Quick test_backoff_values;
          Alcotest.test_case "success after failures" `Quick
            test_retry_run_success_after_failures;
          Alcotest.test_case "exhaustion re-raises" `Quick test_retry_exhaustion_reraises;
          Alcotest.test_case "non-retryable" `Quick test_retry_nonretryable;
          Alcotest.test_case "deadline" `Quick test_retry_deadline;
          Alcotest.test_case "jitter determinism" `Quick test_retry_jitter_deterministic;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "fault-free run is clean" `Quick test_fault_free_run_clean;
          Alcotest.test_case "qmp timeout retried" `Quick test_qmp_timeout_retried;
          Alcotest.test_case "attach failure retried" `Quick test_attach_fail_retried;
          Alcotest.test_case "precopy stall adds latency" `Quick
            test_precopy_stall_extends_migration;
          Alcotest.test_case "precopy abort retried" `Quick test_precopy_abort_once_retried;
          Alcotest.test_case "persistent abort rolls back" `Quick
            test_precopy_abort_forever_rolls_back;
          Alcotest.test_case "agent crash retried" `Quick test_agent_crash_retried;
          Alcotest.test_case "node death rolls back" `Quick test_node_death_rolls_back;
          Alcotest.test_case "double failure converges" `Quick
            test_rollback_double_failure_converges;
          Alcotest.test_case "faulted run deterministic" `Quick
            test_faulted_run_deterministic;
          Alcotest.test_case "scheduler reroutes dead node" `Quick
            test_scheduler_reroutes_dead_destination;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_migration_leaves_clean_state;
            prop_executor_death_no_deadlock;
            prop_rollback_converges_under_second_failure;
          ] );
    ]
