(* Tests for the max–min fair fabric. Expected values are computed by hand
   from the progressive-filling definition. *)

open Ninja_engine
open Ninja_flownet

let sec_f = Time.to_sec_f

let check_time = Alcotest.(check (float 1e-6))

let check_rate = Alcotest.(check (float 1e-6))

let test_single_flow_bottleneck () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l1 = Fabric.add_link fab ~name:"tx" ~capacity:10.0 in
  let l2 = Fabric.add_link fab ~name:"rx" ~capacity:4.0 in
  let t_done = ref 0.0 in
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l1; l2 ] ~bytes:40.0;
      t_done := sec_f (Sim.now sim));
  Sim.run sim;
  check_time "40 B over min(10,4) B/s" 10.0 !t_done

let test_two_flows_share_fairly () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:10.0 in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:50.0;
      t1 := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:100.0;
      t2 := sec_f (Sim.now sim));
  Sim.run sim;
  (* Share 5+5 until f1 ends (t=10, f2 has 50 left), then f2 alone at 10:
     ends at 15. *)
  check_time "short flow" 10.0 !t1;
  check_time "long flow" 15.0 !t2

let test_max_min_classic () =
  (* f1 over [L1] and f2 over [L1; L2]; L1=10, L2=4. Max–min: f2 is
     bottlenecked at L2 (rate 4), f1 takes the residual 6. *)
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l1 = Fabric.add_link fab ~name:"L1" ~capacity:10.0 in
  let l2 = Fabric.add_link fab ~name:"L2" ~capacity:4.0 in
  Sim.spawn sim (fun () ->
      let f1 = Fabric.start fab ~route:[ l1 ] ~bytes:1000.0 in
      let f2 = Fabric.start fab ~route:[ l1; l2 ] ~bytes:1000.0 in
      Sim.sleep (Time.sec 1);
      check_rate "f2 at L2 bottleneck" 4.0 (Fabric.rate f2);
      check_rate "f1 gets residual" 6.0 (Fabric.rate f1);
      check_rate "L1 fully used" 10.0 (Fabric.link_utilization fab l1);
      Fabric.cancel fab f1;
      Fabric.cancel fab f2);
  Sim.run sim

let test_dynamic_join_leave () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:8.0 in
  let t1 = ref 0.0 in
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:40.0;
      t1 := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 2);
      Fabric.transfer fab ~route:[ l ] ~bytes:16.0);
  Sim.run sim;
  (* f1: 2 s alone at 8 (16 done), then shares at 4. f2 needs 4 s sharing
     (ends t=6), f1 has 24-16=8 left at t=6 -> wait: from t=2 both at 4;
     f1 does 16 more by t=6 (32 total), f2 done. f1 has 8 left, alone at 8,
     ends t=7. *)
  check_time "join/leave rates" 7.0 !t1

let test_capacity_change_mid_flight () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:10.0 in
  let t1 = ref 0.0 in
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:100.0;
      t1 := sec_f (Sim.now sim));
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 4);
      Fabric.set_link_capacity fab l 5.0);
  Sim.run sim;
  (* 40 B in 4 s, then 60 B at 5 B/s = 12 s more. *)
  check_time "degraded link" 16.0 !t1

let test_cancel_releases_bandwidth () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:10.0 in
  let t2 = ref 0.0 in
  Sim.spawn sim (fun () ->
      let f1 = Fabric.start fab ~route:[ l ] ~bytes:1000.0 in
      Sim.sleep (Time.sec 2);
      Fabric.cancel fab f1);
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:40.0;
      t2 := sec_f (Sim.now sim));
  Sim.run sim;
  (* f2: 2 s at 5 (10 done), then alone at 10 -> 3 s more... 30/10 = 3;
     ends at 5. *)
  check_time "bandwidth reclaimed" 5.0 !t2

let test_zero_byte_flow () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:1.0 in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      Fabric.transfer fab ~route:[ l ] ~bytes:0.0;
      ok := true);
  Sim.run sim;
  Alcotest.(check bool) "completes" true !ok

let test_route_validation () =
  let sim = Sim.create () in
  let fab = Fabric.create sim in
  let l = Fabric.add_link fab ~name:"l" ~capacity:1.0 in
  Alcotest.check_raises "empty route" (Invalid_argument "Fabric: empty route") (fun () ->
      ignore (Fabric.start fab ~route:[] ~bytes:1.0));
  Alcotest.check_raises "duplicate link" (Invalid_argument "Fabric: route contains duplicate links")
    (fun () -> ignore (Fabric.start fab ~route:[ l; l ] ~bytes:1.0));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Fabric.add_link: capacity must be positive and finite") (fun () ->
      ignore (Fabric.add_link fab ~name:"bad" ~capacity:0.0))

(* Property: on a single shared link, n equal flows complete simultaneously
   at n*bytes/capacity — work conservation under fair sharing. *)
let conservation_prop =
  QCheck.Test.make ~name:"fair sharing conserves work" ~count:100
    QCheck.(pair (int_range 1 10) (int_range 1 20))
    (fun (n, cap) ->
      let sim = Sim.create () in
      let fab = Fabric.create sim in
      let l = Fabric.add_link fab ~name:"l" ~capacity:(float_of_int cap) in
      for _ = 1 to n do
        Sim.spawn sim (fun () -> Fabric.transfer fab ~route:[ l ] ~bytes:30.0)
      done;
      Sim.run sim;
      let expected = float_of_int n *. 30.0 /. float_of_int cap in
      Float.abs (Time.to_sec_f (Sim.now sim) -. expected) < 1e-6)

(* Property: link utilisation never exceeds capacity even with random
   multi-hop routes over a small topology. *)
let capacity_respected_prop =
  QCheck.Test.make ~name:"rates never exceed link capacity" ~count:100
    QCheck.(small_list (pair (int_bound 2) (int_bound 2)))
    (fun pairs ->
      let sim = Sim.create () in
      let fab = Fabric.create sim in
      let links =
        Array.init 3 (fun i ->
            Fabric.add_link fab ~name:(Printf.sprintf "l%d" i) ~capacity:(float_of_int (i + 1)))
      in
      let ok = ref true in
      List.iter
        (fun (a, b) ->
          let route = if a = b then [ links.(a) ] else [ links.(a); links.(b) ] in
          Sim.spawn sim (fun () -> Fabric.transfer fab ~route ~bytes:10.0))
        pairs;
      Sim.spawn sim (fun () ->
          Sim.sleep (Time.ms 100);
          Array.iter
            (fun l ->
              if Fabric.link_utilization fab l > Fabric.link_capacity l +. 1e-6 then ok := false)
            links);
      Sim.run sim;
      !ok)

(* Property: however flow starts and cancels interleave, the summed rates
   of the live flows crossing a link never exceed its capacity. Each op is
   ((link a, link b), start slot, optional cancel slot); a monitor fiber
   samples between slots. *)
let start_cancel_capacity_prop =
  QCheck.Test.make ~name:"capacity respected under start/cancel churn" ~count:100
    QCheck.(
      small_list
        (triple (pair (int_bound 2) (int_bound 2)) (int_bound 5) (option (int_bound 5))))
    (fun ops ->
      let sim = Sim.create () in
      let fab = Fabric.create sim in
      let links =
        Array.init 3 (fun i ->
            Fabric.add_link fab ~name:(Printf.sprintf "l%d" i)
              ~capacity:(float_of_int (i + 1)))
      in
      let live = ref [] in
      let remove f = live := List.filter (fun (g, _) -> g != f) !live in
      List.iter
        (fun ((a, b), start_slot, cancel_slot) ->
          Sim.spawn sim (fun () ->
              Sim.sleep (Time.ms (start_slot * 10));
              let route = if a = b then [ links.(a) ] else [ links.(a); links.(b) ] in
              let f = Fabric.start fab ~route ~bytes:50.0 in
              live := (f, route) :: !live;
              (match cancel_slot with
              | Some slot ->
                Sim.sleep (Time.ms ((slot * 10) + 5));
                if not (Fabric.is_done f) then Fabric.cancel fab f
              | None -> Fabric.await f);
              remove f))
        ops;
      let ok = ref true in
      Sim.spawn sim (fun () ->
          for _ = 1 to 20 do
            Sim.sleep (Time.ms 7);
            Array.iter
              (fun l ->
                let used =
                  List.fold_left
                    (fun acc (f, route) ->
                      if (not (Fabric.is_done f)) && List.memq l route then
                        acc +. Fabric.rate f
                      else acc)
                    0.0 !live
                in
                if used > Fabric.link_capacity l +. 1e-6 then ok := false)
              links
          done);
      Sim.run sim;
      !ok)

(* Property: n identical flows sharing one link each get exactly
   capacity/n — max–min fairness degenerates to equal split. *)
let equal_share_prop =
  QCheck.Test.make ~name:"equal flows get equal rates" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 1 20))
    (fun (n, cap) ->
      let sim = Sim.create () in
      let fab = Fabric.create sim in
      let l = Fabric.add_link fab ~name:"l" ~capacity:(float_of_int cap) in
      let ok = ref true in
      Sim.spawn sim (fun () ->
          let flows = List.init n (fun _ -> Fabric.start fab ~route:[ l ] ~bytes:1e6) in
          Sim.sleep (Time.ms 10);
          let expected = float_of_int cap /. float_of_int n in
          List.iter
            (fun f -> if Float.abs (Fabric.rate f -. expected) > 1e-6 then ok := false)
            flows;
          List.iter (fun f -> Fabric.cancel fab f) flows);
      Sim.run sim;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ninja_flownet"
    [
      ( "fabric",
        Alcotest.test_case "single flow bottleneck" `Quick test_single_flow_bottleneck
        :: Alcotest.test_case "fair share" `Quick test_two_flows_share_fairly
        :: Alcotest.test_case "max-min classic" `Quick test_max_min_classic
        :: Alcotest.test_case "dynamic join/leave" `Quick test_dynamic_join_leave
        :: Alcotest.test_case "capacity change" `Quick test_capacity_change_mid_flight
        :: Alcotest.test_case "cancel releases bw" `Quick test_cancel_releases_bandwidth
        :: Alcotest.test_case "zero bytes" `Quick test_zero_byte_flow
        :: Alcotest.test_case "route validation" `Quick test_route_validation
        :: qsuite
             [
               conservation_prop;
               capacity_respected_prop;
               start_cancel_capacity_prop;
               equal_share_prop;
             ] );
    ]
