(* Datacenter topologies and the incremental Flownet solver, tested four
   ways: the topology generator itself (grammar, lowering, reachability,
   oversubscription, seeded placement); a differential suite racing the
   incremental max-min solver against the global reference over random
   join/leave/capacity sequences; the cluster's VM-placement index
   against a list-scan oracle under randomized churn; and the 1000-VM
   evacuation study under a host-CPU budget.

   Seeded from NINJA_TEST_SEED (default 1) so the CI seed matrix
   (1/7/1337) exercises distinct random streams. *)

open Ninja_engine
open Ninja_flownet
open Ninja_hardware

let env_seed =
  match Sys.getenv_opt "NINJA_TEST_SEED" with
  | Some s -> ( try Int64.of_string s with Failure _ -> 1L)
  | None -> 1L

let salted salt = Int64.add env_seed (Int64.of_int salt)

let ok_exn = function Ok t -> t | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Topology generator *)

let test_validate_and_parse_errors () =
  (match Topology.v ~pods:0 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pods=0 must be rejected");
  (match Topology.v ~ib_pods:3 ~pods:2 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ib-pods > pods must be rejected");
  (match Topology.v ~oversub:0.5 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversub < 1 must be rejected");
  List.iter
    (fun text ->
      match Topology.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" text)
    [
      "ring";
      "leaf-spine:frobs=1";
      "leaf-spine:pods";
      "leaf-spine:pods=zero";
      "leaf-spine:pods=0";
      "fat-tree:oversub=0.25";
      "fat-tree:ib-pods=9,pods=2";
    ];
  let t = ok_exn (Topology.of_string "fat-tree:pods=3,ib-pods=2,hosts=4") in
  Alcotest.(check int) "pods" 3 t.Topology.pods;
  Alcotest.(check int) "ib-pods" 2 t.Topology.ib_pods;
  Alcotest.(check int) "hosts default overridden" 4 t.Topology.hosts_per_rack;
  Alcotest.(check int) "racks default" 2 t.Topology.racks_per_pod

let roundtrip_prop =
  QCheck.Test.make ~name:"topology text form round-trips" ~count:200 QCheck.small_int
    (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      let t = Topology.gen prng in
      match Topology.of_string (Topology.to_string t) with
      | Ok t' -> t' = t
      | Error e -> QCheck.Test.fail_reportf "did not parse back: %s" e)

let test_same_seed_identical () =
  let draw () = Topology.gen (Prng.create ~seed:(salted 3)) in
  let a = draw () and b = draw () in
  Alcotest.(check bool) "same seed, same topology" true (a = b);
  Alcotest.(check string) "same textual form" (Topology.to_string a) (Topology.to_string b);
  Alcotest.(check bool) "same spec" true (Topology.to_spec a = Topology.to_spec b);
  let place t = Topology.place t ~vms:7 ~vm_bytes:(Units.gb 1.0) () in
  Alcotest.(check (list string)) "same placement" (place a) (place b)

let test_spec_lowering () =
  let prng = Prng.create ~seed:(salted 5) in
  for _ = 1 to 20 do
    let t = Topology.gen prng in
    let sim = Sim.create () in
    let cluster = Cluster.create sim ~topology:t () in
    let nodes = Cluster.nodes cluster in
    Alcotest.(check int) "node count" (Topology.host_count t) (List.length nodes);
    Alcotest.(check (list string))
      "names follow pod-major host order" (Topology.hosts t)
      (List.map (fun (n : Node.t) -> n.Node.name) nodes);
    (* Pod fabric-class homogeneity: a node carries an IB HCA exactly when
       its pod is an IB island. *)
    List.iter
      (fun (n : Node.t) ->
        let pod = Topology.pod_of_rack t n.Node.rack in
        Alcotest.(check bool)
          (Printf.sprintf "%s IB matches pod %d class" n.Node.name pod)
          (Topology.is_ib_pod t pod) (Node.has_ib n))
      nodes
  done

let test_reachability () =
  let prng = Prng.create ~seed:(salted 11) in
  for _ = 1 to 10 do
    let t = Topology.gen prng in
    let sim = Sim.create () in
    let cluster = Cluster.create sim ~topology:t () in
    let nodes = Array.of_list (Cluster.nodes cluster) in
    Array.iter
      (fun (src : Node.t) ->
        Array.iter
          (fun (dst : Node.t) ->
            (match Cluster.route_opt cluster ~net:Cluster.Eth ~src ~dst with
            | Some (_ :: _) -> ()
            | Some [] | None ->
              Alcotest.failf "no Ethernet path %s -> %s" src.Node.name dst.Node.name);
            let same_pod =
              Topology.pod_of_rack t src.Node.rack = Topology.pod_of_rack t dst.Node.rack
            in
            let ib = Cluster.route_opt cluster ~net:Cluster.Ib ~src ~dst in
            let expect_ib =
              src.Node.id = dst.Node.id
              || (Node.has_ib src && Node.has_ib dst && same_pod)
            in
            Alcotest.(check bool)
              (Printf.sprintf "IB path %s -> %s (pod-confined)" src.Node.name
                 dst.Node.name)
              expect_ib (ib <> None))
          nodes)
      nodes
  done

(* The aggregation links carry exactly the advertised capacities, and the
   advertised capacities honor the oversubscription ratio. *)
let test_oversubscription_capacities () =
  let t =
    ok_exn
      (Topology.v ~tier:Topology.Leaf_spine ~pods:3 ~racks_per_pod:2 ~hosts_per_rack:4
         ~ib_pods:1 ~oversub:4.0 ())
  in
  let leaf = Topology.leaf_capacity t in
  Alcotest.(check (float 1e-6))
    "leaf = hosts x eth10g / oversub"
    (4.0 *. Calibration.eth10g_bandwidth /. 4.0)
    leaf;
  Alcotest.(check (float 1e-6))
    "leaf-spine pod uplink re-applies the ratio"
    (2.0 *. leaf /. 4.0)
    (Topology.pod_capacity t);
  let ft = ok_exn (Topology.v ~tier:Topology.Fat_tree ~racks_per_pod:2 ~oversub:4.0 ()) in
  Alcotest.(check (float 1e-6))
    "fat-tree pod uplink carries the full leaf aggregate"
    (2.0 *. Topology.leaf_capacity ft)
    (Topology.pod_capacity ft);
  Alcotest.(check (float 1e-6))
    "IB aggregation is non-blocking"
    (4.0 *. Calibration.ib_bandwidth)
    (Topology.ib_capacity t);
  (* The cluster's fabric links carry these numbers. *)
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~topology:t () in
  let cap name =
    match
      List.find_opt (fun l -> Fabric.link_name l = name) (Fabric.links (Cluster.fabric cluster))
    with
    | Some l -> Fabric.link_capacity l
    | None -> Alcotest.failf "fabric has no link %S" name
  in
  Alcotest.(check (float 1e-6)) "leaf.up.r0" leaf (cap "leaf.up.r0");
  Alcotest.(check (float 1e-6)) "leaf.down.r5" leaf (cap "leaf.down.r5");
  Alcotest.(check (float 1e-6)) "pod.up.p2" (Topology.pod_capacity t) (cap "pod.up.p2");
  Alcotest.(check (float 1e-6)) "ibagg.up.r1" (Topology.ib_capacity t) (cap "ibagg.up.r1")

let test_place () =
  let t =
    ok_exn
      (Topology.v ~pods:3 ~racks_per_pod:2 ~hosts_per_rack:2 ~ib_pods:1 ~mem_gb:8.0 ())
  in
  (* 2 GiB VMs: 4 slots per host; pod 0 has 4 hosts = 16 slots. *)
  let placement = Topology.place t ~pods:[ 0 ] ~vms:16 ~vm_bytes:(Units.gb 2.0) () in
  Alcotest.(check int) "every VM placed" 16 (List.length placement);
  let allowed = Topology.pod_hosts t 0 in
  List.iter
    (fun h ->
      if not (List.mem h allowed) then Alcotest.failf "%s outside the requested pod" h)
    placement;
  List.iter
    (fun h ->
      let k = List.length (List.filter (String.equal h) placement) in
      if k > 4 then Alcotest.failf "%s over its %d slots (%d VMs)" h 4 k)
    allowed;
  Alcotest.check_raises "over capacity rejected"
    (Invalid_argument "Topology.place: 17 VMs exceed capacity (4 hosts x 4 slots)")
    (fun () -> ignore (Topology.place t ~pods:[ 0 ] ~vms:17 ~vm_bytes:(Units.gb 2.0) ()))

let shrink_prop =
  QCheck.Test.make ~name:"topology shrinks stay valid and get smaller" ~count:200
    QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      let t = Topology.gen prng in
      let size (t : Topology.t) =
        Topology.host_count t
        + (match t.Topology.tier with Topology.Leaf_spine -> 0 | Topology.Fat_tree -> 1)
        + int_of_float t.Topology.oversub
      in
      List.for_all
        (fun (c : Topology.t) ->
          (match Topology.validate c with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "shrink candidate invalid: %s" e);
          if c.Topology.ib_pods < 1 then
            QCheck.Test.fail_reportf "shrink dropped the last IB pod";
          if c.Topology.pods - c.Topology.ib_pods < 1 then
            QCheck.Test.fail_reportf "shrink dropped the last Ethernet pod";
          size c < size t)
        (Topology.shrink t))

(* The ninja_sim check hook: a campaign forced onto a generated topology
   runs green, and the scenario generator does emit topology scenarios on
   its own (one in four). *)
let test_fuzz_hook () =
  let open Ninja_check in
  let prng = Prng.create ~seed:(salted 17) in
  let topo = Topology.gen prng in
  let ctx = Run_ctx.make ~seed:env_seed () in
  let summary = Fuzz.campaign ctx ~n:3 ~topology:topo () in
  Alcotest.(check int) "forced-topology campaign total" 3 summary.Fuzz.total;
  Alcotest.(check int) "forced-topology campaign green" 3 summary.Fuzz.passed;
  let drawn = Fuzz.generate ~seed:(salted 19) ~n:40 in
  let with_topo =
    List.length (List.filter (fun sc -> sc.Scenario.topo <> None) drawn)
  in
  if with_topo = 0 then Alcotest.fail "no generated scenario carried a topology"

(* ------------------------------------------------------------------ *)
(* Differential: incremental vs global max-min solver *)

(* Drive one random join/leave/capacity-change sequence over two clusters
   built from the same generated topology, one per solver, and compare
   every live flow's rate after every operation. Flows carry far more
   bytes than could ever complete (the simulations never run), so the
   sequence exercises pure re-rating. *)
let paired_sequence ~ops ~solver_b ~compare_logs prng =
  let topo = Topology.gen prng in
  let mk solver = Cluster.create (Sim.create ()) ~topology:topo ~solver () in
  let ca = mk Fabric.Incremental and cb = mk solver_b in
  let fa = Cluster.fabric ca and fb = Cluster.fabric cb in
  let nodes_a = Array.of_list (Cluster.nodes ca) in
  let nodes_b = Array.of_list (Cluster.nodes cb) in
  let links_a = Array.of_list (Fabric.links fa) in
  let links_b = Array.of_list (Fabric.links fb) in
  let n = Array.length nodes_a in
  let live = ref [] in
  let failure = ref None in
  let check_step step =
    List.iter
      (fun (x, y) ->
        let ra = Fabric.rate x and rb = Fabric.rate y in
        if Float.abs (ra -. rb) > 1e-9 *. Float.max 1.0 (Float.abs rb) then
          failure :=
            Some (Printf.sprintf "step %d: incremental %.17g vs reference %.17g" step ra rb))
      !live;
    if compare_logs && Fabric.last_bottlenecks fa <> Fabric.last_bottlenecks fb then
      failure := Some (Printf.sprintf "step %d: freeze logs diverge" step)
  in
  for step = 1 to ops do
    (match !failure with
    | Some _ -> ()
    | None ->
      let x = Prng.int prng 100 in
      if x < 55 || !live = [] then begin
        let s = Prng.int prng n and d = Prng.int prng n in
        let want_ib =
          Node.has_ib nodes_a.(s) && Node.has_ib nodes_a.(d) && Prng.bool prng
        in
        let route c (nodes : Node.t array) =
          let attempt net = Cluster.route_opt c ~net ~src:nodes.(s) ~dst:nodes.(d) in
          match (if want_ib then attempt Cluster.Ib else None) with
          | Some r -> r
          | None -> ( match attempt Cluster.Eth with Some r -> r | None -> assert false)
        in
        let bytes = 1e12 *. float_of_int (1 + Prng.int prng 8) in
        let fx = Fabric.start fa ~route:(route ca nodes_a) ~bytes in
        let fy = Fabric.start fb ~route:(route cb nodes_b) ~bytes in
        live := (fx, fy) :: !live
      end
      else if x < 85 then begin
        let i = Prng.int prng (List.length !live) in
        let fx, fy = List.nth !live i in
        live := List.filteri (fun j _ -> j <> i) !live;
        Fabric.cancel fa fx;
        Fabric.cancel fb fy
      end
      else begin
        let li = Prng.int prng (Array.length links_a) in
        let cap = 1e8 *. float_of_int (1 + Prng.int prng 100) in
        Fabric.set_link_capacity fa links_a.(li) cap;
        Fabric.set_link_capacity fb links_b.(li) cap
      end;
      check_step step)
  done;
  !failure

let differential_prop =
  QCheck.Test.make ~name:"incremental rates = global rates (1e-9, 300 sequences)"
    ~count:300 QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      match paired_sequence ~ops:40 ~solver_b:Fabric.Global ~compare_logs:false prng with
      | None -> true
      | Some msg -> QCheck.Test.fail_reportf "%s" msg)

(* Determinism, including tie-breaks: replaying a sequence on a second
   incremental fabric reproduces the exact freeze order and rates. *)
let tie_break_determinism_prop =
  QCheck.Test.make ~name:"incremental freeze order is deterministic" ~count:100
    QCheck.small_int (fun salt ->
      let prng = Prng.create ~seed:(salted salt) in
      match
        paired_sequence ~ops:40 ~solver_b:Fabric.Incremental ~compare_logs:true prng
      with
      | None -> true
      | Some msg -> QCheck.Test.fail_reportf "%s" msg)

(* The two-equal-links regression: when several links tie at the minimum
   fair share, the solver must freeze them in link-id order — the
   lexicographic (share, id) tie-break — under both solvers. *)
let test_tie_break_two_equal_links () =
  List.iter
    (fun solver ->
      let tag =
        match solver with Fabric.Incremental -> "incremental" | Fabric.Global -> "global"
      in
      (* One flow over two equally contended links: the bottleneck is the
         lower link id. *)
      let sim = Sim.create () in
      let fab = Fabric.create ~solver sim in
      let a = Fabric.add_link fab ~name:"a" ~capacity:10.0 in
      let b = Fabric.add_link fab ~name:"b" ~capacity:10.0 in
      let f = Fabric.start fab ~route:[ a; b ] ~bytes:1e12 in
      Alcotest.(check (list int))
        (tag ^ ": single flow freezes the lower-id link")
        [ Fabric.link_id a ]
        (Fabric.last_bottlenecks fab);
      Alcotest.(check (float 0.0)) (tag ^ ": flow at capacity") 10.0 (Fabric.rate f);
      (* Two flows through a shared wide link, private links tied at the
         minimum share: one re-rate must freeze a then b. *)
      let sim = Sim.create () in
      let fab = Fabric.create ~solver sim in
      let a = Fabric.add_link fab ~name:"a" ~capacity:10.0 in
      let b = Fabric.add_link fab ~name:"b" ~capacity:10.0 in
      let shared = Fabric.add_link fab ~name:"shared" ~capacity:1000.0 in
      let f1 = Fabric.start fab ~route:[ a; shared ] ~bytes:1e12 in
      let f2 = Fabric.start fab ~route:[ b; shared ] ~bytes:1e12 in
      Alcotest.(check (list int))
        (tag ^ ": equal links freeze in id order")
        [ Fabric.link_id a; Fabric.link_id b ]
        (Fabric.last_bottlenecks fab);
      Alcotest.(check (float 0.0)) (tag ^ ": f1 fair share") 10.0 (Fabric.rate f1);
      Alcotest.(check (float 0.0)) (tag ^ ": f2 fair share") 10.0 (Fabric.rate f2))
    [ Fabric.Incremental; Fabric.Global ]

(* ------------------------------------------------------------------ *)
(* Cluster VM index vs a list-scan oracle *)

let test_cluster_index_oracle () =
  let prng = Prng.create ~seed:(salted 23) in
  let t =
    ok_exn
      (Topology.v ~pods:2 ~racks_per_pod:2 ~hosts_per_rack:4 ~ib_pods:1 ~mem_gb:8.0 ())
  in
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~topology:t () in
  let nodes = Array.of_list (Cluster.nodes cluster) in
  let n = Array.length nodes in
  let oracle : (string, int * float) Hashtbl.t = Hashtbl.create 64 in
  let names = Array.init 48 (Printf.sprintf "vm%02d") in
  for _ = 1 to 1000 do
    let name = names.(Prng.int prng (Array.length names)) in
    match Prng.int prng 3 with
    | 0 ->
      let node = Prng.int prng n in
      let bytes = float_of_int (1 + Prng.int prng 4) *. 1e9 in
      Cluster.register_vm cluster ~name ~node ~bytes;
      Hashtbl.replace oracle name (node, bytes)
    | 1 -> (
      match Hashtbl.find_opt oracle name with
      | Some (_, bytes) ->
        let node = Prng.int prng n in
        Cluster.move_vm cluster ~name ~node;
        Hashtbl.replace oracle name (node, bytes)
      | None -> ())
    | _ ->
      Cluster.unregister_vm cluster ~name;
      Hashtbl.remove oracle name
  done;
  Alcotest.(check int) "vm count" (Hashtbl.length oracle) (Cluster.vm_count cluster);
  Array.iter
    (fun (node : Node.t) ->
      let on_node f init =
        Hashtbl.fold
          (fun nm (nd, b) acc -> if nd = node.Node.id then f nm b acc else acc)
          oracle init
      in
      Alcotest.(check (list string))
        (node.Node.name ^ " residents")
        (List.sort compare (on_node (fun nm _ acc -> nm :: acc) []))
        (Cluster.vms_on cluster node);
      Alcotest.(check (float 1e3))
        (node.Node.name ^ " used bytes")
        (on_node (fun _ b acc -> acc +. b) 0.0)
        (Cluster.node_used_bytes cluster node))
    nodes;
  Hashtbl.iter
    (fun name (node, _) ->
      match Cluster.vm_node cluster ~name with
      | Some nd -> Alcotest.(check int) (name ^ " node") node nd.Node.id
      | None -> Alcotest.failf "%s missing from the index" name)
    oracle;
  let want = 6.0e9 in
  Alcotest.(check (list string))
    "nodes_with_free matches a scan"
    (Array.to_list nodes
    |> List.filter (fun (nd : Node.t) ->
           nd.Node.mem_bytes
           -. Hashtbl.fold
                (fun _ (d, b) acc -> if d = nd.Node.id then acc +. b else acc)
                oracle 0.0
           >= want)
    |> List.map (fun (nd : Node.t) -> nd.Node.name))
    (List.map
       (fun (nd : Node.t) -> nd.Node.name)
       (Cluster.nodes_with_free cluster ~bytes:want))

(* ------------------------------------------------------------------ *)
(* Scale regression: the 1000-VM evacuation must stay cheap to simulate *)

let test_evacuation_budget () =
  let open Ninja_experiments in
  let topo = Exp_scalability.dc_topology ~pods:4 ~racks:4 ~hosts:16 ~mem_gb:48.0 in
  let ctx = Run_ctx.make ~seed:env_seed () in
  let c0 = Sys.time () in
  let e =
    Exp_scalability.evacuate ctx ~topo ~vms:1000 ~vm_gb:0.5
      ~window:Exp_scalability.default_window
  in
  let cpu = Sys.time () -. c0 in
  Alcotest.(check int) "fleet size" 1000 e.Exp_scalability.e_vms;
  Alcotest.(check int) "topology size" 256 e.Exp_scalability.e_hosts;
  if e.Exp_scalability.e_makespan <= 0.0 then Alcotest.fail "evacuation did not run";
  (* Each VM ships at least its resident set (0.25 GB). *)
  if e.Exp_scalability.e_moved_gb < 200.0 then
    Alcotest.failf "only %.1f GB moved" e.Exp_scalability.e_moved_gb;
  (* The incremental solver keeps a 1000-VM evacuation within seconds of
     host time; the global reference alone would blow this budget long
     before CI noise does. *)
  if cpu > 30.0 then Alcotest.failf "1000-VM evacuation took %.1f CPU seconds" cpu

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ninja_topology"
    [
      ( "topology",
        Alcotest.test_case "validation and parse errors" `Quick test_validate_and_parse_errors
        :: Alcotest.test_case "same seed, identical artifacts" `Quick test_same_seed_identical
        :: Alcotest.test_case "spec lowering and pod homogeneity" `Quick test_spec_lowering
        :: Alcotest.test_case "reachability" `Quick test_reachability
        :: Alcotest.test_case "oversubscription capacities" `Quick
             test_oversubscription_capacities
        :: Alcotest.test_case "seeded placement" `Quick test_place
        :: Alcotest.test_case "fuzz hook" `Quick test_fuzz_hook
        :: qsuite [ roundtrip_prop; shrink_prop ] );
      ( "differential",
        Alcotest.test_case "two equal links tie-break" `Quick test_tie_break_two_equal_links
        :: qsuite [ differential_prop; tie_break_determinism_prop ] );
      ( "cluster-index",
        [ Alcotest.test_case "index matches oracle under churn" `Quick test_cluster_index_oracle ] );
      ( "scale",
        [ Alcotest.test_case "1000-VM evacuation budget" `Quick test_evacuation_budget ] );
    ]
