(* Tests for the workload models: memtest, bcast+reduce, NPB skeletons. *)

open Ninja_engine
open Ninja_hardware
open Ninja_vmm
open Ninja_guestos
open Ninja_mpi
open Ninja_workloads

let check_near msg tolerance expected actual =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %g +/- %g, got %g" msg expected tolerance actual

let setup ?(n = 2) ?(ib = true) () =
  let sim = Sim.create () in
  let cluster = Cluster.create sim ~spec:Spec.agc_ib16 () in
  let members =
    List.init n (fun i ->
        let host = Cluster.find_node cluster (Printf.sprintf "ib%02d" i) in
        let vm =
          Vm.create cluster ~name:(Printf.sprintf "vm%d" i) ~host ~vcpus:8
            ~mem_bytes:(Units.gb 20.0) ()
        in
        if ib then Vm.attach_device vm (Device.make ~tag:"vf0" ~pci_addr:"04:00.0" Device.Ib_hca);
        (vm, Guest.boot vm))
  in
  (sim, cluster, members)

(* ------------------------------------------------------------------ *)
(* Memtest *)

let test_memtest_dirties_memory () =
  let sim, cluster, members = setup ~n:1 () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        Memtest.run ctx ~array_bytes:(Units.gb 2.0) ~passes:2 ())
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  let vm, _ = List.hd members in
  (* OS image (~2.3 GB) + the 2 GiB array are resident. *)
  check_near "array resident" 1e8
    (2.3e9 +. Units.gb 2.0)
    (Memory.nonzero_bytes (Vm.memory vm));
  check_near "array re-dirtied by the last pass" 1e8 (Units.gb 2.0)
    (Memory.dirty_bytes (Vm.memory vm))

let test_memtest_pass_duration () =
  (* One pass of S bytes at W bytes/s takes S/W on an idle host. *)
  let sim, cluster, members = setup ~n:1 () in
  let t = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        Memtest.run ctx ~array_bytes:(Units.gb 3.0) ~passes:1 ~write_bandwidth:2.0e9 ();
        t := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  check_near "pass time" 0.01 (Units.gb 3.0 /. 2.0e9) !t

let test_memtest_run_until_stops () =
  let sim, cluster, members = setup ~n:2 () in
  let t = ref 0.0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        Memtest.run_until ctx ~array_bytes:(Units.gb 1.0) ~until:5.0 ();
        if Mpi.rank ctx = 0 then t := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "stops shortly after the deadline" true (!t >= 5.0 && !t < 6.5)

(* ------------------------------------------------------------------ *)
(* Bcast+reduce *)

let test_bcast_reduce_samples () =
  let sim, cluster, members = setup ~n:4 () in
  let samples = ref [] in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
        Bcast_reduce.run ctx ~data_per_node:1.0e9 ~procs_per_vm:1 ~steps:5
          ~on_step:(fun s -> samples := s :: !samples)
          ())
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  let samples = List.rev !samples in
  Alcotest.(check (list int)) "one sample per step" [ 1; 2; 3; 4; 5 ]
    (List.map (fun s -> s.Bcast_reduce.step) samples);
  List.iter
    (fun s -> Alcotest.(check bool) "positive elapsed" true (s.Bcast_reduce.elapsed > 0.0))
    samples;
  (* Steady state: all steps take the same time on a static cluster. *)
  let es = List.map (fun s -> s.Bcast_reduce.elapsed) samples in
  check_near "constant step time" 0.02 (Ninja_metrics.Stats.minimum es)
    (Ninja_metrics.Stats.maximum es)

let test_bcast_reduce_scales_with_interconnect () =
  let run ib =
    let sim, cluster, members = setup ~n:2 ~ib () in
    let elapsed = ref 0.0 in
    let job =
      Runtime.mpirun cluster ~members ~procs_per_vm:1 (fun ctx ->
          Bcast_reduce.run ctx ~data_per_node:2.0e9 ~procs_per_vm:1 ~steps:2
            ~on_step:(fun s -> elapsed := s.Bcast_reduce.elapsed)
            ())
    in
    Sim.spawn sim (fun () -> Runtime.wait job);
    Sim.run sim;
    !elapsed
  in
  let ib = run true and tcp = run false in
  (* QDR vs virtio: roughly the bandwidth ratio. *)
  Alcotest.(check bool) "IB much faster" true (tcp /. ib > 2.0)

(* ------------------------------------------------------------------ *)
(* NPB *)

let test_npb_kernel_names () =
  Alcotest.(check (list string)) "names" [ "BT"; "CG"; "FT"; "LU" ]
    (List.map Npb.kernel_name Npb.all);
  Alcotest.(check bool) "parse" true (Npb.kernel_of_string "cg" = Some Npb.CG);
  Alcotest.(check bool) "parse garbage" true (Npb.kernel_of_string "ZZ" = None)

let test_npb_footprints_span_paper_range () =
  (* Per-VM application footprints + 2.3 GB OS must span ~2.3-16 GB. *)
  let fp k = (Npb.footprint_per_vm k Npb.D ~procs_per_vm:8 +. 2.3e9) /. 1e9 in
  Alcotest.(check bool) "CG smallest ~2-5 GB" true (fp Npb.CG > 2.3 && fp Npb.CG < 5.0);
  Alcotest.(check bool) "FT largest ~16 GB" true (fp Npb.FT > 14.0 && fp Npb.FT <= 17.0);
  List.iter
    (fun k -> Alcotest.(check bool) "within VM memory" true (fp k < 20.0))
    Npb.all

let test_npb_class_c_runs_to_nominal_time () =
  (* CG class C on 2 VMs x 2 ranks: compute-dominated, so the wall time
     should sit near iterations x compute. *)
  let sim, cluster, members = setup ~n:2 () in
  let t = ref 0.0 in
  let iter_count = ref 0 in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
        Npb.run ctx Npb.CG Npb.C ~on_iteration:(fun _ _ -> incr iter_count) ();
        if Mpi.rank ctx = 0 then t := Mpi.wtime ctx)
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  Alcotest.(check int) "iteration callbacks" (Npb.iterations Npb.CG Npb.C) !iter_count;
  let expected = float_of_int (Npb.iterations Npb.CG Npb.C) *. 7.6 /. 4.0 in
  check_near "near nominal" (expected *. 0.1) expected !t

let test_npb_allocates_working_set () =
  let sim, cluster, members = setup ~n:1 () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx -> Npb.run ctx Npb.LU Npb.C ())
  in
  Sim.spawn sim (fun () -> Runtime.wait job);
  Sim.run sim;
  let vm, _ = List.hd members in
  let expected = 2.3e9 +. Npb.footprint_per_vm Npb.LU Npb.C ~procs_per_vm:2 in
  check_near "working set resident" 2e8 expected (Memory.nonzero_bytes (Vm.memory vm))

let test_npb_baseline_ordering () =
  (* Class D analytic baselines keep the paper's ordering:
     BT > CG > LU > FT. *)
  let b k = Npb.nominal_baseline k Npb.D in
  Alcotest.(check bool) "BT slowest" true (b Npb.BT > b Npb.CG);
  Alcotest.(check bool) "CG > LU" true (b Npb.CG > b Npb.LU);
  Alcotest.(check bool) "LU > FT" true (b Npb.LU > b Npb.FT)

let test_npb_extended_kernels () =
  (* The non-paper kernels run to completion too, and EP (embarrassingly
     parallel) spends essentially no time communicating. *)
  Alcotest.(check int) "eight kernels" 8 (List.length Npb.extended);
  let time kernel =
    let sim, cluster, members = setup ~n:2 () in
    let t = ref 0.0 in
    let job =
      Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx ->
          Npb.run ctx kernel Npb.C ();
          if Mpi.rank ctx = 0 then t := Mpi.wtime ctx)
    in
    Sim.spawn sim (fun () -> Runtime.wait job);
    Sim.run sim;
    !t
  in
  List.iter
    (fun kernel ->
      let t = time kernel in
      let nominal =
        float_of_int (Npb.iterations kernel Npb.C)
        *. (Npb.nominal_baseline kernel Npb.C /. float_of_int (Npb.iterations kernel Npb.C))
      in
      if t <= 0.0 || t > 3.0 *. nominal then
        Alcotest.failf "%s: implausible runtime %.1f (nominal %.1f)" (Npb.kernel_name kernel) t
          nominal)
    [ Npb.EP; Npb.IS; Npb.MG; Npb.SP ]

let test_npb_survives_migration () =
  (* An NPB run keeps iterating across a mid-run checkpoint. *)
  let sim, cluster, members = setup ~n:2 () in
  let job =
    Runtime.mpirun cluster ~members ~procs_per_vm:2 (fun ctx -> Npb.run ctx Npb.LU Npb.C ())
  in
  Sim.spawn sim (fun () ->
      Sim.sleep (Time.sec 20);
      Runtime.await_checkpoint_complete (Runtime.request_checkpoint job);
      Runtime.wait job);
  Sim.run sim;
  Alcotest.(check bool) "finished" true (Runtime.is_finished job)

(* ------------------------------------------------------------------ *)
(* Traffic matrices *)

let test_traffic_grammar_roundtrip () =
  let patterns =
    [
      Traffic.Uniform { rate = Traffic.default_rate };
      Traffic.Ring { rate = 0.0 };
      Traffic.Skewed { elephants = 3; rate = 1.5e5; factor = 16.0 };
      (* An awkward float must survive the text form exactly. *)
      Traffic.Uniform { rate = 1.0 /. 3.0 };
    ]
  in
  List.iter
    (fun p ->
      match Traffic.of_string (Traffic.to_string p) with
      | Ok p' ->
        if p' <> p then
          Alcotest.failf "%s did not round-trip" (Traffic.to_string p)
      | Error e -> Alcotest.failf "%s: %s" (Traffic.to_string p) e)
    patterns;
  (* Defaults: a bare pattern name parses with the default rate. *)
  (match Traffic.of_string "uniform" with
  | Ok (Traffic.Uniform { rate }) ->
    check_near "default rate" 1.0 Traffic.default_rate rate
  | Ok p -> Alcotest.failf "expected uniform, got %s" (Traffic.to_string p)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun text ->
      match Traffic.of_string text with
      | Ok _ -> Alcotest.failf "expected %S rejected" text
      | Error _ -> ())
    [
      "spiral"; "uniform:rate=-1"; "uniform:rate=nan"; "ring:elephants=2";
      "skewed:factor=0.5"; "skewed:elephants=banana"; "uniform:rate";
    ]

let test_traffic_matrix_shapes () =
  let prng = Prng.create ~seed:3L in
  let vms = [ "a"; "b"; "c"; "d" ] in
  let uni = Traffic.matrix prng (Traffic.Uniform { rate = 2.0 }) ~vms in
  Alcotest.(check int) "uniform: all unordered pairs" 6 (List.length uni);
  List.iter
    (fun (a, b, rate) ->
      Alcotest.(check bool) "endpoints canonically ordered" true (a < b);
      check_near "uniform rate" 1e-9 2.0 rate)
    uni;
  let ring = Traffic.matrix prng (Traffic.Ring { rate = 1.0 }) ~vms in
  Alcotest.(check int) "ring: one entry per VM" 4 (List.length ring);
  let skew =
    Traffic.matrix prng
      (Traffic.Skewed { elephants = 2; rate = 1.0; factor = 10.0 })
      ~vms
  in
  let heavy = List.filter (fun (_, _, r) -> r >= 9.0) skew in
  Alcotest.(check int) "skewed: requested elephant count" 2 (List.length heavy);
  Alcotest.(check bool) "skewed: mice keep the base rate" true
    (List.exists (fun (_, _, r) -> r < 9.0) skew);
  (* Degenerate populations produce no demand rather than self-loops. *)
  Alcotest.(check int) "one VM: empty" 0
    (List.length (Traffic.matrix prng (Traffic.Uniform { rate = 1.0 }) ~vms:[ "solo" ]));
  Alcotest.check_raises "invalid pattern refused"
    (Invalid_argument "Traffic.matrix: rate must be non-negative and finite")
    (fun () ->
      ignore (Traffic.matrix prng (Traffic.Uniform { rate = -1.0 }) ~vms))

let test_traffic_matrix_deterministic () =
  let draw seed =
    let prng = Prng.create ~seed in
    let pattern = Traffic.gen prng in
    (pattern, Traffic.matrix prng pattern ~vms:[ "a"; "b"; "c"; "d"; "e" ])
  in
  Alcotest.(check bool) "same seed, same pattern and matrix" true
    (draw 11L = draw 11L);
  Alcotest.(check bool) "seeds decorrelate" true (draw 11L <> draw 12L);
  (* Generated patterns always validate — the fuzzer relies on it. *)
  let prng = Prng.create ~seed:99L in
  for _ = 1 to 200 do
    match Traffic.validate (Traffic.gen prng) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generated pattern invalid: %s" e
  done

let () =
  Alcotest.run "ninja_workloads"
    [
      ( "memtest",
        [
          Alcotest.test_case "dirties memory" `Quick test_memtest_dirties_memory;
          Alcotest.test_case "pass duration" `Quick test_memtest_pass_duration;
          Alcotest.test_case "run_until" `Quick test_memtest_run_until_stops;
        ] );
      ( "bcast_reduce",
        [
          Alcotest.test_case "samples" `Quick test_bcast_reduce_samples;
          Alcotest.test_case "interconnect sensitivity" `Quick
            test_bcast_reduce_scales_with_interconnect;
        ] );
      ( "npb",
        [
          Alcotest.test_case "kernel names" `Quick test_npb_kernel_names;
          Alcotest.test_case "footprint range" `Quick test_npb_footprints_span_paper_range;
          Alcotest.test_case "class C nominal time" `Quick test_npb_class_c_runs_to_nominal_time;
          Alcotest.test_case "working set" `Quick test_npb_allocates_working_set;
          Alcotest.test_case "baseline ordering" `Quick test_npb_baseline_ordering;
          Alcotest.test_case "extended kernels" `Quick test_npb_extended_kernels;
          Alcotest.test_case "survives migration" `Quick test_npb_survives_migration;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "grammar round-trips" `Quick test_traffic_grammar_roundtrip;
          Alcotest.test_case "matrix shapes" `Quick test_traffic_matrix_shapes;
          Alcotest.test_case "matrix deterministic" `Quick
            test_traffic_matrix_deterministic;
        ] );
    ]
